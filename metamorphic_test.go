package kspr

// Metamorphic property tests: relations that must hold between the
// outputs of related queries, regardless of which algorithm produced
// them. Unlike the oracle tests (which compare algorithms against each
// other), these catch bugs all four algorithms could share — an indexing
// error tied to record order, a scale-dependent comparison, or a region
// decomposition that leaks measure.
//
// Properties:
//   - Permutation invariance: the kSPR answer is a set of weight vectors
//     determined by the focal record and the multiset of competitors, so
//     shuffling the dataset (and chasing the focal to its new index)
//     must leave the region union, the base rank, and the impact
//     probability unchanged even when the cell decomposition differs.
//   - Positive-scaling invariance: scores are linear in the records
//     (score = w·v), so scaling every record by the same c > 0 scales
//     all scores by c and preserves every ranking — the answer is
//     identical.
//   - Volume budget: regions are disjoint cells of the (d-1)-dimensional
//     preference simplex, whose measure is 1/(d-1)!, so their volumes
//     must sum to at most that (and in particular to at most 1).

import (
	"math"
	"math/rand"
	"testing"
)

// metamorphicAlgorithms lists every exact algorithm; each property must
// hold for all of them.
var metamorphicAlgorithms = []struct {
	name string
	algo Algorithm
}{
	{"CTA", CTA},
	{"PCTA", PCTA},
	{"LPCTA", LPCTA},
	{"KSkybandCTA", KSkybandCTA},
}

// crossContained asserts the two results describe the same region union:
// every region's strictly-interior witness in each result must fall in
// some region of the other.
func crossContained(t *testing.T, a, b *Result, tol float64) {
	t.Helper()
	for i := range a.Regions {
		if !b.ContainsWeight(a.Regions[i].Witness, tol) {
			t.Fatalf("witness of first result's region %d not contained in second result (%d vs %d regions)",
				i, len(a.Regions), len(b.Regions))
		}
	}
	for i := range b.Regions {
		if !a.ContainsWeight(b.Regions[i].Witness, tol) {
			t.Fatalf("witness of second result's region %d not contained in first result (%d vs %d regions)",
				i, len(b.Regions), len(a.Regions))
		}
	}
}

func TestMetamorphicPermutationInvariance(t *testing.T) {
	const (
		n, d, k       = 60, 3, 5
		impactSamples = 20000
	)
	rng := rand.New(rand.NewSource(11))
	records := randRecords(rng, n, d)
	perm := rng.Perm(n)
	permuted := make([][]float64, n)
	newIndex := make([]int, n) // original id -> id after shuffling
	for i, p := range perm {
		permuted[i] = records[p]
		newIndex[p] = i
	}
	db1, err := Open(records)
	if err != nil {
		t.Fatal(err)
	}
	db2, err := Open(permuted)
	if err != nil {
		t.Fatal(err)
	}

	for _, tc := range metamorphicAlgorithms {
		t.Run(tc.name, func(t *testing.T) {
			nonEmpty := 0
			for _, focal := range []int{0, 17, 42} {
				r1, err := db1.KSPR(focal, k, WithAlgorithm(tc.algo))
				if err != nil {
					t.Fatalf("focal %d original order: %v", focal, err)
				}
				r2, err := db2.KSPR(newIndex[focal], k, WithAlgorithm(tc.algo))
				if err != nil {
					t.Fatalf("focal %d permuted order: %v", focal, err)
				}
				if r1.Stats.BaseRank != r2.Stats.BaseRank {
					t.Fatalf("focal %d: base rank changed under permutation: %d vs %d",
						focal, r1.Stats.BaseRank, r2.Stats.BaseRank)
				}
				if (len(r1.Regions) == 0) != (len(r2.Regions) == 0) {
					t.Fatalf("focal %d: emptiness changed under permutation: %d vs %d regions",
						focal, len(r1.Regions), len(r2.Regions))
				}
				crossContained(t, r1, r2, 1e-7)
				p1 := db1.ImpactProbability(r1, impactSamples, 7)
				p2 := db2.ImpactProbability(r2, impactSamples, 7)
				if math.Abs(p1-p2) > 0.01 {
					t.Fatalf("focal %d: impact probability changed under permutation: %g vs %g",
						focal, p1, p2)
				}
				if len(r1.Regions) > 0 {
					nonEmpty++
				}
			}
			if nonEmpty == 0 {
				t.Fatal("every focal produced an empty result; the property was tested vacuously")
			}
		})
	}
}

func TestMetamorphicPositiveScalingInvariance(t *testing.T) {
	const (
		n, d, k       = 50, 3, 4
		impactSamples = 20000
	)
	rng := rand.New(rand.NewSource(23))
	records := randRecords(rng, n, d)
	db1, err := Open(records)
	if err != nil {
		t.Fatal(err)
	}

	// 2.0 is a power of two (scaling is bit-exact); 3.7 exercises the
	// rounding-sensitive path.
	for _, scale := range []float64{2.0, 3.7} {
		scaled := make([][]float64, n)
		for i, r := range records {
			s := make([]float64, d)
			for j, v := range r {
				s[j] = v * scale
			}
			scaled[i] = s
		}
		db2, err := Open(scaled)
		if err != nil {
			t.Fatal(err)
		}
		for _, tc := range metamorphicAlgorithms {
			for _, focal := range []int{3, 29} {
				r1, err := db1.KSPR(focal, k, WithAlgorithm(tc.algo))
				if err != nil {
					t.Fatalf("%s focal %d unscaled: %v", tc.name, focal, err)
				}
				r2, err := db2.KSPR(focal, k, WithAlgorithm(tc.algo))
				if err != nil {
					t.Fatalf("%s focal %d scaled by %g: %v", tc.name, focal, scale, err)
				}
				if r1.Stats.BaseRank != r2.Stats.BaseRank {
					t.Fatalf("%s focal %d: base rank changed under scaling by %g: %d vs %d",
						tc.name, focal, scale, r1.Stats.BaseRank, r2.Stats.BaseRank)
				}
				crossContained(t, r1, r2, 1e-7)
				p1 := db1.ImpactProbability(r1, impactSamples, 5)
				p2 := db2.ImpactProbability(r2, impactSamples, 5)
				if math.Abs(p1-p2) > 0.01 {
					t.Fatalf("%s focal %d: impact probability changed under scaling by %g: %g vs %g",
						tc.name, focal, scale, p1, p2)
				}
			}
		}
	}
}

func TestMetamorphicVolumeBudget(t *testing.T) {
	cases := []struct {
		n, d, k int
		focals  []int
		slack   float64 // multiplicative tolerance on the simplex bound
	}{
		// d=3 transforms to 2-dim regions: polygon areas are exact, so
		// only fp noise is allowed over the bound.
		{n: 60, d: 3, k: 5, focals: []int{0, 17, 42}, slack: 1e-9},
		// d=4 transforms to 3-dim regions: tetrahedralization is exact
		// when it succeeds but Monte-Carlo estimation may overshoot.
		{n: 40, d: 4, k: 4, focals: []int{5, 21}, slack: 0.05},
	}
	for _, c := range cases {
		rng := rand.New(rand.NewSource(37))
		db, err := Open(randRecords(rng, c.n, c.d))
		if err != nil {
			t.Fatal(err)
		}
		// The transformed preference space is the (d-1)-simplex
		// {w_i >= 0, sum w_i <= 1}, of measure 1/(d-1)!.
		bound := 1.0
		for i := 2; i < c.d; i++ {
			bound /= float64(i)
		}
		var sawVolume bool
		for _, tc := range metamorphicAlgorithms {
			for _, focal := range c.focals {
				res, err := db.KSPR(focal, c.k,
					WithAlgorithm(tc.algo), WithVolumes(4000), WithSeed(2))
				if err != nil {
					t.Fatalf("%s d=%d focal %d: %v", tc.name, c.d, focal, err)
				}
				total := res.TotalVolume()
				if total < 0 {
					t.Fatalf("%s d=%d focal %d: negative total volume %g", tc.name, c.d, focal, total)
				}
				if total > bound*(1+c.slack) {
					t.Fatalf("%s d=%d focal %d: region volumes sum to %g, exceeding the simplex measure %g",
						tc.name, c.d, focal, total, bound)
				}
				for i := range res.Regions {
					if v := res.Regions[i].Volume; v < 0 || v > bound*(1+c.slack) {
						t.Fatalf("%s d=%d focal %d: region %d volume %g outside [0, %g]",
							tc.name, c.d, focal, i, v, bound)
					}
				}
				if total > 0 {
					sawVolume = true
				}
			}
		}
		if !sawVolume {
			t.Fatalf("d=%d: every query reported zero volume; the budget was tested vacuously", c.d)
		}
		// The approximate engine shares the budget: resolved plus
		// uncertain measure cannot exceed the space.
		appr, err := db.KSPRApprox(c.focals[0], c.k, 0.05)
		if err != nil {
			t.Fatalf("approx d=%d: %v", c.d, err)
		}
		if total := appr.TotalVolume() + appr.UncertainVolume; total > bound*(1+c.slack)+1e-9 {
			t.Fatalf("approx d=%d: resolved+uncertain volume %g exceeds the simplex measure %g",
				c.d, total, bound)
		}
	}
}
