package kspr

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/core"
)

func liveRecords(seed int64, n, d int) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	recs := make([][]float64, n)
	for i := range recs {
		recs[i] = make([]float64, d)
		for j := range recs[i] {
			recs[i][j] = rng.Float64()
		}
	}
	return recs
}

func TestApplyInMemory(t *testing.T) {
	db, err := Open(liveRecords(1, 50, 3))
	if err != nil {
		t.Fatal(err)
	}
	if db.Generation() != 1 {
		t.Fatalf("initial generation %d", db.Generation())
	}
	res, err := db.Apply(Insert(0.9, 0.9, 0.9), Delete(3), Update(5, 0.1, 0.2, 0.3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Generation != 2 {
		t.Fatalf("generation %d, want 2", res.Generation)
	}
	if db.Len() != 50 {
		t.Fatalf("len %d, want 50", db.Len())
	}
	if res.IDs[0] != 50 {
		t.Fatalf("assigned id %d, want 50", res.IDs[0])
	}
	if res.Deltas[1].Old == nil || res.Deltas[1].New != nil {
		t.Fatalf("delete delta %+v", res.Deltas[1])
	}
	// Stable id 5 still maps to its (shifted) dense index with new values.
	dense, ok := db.DenseIndex(5)
	if !ok {
		t.Fatal("id 5 lost")
	}
	if got := db.Record(dense); got[0] != 0.1 {
		t.Fatalf("update not visible: %v", got)
	}
	if _, ok := db.DenseIndex(3); ok {
		t.Fatal("deleted id still resolves")
	}
	// Invalid batches are atomic no-ops.
	if _, err := db.Apply(Insert(0.5, 0.5, 0.5), Delete(3)); err == nil {
		t.Fatal("bad batch accepted")
	}
	if db.Generation() != 2 || db.Len() != 50 {
		t.Fatalf("failed batch changed state: gen=%d len=%d", db.Generation(), db.Len())
	}
}

func TestFreezePinsGeneration(t *testing.T) {
	db, err := Open(liveRecords(2, 40, 3))
	if err != nil {
		t.Fatal(err)
	}
	frozen := db.Freeze()
	if _, err := db.Apply(Delete(0)); err != nil {
		t.Fatal(err)
	}
	if frozen.Len() != 40 || db.Len() != 39 {
		t.Fatalf("frozen len %d / live len %d", frozen.Len(), db.Len())
	}
	if frozen.Generation() != 1 || db.Generation() != 2 {
		t.Fatalf("frozen gen %d / live gen %d", frozen.Generation(), db.Generation())
	}
	if _, err := frozen.Apply(Delete(1)); err == nil {
		t.Fatal("Apply on frozen handle accepted")
	}
	// Queries on the frozen handle still work and see the old dataset.
	if _, err := frozen.KSPR(0, 3); err != nil {
		t.Fatalf("frozen query: %v", err)
	}
}

func TestOpenStoreRecovers(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenStore(dir, WithSnapshotEvery(4))
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() != 0 || db.Generation() != 0 {
		t.Fatalf("fresh store: len=%d gen=%d", db.Len(), db.Generation())
	}
	// Queries on an empty dataset error cleanly rather than panicking.
	if _, err := db.KSPR(0, 3); err == nil {
		t.Fatal("query on empty dataset accepted")
	}
	if _, err := db.KSPRVector([]float64{0.5, 0.5}, 3); err == nil {
		t.Fatal("vector query on empty dataset accepted")
	}

	muts := []Mutation{}
	for _, r := range liveRecords(3, 30, 3) {
		muts = append(muts, Insert(r...))
	}
	if _, err := db.Apply(muts...); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 9; i++ {
		if _, err := db.Apply(Insert(0.2, 0.3, 0.4)); err != nil {
			t.Fatal(err)
		}
	}
	wantGen, wantLen := db.Generation(), db.Len()
	wantSky := db.Skyline()

	// Crash: reopen without Close.
	db2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if db2.Generation() != wantGen || db2.Len() != wantLen {
		t.Fatalf("recovered gen=%d len=%d, want gen=%d len=%d",
			db2.Generation(), db2.Len(), wantGen, wantLen)
	}
	got := db2.Skyline()
	if len(got) != len(wantSky) {
		t.Fatalf("recovered skyline %v, want %v", got, wantSky)
	}
	for i := range got {
		if got[i] != wantSky[i] {
			t.Fatalf("recovered skyline %v, want %v", got, wantSky)
		}
	}
	if err := db2.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestWatchAndMaintainKSPR(t *testing.T) {
	db, err := Open(liveRecords(4, 120, 3))
	if err != nil {
		t.Fatal(err)
	}
	var events []ApplyEvent
	cancel := db.Watch(func(ev ApplyEvent) { events = append(events, ev) })
	defer cancel()

	band := db.KSkyband(5)
	focal := band[len(band)/2]
	lq, err := db.MaintainKSPR(focal, 5)
	if err != nil {
		t.Fatal(err)
	}
	defer lq.Close()

	focalStable, _ := db.StableID(focal)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 12; i++ {
		var err error
		switch i % 3 {
		case 0: // irrelevant: deep-interior insert
			_, err = db.Apply(Insert(0.02+0.05*rng.Float64(), 0.02, 0.02))
		case 1: // relevant: skyline-ish insert
			_, err = db.Apply(Insert(0.9+0.1*rng.Float64(), 0.9, 0.95))
		default: // delete a non-focal record
			st, _ := db.StableID(rng.Intn(db.Len()))
			if st == focalStable {
				st, _ = db.StableID(0)
			}
			_, err = db.Apply(Delete(st))
		}
		if err != nil {
			t.Fatalf("apply %d: %v", i, err)
		}

		res, gen, err := lq.Result()
		if err != nil {
			t.Fatalf("maintained result %d: %v", i, err)
		}
		if gen != db.Generation() {
			t.Fatalf("maintained gen %d, live gen %d", gen, db.Generation())
		}
		dense, ok := db.DenseIndex(focalStable)
		if !ok {
			t.Fatal("focal disappeared")
		}
		cold, err := db.KSPR(dense, 5)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(core.EncodeResult(res), core.EncodeResult(cold)) {
			t.Fatalf("step %d: maintained result != cold query", i)
		}
	}
	if len(events) != 12 {
		t.Fatalf("watcher saw %d events, want 12", len(events))
	}
	st := lq.Stats()
	if st.Kept == 0 || st.Recomputed == 0 {
		t.Fatalf("maintained query stats %+v: want both paths exercised", st)
	}

	// Deleting the focal option poisons the maintained query.
	if _, err := db.Apply(Delete(focalStable)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := lq.Result(); err == nil {
		t.Fatal("maintained query survived focal deletion")
	}
}

func TestMutationImpactClassification(t *testing.T) {
	db, err := Open([][]float64{
		{0.9, 0.9}, {0.8, 0.95}, {0.95, 0.8}, // skyline
		{0.5, 0.5}, // focal
		{0.7, 0.7},
	})
	if err != nil {
		t.Fatal(err)
	}
	old := db.Freeze()
	res, err := db.Apply(Insert(0.6, 0.6))
	if err != nil {
		t.Fatal(err)
	}
	cur := db.Freeze()
	mi := NewMutationImpact(old, cur, res.Deltas)
	focal := old.Record(3)
	if !mi.Unaffected(focal, 3, 3, 2, LPCTA) {
		t.Fatal("2-dominated insert classified affecting at k=2")
	}
	if mi.Unaffected(focal, 3, 3, 5, LPCTA) {
		t.Fatal("insert classified unaffecting at k=5 (only 4 dominators exist)")
	}
	if mi.Unaffected(focal, 3, 3, 2, CTA) {
		t.Fatal("CTA must not keep through Tier B")
	}
	// Tier A: a record below the focal is irrelevant for any algorithm.
	res2, err := db.Apply(Insert(0.2, 0.2))
	if err != nil {
		t.Fatal(err)
	}
	mi2 := NewMutationImpact(cur, db.Freeze(), res2.Deltas)
	if !mi2.Unaffected(focal, 3, 3, 2, CTA) {
		t.Fatal("focal-dominated insert classified affecting for CTA")
	}
}

// TestImpactProbabilitySamplesContract pins the documented guard:
// samples <= 0 (or a nil result) yields 0, never NaN or a silent
// default.
func TestImpactProbabilitySamplesContract(t *testing.T) {
	db, err := Open(liveRecords(6, 60, 3))
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.KSPR(db.KSkyband(3)[0], 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, samples := range []int{0, -1, -100} {
		if got := db.ImpactProbability(res, samples, 1); got != 0 {
			t.Fatalf("ImpactProbability(samples=%d) = %v, want 0", samples, got)
		}
		if got := db.ImpactProbabilityPDF(res, func([]float64) float64 { return 1 }, samples, 1); got != 0 {
			t.Fatalf("ImpactProbabilityPDF(samples=%d) = %v, want 0", samples, got)
		}
	}
	if got := db.ImpactProbability(nil, 1000, 1); got != 0 {
		t.Fatalf("ImpactProbability(nil res) = %v, want 0", got)
	}
	if got := db.ImpactProbability(res, 5000, 1); got <= 0 || got > 1 {
		t.Fatalf("positive-samples probability %v out of (0, 1]", got)
	}
}

// TestOpenStoreOptions exercises the store option surface: WAL fsync,
// custom fanout, and forced snapshots.
func TestOpenStoreOptions(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenStore(dir, WithWALSync(), WithStoreFanout(8), WithSnapshotEvery(-1))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.SnapshotStore(); err != nil {
		t.Fatalf("snapshot of empty store: %v", err)
	}
	if _, err := db.Apply(Insert(0.1, 0.2), Insert(0.3, 0.4)); err != nil {
		t.Fatal(err)
	}
	if err := db.SnapshotStore(); err != nil {
		t.Fatalf("forced snapshot: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if db2.Generation() != 1 || db2.Len() != 2 {
		t.Fatalf("recovered gen=%d len=%d", db2.Generation(), db2.Len())
	}
	// In-memory DBs have no store to snapshot.
	mem, err := Open(liveRecords(8, 10, 2))
	if err != nil {
		t.Fatal(err)
	}
	if err := mem.SnapshotStore(); err == nil {
		t.Fatal("SnapshotStore on an in-memory DB accepted")
	}
	if err := mem.Close(); err != nil {
		t.Fatalf("in-memory Close: %v", err)
	}
}
