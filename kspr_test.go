package kspr

import (
	"math"
	"math/rand"
	"testing"
)

func randRecords(rng *rand.Rand, n, d int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		r := make([]float64, d)
		for j := range r {
			r[j] = rng.Float64()
		}
		out[i] = r
	}
	return out
}

func TestOpenValidation(t *testing.T) {
	if _, err := Open(nil); err == nil {
		t.Fatal("expected error for empty dataset")
	}
	if _, err := Open([][]float64{{1}}); err == nil {
		t.Fatal("expected error for 1-d records")
	}
	if _, err := Open([][]float64{{1, 2}, {1, 2, 3}}); err == nil {
		t.Fatal("expected error for ragged records")
	}
}

func TestOpenCopiesRecords(t *testing.T) {
	recs := [][]float64{{0.1, 0.2}, {0.3, 0.4}}
	db, err := Open(recs)
	if err != nil {
		t.Fatal(err)
	}
	recs[0][0] = 99
	if db.Record(0)[0] == 99 {
		t.Fatal("DB aliases caller memory")
	}
}

func TestBasicQueryAndAccessors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	db, err := Open(randRecords(rng, 100, 3), WithFanout(16))
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() != 100 || db.Dim() != 3 {
		t.Fatalf("shape %dx%d", db.Len(), db.Dim())
	}
	focal := db.Skyline()[0]
	res, err := db.KSPR(focal, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Regions) == 0 {
		t.Fatal("skyline record with k=5 should have regions")
	}
	if _, err := db.KSPR(-1, 5); err == nil {
		t.Fatal("expected error for bad focal id")
	}
	if _, err := db.KSPR(0, 0); err == nil {
		t.Fatal("expected error for k=0")
	}
}

func TestKSPRVector(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	db, err := Open(randRecords(rng, 60, 3))
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.KSPRVector([]float64{1.01, 1.01, 1.01}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// A record dominating everything is top-1 everywhere: regions must
	// cover the whole simplex.
	prob := db.ImpactProbability(res, 20000, 7)
	if prob < 0.999 {
		t.Fatalf("dominating record has impact probability %v, want ~1", prob)
	}
}

func TestQueryOptionsAreHonoured(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	db, err := Open(randRecords(rng, 80, 3))
	if err != nil {
		t.Fatal(err)
	}
	focal := db.Skyline()[0]

	var streamed int
	res, err := db.KSPR(focal, 3,
		WithAlgorithm(PCTA),
		WithProgressive(func(Region) { streamed++ }),
		WithVolumes(3000),
		WithSeed(11),
		WithoutGeometry(),
	)
	if err != nil {
		t.Fatal(err)
	}
	if streamed != len(res.Regions) {
		t.Fatalf("streamed %d regions, result has %d", streamed, len(res.Regions))
	}
	for _, reg := range res.Regions {
		if reg.Vertices != nil {
			t.Fatal("WithoutGeometry left vertices")
		}
	}
	if res.TotalVolume() <= 0 {
		t.Fatal("WithVolumes produced no volume")
	}

	orig, err := db.KSPR(focal, 3, WithSpace(Original))
	if err != nil {
		t.Fatal(err)
	}
	if orig.Space != Original {
		t.Fatal("WithSpace(Original) ignored")
	}
}

func TestKSPRBatchMatchesSingleQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	db, err := Open(randRecords(rng, 150, 3))
	if err != nil {
		t.Fatal(err)
	}
	sky := db.Skyline()
	queries := []BatchQuery{
		{FocalID: sky[0]},
		{FocalID: sky[len(sky)-1], K: 3},
		{FocalID: -1, Focal: []float64{0.9, 0.9, 0.9}},
		{FocalID: 10},
	}
	outs, err := db.KSPRBatch(queries, 6,
		WithBatchOptions(WithAlgorithm(PCTA), WithParallelism(3)))
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range queries {
		if outs[i].Err != nil {
			t.Fatalf("item %d: %v", i, outs[i].Err)
		}
		k := q.K
		if k == 0 {
			k = 6
		}
		var want *Result
		if q.FocalID < 0 {
			want, err = db.KSPRVector(q.Focal, k, WithAlgorithm(PCTA), WithParallelism(1))
		} else {
			want, err = db.KSPR(q.FocalID, k, WithAlgorithm(PCTA), WithParallelism(1))
		}
		if err != nil {
			t.Fatalf("item %d single query: %v", i, err)
		}
		got := outs[i].Result
		if len(got.Regions) != len(want.Regions) {
			t.Fatalf("item %d: batch %d regions, single %d", i, len(got.Regions), len(want.Regions))
		}
		for j := range got.Regions {
			if got.Regions[j].Rank != want.Regions[j].Rank ||
				!got.Regions[j].Witness.Equal(want.Regions[j].Witness) {
				t.Fatalf("item %d region %d differs", i, j)
			}
		}
	}

	// Per-item failures stay per-item.
	outs, err = db.KSPRBatch([]BatchQuery{{FocalID: 0}, {FocalID: 10000}}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if outs[0].Err != nil || outs[1].Err == nil {
		t.Fatalf("want [ok, err], got [%v, %v]", outs[0].Err, outs[1].Err)
	}
}

func TestTopKAndRankConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	db, err := Open(randRecords(rng, 120, 4))
	if err != nil {
		t.Fatal(err)
	}
	w := []float64{0.4, 0.3, 0.2, 0.1}
	top := db.TopK(w, 10)
	if len(top) != 10 {
		t.Fatalf("TopK returned %d ids", len(top))
	}
	for i, id := range top {
		if got := db.Rank(id, w); got != i+1 {
			t.Fatalf("record %d: TopK position %d but Rank %d", id, i+1, got)
		}
	}
}

func TestKSPRResultAgreesWithTopK(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	db, err := Open(randRecords(rng, 90, 3))
	if err != nil {
		t.Fatal(err)
	}
	focal := db.Skyline()[0]
	k := 4
	res, err := db.KSPR(focal, k)
	if err != nil {
		t.Fatal(err)
	}
	// For random weights, membership in regions must match top-k presence.
	for s := 0; s < 300; s++ {
		raw := [3]float64{rng.ExpFloat64() + 1e-9, rng.ExpFloat64() + 1e-9, rng.ExpFloat64() + 1e-9}
		sum := raw[0] + raw[1] + raw[2]
		w := []float64{raw[0] / sum, raw[1] / sum, raw[2] / sum}
		rank := db.Rank(focal, w)
		if rank == k || rank == k+1 {
			continue // ties at the boundary are fair game either way
		}
		in := res.ContainsWeight([]float64{w[0], w[1]}, 1e-9)
		if in != (rank <= k) {
			if res.ContainsWeight([]float64{w[0], w[1]}, 1e-6) != res.ContainsWeight([]float64{w[0], w[1]}, -1e-6) {
				continue
			}
			t.Fatalf("w=%v rank=%d in=%v", w, rank, in)
		}
	}
}

func TestImpactProbabilityPDF(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	db, err := Open(randRecords(rng, 70, 3))
	if err != nil {
		t.Fatal(err)
	}
	focal := db.Skyline()[0]
	res, err := db.KSPR(focal, 5)
	if err != nil {
		t.Fatal(err)
	}
	uniform := db.ImpactProbability(res, 30000, 9)
	viaPDF := db.ImpactProbabilityPDF(res, func([]float64) float64 { return 2.5 }, 30000, 9)
	if math.Abs(uniform-viaPDF) > 1e-12 {
		t.Fatalf("constant pdf must match uniform: %v vs %v", uniform, viaPDF)
	}
	if uniform < 0 || uniform > 1 {
		t.Fatalf("probability %v out of range", uniform)
	}
	// A pdf concentrated on a witness region should raise the probability.
	if len(res.Regions) > 0 {
		wit := res.Regions[0].Witness
		peaked := db.ImpactProbabilityPDF(res, func(w []float64) float64 {
			d := 0.0
			for j := range wit {
				d += (w[j] - wit[j]) * (w[j] - wit[j])
			}
			return math.Exp(-50 * d)
		}, 30000, 9)
		if peaked <= uniform {
			t.Fatalf("pdf peaked inside a region should exceed uniform: %v <= %v", peaked, uniform)
		}
	}
}

// TestImpactProbabilityMatchesExactVolumes cross-checks the Monte-Carlo
// membership estimate against ground truth: for d=3 data the transformed
// preference space is 2-dimensional, where region volumes are computed
// exactly (polygon areas), so the result's total volume divided by the
// simplex measure (1/2) IS the impact probability. The estimate must agree
// within the documented O(1/sqrt(samples)) bound; the tolerance below is
// ~4 standard deviations of the binomial estimator, so a systematic bias
// in either the sampler or the volume sums trips it.
func TestImpactProbabilityMatchesExactVolumes(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	db, err := Open(randRecords(rng, 80, 3))
	if err != nil {
		t.Fatal(err)
	}
	const samples = 40000
	for _, focal := range []int{db.Skyline()[0], db.KSkyband(5)[2]} {
		res, err := db.KSPR(focal, 5, WithVolumes(samples))
		if err != nil {
			t.Fatal(err)
		}
		exact := res.TotalVolume() / 0.5 // simplex {w>=0, w1+w2<=1} has area 1/2
		if exact < 0 || exact > 1+1e-9 {
			t.Fatalf("exact volume share %v out of range", exact)
		}
		mc := db.ImpactProbability(res, samples, 31)
		tol := 4 * math.Sqrt(exact*(1-exact)/samples+1e-12)
		if math.Abs(mc-exact) > tol+1e-6 {
			t.Fatalf("focal %d: Monte-Carlo impact %v vs exact volume share %v (tol %v)",
				focal, mc, exact, tol)
		}
	}
}

func TestSkybandContainsSkyline(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	db, err := Open(randRecords(rng, 150, 3))
	if err != nil {
		t.Fatal(err)
	}
	sky := db.Skyline()
	band := db.KSkyband(3)
	set := map[int]bool{}
	for _, id := range band {
		set[id] = true
	}
	for _, id := range sky {
		if !set[id] {
			t.Fatalf("skyline record %d missing from 3-skyband", id)
		}
	}
	if len(band) < len(sky) {
		t.Fatal("3-skyband smaller than skyline")
	}
}

func TestKSPRApprox(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	db, err := Open(randRecords(rng, 150, 3))
	if err != nil {
		t.Fatal(err)
	}
	focal := db.Skyline()[0]
	res, err := db.KSPRApprox(focal, 5, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("approximate query did not converge")
	}
	// Certain regions must agree with the exact result wherever sampled.
	exact, err := db.KSPR(focal, 5)
	if err != nil {
		t.Fatal(err)
	}
	agree := 0
	for s := 0; s < 200; s++ {
		a, b := rng.Float64(), rng.Float64()
		if a+b >= 1 {
			continue
		}
		wt := []float64{a, b}
		if res.ContainsWeight(wt, 1e-9) {
			if !exact.ContainsWeight(wt, 1e-7) {
				t.Fatalf("approx-certain point %v not in exact result", wt)
			}
			agree++
		}
	}
	if agree == 0 {
		t.Skip("no certain hits sampled; focal region too small")
	}
	if _, err := db.KSPRApprox(-1, 5, 0.1); err == nil {
		t.Fatal("expected error for bad focal id")
	}
	if _, err := db.KSPRApproxVector([]float64{0.9, 0.9, 0.9}, 3, 0.05); err != nil {
		t.Fatal(err)
	}
}
