GO ?= go

.PHONY: build test race bench fmt vet clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench writes BENCH_local.json (ns/op per algorithm) for perf tracking.
bench:
	$(GO) run ./cmd/ksprbench -json -name local -scale 0.5 -queries 3

fmt:
	gofmt -l .

vet:
	$(GO) vet ./...

clean:
	rm -f BENCH_*.json
