GO ?= go

.PHONY: build test race bench fmt vet docs clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench writes BENCH_core.json: ns/op per algorithm with the serial engine
# and with a 4-worker engine, plus the speedup ratio — the perf trajectory
# successive PRs diff against. -parallel is pinned so the file's schema
# does not depend on the host's core count (the recorded "cpus" field
# tells you how much hardware the speedup had to work with).
bench:
	$(GO) run ./cmd/ksprbench -json -name core -scale 0.5 -queries 3 -parallel 4

fmt:
	gofmt -l .

vet:
	$(GO) vet ./...

# docs runs the documentation gates CI enforces: every relative markdown
# link resolves, and every exported identifier in the core packages has a
# doc comment.
docs:
	./scripts/check_links.sh
	./scripts/check_docs.sh

clean:
	rm -f BENCH_*.json
