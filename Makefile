GO ?= go

# Single source of truth for the staticcheck pin; CI installs the same
# version (see .github/workflows/ci.yml).
STATICCHECK_VERSION := $(shell cat scripts/staticcheck_version.txt)

.PHONY: build test race racestress bench fmt vet docs lint coverage benchgate largengate load loadgate fuzz crashsmoke ci clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# racestress repeats the race-detector run over the packages with the most
# lock-heavy concurrency (per-endpoint metrics, trace recording) to shake
# out ordering-dependent races a single pass can miss. CI runs it too.
racestress:
	$(GO) test -race -count=3 ./internal/server ./internal/obs

# bench writes BENCH_core.json: ns/op per algorithm with the serial engine
# and with a 4-worker engine, plus the speedup ratio, plus the shared-work
# batch sweep (8 focals as one KSPRBatch pass vs 8 serial runs), plus the
# live-dataset sweep (WAL apply throughput and incremental-vs-cold kSPR
# maintenance over 48 mutations), plus the what-if sweep (a 16-point
# impact-price frontier and a repricing bisection, recording probe latency
# and the incremental keep rate), plus the large-N sweep (columnar-kernel
# timings at n = 1e3..1e6; the 1e6 point lands in ns_per_op_n1e6, which
# the large-n CI lane gates) — the perf trajectory successive PRs diff
# against. -parallel and -batch are pinned so the file's schema does not
# depend on the host's core count (the recorded "cpus" field tells you how
# much hardware the speedups had to work with; on a 1-CPU container both
# hover near 1.0x by physics).
bench:
	$(GO) run ./cmd/ksprbench -json -name core -scale 0.5 -queries 20 -parallel 4 -batch 8 -mutate 48 -whatif 16 -n 1000000

fmt:
	gofmt -l .

vet:
	$(GO) vet ./...

# docs runs the documentation gates CI enforces: every relative markdown
# link resolves, and every exported identifier in the core packages has a
# doc comment.
docs:
	./scripts/check_links.sh
	./scripts/check_docs.sh

# lint mirrors CI's staticcheck step when the tool is installed locally
# (go install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) —
# the pin lives in scripts/staticcheck_version.txt, shared with CI); it
# skips with a note otherwise, so `make ci` works on minimal machines.
lint:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./... ; \
	else \
		echo "lint: staticcheck not installed, skipping (CI pins staticcheck@$(STATICCHECK_VERSION))" ; \
	fi

# coverage enforces the committed floor in scripts/coverage_floor.txt.
coverage:
	./scripts/check_coverage.sh

# benchgate re-measures the BENCH_core.json workload and fails on >30%
# ns/op regression (BENCH_MAX_REGRESS / BENCH_INJECT override; see
# scripts/check_bench.sh).
benchgate:
	./scripts/check_bench.sh

# largengate re-measures the 1e6-record columnar-kernel sweep and fails on
# >50% regression against BENCH_core.json's ns_per_op_n1e6 map
# (LARGEN_MAX_REGRESS / LARGEN_INJECT override; see
# scripts/check_largen.sh).
largengate:
	./scripts/check_largen.sh

# load refreshes the committed BENCH_load.json baseline: a 10s mixed
# kspr/batch/mutate/what-if run of cmd/ksprload against a self-hosted
# serving stack, with the invariant verifier armed. The summary is
# written before the verdict so violations stay inspectable, but a run
# that exits non-zero must not be committed as a baseline.
load:
	$(GO) run ./cmd/ksprload -duration 10s -conc 8 -name load

# loadgate re-runs a short ksprload workload and fails on p99 or
# error-rate regression against the committed BENCH_load.json
# (LOAD_DURATION / LOAD_MAX_REGRESS / LOAD_INJECT override; see
# scripts/check_load.sh).
loadgate:
	./scripts/check_load.sh

# fuzz smoke-runs the native Go fuzz targets over the untrusted parsers —
# :mutate body decoding (internal/server) and WAL frame / snapshot /
# candidate-index decoding (internal/store) — for FUZZTIME each, on top
# of their committed seed corpora in testdata/fuzz/.
FUZZTIME ?= 10s
fuzz:
	$(GO) test ./internal/server -run '^$$' -fuzz FuzzDecodeMutateRequest -fuzztime $(FUZZTIME)
	$(GO) test ./internal/store -run '^$$' -fuzz FuzzDecodeWALPayload -fuzztime $(FUZZTIME)
	$(GO) test ./internal/store -run '^$$' -fuzz FuzzLoadSnapshot -fuzztime $(FUZZTIME)
	$(GO) test ./internal/store -run '^$$' -fuzz FuzzDecodeIndex -fuzztime $(FUZZTIME)

# crashsmoke kills a WAL-backed ksprd mid-mutation-stream with SIGKILL,
# restarts it over the same store directory, and asserts recovery restores
# exactly the last acknowledged generation and record count.
crashsmoke:
	$(GO) run ./scripts/crashsmoke

# ci mirrors the GitHub workflow locally: formatting, vet, build, race
# tests, doc gates, the crash-recovery smoke test, lint, the coverage
# floor, the bench regression gate, the large-N regression gate, a short
# fuzz smoke, and the load regression gate.
ci:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./...
	$(MAKE) racestress
	./scripts/check_links.sh
	./scripts/check_docs.sh
	$(MAKE) crashsmoke
	$(MAKE) lint
	$(MAKE) coverage
	$(MAKE) benchgate
	$(MAKE) largengate
	$(MAKE) fuzz FUZZTIME=5s
	$(MAKE) loadgate

clean:
	rm -f BENCH_ci.json BENCH_largen.json BENCH_load_ci.json cover.out cpu.out mutex.out
