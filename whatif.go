package kspr

// The what-if surface of DB: competitive impact attribution (Competitors),
// repricing search (PriceToTarget), and impact–price frontiers (Frontier).
// All three answer the paper's motivating seller questions — "who takes my
// preference space, and what is the cheapest reprice that wins a target
// share of it" — on top of the existing machinery: attribution aggregates
// the exact per-region Outscorers facts the cell tree proved, reprice
// probes run against a Freeze-pinned scratch dataset kept warm by
// MaintainKSPR (so hopeless prices are absorbed by the incremental keep
// path instead of engine runs), and frontier sweeps share skyband and
// dominance work through KSPRBatch. See docs/ARCHITECTURE.md, "What-if
// layer".

import (
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/rtree"
)

// ErrTargetUnreachable reports a PriceToTarget whose target impact is not
// reachable within the allowed attribute change (spec.MaxDelta, or the
// automatic expansion limit).
var ErrTargetUnreachable = errors.New("kspr: target impact unreachable within the allowed reprice")

// DefaultWhatIfSamples is the Monte-Carlo sample count what-if calls use
// when the caller passes none; serving layers reuse it so their cache
// keys and responses stay consistent with library behavior.
const DefaultWhatIfSamples = 20000

// WhatIfStats reports how a what-if call spent its probes: how many impact
// evaluations ran, how many the incremental machinery answered without an
// engine recompute (the Maintainer keep tiers for reprice probes, the
// dominator-count classification for frontier grid points), and the
// average wall-clock cost per probe.
type WhatIfStats struct {
	// Probes is the number of impact evaluations the call performed
	// (including the baseline); Kept of them were answered by the
	// incremental keep/classification path, Recomputed ran the engine.
	Probes     int
	Kept       int
	Recomputed int
	// KeepRate is Kept / (Kept + Recomputed), 0 when nothing was probed.
	KeepRate float64
	// ProbeNs is the average wall-clock nanoseconds per probe; ElapsedNs
	// the whole call.
	ProbeNs   int64
	ElapsedNs int64
}

// fill derives the ratio fields from the counters.
func (s *WhatIfStats) fill(elapsed time.Duration) {
	if n := s.Kept + s.Recomputed; n > 0 {
		s.KeepRate = float64(s.Kept) / float64(n)
	}
	s.ElapsedNs = elapsed.Nanoseconds()
	if s.Probes > 0 {
		s.ProbeNs = s.ElapsedNs / int64(s.Probes)
	}
}

// CompetitorImpact is one competitor's share of a focal option's
// preference space; see core.AttributionEntry for the measure semantics.
type CompetitorImpact struct {
	// ID is the competitor's dense record index at Generation; StableID its
	// stable option id (equal to ID for purely in-memory datasets).
	ID       int
	StableID int64
	// MissShare is the fraction of preference space where the focal misses
	// the top-k and this competitor holds a shortlist slot; PressureShare
	// the fraction where the focal is shortlisted but this competitor
	// still outranks it (a proven lower bound when the result contains
	// early-reported regions — see core.AttributionEntry).
	MissShare     float64
	PressureShare float64
}

// Attribution answers "which competitors take my preference space": the
// focal option's impact probability plus the per-competitor decomposition
// of the space it does not hold. Produced by DB.Competitors.
type Attribution struct {
	// Focal is the focal record's dense index at Generation; K the
	// shortlist size; Samples the Monte-Carlo sample count behind the
	// probabilities (error O(1/sqrt(Samples))).
	Focal      int
	K          int
	Generation uint64
	Samples    int
	// Impact is the probability the focal is shortlisted under uniform
	// preferences; Miss its complement on the same samples.
	Impact float64
	Miss   float64
	// Competitors lists every record observed taking or pressuring the
	// focal's space, MissShare (then PressureShare, then ID) descending.
	Competitors []CompetitorImpact
}

// Competitors attributes the focal option's missing preference space to
// the specific competitors occupying it. It answers the focal's kSPR query
// (honouring opts), then measures with samples uniform preference draws:
// inside result regions the exact Region.Outscorers facts say who outranks
// the focal; outside them the K-skyband says who holds the shortlist.
// samples <= 0 uses 20000. The attribution is computed on one pinned
// generation — concurrent mutations do not tear it.
func (db *DB) Competitors(focalID, k, samples int, seed int64, opts ...QueryOption) (*Attribution, error) {
	st := db.cur()
	if st.tree == nil || focalID < 0 || focalID >= st.tree.Len() {
		return nil, fmt.Errorf("kspr: focal id %d out of range [0, %d)", focalID, db.Len())
	}
	if samples <= 0 {
		samples = DefaultWhatIfSamples
	}
	focal := st.tree.Records[focalID]
	res, err := db.query(st, focal, focalID, k, opts)
	if err != nil {
		return nil, err
	}
	ca, err := core.Attribute(st.tree, res, focal, focalID, samples, seed)
	if err != nil {
		return nil, err
	}
	attr := &Attribution{
		Focal:      focalID,
		K:          k,
		Generation: st.gen,
		Samples:    ca.Samples,
		Impact:     ca.Impact,
		Miss:       ca.Miss,
	}
	attr.Competitors = make([]CompetitorImpact, len(ca.Entries))
	for i, e := range ca.Entries {
		attr.Competitors[i] = CompetitorImpact{
			ID:            e.ID,
			StableID:      st.ids[e.ID],
			MissShare:     e.MissShare,
			PressureShare: e.PressureShare,
		}
	}
	return attr, nil
}

// RepriceSpec configures PriceToTarget.
type RepriceSpec struct {
	// Attr is the attribute index to improve (0-based; attributes are
	// "larger is better", so a price attribute is its cheapness encoding).
	Attr int
	// Target is the impact the reprice must reach, in (0, 1]: the
	// probability a uniformly random preference shortlists the focal (or,
	// with VolumeMetric, the result regions' share of the preference-space
	// measure).
	Target float64
	// MaxDelta bounds the attribute increase; <= 0 expands the bracket
	// automatically (doubling) until the target is reached or provably out
	// of reach.
	MaxDelta float64
	// Eps is the bisection's resolution on the attribute axis (default
	// 1e-6): the returned Delta satisfies the target while Delta - Eps is
	// not guaranteed to.
	Eps float64
	// Samples and Seed drive the impact estimate. Every probe reuses the
	// same sample set, so the empirical impact is exactly monotone in the
	// attribute and bisection is sound. Samples <= 0 uses 20000.
	Samples int
	Seed    int64
	// VolumeMetric measures impact as the result regions' exact measured
	// volume share instead of Monte-Carlo membership sampling. Exact (and
	// strictly monotone) for 2-dimensional preference spaces; above that
	// region volumes are themselves Monte-Carlo and the curve may wobble
	// within sampling error.
	VolumeMetric bool
}

// Reprice is PriceToTarget's answer: the minimal attribute change reaching
// the target, with the bisection bracket that certifies minimality.
type Reprice struct {
	// Focal, Attr, K, Target echo the request; Generation the pinned
	// dataset generation the search ran against.
	Focal      int
	Attr       int
	K          int
	Target     float64
	Generation uint64
	// Delta is the minimal attribute increase found; Value the resulting
	// attribute value; Impact the impact measured at Delta (>= Target).
	Delta  float64
	Value  float64
	Impact float64
	// Baseline is the impact at the current price. AlreadyMet reports that
	// Baseline >= Target, in which case Delta is 0.
	Baseline   float64
	AlreadyMet bool
	// LowerDelta is the bisection's failing bracket — the largest probed
	// change that does NOT reach the target (Delta - LowerDelta <= Eps) —
	// and LowerImpact its impact, certifying Delta minimal to within Eps.
	LowerDelta  float64
	LowerImpact float64
	// Stats reports the probe economy, including how many probes the
	// incremental keep path absorbed.
	Stats WhatIfStats
}

// PriceToTarget finds the minimal change of one attribute of the focal
// option that lifts its impact to spec.Target, by monotone bisection:
// improving an attribute never shrinks the focal's top-k region, and each
// probe reuses the same sample set, so the empirical impact is
// nondecreasing in the change and the bracket invariant is exact. Each
// probe is a reprice Apply against a scratch copy of the pinned current
// generation whose result MaintainKSPR keeps warm — probes at prices where
// the focal is still dominated out are absorbed by the incremental keep
// path (Stats records the keep rate). The search mutates only the scratch
// dataset, never db.
func (db *DB) PriceToTarget(focalID, k int, spec RepriceSpec, opts ...QueryOption) (*Reprice, error) {
	start := time.Now()
	st := db.cur()
	if st.tree == nil || focalID < 0 || focalID >= st.tree.Len() {
		return nil, fmt.Errorf("kspr: focal id %d out of range [0, %d)", focalID, db.Len())
	}
	if spec.Attr < 0 || spec.Attr >= st.dim {
		return nil, fmt.Errorf("kspr: reprice attribute %d out of range [0, %d)", spec.Attr, st.dim)
	}
	if spec.Target <= 0 || spec.Target > 1 {
		return nil, fmt.Errorf("kspr: target impact must be in (0, 1], got %g", spec.Target)
	}
	if spec.Samples <= 0 {
		spec.Samples = DefaultWhatIfSamples
	}
	if spec.Eps <= 0 {
		spec.Eps = 1e-6
	}

	// Scratch dataset: a mutable in-memory copy of the pinned generation.
	// Dense indexes (and therefore stable ids) match st's by construction.
	if spec.VolumeMetric {
		opts = append(opts[:len(opts):len(opts)], WithVolumes(spec.Samples), WithSeed(spec.Seed))
	}

	recs, maxAttr := snapshotRecords(st, spec.Attr)
	scratch, err := Open(recs, WithFanout(db.treeFanout()))
	if err != nil {
		return nil, err
	}
	lq, err := scratch.MaintainKSPR(focalID, k, opts...)
	if err != nil {
		return nil, err
	}
	defer lq.Close()
	stable, _ := scratch.StableID(focalID)
	base := recs[focalID][spec.Attr]

	rp := &Reprice{
		Focal:      focalID,
		Attr:       spec.Attr,
		K:          k,
		Target:     spec.Target,
		Generation: st.gen,
	}
	probe := func(delta float64) (float64, error) {
		rp.Stats.Probes++
		vec := append([]float64(nil), recs[focalID]...)
		vec[spec.Attr] = base + delta
		if _, err := scratch.Apply(Update(stable, vec...)); err != nil {
			return 0, err
		}
		res, _, err := lq.Result()
		if err != nil {
			return 0, err
		}
		return impactOf(scratch, res, spec.Samples, spec.Seed, spec.VolumeMetric), nil
	}

	// Baseline: the maintained query's initial cold run.
	res0, _, err := lq.Result()
	if err != nil {
		return nil, err
	}
	rp.Stats.Probes++
	rp.Baseline = impactOf(scratch, res0, spec.Samples, spec.Seed, spec.VolumeMetric)
	finish := func() *Reprice {
		ms := lq.Stats()
		// +1: the baseline's initial cold run is an engine probe too, so
		// Probes == Kept + Recomputed holds, matching Frontier's accounting
		// and the WhatIfStats contract.
		rp.Stats.Kept, rp.Stats.Recomputed = int(ms.Kept), int(ms.Recomputed)+1
		rp.Stats.fill(time.Since(start))
		return rp
	}
	if rp.Baseline >= spec.Target {
		rp.AlreadyMet = true
		rp.Delta, rp.Value, rp.Impact = 0, base, rp.Baseline
		rp.LowerDelta, rp.LowerImpact = 0, rp.Baseline
		return finish(), nil
	}

	// Upper bracket: MaxDelta when given, else expand by doubling from the
	// headroom to the dataset's best value in this attribute.
	hi := spec.MaxDelta
	auto := hi <= 0
	if auto {
		hi = maxAttr - base
		if hi <= 0 {
			hi = math.Max(math.Abs(base), 1)
		}
	}
	hiImpact, err := probe(hi)
	if err != nil {
		return nil, err
	}
	// Cap the automatic expansion: 64 doublings from the attribute-range
	// headroom is far beyond any price that could still change a ranking
	// (every sampled weight has a positive attribute component, so impact
	// saturates long before), and it bounds how many engine probes an
	// unreachable target — e.g. a Monte-Carlo ceiling just below 1 — can
	// burn before the search concedes.
	for doublings := 0; hiImpact < spec.Target; doublings++ {
		if !auto || doublings >= 64 {
			rp.Delta, rp.Value, rp.Impact = hi, base+hi, hiImpact
			return finish(), fmt.Errorf("%w: impact %.4f < target %.4f at delta %g",
				ErrTargetUnreachable, hiImpact, spec.Target, hi)
		}
		hi *= 2
		if hiImpact, err = probe(hi); err != nil {
			return nil, err
		}
	}

	lo, loImpact := 0.0, rp.Baseline
	for hi-lo > spec.Eps {
		mid := lo + (hi-lo)/2
		if mid <= lo || mid >= hi {
			break // the bracket is below float resolution
		}
		imp, err := probe(mid)
		if err != nil {
			return nil, err
		}
		if imp >= spec.Target {
			hi, hiImpact = mid, imp
		} else {
			lo, loImpact = mid, imp
		}
	}
	rp.Delta, rp.Value, rp.Impact = hi, base+hi, hiImpact
	rp.LowerDelta, rp.LowerImpact = lo, loImpact
	return finish(), nil
}

// FrontierSpec configures Frontier.
type FrontierSpec struct {
	// Attr is the attribute swept; the grid runs over absolute attribute
	// values from Min to Max inclusive in Steps points (Steps >= 2,
	// default 16). Min == Max == 0 defaults to [current value, dataset
	// maximum of the attribute].
	Attr  int
	Min   float64
	Max   float64
	Steps int
	// Samples / Seed / VolumeMetric select the impact measure exactly as
	// in RepriceSpec.
	Samples      int
	Seed         int64
	VolumeMetric bool
}

// FrontierPoint is one grid point of the impact–price curve.
type FrontierPoint struct {
	// Value is the absolute attribute value probed; Delta its offset from
	// the focal's current value.
	Value float64
	Delta float64
	// Impact is the focal's impact with the attribute at Value; Regions the
	// kSPR region count behind it (0 for classified-empty points).
	Impact  float64
	Regions int
	// Kept reports the point was answered by the incremental
	// classification fast path (the probed price has >= k strict
	// dominators, so the result is provably empty) without an engine run.
	Kept bool
}

// FrontierCurve is Frontier's answer.
type FrontierCurve struct {
	// Focal, Attr, K echo the request; Generation the pinned dataset
	// generation the sweep ran against.
	Focal      int
	Attr       int
	K          int
	Generation uint64
	// Points is the impact-vs-price curve, ascending in Value. With the
	// probability metric the curve is nondecreasing in Value (same sample
	// set at every point).
	Points []FrontierPoint
	// Stats reports the probe economy: Kept counts grid points the
	// dominator-count classification answered, Recomputed the points that
	// went through the shared-work engine pass.
	Stats WhatIfStats
}

// Frontier sweeps an impact-vs-price curve for the focal option: each grid
// point reprices one attribute to an absolute value and measures the
// resulting impact. Grid points where the repriced focal is dominated by
// at least k competitors are classified empty from dominator counts alone
// (the incremental fast path; Kept in Stats); the surviving points run as
// ONE shared-work KSPRBatch pass over the competitor set, so skyband and
// dominance precomputation are paid once for the whole sweep. The sweep
// reads a pinned generation and never mutates db.
func (db *DB) Frontier(focalID, k int, spec FrontierSpec, opts ...QueryOption) (*FrontierCurve, error) {
	start := time.Now()
	st := db.cur()
	if st.tree == nil || focalID < 0 || focalID >= st.tree.Len() {
		return nil, fmt.Errorf("kspr: focal id %d out of range [0, %d)", focalID, db.Len())
	}
	if spec.Attr < 0 || spec.Attr >= st.dim {
		return nil, fmt.Errorf("kspr: frontier attribute %d out of range [0, %d)", spec.Attr, st.dim)
	}
	if spec.Steps == 0 {
		spec.Steps = 16
	}
	if spec.Steps < 2 {
		return nil, fmt.Errorf("kspr: frontier needs at least 2 steps, got %d", spec.Steps)
	}
	if spec.Samples <= 0 {
		spec.Samples = DefaultWhatIfSamples
	}
	if spec.VolumeMetric {
		opts = append(opts[:len(opts):len(opts)], WithVolumes(spec.Samples), WithSeed(spec.Seed))
	}
	recs, maxAttr := snapshotRecords(st, spec.Attr)
	base := recs[focalID][spec.Attr]
	if spec.Min == 0 && spec.Max == 0 {
		spec.Min, spec.Max = base, maxAttr
		if spec.Max <= spec.Min {
			spec.Max = spec.Min + 1
		}
	}
	if spec.Max < spec.Min {
		return nil, fmt.Errorf("kspr: frontier range [%g, %g] is inverted", spec.Min, spec.Max)
	}

	// Competitor-only scratch: the sweep queries hypothetical repriced
	// focals, so the focal's current record must not compete with them.
	comp := append(recs[:focalID:focalID], recs[focalID+1:]...)
	var cdb *DB
	if len(comp) > 0 {
		var err error
		if cdb, err = Open(comp, WithFanout(db.treeFanout())); err != nil {
			return nil, err
		}
	}

	curve := &FrontierCurve{Focal: focalID, Attr: spec.Attr, K: k, Generation: st.gen}
	curve.Points = make([]FrontierPoint, spec.Steps)
	var queries []BatchQuery
	var engineIdx []int
	for i := range curve.Points {
		value := spec.Min + (spec.Max-spec.Min)*float64(i)/float64(spec.Steps-1)
		vec := append([]float64(nil), recs[focalID]...)
		vec[spec.Attr] = value
		curve.Points[i] = FrontierPoint{Value: value, Delta: value - base}
		curve.Stats.Probes++
		switch {
		case cdb == nil:
			// No competitors: the focal is shortlisted everywhere.
			curve.Points[i].Impact = 1
			curve.Points[i].Kept = true
			curve.Stats.Kept++
		case len(cdb.cur().tree.Dominators(geom.Vector(vec), nil)) >= k:
			// >= k strict dominators: the kSPR result is provably empty
			// (kAdj <= 0), exactly what the engine would conclude before
			// building any cell tree.
			curve.Points[i].Kept = true
			curve.Stats.Kept++
		default:
			queries = append(queries, BatchQuery{FocalID: -1, Focal: vec})
			engineIdx = append(engineIdx, i)
			curve.Stats.Recomputed++
		}
	}
	if len(queries) > 0 {
		outs, err := cdb.KSPRBatch(queries, k, WithBatchOptions(opts...))
		if err != nil {
			return nil, err
		}
		for j, o := range outs {
			i := engineIdx[j]
			if o.Err != nil {
				return nil, fmt.Errorf("kspr: frontier point %d (value %g): %w", i, curve.Points[i].Value, o.Err)
			}
			curve.Points[i].Impact = impactOf(cdb, o.Result, spec.Samples, spec.Seed, spec.VolumeMetric)
			curve.Points[i].Regions = len(o.Result.Regions)
		}
	}
	curve.Stats.fill(time.Since(start))
	return curve, nil
}

// snapshotRecords copies the pinned generation's records and reports the
// dataset-wide maximum of the given attribute.
func snapshotRecords(st *dbState, attr int) ([][]float64, float64) {
	recs := make([][]float64, st.tree.Len())
	maxAttr := math.Inf(-1)
	for i, rec := range st.tree.Records {
		recs[i] = geom.Vector(rec).Clone()
		if rec[attr] > maxAttr {
			maxAttr = rec[attr]
		}
	}
	return recs, maxAttr
}

// treeFanout resolves the fanout scratch datasets are indexed with.
func (db *DB) treeFanout() int {
	if db.fanout > 0 {
		return db.fanout
	}
	return rtree.DefaultFanout
}

// impactOf measures a result's impact: Monte-Carlo region membership under
// uniform preferences by default, or (volume metric) the regions' measured
// volume share of the preference space. An empty result is 0 either way.
func impactOf(db *DB, res *Result, samples int, seed int64, volume bool) float64 {
	if res == nil || len(res.Regions) == 0 {
		return 0
	}
	if !volume {
		return db.ImpactProbability(res, samples, seed)
	}
	return res.TotalVolume() / spaceMeasure(res.Space, preferenceDim(db.Dim(), res.Space))
}

// preferenceDim is the processing-space dimensionality for d data
// attributes.
func preferenceDim(d int, space Space) int {
	if space == Original {
		return d
	}
	return d - 1
}

// spaceMeasure is the Lebesgue measure of the whole preference space: the
// simplex {w >= 0, Σw <= 1} (volume 1/dim!) in the transformed space, the
// unit cube in the original one.
func spaceMeasure(space Space, dim int) float64 {
	if space == Original {
		return 1
	}
	m := 1.0
	for i := 2; i <= dim; i++ {
		m /= float64(i)
	}
	return m
}
