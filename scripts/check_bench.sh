#!/usr/bin/env bash
# Bench regression gate: re-measure the committed BENCH_core.json workload
# and fail when any algorithm's serial ns/op regressed by more than 30%
# (override with BENCH_MAX_REGRESS, e.g. BENCH_MAX_REGRESS=0.50).
#
# BENCH_INJECT multiplies the fresh numbers before comparing; the CI bench
# job runs `BENCH_INJECT=2 ./scripts/check_bench.sh` and asserts failure,
# proving the gate trips on a real 2x slowdown.
#
# The gate compares ns/op measured on THIS machine against a baseline
# possibly recorded elsewhere; the 30% tolerance plus the skip-bench-gate
# PR label are the escape hatches for genuinely different hardware.
set -euo pipefail
cd "$(dirname "$0")/.."

baseline=BENCH_core.json
fresh=BENCH_ci.json
if [ ! -f "$baseline" ]; then
    echo "check_bench: committed baseline $baseline is missing" >&2
    exit 1
fi

# Re-run the exact baseline workload (scale 0.5 -> n=1000, d=4, k=10,
# IND, seed 1). -parallel 1 skips the parallel sweep: the gate compares
# the serial ns_per_op map plus the p95/p99 tails (meaningful at
# -queries 20; benchcmp skips them below that) plus the what-if probe
# latency and keep rate (-whatif 16 mirrors the committed baseline's
# sweep).
go run ./cmd/ksprbench -json -name ci -scale 0.5 -queries 20 -parallel 1 -whatif 16

go run ./scripts/benchcmp \
    -baseline "$baseline" \
    -fresh "$fresh" \
    -max-regress "${BENCH_MAX_REGRESS:-0.30}" \
    -inject "${BENCH_INJECT:-1}"
