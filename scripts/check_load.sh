#!/usr/bin/env bash
# Load regression gate: replay a short cmd/ksprload run against the
# committed BENCH_load.json baseline and fail when any request class's
# p99 regressed beyond LOAD_MAX_REGRESS (default 1.0 — load tails across
# different machines are far noisier than ns/op), when the error rate
# rose more than 0.01 over the baseline, or when the fresh run reports
# any invariant violation.
#
# LOAD_DURATION / LOAD_CONC shape the fresh run (CI keeps it short);
# LOAD_INJECT multiplies the fresh p99s and error rate before comparing —
# the CI load-smoke job runs `LOAD_INJECT=4 ./scripts/check_load.sh` and
# asserts failure, proving the gate trips on a real slowdown.
#
# ksprload itself exits non-zero on invariant violations, so a failing
# verifier stops the gate before the comparison even runs.
set -euo pipefail
cd "$(dirname "$0")/.."

baseline=BENCH_load.json
fresh=BENCH_load_ci.json
if [ ! -f "$baseline" ]; then
    echo "check_load: committed baseline $baseline is missing" >&2
    exit 1
fi

# Re-run the baseline workload shape (same datasets/n/d/k — benchcmp
# rejects a mismatch) at a CI-friendly duration. The flight-check flags
# make the run double as the observability smoke: after the timed phase
# ksprload injects known-bad requests and asserts the server's flight
# recorder captured every one of them plus at least one sampled normal.
# -check-health extends the smoke to the SLO engine: the clean run must
# report healthy, then a driven error storm must flip the verdict to
# breaching with a journaled slo_burn that joins the flight evidence.
go run ./cmd/ksprload \
    -duration "${LOAD_DURATION:-5s}" \
    -conc "${LOAD_CONC:-8}" \
    -inject-errors "${LOAD_INJECT_ERRORS:-5}" \
    -check-flight \
    -check-health \
    -name load_ci

go run ./scripts/benchcmp \
    -load-baseline "$baseline" \
    -load-fresh "$fresh" \
    -load-max-regress "${LOAD_MAX_REGRESS:-1.0}" \
    -inject "${LOAD_INJECT:-1}"
