#!/bin/sh
# check_docs.sh fails when an exported identifier in the core packages is
# missing a doc comment, or when one of those packages lacks a package
# comment. It is a plain-text gate (no deps beyond POSIX awk) run by the CI
# docs job and `make docs`.
set -eu
cd "$(dirname "$0")/.."

PKGS="internal/core internal/celltree internal/kernel internal/lp internal/obs internal/server internal/store cmd/ksprload cmd/ksprtop ."

fail=0
for pkg in $PKGS; do
    for f in "$pkg"/*.go; do
        case "$f" in
        *_test.go) continue ;;
        esac
        # Exported top-level declarations must be preceded by a comment
        # line. Grouped const/var blocks are covered by the block comment,
        # so only the introducing line is checked.
        out=$(awk '
            /^(func|type) [A-Z]/ ||
            /^func \([A-Za-z_]+ \*?[A-Z][A-Za-z]*(\[[^]]*\])?\) [A-Z]/ ||
            /^(const|var) [A-Z]/ {
                if (prev !~ /^\/\// && prev !~ /\*\/[[:space:]]*$/)
                    printf "%s:%d: missing doc comment: %s\n", FILENAME, FNR, $0
            }
            { prev = $0 }
        ' "$f")
        if [ -n "$out" ]; then
            echo "$out"
            fail=1
        fi
    done
    # Package comment: at least one file of the package must carry one
    # (a comment line directly above its package clause).
    has_pkg_doc=0
    for f in "$pkg"/*.go; do
        case "$f" in
        *_test.go) continue ;;
        esac
        if awk '/^package / { if (prev ~ /^\/\//) found = 1; exit } { prev = $0 }
                END { exit !found }' "$f"; then
            has_pkg_doc=1
            break
        fi
    done
    if [ "$has_pkg_doc" -eq 0 ]; then
        echo "$pkg: no file carries a package doc comment"
        fail=1
    fi
done

if [ "$fail" -ne 0 ]; then
    echo "check_docs: FAILED (add doc comments above the identifiers listed)"
    exit 1
fi
echo "check_docs: OK"
