#!/usr/bin/env bash
# Coverage floor gate: run the full test suite with coverage and fail when
# the total statement coverage drops below the committed floor
# (scripts/coverage_floor.txt). Raise the floor when coverage improves;
# never lower it to make a PR pass — add tests instead.
set -euo pipefail
cd "$(dirname "$0")/.."

floor_file=scripts/coverage_floor.txt
if [ ! -f "$floor_file" ]; then
    echo "check_coverage: $floor_file is missing" >&2
    exit 1
fi
floor=$(tr -d '[:space:]' < "$floor_file")

profile="${COVER_PROFILE:-$(mktemp /tmp/cover.XXXXXX.out)}"
go test -coverprofile="$profile" ./... > /dev/null

total=$(go tool cover -func="$profile" | awk '/^total:/ { gsub("%", "", $3); print $3 }')
if [ -z "$total" ]; then
    echo "check_coverage: could not read total coverage from $profile" >&2
    exit 1
fi

echo "coverage gate: total ${total}% (floor ${floor}%)"
awk -v total="$total" -v floor="$floor" 'BEGIN {
    if (total + 0 < floor + 0) {
        printf "check_coverage: total coverage %.1f%% dropped below the %.1f%% floor\n", total, floor > "/dev/stderr"
        exit 1
    }
}'
echo "coverage gate: pass"
