// Command crashsmoke is the CI crash-recovery smoke test: it builds
// ksprd, starts it with a WAL-backed store, loads a dataset, streams
// mutations at it, SIGKILLs the daemon mid-stream, restarts it over the
// same store directory, and asserts the recovered dataset is at exactly
// the last acknowledged generation with the matching record count. A
// second phase exercises candidate-index persistence: it SIGKILLs the
// daemon right after a snapshot (which writes the index file), asserts
// the restart recovers WARM (from the persisted index, per the recovery
// log marker), then deletes the index file and asserts a COLD restart
// serves byte-identical query results. A third phase exercises the crash
// black box: it starts ksprd with -blackbox-dir, drives one good and one
// failing request through it, SIGQUITs the daemon, and asserts a
// parseable black-box bundle (flight ring + event journal + metrics) was
// written before death. It uses only the Go toolchain and net/http (no
// curl/jq), so `make ci` works on minimal machines.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"time"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "crashsmoke: FAILED:", err)
		os.Exit(1)
	}
	fmt.Println("crashsmoke: OK")
}

func run() error {
	work, err := os.MkdirTemp("", "crashsmoke-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(work)
	bin := filepath.Join(work, "ksprd")
	storeDir := filepath.Join(work, "stores")

	build := exec.Command("go", "build", "-o", bin, "./cmd/ksprd")
	build.Stdout, build.Stderr = os.Stdout, os.Stderr
	if err := build.Run(); err != nil {
		return fmt.Errorf("building ksprd: %w", err)
	}

	addr, err := freeAddr()
	if err != nil {
		return err
	}
	base := "http://" + addr

	// ---- first life: load, mutate, crash ----------------------------------
	daemon, err := startDaemon(bin, addr, storeDir)
	if err != nil {
		return err
	}
	defer daemon.kill()

	if err := post(base+"/v1/datasets", map[string]any{
		"name":     "smoke",
		"generate": map[string]any{"dist": "IND", "n": 400, "d": 3, "seed": 42},
	}, nil); err != nil {
		return fmt.Errorf("loading dataset: %w", err)
	}

	// Stream mutations; remember the last ACKNOWLEDGED store generation and
	// record count — that is exactly what recovery must restore, no matter
	// where the kill lands relative to unacknowledged work.
	type mutateAck struct {
		StoreGeneration uint64 `json:"store_generation"`
		Records         int    `json:"records"`
	}
	var last mutateAck
	for i := 0; i < 25; i++ {
		var ack mutateAck
		err := post(base+"/v1/datasets/smoke:mutate", map[string]any{
			"op":     "insert",
			"values": []float64{0.1 + float64(i%9)*0.1, 0.5, 0.3},
		}, &ack)
		if err != nil {
			return fmt.Errorf("mutation %d: %w", i, err)
		}
		last = ack
	}

	// SIGKILL mid-WAL: no shutdown hooks, no flushes beyond what Apply
	// already acknowledged.
	if err := daemon.cmd.Process.Kill(); err != nil {
		return fmt.Errorf("killing daemon: %w", err)
	}
	daemon.cmd.Wait()

	// ---- second life: recover and verify ----------------------------------
	addr2, err := freeAddr()
	if err != nil {
		return err
	}
	base = "http://" + addr2
	daemon2, err := startDaemon(bin, addr2, storeDir)
	if err != nil {
		return err
	}
	defer func() {
		daemon2.cmd.Process.Signal(syscall.SIGTERM)
		daemon2.cmd.Wait()
	}()

	var infos []struct {
		Name            string `json:"name"`
		StoreGeneration uint64 `json:"store_generation"`
		Records         int    `json:"records"`
		Durable         bool   `json:"durable"`
	}
	if err := get(base+"/v1/datasets", &infos); err != nil {
		return fmt.Errorf("listing recovered datasets: %w", err)
	}
	if len(infos) != 1 || infos[0].Name != "smoke" {
		return fmt.Errorf("recovered datasets = %+v, want exactly [smoke]", infos)
	}
	got := infos[0]
	if !got.Durable {
		return fmt.Errorf("recovered dataset not marked durable")
	}
	if got.StoreGeneration != last.StoreGeneration {
		return fmt.Errorf("recovered store generation %d, want pre-crash %d", got.StoreGeneration, last.StoreGeneration)
	}
	if got.Records != last.Records {
		return fmt.Errorf("recovered %d records, want pre-crash %d", got.Records, last.Records)
	}

	// The recovered dataset must serve queries and accept new mutations.
	var q struct {
		Regions []any `json:"regions"`
	}
	if err := post(base+"/v1/kspr", map[string]any{"dataset": "smoke", "focal": 3, "k": 5}, &q); err != nil {
		return fmt.Errorf("query after recovery: %w", err)
	}
	var ack mutateAck
	if err := post(base+"/v1/datasets/smoke:mutate", map[string]any{
		"op": "insert", "values": []float64{0.9, 0.9, 0.9},
	}, &ack); err != nil {
		return fmt.Errorf("mutation after recovery: %w", err)
	}
	if ack.StoreGeneration != last.StoreGeneration+1 {
		return fmt.Errorf("post-recovery generation %d, want %d", ack.StoreGeneration, last.StoreGeneration+1)
	}
	fmt.Printf("crashsmoke: killed at store generation %d with %d records; recovery matched exactly\n",
		last.StoreGeneration, last.Records)

	daemon2.cmd.Process.Signal(syscall.SIGTERM)
	daemon2.cmd.Wait()
	if err := indexPhase(work, bin); err != nil {
		return err
	}
	return blackboxPhase(work, bin)
}

// indexPhase exercises candidate-index persistence across a crash: with a
// snapshot on every batch the index file is written alongside each
// snapshot, so a SIGKILL right after a mutation must leave a restart that
// (a) recovers WARM per the ksprd log marker and (b) answers queries
// byte-identically to a cold restart over the same store with the index
// file deleted.
func indexPhase(work, bin string) error {
	storeDir := filepath.Join(work, "stores-index")
	const kill = syscall.SIGKILL

	// ---- first life: seed, snapshot-every-batch, crash --------------------
	addr, err := freeAddr()
	if err != nil {
		return err
	}
	base := "http://" + addr
	daemon, err := startDaemon(bin, addr, storeDir, "-snapshot-every", "1")
	if err != nil {
		return err
	}
	defer daemon.kill()
	if err := post(base+"/v1/datasets", map[string]any{
		"name":     "smoke",
		"generate": map[string]any{"dist": "IND", "n": 400, "d": 3, "seed": 42},
	}, nil); err != nil {
		return fmt.Errorf("loading dataset: %w", err)
	}
	if err := post(base+"/v1/datasets/smoke:mutate", map[string]any{
		"op": "insert", "values": []float64{0.7, 0.2, 0.6},
	}, nil); err != nil {
		return fmt.Errorf("mutation: %w", err)
	}
	indexFile := filepath.Join(storeDir, "smoke", "index.bin")
	if _, err := os.Stat(indexFile); err != nil {
		return fmt.Errorf("snapshot did not persist the candidate index: %w", err)
	}
	daemon.cmd.Process.Signal(kill)
	daemon.cmd.Wait()

	// query returns the answer-defining part of a /v1/kspr response as
	// canonical bytes: generation, focal, k and the region list. Wall
	// times and traversal counters (stats) legitimately differ between a
	// warm and a cold index — the regions may not.
	query := func(base string) ([]byte, error) {
		raw, _ := json.Marshal(map[string]any{"dataset": "smoke", "focal": 3, "k": 5})
		resp, err := http.Post(base+"/v1/kspr", "application/json", bytes.NewReader(raw))
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("query: status %d: %s", resp.StatusCode, data)
		}
		var body struct {
			Generation uint64          `json:"generation"`
			Focal      int             `json:"focal"`
			K          int             `json:"k"`
			Regions    json.RawMessage `json:"regions"`
		}
		if err := json.Unmarshal(data, &body); err != nil {
			return nil, fmt.Errorf("query: decoding response: %w", err)
		}
		if len(body.Regions) == 0 || string(body.Regions) == "null" {
			return nil, fmt.Errorf("query returned no regions: %s", data)
		}
		return json.Marshal(body)
	}

	// ---- second life: must recover from the persisted index ---------------
	addr, err = freeAddr()
	if err != nil {
		return err
	}
	base = "http://" + addr
	warm, err := startDaemon(bin, addr, storeDir, "-snapshot-every", "1")
	if err != nil {
		return err
	}
	defer warm.kill()
	if log := warm.log.String(); !strings.Contains(log, "index warm") {
		return fmt.Errorf("restart after snapshot did not recover from the persisted index; log:\n%s", log)
	}
	warmResult, err := query(base)
	if err != nil {
		return fmt.Errorf("warm query: %w", err)
	}
	warm.cmd.Process.Signal(kill)
	warm.cmd.Wait()

	// ---- third life: index deleted, cold rebuild, identical answers -------
	if err := os.Remove(indexFile); err != nil {
		return fmt.Errorf("removing index file: %w", err)
	}
	addr, err = freeAddr()
	if err != nil {
		return err
	}
	base = "http://" + addr
	cold, err := startDaemon(bin, addr, storeDir, "-snapshot-every", "1")
	if err != nil {
		return err
	}
	defer func() {
		cold.cmd.Process.Signal(syscall.SIGTERM)
		cold.cmd.Wait()
	}()
	if log := cold.log.String(); !strings.Contains(log, "index cold") {
		return fmt.Errorf("restart without the index file did not rebuild cold; log:\n%s", log)
	}
	coldResult, err := query(base)
	if err != nil {
		return fmt.Errorf("cold query: %w", err)
	}
	if !bytes.Equal(warmResult, coldResult) {
		return fmt.Errorf("warm and cold restarts answered differently:\nwarm: %s\ncold: %s", warmResult, coldResult)
	}
	fmt.Println("crashsmoke: persisted index recovered warm; warm == cold query results")
	return nil
}

// blackboxPhase exercises the crash black box: SIGQUIT on a daemon
// started with -blackbox-dir must produce one parseable JSON bundle
// carrying the flight-recorder ring (including the failing request we
// drove through it), the event journal, and a metrics snapshot — written
// BEFORE the process dies with the conventional 128+SIGQUIT status.
func blackboxPhase(work, bin string) error {
	storeDir := filepath.Join(work, "stores-blackbox")
	bbDir := filepath.Join(work, "blackbox")

	addr, err := freeAddr()
	if err != nil {
		return err
	}
	base := "http://" + addr
	daemon, err := startDaemon(bin, addr, storeDir, "-blackbox-dir", bbDir)
	if err != nil {
		return err
	}
	defer daemon.kill()
	if err := post(base+"/v1/datasets", map[string]any{
		"name":     "smoke",
		"generate": map[string]any{"dist": "IND", "n": 400, "d": 3, "seed": 42},
	}, nil); err != nil {
		return fmt.Errorf("loading dataset: %w", err)
	}
	// One good request (journal + a sampled/normal wide-event candidate)
	// and one failing request (errors are always captured).
	if err := post(base+"/v1/kspr", map[string]any{"dataset": "smoke", "focal": 3, "k": 5}, nil); err != nil {
		return fmt.Errorf("query before SIGQUIT: %w", err)
	}
	err = post(base+"/v1/kspr", map[string]any{"dataset": "no-such-dataset", "focal": 0, "k": 1}, nil)
	if err == nil || !strings.Contains(err.Error(), "status 404") {
		return fmt.Errorf("query against a missing dataset: got %v, want a 404", err)
	}

	if err := daemon.cmd.Process.Signal(syscall.SIGQUIT); err != nil {
		return fmt.Errorf("sending SIGQUIT: %w", err)
	}
	daemon.cmd.Wait()
	if code := daemon.cmd.ProcessState.ExitCode(); code != 128+int(syscall.SIGQUIT) {
		return fmt.Errorf("daemon exited %d after SIGQUIT, want %d; log:\n%s",
			code, 128+int(syscall.SIGQUIT), daemon.log.String())
	}

	bundles, err := filepath.Glob(filepath.Join(bbDir, "blackbox-*.json"))
	if err != nil {
		return err
	}
	if len(bundles) != 1 {
		return fmt.Errorf("found %d black-box bundles in %s, want exactly 1; log:\n%s",
			len(bundles), bbDir, daemon.log.String())
	}
	raw, err := os.ReadFile(bundles[0])
	if err != nil {
		return err
	}
	var bundle struct {
		Time    string            `json:"time"`
		Reason  string            `json:"reason"`
		PID     int               `json:"pid"`
		Flight  []json.RawMessage `json:"flight"`
		Journal []struct {
			Seq  uint64 `json:"seq"`
			Type string `json:"type"`
		} `json:"journal"`
		Metrics json.RawMessage `json:"metrics"`
	}
	if err := json.Unmarshal(raw, &bundle); err != nil {
		return fmt.Errorf("black-box bundle %s is not valid JSON: %w", bundles[0], err)
	}
	if bundle.Reason != "SIGQUIT" {
		return fmt.Errorf("bundle reason %q, want SIGQUIT", bundle.Reason)
	}
	if len(bundle.Flight) == 0 {
		return fmt.Errorf("bundle carries no flight-recorder events")
	}
	if len(bundle.Journal) == 0 {
		return fmt.Errorf("bundle carries no journal events")
	}
	for i, ev := range bundle.Journal {
		if ev.Seq != uint64(i+1) {
			return fmt.Errorf("journal event %d has seq %d, want contiguous from 1", i, ev.Seq)
		}
	}
	if len(bundle.Metrics) == 0 || string(bundle.Metrics) == "null" {
		return fmt.Errorf("bundle carries no metrics snapshot")
	}
	fmt.Printf("crashsmoke: SIGQUIT black box ok: %d flight events, %d journal events in %s\n",
		len(bundle.Flight), len(bundle.Journal), filepath.Base(bundles[0]))
	return nil
}

// syncBuffer is a concurrency-safe capture of the daemon's stderr (the
// daemon writes while the test reads).
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// daemonProc is a running ksprd plus its captured stderr.
type daemonProc struct {
	cmd *exec.Cmd
	log *syncBuffer
}

func (d *daemonProc) kill() { d.cmd.Process.Kill() }

// startDaemon launches ksprd with the given extra flags and waits for
// /healthz; the recovery log lines are both echoed and captured (the
// index phase greps them for the warm/cold marker).
func startDaemon(bin, addr, storeDir string, extra ...string) (*daemonProc, error) {
	args := append([]string{"-addr", addr, "-store-dir", storeDir}, extra...)
	cmd := exec.Command(bin, args...)
	log := &syncBuffer{}
	cmd.Stdout = os.Stdout
	cmd.Stderr = io.MultiWriter(os.Stderr, log)
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("starting ksprd: %w", err)
	}
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get("http://" + addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return &daemonProc{cmd: cmd, log: log}, nil
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	cmd.Process.Kill()
	return nil, fmt.Errorf("ksprd did not become healthy on %s", addr)
}

// freeAddr reserves a loopback port.
func freeAddr() (string, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := l.Addr().String()
	l.Close()
	return addr, nil
}

func post(url string, body any, out any) error {
	raw, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("POST %s: status %d: %s", url, resp.StatusCode, data)
	}
	if out != nil {
		return json.Unmarshal(data, out)
	}
	return nil
}

func get(url string, out any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: status %d: %s", url, resp.StatusCode, data)
	}
	return json.Unmarshal(data, out)
}
