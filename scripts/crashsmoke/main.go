// Command crashsmoke is the CI crash-recovery smoke test: it builds
// ksprd, starts it with a WAL-backed store, loads a dataset, streams
// mutations at it, SIGKILLs the daemon mid-stream, restarts it over the
// same store directory, and asserts the recovered dataset is at exactly
// the last acknowledged generation with the matching record count. It
// uses only the Go toolchain and net/http (no curl/jq), so `make ci`
// works on minimal machines.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"time"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "crashsmoke: FAILED:", err)
		os.Exit(1)
	}
	fmt.Println("crashsmoke: OK")
}

func run() error {
	work, err := os.MkdirTemp("", "crashsmoke-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(work)
	bin := filepath.Join(work, "ksprd")
	storeDir := filepath.Join(work, "stores")

	build := exec.Command("go", "build", "-o", bin, "./cmd/ksprd")
	build.Stdout, build.Stderr = os.Stdout, os.Stderr
	if err := build.Run(); err != nil {
		return fmt.Errorf("building ksprd: %w", err)
	}

	addr, err := freeAddr()
	if err != nil {
		return err
	}
	base := "http://" + addr

	// ---- first life: load, mutate, crash ----------------------------------
	daemon, err := startDaemon(bin, addr, storeDir)
	if err != nil {
		return err
	}
	defer daemon.Process.Kill()

	if err := post(base+"/v1/datasets", map[string]any{
		"name":     "smoke",
		"generate": map[string]any{"dist": "IND", "n": 400, "d": 3, "seed": 42},
	}, nil); err != nil {
		return fmt.Errorf("loading dataset: %w", err)
	}

	// Stream mutations; remember the last ACKNOWLEDGED store generation and
	// record count — that is exactly what recovery must restore, no matter
	// where the kill lands relative to unacknowledged work.
	type mutateAck struct {
		StoreGeneration uint64 `json:"store_generation"`
		Records         int    `json:"records"`
	}
	var last mutateAck
	for i := 0; i < 25; i++ {
		var ack mutateAck
		err := post(base+"/v1/datasets/smoke:mutate", map[string]any{
			"op":     "insert",
			"values": []float64{0.1 + float64(i%9)*0.1, 0.5, 0.3},
		}, &ack)
		if err != nil {
			return fmt.Errorf("mutation %d: %w", i, err)
		}
		last = ack
	}

	// SIGKILL mid-WAL: no shutdown hooks, no flushes beyond what Apply
	// already acknowledged.
	if err := daemon.Process.Kill(); err != nil {
		return fmt.Errorf("killing daemon: %w", err)
	}
	daemon.Wait()

	// ---- second life: recover and verify ----------------------------------
	addr2, err := freeAddr()
	if err != nil {
		return err
	}
	base = "http://" + addr2
	daemon2, err := startDaemon(bin, addr2, storeDir)
	if err != nil {
		return err
	}
	defer func() {
		daemon2.Process.Signal(syscall.SIGTERM)
		daemon2.Wait()
	}()

	var infos []struct {
		Name            string `json:"name"`
		StoreGeneration uint64 `json:"store_generation"`
		Records         int    `json:"records"`
		Durable         bool   `json:"durable"`
	}
	if err := get(base+"/v1/datasets", &infos); err != nil {
		return fmt.Errorf("listing recovered datasets: %w", err)
	}
	if len(infos) != 1 || infos[0].Name != "smoke" {
		return fmt.Errorf("recovered datasets = %+v, want exactly [smoke]", infos)
	}
	got := infos[0]
	if !got.Durable {
		return fmt.Errorf("recovered dataset not marked durable")
	}
	if got.StoreGeneration != last.StoreGeneration {
		return fmt.Errorf("recovered store generation %d, want pre-crash %d", got.StoreGeneration, last.StoreGeneration)
	}
	if got.Records != last.Records {
		return fmt.Errorf("recovered %d records, want pre-crash %d", got.Records, last.Records)
	}

	// The recovered dataset must serve queries and accept new mutations.
	var q struct {
		Regions []any `json:"regions"`
	}
	if err := post(base+"/v1/kspr", map[string]any{"dataset": "smoke", "focal": 3, "k": 5}, &q); err != nil {
		return fmt.Errorf("query after recovery: %w", err)
	}
	var ack mutateAck
	if err := post(base+"/v1/datasets/smoke:mutate", map[string]any{
		"op": "insert", "values": []float64{0.9, 0.9, 0.9},
	}, &ack); err != nil {
		return fmt.Errorf("mutation after recovery: %w", err)
	}
	if ack.StoreGeneration != last.StoreGeneration+1 {
		return fmt.Errorf("post-recovery generation %d, want %d", ack.StoreGeneration, last.StoreGeneration+1)
	}
	fmt.Printf("crashsmoke: killed at store generation %d with %d records; recovery matched exactly\n",
		last.StoreGeneration, last.Records)
	return nil
}

// startDaemon launches ksprd and waits for /healthz.
func startDaemon(bin, addr, storeDir string) (*exec.Cmd, error) {
	cmd := exec.Command(bin, "-addr", addr, "-store-dir", storeDir)
	cmd.Stdout, cmd.Stderr = os.Stdout, os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("starting ksprd: %w", err)
	}
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get("http://" + addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return cmd, nil
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	cmd.Process.Kill()
	return nil, fmt.Errorf("ksprd did not become healthy on %s", addr)
}

// freeAddr reserves a loopback port.
func freeAddr() (string, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := l.Addr().String()
	l.Close()
	return addr, nil
}

func post(url string, body any, out any) error {
	raw, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("POST %s: status %d: %s", url, resp.StatusCode, data)
	}
	if out != nil {
		return json.Unmarshal(data, out)
	}
	return nil
}

func get(url string, out any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: status %d: %s", url, resp.StatusCode, data)
	}
	return json.Unmarshal(data, out)
}
