#!/bin/sh
# check_links.sh verifies that every relative link in the repository's
# markdown files points at a file (or directory) that exists. External
# http(s) and mailto links are skipped — CI must not depend on the network.
set -eu
cd "$(dirname "$0")/.."

fail=0
for md in $(find . -name '*.md' -not -path './.git/*'); do
    dir=$(dirname "$md")
    # Extract the (target) of every [text](target) pair, one per line.
    links=$(grep -o '](\([^)]*\))' "$md" | sed 's/^](//; s/)$//' || true)
    for link in $links; do
        case "$link" in
        http://* | https://* | mailto:* | \#*) continue ;;
        esac
        target=${link%%#*} # strip in-page anchors
        [ -n "$target" ] || continue
        if [ ! -e "$dir/$target" ]; then
            echo "$md: broken link -> $link"
            fail=1
        fi
    done
done

if [ "$fail" -ne 0 ]; then
    echo "check_links: FAILED"
    exit 1
fi
echo "check_links: OK"
