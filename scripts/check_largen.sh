#!/usr/bin/env bash
# Large-N perf lane: re-measure the columnar-kernel sweep at n = 1e6
# (index build, k-skyband, TopK, Rank, one LP-CTA kSPR query) and fail
# when any kernel regressed beyond LARGEN_MAX_REGRESS (default 50% —
# single-shot 1e6 timings are noisier than averaged ns/op) against the
# committed BENCH_core.json's ns_per_op_n1e6 map.
#
# LARGEN_INJECT multiplies the fresh numbers before comparing; the CI
# large-n job runs `LARGEN_INJECT=2 ./scripts/check_largen.sh` once and
# asserts failure, proving the gate trips on a real 2x slowdown.
set -euo pipefail
cd "$(dirname "$0")/.."

baseline=BENCH_core.json
fresh=BENCH_largen.json
if [ ! -f "$baseline" ]; then
    echo "check_largen: committed baseline $baseline is missing" >&2
    exit 1
fi

# A minimal base workload (n=100, d=3, k=5, one query) keeps the lane's
# wall time inside the 1e6 sweep itself; benchcmp -largen deliberately
# skips the base-workload match and reads only the large-N keys.
go run ./cmd/ksprbench -json -name largen -dist IND -d 3 -k 5 -scale 0.05 -queries 1 -parallel 1 -n 1000000

go run ./scripts/benchcmp \
    -largen \
    -baseline "$baseline" \
    -fresh "$fresh" \
    -largen-max-regress "${LARGEN_MAX_REGRESS:-0.50}" \
    -inject "${LARGEN_INJECT:-1}"
