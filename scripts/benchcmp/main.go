// Command benchcmp is the bench regression gate's comparator: it reads two
// BENCH_<name>.json files (see cmd/ksprbench -json), checks that they
// measured the same workload, and fails when any algorithm's fresh ns/op
// exceeds the baseline by more than -max-regress.
//
//	go run ./scripts/benchcmp -baseline BENCH_core.json -fresh BENCH_ci.json
//
// With -load-baseline/-load-fresh it instead gates the load-harness
// summaries (cmd/ksprload -> BENCH_load.json): per-class p99 latency
// against -load-max-regress, the error rate against the baseline plus
// -load-max-error-delta, and the fresh run's invariant-violation count
// against zero. Classes without enough samples for a meaningful p99 on
// both sides are skipped, mirroring the core gate's tail rule.
//
// -inject multiplies the fresh numbers before comparing; the CI bench and
// load-smoke jobs use it to prove the gates actually fail on a slowdown
// (-inject 2 must exit non-zero against a healthy baseline).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

// minTailSamples is the smallest sample count at which a nearest-rank
// p95/p99 stops collapsing to the max; tails measured below it are
// skipped rather than gated (matching cmd/ksprbench's minTailQueries).
const minTailSamples = 20

// benchFile is the subset of the BENCH_<name>.json schema the gate reads.
type benchFile struct {
	Name       string           `json:"name"`
	Dist       string           `json:"dist"`
	N          int              `json:"n"`
	D          int              `json:"d"`
	K          int              `json:"k"`
	Queries    int              `json:"queries"`
	Seed       int64            `json:"seed"`
	CPUs       int              `json:"cpus"`
	Algorithms map[string]int64 `json:"ns_per_op"`
	// Tail latency per algorithm (nearest-rank over the serial sweep's
	// per-query times); gated like the means so a fat tail cannot hide
	// behind a healthy average.
	AlgorithmsP95 map[string]int64 `json:"p95_ns"`
	AlgorithmsP99 map[string]int64 `json:"p99_ns"`
	// What-if keys: probe latency is gated like an algorithm's ns/op, and
	// the keep rate must stay positive (0 means the incremental fast path
	// stopped firing — a correctness-of-architecture regression, not noise).
	WhatIfProbeNs  int64   `json:"whatif_probe_ns"`
	WhatIfKeepRate float64 `json:"whatif_keep_rate"`
	// Large-N keys (cmd/ksprbench -n): the gated 1e6-record kernel
	// timings plus the sweep's workload shape.
	LargeNTop int              `json:"largen_top"`
	LargeND   int              `json:"largen_d"`
	LargeNK   int              `json:"largen_k"`
	LargeN1e6 map[string]int64 `json:"ns_per_op_n1e6"`
}

func load(path string) (benchFile, error) {
	var b benchFile
	raw, err := os.ReadFile(path)
	if err != nil {
		return b, err
	}
	if err := json.Unmarshal(raw, &b); err != nil {
		return b, fmt.Errorf("%s: %w", path, err)
	}
	if len(b.Algorithms) == 0 {
		return b, fmt.Errorf("%s: no ns_per_op entries", path)
	}
	return b, nil
}

func main() {
	var (
		baselinePath = flag.String("baseline", "BENCH_core.json", "committed baseline summary")
		freshPath    = flag.String("fresh", "BENCH_ci.json", "freshly measured summary")
		maxRegress   = flag.Float64("max-regress", 0.30, "tolerated fractional slowdown per algorithm")
		inject       = flag.Float64("inject", 1.0, "multiply fresh ns/op by this factor (gate self-test)")

		loadBaseline = flag.String("load-baseline", "", "committed cmd/ksprload summary; switches to the load gate")
		loadFresh    = flag.String("load-fresh", "", "freshly measured cmd/ksprload summary (load gate)")
		loadRegress  = flag.Float64("load-max-regress", 1.0, "tolerated fractional p99 slowdown per request class (load latencies are far noisier than ns/op)")
		loadErrDelta = flag.Float64("load-max-error-delta", 0.01, "tolerated absolute error-rate increase over the baseline")

		largen        = flag.Bool("largen", false, "gate only the large-N keys (ns_per_op_n1e6); the fresh file may carry any base workload")
		largenRegress = flag.Float64("largen-max-regress", 0.50, "tolerated fractional slowdown per large-N kernel (single-shot 1e6 timings are noisier than the averaged ns/op)")
	)
	flag.Parse()

	if *loadBaseline != "" || *loadFresh != "" {
		if *loadBaseline == "" || *loadFresh == "" {
			fatal(fmt.Errorf("the load gate needs both -load-baseline and -load-fresh"))
		}
		loadGate(*loadBaseline, *loadFresh, *loadRegress, *loadErrDelta, *inject)
		return
	}

	baseline, err := load(*baselinePath)
	if err != nil {
		fatal(err)
	}
	fresh, err := load(*freshPath)
	if err != nil {
		fatal(err)
	}

	if *largen {
		largeNGate(baseline, fresh, *largenRegress, *inject)
		return
	}
	if baseline.Dist != fresh.Dist || baseline.N != fresh.N ||
		baseline.D != fresh.D || baseline.K != fresh.K || baseline.Seed != fresh.Seed {
		fatal(fmt.Errorf("workload mismatch: baseline %s n=%d d=%d k=%d seed=%d, fresh %s n=%d d=%d k=%d seed=%d",
			baseline.Dist, baseline.N, baseline.D, baseline.K, baseline.Seed,
			fresh.Dist, fresh.N, fresh.D, fresh.K, fresh.Seed))
	}

	names := make([]string, 0, len(baseline.Algorithms))
	for name := range baseline.Algorithms {
		if _, ok := fresh.Algorithms[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		fatal(fmt.Errorf("no algorithms in common between %s and %s", *baselinePath, *freshPath))
	}

	fmt.Printf("bench gate: baseline %q (%d cpus) vs fresh %q (%d cpus), tolerance +%.0f%%\n",
		baseline.Name, baseline.CPUs, fresh.Name, fresh.CPUs, *maxRegress*100)
	var regressed []string
	for _, name := range names {
		base := baseline.Algorithms[name]
		now := int64(float64(fresh.Algorithms[name]) * *inject)
		ratio := float64(now) / float64(base)
		verdict := "ok"
		if ratio > 1+*maxRegress {
			verdict = "REGRESSED"
			regressed = append(regressed, name)
		}
		fmt.Printf("  %-10s %12d -> %12d ns/op  (%.2fx)  %s\n", name, base, now, ratio, verdict)
	}
	// Tail-latency gate: same tolerance, applied to p95/p99 per algorithm.
	// Both files must carry the maps (baselines predating them skip
	// cleanly, like the what-if keys below), and both must have measured
	// enough queries for a nearest-rank tail to mean anything — at tiny
	// sample counts p95 == p99 == max and the gate compares noise.
	tooFewSamples := baseline.Queries > 0 && baseline.Queries < minTailSamples ||
		fresh.Queries > 0 && fresh.Queries < minTailSamples
	if tooFewSamples {
		fmt.Printf("  tails: skipped (baseline %d / fresh %d queries, need >= %d for meaningful p95/p99)\n",
			baseline.Queries, fresh.Queries, minTailSamples)
	}
	for _, tail := range []struct {
		label    string
		baseline map[string]int64
		fresh    map[string]int64
	}{
		{"p95", baseline.AlgorithmsP95, fresh.AlgorithmsP95},
		{"p99", baseline.AlgorithmsP99, fresh.AlgorithmsP99},
	} {
		if tooFewSamples || len(tail.baseline) == 0 || len(tail.fresh) == 0 {
			continue
		}
		for _, name := range names {
			base, okB := tail.baseline[name]
			now, okF := tail.fresh[name]
			if !okB || !okF || base <= 0 {
				continue
			}
			now = int64(float64(now) * *inject)
			ratio := float64(now) / float64(base)
			verdict := "ok"
			if ratio > 1+*maxRegress {
				verdict = "REGRESSED"
				regressed = append(regressed, name+"/"+tail.label)
			}
			fmt.Printf("  %-10s %12d -> %12d ns/%s (%.2fx)  %s\n", name, base, now, tail.label, ratio, verdict)
		}
	}
	// What-if gate: only when both files carry the sweep (the fresh CI run
	// includes it; older baselines without the keys are skipped cleanly).
	if baseline.WhatIfProbeNs > 0 && fresh.WhatIfProbeNs > 0 {
		now := int64(float64(fresh.WhatIfProbeNs) * *inject)
		ratio := float64(now) / float64(baseline.WhatIfProbeNs)
		verdict := "ok"
		if ratio > 1+*maxRegress {
			verdict = "REGRESSED"
			regressed = append(regressed, "whatif_probe_ns")
		}
		fmt.Printf("  %-10s %12d -> %12d ns/probe (%.2fx)  %s\n",
			"whatif", baseline.WhatIfProbeNs, now, ratio, verdict)
		if fresh.WhatIfKeepRate <= 0 {
			fmt.Printf("  %-10s keep rate %.2f -> %.2f  DEAD (incremental path no longer fires)\n",
				"whatif", baseline.WhatIfKeepRate, fresh.WhatIfKeepRate)
			regressed = append(regressed, "whatif_keep_rate")
		}
	}
	if len(regressed) > 0 {
		fmt.Fprintf(os.Stderr, "benchcmp: %d metric(s) regressed beyond +%.0f%%: %v\n",
			len(regressed), *maxRegress*100, regressed)
		fmt.Fprintln(os.Stderr, "benchcmp: if this slowdown is intended, refresh the baseline (make bench) or apply the skip-bench-gate label")
		os.Exit(1)
	}
	fmt.Println("bench gate: pass")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchcmp:", err)
	os.Exit(1)
}

// largeNGate compares only the large-N kernel timings (ns_per_op_n1e6).
// Unlike the main gate it deliberately skips the base-workload match: the
// CI large-n lane pairs a minimal base workload with the expensive
// 1e6-record sweep, so only the sweep's shape (largen_d / largen_k and a
// top of at least 1e6) has to agree. A missing map on either side is a
// hard failure — the lane exists to keep these keys measured.
func largeNGate(baseline, fresh benchFile, maxRegress, inject float64) {
	if len(baseline.LargeN1e6) == 0 {
		fatal(fmt.Errorf("baseline %q has no ns_per_op_n1e6 (rerun make bench with the large-N sweep)", baseline.Name))
	}
	if len(fresh.LargeN1e6) == 0 {
		fatal(fmt.Errorf("fresh %q has no ns_per_op_n1e6 (was ksprbench run with -n 1000000?)", fresh.Name))
	}
	if baseline.LargeND != fresh.LargeND || baseline.LargeNK != fresh.LargeNK {
		fatal(fmt.Errorf("large-N workload mismatch: baseline d=%d k=%d, fresh d=%d k=%d",
			baseline.LargeND, baseline.LargeNK, fresh.LargeND, fresh.LargeNK))
	}
	names := make([]string, 0, len(baseline.LargeN1e6))
	for name := range baseline.LargeN1e6 {
		if _, ok := fresh.LargeN1e6[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		fatal(fmt.Errorf("no large-N kernels in common"))
	}
	fmt.Printf("large-n gate: baseline %q (%d cpus) vs fresh %q (%d cpus) at n=1e6 d=%d k=%d, tolerance +%.0f%%\n",
		baseline.Name, baseline.CPUs, fresh.Name, fresh.CPUs,
		baseline.LargeND, baseline.LargeNK, maxRegress*100)
	var regressed []string
	for _, name := range names {
		base := baseline.LargeN1e6[name]
		if base <= 0 {
			continue
		}
		now := int64(float64(fresh.LargeN1e6[name]) * inject)
		ratio := float64(now) / float64(base)
		verdict := "ok"
		if ratio > 1+maxRegress {
			verdict = "REGRESSED"
			regressed = append(regressed, name)
		}
		fmt.Printf("  %-10s %12d -> %12d ns  (%.2fx)  %s\n", name, base, now, ratio, verdict)
	}
	if len(regressed) > 0 {
		fmt.Fprintf(os.Stderr, "benchcmp: %d large-N kernel(s) regressed beyond +%.0f%%: %v\n",
			len(regressed), maxRegress*100, regressed)
		fmt.Fprintln(os.Stderr, "benchcmp: if this slowdown is intended, refresh the baseline (make bench) or apply the skip-bench-gate label")
		os.Exit(1)
	}
	fmt.Println("large-n gate: pass")
}

// ---- load gate -----------------------------------------------------------

// loadFile is the subset of cmd/ksprload's BENCH_<name>.json the load
// gate reads.
type loadFile struct {
	Name        string  `json:"name"`
	Datasets    int     `json:"datasets"`
	N           int     `json:"n"`
	D           int     `json:"d"`
	K           int     `json:"k"`
	Seed        int64   `json:"seed"`
	CPUs        int     `json:"cpus"`
	Concurrency int     `json:"concurrency"`
	Requests    uint64  `json:"requests_total"`
	Throughput  float64 `json:"throughput_rps"`
	ErrorRate   float64 `json:"error_rate"`

	Mix map[string]int `json:"mix"`

	Latency map[string]struct {
		Count uint64 `json:"count"`
		P99Ns int64  `json:"p99_ns"`
	} `json:"latency_ns"`

	Verify struct {
		Violations uint64   `json:"violations"`
		Examples   []string `json:"violation_examples"`
	} `json:"verify"`

	HistoryTicks uint64 `json:"history_ticks"`
}

func loadLoadFile(path string) (loadFile, error) {
	var f loadFile
	raw, err := os.ReadFile(path)
	if err != nil {
		return f, err
	}
	if err := json.Unmarshal(raw, &f); err != nil {
		return f, fmt.Errorf("%s: %w", path, err)
	}
	if f.Requests == 0 || len(f.Latency) == 0 {
		return f, fmt.Errorf("%s: no measured requests", path)
	}
	return f, nil
}

// loadGate compares two load summaries: per-class p99 latency within
// maxRegress, error rate within errDelta of the baseline, and zero
// invariant violations in the fresh run. Exits the process with the
// verdict.
func loadGate(baselinePath, freshPath string, maxRegress, errDelta, inject float64) {
	baseline, err := loadLoadFile(baselinePath)
	if err != nil {
		fatal(err)
	}
	fresh, err := loadLoadFile(freshPath)
	if err != nil {
		fatal(err)
	}
	if baseline.Datasets != fresh.Datasets || baseline.N != fresh.N ||
		baseline.D != fresh.D || baseline.K != fresh.K {
		fatal(fmt.Errorf("workload mismatch: baseline datasets=%d n=%d d=%d k=%d, fresh datasets=%d n=%d d=%d k=%d",
			baseline.Datasets, baseline.N, baseline.D, baseline.K,
			fresh.Datasets, fresh.N, fresh.D, fresh.K))
	}

	fmt.Printf("load gate: baseline %q (%d cpus, conc %d) vs fresh %q (%d cpus, conc %d), p99 tolerance +%.0f%%\n",
		baseline.Name, baseline.CPUs, baseline.Concurrency,
		fresh.Name, fresh.CPUs, fresh.Concurrency, maxRegress*100)

	var failures []string

	// Per-class p99, skipping classes without enough samples on both
	// sides for a nearest-rank tail to mean anything.
	classes := make([]string, 0, len(baseline.Latency))
	for class := range baseline.Latency {
		if _, ok := fresh.Latency[class]; ok {
			classes = append(classes, class)
		}
	}
	sort.Strings(classes)
	for _, class := range classes {
		base, now := baseline.Latency[class], fresh.Latency[class]
		if base.Count < minTailSamples || now.Count < minTailSamples || base.P99Ns <= 0 {
			fmt.Printf("  %-8s skipped (baseline %d / fresh %d samples, need >= %d)\n",
				class, base.Count, now.Count, minTailSamples)
			continue
		}
		p99 := int64(float64(now.P99Ns) * inject)
		ratio := float64(p99) / float64(base.P99Ns)
		verdict := "ok"
		if ratio > 1+maxRegress {
			verdict = "REGRESSED"
			failures = append(failures, class+"/p99")
		}
		fmt.Printf("  %-8s %12d -> %12d p99 ns  (%.2fx)  %s\n", class, base.P99Ns, p99, ratio, verdict)
	}

	// Error rate: absolute delta over the baseline (a rate, not a ratio —
	// a 0.0001 -> 0.0002 doubling is noise; 0.001 -> 0.02 is an outage).
	errRate := fresh.ErrorRate * inject
	verdict := "ok"
	if errRate > baseline.ErrorRate+errDelta {
		verdict = "REGRESSED"
		failures = append(failures, "error_rate")
	}
	fmt.Printf("  %-8s %12.4f -> %12.4f  %s\n", "errors", baseline.ErrorRate, errRate, verdict)

	// Telemetry-sampler liveness: once a baseline records history ticks,
	// every fresh run must too — a zero here means the sampler goroutine
	// died or history got silently disabled, not a slow machine.
	if baseline.HistoryTicks > 0 {
		if fresh.HistoryTicks == 0 {
			failures = append(failures, "history_ticks")
			fmt.Printf("  history  baseline %d ticks -> fresh 0: telemetry sampler is dead\n", baseline.HistoryTicks)
		} else {
			fmt.Printf("  history  %d -> %d sampler ticks  ok\n", baseline.HistoryTicks, fresh.HistoryTicks)
		}
	}

	// The verifier's verdict is not a tolerance: any invariant violation
	// in the fresh run fails the gate outright.
	if fresh.Verify.Violations > 0 {
		failures = append(failures, "invariant_violations")
		fmt.Printf("  verify   %d invariant violation(s): %v\n", fresh.Verify.Violations, fresh.Verify.Examples)
	} else {
		fmt.Printf("  verify   0 invariant violations\n")
	}

	if len(failures) > 0 {
		fmt.Fprintf(os.Stderr, "benchcmp: load gate failed: %v\n", failures)
		fmt.Fprintln(os.Stderr, "benchcmp: if this slowdown is intended, refresh the baseline (make load) or apply the skip-bench-gate label")
		os.Exit(1)
	}
	fmt.Println("load gate: pass")
}
