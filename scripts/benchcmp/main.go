// Command benchcmp is the bench regression gate's comparator: it reads two
// BENCH_<name>.json files (see cmd/ksprbench -json), checks that they
// measured the same workload, and fails when any algorithm's fresh ns/op
// exceeds the baseline by more than -max-regress.
//
//	go run ./scripts/benchcmp -baseline BENCH_core.json -fresh BENCH_ci.json
//
// -inject multiplies the fresh numbers before comparing; the CI bench job
// uses it to prove the gate actually fails on a slowdown (-inject 2 must
// exit non-zero against a healthy baseline).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

// benchFile is the subset of the BENCH_<name>.json schema the gate reads.
type benchFile struct {
	Name       string           `json:"name"`
	Dist       string           `json:"dist"`
	N          int              `json:"n"`
	D          int              `json:"d"`
	K          int              `json:"k"`
	Seed       int64            `json:"seed"`
	CPUs       int              `json:"cpus"`
	Algorithms map[string]int64 `json:"ns_per_op"`
	// Tail latency per algorithm (nearest-rank over the serial sweep's
	// per-query times); gated like the means so a fat tail cannot hide
	// behind a healthy average.
	AlgorithmsP95 map[string]int64 `json:"p95_ns"`
	AlgorithmsP99 map[string]int64 `json:"p99_ns"`
	// What-if keys: probe latency is gated like an algorithm's ns/op, and
	// the keep rate must stay positive (0 means the incremental fast path
	// stopped firing — a correctness-of-architecture regression, not noise).
	WhatIfProbeNs  int64   `json:"whatif_probe_ns"`
	WhatIfKeepRate float64 `json:"whatif_keep_rate"`
}

func load(path string) (benchFile, error) {
	var b benchFile
	raw, err := os.ReadFile(path)
	if err != nil {
		return b, err
	}
	if err := json.Unmarshal(raw, &b); err != nil {
		return b, fmt.Errorf("%s: %w", path, err)
	}
	if len(b.Algorithms) == 0 {
		return b, fmt.Errorf("%s: no ns_per_op entries", path)
	}
	return b, nil
}

func main() {
	var (
		baselinePath = flag.String("baseline", "BENCH_core.json", "committed baseline summary")
		freshPath    = flag.String("fresh", "BENCH_ci.json", "freshly measured summary")
		maxRegress   = flag.Float64("max-regress", 0.30, "tolerated fractional slowdown per algorithm")
		inject       = flag.Float64("inject", 1.0, "multiply fresh ns/op by this factor (gate self-test)")
	)
	flag.Parse()

	baseline, err := load(*baselinePath)
	if err != nil {
		fatal(err)
	}
	fresh, err := load(*freshPath)
	if err != nil {
		fatal(err)
	}
	if baseline.Dist != fresh.Dist || baseline.N != fresh.N ||
		baseline.D != fresh.D || baseline.K != fresh.K || baseline.Seed != fresh.Seed {
		fatal(fmt.Errorf("workload mismatch: baseline %s n=%d d=%d k=%d seed=%d, fresh %s n=%d d=%d k=%d seed=%d",
			baseline.Dist, baseline.N, baseline.D, baseline.K, baseline.Seed,
			fresh.Dist, fresh.N, fresh.D, fresh.K, fresh.Seed))
	}

	names := make([]string, 0, len(baseline.Algorithms))
	for name := range baseline.Algorithms {
		if _, ok := fresh.Algorithms[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		fatal(fmt.Errorf("no algorithms in common between %s and %s", *baselinePath, *freshPath))
	}

	fmt.Printf("bench gate: baseline %q (%d cpus) vs fresh %q (%d cpus), tolerance +%.0f%%\n",
		baseline.Name, baseline.CPUs, fresh.Name, fresh.CPUs, *maxRegress*100)
	var regressed []string
	for _, name := range names {
		base := baseline.Algorithms[name]
		now := int64(float64(fresh.Algorithms[name]) * *inject)
		ratio := float64(now) / float64(base)
		verdict := "ok"
		if ratio > 1+*maxRegress {
			verdict = "REGRESSED"
			regressed = append(regressed, name)
		}
		fmt.Printf("  %-10s %12d -> %12d ns/op  (%.2fx)  %s\n", name, base, now, ratio, verdict)
	}
	// Tail-latency gate: same tolerance, applied to p95/p99 per algorithm.
	// Both files must carry the maps (baselines predating them skip
	// cleanly, like the what-if keys below).
	for _, tail := range []struct {
		label    string
		baseline map[string]int64
		fresh    map[string]int64
	}{
		{"p95", baseline.AlgorithmsP95, fresh.AlgorithmsP95},
		{"p99", baseline.AlgorithmsP99, fresh.AlgorithmsP99},
	} {
		if len(tail.baseline) == 0 || len(tail.fresh) == 0 {
			continue
		}
		for _, name := range names {
			base, okB := tail.baseline[name]
			now, okF := tail.fresh[name]
			if !okB || !okF || base <= 0 {
				continue
			}
			now = int64(float64(now) * *inject)
			ratio := float64(now) / float64(base)
			verdict := "ok"
			if ratio > 1+*maxRegress {
				verdict = "REGRESSED"
				regressed = append(regressed, name+"/"+tail.label)
			}
			fmt.Printf("  %-10s %12d -> %12d ns/%s (%.2fx)  %s\n", name, base, now, tail.label, ratio, verdict)
		}
	}
	// What-if gate: only when both files carry the sweep (the fresh CI run
	// includes it; older baselines without the keys are skipped cleanly).
	if baseline.WhatIfProbeNs > 0 && fresh.WhatIfProbeNs > 0 {
		now := int64(float64(fresh.WhatIfProbeNs) * *inject)
		ratio := float64(now) / float64(baseline.WhatIfProbeNs)
		verdict := "ok"
		if ratio > 1+*maxRegress {
			verdict = "REGRESSED"
			regressed = append(regressed, "whatif_probe_ns")
		}
		fmt.Printf("  %-10s %12d -> %12d ns/probe (%.2fx)  %s\n",
			"whatif", baseline.WhatIfProbeNs, now, ratio, verdict)
		if fresh.WhatIfKeepRate <= 0 {
			fmt.Printf("  %-10s keep rate %.2f -> %.2f  DEAD (incremental path no longer fires)\n",
				"whatif", baseline.WhatIfKeepRate, fresh.WhatIfKeepRate)
			regressed = append(regressed, "whatif_keep_rate")
		}
	}
	if len(regressed) > 0 {
		fmt.Fprintf(os.Stderr, "benchcmp: %d metric(s) regressed beyond +%.0f%%: %v\n",
			len(regressed), *maxRegress*100, regressed)
		fmt.Fprintln(os.Stderr, "benchcmp: if this slowdown is intended, refresh the baseline (make bench) or apply the skip-bench-gate label")
		os.Exit(1)
	}
	fmt.Println("bench gate: pass")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchcmp:", err)
	os.Exit(1)
}
