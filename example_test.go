package kspr_test

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"testing"

	kspr "repro"
)

// Example demonstrates the basic kSPR flow on the paper's Figure-1
// restaurants: ratings for value, service and ambiance, focal record Kyma,
// k = 3.
func Example() {
	records := [][]float64{
		{0.3, 0.8, 0.8}, // L'Entrecôte
		{0.9, 0.4, 0.4}, // Beirut Grill
		{0.8, 0.3, 0.4}, // El Coyote
		{0.4, 0.3, 0.6}, // La Braceria
		{0.5, 0.5, 0.7}, // Kyma (focal)
	}
	db, err := kspr.Open(records)
	if err != nil {
		panic(err)
	}
	res, err := db.KSPR(4, 3, kspr.WithVolumes(20000), kspr.WithSeed(1))
	if err != nil {
		panic(err)
	}
	fmt.Printf("regions: %d\n", len(res.Regions))
	fmt.Printf("Kyma shortlisted for %.0f%% of preferences\n",
		100*db.ImpactProbability(res, 200000, 1))
	// Output:
	// regions: 5
	// Kyma shortlisted for 93% of preferences
}

// ExampleWithParallelism runs one query twice — serially and on a 4-worker
// engine — and shows that the answers are identical: parallelism trades CPU
// for latency without changing a single region.
func ExampleWithParallelism() {
	rng := rand.New(rand.NewSource(1))
	records := make([][]float64, 400)
	for i := range records {
		records[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64()}
	}
	db, err := kspr.Open(records)
	if err != nil {
		panic(err)
	}
	focal := db.Skyline()[0]
	serial, err := db.KSPR(focal, 5, kspr.WithParallelism(1))
	if err != nil {
		panic(err)
	}
	parallel, err := db.KSPR(focal, 5, kspr.WithParallelism(4))
	if err != nil {
		panic(err)
	}
	identical := len(serial.Regions) == len(parallel.Regions)
	for i := 0; identical && i < len(serial.Regions); i++ {
		identical = serial.Regions[i].Rank == parallel.Regions[i].Rank &&
			serial.Regions[i].Witness.Equal(parallel.Regions[i].Witness)
	}
	fmt.Printf("serial regions: %d\n", len(serial.Regions))
	fmt.Printf("parallel matches serial: %v\n", identical)
	// Output:
	// serial regions: 43
	// parallel matches serial: true
}

// ExampleWithContext bounds a query with a context deadline: processing
// polls the context at expansion points and abandons the query as soon as
// it is done.
func ExampleWithContext() {
	rng := rand.New(rand.NewSource(5))
	records := make([][]float64, 300)
	for i := range records {
		records[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64()}
	}
	db, err := kspr.Open(records)
	if err != nil {
		panic(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already expired: the query stops at its first checkpoint
	_, err = db.KSPR(db.Skyline()[0], 5, kspr.WithContext(ctx))
	fmt.Println(err)
	// Output:
	// context canceled
}

// ExampleDB_KSPRBatch answers kSPR for a panel of competing options in one
// shared-work pass: the dominance precomputation, candidate index and LP
// arenas are built once and amortized across every focal option.
func ExampleDB_KSPRBatch() {
	rng := rand.New(rand.NewSource(1))
	records := make([][]float64, 400)
	for i := range records {
		records[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64()}
	}
	db, err := kspr.Open(records)
	if err != nil {
		panic(err)
	}
	sky := db.Skyline()
	queries := make([]kspr.BatchQuery, 4)
	for i := range queries {
		queries[i] = kspr.BatchQuery{FocalID: sky[i]}
	}
	outcomes, err := db.KSPRBatch(queries, 5, kspr.WithBatchOptions(kspr.WithParallelism(2)))
	if err != nil {
		panic(err)
	}
	for i, o := range outcomes {
		if o.Err != nil {
			panic(o.Err)
		}
		fmt.Printf("focal %d: %d regions\n", queries[i].FocalID, len(o.Result.Regions))
	}
	// Output:
	// focal 22: 43 regions
	// focal 24: 19 regions
	// focal 65: 17 regions
	// focal 68: 22 regions
}

// ExampleDB_TopK shows the plain top-k query against the same index.
func ExampleDB_TopK() {
	records := [][]float64{
		{0.3, 0.8, 0.8},
		{0.9, 0.4, 0.4},
		{0.8, 0.3, 0.4},
		{0.4, 0.3, 0.6},
		{0.5, 0.5, 0.7},
	}
	db, _ := kspr.Open(records)
	fmt.Println(db.TopK([]float64{0.2, 0.2, 0.6}, 3))
	// Output: [0 4 3]
}

func TestResultJSONRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	records := make([][]float64, 80)
	for i := range records {
		records[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64()}
	}
	db, err := kspr.Open(records)
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.KSPR(db.Skyline()[0], 4)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var back kspr.Result
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Regions) != len(res.Regions) || back.K != res.K {
		t.Fatalf("round trip lost data: %d regions vs %d", len(back.Regions), len(res.Regions))
	}
	for i := range back.Regions {
		if back.Regions[i].Rank != res.Regions[i].Rank {
			t.Fatal("region rank lost in round trip")
		}
		if !back.Regions[i].Witness.Equal(res.Regions[i].Witness) {
			t.Fatal("region witness lost in round trip")
		}
	}
}
