// Package kspr identifies k-Shortlist Preference Regions: the regions of
// the preference space in which a focal record ranks among the top-k
// options of a dataset under linear scoring. It implements the SIGMOD 2017
// paper "Determining the Impact Regions of Competing Options in Preference
// Space" by Tang, Mouratidis and Yiu — the CellTree-based algorithms CTA,
// P-CTA and LP-CTA, together with their substrates (aggregate R-tree,
// simplex LP solver, exact cell geometry).
//
// # Model
//
// Records are d-dimensional vectors with "larger is better" attributes. A
// user preference is a weight vector w (w_i > 0, Σ w_i = 1) and the score
// of record r is the weighted sum r·w. The kSPR query for a focal record p
// and shortlist size k reports every region of the preference space where p
// scores among the k best records. Regions are returned in the transformed
// (d-1)-dimensional space obtained by eliminating the last weight through
// the normalization Σ w_i = 1; use geom-style Lift semantics (append
// 1 - Σ w_j) to move back to original weights.
//
// # Quickstart
//
//	db, _ := kspr.Open(records)           // records [][]float64
//	res, _ := db.KSPR(focalIdx, 10)       // where is record focalIdx top-10?
//	for _, region := range res.Regions {
//	    fmt.Println(region.Witness, region.Rank)
//	}
//	fmt.Println(db.ImpactProbability(res, 100000, 1)) // market impact
package kspr

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/rtree"
	"repro/internal/store"
	"repro/internal/viz"
)

// Algorithm selects the processing strategy; LPCTA is the paper's best and
// the default.
type Algorithm = core.Algorithm

// Algorithm values.
const (
	CTA         = core.CTA
	PCTA        = core.PCTA
	LPCTA       = core.LPCTA
	KSkybandCTA = core.KSkybandCTA
)

// Space selects the preference space regions are computed in.
type Space = core.Space

// Space values.
const (
	Transformed = core.Transformed
	Original    = core.Original
)

// BoundsMode selects LP-CTA's look-ahead bound flavour.
type BoundsMode = core.BoundsMode

// BoundsMode values.
const (
	FastBounds   = core.FastBounds
	GroupBounds  = core.GroupBounds
	RecordBounds = core.RecordBounds
)

// Region is a single kSPR result region; see core.Region for field docs.
type Region = core.Region

// Result is a complete kSPR answer; see core.Result for field docs.
type Result = core.Result

// Stats are the query's side metrics; see core.Stats for field docs.
type Stats = core.Stats

// Trace records per-phase wall time of a query when attached via
// WithTrace; read the breakdown with Phases after the query returns. One
// trace may be shared across the queries of a batch (it is
// concurrency-safe and aggregates by phase name). See obs.Trace.
type Trace = obs.Trace

// TracePhase is one aggregated phase of a Trace (name, total nanoseconds,
// span count).
type TracePhase = obs.Phase

// NewTrace returns an empty query trace for WithTrace.
func NewTrace() *Trace { return obs.NewTrace() }

// DB is a dataset indexed for kSPR and related rank-aware queries. It is
// safe for concurrent readers, and — since the live-dataset subsystem —
// also for concurrent mutation: Apply advances the dataset one atomic
// mutation batch (one generation) at a time while every in-flight query
// keeps the immutable index snapshot it resolved at entry, so readers
// never observe a torn dataset. Open builds a purely in-memory DB;
// OpenStore binds one to a WAL-backed directory so mutations survive
// crashes. Freeze pins an immutable handle on the current generation.
type DB struct {
	st     atomic.Pointer[dbState]
	frozen *dbState

	mu       sync.Mutex // serializes Apply and the watcher registry
	store    *store.Store
	watchers map[int64]func(ApplyEvent)
	nextW    int64
	fanout   int
}

// dbState is one immutable generation of a DB: the index, the stable
// option id behind each dense record index, and the id allocator's
// watermark (in-memory path; store-backed DBs delegate id assignment).
type dbState struct {
	tree   *rtree.Tree // nil while the dataset is empty
	gen    uint64
	ids    []int64
	nextID int64
	dim    int
	// warmIndex records that this generation's index was reassembled
	// from the persisted candidate-index file instead of being rebuilt
	// from scratch (see OpenStore and docs/ARCHITECTURE.md).
	warmIndex bool
}

// cur resolves the state a read works against: the pinned generation for
// frozen handles, the latest otherwise.
func (db *DB) cur() *dbState {
	if db.frozen != nil {
		return db.frozen
	}
	return db.st.Load()
}

// DBOption configures Open.
type DBOption func(*dbConfig)

type dbConfig struct {
	fanout int
}

// WithFanout sets the R-tree node capacity (default 64).
func WithFanout(f int) DBOption {
	return func(c *dbConfig) { c.fanout = f }
}

// Open copies the records and bulk-loads the aggregate R-tree index over
// them. Every record must have the same, >= 2, dimensionality.
func Open(records [][]float64, opts ...DBOption) (*DB, error) {
	if len(records) == 0 {
		return nil, fmt.Errorf("kspr: empty dataset")
	}
	cfg := dbConfig{fanout: rtree.DefaultFanout}
	for _, o := range opts {
		o(&cfg)
	}
	d := len(records[0])
	if d < 2 {
		return nil, fmt.Errorf("kspr: records must have at least 2 attributes, got %d", d)
	}
	recs := make([]geom.Vector, len(records))
	for i, r := range records {
		if len(r) != d {
			return nil, fmt.Errorf("kspr: record %d has %d attributes, want %d", i, len(r), d)
		}
		// No Clone needed: Build packs the records into its own dense
		// backing array, so the tree never aliases caller memory.
		recs[i] = geom.Vector(r)
	}
	tree, err := rtree.Build(recs, rtree.WithFanout(cfg.fanout))
	if err != nil {
		return nil, fmt.Errorf("kspr: building index: %w", err)
	}
	db := &DB{fanout: cfg.fanout}
	ids := make([]int64, len(recs))
	for i := range ids {
		ids[i] = int64(i)
	}
	db.st.Store(&dbState{tree: tree, gen: 1, ids: ids, nextID: int64(len(recs)), dim: d})
	return db, nil
}

// IndexWarm reports whether this handle's current generation was indexed
// from the persisted candidate index (warm start: O(n) tree reassembly,
// skyband table served from disk) rather than rebuilt cold. It is pinned
// by Freeze like every other property of the generation. Purely
// informational — warm and cold indexes answer every query identically.
func (db *DB) IndexWarm() bool { return db.cur().warmIndex }

// Len returns the number of records.
func (db *DB) Len() int {
	st := db.cur()
	if st.tree == nil {
		return 0
	}
	return st.tree.Len()
}

// Dim returns the attribute dimensionality d (0 while the dataset is
// empty).
func (db *DB) Dim() int { return db.cur().dim }

// Record returns (a copy of) the record at dense index id, or nil when
// the index is out of range (e.g. on an empty live dataset).
func (db *DB) Record(id int) []float64 {
	st := db.cur()
	if st.tree == nil || id < 0 || id >= st.tree.Len() {
		return nil
	}
	return geom.Vector(st.tree.Records[id]).Clone()
}

// QueryOption configures a kSPR query.
type QueryOption func(*core.Options)

// WithAlgorithm selects the processing algorithm (default LPCTA).
func WithAlgorithm(a Algorithm) QueryOption {
	return func(o *core.Options) { o.Algorithm = a }
}

// WithSpace selects the preference space (default Transformed).
func WithSpace(s Space) QueryOption {
	return func(o *core.Options) { o.Space = s }
}

// WithBoundsMode selects the LP-CTA bound mode (default FastBounds).
func WithBoundsMode(m BoundsMode) QueryOption {
	return func(o *core.Options) { o.Bounds = m }
}

// WithProgressive streams regions to fn as soon as they are final.
func WithProgressive(fn func(Region)) QueryOption {
	return func(o *core.Options) { o.OnRegion = fn }
}

// WithVolumes measures each region (exact up to 2-d preference spaces,
// Monte-Carlo above with the given sample count).
func WithVolumes(samples int) QueryOption {
	return func(o *core.Options) {
		o.ComputeVolumes = true
		o.VolumeSamples = samples
	}
}

// WithSeed fixes the randomization seed used by estimators.
func WithSeed(seed int64) QueryOption {
	return func(o *core.Options) { o.Seed = seed }
}

// WithoutGeometry skips the exact-geometry finalization step; regions then
// carry constraints and witnesses but no vertex lists.
func WithoutGeometry() QueryOption {
	return func(o *core.Options) { o.FinalizeGeometry = false }
}

// WithContext makes the query cancellable: processing polls ctx at
// cell-tree expansion points and the query returns ctx.Err() (wrapped) as
// soon as ctx is done. Use it to bound long-running queries with a
// deadline, e.g. in a serving path.
func WithContext(ctx context.Context) QueryOption {
	return func(o *core.Options) { o.Ctx = ctx }
}

// WithParallelism sets how many goroutines the expansion engine may use
// for this query: CellTree subtree insertion, look-ahead rank-bound
// classification, and region finalization all fan out across n workers,
// each with its own reusable LP solver state. Results are byte-identical
// to the serial run for every n — the engine merges work in deterministic
// order — so the setting trades CPU for latency only. n <= 0 (the library
// default) uses one worker per available CPU; n == 1 runs the paper's
// single-threaded algorithms unchanged.
func WithParallelism(n int) QueryOption {
	return func(o *core.Options) { o.Parallelism = n }
}

// WithTrace attaches a phase recorder to the query: the engine records
// wall time per processing phase (dominance filtering, skyband/candidate
// discovery, cell-tree expansion, rank-bound classification, pivot
// checks, finalization) into t, which the caller inspects with t.Phases()
// after the query returns. A nil t leaves tracing off.
func WithTrace(t *Trace) QueryOption {
	return func(o *core.Options) { o.Trace = t }
}

// WithParallelBounds runs the query engine on all CPU cores.
//
// Deprecated: the engine now parallelizes every expansion phase, not just
// LP-CTA's rank bounds. Use WithParallelism instead; WithParallelBounds is
// equivalent to WithParallelism(0).
func WithParallelBounds() QueryOption {
	return WithParallelism(0)
}

// KSPR answers the k-Shortlist Preference Region query for the dataset
// record with index focalID.
func (db *DB) KSPR(focalID, k int, opts ...QueryOption) (*Result, error) {
	st := db.cur()
	if st.tree == nil || focalID < 0 || focalID >= st.tree.Len() {
		return nil, fmt.Errorf("kspr: focal id %d out of range [0, %d)", focalID, db.Len())
	}
	return db.query(st, st.tree.Records[focalID], focalID, k, opts)
}

// KSPRVector answers the query for a focal record that is not part of the
// dataset (e.g. a hypothetical new option).
func (db *DB) KSPRVector(focal []float64, k int, opts ...QueryOption) (*Result, error) {
	return db.query(db.cur(), geom.Vector(focal), -1, k, opts)
}

// buildOptions folds query options over the library defaults.
func buildOptions(k int, opts []QueryOption) core.Options {
	o := core.Options{
		K:                k,
		Algorithm:        LPCTA,
		FinalizeGeometry: true,
	}
	for _, f := range opts {
		f(&o)
	}
	return o
}

func (db *DB) query(st *dbState, focal geom.Vector, focalID, k int, opts []QueryOption) (*Result, error) {
	if st.tree == nil {
		return nil, fmt.Errorf("kspr: empty dataset")
	}
	return core.Run(st.tree, focal, focalID, buildOptions(k, opts))
}

// BatchQuery is one focal option of a KSPRBatch call. FocalID names a
// dataset record; set it to -1 and fill Focal to query a hypothetical
// record instead. K overrides the batch-wide shortlist size when positive.
// Ctx, when non-nil, cancels just this item.
type BatchQuery struct {
	FocalID int
	Focal   []float64
	K       int
	Ctx     context.Context
}

// BatchOutcome is the per-item answer of KSPRBatch: exactly one of Result
// and Err is set. See core.BatchOutcome.
type BatchOutcome = core.BatchOutcome

// BatchOption configures a KSPRBatch call beyond the per-query options.
type BatchOption func(*core.BatchOptions)

// WithBatchOptions applies regular query options (algorithm, space,
// volumes, context, parallelism, ...) to every item of the batch.
func WithBatchOptions(opts ...QueryOption) BatchOption {
	return func(b *core.BatchOptions) {
		for _, o := range opts {
			o(&b.Options)
		}
	}
}

// WithBatchFailFast aborts items not yet started once any item errors;
// they settle with core.ErrBatchAborted.
func WithBatchFailFast() BatchOption {
	return func(b *core.BatchOptions) { b.FailFast = true }
}

// WithBatchOnOutcome streams each item's outcome as soon as it settles
// (completion order, calls serialized) — the batch analogue of
// WithProgressive, used by serving paths to emit results before the whole
// batch finishes.
func WithBatchOnOutcome(fn func(i int, o BatchOutcome)) BatchOption {
	return func(b *core.BatchOptions) { b.OnOutcome = fn }
}

// WithBatchItemTimeout bounds each item's processing time individually:
// the item's context is derived with this timeout when the item starts
// running, so one pathological item times out on its own instead of
// consuming the whole batch's deadline.
func WithBatchItemTimeout(d time.Duration) BatchOption {
	return func(b *core.BatchOptions) { b.ItemTimeout = d }
}

// WithBatchNoShare disables the batch's shared precomputation, running
// every item as an independent query on the batch scheduler. Results are
// identical either way; the switch exists for cross-checking and for
// measuring the shared-work speedup.
func WithBatchNoShare() BatchOption {
	return func(b *core.BatchOptions) { b.NoShare = true }
}

// KSPRBatch answers kSPR for a panel of focal options over the dataset in
// a single shared-work pass: the k-skyband dominance precomputation, the
// candidate index behind the progressive algorithms' reportability checks,
// the insertion fork-token pool and the per-worker LP solver arenas are
// built once and shared by every item, and the items are scheduled across
// the engine's parallelism budget (WithBatchOptions(WithParallelism(n))).
// Each item's Result is byte-identical to the corresponding KSPR /
// KSPRVector call; per-item failures land in the item's BatchOutcome, so
// one bad item cannot sink its siblings. The returned slice is indexed
// like queries and independent of scheduling order.
func (db *DB) KSPRBatch(queries []BatchQuery, k int, opts ...BatchOption) ([]BatchOutcome, error) {
	st := db.cur()
	if st.tree == nil {
		return nil, fmt.Errorf("kspr: empty dataset")
	}
	b := core.BatchOptions{Options: core.Options{
		K:                k,
		Algorithm:        LPCTA,
		FinalizeGeometry: true,
	}}
	for _, o := range opts {
		o(&b)
	}
	items := make([]core.BatchItem, len(queries))
	for i, q := range queries {
		items[i] = core.BatchItem{FocalID: q.FocalID, K: q.K, Ctx: q.Ctx}
		if q.FocalID < 0 {
			items[i].Focal = geom.Vector(q.Focal)
		}
	}
	return core.RunBatch(st.tree, items, b)
}

// ApproxResult is the outcome of the approximate kSPR query; see
// core.ApproxResult for field docs.
type ApproxResult = core.ApproxResult

// KSPRApprox answers the query approximately with an accuracy guarantee:
// it returns regions where the focal record is provably top-k plus an
// uncertain set whose measure is at most epsilon times the preference
// space. It implements the approximate processing the paper proposes as
// future work (§8) and can be much faster than the exact algorithms when
// the kSPR result has intricate boundaries.
func (db *DB) KSPRApprox(focalID, k int, epsilon float64) (*ApproxResult, error) {
	return db.KSPRApproxCtx(context.Background(), focalID, k, epsilon)
}

// KSPRApproxCtx is KSPRApprox with cancellation: the refinement loop polls
// ctx and returns ctx.Err() once it is done.
func (db *DB) KSPRApproxCtx(ctx context.Context, focalID, k int, epsilon float64) (*ApproxResult, error) {
	st := db.cur()
	if st.tree == nil || focalID < 0 || focalID >= st.tree.Len() {
		return nil, fmt.Errorf("kspr: focal id %d out of range [0, %d)", focalID, db.Len())
	}
	return core.RunApprox(st.tree, st.tree.Records[focalID], focalID,
		core.ApproxOptions{K: k, Epsilon: epsilon, Ctx: ctx})
}

// KSPRApproxVector is KSPRApprox for a focal record outside the dataset.
func (db *DB) KSPRApproxVector(focal []float64, k int, epsilon float64) (*ApproxResult, error) {
	return db.KSPRApproxVectorCtx(context.Background(), focal, k, epsilon)
}

// KSPRApproxVectorCtx is KSPRApproxVector with cancellation.
func (db *DB) KSPRApproxVectorCtx(ctx context.Context, focal []float64, k int, epsilon float64) (*ApproxResult, error) {
	st := db.cur()
	if st.tree == nil {
		return nil, fmt.Errorf("kspr: empty dataset")
	}
	return core.RunApprox(st.tree, geom.Vector(focal), -1,
		core.ApproxOptions{K: k, Epsilon: epsilon, Ctx: ctx})
}

// SVGOptions control WriteSVG rendering.
type SVGOptions = viz.Options

// WriteSVG renders a (2-dimensional transformed-space, i.e. d=3 data)
// result as an SVG plot in the style of the paper's Figures 1(b) and 9:
// regions coloured by rank over the preference simplex.
func WriteSVG(w io.Writer, res *Result, opts SVGOptions) error {
	return viz.WriteSVG(w, res, opts)
}

// TopK returns the ids of the k best records under original-space weights
// w (len d, need not be normalized), best first.
func (db *DB) TopK(w []float64, k int) []int {
	st := db.cur()
	if st.tree == nil {
		return nil
	}
	return st.tree.TopK(geom.Vector(w), k, nil)
}

// Skyline returns the ids of the records dominated by no other.
func (db *DB) Skyline() []int {
	st := db.cur()
	if st.tree == nil {
		return nil
	}
	return st.tree.Skyline(nil)
}

// KSkyband returns the ids of records dominated by fewer than k others.
func (db *DB) KSkyband(k int) []int {
	st := db.cur()
	if st.tree == nil {
		return nil
	}
	return st.tree.KSkyband(k, nil)
}

// Rank computes the rank of record focalID under weights w (1 = best);
// ties with other records are ignored, as in the paper. An out-of-range
// focalID (e.g. on an empty live dataset) yields 0. The scan streams the
// index's flat row-major backing, so large-n ranking touches one
// contiguous array instead of chasing per-record slice headers.
func (db *DB) Rank(focalID int, w []float64) int {
	tree := db.cur().tree
	if tree == nil || focalID < 0 || focalID >= tree.Len() {
		return 0
	}
	wv := geom.Vector(w)
	focal := tree.Records[focalID]
	ps := focal.Dot(wv)
	d := tree.Dim
	rows := tree.FlatRows()
	rank := 1
	for id := 0; id < tree.Len(); id++ {
		if id == focalID {
			continue
		}
		row := rows[id*d : (id+1)*d]
		s := 0.0
		equal := true
		for j := 0; j < d; j++ {
			v := row[j]
			s += v * wv[j]
			if v != focal[j] {
				equal = false
			}
		}
		if !equal && s > ps {
			rank++
		}
	}
	return rank
}

// ImpactProbability estimates the probability that the focal record of res
// is shortlisted for a uniformly random preference vector: the measure of
// the result regions relative to the whole preference space (§1's market
// impact measure). It samples uniformly from the weight simplex.
//
// Contract: samples must be positive — it is the Monte-Carlo sample count.
// The estimate is an unbiased binomial proportion, so its standard error
// is sqrt(p(1-p)/samples) <= 0.5/sqrt(samples); with 100000 samples the
// estimate is within ±0.005 of the true measure with ~99.8% confidence
// (three standard errors). For 2-dimensional preference spaces (d=3 data)
// the exact alternative is WithVolumes: the result's TotalVolume divided
// by the simplex measure 1/(d-1)! equals this probability, and the two
// agree within the bound above (pinned by a cross-check test). A
// non-positive samples (or a nil res) yields 0, never NaN; callers wanting
// a default should pass their own (the CLIs use 10000–100000).
func (db *DB) ImpactProbability(res *Result, samples int, seed int64) float64 {
	return db.ImpactProbabilityPDF(res, nil, samples, seed)
}

// ImpactProbabilityPDF generalizes ImpactProbability to a known preference
// density: pdf receives original-space weights (length d, summing to 1) and
// returns a non-negative (not necessarily normalized) density. A nil pdf
// means uniform. It shares ImpactProbability's contract: samples <= 0 (or
// a nil res) returns 0.
func (db *DB) ImpactProbabilityPDF(res *Result, pdf func(w []float64) float64, samples int, seed int64) float64 {
	if res == nil || samples <= 0 {
		return 0
	}
	rng := rand.New(rand.NewSource(seed))
	d := db.Dim()
	var hitMass, totalMass float64
	raw := make([]float64, d)
	for s := 0; s < samples; s++ {
		var sum float64
		for i := range raw {
			raw[i] = rng.ExpFloat64() + 1e-12
			sum += raw[i]
		}
		w := make(geom.Vector, d)
		for i := range w {
			w[i] = raw[i] / sum
		}
		mass := 1.0
		if pdf != nil {
			mass = pdf(w)
			if mass < 0 {
				mass = 0
			}
		}
		totalMass += mass
		probe := w[:d-1]
		if res.Space == Original {
			probe = w
		}
		if res.ContainsWeight(probe, 1e-9) {
			hitMass += mass
		}
	}
	if totalMass == 0 {
		return 0
	}
	return hitMass / totalMass
}
