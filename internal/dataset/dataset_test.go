package dataset

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/geom"
)

func TestGenerateShapesAndRange(t *testing.T) {
	for _, dist := range []Distribution{Independent, Correlated, Anticorrelated} {
		ds, err := Generate(dist, 500, 4, 1)
		if err != nil {
			t.Fatalf("%s: %v", dist, err)
		}
		if ds.Len() != 500 || ds.Dim() != 4 {
			t.Fatalf("%s: shape %dx%d", dist, ds.Len(), ds.Dim())
		}
		for i, r := range ds.Records {
			for j, v := range r {
				if v < 0 || v > 1 {
					t.Fatalf("%s: record %d attr %d = %v out of [0,1]", dist, i, j, v)
				}
			}
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(Independent, 0, 3, 1); err == nil {
		t.Fatal("expected error for n=0")
	}
	if _, err := Generate("weird", 10, 3, 1); err == nil {
		t.Fatal("expected error for unknown distribution")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _ := Generate(Independent, 100, 3, 42)
	b, _ := Generate(Independent, 100, 3, 42)
	for i := range a.Records {
		if !a.Records[i].Equal(b.Records[i]) {
			t.Fatal("same seed produced different data")
		}
	}
	c, _ := Generate(Independent, 100, 3, 43)
	same := true
	for i := range a.Records {
		if !a.Records[i].Equal(c.Records[i]) {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

// pearson computes the correlation of two attribute columns.
func pearson(recs []geom.Vector, a, b int) float64 {
	n := float64(len(recs))
	var ma, mb float64
	for _, r := range recs {
		ma += r[a]
		mb += r[b]
	}
	ma /= n
	mb /= n
	var cov, va, vb float64
	for _, r := range recs {
		cov += (r[a] - ma) * (r[b] - mb)
		va += (r[a] - ma) * (r[a] - ma)
		vb += (r[b] - mb) * (r[b] - mb)
	}
	return cov / math.Sqrt(va*vb)
}

func TestDistributionsHaveExpectedCorrelation(t *testing.T) {
	ind, _ := Generate(Independent, 5000, 3, 7)
	cor, _ := Generate(Correlated, 5000, 3, 7)
	anti, _ := Generate(Anticorrelated, 5000, 3, 7)
	if r := pearson(ind.Records, 0, 1); math.Abs(r) > 0.1 {
		t.Fatalf("IND correlation %v, want ~0", r)
	}
	if r := pearson(cor.Records, 0, 1); r < 0.5 {
		t.Fatalf("COR correlation %v, want strongly positive", r)
	}
	if r := pearson(anti.Records, 0, 1); r > -0.2 {
		t.Fatalf("ANTI correlation %v, want negative", r)
	}
}

func TestHotelHouseNBAShapes(t *testing.T) {
	h := Hotel(1000, 1)
	if h.Dim() != 4 || h.Len() != 1000 || len(h.Attributes) != 4 {
		t.Fatalf("HOTEL shape wrong: %dx%d", h.Len(), h.Dim())
	}
	ho := House(1000, 1)
	if ho.Dim() != 6 || len(ho.Attributes) != 6 {
		t.Fatalf("HOUSE shape wrong: %dx%d", ho.Len(), ho.Dim())
	}
	nba := NBA(500, 1, 1)
	if nba.Dim() != 8 || len(nba.Attributes) != 8 {
		t.Fatalf("NBA shape wrong: %dx%d", nba.Len(), nba.Dim())
	}
	if nba.Labels[0] != "star-center" {
		t.Fatalf("focal player label %q", nba.Labels[0])
	}
	for _, ds := range []*Dataset{h, ho, nba} {
		for i, r := range ds.Records {
			for j, v := range r {
				if v < 0 || v > 1 {
					t.Fatalf("%s record %d attr %d = %v out of range", ds.Name, i, j, v)
				}
			}
		}
	}
}

func TestNBASeasonsDifferForFocalPlayer(t *testing.T) {
	s1 := NBA(100, 1, 5)
	s2 := NBA(100, 2, 5)
	// points (index 7) strong in season 1, rebounds (index 1) strong in 2.
	if !(s1.Records[0][7] > s2.Records[0][7]) {
		t.Fatal("focal player should score more in season 1")
	}
	if !(s2.Records[0][1] > s1.Records[0][1]) {
		t.Fatal("focal player should rebound more in season 2")
	}
}

func TestRestaurantsMatchesPaperFigure1(t *testing.T) {
	ds := Restaurants()
	if ds.Len() != 5 || ds.Dim() != 3 {
		t.Fatalf("restaurants shape %dx%d", ds.Len(), ds.Dim())
	}
	kyma := ds.Records[4]
	if !kyma.Equal(geom.Vector{0.5, 0.5, 0.7}) {
		t.Fatalf("Kyma = %v", kyma)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	orig := NBA(50, 1, 9)
	var buf bytes.Buffer
	if err := orig.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf, "roundtrip")
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != orig.Len() || got.Dim() != orig.Dim() {
		t.Fatalf("round-trip shape %dx%d, want %dx%d", got.Len(), got.Dim(), orig.Len(), orig.Dim())
	}
	for i := range got.Records {
		if !got.Records[i].Equal(orig.Records[i]) {
			t.Fatalf("record %d: %v != %v", i, got.Records[i], orig.Records[i])
		}
		if got.Labels[i] != orig.Labels[i] {
			t.Fatalf("label %d: %q != %q", i, got.Labels[i], orig.Labels[i])
		}
	}
	for j := range got.Attributes {
		if got.Attributes[j] != orig.Attributes[j] {
			t.Fatal("attributes lost in round trip")
		}
	}
}

func TestCSVWithoutLabels(t *testing.T) {
	orig, _ := Generate(Independent, 20, 3, 2)
	var buf bytes.Buffer
	if err := orig.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf, "x")
	if err != nil {
		t.Fatal(err)
	}
	if got.Labels != nil {
		t.Fatal("labels appeared from nowhere")
	}
	if got.Len() != 20 {
		t.Fatalf("len %d", got.Len())
	}
}

func TestCSVMalformed(t *testing.T) {
	if _, err := ReadCSV(bytes.NewBufferString("a,b\n1,notanumber\n"), "x"); err == nil {
		t.Fatal("expected parse error")
	}
	if _, err := ReadCSV(bytes.NewBufferString(""), "x"); err == nil {
		t.Fatal("expected header error on empty input")
	}
}

// Skyline sizes must order ANTI > IND > COR — the structural property the
// paper's Figure 14 rests on.
func TestSkylineSizeOrdering(t *testing.T) {
	sizes := map[Distribution]int{}
	for _, dist := range []Distribution{Independent, Correlated, Anticorrelated} {
		ds, err := Generate(dist, 3000, 4, 19)
		if err != nil {
			t.Fatal(err)
		}
		count := 0
		for i, r := range ds.Records {
			dominated := false
			for j, s := range ds.Records {
				if i != j && geom.Dominates(s, r) {
					dominated = true
					break
				}
			}
			if !dominated {
				count++
			}
		}
		sizes[dist] = count
	}
	if !(sizes[Anticorrelated] > sizes[Independent] && sizes[Independent] > sizes[Correlated]) {
		t.Fatalf("skyline sizes ANTI=%d IND=%d COR=%d violate the expected ordering",
			sizes[Anticorrelated], sizes[Independent], sizes[Correlated])
	}
}

func TestNBAFocalIsEliteButNotDominant(t *testing.T) {
	for season := 1; season <= 2; season++ {
		ds := NBA(800, season, 33)
		focal := ds.Records[0]
		leadIdx := 7 // points
		if season == 2 {
			leadIdx = 1 // rebounds
		}
		// The focal player must lead the league in his signature stat.
		for i := 1; i < ds.Len(); i++ {
			if ds.Records[i][leadIdx] >= focal[leadIdx] {
				t.Fatalf("season %d: player %d matches the focal's signature stat", season, i)
			}
		}
		// But must not dominate the league outright: someone beats him in
		// assists (index 2), which he is weak in.
		beaten := false
		for i := 1; i < ds.Len(); i++ {
			if ds.Records[i][2] > focal[2] {
				beaten = true
				break
			}
		}
		if !beaten {
			t.Fatalf("season %d: nobody out-assists the focal center", season)
		}
	}
}
