package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV writes the dataset with a header row. When the dataset has
// labels, a leading "label" column is emitted.
func (d *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	hasLabels := len(d.Labels) == len(d.Records) && len(d.Labels) > 0
	header := make([]string, 0, len(d.Attributes)+1)
	if hasLabels {
		header = append(header, "label")
	}
	header = append(header, d.Attributes...)
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("dataset: write header: %w", err)
	}
	row := make([]string, 0, len(header))
	for i, r := range d.Records {
		row = row[:0]
		if hasLabels {
			row = append(row, d.Labels[i])
		}
		for _, v := range r {
			row = append(row, strconv.FormatFloat(v, 'g', -1, 64))
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("dataset: write row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a dataset written by WriteCSV (or any CSV with a header
// row; a first column named "label" is treated as record labels).
func ReadCSV(r io.Reader, name string) (*Dataset, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: read header: %w", err)
	}
	hasLabels := len(header) > 0 && header[0] == "label"
	start := 0
	if hasLabels {
		start = 1
	}
	d := &Dataset{Name: name, Attributes: append([]string(nil), header[start:]...)}
	for line := 2; ; line++ {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: line %d: %w", line, err)
		}
		if len(row) != len(header) {
			return nil, fmt.Errorf("dataset: line %d has %d fields, want %d", line, len(row), len(header))
		}
		vals := make([]float64, 0, len(row)-start)
		for _, f := range row[start:] {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: line %d: %w", line, err)
			}
			vals = append(vals, v)
		}
		if hasLabels {
			d.Labels = append(d.Labels, row[0])
		}
		d.Records = append(d.Records, vals)
	}
	return d, nil
}
