// Package dataset provides the workloads of the paper's evaluation (§7.1):
// the standard synthetic skyline benchmarks — Independent (IND), Correlated
// (COR), and Anti-correlated (ANTI) — plus simulated stand-ins for the real
// HOTEL, HOUSE, and NBA datasets, and CSV persistence.
//
// All attribute values are in [0,1] with "larger is better" semantics.
// Every generator takes an explicit seed so experiments are reproducible.
package dataset

import (
	"fmt"
	"math/rand"

	"repro/internal/geom"
)

// Distribution names a synthetic data distribution.
type Distribution string

const (
	// Independent draws every attribute i.i.d. uniform.
	Independent Distribution = "IND"
	// Correlated draws attributes positively correlated through a latent
	// quality value: records good in one dimension tend to be good in all.
	Correlated Distribution = "COR"
	// Anticorrelated draws attributes negatively correlated: records good
	// in one dimension tend to be poor in others.
	Anticorrelated Distribution = "ANTI"
)

// Dataset is a named collection of records with attribute labels.
type Dataset struct {
	Name       string
	Attributes []string
	Records    []geom.Vector
	// Labels optionally names individual records (used by the NBA
	// simulation for the case study); nil when records are anonymous.
	Labels []string
}

// Dim returns the dimensionality.
func (d *Dataset) Dim() int {
	if len(d.Records) == 0 {
		return 0
	}
	return len(d.Records[0])
}

// Len returns the cardinality.
func (d *Dataset) Len() int { return len(d.Records) }

// Float64s returns the records as plain [][]float64 rows (sharing the
// backing arrays) — the shape kspr.Open consumes.
func (d *Dataset) Float64s() [][]float64 {
	out := make([][]float64, len(d.Records))
	for i, r := range d.Records {
		out[i] = r
	}
	return out
}

// Generate produces n d-dimensional records of the given distribution.
func Generate(dist Distribution, n, d int, seed int64) (*Dataset, error) {
	if n <= 0 || d <= 0 {
		return nil, fmt.Errorf("dataset: invalid shape n=%d d=%d", n, d)
	}
	rng := rand.New(rand.NewSource(seed))
	recs := make([]geom.Vector, n)
	for i := range recs {
		switch dist {
		case Independent:
			recs[i] = genIndependent(rng, d)
		case Correlated:
			recs[i] = genCorrelated(rng, d)
		case Anticorrelated:
			recs[i] = genAnticorrelated(rng, d)
		default:
			return nil, fmt.Errorf("dataset: unknown distribution %q", dist)
		}
	}
	attrs := make([]string, d)
	for j := range attrs {
		attrs[j] = fmt.Sprintf("a%d", j+1)
	}
	return &Dataset{Name: string(dist), Attributes: attrs, Records: recs}, nil
}

func genIndependent(rng *rand.Rand, d int) geom.Vector {
	v := make(geom.Vector, d)
	for j := range v {
		v[j] = rng.Float64()
	}
	return v
}

// genCorrelated follows the classic Börzsönyi construction: pick a latent
// level on the diagonal (peaked around 0.5) and scatter tightly around it.
func genCorrelated(rng *rand.Rand, d int) geom.Vector {
	level := clamp01(0.5 + 0.17*rng.NormFloat64())
	v := make(geom.Vector, d)
	for j := range v {
		v[j] = clamp01(level + 0.05*rng.NormFloat64())
	}
	return v
}

// genAnticorrelated places records close to the anti-diagonal plane
// Σ x_j ≈ d·level with large spread across dimensions: gains in one
// dimension are paid for in the others.
func genAnticorrelated(rng *rand.Rand, d int) geom.Vector {
	level := clamp01in(0.5+0.04*rng.NormFloat64(), 0.25, 0.75)
	v := make(geom.Vector, d)
	u := make([]float64, d)
	var mean float64
	for j := range u {
		u[j] = rng.Float64()
		mean += u[j]
	}
	mean /= float64(d)
	for j := range v {
		v[j] = clamp01(level + 0.6*(u[j]-mean))
	}
	return v
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

func clamp01in(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Hotel simulates the HOTEL dataset (4-d: stars, price value, rooms,
// facilities; 418,843 records at full scale — hotels-base.com in the
// paper). A latent quality factor couples stars and facilities, while the
// price-value attribute (higher = cheaper for what you get) mildly opposes
// them, giving a realistic mixed-correlation profile.
func Hotel(n int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	recs := make([]geom.Vector, n)
	for i := range recs {
		q := rng.Float64() // latent quality
		stars := clamp01(snap(q+0.1*rng.NormFloat64(), 5))
		price := clamp01(1 - q + 0.25*rng.NormFloat64()) // good value anti-correlates with quality
		rooms := clamp01(0.2 + 0.6*rng.Float64() + 0.2*q)
		fac := clamp01(q + 0.15*rng.NormFloat64())
		recs[i] = geom.Vector{stars, price, rooms, fac}
	}
	return &Dataset{
		Name:       "HOTEL",
		Attributes: []string{"stars", "price_value", "rooms", "facilities"},
		Records:    recs,
	}
}

// snap discretizes x into levels (e.g. star ratings).
func snap(x float64, levels int) float64 {
	if x < 0 {
		x = 0
	}
	if x > 1 {
		x = 1
	}
	step := 1.0 / float64(levels)
	k := int(x / step)
	if k >= levels {
		k = levels - 1
	}
	return float64(k+1) / float64(levels)
}

// House simulates the HOUSE dataset (6-d spending attributes per American
// family; 315,265 records at full scale — ipums.org in the paper). Values
// are "thrift" scores (higher = lower spending in that category). A budget
// constraint makes categories mildly anti-correlated, as households trade
// off spending across categories.
func House(n int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	recs := make([]geom.Vector, n)
	for i := range recs {
		budget := clamp01in(0.5+0.12*rng.NormFloat64(), 0.1, 0.9)
		v := make(geom.Vector, 6)
		u := make([]float64, 6)
		var mean float64
		for j := range u {
			u[j] = rng.Float64()
			mean += u[j]
		}
		mean /= 6
		for j := range v {
			v[j] = clamp01(budget + 0.3*(u[j]-mean) + 0.05*rng.NormFloat64())
		}
		recs[i] = v
	}
	return &Dataset{
		Name: "HOUSE",
		Attributes: []string{
			"gas", "electricity", "water", "heating", "insurance", "property_tax",
		},
		Records: recs,
	}
}

// NBA simulates a season of the NBA dataset (8 per-player statistics;
// 21,960 records at full scale across seasons —
// basketball-reference.com in the paper). Player stats share a latent
// skill-and-minutes factor, producing the skewed, positively correlated
// profile of real box-score data: many role players, few stars.
//
// The record at index 0 is a crafted star center playing the role of the
// case study's focal player (§7.2): in season 1 his scoring is elite and
// rebounding merely good; in season 2 the profile flips. All other records
// are procedurally generated.
func NBA(n int, season int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed + int64(season)*1000003))
	recs := make([]geom.Vector, n)
	labels := make([]string, n)
	// Attribute order follows the paper's Table 1.
	attrs := []string{
		"games", "rebounds", "assists", "steals", "blocks",
		"turnovers_avoided", "fouls_avoided", "points",
	}
	const (
		idxGames = 0
		idxReb   = 1
		idxAst   = 2
		idxPts   = 7
	)
	for i := 1; i < n; i++ {
		skill := rng.Float64()
		minutes := clamp01(0.3 + 0.7*skill + 0.1*rng.NormFloat64())
		v := make(geom.Vector, 8)
		for j := range v {
			base := skill * minutes
			v[j] = clamp01(0.75*base + 0.25*rng.Float64())
		}
		// Specialize, as real rosters do: guards assist but rebound little;
		// bigs rebound and block but score and assist less. Nobody is elite
		// at both scoring and rebounding — that is what makes the crafted
		// focal center stand out, as in the paper's case study.
		if rng.Float64() < 0.45 { // guard-ish
			v[idxAst] = clamp01(v[idxAst] + 0.35*skill)
			v[idxReb] *= 0.5
			v[4] *= 0.5 // blocks
		} else { // big-ish
			v[idxReb] = clamp01(v[idxReb] + 0.3*skill)
			v[4] = clamp01(v[4] + 0.25*skill)
			v[idxAst] *= 0.5
			v[idxPts] *= 0.8
		}
		// League-best caps: the crafted focal center leads the league in
		// points (season 1) or rebounds (season 2); everyone else tops out
		// just below, the way a single player leads a real statistic.
		const leagueBest = 0.94
		if v[idxPts] > leagueBest {
			v[idxPts] = leagueBest - 0.02*rng.Float64()
		}
		if v[idxReb] > leagueBest {
			v[idxReb] = leagueBest - 0.02*rng.Float64()
		}
		recs[i] = v
		labels[i] = fmt.Sprintf("player-%d", i)
	}
	// The focal star center. Season 1: points-dominant. Season 2:
	// rebounds-dominant. Other stats are league-average-ish.
	focal := geom.Vector{0.95, 0.68, 0.35, 0.45, 0.85, 0.40, 0.45, 0.97}
	if season == 2 {
		focal = geom.Vector{0.95, 0.97, 0.30, 0.45, 0.88, 0.45, 0.40, 0.75}
	}
	recs[0] = focal
	labels[0] = "star-center"
	return &Dataset{
		Name:       fmt.Sprintf("NBA-season%d", season),
		Attributes: attrs,
		Records:    recs,
		Labels:     labels,
	}
}

// Restaurants returns the toy dataset of the paper's Figure 1 (values on a
// 1-10 scale, normalized to [0,1]): five restaurants with value, service,
// and ambiance ratings; "Kyma" (index 4) is the running focal record.
func Restaurants() *Dataset {
	return &Dataset{
		Name:       "restaurants",
		Attributes: []string{"value", "service", "ambiance"},
		Records: []geom.Vector{
			{0.3, 0.8, 0.8}, // r1 L'Entrecôte
			{0.9, 0.4, 0.4}, // r2 Beirut Grill
			{0.8, 0.3, 0.4}, // r3 El Coyote
			{0.4, 0.3, 0.6}, // r4 La Braceria
			{0.5, 0.5, 0.7}, // p  Kyma
		},
		Labels: []string{"L'Entrecôte", "Beirut Grill", "El Coyote", "La Braceria", "Kyma"},
	}
}
