package rtree

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func benchTree(b *testing.B, n, d int) *Tree {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	tr, err := Build(randRecords(rng, n, d))
	if err != nil {
		b.Fatal(err)
	}
	return tr
}

func BenchmarkBuild_50k_d4(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	recs := randRecords(rng, 50000, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(recs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSkyline_50k_d4(b *testing.B) {
	tr := benchTree(b, 50000, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Skyline(nil)
	}
}

func BenchmarkKSkyband30_20k_d4(b *testing.B) {
	tr := benchTree(b, 20000, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.KSkyband(30, nil)
	}
}

func BenchmarkTopK10_50k_d4(b *testing.B) {
	tr := benchTree(b, 50000, 4)
	w := geom.Vector{0.4, 0.3, 0.2, 0.1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.TopK(w, 10, nil)
	}
}

func BenchmarkDominators_50k_d4(b *testing.B) {
	tr := benchTree(b, 50000, 4)
	p := geom.Vector{0.8, 0.8, 0.8, 0.8}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Dominators(p, nil)
	}
}
