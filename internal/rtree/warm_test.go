package rtree

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/geom"
)

func randWarmRecords(rng *rand.Rand, n, d int, ties bool) []geom.Vector {
	recs := make([]geom.Vector, n)
	for i := range recs {
		v := make(geom.Vector, d)
		for j := range v {
			if ties {
				v[j] = float64(rng.Intn(5)) / 4
			} else {
				v[j] = rng.Float64()
			}
		}
		recs[i] = v
	}
	return recs
}

// sameStructure compares two trees node by node: page numbers, leaf
// flags, MBRs, counts, and record ids must all match.
func sameStructure(t *testing.T, a, b *Node) {
	t.Helper()
	if a.Leaf != b.Leaf || a.Page != b.Page || len(a.Entries) != len(b.Entries) {
		t.Fatalf("node shape mismatch: page %d/%d leaf %v/%v entries %d/%d",
			a.Page, b.Page, a.Leaf, b.Leaf, len(a.Entries), len(b.Entries))
	}
	for i := range a.Entries {
		ea, eb := a.Entries[i], b.Entries[i]
		if !reflect.DeepEqual(ea.Low, eb.Low) || !reflect.DeepEqual(ea.High, eb.High) ||
			ea.Count != eb.Count || ea.RecordID != eb.RecordID {
			t.Fatalf("entry mismatch at page %d slot %d", a.Page, i)
		}
		if (ea.Child == nil) != (eb.Child == nil) {
			t.Fatalf("child mismatch at page %d slot %d", a.Page, i)
		}
		if ea.Child != nil {
			sameStructure(t, ea.Child, eb.Child)
		}
	}
}

// TestBuildFromOrderReproducesBuild pins the warm-start contract: the
// tree reassembled from LeafOrder is structurally identical to the
// cold-built tree, across sizes that exercise single-leaf, two-level and
// three-level shapes.
func TestBuildFromOrderReproducesBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, tc := range []struct{ n, d, fanout int }{
		{1, 2, 4}, {3, 3, 4}, {17, 2, 4}, {64, 3, 4}, {200, 4, 8}, {500, 3, 8},
	} {
		recs := randWarmRecords(rng, tc.n, tc.d, false)
		cold, err := Build(recs, WithFanout(tc.fanout))
		if err != nil {
			t.Fatal(err)
		}
		order, ends := cold.LeafOrder()
		warm, err := BuildFromOrder(recs, order, ends, WithFanout(tc.fanout))
		if err != nil {
			t.Fatalf("n=%d: BuildFromOrder: %v", tc.n, err)
		}
		if warm.Pages() != cold.Pages() || warm.Height() != cold.Height() {
			t.Fatalf("n=%d: pages/height diverged", tc.n)
		}
		sameStructure(t, cold.Root, warm.Root)

		// Queries agree too (belt and braces on top of the structural
		// check).
		for k := 1; k <= 4; k++ {
			if !reflect.DeepEqual(cold.KSkyband(k, nil), warm.KSkyband(k, nil)) {
				t.Fatalf("n=%d k=%d: skyband diverged", tc.n, k)
			}
		}
	}
}

// TestBuildFromOrderRejectsBadLayouts ensures corrupted leaf layouts are
// refused rather than silently assembled into a wrong tree.
func TestBuildFromOrderRejectsBadLayouts(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	recs := randWarmRecords(rng, 20, 2, false)
	cold, err := Build(recs, WithFanout(4))
	if err != nil {
		t.Fatal(err)
	}
	order, ends := cold.LeafOrder()
	bad := func(name string, order, ends []int32) {
		if _, err := BuildFromOrder(recs, order, ends, WithFanout(4)); err == nil {
			t.Fatalf("%s: accepted", name)
		}
	}
	short := append([]int32(nil), order[:len(order)-1]...)
	bad("short order", short, ends)
	dup := append([]int32(nil), order...)
	dup[0] = dup[1]
	bad("duplicate id", dup, ends)
	oob := append([]int32(nil), order...)
	oob[0] = int32(len(recs))
	bad("out-of-range id", oob, ends)
	bad("no groups", order, nil)
	truncated := append([]int32(nil), ends[:len(ends)-1]...)
	bad("groups not covering", truncated, ends[:0])
	wide := []int32{int32(len(recs))} // one group of 20 > fanout 4
	bad("group over fanout", order, wide)
	nonMono := append([]int32(nil), ends...)
	if len(nonMono) >= 2 {
		nonMono[0], nonMono[1] = nonMono[1], nonMono[0]
		bad("non-monotonic groups", order, nonMono)
	}
}

// TestBandTableMatchesTraversal pins the table-serving fast paths to the
// live traversal on random datasets (with ties): KSkyband for every
// k <= K and KSkybandExcluding for every record as focal.
func TestBandTableMatchesTraversal(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	const bandK = 6
	for trial := 0; trial < 20; trial++ {
		recs := randWarmRecords(rng, 40+rng.Intn(80), 1+rng.Intn(4), trial%2 == 1)
		tree, err := Build(recs, WithFanout(8))
		if err != nil {
			t.Fatal(err)
		}
		ids, cnts := tree.KSkybandCounts(bandK, nil)

		// Counts are exact: verify against brute force.
		for i, id := range ids {
			want := 0
			for j, r := range recs {
				if j != id && geom.Dominates(r, recs[id]) {
					want++
				}
			}
			if int(cnts[i]) != want {
				t.Fatalf("trial %d: count[%d]=%d, want %d", trial, id, cnts[i], want)
			}
		}

		table := &BandTable{K: bandK}
		for i, id := range ids {
			table.IDs = append(table.IDs, int32(id))
			table.Cnt = append(table.Cnt, cnts[i])
		}
		warm := *tree
		warm.Band = table

		for k := 1; k <= bandK; k++ {
			if !reflect.DeepEqual(tree.KSkyband(k, nil), warm.KSkyband(k, nil)) {
				t.Fatalf("trial %d k=%d: table-served skyband diverged", trial, k)
			}
		}
		for k := 1; k < bandK; k++ {
			for f := 0; f < len(recs); f += 7 {
				want := tree.KSkyband(k, func(id int) bool { return id == f })
				got := warm.KSkybandExcluding(k, f)
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("trial %d k=%d focal=%d: excluding skyband diverged: %v vs %v", trial, k, f, want, got)
				}
			}
		}
		if !reflect.DeepEqual(tree.KSkyband(2, nil), warm.KSkybandExcluding(2, -1)) {
			t.Fatalf("trial %d: negative focal should mean no exclusion", trial)
		}
	}
}
