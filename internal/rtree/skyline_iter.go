package rtree

import (
	"container/heap"

	"repro/internal/kernel"
)

// SkylineIterator streams skyline records one at a time in decreasing
// max-corner coordinate-sum order — the incremental branch-and-bound
// skyline (BBS) of Papadias et al. that the paper's Algorithm 2 invokes as
// Incremental-BBS. Each Next() performs only the work needed to surface the
// next skyline member, so callers that stop early (progressive consumers)
// never pay for the full skyline.
//
// The exclusion set is fixed for the iterator's lifetime. P-CTA's batch
// loop changes its exclusion set (the non-pivot union) between rounds,
// which is why core re-runs Skyline per batch instead of keeping one
// iterator; the iterator exists for single-pass consumers (and documents
// the paper's primitive faithfully).
type SkylineIterator struct {
	t       *Tree
	exclude ExcludeFunc
	h       *entryHeap
	sky     *kernel.Band
	skyIDs  []int
}

// NewSkylineIterator starts an incremental skyline scan.
func (t *Tree) NewSkylineIterator(exclude ExcludeFunc) *SkylineIterator {
	it := &SkylineIterator{t: t, exclude: exclude, h: &entryHeap{}, sky: kernel.NewBand(t.Dim)}
	t.visit(t.Root)
	for _, e := range t.Root.Entries {
		heap.Push(it.h, heapItem{e, e.High.Sum()})
	}
	return it
}

// Next returns the next skyline record id, or -1 when the skyline is
// exhausted.
func (it *SkylineIterator) Next() int {
	for it.h.Len() > 0 {
		item := heap.Pop(it.h).(heapItem)
		e := item.entry
		if it.sky.AnyDominates(e.High) {
			continue
		}
		if e.Child != nil {
			it.t.visit(e.Child)
			for _, ce := range e.Child.Entries {
				if !it.sky.AnyDominates(ce.High) {
					heap.Push(it.h, heapItem{ce, ce.High.Sum()})
				}
			}
			continue
		}
		if it.exclude != nil && it.exclude(e.RecordID) {
			continue
		}
		r := it.t.Records[e.RecordID]
		if it.sky.AnyDominates(r) {
			continue
		}
		it.sky.Push(r)
		it.skyIDs = append(it.skyIDs, e.RecordID)
		return e.RecordID
	}
	return -1
}

// Found returns the ids surfaced so far (in emission order).
func (it *SkylineIterator) Found() []int {
	return append([]int(nil), it.skyIDs...)
}
