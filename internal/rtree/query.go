package rtree

import (
	"container/heap"
	"sort"

	"repro/internal/geom"
)

// ExcludeFunc filters records out of a query; nil means exclude nothing.
type ExcludeFunc func(id int) bool

// entryHeap orders entries by descending key (max-heap on key).
type heapItem struct {
	entry Entry
	key   float64
}

type entryHeap []heapItem

func (h entryHeap) Len() int            { return len(h) }
func (h entryHeap) Less(i, j int) bool  { return h[i].key > h[j].key }
func (h entryHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *entryHeap) Push(x interface{}) { *h = append(*h, x.(heapItem)) }
func (h *entryHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Skyline returns the IDs of the records not dominated by any other record,
// considering only records for which exclude(id) is false. It is the
// branch-and-bound skyline (BBS) of Papadias et al. adapted to "larger is
// better" semantics: entries are processed in decreasing order of the
// coordinate sum of their max-corner, which guarantees every potential
// dominator of a record is examined before the record itself.
func (t *Tree) Skyline(exclude ExcludeFunc) []int {
	var sky []int
	skyVecs := make([]geom.Vector, 0, 16)
	h := &entryHeap{}
	t.visit(t.Root)
	for _, e := range t.Root.Entries {
		heap.Push(h, heapItem{e, e.High.Sum()})
	}
	for h.Len() > 0 {
		it := heap.Pop(h).(heapItem)
		e := it.entry
		if dominatedByAny(skyVecs, e.High) {
			continue
		}
		if e.Child != nil {
			t.visit(e.Child)
			for _, ce := range e.Child.Entries {
				if !dominatedByAny(skyVecs, ce.High) {
					heap.Push(h, heapItem{ce, ce.High.Sum()})
				}
			}
			continue
		}
		if exclude != nil && exclude(e.RecordID) {
			continue
		}
		r := t.Records[e.RecordID]
		if !dominatedByAny(skyVecs, r) {
			sky = append(sky, e.RecordID)
			skyVecs = append(skyVecs, r)
		}
	}
	sort.Ints(sky)
	return sky
}

func dominatedByAny(vs []geom.Vector, x geom.Vector) bool {
	for _, v := range vs {
		if geom.Dominates(v, x) {
			return true
		}
	}
	return false
}

// KSkyband returns the IDs of records dominated by fewer than k others
// (again honouring exclude). It generalizes Skyline (k=1). Counting only
// skyband dominators is exact by transitivity: a pruned dominator itself
// has >= k skyband dominators, which also dominate the candidate.
func (t *Tree) KSkyband(k int, exclude ExcludeFunc) []int {
	if k <= 0 {
		return nil
	}
	var band []int
	var bandVecs []geom.Vector
	h := &entryHeap{}
	t.visit(t.Root)
	for _, e := range t.Root.Entries {
		heap.Push(h, heapItem{e, e.High.Sum()})
	}
	for h.Len() > 0 {
		it := heap.Pop(h).(heapItem)
		e := it.entry
		if countDominators(bandVecs, e.High) >= k {
			continue
		}
		if e.Child != nil {
			t.visit(e.Child)
			for _, ce := range e.Child.Entries {
				if countDominators(bandVecs, ce.High) < k {
					heap.Push(h, heapItem{ce, ce.High.Sum()})
				}
			}
			continue
		}
		if exclude != nil && exclude(e.RecordID) {
			continue
		}
		r := t.Records[e.RecordID]
		if countDominators(bandVecs, r) < k {
			band = append(band, e.RecordID)
			bandVecs = append(bandVecs, r)
		}
	}
	sort.Ints(band)
	return band
}

func countDominators(vs []geom.Vector, x geom.Vector) int {
	n := 0
	for _, v := range vs {
		if geom.Dominates(v, x) {
			n++
		}
	}
	return n
}

// TopK returns the k record IDs with the highest scores under weight vector
// w (original d-dimensional weights), best first. Branch-and-bound on the
// max-corner score.
func (t *Tree) TopK(w geom.Vector, k int, exclude ExcludeFunc) []int {
	if k <= 0 {
		return nil
	}
	type scored struct {
		id    int
		score float64
	}
	var result []scored
	h := &entryHeap{}
	t.visit(t.Root)
	for _, e := range t.Root.Entries {
		heap.Push(h, heapItem{e, e.High.Dot(w)})
	}
	for h.Len() > 0 {
		it := heap.Pop(h).(heapItem)
		if len(result) >= k && it.key <= result[len(result)-1].score {
			break // no remaining entry can beat the current k-th score
		}
		e := it.entry
		if e.Child != nil {
			t.visit(e.Child)
			for _, ce := range e.Child.Entries {
				heap.Push(h, heapItem{ce, ce.High.Dot(w)})
			}
			continue
		}
		if exclude != nil && exclude(e.RecordID) {
			continue
		}
		s := t.Records[e.RecordID].Dot(w)
		result = append(result, scored{e.RecordID, s})
		sort.Slice(result, func(a, b int) bool { return result[a].score > result[b].score })
		if len(result) > k {
			result = result[:k]
		}
	}
	ids := make([]int, len(result))
	for i, s := range result {
		ids[i] = s.id
	}
	return ids
}

// Dominators returns the IDs of records that dominate p (honouring
// exclude). A subtree is pruned when its max-corner fails to cover p,
// since then no record inside can dominate p.
func (t *Tree) Dominators(p geom.Vector, exclude ExcludeFunc) []int {
	var out []int
	var walk func(n *Node)
	walk = func(n *Node) {
		t.visit(n)
		for _, e := range n.Entries {
			if !coversOrEqual(e.High, p) {
				continue
			}
			if e.Child != nil {
				walk(e.Child)
				continue
			}
			if exclude != nil && exclude(e.RecordID) {
				continue
			}
			if geom.Dominates(t.Records[e.RecordID], p) {
				out = append(out, e.RecordID)
			}
		}
	}
	walk(t.Root)
	sort.Ints(out)
	return out
}

// DominatedBy returns the IDs of records dominated by p.
func (t *Tree) DominatedBy(p geom.Vector, exclude ExcludeFunc) []int {
	var out []int
	var walk func(n *Node)
	walk = func(n *Node) {
		t.visit(n)
		for _, e := range n.Entries {
			if !coversOrEqual(p, e.Low) {
				continue
			}
			if e.Child != nil {
				walk(e.Child)
				continue
			}
			if exclude != nil && exclude(e.RecordID) {
				continue
			}
			if geom.Dominates(p, t.Records[e.RecordID]) {
				out = append(out, e.RecordID)
			}
		}
	}
	walk(t.Root)
	sort.Ints(out)
	return out
}

// EqualTo returns the IDs of records exactly equal to p (score ties of the
// focal record; the paper ignores ties, so kSPR processing excludes them).
func (t *Tree) EqualTo(p geom.Vector, exclude ExcludeFunc) []int {
	var out []int
	var walk func(n *Node)
	walk = func(n *Node) {
		t.visit(n)
		for _, e := range n.Entries {
			if !coversOrEqual(e.High, p) || !coversOrEqual(p, e.Low) {
				continue
			}
			if e.Child != nil {
				walk(e.Child)
				continue
			}
			if exclude != nil && exclude(e.RecordID) {
				continue
			}
			if t.Records[e.RecordID].Equal(p) {
				out = append(out, e.RecordID)
			}
		}
	}
	walk(t.Root)
	sort.Ints(out)
	return out
}

// coversOrEqual reports x >= y in every dimension.
func coversOrEqual(x, y geom.Vector) bool {
	for i, v := range x {
		if v < y[i] {
			return false
		}
	}
	return true
}

// AnyNotDominated reports whether some record (with exclude(id) false) is
// dominated by NONE of the pivot vectors. This powers the early-reporting
// test of P-CTA (Lemma 5): if no unprocessed record escapes the pivots'
// dominance regions, the cell can be reported immediately. A subtree is
// pruned when its max-corner is dominated by a pivot, since every record
// inside is then dominated too.
func (t *Tree) AnyNotDominated(pivots []geom.Vector, exclude ExcludeFunc) bool {
	var walk func(n *Node) bool
	walk = func(n *Node) bool {
		t.visit(n)
		for _, e := range n.Entries {
			if dominatedByAny(pivots, e.High) {
				continue
			}
			if e.Child != nil {
				if walk(e.Child) {
					return true
				}
				continue
			}
			if exclude != nil && exclude(e.RecordID) {
				continue
			}
			if !dominatedByAny(pivots, t.Records[e.RecordID]) {
				return true
			}
		}
		return false
	}
	return walk(t.Root)
}
