package rtree

import (
	"container/heap"
	"sort"

	"repro/internal/geom"
	"repro/internal/kernel"
)

// ExcludeFunc filters records out of a query; nil means exclude nothing.
type ExcludeFunc func(id int) bool

// entryHeap orders entries by descending key (max-heap on key).
type heapItem struct {
	entry Entry
	key   float64
}

type entryHeap []heapItem

func (h entryHeap) Len() int            { return len(h) }
func (h entryHeap) Less(i, j int) bool  { return h[i].key > h[j].key }
func (h entryHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *entryHeap) Push(x interface{}) { *h = append(*h, x.(heapItem)) }
func (h *entryHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Skyline returns the IDs of the records not dominated by any other record,
// considering only records for which exclude(id) is false. It is the
// branch-and-bound skyline (BBS) of Papadias et al. adapted to "larger is
// better" semantics: entries are processed in decreasing order of the
// coordinate sum of their max-corner, which guarantees every potential
// dominator of a record is examined before the record itself.
func (t *Tree) Skyline(exclude ExcludeFunc) []int {
	var sky []int
	band := kernel.NewBand(t.Dim)
	h := &entryHeap{}
	t.visit(t.Root)
	for _, e := range t.Root.Entries {
		heap.Push(h, heapItem{e, e.High.Sum()})
	}
	for h.Len() > 0 {
		it := heap.Pop(h).(heapItem)
		e := it.entry
		if band.AnyDominates(e.High) {
			continue
		}
		if e.Child != nil {
			t.visit(e.Child)
			for _, ce := range e.Child.Entries {
				if !band.AnyDominates(ce.High) {
					heap.Push(h, heapItem{ce, ce.High.Sum()})
				}
			}
			continue
		}
		if exclude != nil && exclude(e.RecordID) {
			continue
		}
		r := t.Records[e.RecordID]
		if !band.AnyDominates(r) {
			sky = append(sky, e.RecordID)
			band.Push(r)
		}
	}
	sort.Ints(sky)
	return sky
}

// KSkyband returns the IDs of records dominated by fewer than k others
// (again honouring exclude). It generalizes Skyline (k=1). Counting only
// skyband dominators is exact by transitivity: a pruned dominator itself
// has >= k skyband dominators, which also dominate the candidate.
//
// When the tree carries a BandTable deep enough for k and no exclusion
// filter is given, the answer is read straight off the table — the table
// is a previous traversal's output over the identical tree, so the
// served ids match a live traversal exactly.
func (t *Tree) KSkyband(k int, exclude ExcludeFunc) []int {
	if k <= 0 {
		return nil
	}
	if exclude == nil && t.Band != nil && k <= t.Band.K {
		band := make([]int, 0, len(t.Band.IDs))
		for i, id := range t.Band.IDs {
			if int(t.Band.Cnt[i]) < k {
				band = append(band, int(id))
			}
		}
		return band // table ids are already ascending
	}
	band, _ := t.kSkybandScan(k, exclude)
	return band
}

// KSkybandExcluding returns the k-skyband of the dataset with the single
// record focalID removed, the exclusion every kSPR query needs (the
// focal record does not compete with itself). A negative focalID
// excludes nothing. With a BandTable of depth > k the answer is derived
// from the table by the exact discount rule: removing the focal record
// lowers a record's dominator count by one iff the focal dominates it —
// which can pull records with exactly k dominators into the band, all of
// which the table holds because its depth exceeds k.
func (t *Tree) KSkybandExcluding(k, focalID int) []int {
	if focalID < 0 {
		return t.KSkyband(k, nil)
	}
	if k > 0 && t.Band != nil && k < t.Band.K && focalID < len(t.Records) {
		focal := t.Records[focalID]
		band := make([]int, 0, len(t.Band.IDs))
		for i, id := range t.Band.IDs {
			if int(id) == focalID {
				continue
			}
			cnt := int(t.Band.Cnt[i])
			if geom.Dominates(focal, t.Records[id]) {
				cnt--
			}
			if cnt < k {
				band = append(band, int(id))
			}
		}
		return band
	}
	return t.KSkyband(k, func(id int) bool { return id == focalID })
}

// KSkybandCounts runs the k-skyband traversal and returns, besides the
// member ids (ascending), each member's exact dominator count. Counting
// against the band-so-far is exact for admitted members: any dominator
// of a member has strictly fewer dominators itself (its dominators all
// dominate the member too), hence is in the band, and its strictly
// larger coordinate sum means the BBS order admitted it first. This is
// what BandTable persistence is built from.
func (t *Tree) KSkybandCounts(k int, exclude ExcludeFunc) ([]int, []int32) {
	if k <= 0 {
		return nil, nil
	}
	return t.kSkybandScan(k, exclude)
}

// kSkybandScan is the shared BBS k-skyband traversal, returning members
// sorted ascending with their dominator counts.
func (t *Tree) kSkybandScan(k int, exclude ExcludeFunc) ([]int, []int32) {
	var ids []int
	var cnts []int32
	band := kernel.NewBand(t.Dim)
	h := &entryHeap{}
	t.visit(t.Root)
	for _, e := range t.Root.Entries {
		heap.Push(h, heapItem{e, e.High.Sum()})
	}
	for h.Len() > 0 {
		it := heap.Pop(h).(heapItem)
		e := it.entry
		if band.CountDominatorsCapped(e.High, k) >= k {
			continue
		}
		if e.Child != nil {
			t.visit(e.Child)
			for _, ce := range e.Child.Entries {
				if band.CountDominatorsCapped(ce.High, k) < k {
					heap.Push(h, heapItem{ce, ce.High.Sum()})
				}
			}
			continue
		}
		if exclude != nil && exclude(e.RecordID) {
			continue
		}
		r := t.Records[e.RecordID]
		if c := band.CountDominatorsCapped(r, k); c < k {
			ids = append(ids, e.RecordID)
			cnts = append(cnts, int32(c))
			band.Push(r)
		}
	}
	sort.Sort(&bandByID{ids, cnts})
	return ids, cnts
}

// bandByID sorts parallel id/count slices by ascending record id.
type bandByID struct {
	ids  []int
	cnts []int32
}

func (b *bandByID) Len() int           { return len(b.ids) }
func (b *bandByID) Less(i, j int) bool { return b.ids[i] < b.ids[j] }
func (b *bandByID) Swap(i, j int) {
	b.ids[i], b.ids[j] = b.ids[j], b.ids[i]
	b.cnts[i], b.cnts[j] = b.cnts[j], b.cnts[i]
}

// TopK returns the k record IDs with the highest scores under weight vector
// w (original d-dimensional weights), best first. Branch-and-bound on the
// max-corner score.
func (t *Tree) TopK(w geom.Vector, k int, exclude ExcludeFunc) []int {
	if k <= 0 {
		return nil
	}
	type scored struct {
		id    int
		score float64
	}
	var result []scored
	h := &entryHeap{}
	t.visit(t.Root)
	for _, e := range t.Root.Entries {
		heap.Push(h, heapItem{e, e.High.Dot(w)})
	}
	for h.Len() > 0 {
		it := heap.Pop(h).(heapItem)
		if len(result) >= k && it.key <= result[len(result)-1].score {
			break // no remaining entry can beat the current k-th score
		}
		e := it.entry
		if e.Child != nil {
			t.visit(e.Child)
			for _, ce := range e.Child.Entries {
				heap.Push(h, heapItem{ce, ce.High.Dot(w)})
			}
			continue
		}
		if exclude != nil && exclude(e.RecordID) {
			continue
		}
		s := t.Records[e.RecordID].Dot(w)
		result = append(result, scored{e.RecordID, s})
		sort.Slice(result, func(a, b int) bool { return result[a].score > result[b].score })
		if len(result) > k {
			result = result[:k]
		}
	}
	ids := make([]int, len(result))
	for i, s := range result {
		ids[i] = s.id
	}
	return ids
}

// Dominators returns the IDs of records that dominate p (honouring
// exclude). A subtree is pruned when its max-corner fails to cover p,
// since then no record inside can dominate p.
func (t *Tree) Dominators(p geom.Vector, exclude ExcludeFunc) []int {
	var out []int
	var walk func(n *Node)
	walk = func(n *Node) {
		t.visit(n)
		for _, e := range n.Entries {
			if !coversOrEqual(e.High, p) {
				continue
			}
			if e.Child != nil {
				walk(e.Child)
				continue
			}
			if exclude != nil && exclude(e.RecordID) {
				continue
			}
			if geom.Dominates(t.Records[e.RecordID], p) {
				out = append(out, e.RecordID)
			}
		}
	}
	walk(t.Root)
	sort.Ints(out)
	return out
}

// DominatedBy returns the IDs of records dominated by p.
func (t *Tree) DominatedBy(p geom.Vector, exclude ExcludeFunc) []int {
	var out []int
	var walk func(n *Node)
	walk = func(n *Node) {
		t.visit(n)
		for _, e := range n.Entries {
			if !coversOrEqual(p, e.Low) {
				continue
			}
			if e.Child != nil {
				walk(e.Child)
				continue
			}
			if exclude != nil && exclude(e.RecordID) {
				continue
			}
			if geom.Dominates(p, t.Records[e.RecordID]) {
				out = append(out, e.RecordID)
			}
		}
	}
	walk(t.Root)
	sort.Ints(out)
	return out
}

// EqualTo returns the IDs of records exactly equal to p (score ties of the
// focal record; the paper ignores ties, so kSPR processing excludes them).
func (t *Tree) EqualTo(p geom.Vector, exclude ExcludeFunc) []int {
	var out []int
	var walk func(n *Node)
	walk = func(n *Node) {
		t.visit(n)
		for _, e := range n.Entries {
			if !coversOrEqual(e.High, p) || !coversOrEqual(p, e.Low) {
				continue
			}
			if e.Child != nil {
				walk(e.Child)
				continue
			}
			if exclude != nil && exclude(e.RecordID) {
				continue
			}
			if t.Records[e.RecordID].Equal(p) {
				out = append(out, e.RecordID)
			}
		}
	}
	walk(t.Root)
	sort.Ints(out)
	return out
}

// coversOrEqual reports x >= y in every dimension.
func coversOrEqual(x, y geom.Vector) bool {
	for i, v := range x {
		if v < y[i] {
			return false
		}
	}
	return true
}

// AnyNotDominated reports whether some record (with exclude(id) false) is
// dominated by NONE of the pivot vectors. This powers the early-reporting
// test of P-CTA (Lemma 5): if no unprocessed record escapes the pivots'
// dominance regions, the cell can be reported immediately. A subtree is
// pruned when its max-corner is dominated by a pivot, since every record
// inside is then dominated too.
func (t *Tree) AnyNotDominated(pivots []geom.Vector, exclude ExcludeFunc) bool {
	// Flatten the pivot set once so the per-entry dominance tests inside
	// the walk run over contiguous memory.
	pb := kernel.NewBand(t.Dim)
	for _, p := range pivots {
		pb.Push(p)
	}
	var walk func(n *Node) bool
	walk = func(n *Node) bool {
		t.visit(n)
		for _, e := range n.Entries {
			if pb.AnyDominates(e.High) {
				continue
			}
			if e.Child != nil {
				if walk(e.Child) {
					return true
				}
				continue
			}
			if exclude != nil && exclude(e.RecordID) {
				continue
			}
			if !pb.AnyDominates(t.Records[e.RecordID]) {
				return true
			}
		}
		return false
	}
	return walk(t.Root)
}
