// Package rtree implements the aggregate R-tree the paper uses as its data
// index (§6.2, citing the aR-tree of Papadias et al.): a spatial index whose
// internal entries carry, besides the minimum bounding rectangle, the number
// of records in their subtree. It supports the access patterns kSPR needs:
// branch-and-bound skyline (BBS) with exclusion sets, k-skyband extraction,
// top-k retrieval, dominance counting/existence queries, and a page-visit
// hook for the disk-resident scenario of Appendix A.
//
// Construction uses Sort-Tile-Recursive (STR) bulk loading, which is the
// standard way to build a static R-tree over a known dataset. Build packs
// the records into one dense row-major float64 array (Records[i] is a view
// into it), so the traversal inner loops in query.go stream flat memory
// instead of chasing per-record slice headers. The STR leaf order can be
// exported with LeafOrder and a structurally identical tree reassembled in
// O(n) with BuildFromOrder — the basis of the persisted-index warm start.
package rtree

import (
	"fmt"
	"sort"

	"repro/internal/geom"
	"repro/internal/kernel"
)

// DefaultFanout is the default maximum number of entries per node; with
// ~4KB pages and d<=8 float64 MBRs this is a realistic page capacity.
const DefaultFanout = 64

// Tracker observes page visits; used by the disk simulation (Appendix A).
type Tracker interface {
	Visit(page int)
}

// Entry is a slot in a node: either a child pointer (internal nodes) with
// aggregate count, or a record reference (leaf nodes).
type Entry struct {
	Low, High geom.Vector // MBR corners (min-corner GL and max-corner GU)
	Count     int         // number of records in the subtree (1 for records)
	Child     *Node       // non-nil for internal entries
	RecordID  int         // valid for leaf entries
}

// Node is an R-tree node.
type Node struct {
	Leaf    bool
	Entries []Entry
	Page    int // sequential page ID for I/O accounting
}

// BandTable is a precomputed k-skyband summary of the indexed dataset:
// the ids of all records with fewer than K dominators, ascending, with
// their exact dominator counts. It is produced by KSkybandCounts, stored
// in the persisted index file, and attached to a warm-loaded tree so
// skyband queries with k <= K are served by a table scan instead of a
// BBS traversal — with results identical to the traversal by
// construction (the table is the traversal's output).
type BandTable struct {
	// K is the band depth the table was computed at.
	K int
	// IDs lists the member record ids in ascending order.
	IDs []int32
	// Cnt[i] is the exact number of records dominating IDs[i] (< K).
	Cnt []int32
}

// Tree is a bulk-loaded aggregate R-tree over a record set. Records are
// identified by their index in the backing slice.
type Tree struct {
	Dim     int
	Records []geom.Vector
	Root    *Node

	// Band, when non-nil, is a persisted k-skyband summary serving
	// skyband queries without a traversal. Only attach a table computed
	// from this exact record set (see KSkybandCounts); it is never
	// carried across rebuilds.
	Band *BandTable

	// flat is the dense row-major backing of Records: flat[i*Dim+j] is
	// attribute j of record i.
	flat []float64

	fanout int
	pages  int
	// Aggregate records whether subtree counts were materialized. A plain
	// R-tree (Aggregate=false) is structurally identical but exposes no
	// counts; it exists to reproduce the index-construction comparison of
	// Appendix D.
	Aggregate bool

	tracker Tracker
}

// Option configures tree construction.
type Option func(*Tree)

// WithFanout sets the node capacity.
func WithFanout(f int) Option {
	return func(t *Tree) {
		if f >= 2 {
			t.fanout = f
		}
	}
}

// WithoutAggregates builds a plain R-tree (no subtree counts), matching the
// non-aggregate index of Appendix D. Queries that need counts will panic.
func WithoutAggregates() Option {
	return func(t *Tree) { t.Aggregate = false }
}

// newTree validates the record set, applies options, and packs the
// records into the tree's flat row-major backing array.
func newTree(records []geom.Vector, opts []Option) (*Tree, error) {
	if len(records) == 0 {
		return nil, fmt.Errorf("rtree: empty record set")
	}
	dim := len(records[0])
	for i, r := range records {
		if len(r) != dim {
			return nil, fmt.Errorf("rtree: record %d has %d dims, want %d", i, len(r), dim)
		}
	}
	t := &Tree{Dim: dim, fanout: DefaultFanout, Aggregate: true}
	for _, o := range opts {
		o(t)
	}
	t.flat = kernel.PackRows(records, dim)
	t.Records = make([]geom.Vector, len(records))
	for i := range t.Records {
		t.Records[i] = geom.Vector(t.flat[i*dim : (i+1)*dim : (i+1)*dim])
	}
	return t, nil
}

// Build bulk-loads an R-tree over records using STR.
func Build(records []geom.Vector, opts ...Option) (*Tree, error) {
	t, err := newTree(records, opts)
	if err != nil {
		return nil, err
	}
	ids := make([]int, len(t.Records))
	for i := range ids {
		ids[i] = i
	}
	groups := strTile(t.Records, ids, t.Dim, 0, t.fanout)
	t.assemble(groups)
	return t, nil
}

// LeafOrder exports the tree's STR leaf layout: the record ids in
// left-to-right leaf order, and the exclusive end offset of each leaf
// node's run within that order. Feeding both back into BuildFromOrder
// over the same record set reproduces this tree exactly.
func (t *Tree) LeafOrder() (order, groupEnds []int32) {
	order = make([]int32, 0, len(t.Records))
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.Leaf {
			for _, e := range n.Entries {
				order = append(order, int32(e.RecordID))
			}
			groupEnds = append(groupEnds, int32(len(order)))
			return
		}
		for _, e := range n.Entries {
			walk(e.Child)
		}
	}
	walk(t.Root)
	return order, groupEnds
}

// BuildFromOrder reassembles in O(n) the exact tree that Build produced,
// from a leaf layout previously exported by LeafOrder: same leaf
// grouping, same upper-level structure, same page numbering — so every
// query (and therefore every kSPR result) is byte-identical to the
// cold-built tree's. The layout is validated (a permutation of the
// record ids, strictly increasing group ends covering all records, no
// group over fanout); an invalid layout is an error, and callers fall
// back to a cold Build.
func BuildFromOrder(records []geom.Vector, order, groupEnds []int32, opts ...Option) (*Tree, error) {
	t, err := newTree(records, opts)
	if err != nil {
		return nil, err
	}
	n := len(t.Records)
	if len(order) != n {
		return nil, fmt.Errorf("rtree: leaf order has %d ids, want %d", len(order), n)
	}
	seen := make([]bool, n)
	for _, id := range order {
		if id < 0 || int(id) >= n || seen[id] {
			return nil, fmt.Errorf("rtree: leaf order is not a permutation of the record ids")
		}
		seen[id] = true
	}
	if len(groupEnds) == 0 || int(groupEnds[len(groupEnds)-1]) != n {
		return nil, fmt.Errorf("rtree: leaf groups do not cover the record set")
	}
	prev := int32(0)
	for _, end := range groupEnds {
		if end <= prev || int(end-prev) > t.fanout {
			return nil, fmt.Errorf("rtree: invalid leaf group boundaries")
		}
		prev = end
	}
	groups := make([][]int, 0, len(groupEnds))
	start := 0
	for _, end := range groupEnds {
		g := make([]int, 0, int(end)-start)
		for _, id := range order[start:end] {
			g = append(g, int(id))
		}
		groups = append(groups, g)
		start = int(end)
	}
	t.assemble(groups)
	return t, nil
}

// assemble materializes the tree nodes from leaf-level record groups:
// one leaf per group (paged in order), then upper levels grouping
// consecutive nodes — they are already spatially clustered by the STR
// order. Build and BuildFromOrder share this phase, which is what makes
// the warm-rebuilt tree structurally identical to the cold one.
func (t *Tree) assemble(groups [][]int) {
	level := make([]*Node, 0, len(groups))
	for _, g := range groups {
		n := &Node{Leaf: true, Page: t.pages}
		t.pages++
		for _, id := range g {
			r := t.Records[id]
			n.Entries = append(n.Entries, Entry{
				Low: r, High: r, Count: 1, RecordID: id,
			})
		}
		level = append(level, n)
	}
	for len(level) > 1 {
		var next []*Node
		for i := 0; i < len(level); i += t.fanout {
			end := min(i+t.fanout, len(level))
			n := &Node{Page: t.pages}
			t.pages++
			for _, child := range level[i:end] {
				low, high, count := nodeMBR(child, t.Dim)
				if !t.Aggregate {
					count = 0
				}
				n.Entries = append(n.Entries, Entry{Low: low, High: high, Count: count, Child: child})
			}
			next = append(next, n)
		}
		level = next
	}
	t.Root = level[0]
}

// strTile recursively partitions ids into groups of at most cap records
// using the Sort-Tile-Recursive scheme starting at dimension dimIdx.
func strTile(records []geom.Vector, ids []int, dim, dimIdx, cap int) [][]int {
	if len(ids) <= cap {
		return [][]int{ids}
	}
	sort.Slice(ids, func(a, b int) bool {
		return records[ids[a]][dimIdx] < records[ids[b]][dimIdx]
	})
	if dimIdx == dim-1 {
		// Final dimension: chop into runs of cap.
		var out [][]int
		for i := 0; i < len(ids); i += cap {
			out = append(out, ids[i:min(i+cap, len(ids))])
		}
		return out
	}
	// Number of leaf pages we will eventually need, then slabs per this dim.
	pages := (len(ids) + cap - 1) / cap
	slabs := ceilPow(pages, dim-dimIdx)
	slabSize := (len(ids) + slabs - 1) / slabs
	var out [][]int
	for i := 0; i < len(ids); i += slabSize {
		out = append(out, strTile(records, ids[i:min(i+slabSize, len(ids))], dim, dimIdx+1, cap)...)
	}
	return out
}

// ceilPow returns ceil(n^(1/k)).
func ceilPow(n, k int) int {
	if k <= 1 {
		return n
	}
	lo, hi := 1, n
	for lo < hi {
		mid := (lo + hi) / 2
		p := 1
		over := false
		for i := 0; i < k; i++ {
			p *= mid
			if p >= n {
				over = true
				break
			}
		}
		if over {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

func nodeMBR(n *Node, dim int) (geom.Vector, geom.Vector, int) {
	low := make(geom.Vector, dim)
	high := make(geom.Vector, dim)
	copy(low, n.Entries[0].Low)
	copy(high, n.Entries[0].High)
	count := 0
	for _, e := range n.Entries {
		for j := 0; j < dim; j++ {
			if e.Low[j] < low[j] {
				low[j] = e.Low[j]
			}
			if e.High[j] > high[j] {
				high[j] = e.High[j]
			}
		}
		count += e.Count
	}
	return low, high, count
}

// SetTracker installs (or clears, with nil) a page-visit observer.
func (t *Tree) SetTracker(tr Tracker) { t.tracker = tr }

func (t *Tree) visit(n *Node) {
	if t.tracker != nil {
		t.tracker.Visit(n.Page)
	}
}

// Pages returns the total number of pages (nodes) in the tree.
func (t *Tree) Pages() int { return t.pages }

// Fanout returns the node capacity the tree was built with.
func (t *Tree) Fanout() int { return t.fanout }

// FlatRows returns the dense row-major backing array of the records:
// FlatRows()[i*Dim : (i+1)*Dim] is record i. Whole-dataset kernels (see
// internal/kernel) consume it directly.
func (t *Tree) FlatRows() []float64 { return t.flat }

// Height returns the number of levels.
func (t *Tree) Height() int {
	h := 1
	for n := t.Root; !n.Leaf; n = n.Entries[0].Child {
		h++
	}
	return h
}

// Len returns the number of indexed records.
func (t *Tree) Len() int { return len(t.Records) }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
