// Package rtree implements the aggregate R-tree the paper uses as its data
// index (§6.2, citing the aR-tree of Papadias et al.): a spatial index whose
// internal entries carry, besides the minimum bounding rectangle, the number
// of records in their subtree. It supports the access patterns kSPR needs:
// branch-and-bound skyline (BBS) with exclusion sets, k-skyband extraction,
// top-k retrieval, dominance counting/existence queries, and a page-visit
// hook for the disk-resident scenario of Appendix A.
//
// Construction uses Sort-Tile-Recursive (STR) bulk loading, which is the
// standard way to build a static R-tree over a known dataset.
package rtree

import (
	"fmt"
	"sort"

	"repro/internal/geom"
)

// DefaultFanout is the default maximum number of entries per node; with
// ~4KB pages and d<=8 float64 MBRs this is a realistic page capacity.
const DefaultFanout = 64

// Tracker observes page visits; used by the disk simulation (Appendix A).
type Tracker interface {
	Visit(page int)
}

// Entry is a slot in a node: either a child pointer (internal nodes) with
// aggregate count, or a record reference (leaf nodes).
type Entry struct {
	Low, High geom.Vector // MBR corners (min-corner GL and max-corner GU)
	Count     int         // number of records in the subtree (1 for records)
	Child     *Node       // non-nil for internal entries
	RecordID  int         // valid for leaf entries
}

// Node is an R-tree node.
type Node struct {
	Leaf    bool
	Entries []Entry
	Page    int // sequential page ID for I/O accounting
}

// Tree is a bulk-loaded aggregate R-tree over a record set. Records are
// identified by their index in the backing slice.
type Tree struct {
	Dim     int
	Records []geom.Vector
	Root    *Node

	fanout int
	pages  int
	// Aggregate records whether subtree counts were materialized. A plain
	// R-tree (Aggregate=false) is structurally identical but exposes no
	// counts; it exists to reproduce the index-construction comparison of
	// Appendix D.
	Aggregate bool

	tracker Tracker
}

// Option configures tree construction.
type Option func(*Tree)

// WithFanout sets the node capacity.
func WithFanout(f int) Option {
	return func(t *Tree) {
		if f >= 2 {
			t.fanout = f
		}
	}
}

// WithoutAggregates builds a plain R-tree (no subtree counts), matching the
// non-aggregate index of Appendix D. Queries that need counts will panic.
func WithoutAggregates() Option {
	return func(t *Tree) { t.Aggregate = false }
}

// Build bulk-loads an R-tree over records using STR.
func Build(records []geom.Vector, opts ...Option) (*Tree, error) {
	if len(records) == 0 {
		return nil, fmt.Errorf("rtree: empty record set")
	}
	dim := len(records[0])
	for i, r := range records {
		if len(r) != dim {
			return nil, fmt.Errorf("rtree: record %d has %d dims, want %d", i, len(r), dim)
		}
	}
	t := &Tree{Dim: dim, Records: records, fanout: DefaultFanout, Aggregate: true}
	for _, o := range opts {
		o(t)
	}

	// Leaf level: STR-tile the record IDs.
	ids := make([]int, len(records))
	for i := range ids {
		ids[i] = i
	}
	groups := strTile(records, ids, dim, 0, t.fanout)
	level := make([]*Node, 0, len(groups))
	for _, g := range groups {
		n := &Node{Leaf: true, Page: t.pages}
		t.pages++
		for _, id := range g {
			r := records[id]
			n.Entries = append(n.Entries, Entry{
				Low: r, High: r, Count: 1, RecordID: id,
			})
		}
		level = append(level, n)
	}

	// Upper levels: group consecutive nodes (they are already spatially
	// clustered by the STR order).
	for len(level) > 1 {
		var next []*Node
		for i := 0; i < len(level); i += t.fanout {
			end := min(i+t.fanout, len(level))
			n := &Node{Page: t.pages}
			t.pages++
			for _, child := range level[i:end] {
				low, high, count := nodeMBR(child, dim)
				if !t.Aggregate {
					count = 0
				}
				n.Entries = append(n.Entries, Entry{Low: low, High: high, Count: count, Child: child})
			}
			next = append(next, n)
		}
		level = next
	}
	t.Root = level[0]
	return t, nil
}

// strTile recursively partitions ids into groups of at most cap records
// using the Sort-Tile-Recursive scheme starting at dimension dimIdx.
func strTile(records []geom.Vector, ids []int, dim, dimIdx, cap int) [][]int {
	if len(ids) <= cap {
		return [][]int{ids}
	}
	sort.Slice(ids, func(a, b int) bool {
		return records[ids[a]][dimIdx] < records[ids[b]][dimIdx]
	})
	if dimIdx == dim-1 {
		// Final dimension: chop into runs of cap.
		var out [][]int
		for i := 0; i < len(ids); i += cap {
			out = append(out, ids[i:min(i+cap, len(ids))])
		}
		return out
	}
	// Number of leaf pages we will eventually need, then slabs per this dim.
	pages := (len(ids) + cap - 1) / cap
	slabs := ceilPow(pages, dim-dimIdx)
	slabSize := (len(ids) + slabs - 1) / slabs
	var out [][]int
	for i := 0; i < len(ids); i += slabSize {
		out = append(out, strTile(records, ids[i:min(i+slabSize, len(ids))], dim, dimIdx+1, cap)...)
	}
	return out
}

// ceilPow returns ceil(n^(1/k)).
func ceilPow(n, k int) int {
	if k <= 1 {
		return n
	}
	lo, hi := 1, n
	for lo < hi {
		mid := (lo + hi) / 2
		p := 1
		over := false
		for i := 0; i < k; i++ {
			p *= mid
			if p >= n {
				over = true
				break
			}
		}
		if over {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

func nodeMBR(n *Node, dim int) (geom.Vector, geom.Vector, int) {
	low := make(geom.Vector, dim)
	high := make(geom.Vector, dim)
	copy(low, n.Entries[0].Low)
	copy(high, n.Entries[0].High)
	count := 0
	for _, e := range n.Entries {
		for j := 0; j < dim; j++ {
			if e.Low[j] < low[j] {
				low[j] = e.Low[j]
			}
			if e.High[j] > high[j] {
				high[j] = e.High[j]
			}
		}
		count += e.Count
	}
	return low, high, count
}

// SetTracker installs (or clears, with nil) a page-visit observer.
func (t *Tree) SetTracker(tr Tracker) { t.tracker = tr }

func (t *Tree) visit(n *Node) {
	if t.tracker != nil {
		t.tracker.Visit(n.Page)
	}
}

// Pages returns the total number of pages (nodes) in the tree.
func (t *Tree) Pages() int { return t.pages }

// Height returns the number of levels.
func (t *Tree) Height() int {
	h := 1
	for n := t.Root; !n.Leaf; n = n.Entries[0].Child {
		h++
	}
	return h
}

// Len returns the number of indexed records.
func (t *Tree) Len() int { return len(t.Records) }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
