package rtree

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

// quickRecords converts quick-generated fixed arrays into a record set.
func quickRecords(raw [][3]float64) []geom.Vector {
	recs := make([]geom.Vector, 0, len(raw))
	for _, r := range raw {
		v := make(geom.Vector, 3)
		for j, x := range r {
			// Map arbitrary floats into [0,1] deterministically.
			if math.IsNaN(x) || math.IsInf(x, 0) {
				x = 0.5
			}
			v[j] = math.Abs(x) - math.Floor(math.Abs(x))
		}
		recs = append(recs, v)
	}
	return recs
}

// Property: every skyline member is undominated and every non-member is
// dominated by some skyline member.
func TestQuickSkylineDefinition(t *testing.T) {
	f := func(raw [][3]float64) bool {
		if len(raw) == 0 {
			return true
		}
		recs := quickRecords(raw)
		tr, err := Build(recs, WithFanout(4))
		if err != nil {
			return false
		}
		sky := tr.Skyline(nil)
		inSky := map[int]bool{}
		for _, id := range sky {
			inSky[id] = true
		}
		for i, r := range recs {
			dominated := false
			for _, id := range sky {
				if id != i && geom.Dominates(recs[id], r) {
					dominated = true
					break
				}
			}
			if inSky[i] && dominated {
				return false // skyline member dominated by another member
			}
			if !inSky[i] && !dominated {
				// Non-members must be dominated by some skyline record
				// (dominance chains end at the skyline).
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: skyband sizes are monotone in k and the n-skyband is everything.
func TestQuickSkybandMonotone(t *testing.T) {
	f := func(raw [][3]float64, kRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		recs := quickRecords(raw)
		tr, err := Build(recs, WithFanout(4))
		if err != nil {
			return false
		}
		k := int(kRaw)%5 + 1
		a := tr.KSkyband(k, nil)
		b := tr.KSkyband(k+1, nil)
		if len(a) > len(b) {
			return false
		}
		inB := map[int]bool{}
		for _, id := range b {
			inB[id] = true
		}
		for _, id := range a {
			if !inB[id] {
				return false // k-skyband must be contained in (k+1)-skyband
			}
		}
		full := tr.KSkyband(len(recs), nil)
		return len(full) == len(recs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: TopK scores are non-increasing and each is >= any score outside
// the result.
func TestQuickTopKOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	f := func(raw [][3]float64) bool {
		if len(raw) < 2 {
			return true
		}
		recs := quickRecords(raw)
		tr, err := Build(recs, WithFanout(4))
		if err != nil {
			return false
		}
		w := geom.Vector{rng.Float64() + 0.01, rng.Float64() + 0.01, rng.Float64() + 0.01}
		k := 1 + rng.Intn(len(recs))
		top := tr.TopK(w, k, nil)
		if len(top) != min(k, len(recs)) {
			return false
		}
		inTop := map[int]bool{}
		for i, id := range top {
			inTop[id] = true
			if i > 0 && recs[top[i-1]].Dot(w) < recs[id].Dot(w)-1e-12 {
				return false
			}
		}
		worst := recs[top[len(top)-1]].Dot(w)
		for i, r := range recs {
			if !inTop[i] && r.Dot(w) > worst+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
