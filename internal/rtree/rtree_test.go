package rtree

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geom"
)

func randRecords(rng *rand.Rand, n, d int) []geom.Vector {
	rs := make([]geom.Vector, n)
	for i := range rs {
		v := make(geom.Vector, d)
		for j := range v {
			v[j] = rng.Float64()
		}
		rs[i] = v
	}
	return rs
}

func TestBuildValidatesInput(t *testing.T) {
	if _, err := Build(nil); err == nil {
		t.Fatal("expected error for empty record set")
	}
	if _, err := Build([]geom.Vector{{1, 2}, {1}}); err == nil {
		t.Fatal("expected error for ragged records")
	}
}

func TestBuildStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	recs := randRecords(rng, 1000, 3)
	tr, err := Build(recs, WithFanout(16))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 1000 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if tr.Height() < 2 {
		t.Fatalf("height %d too small for 1000 records with fanout 16", tr.Height())
	}
	// Every record must be reachable exactly once, and every MBR must
	// contain its subtree.
	seen := map[int]int{}
	var walk func(n *Node) (geom.Vector, geom.Vector, int)
	walk = func(n *Node) (geom.Vector, geom.Vector, int) {
		if len(n.Entries) == 0 {
			t.Fatal("empty node")
		}
		if len(n.Entries) > 16 {
			t.Fatalf("node with %d entries exceeds fanout", len(n.Entries))
		}
		low, high, total := nodeMBR(n, tr.Dim)
		for _, e := range n.Entries {
			if e.Child != nil {
				clow, chigh, ccount := walk(e.Child)
				if ccount != e.Count {
					t.Fatalf("entry count %d, subtree has %d", e.Count, ccount)
				}
				for j := 0; j < tr.Dim; j++ {
					if e.Low[j] > clow[j]+1e-12 || e.High[j] < chigh[j]-1e-12 {
						t.Fatal("entry MBR does not contain child MBR")
					}
				}
			} else {
				seen[e.RecordID]++
			}
		}
		return low, high, total
	}
	_, _, total := walk(tr.Root)
	if total != 1000 {
		t.Fatalf("aggregate total %d, want 1000", total)
	}
	for id := 0; id < 1000; id++ {
		if seen[id] != 1 {
			t.Fatalf("record %d appears %d times", id, seen[id])
		}
	}
}

func bruteSkyline(recs []geom.Vector, exclude ExcludeFunc) []int {
	var out []int
	for i, r := range recs {
		if exclude != nil && exclude(i) {
			continue
		}
		dominated := false
		for j, s := range recs {
			if i == j || (exclude != nil && exclude(j)) {
				continue
			}
			if geom.Dominates(s, r) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, i)
		}
	}
	sort.Ints(out)
	return out
}

func bruteSkyband(recs []geom.Vector, k int, exclude ExcludeFunc) []int {
	var out []int
	for i, r := range recs {
		if exclude != nil && exclude(i) {
			continue
		}
		count := 0
		for j, s := range recs {
			if i == j || (exclude != nil && exclude(j)) {
				continue
			}
			if geom.Dominates(s, r) {
				count++
			}
		}
		if count < k {
			out = append(out, i)
		}
	}
	sort.Ints(out)
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestSkylineMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		n := 50 + rng.Intn(300)
		d := 2 + rng.Intn(4)
		recs := randRecords(rng, n, d)
		tr, err := Build(recs, WithFanout(8))
		if err != nil {
			t.Fatal(err)
		}
		got := tr.Skyline(nil)
		want := bruteSkyline(recs, nil)
		if !equalInts(got, want) {
			t.Fatalf("trial %d (n=%d d=%d): skyline %v != brute %v", trial, n, d, got, want)
		}
	}
}

func TestSkylineWithExclusions(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	recs := randRecords(rng, 200, 3)
	tr, _ := Build(recs, WithFanout(8))
	// Exclude the unconstrained skyline itself; the "second layer" must
	// emerge.
	first := tr.Skyline(nil)
	exSet := map[int]bool{}
	for _, id := range first {
		exSet[id] = true
	}
	ex := func(id int) bool { return exSet[id] }
	got := tr.Skyline(ex)
	want := bruteSkyline(recs, ex)
	if !equalInts(got, want) {
		t.Fatalf("skyline with exclusions %v != brute %v", got, want)
	}
	for _, id := range got {
		if exSet[id] {
			t.Fatalf("excluded record %d reported", id)
		}
	}
}

func TestKSkybandMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 15; trial++ {
		n := 80 + rng.Intn(200)
		d := 2 + rng.Intn(3)
		k := 1 + rng.Intn(5)
		recs := randRecords(rng, n, d)
		tr, _ := Build(recs, WithFanout(8))
		got := tr.KSkyband(k, nil)
		want := bruteSkyband(recs, k, nil)
		if !equalInts(got, want) {
			t.Fatalf("trial %d (n=%d d=%d k=%d): skyband size %d != brute %d",
				trial, n, d, k, len(got), len(want))
		}
	}
}

func TestKSkybandK1IsSkyline(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	recs := randRecords(rng, 150, 3)
	tr, _ := Build(recs)
	if !equalInts(tr.KSkyband(1, nil), tr.Skyline(nil)) {
		t.Fatal("1-skyband differs from skyline")
	}
	if tr.KSkyband(0, nil) != nil {
		t.Fatal("0-skyband should be empty")
	}
}

func TestTopKMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 20; trial++ {
		n := 50 + rng.Intn(200)
		d := 2 + rng.Intn(3)
		recs := randRecords(rng, n, d)
		tr, _ := Build(recs, WithFanout(8))
		w := make(geom.Vector, d)
		var sum float64
		for j := range w {
			w[j] = rng.Float64() + 0.01
			sum += w[j]
		}
		for j := range w {
			w[j] /= sum
		}
		k := 1 + rng.Intn(10)
		got := tr.TopK(w, k, nil)
		// Brute force.
		ids := make([]int, n)
		for i := range ids {
			ids[i] = i
		}
		sort.Slice(ids, func(a, b int) bool {
			return recs[ids[a]].Dot(w) > recs[ids[b]].Dot(w)
		})
		want := ids[:k]
		if len(got) != k {
			t.Fatalf("got %d results, want %d", len(got), k)
		}
		for i := range got {
			// Compare scores rather than IDs to tolerate exact ties.
			gs, ws := recs[got[i]].Dot(w), recs[want[i]].Dot(w)
			if gs != ws {
				t.Fatalf("trial %d: rank %d score %v, want %v", trial, i, gs, ws)
			}
		}
	}
}

func TestDominatorsAndDominated(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	recs := randRecords(rng, 300, 3)
	tr, _ := Build(recs, WithFanout(8))
	p := geom.Vector{0.5, 0.5, 0.5}
	gotDom := tr.Dominators(p, nil)
	gotSub := tr.DominatedBy(p, nil)
	var wantDom, wantSub []int
	for i, r := range recs {
		if geom.Dominates(r, p) {
			wantDom = append(wantDom, i)
		}
		if geom.Dominates(p, r) {
			wantSub = append(wantSub, i)
		}
	}
	if !equalInts(gotDom, wantDom) {
		t.Fatalf("Dominators: got %d, want %d", len(gotDom), len(wantDom))
	}
	if !equalInts(gotSub, wantSub) {
		t.Fatalf("DominatedBy: got %d, want %d", len(gotSub), len(wantSub))
	}
}

func TestAnyNotDominated(t *testing.T) {
	recs := []geom.Vector{
		{0.9, 0.9}, // dominates everything else
		{0.5, 0.5},
		{0.1, 0.8},
	}
	tr, _ := Build(recs, WithFanout(4))
	// Pivot dominating all records: nothing escapes.
	if tr.AnyNotDominated([]geom.Vector{{1, 1}}, nil) {
		t.Fatal("pivot (1,1) dominates all, but AnyNotDominated = true")
	}
	// Pivot dominating only low records: record 0 escapes.
	if !tr.AnyNotDominated([]geom.Vector{{0.6, 0.6}}, nil) {
		t.Fatal("record (0.9,0.9) escapes pivot (0.6,0.6), but AnyNotDominated = false")
	}
	// Same pivot, but record 0 excluded: 0.1,0.8 also escapes (0.8 > 0.6).
	ex := func(id int) bool { return id == 0 }
	if !tr.AnyNotDominated([]geom.Vector{{0.6, 0.6}}, ex) {
		t.Fatal("record (0.1,0.8) escapes pivot (0.6,0.6)")
	}
	// Pivots jointly covering everything.
	if tr.AnyNotDominated([]geom.Vector{{1, 0.95}, {0.95, 1}}, nil) {
		t.Fatal("joint pivots dominate all records")
	}
}

type countTracker struct{ visits int }

func (c *countTracker) Visit(int) { c.visits++ }

func TestTrackerCountsPages(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	recs := randRecords(rng, 500, 3)
	tr, _ := Build(recs, WithFanout(8))
	var ct countTracker
	tr.SetTracker(&ct)
	tr.Skyline(nil)
	if ct.visits == 0 {
		t.Fatal("tracker saw no page visits")
	}
	if ct.visits > tr.Pages()*2 {
		t.Fatalf("suspiciously many visits: %d for %d pages", ct.visits, tr.Pages())
	}
	tr.SetTracker(nil)
	tr.Skyline(nil) // must not panic
}

func TestWithoutAggregates(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	recs := randRecords(rng, 100, 2)
	tr, _ := Build(recs, WithoutAggregates(), WithFanout(8))
	if tr.Aggregate {
		t.Fatal("Aggregate flag not cleared")
	}
	// Structure-only queries still work.
	if got := tr.Skyline(nil); !equalInts(got, bruteSkyline(recs, nil)) {
		t.Fatal("skyline broken on non-aggregate tree")
	}
}

func TestSingleRecordTree(t *testing.T) {
	tr, err := Build([]geom.Vector{{0.3, 0.7}})
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Skyline(nil); !equalInts(got, []int{0}) {
		t.Fatalf("skyline of singleton = %v", got)
	}
	if got := tr.TopK(geom.Vector{0.5, 0.5}, 3, nil); len(got) != 1 || got[0] != 0 {
		t.Fatalf("top-3 of singleton = %v", got)
	}
}

func TestCeilPow(t *testing.T) {
	cases := []struct{ n, k, want int }{
		{8, 3, 2}, {9, 2, 3}, {10, 2, 4}, {1, 5, 1}, {27, 3, 3}, {28, 3, 4},
	}
	for _, c := range cases {
		if got := ceilPow(c.n, c.k); got != c.want {
			t.Errorf("ceilPow(%d,%d) = %d, want %d", c.n, c.k, got, c.want)
		}
	}
}

func TestHeightAndPages(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	recs := randRecords(rng, 1000, 3)
	tr, err := Build(recs, WithFanout(8))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Height() < 3 {
		t.Fatalf("height %d too small for 1000 records at fanout 8", tr.Height())
	}
	// Pages = total node count.
	count := 0
	var walk func(n *Node)
	walk = func(n *Node) {
		count++
		for _, e := range n.Entries {
			if e.Child != nil {
				walk(e.Child)
			}
		}
	}
	walk(tr.Root)
	if tr.Pages() != count {
		t.Fatalf("Pages() = %d, counted %d nodes", tr.Pages(), count)
	}
}

func TestWithFanoutRejectsTiny(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	recs := randRecords(rng, 100, 2)
	tr, err := Build(recs, WithFanout(1)) // ignored: falls back to default
	if err != nil {
		t.Fatal(err)
	}
	if tr.Height() != 2 && tr.Height() != 1 {
		t.Fatalf("unexpected height %d for default fanout", tr.Height())
	}
}

func TestEqualTo(t *testing.T) {
	recs := []geom.Vector{
		{0.5, 0.5}, {0.5, 0.5}, {0.5, 0.6}, {0.4, 0.5},
	}
	tr, err := Build(recs, WithFanout(4))
	if err != nil {
		t.Fatal(err)
	}
	got := tr.EqualTo(geom.Vector{0.5, 0.5}, nil)
	if !equalInts(got, []int{0, 1}) {
		t.Fatalf("EqualTo = %v, want [0 1]", got)
	}
	got = tr.EqualTo(geom.Vector{0.5, 0.5}, func(id int) bool { return id == 0 })
	if !equalInts(got, []int{1}) {
		t.Fatalf("EqualTo with exclusion = %v, want [1]", got)
	}
	if got := tr.EqualTo(geom.Vector{0.9, 0.9}, nil); len(got) != 0 {
		t.Fatalf("EqualTo for absent point = %v", got)
	}
}

func TestSkylineIteratorMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for trial := 0; trial < 10; trial++ {
		recs := randRecords(rng, 150+rng.Intn(200), 3)
		tr, err := Build(recs, WithFanout(8))
		if err != nil {
			t.Fatal(err)
		}
		it := tr.NewSkylineIterator(nil)
		var got []int
		for {
			id := it.Next()
			if id < 0 {
				break
			}
			got = append(got, id)
		}
		want := tr.Skyline(nil)
		sortedGot := append([]int(nil), got...)
		sort.Ints(sortedGot)
		if !equalInts(sortedGot, want) {
			t.Fatalf("iterator skyline %v != batch skyline %v", sortedGot, want)
		}
		// Emission order: decreasing coordinate sum.
		for i := 1; i < len(got); i++ {
			if recs[got[i-1]].Sum() < recs[got[i]].Sum()-1e-12 {
				t.Fatalf("iterator emitted out of order: %v then %v",
					recs[got[i-1]], recs[got[i]])
			}
		}
		if len(it.Found()) != len(got) {
			t.Fatal("Found() disagrees with emitted count")
		}
	}
}

func TestSkylineIteratorEarlyStop(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	recs := randRecords(rng, 400, 3)
	tr, _ := Build(recs, WithFanout(8))
	it := tr.NewSkylineIterator(nil)
	first := it.Next()
	if first < 0 {
		t.Fatal("empty skyline for 400 records")
	}
	// The first emission must be the record with the maximal coordinate sum
	// among skyline members (heap order guarantees it).
	for _, id := range tr.Skyline(nil) {
		if recs[id].Sum() > recs[first].Sum()+1e-12 {
			t.Fatalf("first emitted %v but %v has larger sum", recs[first], recs[id])
		}
	}
}

func TestSkylineIteratorWithExclusions(t *testing.T) {
	rng := rand.New(rand.NewSource(85))
	recs := randRecords(rng, 200, 3)
	tr, _ := Build(recs, WithFanout(8))
	exSet := map[int]bool{}
	for _, id := range tr.Skyline(nil) {
		exSet[id] = true
	}
	ex := func(id int) bool { return exSet[id] }
	it := tr.NewSkylineIterator(ex)
	var got []int
	for {
		id := it.Next()
		if id < 0 {
			break
		}
		got = append(got, id)
	}
	sort.Ints(got)
	if !equalInts(got, tr.Skyline(ex)) {
		t.Fatal("iterator with exclusions disagrees with batch skyline")
	}
}
