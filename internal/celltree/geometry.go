package celltree

import (
	"repro/internal/geom"
	"repro/internal/polytope"
)

// CellGeom is the exact geometry of a node's region: a minimal facet list
// and the vertex set of the closure. It is maintained incrementally — a
// child's geometry is its parent's facets cut by the child's edge label —
// so each node costs one small combinatorial enumeration instead of LP
// solves. Geometry is kept only for preference spaces of dimension <=
// GeomMaxDim; elsewhere (and for degenerate cells) nodes carry nil geometry
// and every decision falls back to the paper's LP machinery.
type CellGeom struct {
	Facets []geom.Constraint
	Verts  []geom.Vector
}

// GeomMaxDim bounds the dimensionality for which per-node geometry is
// maintained.
const GeomMaxDim = 3

// geomTol is the tightness tolerance used when pruning facets.
const geomTol = 1e-7

// geomCombosCap bounds the per-cut enumeration; facet lists stay small, so
// this triggers only in degenerate configurations.
const geomCombosCap = 20000

// BuildCellGeom enumerates vertices over rows (plus implicit axis facets)
// and prunes rows that are tight at no vertex. It returns nil when the
// region is lower-dimensional or empty (fewer than dim+1 vertices).
func BuildCellGeom(rows []geom.Constraint, dim int) *CellGeom {
	all := make([]geom.Constraint, 0, len(rows)+dim)
	all = append(all, rows...)
	for i := 0; i < dim; i++ {
		a := make(geom.Vector, dim)
		a[i] = -1
		all = append(all, geom.Constraint{A: a, B: 0})
	}
	verts := polytope.EnumerateVertices(all, dim, geomCombosCap)
	if len(verts) < dim+1 {
		return nil
	}
	var facets []geom.Constraint
	for _, c := range all {
		tight := false
		for _, v := range verts {
			if d := c.A.Dot(v) - c.B; d > -geomTol && d < geomTol {
				tight = true
				break
			}
		}
		if tight && !containsPlane(facets, c) {
			facets = append(facets, c)
		}
	}
	return &CellGeom{Facets: facets, Verts: verts}
}

// Cut returns the geometry of the region clipped by one more halfspace row.
func (g *CellGeom) Cut(row geom.Constraint, dim int) *CellGeom {
	rows := make([]geom.Constraint, 0, len(g.Facets)+1)
	rows = append(rows, g.Facets...)
	rows = append(rows, row)
	return BuildCellGeom(rows, dim)
}

// Centroid returns the vertex mean — strictly interior for full-dimensional
// regions by convexity.
func (g *CellGeom) Centroid() geom.Vector {
	c := make(geom.Vector, len(g.Verts[0]))
	for _, v := range g.Verts {
		for i, x := range v {
			c[i] += x
		}
	}
	for i := range c {
		c[i] /= float64(len(g.Verts))
	}
	return c
}

// EvalRange returns the min and max of h's signed evaluation across the
// vertices; used to classify a hyperplane against the cell in O(|Verts|).
func (g *CellGeom) EvalRange(h geom.Hyperplane) (float64, float64) {
	lo := h.Eval(g.Verts[0])
	hi := lo
	for _, v := range g.Verts[1:] {
		e := h.Eval(v)
		if e < lo {
			lo = e
		}
		if e > hi {
			hi = e
		}
	}
	return lo, hi
}

// containsPlane reports whether an equivalent facet plane is already kept
// (space bounds, box rows and the implicit axis rows can coincide; keeping
// duplicates would, among other things, double-count facet pyramids in
// exact volume computation).
func containsPlane(facets []geom.Constraint, c geom.Constraint) bool {
	for _, f := range facets {
		if len(f.A) != len(c.A) {
			continue
		}
		same := f.B-c.B < geomTol && c.B-f.B < geomTol
		for j := 0; same && j < len(f.A); j++ {
			d := f.A[j] - c.A[j]
			same = d < geomTol && d > -geomTol
		}
		if same {
			return true
		}
	}
	return false
}
