package celltree

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/lp"
	"repro/internal/polytope"
)

func TestBuildCellGeomSimplex(t *testing.T) {
	g := BuildCellGeom(geom.SpaceBoundsTransformed(2), 2)
	if g == nil {
		t.Fatal("simplex geometry is nil")
	}
	if len(g.Verts) != 3 {
		t.Fatalf("simplex has %d vertices, want 3", len(g.Verts))
	}
	for _, f := range g.Facets {
		tight := false
		for _, v := range g.Verts {
			if math.Abs(f.A.Dot(v)-f.B) < 1e-6 {
				tight = true
			}
		}
		if !tight {
			t.Fatalf("facet %+v tight nowhere", f)
		}
	}
	c := g.Centroid()
	if !geom.InSimplex(c) {
		t.Fatalf("centroid %v not interior", c)
	}
}

func TestBuildCellGeomDegenerate(t *testing.T) {
	cons := append(geom.SpaceBoundsTransformed(2),
		geom.Constraint{A: geom.Vector{1, 0}, B: 0.5},
		geom.Constraint{A: geom.Vector{-1, 0}, B: -0.5},
	)
	if g := BuildCellGeom(cons, 2); g != nil {
		t.Fatalf("degenerate region produced geometry with %d vertices", len(g.Verts))
	}
}

func TestBuildCellGeomDeduplicatesFacets(t *testing.T) {
	// Bounds repeated twice: facet list must not contain duplicates.
	cons := append(geom.SpaceBoundsTransformed(2), geom.SpaceBoundsTransformed(2)...)
	g := BuildCellGeom(cons, 2)
	if g == nil {
		t.Fatal("geometry nil")
	}
	for i := range g.Facets {
		for j := i + 1; j < len(g.Facets); j++ {
			if containsPlane(g.Facets[i:i+1], g.Facets[j]) {
				t.Fatalf("duplicate facet planes %d and %d", i, j)
			}
		}
	}
}

func TestCutMatchesFromScratch(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 40; trial++ {
		dim := 2 + trial%2
		base := BuildCellGeom(geom.SpaceBoundsTransformed(dim), dim)
		rows := geom.SpaceBoundsTransformed(dim)
		g := base
		for cut := 0; cut < 3 && g != nil; cut++ {
			a := make(geom.Vector, dim)
			for j := range a {
				a[j] = rng.NormFloat64()
			}
			n := a.Norm()
			if n < 1e-9 {
				continue
			}
			for j := range a {
				a[j] /= n
			}
			row := geom.Constraint{A: a, B: rng.Float64()*0.5 - 0.05}
			rows = append(rows, row)
			g = g.Cut(row, dim)
			scratch := BuildCellGeom(rows, dim)
			if (g == nil) != (scratch == nil) {
				t.Fatalf("trial %d cut %d: incremental nil=%v, scratch nil=%v",
					trial, cut, g == nil, scratch == nil)
			}
			if g == nil {
				break
			}
			if len(g.Verts) != len(scratch.Verts) {
				t.Fatalf("trial %d cut %d: %d vertices incrementally, %d from scratch",
					trial, cut, len(g.Verts), len(scratch.Verts))
			}
			for _, v := range g.Verts {
				found := false
				for _, u := range scratch.Verts {
					if v.Equal(u) {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("trial %d: incremental vertex %v missing from scratch set", trial, v)
				}
			}
		}
	}
}

func TestEvalRangeClassification(t *testing.T) {
	g := BuildCellGeom(geom.SpaceBoundsTransformed(2), 2)
	// Hyperplane w1 = w2 cuts the simplex: eval range must straddle zero.
	h := geom.NewHyperplaneTransformed(0, geom.Vector{1, 0, 0}, geom.Vector{0, 1, 0})
	lo, hi := g.EvalRange(h)
	if !(lo < 0 && hi > 0) {
		t.Fatalf("cutting hyperplane classified [%g, %g]", lo, hi)
	}
	// A hyperplane far outside: strictly one-sided.
	far := geom.Hyperplane{ID: 1, Coef: geom.Vector{1, 0}, RHS: 5, Kind: geom.Proper}
	lo, hi = g.EvalRange(far)
	if hi >= 0 {
		t.Fatalf("far hyperplane classified [%g, %g], want all negative", lo, hi)
	}
}

// Tree-level invariant: every node with geometry agrees with from-scratch
// halfspace intersection of its path constraints.
func TestNodeGeometryMatchesPathConstraints(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	tr := newTestTree(2, 1<<30)
	for i := 0; i < 10; i++ {
		if err := tr.Insert(randHyperplane(rng, i, 3), nil); err != nil {
			t.Fatal(err)
		}
	}
	checked := 0
	tr.LiveLeaves(func(n *Node) bool {
		if n.Geom == nil {
			return true
		}
		poly, err := polytope.FromConstraints(tr.PathConstraints(n), tr.Dim, &lp.Stats{})
		if err != nil {
			t.Fatal(err)
		}
		if len(poly.Vertices) != len(n.Geom.Verts) {
			t.Fatalf("node geometry has %d vertices, scratch %d", len(n.Geom.Verts), len(poly.Vertices))
		}
		checked++
		return checked < 30
	})
	if checked == 0 {
		t.Fatal("no leaves carried geometry")
	}
}

func TestGeomDecidesCounted(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	tr := newTestTree(2, 1<<30)
	for i := 0; i < 12; i++ {
		if err := tr.Insert(randHyperplane(rng, i, 3), nil); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Stats.GeomDecides == 0 {
		t.Fatal("geometric classification never fired in 2-d")
	}
}
