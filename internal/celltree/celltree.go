// Package celltree implements the CellTree of §4: a binary tree that
// incrementally maintains the arrangement of record hyperplanes in
// preference space. Cells (leaves) are represented implicitly by the
// halfspaces along their root path; exact geometry is never computed during
// insertion. The insertion algorithm implements the three cases of §4.3,
// the inconsequential-halfspace elimination of Lemma 2 (feasibility tests
// see only root-path labels plus the space boundaries), the cached
// interior-point shortcut of §4.3.2, and the dominance-graph shortcut of
// P-CTA (Algorithm 2, optInsert).
//
// Insertion optionally fans out across goroutines: when a hyperplane cuts
// through an internal node (case III), its two child subtrees are disjoint,
// so with a Forks token budget attached the positive subtree is handed to a
// fresh goroutine while the current one descends the negative side. Each
// task carries its own DFS state, LP solver and counters, and joins merge
// child results in negative-before-positive order, so the resulting tree,
// the fresh-leaf order and every statistic are identical to a serial
// insert. Only one Insert may run at a time; parallelism is *within* an
// insertion, never across insertions.
package celltree

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/geom"
	"repro/internal/lp"
)

// sideTol is the tolerance for classifying a cached interior point against
// a new hyperplane. Points farther than this from the hyperplane prove that
// the corresponding side of the cell is non-empty.
const sideTol = 1e-9

// Node is a CellTree node. Leaves correspond to arrangement cells; internal
// nodes to unions of cells. Geometry is implicit: the cell is the
// intersection of the halfspaces labelling the edges from the root, and the
// cover set records halfspaces that fully contain the node (Lemma 2: those
// never bound it).
type Node struct {
	// Label is the halfspace on the edge from the parent; undefined for the
	// root (HasLabel false).
	Label    geom.Halfspace
	HasLabel bool

	Parent   *Node
	Neg, Pos *Node // children; both nil for a leaf

	// Cover holds halfspaces inserted after this node's creation that fully
	// contain it (cases I and II).
	Cover []geom.Halfspace

	// Pruned marks nodes whose rank exceeded the threshold (or whose
	// subtree died entirely). Reported marks leaves already emitted to the
	// result (progressive reporting); they take no further part in
	// processing but are not discarded.
	Pruned   bool
	Reported bool
	// closed caches "no live leaf below": Pruned/Reported, or both
	// children closed. It is atomic because sibling subtree tasks of a
	// parallel insert may close concurrently and race to propagate closure
	// through their shared ancestors.
	closed atomic.Bool

	// WStar is a cached strictly-interior point of the node's region
	// (§4.3.2); never nil for nodes created by a split.
	WStar geom.Vector

	// Geom is the node's exact geometry, maintained incrementally for
	// low-dimensional preference spaces (see geometry.go); nil when
	// unavailable, in which case all decisions use LP feasibility tests.
	Geom *CellGeom
}

// IsLeaf reports whether the node is a leaf (an arrangement cell).
func (n *Node) IsLeaf() bool { return n.Neg == nil && n.Pos == nil }

// Closed reports whether no live leaf remains below the node.
func (n *Node) Closed() bool { return n.closed.Load() }

// Stats counts CellTree activity; the paper reports several of these as
// side metrics (Figs. 11, 17).
type Stats struct {
	NodesCreated     int // total nodes ever created
	Splits           int // leaf splits (case III at a leaf)
	FeasibilityTests int // LP feasibility tests issued
	WStarSkips       int // case tests skipped thanks to a cached w*
	DomShortcuts     int // case II decided by the dominance graph
	GeomDecides      int // cases decided by exact vertex geometry
	ConstraintRows   int // total constraint rows across feasibility tests
}

// Add accumulates o into s; insertion tasks count into task-local Stats and
// merge them at joins, so totals equal a serial run's regardless of how the
// work was split.
func (s *Stats) Add(o Stats) {
	s.NodesCreated += o.NodesCreated
	s.Splits += o.Splits
	s.FeasibilityTests += o.FeasibilityTests
	s.WStarSkips += o.WStarSkips
	s.DomShortcuts += o.DomShortcuts
	s.GeomDecides += o.GeomDecides
	s.ConstraintRows += o.ConstraintRows
}

// Forks is the fork-token budget of a parallel tree operation: a tree with
// a Forks of n tokens may run up to n extra goroutines beyond the caller's.
// A single Forks may be shared by several trees — the batch engine in
// internal/core attaches one pool to every query of a batch, so insertion
// fan-out capacity freed by a finished query migrates to its siblings.
// Tokens are claimed with a non-blocking TryAcquire at case-III internal
// nodes — when none is free the subtree is processed inline, which makes
// the schedule adaptive (work-stealing in effect: idle capacity is soaked
// up by whichever task next reaches a fork point) without any queueing.
type Forks struct {
	tokens chan struct{}
}

// NewForks returns a budget of n extra-goroutine tokens; n <= 0 yields a
// budget that never grants (equivalent to a nil *Forks).
func NewForks(n int) *Forks {
	if n <= 0 {
		return nil
	}
	f := &Forks{tokens: make(chan struct{}, n)}
	for i := 0; i < n; i++ {
		f.tokens <- struct{}{}
	}
	return f
}

// TryAcquire claims a fork token without blocking; a nil receiver never
// grants.
func (f *Forks) TryAcquire() bool {
	if f == nil {
		return false
	}
	select {
	case <-f.tokens:
		return true
	default:
		return false
	}
}

// Release returns a token claimed by TryAcquire.
func (f *Forks) Release() {
	f.tokens <- struct{}{}
}

// Tree is a CellTree over a preference space of dimension Dim with boundary
// constraints Bounds. K is the pruning threshold: nodes whose rank exceeds
// K are eliminated.
type Tree struct {
	Dim    int
	Bounds []geom.Constraint
	K      int

	Root *Node

	// FreshLeaves collects leaves created since the last call to
	// TakeFreshLeaves; LP-CTA computes rank bounds for exactly these
	// (§6.4's batch strategy).
	FreshLeaves []*Node

	Stats   Stats
	LPStats *lp.Stats

	// Forks, when non-nil, lets Insert fan disjoint cell subtrees out
	// across extra goroutines (see the package comment); nil keeps
	// insertion single-threaded as in the paper.
	Forks *Forks

	// PrunedCells counts subtrees eliminated by the top-k rank bound
	// (Algorithm 1 lines 12-13 and look-ahead prunes). It is the one
	// counter insertion tasks share directly — a lock-free atomic rather
	// than a task-local merge — so concurrent subtree tasks and the
	// coordinating goroutine can all observe pruning progress live.
	PrunedCells atomic.Int64

	// solver is the root insertion task's reusable LP workspace; forked
	// tasks draw theirs from the package-level solver pool, so arenas
	// survive across forks and inserts instead of being rebuilt per task.
	solver *lp.Solver
}

// solverPool shares LP workspaces across every cell tree in the process:
// a tree lives for one kSPR query, and without the shared pool each
// query rebuilt its simplex arenas from scratch — a dominant source of
// GC pressure at large candidate counts.
var solverPool sync.Pool

// takeSolver hands a pooled task solver out, rebound to the task's stats.
func (t *Tree) takeSolver(stats *lp.Stats) *lp.Solver {
	if sv, ok := solverPool.Get().(*lp.Solver); ok {
		sv.SetStats(stats)
		return sv
	}
	return lp.NewSolver(stats)
}

// putSolver returns a task solver to the pool once its task has finished.
func (t *Tree) putSolver(sv *lp.Solver) {
	sv.SetStats(nil)
	solverPool.Put(sv)
}

// ReleaseSolvers returns the tree's root solver to the shared pool. Call
// it when the tree is done with insertions (end of query); the tree
// remains usable, lazily re-acquiring a solver if needed.
func (t *Tree) ReleaseSolvers() {
	if t.solver != nil {
		t.putSolver(t.solver)
		t.solver = nil
	}
}

// New creates a CellTree whose root covers the whole preference space.
// interior must be a strictly interior point of the space (e.g. the simplex
// barycenter); it seeds the root's cached w*.
func New(dim, k int, bounds []geom.Constraint, interior geom.Vector, lpStats *lp.Stats) *Tree {
	t := &Tree{
		Dim:     dim,
		Bounds:  bounds,
		K:       k,
		Root:    &Node{WStar: interior.Clone()},
		LPStats: lpStats,
	}
	if dim <= GeomMaxDim {
		t.Root.Geom = BuildCellGeom(bounds, dim)
	}
	t.Stats.NodesCreated = 1
	t.FreshLeaves = append(t.FreshLeaves, t.Root)
	if k <= 0 {
		t.Root.Pruned = true
		t.Root.closed.Store(true)
	}
	return t
}

// insertCtx carries the DFS state of one insertion task. The root Insert
// call owns one; every forked subtree task gets a deep copy of the
// path-dependent state plus fresh accumulators, so tasks never share
// mutable memory (the lone exceptions: the tree's atomic closure flags and
// the atomic prune counter).
type insertCtx struct {
	h geom.Hyperplane
	// domIDs are records known to dominate the record of h (nil for CTA);
	// if any of them contributes a negative halfspace on the current path,
	// h's negative halfspace covers the node (Lemma 4 / optInsert). Never
	// mutated during the insert, so tasks share it.
	domIDs map[int]bool
	// cons = Bounds + labels on the current path (the Lemma-2 constraint
	// set for the current node).
	cons []geom.Constraint
	// pos = number of positive halfspaces on the current path (labels and
	// cover sets above and including the current node as we descend).
	pos int
	// negIDs multiset of record IDs contributing negative halfspaces on the
	// current path.
	negIDs map[int]int
	// stats / lpStats are the task-local counters; solver the task's
	// reusable LP workspace (accounting into lpStats).
	stats   Stats
	lpStats lp.Stats
	solver  *lp.Solver
	// fresh collects the leaves this task created, in DFS order; joins
	// concatenate negative-side before positive-side so the merged order
	// equals the serial insertion order.
	fresh []*Node
}

// forkTask snapshots ctx for a subtree handed to another goroutine: the
// path state is deep-copied (the parent keeps pushing/popping its own) and
// the accumulators start empty. The caller attaches a pooled solver.
func (ctx *insertCtx) forkTask() *insertCtx {
	nc := &insertCtx{
		h:      ctx.h,
		domIDs: ctx.domIDs,
		cons:   append([]geom.Constraint(nil), ctx.cons...),
		pos:    ctx.pos,
		negIDs: make(map[int]int, len(ctx.negIDs)),
	}
	for id, n := range ctx.negIDs {
		nc.negIDs[id] = n
	}
	return nc
}

// join merges a finished subtree task back into its parent.
func (ctx *insertCtx) join(o *insertCtx) {
	ctx.stats.Add(o.stats)
	ctx.lpStats.Add(o.lpStats)
	ctx.fresh = append(ctx.fresh, o.fresh...)
}

// Insert adds the hyperplane h to the arrangement. domIDs optionally lists
// processed records that dominate h's record (P-CTA's dominance-graph
// shortcut); pass nil to disable. With t.Forks attached the insertion fans
// out over cell subtrees; the outcome is identical either way. Insert
// itself must not be called concurrently.
func (t *Tree) Insert(h geom.Hyperplane, domIDs map[int]bool) error {
	if h.Kind != geom.Proper {
		return fmt.Errorf("celltree: inserting non-proper hyperplane %v (kind %d)", h, h.Kind)
	}
	if t.Root.closed.Load() {
		return nil
	}
	ctx := &insertCtx{
		h:      h,
		domIDs: domIDs,
		cons:   append([]geom.Constraint(nil), t.Bounds...),
		negIDs: make(map[int]int),
	}
	if t.solver == nil {
		t.solver = t.takeSolver(nil)
	}
	t.solver.SetStats(&ctx.lpStats)
	ctx.solver = t.solver
	err := t.insert(t.Root, ctx)
	// Merge the task tree's accumulators (even on error: partial counts
	// mirror what a serial run would have recorded before failing).
	t.Stats.Add(ctx.stats)
	if t.LPStats != nil {
		t.LPStats.Add(ctx.lpStats)
	}
	t.FreshLeaves = append(t.FreshLeaves, ctx.fresh...)
	return err
}

func (t *Tree) insert(n *Node, ctx *insertCtx) error {
	if n.closed.Load() {
		return nil
	}
	// Push this node's label and cover set onto the DFS state.
	savedCons := len(ctx.cons)
	savedPos := ctx.pos
	pushedNeg := pushHalfspaces(ctx, n)
	defer func() {
		ctx.cons = ctx.cons[:savedCons]
		ctx.pos = savedPos
		for _, id := range pushedNeg {
			ctx.negIDs[id]--
			if ctx.negIDs[id] == 0 {
				delete(ctx.negIDs, id)
			}
		}
	}()

	// Rank-based elimination (Algorithm 1 lines 12-13).
	if 1+ctx.pos > t.K {
		t.kill(n)
		return nil
	}

	// Dominance-graph shortcut: a processed dominator's negative halfspace
	// on the path implies case II outright.
	if ctx.domIDs != nil {
		for id := range ctx.domIDs {
			if ctx.negIDs[id] > 0 {
				n.Cover = append(n.Cover, geom.Halfspace{H: ctx.h, Sign: geom.Negative})
				ctx.stats.DomShortcuts++
				return nil
			}
		}
	}

	var negWitness, posWitness geom.Vector
	negFeasible, posFeasible := false, false
	decided := false

	// Geometric classification: with the node's exact vertices at hand, the
	// hyperplane's side is read off the vertex evaluations in O(|Verts|).
	// Ambiguous margins fall through to the LP tests below.
	if n.Geom != nil {
		lo, hi := n.Geom.EvalRange(ctx.h)
		const margin = 10 * geomTol
		switch {
		case lo > margin:
			negFeasible, posFeasible, decided = false, true, true
			ctx.stats.GeomDecides++
		case hi < -margin:
			negFeasible, posFeasible, decided = true, false, true
			ctx.stats.GeomDecides++
		case lo < -margin && hi > margin:
			negFeasible, posFeasible, decided = true, true, true
			ctx.stats.GeomDecides++
		}
	}

	if !decided {
		// Classify against the cached interior point to skip one
		// feasibility test (§4.3.2).
		side := geom.Sign(0)
		if n.WStar != nil {
			side = ctx.h.Side(n.WStar, sideTol)
			if side != 0 {
				ctx.stats.WStarSkips++
			}
		}
		switch side {
		case geom.Negative:
			negFeasible, negWitness = true, n.WStar
			posFeasible, posWitness = t.testSide(ctx, geom.Positive)
		case geom.Positive:
			posFeasible, posWitness = true, n.WStar
			negFeasible, negWitness = t.testSide(ctx, geom.Negative)
		default:
			negFeasible, negWitness = t.testSide(ctx, geom.Negative)
			posFeasible, posWitness = t.testSide(ctx, geom.Positive)
			if n.WStar == nil {
				// Record the very first feasible witness (§4.3.2).
				if negFeasible {
					n.WStar = negWitness
				} else if posFeasible {
					n.WStar = posWitness
				}
			}
		}
	}

	switch {
	case !negFeasible && !posFeasible:
		// The node itself has zero extent; it should never have been
		// created. Defensive: kill it.
		t.kill(n)
		return nil
	case !negFeasible:
		// Case I: N inside h+.
		n.Cover = append(n.Cover, geom.Halfspace{H: ctx.h, Sign: geom.Positive})
		ctx.pos++ // account for the fresh positive before the rank check
		if 1+ctx.pos > t.K {
			t.kill(n)
		}
		return nil
	case !posFeasible:
		// Case II: N inside h-.
		n.Cover = append(n.Cover, geom.Halfspace{H: ctx.h, Sign: geom.Negative})
		return nil
	}

	// Case III: h cuts through N.
	if n.IsLeaf() {
		t.split(n, ctx, negWitness, posWitness)
		// The positive child starts with one more positive halfspace; prune
		// it immediately if it is already over budget.
		if 1+ctx.pos+1 > t.K {
			t.kill(n.Pos)
		}
		return nil
	}
	// The two child subtrees are disjoint: fan the positive side out to
	// another goroutine when a fork token is free, descend the negative
	// side here, and merge neg-before-pos so the result is order-identical
	// to the serial recursion.
	if t.Forks.TryAcquire() {
		posCtx := ctx.forkTask()
		posCtx.solver = t.takeSolver(&posCtx.lpStats)
		done := make(chan error, 1)
		go func() {
			defer t.Forks.Release()
			err := t.insert(n.Pos, posCtx)
			t.putSolver(posCtx.solver)
			done <- err
		}()
		negErr := t.insert(n.Neg, ctx)
		posErr := <-done
		ctx.join(posCtx)
		if negErr != nil {
			return negErr
		}
		if posErr != nil {
			return posErr
		}
	} else {
		if err := t.insert(n.Neg, ctx); err != nil {
			return err
		}
		if err := t.insert(n.Pos, ctx); err != nil {
			return err
		}
	}
	if n.Neg.closed.Load() && n.Pos.closed.Load() {
		n.closed.Store(true)
	}
	return nil
}

// pushHalfspaces folds n's label and cover set into the DFS state and
// returns the record IDs whose negative halfspaces were pushed.
func pushHalfspaces(ctx *insertCtx, n *Node) []int {
	var negPushed []int
	if n.HasLabel {
		ctx.cons = append(ctx.cons, n.Label.AsConstraint())
		if n.Label.Sign == geom.Positive {
			ctx.pos++
		} else {
			ctx.negIDs[n.Label.H.ID]++
			negPushed = append(negPushed, n.Label.H.ID)
		}
	}
	for _, hs := range n.Cover {
		if hs.Sign == geom.Positive {
			ctx.pos++
		} else {
			ctx.negIDs[hs.H.ID]++
			negPushed = append(negPushed, hs.H.ID)
		}
	}
	return negPushed
}

// testSide runs the Lemma-2 feasibility test for N ∩ h^sign on the task's
// own LP solver.
func (t *Tree) testSide(ctx *insertCtx, sign geom.Sign) (bool, geom.Vector) {
	hs := geom.Halfspace{H: ctx.h, Sign: sign}
	cons := append(ctx.cons, hs.AsConstraint())
	ctx.stats.FeasibilityTests++
	ctx.stats.ConstraintRows += len(cons)
	in, err := ctx.solver.FeasibleInterior(cons, t.Dim)
	if err != nil {
		// An LP failure here means severe numerical trouble; treat the side
		// as empty, which only makes the result coarser, never wrong for
		// well-conditioned inputs.
		return false, nil
	}
	return in.Feasible, in.Point
}

// split turns leaf n into an internal node with two children labelled h-
// and h+ (case III at a leaf; both sides are known non-empty, no test
// needed). Child geometry is derived from the parent's by one cut each;
// witnesses default to child centroids when geometry is available.
func (t *Tree) split(n *Node, ctx *insertCtx, negWitness, posWitness geom.Vector) {
	h := ctx.h
	n.Neg = &Node{
		Label:    geom.Halfspace{H: h, Sign: geom.Negative},
		HasLabel: true,
		Parent:   n,
		WStar:    negWitness,
	}
	n.Pos = &Node{
		Label:    geom.Halfspace{H: h, Sign: geom.Positive},
		HasLabel: true,
		Parent:   n,
		WStar:    posWitness,
	}
	if n.Geom != nil {
		n.Neg.Geom = n.Geom.Cut(n.Neg.Label.AsConstraint(), t.Dim)
		n.Pos.Geom = n.Geom.Cut(n.Pos.Label.AsConstraint(), t.Dim)
		if n.Neg.WStar == nil && n.Neg.Geom != nil {
			n.Neg.WStar = n.Neg.Geom.Centroid()
		}
		if n.Pos.WStar == nil && n.Pos.Geom != nil {
			n.Pos.WStar = n.Pos.Geom.Centroid()
		}
	}
	ctx.stats.NodesCreated += 2
	ctx.stats.Splits++
	ctx.fresh = append(ctx.fresh, n.Neg, n.Pos)
}

// kill prunes n's whole subtree and propagates closure upward.
func (t *Tree) kill(n *Node) {
	n.Pruned = true
	t.PrunedCells.Add(1)
	t.markClosed(n)
}

// Report marks a leaf as emitted to the result and propagates closure.
func (t *Tree) Report(n *Node) {
	n.Reported = true
	t.markClosed(n)
}

// Prune eliminates a node (and its subtree) from further consideration,
// e.g. when look-ahead rank bounds disqualify it (§6.1).
func (t *Tree) Prune(n *Node) { t.kill(n) }

// markClosed closes n and propagates closure up through ancestors whose
// both children are closed. Concurrent calls from sibling subtree tasks are
// safe: the stores are sequentially consistent, so whichever sibling's
// store lands last observes the other side closed and completes the
// propagation.
func (t *Tree) markClosed(n *Node) {
	n.closed.Store(true)
	for p := n.Parent; p != nil; p = p.Parent {
		if p.Neg.closed.Load() && p.Pos.closed.Load() {
			p.closed.Store(true)
		} else {
			break
		}
	}
}

// Done reports whether no live leaves remain.
func (t *Tree) Done() bool { return t.Root.closed.Load() }

// LiveLeaves calls fn for every leaf that is neither pruned nor reported.
// fn returning false stops the walk.
func (t *Tree) LiveLeaves(fn func(*Node) bool) {
	var walk func(n *Node) bool
	walk = func(n *Node) bool {
		if n.closed.Load() {
			return true
		}
		if n.IsLeaf() {
			if n.Pruned || n.Reported {
				return true
			}
			return fn(n)
		}
		return walk(n.Neg) && walk(n.Pos)
	}
	walk(t.Root)
}

// TakeFreshLeaves returns the live leaves created since the last call and
// resets the collection buffer.
func (t *Tree) TakeFreshLeaves() []*Node {
	fresh := t.FreshLeaves
	t.FreshLeaves = nil
	out := fresh[:0]
	for _, n := range fresh {
		if n.IsLeaf() && !n.closed.Load() {
			out = append(out, n)
		}
	}
	return out
}

// Rank computes the rank of node n: one plus the number of positive
// halfspaces among the labels and cover sets on the path from the root
// (Lemma 1 / Algorithm 1's Rank routine).
func (t *Tree) Rank(n *Node) int {
	pos := 0
	for cur := n; cur != nil; cur = cur.Parent {
		if cur.HasLabel && cur.Label.Sign == geom.Positive {
			pos++
		}
		for _, hs := range cur.Cover {
			if hs.Sign == geom.Positive {
				pos++
			}
		}
	}
	return 1 + pos
}

// PathConstraints returns the Lemma-2 constraint set of n: the space
// boundaries plus the halfspaces labelling the path from the root. This is
// the set used for feasibility tests, score bounds, and finalization.
func (t *Tree) PathConstraints(n *Node) []geom.Constraint {
	var labels []geom.Constraint
	for cur := n; cur != nil; cur = cur.Parent {
		if cur.HasLabel {
			labels = append(labels, cur.Label.AsConstraint())
		}
	}
	out := make([]geom.Constraint, 0, len(t.Bounds)+len(labels))
	out = append(out, t.Bounds...)
	for i := len(labels) - 1; i >= 0; i-- {
		out = append(out, labels[i])
	}
	return out
}

// FullHalfspaces returns every record halfspace covering n: path labels
// plus all cover sets from the root down (the full set c.Ψ of §4).
func (t *Tree) FullHalfspaces(n *Node) []geom.Halfspace {
	var rev []geom.Halfspace
	for cur := n; cur != nil; cur = cur.Parent {
		for i := len(cur.Cover) - 1; i >= 0; i-- {
			rev = append(rev, cur.Cover[i])
		}
		if cur.HasLabel {
			rev = append(rev, cur.Label)
		}
	}
	out := make([]geom.Halfspace, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		out = append(out, rev[i])
	}
	return out
}

// Pivots returns the IDs of records contributing negative halfspaces to
// n's full halfspace set (§5: the pivots of the cell).
func (t *Tree) Pivots(n *Node) []int {
	var ids []int
	seen := map[int]bool{}
	for _, hs := range t.FullHalfspaces(n) {
		if hs.Sign == geom.Negative && !seen[hs.H.ID] {
			seen[hs.H.ID] = true
			ids = append(ids, hs.H.ID)
		}
	}
	return ids
}

// NonPivots returns the IDs of records contributing positive halfspaces to
// n's full halfspace set.
func (t *Tree) NonPivots(n *Node) []int {
	var ids []int
	seen := map[int]bool{}
	for _, hs := range t.FullHalfspaces(n) {
		if hs.Sign == geom.Positive && !seen[hs.H.ID] {
			seen[hs.H.ID] = true
			ids = append(ids, hs.H.ID)
		}
	}
	return ids
}

// CountNodes returns the number of nodes currently in the tree (live and
// dead); the paper plots this as "nodes in CellTree" (Fig. 11b).
func (t *Tree) CountNodes() int {
	count := 0
	var walk func(n *Node)
	walk = func(n *Node) {
		if n == nil {
			return
		}
		count++
		walk(n.Neg)
		walk(n.Pos)
	}
	walk(t.Root)
	return count
}
