package celltree

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/lp"
)

func benchInsertions(b *testing.B, d, m, k int) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	planes := make([]geom.Hyperplane, m)
	for i := range planes {
		planes[i] = randHyperplane(rng, i, d)
	}
	dim := d - 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := New(dim, k, geom.SpaceBoundsTransformed(dim), geom.SimplexCenter(dim), &lp.Stats{})
		for _, h := range planes {
			if err := tr.Insert(h, nil); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkInsert_d3_m50_k5(b *testing.B)   { benchInsertions(b, 3, 50, 5) }
func BenchmarkInsert_d4_m50_k5(b *testing.B)   { benchInsertions(b, 4, 50, 5) }
func BenchmarkInsert_d4_m100_k10(b *testing.B) { benchInsertions(b, 4, 100, 10) }
