package celltree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/lp"
)

// newTestTree builds a CellTree over the transformed preference space of
// dimension dim with pruning threshold k.
func newTestTree(dim, k int) *Tree {
	return New(dim, k, geom.SpaceBoundsTransformed(dim), geom.SimplexCenter(dim), &lp.Stats{})
}

// randHyperplane produces a proper hyperplane from two random records.
func randHyperplane(rng *rand.Rand, id, d int) geom.Hyperplane {
	for {
		r := make(geom.Vector, d)
		p := make(geom.Vector, d)
		for j := 0; j < d; j++ {
			r[j] = rng.Float64()
			p[j] = rng.Float64()
		}
		h := geom.NewHyperplaneTransformed(id, r, p)
		if h.Kind == geom.Proper {
			return h
		}
	}
}

func TestNewTree(t *testing.T) {
	tr := newTestTree(2, 3)
	if tr.Done() {
		t.Fatal("fresh tree reports done")
	}
	if tr.CountNodes() != 1 {
		t.Fatalf("CountNodes = %d", tr.CountNodes())
	}
	if got := tr.Rank(tr.Root); got != 1 {
		t.Fatalf("root rank %d, want 1", got)
	}
}

func TestNewTreeWithNonPositiveK(t *testing.T) {
	tr := newTestTree(2, 0)
	if !tr.Done() {
		t.Fatal("k=0 tree should start closed")
	}
}

func TestInsertRejectsNonProper(t *testing.T) {
	tr := newTestTree(2, 3)
	h := geom.Hyperplane{Kind: geom.AlwaysPositive}
	if err := tr.Insert(h, nil); err == nil {
		t.Fatal("expected error for non-proper hyperplane")
	}
}

// countLiveLeaves is a helper.
func countLiveLeaves(tr *Tree) int {
	n := 0
	tr.LiveLeaves(func(*Node) bool { n++; return true })
	return n
}

func TestSingleSplit(t *testing.T) {
	tr := newTestTree(2, 10)
	// Hyperplane w1 = w2 cuts the simplex.
	h := geom.NewHyperplaneTransformed(0, geom.Vector{1, 0, 0}, geom.Vector{0, 1, 0})
	if h.Kind != geom.Proper {
		t.Fatalf("unexpected kind %v", h.Kind)
	}
	if err := tr.Insert(h, nil); err != nil {
		t.Fatal(err)
	}
	if got := countLiveLeaves(tr); got != 2 {
		t.Fatalf("live leaves = %d, want 2", got)
	}
	if tr.Stats.Splits != 1 {
		t.Fatalf("Splits = %d", tr.Stats.Splits)
	}
	// Children carry interior witnesses on the right sides.
	neg, pos := tr.Root.Neg, tr.Root.Pos
	if neg.WStar == nil || pos.WStar == nil {
		t.Fatal("children missing w*")
	}
	if h.Side(neg.WStar, 0) != geom.Negative {
		t.Fatalf("neg child w* %v on wrong side", neg.WStar)
	}
	if h.Side(pos.WStar, 0) != geom.Positive {
		t.Fatalf("pos child w* %v on wrong side", pos.WStar)
	}
}

func TestCoverSetWhenHyperplaneMissesSpace(t *testing.T) {
	tr := newTestTree(2, 10)
	// A record much better than p in every dimension (but not a constant
	// shift): its negative halfspace misses the preference space entirely,
	// so case I applies at the root.
	h := geom.NewHyperplaneTransformed(0, geom.Vector{5, 6, 7}, geom.Vector{0.1, 0.2, 0.1})
	if err := tr.Insert(h, nil); err != nil {
		t.Fatal(err)
	}
	if tr.Root.Neg != nil {
		t.Fatal("root should not have split")
	}
	if len(tr.Root.Cover) != 1 || tr.Root.Cover[0].Sign != geom.Positive {
		t.Fatalf("cover = %v, want one positive halfspace", tr.Root.Cover)
	}
	if got := tr.Rank(tr.Root); got != 2 {
		t.Fatalf("root rank %d, want 2", got)
	}
}

// Oracle check: after inserting hyperplanes, the rank of the leaf
// containing any random interior w equals 1 + (number of positive sides w
// lies on), and the leaf's path constraints contain w.
func TestLeafRanksMatchBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 10; trial++ {
		d := 3 + rng.Intn(2) // data dim 3 or 4, pref dim 2 or 3
		dim := d - 1
		tr := New(dim, 1<<30, geom.SpaceBoundsTransformed(dim), geom.SimplexCenter(dim), &lp.Stats{})
		var hs []geom.Hyperplane
		for i := 0; i < 12; i++ {
			h := randHyperplane(rng, i, d)
			hs = append(hs, h)
			if err := tr.Insert(h, nil); err != nil {
				t.Fatal(err)
			}
		}
		// Sample random interior points and locate their leaf by walking.
		for s := 0; s < 100; s++ {
			w := randSimplexPoint(rng, dim)
			onBoundary := false
			want := 1
			for _, h := range hs {
				switch h.Side(w, 1e-9) {
				case geom.Positive:
					want++
				case 0:
					onBoundary = true
				}
			}
			if onBoundary {
				continue
			}
			leaf := locate(tr, w)
			if leaf == nil {
				t.Fatalf("no leaf contains %v", w)
			}
			if got := tr.Rank(leaf); got != want {
				t.Fatalf("trial %d: rank at %v = %d, want %d", trial, w, got, want)
			}
			for _, c := range tr.PathConstraints(leaf) {
				if !c.Holds(w, 1e-9) {
					t.Fatalf("leaf constraints exclude the point that led there")
				}
			}
		}
	}
}

// locate walks the tree structure following sides of w.
func locate(tr *Tree, w geom.Vector) *Node {
	n := tr.Root
	for !n.IsLeaf() {
		if n.Neg.Label.H.Side(w, 0) == geom.Negative {
			n = n.Neg
		} else {
			n = n.Pos
		}
	}
	return n
}

func randSimplexPoint(rng *rand.Rand, dim int) geom.Vector {
	raw := make([]float64, dim+1)
	var sum float64
	for i := range raw {
		raw[i] = rng.ExpFloat64() + 1e-9
		sum += raw[i]
	}
	w := make(geom.Vector, dim)
	for i := range w {
		w[i] = raw[i] / sum
	}
	return w
}

func TestPruningEliminatesHighRankCells(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d := 3
	k := 2
	tr := newTestTree(d-1, k)
	var hs []geom.Hyperplane
	for i := 0; i < 15; i++ {
		h := randHyperplane(rng, i, d)
		hs = append(hs, h)
		if err := tr.Insert(h, nil); err != nil {
			t.Fatal(err)
		}
	}
	// All surviving leaves must have rank <= k; and for random interior
	// points with brute-force rank <= k, the containing leaf must be alive.
	tr.LiveLeaves(func(n *Node) bool {
		if r := tr.Rank(n); r > k {
			t.Fatalf("live leaf with rank %d > k=%d", r, k)
		}
		return true
	})
	for s := 0; s < 200; s++ {
		w := randSimplexPoint(rng, d-1)
		want := 1
		boundary := false
		for _, h := range hs {
			switch h.Side(w, 1e-9) {
			case geom.Positive:
				want++
			case 0:
				boundary = true
			}
		}
		if boundary || want > k {
			continue
		}
		leaf := locate(tr, w)
		if leaf.Pruned {
			t.Fatalf("point %v with rank %d lies in a pruned leaf", w, want)
		}
	}
}

func TestDominanceShortcut(t *testing.T) {
	d := 3
	tr := newTestTree(d-1, 100)
	p := geom.Vector{0.5, 0.5, 0.5}
	// r1 is incomparable to p; r2 is dominated by r1.
	r1 := geom.Vector{0.9, 0.4, 0.5}
	r2 := geom.Vector{0.85, 0.35, 0.45}
	h1 := geom.NewHyperplaneTransformed(1, r1, p)
	h2 := geom.NewHyperplaneTransformed(2, r2, p)
	if err := tr.Insert(h1, nil); err != nil {
		t.Fatal(err)
	}
	before := tr.Stats.DomShortcuts
	if err := tr.Insert(h2, map[int]bool{1: true}); err != nil {
		t.Fatal(err)
	}
	if tr.Stats.DomShortcuts <= before {
		t.Fatal("dominance shortcut never fired")
	}
	// Wherever r1's negative halfspace covers a node, r2's must too; ranks
	// of live leaves must match brute force.
	rng := rand.New(rand.NewSource(3))
	for s := 0; s < 200; s++ {
		w := randSimplexPoint(rng, d-1)
		want := 1
		boundary := false
		for _, h := range []geom.Hyperplane{h1, h2} {
			switch h.Side(w, 1e-9) {
			case geom.Positive:
				want++
			case 0:
				boundary = true
			}
		}
		if boundary {
			continue
		}
		leaf := locate(tr, w)
		if got := tr.Rank(leaf); got != want {
			t.Fatalf("rank at %v = %d, want %d", w, got, want)
		}
	}
}

func TestWStarSkipsReduceTests(t *testing.T) {
	// Use a preference space above GeomMaxDim so the geometric classifier
	// stands down and the w* / LP machinery is exercised.
	rng := rand.New(rand.NewSource(11))
	d := GeomMaxDim + 2 // data dimensionality d, preference dim d-1 > GeomMaxDim
	tr := newTestTree(d-1, 1<<30)
	for i := 0; i < 10; i++ {
		if err := tr.Insert(randHyperplane(rng, i, d), nil); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Stats.WStarSkips == 0 {
		t.Fatal("w* shortcut never fired across 10 insertions")
	}
	if tr.Stats.FeasibilityTests == 0 {
		t.Fatal("LP feasibility tests never ran above GeomMaxDim")
	}
}

func TestReportClosesLeaf(t *testing.T) {
	tr := newTestTree(2, 10)
	h := geom.NewHyperplaneTransformed(0, geom.Vector{1, 0, 0}, geom.Vector{0, 1, 0})
	if err := tr.Insert(h, nil); err != nil {
		t.Fatal(err)
	}
	var leaves []*Node
	tr.LiveLeaves(func(n *Node) bool { leaves = append(leaves, n); return true })
	tr.Report(leaves[0])
	if got := countLiveLeaves(tr); got != 1 {
		t.Fatalf("live leaves after report = %d, want 1", got)
	}
	tr.Report(leaves[1])
	if !tr.Done() {
		t.Fatal("tree with all leaves reported should be done")
	}
	// Inserting into a done tree is a no-op.
	if err := tr.Insert(geom.NewHyperplaneTransformed(1, geom.Vector{0.3, 0.9, 0.1}, geom.Vector{0.5, 0.5, 0.5}), nil); err != nil {
		t.Fatal(err)
	}
	if tr.Stats.Splits != 1 {
		t.Fatal("insertion into done tree had an effect")
	}
}

func TestTakeFreshLeaves(t *testing.T) {
	tr := newTestTree(2, 10)
	fresh := tr.TakeFreshLeaves()
	if len(fresh) != 1 || fresh[0] != tr.Root {
		t.Fatalf("initial fresh leaves = %v", fresh)
	}
	h := geom.NewHyperplaneTransformed(0, geom.Vector{1, 0, 0}, geom.Vector{0, 1, 0})
	if err := tr.Insert(h, nil); err != nil {
		t.Fatal(err)
	}
	fresh = tr.TakeFreshLeaves()
	if len(fresh) != 2 {
		t.Fatalf("fresh leaves after split = %d, want 2", len(fresh))
	}
	if got := tr.TakeFreshLeaves(); len(got) != 0 {
		t.Fatalf("fresh leaves not cleared: %v", got)
	}
}

func TestPivotsAndNonPivots(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	tr := newTestTree(2, 1<<30)
	var hs []geom.Hyperplane
	for i := 0; i < 8; i++ {
		h := randHyperplane(rng, i, 3)
		hs = append(hs, h)
		if err := tr.Insert(h, nil); err != nil {
			t.Fatal(err)
		}
	}
	tr.LiveLeaves(func(n *Node) bool {
		w := n.WStar
		if w == nil {
			// Root-only tree or untested node; skip.
			return true
		}
		pivots := map[int]bool{}
		for _, id := range tr.Pivots(n) {
			pivots[id] = true
		}
		nonPivots := map[int]bool{}
		for _, id := range tr.NonPivots(n) {
			nonPivots[id] = true
		}
		for _, h := range hs {
			side := h.Side(w, 1e-9)
			if side == geom.Negative && !pivots[h.ID] {
				t.Fatalf("h%d negative at leaf w* but not a pivot", h.ID)
			}
			if side == geom.Positive && !nonPivots[h.ID] {
				t.Fatalf("h%d positive at leaf w* but not a non-pivot", h.ID)
			}
		}
		return true
	})
}

func TestFullHalfspacesCoverEveryInsertedHyperplane(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	tr := newTestTree(2, 1<<30)
	const m = 10
	for i := 0; i < m; i++ {
		if err := tr.Insert(randHyperplane(rng, i, 3), nil); err != nil {
			t.Fatal(err)
		}
	}
	tr.LiveLeaves(func(n *Node) bool {
		seen := map[int]bool{}
		for _, hs := range tr.FullHalfspaces(n) {
			seen[hs.H.ID] = true
		}
		if len(seen) != m {
			t.Fatalf("leaf sees %d distinct hyperplanes, want %d", len(seen), m)
		}
		return true
	})
}

func TestStatsAccumulate(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	// Low dimension: geometry decides cases.
	tr := newTestTree(2, 1<<30)
	for i := 0; i < 6; i++ {
		if err := tr.Insert(randHyperplane(rng, i, 3), nil); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Stats.GeomDecides == 0 {
		t.Fatalf("geometric decisions not collected: %+v", tr.Stats)
	}
	if tr.CountNodes() != tr.Stats.NodesCreated {
		t.Fatalf("CountNodes %d != NodesCreated %d", tr.CountNodes(), tr.Stats.NodesCreated)
	}
	// High dimension: the LP machinery carries the stats.
	d := GeomMaxDim + 2
	tr = newTestTree(d-1, 1<<30)
	for i := 0; i < 6; i++ {
		if err := tr.Insert(randHyperplane(rng, i, d), nil); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Stats.FeasibilityTests == 0 || tr.Stats.ConstraintRows == 0 {
		t.Fatalf("stats not collected: %+v", tr.Stats)
	}
	if tr.LPStats.Solves == 0 {
		t.Fatal("LP stats not threaded through")
	}
}

// Insertion order must not change the semantics of the maintained
// arrangement: for any weight vector, the rank read off the tree is the
// same regardless of the order hyperplanes arrived in.
func TestInsertionOrderInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	d := 3
	var hs []geom.Hyperplane
	for i := 0; i < 10; i++ {
		hs = append(hs, randHyperplane(rng, i, d))
	}
	build := func(order []int) *Tree {
		tr := newTestTree(d-1, 1<<30)
		for _, idx := range order {
			if err := tr.Insert(hs[idx], nil); err != nil {
				t.Fatal(err)
			}
		}
		return tr
	}
	fwd := make([]int, len(hs))
	rev := make([]int, len(hs))
	for i := range hs {
		fwd[i] = i
		rev[i] = len(hs) - 1 - i
	}
	shuf := append([]int(nil), fwd...)
	rng.Shuffle(len(shuf), func(i, j int) { shuf[i], shuf[j] = shuf[j], shuf[i] })

	trees := []*Tree{build(fwd), build(rev), build(shuf)}
	for s := 0; s < 300; s++ {
		w := randSimplexPoint(rng, d-1)
		onBoundary := false
		for _, h := range hs {
			if h.Side(w, 1e-9) == 0 {
				onBoundary = true
			}
		}
		if onBoundary {
			continue
		}
		want := trees[0].Rank(locate(trees[0], w))
		for ti, tr := range trees[1:] {
			if got := tr.Rank(locate(tr, w)); got != want {
				t.Fatalf("order %d: rank %d at %v, want %d", ti+1, got, w, want)
			}
		}
	}
}

// Property (testing/quick): for random records, the rank read off the tree
// at its own leaves' interior witnesses matches a brute-force score count.
func TestQuickTreeRankAtWitnesses(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	f := func(seed int64) bool {
		local := rand.New(rand.NewSource(seed))
		d := 3
		p := geom.Vector{local.Float64(), local.Float64(), local.Float64()}
		tr := newTestTree(d-1, 1<<30)
		var recs []geom.Vector
		for i := 0; i < 8; i++ {
			r := geom.Vector{local.Float64(), local.Float64(), local.Float64()}
			h := geom.NewHyperplaneTransformed(i, r, p)
			if h.Kind != geom.Proper {
				continue
			}
			recs = append(recs, r)
			if err := tr.Insert(h, nil); err != nil {
				return false
			}
		}
		ok := true
		tr.LiveLeaves(func(n *Node) bool {
			if n.WStar == nil {
				return true
			}
			w := geom.Lift(n.WStar)
			want := 1
			for _, r := range recs {
				if r.Dot(w) > p.Dot(w) {
					want++
				}
			}
			if tr.Rank(n) != want {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}
