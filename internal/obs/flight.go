package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Capture kinds: why a wide event made it into the flight ring.
const (
	// CaptureError marks requests that finished with status >= 400
	// (including 429 backpressure) — always captured.
	CaptureError = "error"
	// CaptureSlow marks requests at or above the slow threshold — always
	// captured.
	CaptureSlow = "slow"
	// CaptureSampled marks the per-endpoint 1-in-N sample of ordinary
	// requests that keeps the ring representative of normal traffic.
	CaptureSampled = "sampled"
)

// WideEvent is one request's flight-recorder record: everything needed to
// reconstruct what the request was, what it decided, and where its time
// went — without having flagged it in advance. Stats is an arbitrary
// JSON-marshalable payload owned by the serving layer (engine counters,
// cache decisions); Phases is the engine trace breakdown when one was
// recorded.
type WideEvent struct {
	Time       time.Time `json:"time"`
	RequestID  string    `json:"request_id,omitempty"`
	Endpoint   string    `json:"endpoint"`
	Method     string    `json:"method,omitempty"`
	Path       string    `json:"path,omitempty"`
	Dataset    string    `json:"dataset,omitempty"`
	Generation uint64    `json:"generation,omitempty"`
	Status     int       `json:"status"`
	LatencyNs  int64     `json:"latency_ns"`
	// Kind is the capture reason: error, slow, or sampled.
	Kind string `json:"kind"`
	// Cached reports whether the result came from the result cache; Error
	// carries the response's error text for status >= 400.
	Cached bool   `json:"cached,omitempty"`
	Error  string `json:"error,omitempty"`
	// Stats is the serving layer's per-request decision record (engine
	// counters, parallelism grants, ...). Any JSON-marshalable value.
	Stats any `json:"stats,omitempty"`
	// Phases is the engine phase breakdown (nil when no trace ran).
	Phases []Phase `json:"phases,omitempty"`
}

// flightStripes shards the ring so concurrent captures do not serialize
// on one lock. Must be a power of two (stripe pick is a mask).
const flightStripes = 8

// DefaultFlightCapacity is the ring's total wide-event capacity.
const DefaultFlightCapacity = 256

// DefaultFlightSampleEvery is the per-endpoint normal-traffic sampling
// period: one ordinary (non-error, non-slow) request in this many is
// captured.
const DefaultFlightSampleEvery = 64

// flightStripe is one shard of the ring. Events overwrite oldest-first
// within the stripe, so the union of the stripes holds approximately the
// most recent `capacity` captured events.
type flightStripe struct {
	mu   sync.Mutex
	buf  []WideEvent
	next int
	n    int
	_    [64]byte // keep neighboring stripe locks off one cache line
}

// FlightRecorder is the always-on tail-sampling request recorder: every
// request is offered to ShouldCapture, which keeps all errors, everything
// over the slow threshold, and a per-endpoint 1-in-N sample of normals.
// The decision path for a dropped request is one lock-free map lookup plus
// one atomic increment, so leaving the recorder on costs ordinary traffic
// essentially nothing. All methods are safe on a nil receiver (recorder
// disabled).
type FlightRecorder struct {
	slow        time.Duration
	sampleEvery uint64
	stripePick  atomic.Uint64
	stripes     [flightStripes]flightStripe
	samplers    sync.Map // endpoint string -> *atomic.Uint64
	captured    atomic.Uint64
	dropped     atomic.Uint64
}

// NewFlightRecorder sizes the ring to capacity total events (0 selects
// DefaultFlightCapacity, minimum flightStripes), marks requests at or
// above slow as slow-captured, and samples one in sampleEvery ordinary
// requests per endpoint (0 selects DefaultFlightSampleEvery; negative
// disables normal-traffic sampling entirely).
func NewFlightRecorder(capacity int, slow time.Duration, sampleEvery int) *FlightRecorder {
	if capacity <= 0 {
		capacity = DefaultFlightCapacity
	}
	if capacity < flightStripes {
		capacity = flightStripes
	}
	every := uint64(sampleEvery)
	if sampleEvery == 0 {
		every = DefaultFlightSampleEvery
	} else if sampleEvery < 0 {
		every = 0
	}
	f := &FlightRecorder{slow: slow, sampleEvery: every}
	per := capacity / flightStripes
	if capacity%flightStripes != 0 {
		per++
	}
	for i := range f.stripes {
		f.stripes[i].buf = make([]WideEvent, per)
	}
	return f
}

// Enabled reports whether the recorder exists (nil-safe).
func (f *FlightRecorder) Enabled() bool { return f != nil }

// ShouldCapture decides one finished request's fate: the capture kind and
// whether to record it at all. Errors (status >= 400) and slow requests
// always capture; everything else captures once per sampleEvery requests
// of its endpoint. The drop path — the overwhelmingly common outcome — is
// one sync.Map load and one atomic add.
func (f *FlightRecorder) ShouldCapture(endpoint string, status int, latency time.Duration) (string, bool) {
	if f == nil {
		return "", false
	}
	if status >= 400 {
		return CaptureError, true
	}
	if f.slow > 0 && latency >= f.slow {
		return CaptureSlow, true
	}
	if f.sampleEvery == 0 {
		f.dropped.Add(1)
		return "", false
	}
	if f.sampleEvery == 1 {
		return CaptureSampled, true
	}
	ctr, ok := f.samplers.Load(endpoint)
	if !ok {
		ctr, _ = f.samplers.LoadOrStore(endpoint, new(atomic.Uint64))
	}
	if ctr.(*atomic.Uint64).Add(1)%f.sampleEvery == 1 {
		return CaptureSampled, true
	}
	f.dropped.Add(1)
	return "", false
}

// Record appends one wide event to the ring, overwriting the stripe's
// oldest entry when full.
func (f *FlightRecorder) Record(ev WideEvent) {
	if f == nil {
		return
	}
	f.captured.Add(1)
	st := &f.stripes[f.stripePick.Add(1)&(flightStripes-1)]
	st.mu.Lock()
	st.buf[st.next] = ev
	st.next = (st.next + 1) % len(st.buf)
	if st.n < len(st.buf) {
		st.n++
	}
	st.mu.Unlock()
}

// FlightFilter narrows an Events read. Zero values mean "no constraint".
type FlightFilter struct {
	// Endpoint / Dataset select events matching exactly.
	Endpoint string
	Dataset  string
	// MinLatency keeps only events at least this slow; ErrorsOnly only
	// status >= 400.
	MinLatency time.Duration
	ErrorsOnly bool
	// Limit caps the result count, keeping the MOST RECENT events (0 = all).
	Limit int
}

// Events returns the retained wide events matching the filter, oldest
// first. The returned slice is a copy; Stats payloads are shared (treat
// them as immutable).
func (f *FlightRecorder) Events(filter FlightFilter) []WideEvent {
	if f == nil {
		return nil
	}
	var out []WideEvent
	for i := range f.stripes {
		st := &f.stripes[i]
		st.mu.Lock()
		// Oldest-first within the stripe: the slot after next (when full)
		// is the oldest entry.
		for k := 0; k < st.n; k++ {
			idx := k
			if st.n == len(st.buf) {
				idx = (st.next + k) % len(st.buf)
			}
			ev := st.buf[idx]
			if matchFlight(&ev, &filter) {
				out = append(out, ev)
			}
		}
		st.mu.Unlock()
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Time.Before(out[j].Time) })
	if filter.Limit > 0 && len(out) > filter.Limit {
		out = out[len(out)-filter.Limit:]
	}
	return out
}

func matchFlight(ev *WideEvent, f *FlightFilter) bool {
	if f.Endpoint != "" && ev.Endpoint != f.Endpoint {
		return false
	}
	if f.Dataset != "" && ev.Dataset != f.Dataset {
		return false
	}
	if f.MinLatency > 0 && time.Duration(ev.LatencyNs) < f.MinLatency {
		return false
	}
	if f.ErrorsOnly && ev.Status < 400 {
		return false
	}
	return true
}

// FlightStats reports the recorder's lifetime capture economy.
type FlightStats struct {
	Captured uint64 `json:"captured_total"`
	Dropped  uint64 `json:"dropped_total"`
}

// Stats returns capture/drop totals since start (zero on nil).
func (f *FlightRecorder) Stats() FlightStats {
	if f == nil {
		return FlightStats{}
	}
	return FlightStats{Captured: f.captured.Load(), Dropped: f.dropped.Load()}
}
