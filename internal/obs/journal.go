package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Journal event types: the server lifecycle moments worth correlating
// against captured slow requests.
const (
	// EventWALRecovery records a dataset's WAL replay at open/recover time.
	EventWALRecovery = "wal_recovery"
	// EventSnapshotWrite records a store snapshot + WAL truncation.
	EventSnapshotWrite = "snapshot_write"
	// EventIndexWarm / EventIndexCold record the candidate-index decision
	// made while opening a durable dataset.
	EventIndexWarm = "index_warm"
	EventIndexCold = "index_cold"
	// EventDatasetLoad / EventDatasetUnload record registry membership
	// changes.
	EventDatasetLoad   = "dataset_load"
	EventDatasetUnload = "dataset_unload"
	// EventMutationBatch records an applied :mutate batch.
	EventMutationBatch = "mutation_batch"
	// EventCacheMigration records a post-mutation cache migration sweep.
	EventCacheMigration = "cache_migration"
	// EventCPUBudgetExhausted records a 429 issued because the CPU budget
	// could not cover a request's required parallelism.
	EventCPUBudgetExhausted = "cpu_budget_exhausted"
	// EventBlackBox records a black-box bundle write (panic/SIGQUIT).
	EventBlackBox = "black_box"
	// EventSLOBurn / EventSLOResolve record an SLO starting and stopping
	// an active burn-rate breach, tagged with the dataset generation in
	// force so the breach joins against captured flight evidence.
	EventSLOBurn    = "slo_burn"
	EventSLOResolve = "slo_resolved"
)

// JournalEvent is one server lifecycle event. Seq is a journal-wide
// monotonic sequence number; Generation/StoreGeneration carry the dataset
// generation tokens in force when the event fired, so a captured request
// (which records its own generation) can be joined against the journal.
type JournalEvent struct {
	Seq             uint64         `json:"seq"`
	Time            time.Time      `json:"time"`
	Type            string         `json:"type"`
	Dataset         string         `json:"dataset,omitempty"`
	Generation      uint64         `json:"generation,omitempty"`
	StoreGeneration uint64         `json:"store_generation,omitempty"`
	Detail          map[string]any `json:"detail,omitempty"`
}

// DefaultJournalCapacity bounds the journal ring. Lifecycle events are
// rare (per mutation batch / snapshot / load, not per request), so a few
// hundred covers hours of typical operation.
const DefaultJournalCapacity = 512

// Journal is a bounded in-memory ring of lifecycle events with monotonic
// sequence numbers. Appends are rare relative to request traffic, so a
// single mutex suffices. All methods are nil-safe (journal disabled).
type Journal struct {
	seq  atomic.Uint64
	mu   sync.Mutex
	buf  []JournalEvent
	next int
	n    int
}

// NewJournal creates a journal retaining the most recent capacity events
// (0 selects DefaultJournalCapacity).
func NewJournal(capacity int) *Journal {
	if capacity <= 0 {
		capacity = DefaultJournalCapacity
	}
	return &Journal{buf: make([]JournalEvent, capacity)}
}

// Append records one event, assigning its sequence number and timestamp,
// and returns the assigned sequence. The event's Seq/Time fields are
// overwritten. Returns 0 on a nil journal.
func (j *Journal) Append(ev JournalEvent) uint64 {
	if j == nil {
		return 0
	}
	ev.Seq = j.seq.Add(1)
	ev.Time = time.Now()
	j.mu.Lock()
	j.buf[j.next] = ev
	j.next = (j.next + 1) % len(j.buf)
	if j.n < len(j.buf) {
		j.n++
	}
	j.mu.Unlock()
	return ev.Seq
}

// LastSeq returns the most recently assigned sequence number (0 when
// empty or nil).
func (j *Journal) LastSeq() uint64 {
	if j == nil {
		return 0
	}
	return j.seq.Load()
}

// Since returns up to limit retained events with Seq > after, in sequence
// order (limit <= 0 means all). Events evicted from the ring are gone; the
// caller can detect a gap by comparing the first returned Seq to after+1.
func (j *Journal) Since(after uint64, limit int) []JournalEvent {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	out := make([]JournalEvent, 0, j.n)
	for k := 0; k < j.n; k++ {
		idx := k
		if j.n == len(j.buf) {
			idx = (j.next + k) % len(j.buf)
		}
		if j.buf[idx].Seq > after {
			out = append(out, j.buf[idx])
		}
	}
	j.mu.Unlock()
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}

// Snapshot returns every retained event in sequence order.
func (j *Journal) Snapshot() []JournalEvent {
	return j.Since(0, 0)
}
