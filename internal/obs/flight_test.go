package obs

import (
	"testing"
	"time"
)

func TestFlightNilSafe(t *testing.T) {
	var f *FlightRecorder
	if f.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	if kind, ok := f.ShouldCapture("kspr", 500, time.Second); ok || kind != "" {
		t.Fatalf("nil ShouldCapture = %q, %v", kind, ok)
	}
	f.Record(WideEvent{Endpoint: "kspr"})
	if got := f.Events(FlightFilter{}); got != nil {
		t.Fatalf("nil Events = %v, want nil", got)
	}
	if s := f.Stats(); s != (FlightStats{}) {
		t.Fatalf("nil Stats = %+v, want zero", s)
	}
}

func TestFlightCapturePolicy(t *testing.T) {
	cases := []struct {
		name        string
		sampleEvery int
		status      int
		latency     time.Duration
		wantKind    string
		wantOK      bool
	}{
		{"server error", 64, 500, time.Millisecond, CaptureError, true},
		{"not found", 64, 404, time.Millisecond, CaptureError, true},
		{"backpressure 429", 64, 429, time.Millisecond, CaptureError, true},
		{"slow at threshold", 64, 200, 100 * time.Millisecond, CaptureSlow, true},
		{"slow above threshold", 64, 200, time.Second, CaptureSlow, true},
		{"first normal sampled", 64, 200, time.Millisecond, CaptureSampled, true},
		{"every normal when N=1", 1, 200, time.Millisecond, CaptureSampled, true},
		{"sampling disabled", -1, 200, time.Millisecond, "", false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			f := NewFlightRecorder(0, 100*time.Millisecond, c.sampleEvery)
			kind, ok := f.ShouldCapture("kspr", c.status, c.latency)
			if kind != c.wantKind || ok != c.wantOK {
				t.Fatalf("ShouldCapture = %q, %v; want %q, %v", kind, ok, c.wantKind, c.wantOK)
			}
		})
	}
}

func TestFlightPerEndpointSampling(t *testing.T) {
	f := NewFlightRecorder(0, 0, 4)
	sampled := 0
	for i := 0; i < 8; i++ {
		if _, ok := f.ShouldCapture("kspr", 200, time.Millisecond); ok {
			sampled++
		}
	}
	if sampled != 2 {
		t.Fatalf("sampled %d of 8 at 1-in-4, want 2", sampled)
	}
	// Each endpoint counts independently, so a fresh endpoint's first
	// request is always sampled.
	if kind, ok := f.ShouldCapture("batch", 200, time.Millisecond); !ok || kind != CaptureSampled {
		t.Fatalf("fresh endpoint first request = %q, %v; want sampled", kind, ok)
	}
	s := f.Stats()
	if s.Dropped != 6 {
		t.Fatalf("dropped = %d, want 6", s.Dropped)
	}
}

func TestFlightRingOverwrite(t *testing.T) {
	f := NewFlightRecorder(8, 0, 1)
	base := time.Now()
	for i := 0; i < 24; i++ {
		f.Record(WideEvent{
			Time:      base.Add(time.Duration(i) * time.Millisecond),
			Endpoint:  "kspr",
			LatencyNs: int64(i),
		})
	}
	got := f.Events(FlightFilter{})
	if len(got) != 8 {
		t.Fatalf("retained %d events at capacity 8, want 8", len(got))
	}
	// Striped round-robin keeps the most recent event per stripe slot: the
	// last 8 records survive, oldest first.
	for i, ev := range got {
		if want := int64(16 + i); ev.LatencyNs != want {
			t.Fatalf("event %d = record %d, want %d", i, ev.LatencyNs, want)
		}
	}
	if s := f.Stats(); s.Captured != 24 {
		t.Fatalf("captured = %d, want 24", s.Captured)
	}
}

func TestFlightFilters(t *testing.T) {
	f := NewFlightRecorder(64, 0, 1)
	base := time.Now()
	add := func(i int, endpoint, dataset string, status int, lat time.Duration) {
		f.Record(WideEvent{
			Time:      base.Add(time.Duration(i) * time.Millisecond),
			Endpoint:  endpoint,
			Dataset:   dataset,
			Status:    status,
			LatencyNs: int64(lat),
		})
	}
	add(0, "kspr", "a", 200, time.Millisecond)
	add(1, "kspr", "b", 404, time.Millisecond)
	add(2, "batch", "a", 200, 50*time.Millisecond)
	add(3, "batch", "b", 429, 2*time.Millisecond)
	add(4, "kspr", "a", 200, 80*time.Millisecond)

	if got := f.Events(FlightFilter{Endpoint: "kspr"}); len(got) != 3 {
		t.Fatalf("endpoint filter kept %d, want 3", len(got))
	}
	if got := f.Events(FlightFilter{Dataset: "b"}); len(got) != 2 {
		t.Fatalf("dataset filter kept %d, want 2", len(got))
	}
	if got := f.Events(FlightFilter{ErrorsOnly: true}); len(got) != 2 {
		t.Fatalf("errors-only kept %d, want 2", len(got))
	}
	if got := f.Events(FlightFilter{MinLatency: 40 * time.Millisecond}); len(got) != 2 {
		t.Fatalf("min-latency kept %d, want 2", len(got))
	}
	got := f.Events(FlightFilter{Limit: 2})
	if len(got) != 2 || got[0].LatencyNs != int64(2*time.Millisecond) || got[1].LatencyNs != int64(80*time.Millisecond) {
		// Limit keeps the MOST RECENT events (records 3 and 4), oldest first.
		t.Fatalf("limit=2 kept %+v, want records 3 and 4", got)
	}
}

func TestJournalSeqAndSince(t *testing.T) {
	j := NewJournal(16)
	for i := 0; i < 5; i++ {
		seq := j.Append(JournalEvent{Type: EventMutationBatch, Dataset: "d"})
		if seq != uint64(i+1) {
			t.Fatalf("append %d assigned seq %d, want %d", i, seq, i+1)
		}
	}
	if j.LastSeq() != 5 {
		t.Fatalf("LastSeq = %d, want 5", j.LastSeq())
	}
	got := j.Since(2, 0)
	if len(got) != 3 || got[0].Seq != 3 || got[2].Seq != 5 {
		t.Fatalf("Since(2) = %+v, want seqs 3..5", got)
	}
	if got := j.Since(2, 2); len(got) != 2 || got[1].Seq != 4 {
		t.Fatalf("Since(2, limit 2) = %+v, want seqs 3,4", got)
	}
	if got := j.Since(5, 0); len(got) != 0 {
		t.Fatalf("Since(last) = %+v, want empty", got)
	}
	for _, ev := range j.Snapshot() {
		if ev.Time.IsZero() {
			t.Fatal("Append left a zero timestamp")
		}
	}
}

func TestJournalRingEviction(t *testing.T) {
	j := NewJournal(4)
	for i := 0; i < 10; i++ {
		j.Append(JournalEvent{Type: EventSnapshotWrite})
	}
	got := j.Snapshot()
	if len(got) != 4 {
		t.Fatalf("retained %d events at capacity 4, want 4", len(got))
	}
	for i, ev := range got {
		if want := uint64(7 + i); ev.Seq != want {
			t.Fatalf("event %d has seq %d, want %d", i, ev.Seq, want)
		}
	}
	// A caller asking from a long-evicted cursor sees the gap: the first
	// returned seq jumps past after+1.
	if got := j.Since(1, 0); got[0].Seq != 7 {
		t.Fatalf("Since(1) starts at seq %d, want 7 (gap)", got[0].Seq)
	}
}

func TestJournalNilSafe(t *testing.T) {
	var j *Journal
	if seq := j.Append(JournalEvent{Type: EventBlackBox}); seq != 0 {
		t.Fatalf("nil Append = %d, want 0", seq)
	}
	if j.LastSeq() != 0 || j.Since(0, 0) != nil || j.Snapshot() != nil {
		t.Fatal("nil journal reads are not zero")
	}
}

// BenchmarkFlightShouldCaptureDrop measures the always-on recorder's cost
// on the overwhelmingly common path: an ordinary request that is NOT
// captured. This is the number the <2% serving-overhead claim rests on.
func BenchmarkFlightShouldCaptureDrop(b *testing.B) {
	f := NewFlightRecorder(0, 500*time.Millisecond, DefaultFlightSampleEvery)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			f.ShouldCapture("kspr", 200, time.Millisecond)
		}
	})
}
