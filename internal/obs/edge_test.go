package obs

import (
	"strings"
	"testing"
	"time"
)

func TestPromEscapingTable(t *testing.T) {
	cases := []struct {
		name  string
		label string
		help  string
		// wantLabel / wantHelp are the escaped forms as they must appear in
		// the exposition text.
		wantLabel string
		wantHelp  string
	}{
		{"backslash", `a\b`, `help \ text`, `a\\b`, `help \\ text`},
		{"newline", "a\nb", "help\ntext", `a\nb`, `help\ntext`},
		{"double quote", `a"b`, `help "quoted" text`, `a\"b`, `help "quoted" text`},
		{"all three", "\\\"\n", "\\\n", `\\\"\n`, `\\\n`},
		{"clean passthrough", "plain", "plain help", "plain", "plain help"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var b strings.Builder
			p := NewPromWriter(&b)
			p.Gauge("m", c.help, 1, Label{"l", c.label})
			if err := p.Err(); err != nil {
				t.Fatalf("writer error: %v", err)
			}
			out := b.String()
			if want := "# HELP m " + c.wantHelp + "\n"; !strings.Contains(out, want) {
				t.Fatalf("help line missing %q in:\n%s", want, out)
			}
			if want := `m{l="` + c.wantLabel + `"} 1` + "\n"; !strings.Contains(out, want) {
				t.Fatalf("sample line missing %q in:\n%s", want, out)
			}
		})
	}
}

func TestHistogramLadderClamping(t *testing.T) {
	// The default ladder spans 100µs to 60s; observations outside that
	// range must clamp to the first bucket and the +Inf bucket.
	below := []time.Duration{0, time.Nanosecond, 50 * time.Microsecond, 100 * time.Microsecond}
	above := []time.Duration{60*time.Second + 1, 5 * time.Minute, time.Hour}

	h := NewHistogram(nil)
	for _, d := range below {
		h.Observe(d)
	}
	for _, d := range above {
		h.Observe(d)
	}
	s := h.Snapshot()
	if got := s.Counts[0]; got != uint64(len(below)) {
		t.Fatalf("first bucket = %d, want %d (all sub-100µs samples)", got, len(below))
	}
	if got := s.Counts[len(s.Counts)-1]; got != uint64(len(above)) {
		t.Fatalf("+Inf bucket = %d, want %d (all over-60s samples)", got, len(above))
	}
	for i := 1; i < len(s.Counts)-1; i++ {
		if s.Counts[i] != 0 {
			t.Fatalf("interior bucket %d = %d, want 0", i, s.Counts[i])
		}
	}
	// Quantiles cannot resolve past the ladder: anything answered from the
	// +Inf bucket reports the largest finite bound.
	if q := s.Quantile(1.0); q != 60 {
		t.Fatalf("p100 = %v, want 60 (largest finite bound)", q)
	}
	if q := s.Quantile(0.01); q != 0.0001 {
		t.Fatalf("p1 = %v, want 0.0001 (first bound)", q)
	}
}

func TestQuantileSmallWindows(t *testing.T) {
	one := NewHistogram([]float64{0.001, 0.01, 0.1})
	one.Observe(5 * time.Millisecond) // lands in the 0.01 bucket
	oneSnap := one.Snapshot()

	cases := []struct {
		name string
		snap HistSnapshot
		p    float64
		want float64
	}{
		{"empty snapshot", HistSnapshot{}, 0.5, 0},
		{"zero samples with bounds", NewHistogram([]float64{0.001}).Snapshot(), 0.99, 0},
		{"one sample p0", oneSnap, 0, 0.01},
		{"one sample p50", oneSnap, 0.5, 0.01},
		{"one sample p100", oneSnap, 1, 0.01},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := c.snap.Quantile(c.p); got != c.want {
				t.Fatalf("Quantile(%v) = %v, want %v", c.p, got, c.want)
			}
		})
	}
}
