package obs

import (
	"math"
	"sync/atomic"
	"time"
)

// DefaultLatencyBuckets is the serving layer's shared bucket layout for
// request-latency histograms: upper bounds in seconds on a 1–2.5–5 decade
// ladder from 100µs to 60s. Every endpoint uses the same layout so
// cross-endpoint quantiles compare bucket-for-bucket.
var DefaultLatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005,
	0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05,
	0.1, 0.25, 0.5,
	1, 2.5, 5,
	10, 30, 60,
}

// Histogram is a fixed-bucket latency histogram with lock-free Observe
// (one atomic add per sample plus sum/count upkeep). Bucket i counts
// samples ≤ Bounds[i]; a final implicit +Inf bucket catches the rest.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf
	count  atomic.Uint64
	sumNs  atomic.Int64
}

// NewHistogram returns a histogram over the given ascending upper bounds
// (seconds). A nil or empty bounds slice selects DefaultLatencyBuckets.
// The slice is copied.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultLatencyBuckets
	}
	h := &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
	return h
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	s := d.Seconds()
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if s <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	h.counts[lo].Add(1)
	h.count.Add(1)
	h.sumNs.Add(int64(d))
}

// Snapshot returns a point-in-time copy of the histogram's state.
// Concurrent Observes may straddle the copy, so Count can lag the bucket
// sum by in-flight samples; consumers should treat the bucket counts as
// authoritative.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
		Count:  h.count.Load(),
		SumNs:  h.sumNs.Load(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// CopyCounts copies the per-bucket counts into dst without allocating,
// returning how many buckets were copied (min of len(dst) and the bucket
// count, bounds plus the +Inf bucket). The sampler's alternative to
// Snapshot.
func (h *Histogram) CopyCounts(dst []uint64) int {
	n := len(h.counts)
	if n > len(dst) {
		n = len(dst)
	}
	for i := 0; i < n; i++ {
		dst[i] = h.counts[i].Load()
	}
	return n
}

// HistSnapshot is an immutable copy of a Histogram, suitable for
// quantile estimation and exposition without holding up writers.
type HistSnapshot struct {
	// Bounds are the bucket upper bounds in seconds; Counts has one extra
	// trailing element for the +Inf bucket. Counts are per-bucket, not
	// cumulative.
	Bounds []float64
	Counts []uint64
	// Count and SumNs aggregate all observations.
	Count uint64
	SumNs int64
}

// Total sums the bucket counts (the authoritative sample count).
func (s HistSnapshot) Total() uint64 {
	var n uint64
	for _, c := range s.Counts {
		n += c
	}
	return n
}

// Quantile estimates the p-quantile (p in [0,1]) as the upper bound of
// the bucket holding the nearest-rank sample, in seconds. Samples landing
// in the +Inf bucket report the largest finite bound (the histogram can't
// resolve beyond its range). An empty snapshot reports 0.
func (s HistSnapshot) Quantile(p float64) float64 {
	total := s.Total()
	if total == 0 || len(s.Bounds) == 0 {
		return 0
	}
	rank := uint64(math.Ceil(p * float64(total)))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum uint64
	for i, c := range s.Counts {
		cum += c
		if cum >= rank {
			if i >= len(s.Bounds) {
				return s.Bounds[len(s.Bounds)-1]
			}
			return s.Bounds[i]
		}
	}
	return s.Bounds[len(s.Bounds)-1]
}
