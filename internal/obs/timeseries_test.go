package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

var t0 = time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)

// fill records n ticks at interval steps starting at t0, with req counting
// 10 per tick and load gauging the tick index.
func fill(ts *TimeSeries, n int, interval time.Duration) {
	for i := 0; i < n; i++ {
		ts.Record(t0.Add(time.Duration(i)*interval), []SamplePoint{
			{Name: "req", Kind: KindCounter, Value: float64((i + 1) * 10)},
			{Name: "load", Kind: KindGauge, Value: float64(i)},
		})
	}
}

func TestTimeSeriesBasics(t *testing.T) {
	ts := NewTimeSeries(time.Second, 10*time.Second)
	if got := ts.Capacity(); got != 10 {
		t.Fatalf("capacity = %d, want 10", got)
	}
	fill(ts, 3, time.Second)
	if got := ts.Len(); got != 3 {
		t.Fatalf("len = %d, want 3", got)
	}
	_, v, ok := ts.Latest("req")
	if !ok || v != 30 {
		t.Fatalf("latest req = %v, %v; want 30, true", v, ok)
	}
	if _, _, ok := ts.Latest("nope"); ok {
		t.Fatal("latest of unknown series should be !ok")
	}
	kind, ok := ts.Kind("load")
	if !ok || kind != KindGauge {
		t.Fatalf("kind(load) = %v, %v", kind, ok)
	}
	names := ts.SeriesNames()
	if len(names) != 2 || names[0] != "req" || names[1] != "load" {
		t.Fatalf("series names = %v", names)
	}
}

func TestTimeSeriesWrapAround(t *testing.T) {
	// Capacity 5 ring fed 13 ticks: only the last 5 survive, and delta
	// arithmetic keeps working across the wrap point.
	ts := NewTimeSeries(time.Second, 5*time.Second)
	fill(ts, 13, time.Second)
	if got := ts.Len(); got != 5 {
		t.Fatalf("len after wrap = %d, want 5", got)
	}
	if got := ts.Ticks(); got != 13 {
		t.Fatalf("ticks = %d, want 13", got)
	}
	now := t0.Add(12 * time.Second)
	// Oldest retained tick is i=8 (value 90); newest i=12 (value 130).
	delta, span, ok := ts.DeltaSince("req", time.Minute, now)
	if !ok || delta != 40 || span != 4*time.Second {
		t.Fatalf("delta = %v over %v (ok=%v), want 40 over 4s", delta, span, ok)
	}
	r := ts.Range([]string{"req"}, t0, 0)
	if len(r.Times) != 5 {
		t.Fatalf("range returned %d ticks, want 5", len(r.Times))
	}
	if got := r.Values["req"][0]; got != 90 {
		t.Fatalf("oldest retained req = %v, want 90", got)
	}
	if got := r.Values["req"][4]; got != 130 {
		t.Fatalf("newest req = %v, want 130", got)
	}
	// Timestamps must come back oldest-first and strictly increasing.
	for i := 1; i < len(r.Times); i++ {
		if !r.Times[i].After(r.Times[i-1]) {
			t.Fatalf("times not increasing at %d: %v then %v", i, r.Times[i-1], r.Times[i])
		}
	}
}

func TestTimeSeriesCounterReset(t *testing.T) {
	ts := NewTimeSeries(time.Second, time.Minute)
	ts.Record(t0, []SamplePoint{{Name: "req", Kind: KindCounter, Value: 1000}})
	ts.Record(t0.Add(time.Second), []SamplePoint{{Name: "req", Kind: KindCounter, Value: 1100}})
	// Process restart: the counter starts over from zero.
	ts.Record(t0.Add(2*time.Second), []SamplePoint{{Name: "req", Kind: KindCounter, Value: 25}})
	now := t0.Add(2 * time.Second)
	delta, _, ok := ts.DeltaSince("req", time.Minute, now)
	if !ok || delta != 25 {
		t.Fatalf("post-reset delta = %v (ok=%v), want 25", delta, ok)
	}
	// A falling gauge is a genuine negative delta, not a reset.
	ts.Record(t0.Add(3*time.Second), []SamplePoint{{Name: "g", Kind: KindGauge, Value: 50}})
	ts.Record(t0.Add(4*time.Second), []SamplePoint{{Name: "g", Kind: KindGauge, Value: 20}})
	delta, _, ok = ts.DeltaSince("g", time.Minute, t0.Add(4*time.Second))
	if !ok || delta != -30 {
		t.Fatalf("gauge delta = %v (ok=%v), want -30", delta, ok)
	}
}

func TestTimeSeriesDeltaNeedsTwoSamples(t *testing.T) {
	ts := NewTimeSeries(time.Second, time.Minute)
	ts.Record(t0, []SamplePoint{{Name: "req", Kind: KindCounter, Value: 5}})
	if _, _, ok := ts.DeltaSince("req", time.Minute, t0); ok {
		t.Fatal("single sample must not produce a delta")
	}
	ts.Record(t0.Add(time.Second), []SamplePoint{{Name: "req", Kind: KindCounter, Value: 9}})
	// Window too small to cover both samples: only the newest is in range.
	if _, _, ok := ts.DeltaSince("req", 500*time.Millisecond, t0.Add(time.Second)); ok {
		t.Fatal("window covering one sample must not produce a delta")
	}
}

func TestTimeSeriesRate(t *testing.T) {
	ts := NewTimeSeries(time.Second, time.Minute)
	fill(ts, 11, time.Second)
	now := t0.Add(10 * time.Second)
	rate, ok := ts.RateSince("req", time.Minute, now)
	if !ok || rate != 10 {
		t.Fatalf("rate = %v (ok=%v), want 10/s", rate, ok)
	}
}

func TestTimeSeriesRangeStep(t *testing.T) {
	// 30 ticks at 1s; step=10s keeps the LAST tick of each bucket so
	// counter deltas across the downsampled points stay exact.
	ts := NewTimeSeries(time.Second, time.Minute)
	fill(ts, 30, time.Second)
	r := ts.Range([]string{"req"}, t0, 10*time.Second)
	if len(r.Times) != 3 {
		t.Fatalf("downsampled to %d points, want 3", len(r.Times))
	}
	want := []float64{100, 200, 300} // ticks i=9, i=19, i=29
	for i, w := range want {
		if got := r.Values["req"][i]; got != w {
			t.Fatalf("point %d = %v, want %v", i, got, w)
		}
	}
	// since filters out older ticks entirely.
	r = ts.Range([]string{"req"}, t0.Add(25*time.Second), 0)
	if len(r.Times) != 5 {
		t.Fatalf("since filter kept %d ticks, want 5", len(r.Times))
	}
}

func TestTimeSeriesRangeStepAcrossWrap(t *testing.T) {
	// The ring wraps at 10 slots; downsampling must still walk
	// oldest-to-newest across the wrap seam.
	ts := NewTimeSeries(time.Second, 10*time.Second)
	fill(ts, 25, time.Second)
	r := ts.Range([]string{"req"}, t0, 5*time.Second)
	// Retained ticks are i=15..24 (values 160..250). Buckets of 5s from t0:
	// i=15..19 → last is 200, i=20..24 → last is 250.
	if len(r.Times) != 2 {
		t.Fatalf("got %d points, want 2", len(r.Times))
	}
	if r.Values["req"][0] != 200 || r.Values["req"][1] != 250 {
		t.Fatalf("points = %v, want [200 250]", r.Values["req"])
	}
}

func TestTimeSeriesMissingTicksAreNaN(t *testing.T) {
	ts := NewTimeSeries(time.Second, time.Minute)
	ts.Record(t0, []SamplePoint{{Name: "a", Kind: KindGauge, Value: 1}})
	ts.Record(t0.Add(time.Second), []SamplePoint{{Name: "b", Kind: KindGauge, Value: 2}})
	r := ts.Range([]string{"a", "b", "ghost"}, t0, 0)
	if !math.IsNaN(r.Values["a"][1]) {
		t.Fatalf("a at tick 1 = %v, want NaN (skipped)", r.Values["a"][1])
	}
	if !math.IsNaN(r.Values["b"][0]) {
		t.Fatalf("b at tick 0 = %v, want NaN (registered late)", r.Values["b"][0])
	}
	for i, v := range r.Values["ghost"] {
		if !math.IsNaN(v) {
			t.Fatalf("ghost[%d] = %v, want NaN", i, v)
		}
	}
	// Latest skips the NaN gap.
	_, v, ok := ts.Latest("a")
	if !ok || v != 1 {
		t.Fatalf("latest a = %v (ok=%v), want 1", v, ok)
	}
	// DeltaSince needs two real samples; a + one NaN is not enough.
	if _, _, ok := ts.DeltaSince("a", time.Minute, t0.Add(time.Second)); ok {
		t.Fatal("delta over one real sample must be !ok")
	}
}

func TestTimeSeriesNilSafe(t *testing.T) {
	var ts *TimeSeries
	ts.Record(t0, []SamplePoint{{Name: "x", Value: 1}})
	if ts.Len() != 0 || ts.Capacity() != 0 || ts.Ticks() != 0 || ts.Interval() != 0 {
		t.Fatal("nil ring must report zeroes")
	}
	if _, _, ok := ts.Latest("x"); ok {
		t.Fatal("nil Latest must be !ok")
	}
	if _, _, ok := ts.DeltaSince("x", time.Minute, t0); ok {
		t.Fatal("nil DeltaSince must be !ok")
	}
	if _, ok := ts.RateSince("x", time.Minute, t0); ok {
		t.Fatal("nil RateSince must be !ok")
	}
	if ts.SeriesNames() != nil {
		t.Fatal("nil SeriesNames must be nil")
	}
	if _, ok := ts.Kind("x"); ok {
		t.Fatal("nil Kind must be !ok")
	}
	r := ts.Range([]string{"x"}, t0, 0)
	if len(r.Times) != 0 {
		t.Fatal("nil Range must be empty")
	}
}

func TestTimeSeriesConcurrent(t *testing.T) {
	// Writers and readers race over the ring; the -race build is the
	// assertion.
	ts := NewTimeSeries(time.Millisecond, 100*time.Millisecond)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			pts := []SamplePoint{{Name: "c", Kind: KindCounter}}
			for i := 0; i < 500; i++ {
				pts[0].Value = float64(i)
				ts.Record(t0.Add(time.Duration(i)*time.Millisecond), pts)
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				ts.Latest("c")
				ts.DeltaSince("c", time.Second, t0.Add(time.Second))
				ts.Range([]string{"c"}, t0, 10*time.Millisecond)
			}
		}()
	}
	wg.Wait()
}

func TestTimeSeriesRecordSteadyStateAllocs(t *testing.T) {
	ts := NewTimeSeries(time.Second, time.Minute)
	pts := []SamplePoint{
		{Name: "a", Kind: KindCounter, Value: 1},
		{Name: "b", Kind: KindGauge, Value: 2},
	}
	ts.Record(t0, pts) // registration tick allocates; steady state must not
	allocs := testing.AllocsPerRun(100, func() {
		ts.Record(t0.Add(time.Second), pts)
	})
	if allocs != 0 {
		t.Fatalf("steady-state Record allocates %v/op, want 0", allocs)
	}
}

func TestTimeSeriesClamping(t *testing.T) {
	if got := NewTimeSeries(time.Hour, time.Second).Capacity(); got != 2 {
		t.Fatalf("tiny ring capacity = %d, want clamp to 2", got)
	}
	if got := NewTimeSeries(time.Nanosecond, time.Hour).Capacity(); got != maxHistorySlots {
		t.Fatalf("huge ring capacity = %d, want clamp to %d", got, maxHistorySlots)
	}
	if got := NewTimeSeries(0, 0).Capacity(); got != int(DefaultHistoryRetention/DefaultHistoryInterval) {
		t.Fatalf("default capacity = %d", got)
	}
}
