package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceNilSafe(t *testing.T) {
	var tr *Trace
	sp := tr.Span("x")
	sp.End()
	tr.Add("x", time.Second)
	tr.Reset()
	if tr.Phases() != nil {
		t.Fatalf("nil trace Phases = %v, want nil", tr.Phases())
	}
	if tr.TotalNs() != 0 {
		t.Fatalf("nil trace TotalNs = %d, want 0", tr.TotalNs())
	}
}

func TestTraceAggregation(t *testing.T) {
	tr := NewTrace()
	tr.Add("expand", 3*time.Millisecond)
	tr.Add("skyband", 2*time.Millisecond)
	tr.Add("expand", 5*time.Millisecond)
	phases := tr.Phases()
	if len(phases) != 2 {
		t.Fatalf("got %d phases, want 2", len(phases))
	}
	// First-seen order preserved, same-name spans aggregated.
	if phases[0].Name != "expand" || phases[0].Count != 2 || phases[0].Ns != int64(8*time.Millisecond) {
		t.Fatalf("expand phase = %+v", phases[0])
	}
	if phases[1].Name != "skyband" || phases[1].Count != 1 {
		t.Fatalf("skyband phase = %+v", phases[1])
	}
	if got := tr.TotalNs(); got != int64(10*time.Millisecond) {
		t.Fatalf("TotalNs = %d, want %d", got, 10*time.Millisecond)
	}
	if d := phases[0].Duration(); d != 8*time.Millisecond {
		t.Fatalf("Duration = %v", d)
	}
	tr.Reset()
	if len(tr.Phases()) != 0 {
		t.Fatalf("Reset left %d phases", len(tr.Phases()))
	}
	tr.Add("late", time.Millisecond)
	if got := tr.Phases(); len(got) != 1 || got[0].Name != "late" {
		t.Fatalf("post-Reset phases = %v", got)
	}
}

func TestTraceSpanRecordsElapsed(t *testing.T) {
	tr := NewTrace()
	sp := tr.Span("work")
	time.Sleep(2 * time.Millisecond)
	sp.End()
	phases := tr.Phases()
	if len(phases) != 1 || phases[0].Ns <= 0 {
		t.Fatalf("phases = %+v", phases)
	}
}

func TestSortedPhases(t *testing.T) {
	tr := NewTrace()
	tr.Add("small", time.Millisecond)
	tr.Add("big", 10*time.Millisecond)
	got := SortedPhases(tr)
	if got[0].Name != "big" || got[1].Name != "small" {
		t.Fatalf("SortedPhases order = %v", got)
	}
	if SortedPhases(nil) != nil {
		t.Fatal("SortedPhases(nil) should be nil")
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram([]float64{0.001, 0.01, 0.1})
	cases := []struct {
		d      time.Duration
		bucket int
	}{
		{0, 0},                       // below first bound
		{time.Millisecond, 0},        // exactly on a bound counts in that bucket (le semantics)
		{time.Millisecond + 1, 1},    // just past a bound spills into the next
		{10 * time.Millisecond, 1},   // exactly 0.01
		{50 * time.Millisecond, 2},   // interior of the last finite bucket
		{100 * time.Millisecond, 2},  // exactly the last finite bound
		{200 * time.Millisecond, 3},  // +Inf bucket
		{5000 * time.Millisecond, 3}, // way past the range
	}
	for _, c := range cases {
		h.Observe(c.d)
	}
	s := h.Snapshot()
	want := []uint64{2, 2, 2, 2}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 8 || s.Total() != 8 {
		t.Fatalf("Count=%d Total=%d, want 8", s.Count, s.Total())
	}
}

func TestHistogramDefaultBuckets(t *testing.T) {
	h := NewHistogram(nil)
	s := h.Snapshot()
	if len(s.Bounds) != len(DefaultLatencyBuckets) {
		t.Fatalf("bounds len = %d, want %d", len(s.Bounds), len(DefaultLatencyBuckets))
	}
	for i := 1; i < len(s.Bounds); i++ {
		if s.Bounds[i] <= s.Bounds[i-1] {
			t.Fatalf("bounds not ascending at %d: %v", i, s.Bounds)
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]float64{0.001, 0.01, 0.1, 1})
	// 90 fast samples, 9 medium, 1 slow.
	for i := 0; i < 90; i++ {
		h.Observe(500 * time.Microsecond)
	}
	for i := 0; i < 9; i++ {
		h.Observe(50 * time.Millisecond)
	}
	h.Observe(500 * time.Millisecond)
	s := h.Snapshot()
	if q := s.Quantile(0.50); q != 0.001 {
		t.Fatalf("p50 = %v, want 0.001", q)
	}
	if q := s.Quantile(0.95); q != 0.1 {
		t.Fatalf("p95 = %v, want 0.1", q)
	}
	if q := s.Quantile(0.99); q != 0.1 {
		t.Fatalf("p99 = %v, want 0.1", q)
	}
	if q := s.Quantile(1.0); q != 1 {
		t.Fatalf("p100 = %v, want 1", q)
	}
	// +Inf bucket clamps to the largest finite bound.
	h2 := NewHistogram([]float64{0.001})
	h2.Observe(time.Second)
	if q := h2.Snapshot().Quantile(0.5); q != 0.001 {
		t.Fatalf("overflow quantile = %v, want 0.001", q)
	}
	if q := (HistSnapshot{}).Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile = %v, want 0", q)
	}
}

func TestPromWriterGolden(t *testing.T) {
	var b strings.Builder
	p := NewPromWriter(&b)
	p.Counter("kspr_requests_total", "Total requests.", 42, Label{"endpoint", "kspr"})
	p.Gauge(`kspr_pool_depth`, `Queue depth with "quotes" and back\slash`, 3)
	p.Header("kspr_latency_seconds", "Latency.", "histogram")
	h := NewHistogram([]float64{0.001, 0.01})
	h.Observe(500 * time.Microsecond)
	h.Observe(5 * time.Millisecond)
	h.Observe(5 * time.Millisecond)
	h.Observe(time.Second)
	p.HistogramSeries("kspr_latency_seconds", []Label{{"endpoint", "kspr"}}, h.Snapshot())
	if p.Err() != nil {
		t.Fatalf("writer error: %v", p.Err())
	}
	want := `# HELP kspr_requests_total Total requests.
# TYPE kspr_requests_total counter
kspr_requests_total{endpoint="kspr"} 42
# HELP kspr_pool_depth Queue depth with "quotes" and back\\slash
# TYPE kspr_pool_depth gauge
kspr_pool_depth 3
# HELP kspr_latency_seconds Latency.
# TYPE kspr_latency_seconds histogram
kspr_latency_seconds_bucket{endpoint="kspr",le="0.001"} 1
kspr_latency_seconds_bucket{endpoint="kspr",le="0.01"} 3
kspr_latency_seconds_bucket{endpoint="kspr",le="+Inf"} 4
kspr_latency_seconds_sum{endpoint="kspr"} 1.0105
kspr_latency_seconds_count{endpoint="kspr"} 4
`
	if b.String() != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", b.String(), want)
	}
}

func TestPromValueFormatting(t *testing.T) {
	if formatValue(math.Inf(1)) != "+Inf" {
		t.Fatal("+Inf formatting")
	}
	if formatValue(math.Inf(-1)) != "-Inf" {
		t.Fatal("-Inf formatting")
	}
	if formatValue(0.25) != "0.25" {
		t.Fatalf("0.25 -> %s", formatValue(0.25))
	}
	if got := escapeLabel("a\"b\\c\nd"); got != `a\"b\\c\nd` {
		t.Fatalf("escapeLabel = %s", got)
	}
}

func TestConcurrentTraceAndHistogram(t *testing.T) {
	tr := NewTrace()
	h := NewHistogram(nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tr.Add("p", time.Microsecond)
				h.Observe(time.Duration(i) * time.Microsecond)
				if i%50 == 0 {
					_ = tr.Phases()
					_ = h.Snapshot().Quantile(0.95)
				}
			}
		}()
	}
	wg.Wait()
	if got := tr.Phases()[0].Count; got != 8*500 {
		t.Fatalf("trace count = %d, want %d", got, 8*500)
	}
	if got := h.Snapshot().Total(); got != 8*500 {
		t.Fatalf("hist total = %d, want %d", got, 8*500)
	}
}

func TestNewRequestID(t *testing.T) {
	a, b := NewRequestID(), NewRequestID()
	if len(a) != 16 || len(b) != 16 {
		t.Fatalf("lengths %d/%d, want 16", len(a), len(b))
	}
	if a == b {
		t.Fatal("two request IDs collided")
	}
}
