package obs

import (
	"runtime/debug"
	"runtime/metrics"
)

// RuntimeStats is one sample of Go runtime health: scheduler load, heap
// footprint, and GC pause tail.
type RuntimeStats struct {
	Goroutines     int64   `json:"goroutines"`
	HeapInuseBytes uint64  `json:"heap_inuse_bytes"`
	GCPauseP99Ms   float64 `json:"gc_pause_p99_ms"`
}

// runtime/metrics sample names the sampler reads. Heap in-use is the sum
// of live-object bytes and the unused tail of spans holding them — the
// same quantity runtime.MemStats calls HeapInuse.
const (
	rmGoroutines  = "/sched/goroutines:goroutines"
	rmHeapObjects = "/memory/classes/heap/objects:bytes"
	rmHeapUnused  = "/memory/classes/heap/unused:bytes"
	rmGCPauses    = "/sched/pauses/total/gc:seconds"
)

// RuntimeSampler reads Go runtime telemetry through runtime/metrics with a
// preallocated sample buffer, so periodic sampling does not itself churn
// the heap it is measuring. Not safe for concurrent use (one sampler
// goroutine owns it).
type RuntimeSampler struct {
	samples []metrics.Sample
}

// NewRuntimeSampler preallocates the sample set.
func NewRuntimeSampler() *RuntimeSampler {
	return &RuntimeSampler{samples: []metrics.Sample{
		{Name: rmGoroutines},
		{Name: rmHeapObjects},
		{Name: rmHeapUnused},
		{Name: rmGCPauses},
	}}
}

// Sample reads the current runtime stats. The GC pause p99 is computed
// from the runtime's cumulative pause histogram, so it reflects all pauses
// since process start rather than a recent window — good enough to spot a
// node whose pauses are structurally long.
func (r *RuntimeSampler) Sample() RuntimeStats {
	metrics.Read(r.samples)
	var st RuntimeStats
	for i := range r.samples {
		s := &r.samples[i]
		switch s.Name {
		case rmGoroutines:
			if s.Value.Kind() == metrics.KindUint64 {
				st.Goroutines = int64(s.Value.Uint64())
			}
		case rmHeapObjects, rmHeapUnused:
			if s.Value.Kind() == metrics.KindUint64 {
				st.HeapInuseBytes += s.Value.Uint64()
			}
		case rmGCPauses:
			if s.Value.Kind() == metrics.KindFloat64Histogram {
				st.GCPauseP99Ms = histQuantileSeconds(s.Value.Float64Histogram(), 0.99) * 1000
			}
		}
	}
	return st
}

// histQuantileSeconds computes a nearest-rank quantile from a
// runtime/metrics Float64Histogram, returning the upper bucket bound in
// the histogram's own unit (seconds for pause histograms). Empty
// histograms return 0.
func histQuantileSeconds(h *metrics.Float64Histogram, q float64) float64 {
	if h == nil {
		return 0
	}
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var seen uint64
	for i, c := range h.Counts {
		seen += c
		if c > 0 && seen > rank {
			// Buckets[i+1] is the bucket's upper bound; the final bucket's
			// bound may be +Inf, in which case the lower bound is the best
			// finite answer.
			up := h.Buckets[i+1]
			if up > 1e18 || up != up { // +Inf or NaN guard
				up = h.Buckets[i]
			}
			return up
		}
	}
	return h.Buckets[len(h.Buckets)-1]
}

// BuildInfo identifies the running binary: module version, Go toolchain,
// and the GOAMD64 microarchitecture level it was compiled for.
type BuildInfo struct {
	Version string `json:"version"`
	Go      string `json:"go"`
	GOAMD64 string `json:"goamd64"`
}

// ReadBuildInfo extracts BuildInfo from the binary's embedded build
// metadata. Fields that the build did not stamp come back as "unknown"
// (e.g. version outside a module build, GOAMD64 on other architectures).
func ReadBuildInfo() BuildInfo {
	info := BuildInfo{Version: "unknown", Go: "unknown", GOAMD64: "unknown"}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return info
	}
	info.Go = bi.GoVersion
	if v := bi.Main.Version; v != "" {
		info.Version = v
	}
	for _, s := range bi.Settings {
		switch s.Key {
		case "GOAMD64":
			info.GOAMD64 = s.Value
		case "vcs.revision":
			if info.Version == "unknown" || info.Version == "(devel)" {
				if len(s.Value) > 12 {
					info.Version = s.Value[:12]
				} else {
					info.Version = s.Value
				}
			}
		}
	}
	return info
}
