package obs

import (
	"crypto/rand"
	"encoding/hex"
	"sync/atomic"
)

var reqSeq atomic.Uint64

// NewRequestID returns a 16-hex-char opaque request identifier for log
// correlation (not a security token). It prefers crypto/rand and falls
// back to a process-local counter if the system entropy source fails.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		var c [8]byte
		n := reqSeq.Add(1)
		for i := 0; i < 8; i++ {
			c[i] = byte(n >> (8 * (7 - i)))
		}
		return hex.EncodeToString(c[:])
	}
	return hex.EncodeToString(b[:])
}
