// Package obs is the repo's observability substrate: a lightweight
// span/phase recorder the kSPR engine threads through queries (EXPLAIN
// mode and the slow-query log render it), fixed-bucket latency histograms
// behind the serving metrics, a hand-rolled Prometheus text-exposition
// writer (no client_golang dependency), and request-id generation for
// cross-log correlation. Everything here is dependency-free and safe for
// concurrent use; the recorder is additionally nil-safe, so tracing
// disabled costs two pointer checks per phase.
package obs

import (
	"sort"
	"sync"
	"time"
)

// Trace aggregates wall time and counts per named phase of one logical
// operation (a query, a batch, a maintenance step). Spans of the same
// phase name accumulate — across loop iterations and across goroutines —
// so a trace summarizes "where did the time go" rather than recording an
// event log. All methods are safe on a nil *Trace (no-ops), which is how
// tracing stays free when off.
type Trace struct {
	mu     sync.Mutex
	order  []string
	phases map[string]*phaseAgg
}

type phaseAgg struct {
	ns    int64
	count int64
}

// Phase is one aggregated phase of a finished trace.
type Phase struct {
	// Name identifies the phase (see the core package's Phase* constants
	// for the engine's vocabulary).
	Name string
	// Ns is the total wall time spent in the phase across all its spans;
	// Count the number of spans that contributed.
	Ns    int64
	Count int64
}

// Duration returns the phase's total wall time.
func (p Phase) Duration() time.Duration { return time.Duration(p.Ns) }

// NewTrace returns an empty recorder.
func NewTrace() *Trace {
	return &Trace{phases: make(map[string]*phaseAgg)}
}

// Span starts a span of the named phase and returns its handle; call End
// to account the elapsed time. On a nil trace it returns an inert handle
// without reading the clock.
func (t *Trace) Span(name string) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, name: name, start: time.Now()}
}

// Add accounts d (one span's worth) to the named phase directly, for
// callers that measure time themselves. A nil trace ignores the call.
func (t *Trace) Add(name string, d time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	agg, ok := t.phases[name]
	if !ok {
		agg = &phaseAgg{}
		t.phases[name] = agg
		t.order = append(t.order, name)
	}
	agg.ns += int64(d)
	agg.count++
	t.mu.Unlock()
}

// Phases returns the aggregated phases in first-seen order. The slice is
// a copy; a nil trace returns nil.
func (t *Trace) Phases() []Phase {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Phase, 0, len(t.order))
	for _, name := range t.order {
		agg := t.phases[name]
		out = append(out, Phase{Name: name, Ns: agg.ns, Count: agg.count})
	}
	return out
}

// TotalNs sums the phase times. Because phases are designed to be
// non-overlapping within one operation, the sum approximates the
// operation's wall time (EXPLAIN mode cross-checks it against the
// engine's own Elapsed).
func (t *Trace) TotalNs() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var ns int64
	for _, agg := range t.phases {
		ns += agg.ns
	}
	return ns
}

// Reset drops every recorded phase, so a long-lived owner (e.g. a live
// query maintainer) can reuse one trace per step.
func (t *Trace) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.order = t.order[:0]
	for k := range t.phases {
		delete(t.phases, k)
	}
	t.mu.Unlock()
}

// Span is an in-flight phase measurement created by Trace.Span.
type Span struct {
	t     *Trace
	name  string
	start time.Time
}

// End accounts the span's elapsed time to its phase. End on an inert span
// (nil trace) is a no-op; calling it more than once accounts the phase
// again, so don't.
func (s Span) End() {
	if s.t == nil {
		return
	}
	s.t.Add(s.name, time.Since(s.start))
}

// SortedPhases returns the trace's phases sorted by descending time (for
// display; Phases preserves recording order).
func SortedPhases(t *Trace) []Phase {
	phases := t.Phases()
	sort.SliceStable(phases, func(i, j int) bool { return phases[i].Ns > phases[j].Ns })
	return phases
}
