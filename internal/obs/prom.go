package obs

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Label is one Prometheus label pair.
type Label struct {
	// Name must match [a-zA-Z_][a-zA-Z0-9_]*; Value may be any UTF-8
	// string (escaped on write).
	Name, Value string
}

// PromWriter renders metrics in the Prometheus text exposition format
// (version 0.0.4) without depending on client_golang. Errors from the
// underlying writer are sticky: the first one is kept and later calls
// become no-ops, so callers can write a whole page and check Err once.
type PromWriter struct {
	w   io.Writer
	err error
}

// NewPromWriter wraps w.
func NewPromWriter(w io.Writer) *PromWriter { return &PromWriter{w: w} }

// Err returns the first write error, if any.
func (p *PromWriter) Err() error { return p.err }

func (p *PromWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

// Header emits the # HELP and # TYPE lines for a metric family. typ is
// one of "counter", "gauge", "histogram".
func (p *PromWriter) Header(name, help, typ string) {
	p.printf("# HELP %s %s\n# TYPE %s %s\n", name, escapeHelp(help), name, typ)
}

// Sample emits one sample line: name{labels} value.
func (p *PromWriter) Sample(name string, labels []Label, v float64) {
	p.printf("%s%s %s\n", name, formatLabels(labels), formatValue(v))
}

// Counter emits a complete single-sample counter family.
func (p *PromWriter) Counter(name, help string, v float64, labels ...Label) {
	p.Header(name, help, "counter")
	p.Sample(name, labels, v)
}

// Gauge emits a complete single-sample gauge family.
func (p *PromWriter) Gauge(name, help string, v float64, labels ...Label) {
	p.Header(name, help, "gauge")
	p.Sample(name, labels, v)
}

// HistogramSeries emits one labeled series of a histogram family —
// cumulative le buckets (including +Inf), _sum (seconds), and _count.
// Call Header(name, help, "histogram") once before the first series.
func (p *PromWriter) HistogramSeries(name string, labels []Label, s HistSnapshot) {
	var cum uint64
	for i, bound := range s.Bounds {
		cum += s.Counts[i]
		p.Sample(name+"_bucket", append(labels[:len(labels):len(labels)], Label{"le", formatValue(bound)}), float64(cum))
	}
	if len(s.Counts) > len(s.Bounds) {
		cum += s.Counts[len(s.Bounds)]
	}
	p.Sample(name+"_bucket", append(labels[:len(labels):len(labels)], Label{"le", "+Inf"}), float64(cum))
	p.Sample(name+"_sum", labels, float64(s.SumNs)/1e9)
	p.Sample(name+"_count", labels, float64(cum))
}

func formatValue(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func formatLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}
