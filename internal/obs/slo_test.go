package obs

import (
	"math"
	"testing"
	"time"
)

// fixedBad returns a BadFractionFunc serving hand-built fixtures keyed by
// objective name and window.
func fixedBad(m map[string]map[time.Duration]float64) BadFractionFunc {
	return func(o Objective, window time.Duration, _ time.Time) (float64, bool) {
		byWin, ok := m[o.Name]
		if !ok {
			return 0, false
		}
		frac, ok := byWin[window]
		return frac, ok
	}
}

func availObjective() Objective {
	return Objective{Name: "availability", Kind: SLOAvailability, Target: 0.999}
}

func TestSLOBurnRateMath(t *testing.T) {
	// Hand-computed fixture: 99.9% target → budget 0.001.
	// 5m window bad=0.03 → burn 30; 1h bad=0.02 → burn 20 (both above the
	// fast threshold 14.4 → breaching). Slow pair stays under: 30m
	// bad=0.003 → burn 3, 6h bad=0.001 → burn 1.
	eng := NewSLOEngine([]Objective{availObjective()}, nil)
	bad := fixedBad(map[string]map[time.Duration]float64{
		"availability": {
			5 * time.Minute:  0.03,
			time.Hour:        0.02,
			30 * time.Minute: 0.003,
			6 * time.Hour:    0.001,
		},
	})
	statuses, events := eng.Evaluate(t0, bad)
	if len(statuses) != 1 {
		t.Fatalf("got %d statuses", len(statuses))
	}
	st := statuses[0]
	if !st.Breaching {
		t.Fatal("fast pair above threshold must breach")
	}
	fast, slow := st.Windows[0], st.Windows[1]
	if math.Abs(fast.BurnShort-30) > 1e-9 || math.Abs(fast.BurnLong-20) > 1e-9 {
		t.Fatalf("fast burns = %v/%v, want 30/20", fast.BurnShort, fast.BurnLong)
	}
	if !fast.Breaching || slow.Breaching {
		t.Fatalf("breaching flags fast=%v slow=%v, want true/false", fast.Breaching, slow.Breaching)
	}
	if math.Abs(slow.BurnShort-3) > 1e-9 || math.Abs(slow.BurnLong-1) > 1e-9 {
		t.Fatalf("slow burns = %v/%v, want 3/1", slow.BurnShort, slow.BurnLong)
	}
	// Score: fast pair norm = min(28.8,14.4)/14.4 = 1 → score 0.
	if st.Score != 0 {
		t.Fatalf("score = %v, want 0", st.Score)
	}
	if len(events) != 1 || events[0].Resolved {
		t.Fatalf("events = %+v, want one breach start", events)
	}
	if events[0].Window.Short != 5*time.Minute || events[0].BurnShort != fast.BurnShort {
		t.Fatalf("breach event pair = %+v, want the fast pair", events[0])
	}
}

func TestSLOOneWindowIsNotABreach(t *testing.T) {
	// Burning hot in the short window but cold in the long one: a blip,
	// not a breach (the long window hasn't confirmed it).
	eng := NewSLOEngine([]Objective{availObjective()}, nil)
	bad := fixedBad(map[string]map[time.Duration]float64{
		"availability": {
			5 * time.Minute: 0.5,   // burn 500
			time.Hour:       0.001, // burn 1
		},
	})
	statuses, events := eng.Evaluate(t0, bad)
	st := statuses[0]
	if st.Breaching {
		t.Fatal("short-window-only burn must not breach")
	}
	if len(events) != 0 {
		t.Fatalf("unexpected events %+v", events)
	}
	// Score reflects the confirmed (min) burn: min(500,1)/14.4 ≈ 0.0694 →
	// score ≈ 0.9306 from the fast pair; slow pair contributes nothing.
	want := 1 - 1.0/14.4
	if math.Abs(st.Score-want) > 1e-9 {
		t.Fatalf("score = %v, want %v", st.Score, want)
	}
}

func TestSLOPartialBurnScore(t *testing.T) {
	// Half-threshold burn on both fast windows → norm 0.5 → score 0.5.
	eng := NewSLOEngine([]Objective{availObjective()}, nil)
	bad := fixedBad(map[string]map[time.Duration]float64{
		"availability": {
			5 * time.Minute: 0.0072, // burn 7.2 = threshold/2
			time.Hour:       0.0072,
		},
	})
	statuses, _ := eng.Evaluate(t0, bad)
	if got := statuses[0].Score; math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("score = %v, want 0.5", got)
	}
	if statuses[0].Breaching {
		t.Fatal("half-threshold burn must not breach")
	}
}

func TestSLOBreachTransitions(t *testing.T) {
	eng := NewSLOEngine([]Objective{availObjective()}, nil)
	hot := fixedBad(map[string]map[time.Duration]float64{
		"availability": {5 * time.Minute: 0.05, time.Hour: 0.05},
	})
	cold := fixedBad(map[string]map[time.Duration]float64{
		"availability": {5 * time.Minute: 0, time.Hour: 0},
	})
	_, events := eng.Evaluate(t0, hot)
	if len(events) != 1 || events[0].Resolved {
		t.Fatalf("first hot eval events = %+v, want breach start", events)
	}
	// Still breaching: no duplicate event.
	_, events = eng.Evaluate(t0.Add(time.Minute), hot)
	if len(events) != 0 {
		t.Fatalf("steady breach re-emitted events %+v", events)
	}
	// Recovered: one resolve event.
	_, events = eng.Evaluate(t0.Add(2*time.Minute), cold)
	if len(events) != 1 || !events[0].Resolved {
		t.Fatalf("recovery events = %+v, want one resolve", events)
	}
	// Steady healthy: silence.
	_, events = eng.Evaluate(t0.Add(3*time.Minute), cold)
	if len(events) != 0 {
		t.Fatalf("steady healthy emitted events %+v", events)
	}
	if st := eng.Latest(); len(st) != 1 || st[0].Breaching {
		t.Fatalf("latest = %+v, want healthy", st)
	}
}

func TestSLONoDataBurnsNothing(t *testing.T) {
	eng := NewSLOEngine([]Objective{availObjective()}, nil)
	noData := func(Objective, time.Duration, time.Time) (float64, bool) { return 0, false }
	statuses, events := eng.Evaluate(t0, noData)
	if statuses[0].Breaching || statuses[0].Score != 1 {
		t.Fatalf("no-data status = %+v, want healthy score 1", statuses[0])
	}
	if len(events) != 0 {
		t.Fatalf("no-data events = %+v", events)
	}
}

func TestSLOVerdict(t *testing.T) {
	v := Verdict(nil)
	if !v.Healthy || v.Score != 1 || v.Status != "healthy" {
		t.Fatalf("empty verdict = %+v", v)
	}
	v = Verdict([]SLOStatus{{Name: "a", Score: 0.9}, {Name: "b", Score: 0.4}})
	if !v.Healthy || v.Score != 0.4 || v.Status != "burning" {
		t.Fatalf("burning verdict = %+v", v)
	}
	v = Verdict([]SLOStatus{{Name: "a", Score: 0.9}, {Name: "b", Score: 0, Breaching: true}})
	if v.Healthy || v.Score != 0 || v.Status != "breaching" {
		t.Fatalf("breaching verdict = %+v", v)
	}
}

func TestSLODefaultObjectives(t *testing.T) {
	objs := DefaultObjectives(0.999, 250*time.Millisecond, []string{"query", "mutate"})
	if len(objs) != 3 {
		t.Fatalf("got %d objectives, want 3", len(objs))
	}
	if objs[0].Kind != SLOAvailability || objs[0].Target != 0.999 {
		t.Fatalf("objs[0] = %+v", objs[0])
	}
	if objs[1].Kind != SLOLatency || objs[1].Class != "query" || objs[1].Bound != 250*time.Millisecond {
		t.Fatalf("objs[1] = %+v", objs[1])
	}
	// Disabled dimensions are skipped.
	if got := DefaultObjectives(0, 250*time.Millisecond, []string{"query"}); len(got) != 1 {
		t.Fatalf("avail-off objectives = %+v", got)
	}
	if got := DefaultObjectives(0.999, 0, []string{"query"}); len(got) != 1 {
		t.Fatalf("latency-off objectives = %+v", got)
	}
}

func TestSLOEngineNilSafe(t *testing.T) {
	var eng *SLOEngine
	st, ev := eng.Evaluate(t0, nil)
	if st != nil || ev != nil {
		t.Fatal("nil engine must evaluate to nothing")
	}
	if eng.Latest() != nil || eng.Objectives() != nil {
		t.Fatal("nil engine accessors must return nil")
	}
}

func TestRuntimeSampler(t *testing.T) {
	rs := NewRuntimeSampler()
	st := rs.Sample()
	if st.Goroutines < 1 {
		t.Fatalf("goroutines = %d, want >= 1", st.Goroutines)
	}
	if st.HeapInuseBytes == 0 {
		t.Fatal("heap in-use must be nonzero")
	}
	if st.GCPauseP99Ms < 0 {
		t.Fatalf("gc pause p99 = %v, want >= 0", st.GCPauseP99Ms)
	}
}

func TestReadBuildInfo(t *testing.T) {
	bi := ReadBuildInfo()
	if bi.Go == "" || bi.Version == "" || bi.GOAMD64 == "" {
		t.Fatalf("build info has empty fields: %+v", bi)
	}
}
