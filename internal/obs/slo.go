package obs

import (
	"fmt"
	"time"
)

// Objective kinds understood by the SLO engine.
const (
	// SLOAvailability measures the fraction of non-429 failed requests.
	SLOAvailability = "availability"
	// SLOLatency measures the fraction of recent windows whose class p99
	// exceeded the objective's bound.
	SLOLatency = "latency"
)

// Objective is one declarative service-level objective. Target is the
// good-fraction goal in (0,1) — e.g. 0.999 availability means an error
// budget of 0.1%. For latency objectives Bound is the p99 ceiling and
// Class names the endpoint class ("query", "mutate") whose latency series
// the evaluator should consult.
type Objective struct {
	Name   string
	Kind   string
	Target float64
	Bound  time.Duration
	Class  string
}

// Budget returns the objective's error budget (1 - Target).
func (o Objective) Budget() float64 { return 1 - o.Target }

// BurnWindow is one multi-window burn-rate alerting pair, Google-SRE
// style: a breach requires BOTH the short and the long window to burn the
// error budget faster than Threshold. The short window makes the alert
// reset quickly once the incident ends; the long window keeps a brief
// blip from paging.
type BurnWindow struct {
	Short     time.Duration
	Long      time.Duration
	Threshold float64
}

// DefaultBurnWindows is the standard fast + slow multi-window pair: the
// fast pair (5m/1h at 14.4x) catches budget-torching incidents in
// minutes, the slow pair (30m/6h at 6x) catches sustained simmering
// burn. At 14.4x a 99.9% objective's monthly budget lasts ~2 days; at 6x,
// ~5 days.
var DefaultBurnWindows = []BurnWindow{
	{Short: 5 * time.Minute, Long: time.Hour, Threshold: 14.4},
	{Short: 30 * time.Minute, Long: 6 * time.Hour, Threshold: 6},
}

// BadFractionFunc reports the fraction of "bad" service over the trailing
// window ending at now for one objective — (0.002, true) means 0.2% of
// requests failed, or 0.2% of latency samples exceeded the bound.
// ok=false means not enough data to judge the window (treated as zero
// burn: absence of evidence never pages).
type BadFractionFunc func(o Objective, window time.Duration, now time.Time) (bad float64, ok bool)

// WindowBurn is one evaluated burn-rate pair of an SLOStatus. The window
// lengths ride internally as durations and on the wire as millisecond
// floats (time.Duration would marshal as opaque nanoseconds).
type WindowBurn struct {
	Short     time.Duration `json:"-"`
	Long      time.Duration `json:"-"`
	ShortMs   float64       `json:"short_ms"`
	LongMs    float64       `json:"long_ms"`
	Threshold float64       `json:"threshold"`
	BurnShort float64       `json:"burn_short"`
	BurnLong  float64       `json:"burn_long"`
	Breaching bool          `json:"breaching"`
}

// SLOStatus is one objective's evaluated state: burn rates per window
// pair, whether any pair breaches, and a health score in [0,1] (1 = no
// burn, 0 = breaching at threshold or beyond).
type SLOStatus struct {
	Name      string       `json:"name"`
	Kind      string       `json:"kind"`
	Target    float64      `json:"target"`
	BoundMs   float64      `json:"bound_ms,omitempty"`
	Class     string       `json:"class,omitempty"`
	Windows   []WindowBurn `json:"windows"`
	Breaching bool         `json:"breaching"`
	Score     float64      `json:"score"`
}

// BreachEvent is an SLO state transition the engine wants journaled: a
// pair started breaching (Resolved=false) or every pair of a previously
// breaching objective recovered (Resolved=true).
type BreachEvent struct {
	Objective Objective
	Window    BurnWindow
	BurnShort float64
	BurnLong  float64
	Resolved  bool
}

// SLOEngine evaluates a fixed set of objectives against burn windows.
// Evaluation is pure over an injected BadFractionFunc so tests can pin the
// math with hand-computed fixtures; the engine itself only tracks breach
// state across evaluations (for start/resolve transition events). Not
// safe for concurrent Evaluate calls — the server evaluates from its
// single sampler goroutine. Nil-safe (no objectives, never breaching).
type SLOEngine struct {
	objectives []Objective
	windows    []BurnWindow
	active     map[string]bool // objective name -> currently breaching
	last       []SLOStatus
}

// NewSLOEngine builds an engine over the given objectives; nil windows
// selects DefaultBurnWindows.
func NewSLOEngine(objectives []Objective, windows []BurnWindow) *SLOEngine {
	if windows == nil {
		windows = DefaultBurnWindows
	}
	return &SLOEngine{
		objectives: objectives,
		windows:    windows,
		active:     map[string]bool{},
	}
}

// Objectives returns the engine's objective set (nil on nil).
func (e *SLOEngine) Objectives() []Objective {
	if e == nil {
		return nil
	}
	return e.objectives
}

// Evaluate computes every objective's burn rates at now using bad, returns
// the statuses plus any breach-state transitions since the previous
// Evaluate call. Burn rate = bad fraction / error budget; a window pair
// breaches when BOTH its windows burn at or above the pair's threshold.
func (e *SLOEngine) Evaluate(now time.Time, bad BadFractionFunc) ([]SLOStatus, []BreachEvent) {
	if e == nil {
		return nil, nil
	}
	statuses := make([]SLOStatus, 0, len(e.objectives))
	var events []BreachEvent
	for _, o := range e.objectives {
		st := SLOStatus{
			Name:   o.Name,
			Kind:   o.Kind,
			Target: o.Target,
			Class:  o.Class,
			Score:  1,
		}
		if o.Bound > 0 {
			st.BoundMs = float64(o.Bound) / float64(time.Millisecond)
		}
		budget := o.Budget()
		var breachPair WindowBurn
		for _, w := range e.windows {
			wb := WindowBurn{
				Short: w.Short, Long: w.Long,
				ShortMs:   float64(w.Short) / float64(time.Millisecond),
				LongMs:    float64(w.Long) / float64(time.Millisecond),
				Threshold: w.Threshold,
			}
			wb.BurnShort = burnRate(o, w.Short, now, bad, budget)
			wb.BurnLong = burnRate(o, w.Long, now, bad, budget)
			wb.Breaching = wb.BurnShort >= w.Threshold && wb.BurnLong >= w.Threshold
			// The pair's effective burn is the smaller of its two windows
			// (both must exceed the threshold to matter), normalized by the
			// threshold so fast and slow pairs score on the same scale.
			norm := min(wb.BurnShort, wb.BurnLong) / w.Threshold
			if pairScore := 1 - norm; pairScore < st.Score {
				st.Score = pairScore
			}
			if wb.Breaching && !st.Breaching {
				st.Breaching = true
				breachPair = wb
			}
			st.Windows = append(st.Windows, wb)
		}
		if st.Score < 0 {
			st.Score = 0
		}
		was := e.active[o.Name]
		if st.Breaching && !was {
			events = append(events, BreachEvent{
				Objective: o,
				Window:    BurnWindow{Short: breachPair.Short, Long: breachPair.Long, Threshold: breachPair.Threshold},
				BurnShort: breachPair.BurnShort,
				BurnLong:  breachPair.BurnLong,
			})
		}
		if !st.Breaching && was {
			events = append(events, BreachEvent{Objective: o, Resolved: true})
		}
		e.active[o.Name] = st.Breaching
		statuses = append(statuses, st)
	}
	e.last = statuses
	return statuses, events
}

// Latest returns the statuses from the most recent Evaluate (nil before
// the first evaluation or on nil).
func (e *SLOEngine) Latest() []SLOStatus {
	if e == nil {
		return nil
	}
	return e.last
}

// burnRate is bad/budget over one window; windows without enough data burn
// at zero.
func burnRate(o Objective, window time.Duration, now time.Time, bad BadFractionFunc, budget float64) float64 {
	if budget <= 0 {
		return 0
	}
	frac, ok := bad(o, window, now)
	if !ok || frac <= 0 {
		return 0
	}
	return frac / budget
}

// HealthVerdict rolls a set of SLO statuses into the single machine-
// readable fact a replica router scores nodes by.
type HealthVerdict struct {
	Healthy bool        `json:"healthy"`
	Score   float64     `json:"score"`
	Status  string      `json:"status"`
	SLOs    []SLOStatus `json:"slos"`
}

// Verdict reduces statuses to an overall verdict: score is the minimum
// per-objective score (a node is as healthy as its sickest SLO), healthy
// means no objective is actively breaching. No statuses (engine off or
// warming up) verdicts healthy at score 1.
func Verdict(statuses []SLOStatus) HealthVerdict {
	v := HealthVerdict{Healthy: true, Score: 1, Status: "healthy"}
	for _, st := range statuses {
		if st.Score < v.Score {
			v.Score = st.Score
		}
		if st.Breaching {
			v.Healthy = false
		}
	}
	if !v.Healthy {
		v.Status = "breaching"
	} else if v.Score < 1 {
		v.Status = "burning"
	}
	v.SLOs = statuses
	return v
}

// DefaultObjectives builds the stock objective set: availability at the
// given target across all endpoints, plus a p99 latency objective per
// endpoint class at the given bound (the latency target fixes the allowed
// over-bound fraction at 0.1%). Bound <= 0 skips latency objectives;
// availability target <= 0 skips the availability objective.
func DefaultObjectives(availTarget float64, p99Bound time.Duration, classes []string) []Objective {
	var objs []Objective
	if availTarget > 0 && availTarget < 1 {
		objs = append(objs, Objective{
			Name:   "availability",
			Kind:   SLOAvailability,
			Target: availTarget,
		})
	}
	if p99Bound > 0 {
		for _, class := range classes {
			objs = append(objs, Objective{
				Name:   fmt.Sprintf("latency-p99-%s", class),
				Kind:   SLOLatency,
				Target: 0.999,
				Bound:  p99Bound,
				Class:  class,
			})
		}
	}
	return objs
}
