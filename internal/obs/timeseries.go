package obs

import (
	"math"
	"sync"
	"time"
)

// SeriesKind classifies a telemetry series for the history ring: gauges are
// read back raw, counters are monotonic totals consumers should derive
// rates and deltas from (DeltaSince / RateSince apply counter-reset
// tolerance only to counters).
type SeriesKind uint8

// The two series kinds of the telemetry history.
const (
	// KindGauge is a point-in-time level (goroutines, pool depth, p99).
	KindGauge SeriesKind = iota
	// KindCounter is a monotonically increasing total (requests, errors).
	KindCounter
)

// SamplePoint is one series' value at one sampling tick. The sampler
// builds a reusable slice of these per tick, so the steady-state record
// path allocates nothing.
type SamplePoint struct {
	Name  string
	Kind  SeriesKind
	Value float64
}

// DefaultHistoryInterval is the sampling cadence of the telemetry history;
// DefaultHistoryRetention how far back the ring reaches. Together they
// size the ring (retention / interval slots).
const (
	DefaultHistoryInterval  = 10 * time.Second
	DefaultHistoryRetention = time.Hour
)

// maxHistorySlots bounds the ring so a misconfigured retention/interval
// pair cannot demand unbounded memory (1e5 slots x 8 bytes = 800 KB per
// series before anyone notices the flag typo).
const maxHistorySlots = 100_000

// series is one named ring of float64 values aligned with the shared
// timestamp ring. Slots the series missed (registered after the ring
// started, or skipped a tick) hold NaN.
type series struct {
	name string
	kind SeriesKind
	vals []float64
}

// TimeSeries is the in-process telemetry history: a fixed-capacity ring of
// sampling ticks, each tick carrying one float64 per registered series.
// Capacity is fixed at construction; recording a tick into existing series
// allocates nothing (new series allocate their ring once, on first
// appearance). All methods are safe for concurrent use and nil-safe
// (history disabled).
type TimeSeries struct {
	interval time.Duration
	mu       sync.Mutex
	times    []int64 // unix nanos per tick; shared by every series
	next     int
	n        int
	series   map[string]*series
	ordered  []*series // registration order, for deterministic iteration
	ticks    uint64
}

// NewTimeSeries sizes the ring to retention/interval slots (both <= 0
// select the defaults; the slot count is clamped to [2, 100000]).
func NewTimeSeries(interval, retention time.Duration) *TimeSeries {
	if interval <= 0 {
		interval = DefaultHistoryInterval
	}
	if retention <= 0 {
		retention = DefaultHistoryRetention
	}
	slots := int(retention / interval)
	if slots < 2 {
		slots = 2
	}
	if slots > maxHistorySlots {
		slots = maxHistorySlots
	}
	return &TimeSeries{
		interval: interval,
		times:    make([]int64, slots),
		series:   map[string]*series{},
	}
}

// Interval returns the configured sampling cadence (0 on nil).
func (ts *TimeSeries) Interval() time.Duration {
	if ts == nil {
		return 0
	}
	return ts.interval
}

// Capacity returns the ring's slot count (0 on nil).
func (ts *TimeSeries) Capacity() int {
	if ts == nil {
		return 0
	}
	return len(ts.times)
}

// Len returns the number of retained ticks (0 on nil).
func (ts *TimeSeries) Len() int {
	if ts == nil {
		return 0
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return ts.n
}

// Ticks returns the lifetime tick count — unlike Len it keeps growing
// after the ring wraps (0 on nil).
func (ts *TimeSeries) Ticks() uint64 {
	if ts == nil {
		return 0
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return ts.ticks
}

// newSeries registers a series, backfilling its past with NaN. Caller
// holds ts.mu.
func (ts *TimeSeries) newSeries(name string, kind SeriesKind) *series {
	sr := &series{name: name, kind: kind, vals: make([]float64, len(ts.times))}
	for i := range sr.vals {
		sr.vals[i] = math.NaN()
	}
	ts.series[name] = sr
	ts.ordered = append(ts.ordered, sr)
	return sr
}

// Record appends one sampling tick: every point lands in its series at the
// shared timestamp, series absent from points record NaN for the tick, and
// the oldest tick is evicted once the ring is full. Points may repeat a
// name (last write wins). Steady state — every point's series already
// registered — performs no allocation.
func (ts *TimeSeries) Record(now time.Time, points []SamplePoint) {
	if ts == nil {
		return
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	idx := ts.next
	ts.times[idx] = now.UnixNano()
	// Series that skip this tick must not keep their evicted value.
	for _, sr := range ts.ordered {
		sr.vals[idx] = math.NaN()
	}
	for _, p := range points {
		sr := ts.series[p.Name]
		if sr == nil {
			sr = ts.newSeries(p.Name, p.Kind)
		}
		sr.vals[idx] = p.Value
	}
	ts.next = (ts.next + 1) % len(ts.times)
	if ts.n < len(ts.times) {
		ts.n++
	}
	ts.ticks++
}

// Amend writes additional series values into the most recently recorded
// tick — derived series (rates, windowed quantiles) the sampler can only
// compute after the raw tick has landed in the ring. New series register
// as in Record; a no-op before the first Record and on nil.
func (ts *TimeSeries) Amend(points []SamplePoint) {
	if ts == nil {
		return
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if ts.n == 0 {
		return
	}
	idx := (ts.next - 1 + len(ts.times)) % len(ts.times)
	for _, p := range points {
		sr := ts.series[p.Name]
		if sr == nil {
			sr = ts.newSeries(p.Name, p.Kind)
		}
		sr.vals[idx] = p.Value
	}
}

// SeriesNames returns the registered series names in registration order.
func (ts *TimeSeries) SeriesNames() []string {
	if ts == nil {
		return nil
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	names := make([]string, len(ts.ordered))
	for i, sr := range ts.ordered {
		names[i] = sr.name
	}
	return names
}

// Kind reports a series' kind (false when the series does not exist).
func (ts *TimeSeries) Kind(name string) (SeriesKind, bool) {
	if ts == nil {
		return 0, false
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	sr := ts.series[name]
	if sr == nil {
		return 0, false
	}
	return sr.kind, true
}

// at maps logical tick position k (0 = oldest retained) to a ring index.
// Caller holds ts.mu.
func (ts *TimeSeries) at(k int) int {
	if ts.n < len(ts.times) {
		return k
	}
	return (ts.next + k) % len(ts.times)
}

// Latest returns a series' most recent non-NaN sample (ok=false when the
// series is unknown or has no samples).
func (ts *TimeSeries) Latest(name string) (t time.Time, v float64, ok bool) {
	if ts == nil {
		return time.Time{}, 0, false
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	sr := ts.series[name]
	if sr == nil {
		return time.Time{}, 0, false
	}
	for k := ts.n - 1; k >= 0; k-- {
		idx := ts.at(k)
		if !math.IsNaN(sr.vals[idx]) {
			return time.Unix(0, ts.times[idx]), sr.vals[idx], true
		}
	}
	return time.Time{}, 0, false
}

// DeltaSince returns how much a series grew over the trailing window
// ending at now: the newest in-window sample minus the oldest, plus the
// time span those samples actually cover. Counter resets (a restarted
// process re-counting from zero makes the newest sample smaller than the
// oldest) are tolerated by treating the newest value as the growth since
// the reset — the pre-reset head is unknowable and dropped rather than
// reported as a negative delta. Gauges get the same endpoint arithmetic
// without reset tolerance (a falling gauge is a real negative delta).
// ok=false when fewer than two in-window samples exist.
func (ts *TimeSeries) DeltaSince(name string, window time.Duration, now time.Time) (delta float64, span time.Duration, ok bool) {
	if ts == nil {
		return 0, 0, false
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	sr := ts.series[name]
	if sr == nil {
		return 0, 0, false
	}
	cutoff := now.Add(-window).UnixNano()
	var (
		oldV, newV float64
		oldT, newT int64
		seen       int
	)
	for k := 0; k < ts.n; k++ {
		idx := ts.at(k)
		if ts.times[idx] < cutoff || math.IsNaN(sr.vals[idx]) {
			continue
		}
		if seen == 0 {
			oldV, oldT = sr.vals[idx], ts.times[idx]
		}
		newV, newT = sr.vals[idx], ts.times[idx]
		seen++
	}
	if seen < 2 || newT <= oldT {
		return 0, 0, false
	}
	delta = newV - oldV
	if sr.kind == KindCounter && delta < 0 {
		delta = newV
	}
	return delta, time.Duration(newT - oldT), true
}

// RateSince returns a counter's per-second rate over the trailing window
// (DeltaSince divided by the covered span). ok=false as for DeltaSince.
func (ts *TimeSeries) RateSince(name string, window time.Duration, now time.Time) (rate float64, ok bool) {
	delta, span, ok := ts.DeltaSince(name, window, now)
	if !ok || span <= 0 {
		return 0, false
	}
	return delta / span.Seconds(), true
}

// RangeResult is one Range read: tick timestamps plus the aligned values
// of every requested series (NaN where a series missed a tick).
type RangeResult struct {
	Times  []time.Time
	Values map[string][]float64
}

// Range returns the retained samples of the named series from since to
// now, oldest first, downsampled to one sample per step (the last sample
// of each step bucket, which for counters preserves exact deltas across
// bucket boundaries). step <= 0 returns every tick. Unknown series are
// returned as all-NaN columns so callers can tell "no such series" from
// "no data yet" via SeriesNames.
func (ts *TimeSeries) Range(names []string, since time.Time, step time.Duration) RangeResult {
	res := RangeResult{Values: map[string][]float64{}}
	if ts == nil {
		return res
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	cutoff := since.UnixNano()
	// First pass: pick the surviving tick indexes (last tick per step
	// bucket, every in-range tick when step <= 0).
	var picked []int
	lastBucket := int64(math.MinInt64)
	for k := 0; k < ts.n; k++ {
		idx := ts.at(k)
		t := ts.times[idx]
		if t < cutoff {
			continue
		}
		if step <= 0 {
			picked = append(picked, idx)
			continue
		}
		bucket := (t - cutoff) / int64(step)
		if bucket == lastBucket && len(picked) > 0 {
			picked[len(picked)-1] = idx // later tick in the same bucket wins
			continue
		}
		picked = append(picked, idx)
		lastBucket = bucket
	}
	res.Times = make([]time.Time, len(picked))
	for i, idx := range picked {
		res.Times[i] = time.Unix(0, ts.times[idx])
	}
	for _, name := range names {
		col := make([]float64, len(picked))
		sr := ts.series[name]
		for i, idx := range picked {
			if sr == nil {
				col[i] = math.NaN()
			} else {
				col[i] = sr.vals[idx]
			}
		}
		res.Values[name] = col
	}
	return res
}
