// Package polytope materializes the exact geometry of arrangement cells:
// it intersects halfspaces into vertex sets, measures areas/volumes, and
// serves as the expensive "halfspace intersection" baseline the paper
// compares its LP-based feasibility test against (Fig. 16). It replaces the
// qhull library used in the paper's finalization step (§4.2).
package polytope

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/geom"
	"repro/internal/lp"
)

// vertexTol is the tolerance used when checking a candidate vertex against
// the constraint set.
const vertexTol = 1e-7

// Polytope is the exact geometry of a (bounded) convex region in dim
// dimensions, produced from a set of closed halfspace constraints.
type Polytope struct {
	Dim int
	// Facets are the non-redundant constraints (each supports a facet).
	Facets []geom.Constraint
	// Vertices are the extreme points of the region.
	Vertices []geom.Vector
}

// RemoveRedundant returns the subset of cons that actually bound the region
// (each kept row attains equality somewhere on the closure). Rows whose
// removal leaves the feasible set unchanged are dropped. This is the
// LP-based constraint pruning used before vertex enumeration.
//
// Like everything in this package, the region is understood as
// {w : rows} ∩ {w >= 0} (preference-space weights are non-negative by
// definition, and the LP solver shares that convention). Explicit
// non-negativity rows in cons are therefore reported as redundant; the
// axis facets are re-added by FromConstraints.
func RemoveRedundant(cons []geom.Constraint, dim int, stats *lp.Stats) ([]geom.Constraint, error) {
	// Rows are tested one at a time against the currently active set (with
	// the row itself removed); a redundant row stays removed before the next
	// test, so duplicate rows keep exactly one representative.
	active := make([]geom.Constraint, len(cons))
	copy(active, cons)
	for i := 0; i < len(active); {
		c := active[i]
		others := make([]geom.Constraint, 0, len(active)-1)
		others = append(others, active[:i]...)
		others = append(others, active[i+1:]...)
		// Maximize c.A·w over the region defined by the other rows; if the
		// optimum stays <= c.B even then, the row never binds.
		v, _, st, err := lp.Bound(others, c.A, true, stats)
		if err != nil {
			return nil, err
		}
		if st == lp.Infeasible {
			// Empty region: any single row represents it.
			return []geom.Constraint{c}, nil
		}
		if st == lp.Unbounded || v > c.B+vertexTol {
			i++ // binding: keep it
			continue
		}
		active = others // redundant: drop it
	}
	return active, nil
}

// FromConstraints computes the exact geometry of the closed region
// {w : a·w <= b for all rows} ∩ {w >= 0} by eliminating redundant rows and
// then enumerating vertices combinatorially: every dim-subset of facet
// hyperplanes (including the axis hyperplanes w_i = 0) is solved and the
// intersection point kept if it satisfies all constraints. The region must
// be bounded (kSPR cells always are: transformed cells live in the simplex,
// original-space cells in the unit cube).
func FromConstraints(cons []geom.Constraint, dim int, stats *lp.Stats) (*Polytope, error) {
	facets, err := RemoveRedundant(cons, dim, stats)
	if err != nil {
		return nil, err
	}
	// Re-add the implicit non-negativity facets so geometry is
	// self-contained.
	for i := 0; i < dim; i++ {
		a := make(geom.Vector, dim)
		a[i] = -1
		facets = append(facets, geom.Constraint{A: a, B: 0})
	}
	p := &Polytope{Dim: dim, Facets: facets}
	p.Vertices = enumerateVertices(facets, dim)
	return p, nil
}

// EnumerateVertices computes the vertices of {rows} ∩ {w >= 0} directly by
// combinatorial enumeration over ALL rows (no LP-based redundancy
// elimination first). It returns nil when the subset count would exceed
// maxCombos — callers fall back to LP bounds then. This trades the m LP
// solves of RemoveRedundant for C(m+dim, dim) tiny linear solves, which wins
// whenever cells are described by few constraints (the common case thanks
// to Lemma 2).
func EnumerateVertices(cons []geom.Constraint, dim, maxCombos int) []geom.Vector {
	rows := make([]geom.Constraint, 0, len(cons)+dim)
	rows = append(rows, cons...)
	for i := 0; i < dim; i++ {
		a := make(geom.Vector, dim)
		a[i] = -1
		rows = append(rows, geom.Constraint{A: a, B: 0})
	}
	if maxCombos > 0 && binomial(len(rows), dim) > maxCombos {
		return nil
	}
	return enumerateVertices(rows, dim)
}

// binomial returns C(n, k) with saturation to avoid overflow.
func binomial(n, k int) int {
	if k > n {
		return 0
	}
	c := 1
	for i := 0; i < k; i++ {
		c = c * (n - i) / (i + 1)
		if c > 1<<30 {
			return 1 << 30
		}
	}
	return c
}

// enumerateVertices finds all intersection points of dim-subsets of the
// facet hyperplanes that lie inside every constraint.
func enumerateVertices(facets []geom.Constraint, dim int) []geom.Vector {
	var verts []geom.Vector
	n := len(facets)
	if n < dim {
		return nil
	}
	idx := make([]int, dim)
	var rec func(start, k int)
	rec = func(start, k int) {
		if k == dim {
			v, ok := solveSubset(facets, idx, dim)
			if !ok {
				return
			}
			for _, c := range facets {
				if c.A.Dot(v)-c.B > vertexTol {
					return
				}
			}
			for _, u := range verts {
				if u.Equal(v) {
					return
				}
			}
			verts = append(verts, v)
			return
		}
		for i := start; i < n; i++ {
			idx[k] = i
			rec(i+1, k+1)
		}
	}
	rec(0, 0)
	return verts
}

// solveSubset solves the square system formed by the chosen facet rows.
func solveSubset(facets []geom.Constraint, idx []int, dim int) (geom.Vector, bool) {
	m := make([][]float64, dim)
	for i, fi := range idx {
		m[i] = make([]float64, dim+1)
		copy(m[i], facets[fi].A)
		m[i][dim] = facets[fi].B
	}
	for col := 0; col < dim; col++ {
		p, best := -1, 1e-9
		for r := col; r < dim; r++ {
			if v := math.Abs(m[r][col]); v > best {
				p, best = r, v
			}
		}
		if p < 0 {
			return nil, false
		}
		m[col], m[p] = m[p], m[col]
		pv := m[col][col]
		for j := col; j <= dim; j++ {
			m[col][j] /= pv
		}
		for r := 0; r < dim; r++ {
			if r == col {
				continue
			}
			f := m[r][col]
			if f == 0 {
				continue
			}
			for j := col; j <= dim; j++ {
				m[r][j] -= f * m[col][j]
			}
		}
	}
	v := make(geom.Vector, dim)
	for i := range v {
		v[i] = m[i][dim]
	}
	return v, true
}

// Empty reports whether the polytope has no vertices (empty or unbounded
// degenerate input).
func (p *Polytope) Empty() bool { return len(p.Vertices) == 0 }

// Centroid returns the mean of the vertices (inside the region by
// convexity); nil for an empty polytope.
func (p *Polytope) Centroid() geom.Vector {
	if p.Empty() {
		return nil
	}
	c := make(geom.Vector, p.Dim)
	for _, v := range p.Vertices {
		for i, x := range v {
			c[i] += x
		}
	}
	for i := range c {
		c[i] /= float64(len(p.Vertices))
	}
	return c
}

// Contains reports whether w satisfies every facet constraint within tol.
func (p *Polytope) Contains(w geom.Vector, tol float64) bool {
	for _, c := range p.Facets {
		if c.A.Dot(w)-c.B > tol {
			return false
		}
	}
	return true
}

// Volume returns the exact measure of the polytope for Dim <= 3 (interval
// length, polygon area, tetrahedralized volume) and falls back to
// Monte-Carlo estimation with the given sample count and seed for higher
// dimensions. The paper uses region volume to quantify market impact (§1).
func (p *Polytope) Volume(samples int, seed int64) float64 {
	switch {
	case p.Empty():
		return 0
	case p.Dim == 1:
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, v := range p.Vertices {
			lo = math.Min(lo, v[0])
			hi = math.Max(hi, v[0])
		}
		return hi - lo
	case p.Dim == 2:
		return p.polygonArea()
	case p.Dim == 3:
		if v, ok := p.volume3D(); ok {
			return v
		}
		return p.monteCarloVolume(samples, seed)
	default:
		return p.monteCarloVolume(samples, seed)
	}
}

// volume3D computes the exact volume by summing pyramids from the centroid
// over the facet polygons: V = Σ_f area(f) · dist(centroid, plane(f)) / 3.
// ok=false when a facet's vertex ring cannot be reconstructed (degenerate
// geometry); callers then fall back to Monte-Carlo.
func (p *Polytope) volume3D() (float64, bool) {
	c := p.Centroid()
	var total float64
	for _, f := range p.Facets {
		onFacet := make([]geom.Vector, 0, 8)
		for _, v := range p.Vertices {
			if d := f.A.Dot(v) - f.B; math.Abs(d) < vertexTol*10 {
				onFacet = append(onFacet, v)
			}
		}
		if len(onFacet) == 0 {
			continue // redundant row; contributes nothing
		}
		if len(onFacet) < 3 {
			continue // edge or vertex contact only: zero area
		}
		area, ok := planarPolygonArea(onFacet, f.A)
		if !ok {
			return 0, false
		}
		// Distance from centroid to the facet plane (rows are
		// unit-normalized at construction; normalize defensively anyway).
		n := f.A.Norm()
		if n < 1e-12 {
			return 0, false
		}
		dist := math.Abs(f.A.Dot(c)-f.B) / n
		total += area * dist / 3
	}
	return total, true
}

// planarPolygonArea computes the area of a convex polygon embedded in the
// plane with normal n, by building an orthonormal basis of the plane,
// projecting, angularly sorting, and applying the shoelace formula.
func planarPolygonArea(verts []geom.Vector, n geom.Vector) (float64, bool) {
	norm := n.Norm()
	if norm < 1e-12 {
		return 0, false
	}
	u := perpendicular(n)
	if u == nil {
		return 0, false
	}
	// v = n × u (3-d cross product), normalized.
	v := geom.Vector{
		n[1]*u[2] - n[2]*u[1],
		n[2]*u[0] - n[0]*u[2],
		n[0]*u[1] - n[1]*u[0],
	}
	vn := v.Norm()
	if vn < 1e-12 {
		return 0, false
	}
	for i := range v {
		v[i] /= vn
	}
	type pt struct{ x, y float64 }
	pts := make([]pt, len(verts))
	var cx, cy float64
	for i, w := range verts {
		pts[i] = pt{u.Dot(w), v.Dot(w)}
		cx += pts[i].x
		cy += pts[i].y
	}
	cx /= float64(len(pts))
	cy /= float64(len(pts))
	sort.Slice(pts, func(i, j int) bool {
		return math.Atan2(pts[i].y-cy, pts[i].x-cx) < math.Atan2(pts[j].y-cy, pts[j].x-cx)
	})
	var area float64
	for i := range pts {
		j := (i + 1) % len(pts)
		area += pts[i].x*pts[j].y - pts[j].x*pts[i].y
	}
	return math.Abs(area) / 2, true
}

// perpendicular returns a unit vector orthogonal to n (3-d).
func perpendicular(n geom.Vector) geom.Vector {
	// Pick the axis least aligned with n.
	best, bestAbs := 0, math.Abs(n[0])
	for i := 1; i < 3; i++ {
		if a := math.Abs(n[i]); a < bestAbs {
			best, bestAbs = i, a
		}
	}
	axis := make(geom.Vector, 3)
	axis[best] = 1
	// Gram-Schmidt against n.
	nn := n.Norm()
	d := n.Dot(axis) / (nn * nn)
	u := make(geom.Vector, 3)
	for i := range u {
		u[i] = axis[i] - d*n[i]
	}
	un := u.Norm()
	if un < 1e-12 {
		return nil
	}
	for i := range u {
		u[i] /= un
	}
	return u
}

// polygonArea sorts the vertices angularly around the centroid and applies
// the shoelace formula.
func (p *Polytope) polygonArea() float64 {
	if len(p.Vertices) < 3 {
		return 0
	}
	c := p.Centroid()
	vs := make([]geom.Vector, len(p.Vertices))
	copy(vs, p.Vertices)
	sort.Slice(vs, func(i, j int) bool {
		ai := math.Atan2(vs[i][1]-c[1], vs[i][0]-c[0])
		aj := math.Atan2(vs[j][1]-c[1], vs[j][0]-c[0])
		return ai < aj
	})
	area := 0.0
	for i := range vs {
		j := (i + 1) % len(vs)
		area += vs[i][0]*vs[j][1] - vs[j][0]*vs[i][1]
	}
	return math.Abs(area) / 2
}

// monteCarloVolume samples the vertex bounding box and counts hits.
func (p *Polytope) monteCarloVolume(samples int, seed int64) float64 {
	if samples <= 0 {
		samples = 10000
	}
	lo := make(geom.Vector, p.Dim)
	hi := make(geom.Vector, p.Dim)
	for i := range lo {
		lo[i], hi[i] = math.Inf(1), math.Inf(-1)
	}
	for _, v := range p.Vertices {
		for i, x := range v {
			lo[i] = math.Min(lo[i], x)
			hi[i] = math.Max(hi[i], x)
		}
	}
	boxVol := 1.0
	for i := range lo {
		boxVol *= hi[i] - lo[i]
	}
	if boxVol <= 0 {
		return 0
	}
	rng := rand.New(rand.NewSource(seed))
	w := make(geom.Vector, p.Dim)
	hits := 0
	for s := 0; s < samples; s++ {
		for i := range w {
			w[i] = lo[i] + rng.Float64()*(hi[i]-lo[i])
		}
		if p.Contains(w, vertexTol) {
			hits++
		}
	}
	return boxVol * float64(hits) / float64(samples)
}

// FeasibleByVertexEnum decides feasibility of the OPEN cell by computing
// its exact geometry, i.e. the way a qhull-based implementation would
// (Fig. 16's slow alternative). The open cell is non-empty iff the closure
// is full-dimensional, which we check by requiring at least Dim+1 distinct
// vertices that do not all lie on one of the facet hyperplanes.
func FeasibleByVertexEnum(cons []geom.Constraint, dim int, stats *lp.Stats) (bool, error) {
	p, err := FromConstraints(cons, dim, stats)
	if err != nil {
		return false, err
	}
	if len(p.Vertices) < dim+1 {
		return false, nil
	}
	// Full-dimensionality check: some facet must NOT contain every vertex.
	for _, c := range p.Facets {
		all := true
		for _, v := range p.Vertices {
			if math.Abs(c.A.Dot(v)-c.B) > vertexTol {
				all = false
				break
			}
		}
		if all {
			return false, nil
		}
	}
	return true, nil
}
