package polytope

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geom"
	"repro/internal/lp"
)

// unitBox returns the constraints 0 <= w_i <= hi in dim dimensions.
func unitBox(dim int, hi float64) []geom.Constraint {
	var cons []geom.Constraint
	for i := 0; i < dim; i++ {
		lo := make(geom.Vector, dim)
		lo[i] = -1
		cons = append(cons, geom.Constraint{A: lo, B: 0})
		up := make(geom.Vector, dim)
		up[i] = 1
		cons = append(cons, geom.Constraint{A: up, B: hi})
	}
	return cons
}

func TestUnitSquareVertices(t *testing.T) {
	p, err := FromConstraints(unitBox(2, 1), 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Vertices) != 4 {
		t.Fatalf("unit square has %d vertices, want 4", len(p.Vertices))
	}
	if got := p.Volume(0, 1); math.Abs(got-1) > 1e-9 {
		t.Fatalf("unit square area %v, want 1", got)
	}
}

func TestUnitCubeVertices(t *testing.T) {
	p, err := FromConstraints(unitBox(3, 1), 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Vertices) != 8 {
		t.Fatalf("unit cube has %d vertices, want 8", len(p.Vertices))
	}
	if got := p.Volume(200000, 1); math.Abs(got-1) > 0.02 {
		t.Fatalf("unit cube Monte-Carlo volume %v, want ~1", got)
	}
}

func TestSimplexGeometry(t *testing.T) {
	// Closed transformed preference simplex in 2-d: right triangle of area 1/2.
	cons := geom.SpaceBoundsTransformed(2)
	p, err := FromConstraints(cons, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Vertices) != 3 {
		t.Fatalf("triangle has %d vertices, want 3", len(p.Vertices))
	}
	if got := p.Volume(0, 1); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("triangle area %v, want 0.5", got)
	}
}

func TestIntervalVolume1D(t *testing.T) {
	cons := []geom.Constraint{
		{A: geom.Vector{-1}, B: -0.25}, // w >= 0.25
		{A: geom.Vector{1}, B: 0.75},   // w <= 0.75
	}
	p, err := FromConstraints(cons, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Volume(0, 1); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("interval length %v, want 0.5", got)
	}
}

func TestRemoveRedundantDropsLooseRows(t *testing.T) {
	cons := unitBox(2, 1)
	// Add rows that can never bind inside the unit square.
	cons = append(cons,
		geom.Constraint{A: geom.Vector{1, 0}, B: 5},
		geom.Constraint{A: geom.Vector{1, 1}, B: 10},
	)
	facets, err := RemoveRedundant(cons, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The lower bounds -w_i <= 0 are redundant against the implicit w >= 0
	// convention, so only the two upper-bound rows survive.
	if len(facets) != 2 {
		t.Fatalf("kept %d rows, want the 2 binding upper bounds", len(facets))
	}
	for _, f := range facets {
		if math.Abs(f.B-1) > 1e-12 {
			t.Fatalf("unexpected surviving row %+v", f)
		}
	}
}

func TestRemoveRedundantKeepsOneDuplicate(t *testing.T) {
	cons := unitBox(2, 1)
	dup := geom.Constraint{A: geom.Vector{1, 0}, B: 0.7} // binding: tighter than w1 <= 1
	cons = append(cons, dup, dup, dup)
	facets, err := RemoveRedundant(cons, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Exactly one copy of w1 <= 0.7 must survive, and it supersedes w1 <= 1.
	count := 0
	for _, f := range facets {
		if math.Abs(f.B-0.7) < 1e-12 && math.Abs(f.A[0]-1) < 1e-12 && math.Abs(f.A[1]) < 1e-12 {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("duplicate row kept %d times, want 1", count)
	}
	if len(facets) != 2 {
		t.Fatalf("kept %d rows, want 2 (w1 <= 0.7 and w2 <= 1)", len(facets))
	}
}

func TestEmptyRegion(t *testing.T) {
	cons := []geom.Constraint{
		{A: geom.Vector{1, 0}, B: 0},
		{A: geom.Vector{-1, 0}, B: -1}, // w1 >= 1 and w1 <= 0
	}
	p, err := FromConstraints(cons, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Empty() {
		t.Fatalf("empty region produced vertices %v", p.Vertices)
	}
	if p.Volume(0, 1) != 0 {
		t.Fatal("empty region has non-zero volume")
	}
	if p.Centroid() != nil {
		t.Fatal("empty region has a centroid")
	}
}

func TestCentroidInside(t *testing.T) {
	p, err := FromConstraints(geom.SpaceBoundsTransformed(3), 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := p.Centroid()
	if !p.Contains(c, 1e-9) {
		t.Fatalf("centroid %v outside polytope", c)
	}
}

func TestFeasibleByVertexEnumAgreesWithLP(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 120; trial++ {
		dim := 1 + rng.Intn(3)
		cons := geom.SpaceBoundsTransformed(dim)
		for i := 0; i < rng.Intn(5); i++ {
			a := make(geom.Vector, dim)
			for j := range a {
				a[j] = rng.NormFloat64()
			}
			n := a.Norm()
			if n < 1e-9 {
				continue
			}
			for j := range a {
				a[j] /= n
			}
			cons = append(cons, geom.Constraint{A: a, B: rng.Float64()*0.8 - 0.1, Strict: true})
		}
		in, err := lp.FeasibleInterior(cons, dim, nil)
		if err != nil {
			t.Fatal(err)
		}
		byGeom, err := FeasibleByVertexEnum(cons, dim, nil)
		if err != nil {
			t.Fatal(err)
		}
		if in.Feasible != byGeom {
			// Tolerate disagreement only for razor-thin cells where the two
			// tolerance regimes legitimately differ.
			if in.Feasible && in.Slack > 1e-5 {
				t.Fatalf("trial %d dim %d: LP feasible (slack %g) but vertex enum says empty",
					trial, dim, in.Slack)
			}
			if !in.Feasible && byGeom {
				p, _ := FromConstraints(cons, dim, nil)
				if p.Volume(20000, 1) > 1e-4 {
					t.Fatalf("trial %d dim %d: vertex enum feasible with volume, LP says empty", trial, dim)
				}
			}
		}
	}
}

func TestVerticesSatisfyAllConstraints(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 60; trial++ {
		dim := 2 + rng.Intn(2)
		cons := geom.SpaceBoundsTransformed(dim)
		for i := 0; i < 3; i++ {
			a := make(geom.Vector, dim)
			for j := range a {
				a[j] = rng.NormFloat64()
			}
			n := a.Norm()
			if n < 1e-9 {
				continue
			}
			for j := range a {
				a[j] /= n
			}
			cons = append(cons, geom.Constraint{A: a, B: rng.Float64() * 0.5})
		}
		p, err := FromConstraints(cons, dim, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range p.Vertices {
			for _, c := range cons {
				if c.A.Dot(v)-c.B > 1e-6 {
					t.Fatalf("vertex %v violates %+v", v, c)
				}
			}
		}
	}
}

func TestPolygonAreaMatchesMonteCarlo(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 20; trial++ {
		cons := geom.SpaceBoundsTransformed(2)
		for i := 0; i < 2; i++ {
			a := geom.Vector{rng.NormFloat64(), rng.NormFloat64()}
			n := a.Norm()
			if n < 1e-9 {
				continue
			}
			a[0], a[1] = a[0]/n, a[1]/n
			cons = append(cons, geom.Constraint{A: a, B: rng.Float64() * 0.6})
		}
		p, err := FromConstraints(cons, 2, nil)
		if err != nil {
			t.Fatal(err)
		}
		if p.Empty() {
			continue
		}
		exact := p.polygonArea()
		mc := p.monteCarloVolume(80000, 7)
		if math.Abs(exact-mc) > 0.02+(0.05*exact) {
			t.Fatalf("trial %d: shoelace %v vs Monte-Carlo %v", trial, exact, mc)
		}
	}
}

func TestVertexDeduplication(t *testing.T) {
	// A triangle specified with a redundant duplicate facet direction still
	// yields exactly 3 distinct vertices.
	cons := append(geom.SpaceBoundsTransformed(2),
		geom.Constraint{A: geom.Vector{-1, 0}, B: 0}) // duplicate w1 >= 0
	p, err := FromConstraints(cons, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, v := range p.Vertices {
		key := ""
		for _, x := range v {
			key += string(rune(int(math.Round(x * 1e6))))
		}
		if seen[key] {
			t.Fatalf("duplicate vertex %v", v)
		}
		seen[key] = true
	}
	if len(p.Vertices) != 3 {
		t.Fatalf("got %d vertices, want 3", len(p.Vertices))
	}
}

func TestVolumeDeterministicForSeed(t *testing.T) {
	p, err := FromConstraints(unitBox(3, 1), 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	a := p.Volume(5000, 42)
	b := p.Volume(5000, 42)
	if a != b {
		t.Fatalf("same seed gave %v and %v", a, b)
	}
}

func TestSortStability(t *testing.T) {
	// polygonArea must not depend on input vertex order.
	p := &Polytope{Dim: 2, Vertices: []geom.Vector{{0, 0}, {1, 0}, {1, 1}, {0, 1}}}
	base := p.polygonArea()
	perm := []geom.Vector{{1, 1}, {0, 0}, {0, 1}, {1, 0}}
	q := &Polytope{Dim: 2, Vertices: perm}
	if math.Abs(base-q.polygonArea()) > 1e-12 {
		t.Fatal("area depends on vertex order")
	}
	_ = sort.SliceIsSorted // keep sort imported for documentation parity
}

func TestVolume3DUnitCube(t *testing.T) {
	p, err := FromConstraints(unitBox(3, 1), 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	v, ok := p.volume3D()
	if !ok {
		t.Fatal("volume3D failed on the unit cube")
	}
	if math.Abs(v-1) > 1e-9 {
		t.Fatalf("unit cube volume %v, want 1", v)
	}
}

func TestVolume3DSimplex(t *testing.T) {
	// The transformed preference simplex in 3-d has volume 1/6.
	p, err := FromConstraints(geom.SpaceBoundsTransformed(3), 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Volume(0, 1); math.Abs(got-1.0/6) > 1e-9 {
		t.Fatalf("simplex volume %v, want 1/6", got)
	}
}

func TestVolume3DMatchesMonteCarlo(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 10; trial++ {
		cons := geom.SpaceBoundsTransformed(3)
		for i := 0; i < 3; i++ {
			a := geom.Vector{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
			n := a.Norm()
			if n < 1e-9 {
				continue
			}
			for j := range a {
				a[j] /= n
			}
			cons = append(cons, geom.Constraint{A: a, B: rng.Float64() * 0.4})
		}
		p, err := FromConstraints(cons, 3, nil)
		if err != nil {
			t.Fatal(err)
		}
		if p.Empty() {
			continue
		}
		exact, ok := p.volume3D()
		if !ok {
			continue
		}
		mc := p.monteCarloVolume(120000, 5)
		if math.Abs(exact-mc) > 0.01+0.08*exact {
			t.Fatalf("trial %d: exact %v vs Monte-Carlo %v", trial, exact, mc)
		}
	}
}
