package polytope

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func benchCell(rng *rand.Rand, dim, extra int) []geom.Constraint {
	cons := geom.SpaceBoundsTransformed(dim)
	for i := 0; i < extra; i++ {
		a := make(geom.Vector, dim)
		for j := range a {
			a[j] = rng.NormFloat64()
		}
		n := a.Norm()
		if n < 1e-9 {
			continue
		}
		for j := range a {
			a[j] /= n
		}
		cons = append(cons, geom.Constraint{A: a, B: rng.Float64() * 0.6})
	}
	return cons
}

func BenchmarkFromConstraints_d3_rows15(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	cons := benchCell(rng, 3, 15)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FromConstraints(cons, 3, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEnumerateVertices_d3_rows15(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	cons := benchCell(rng, 3, 15)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EnumerateVertices(cons, 3, 0)
	}
}

func BenchmarkVolume2D(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	cons := benchCell(rng, 2, 6)
	p, err := FromConstraints(cons, 2, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Volume(0, 1)
	}
}

func BenchmarkMonteCarloVolume3D(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	cons := benchCell(rng, 3, 6)
	p, err := FromConstraints(cons, 3, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Volume(2000, 1)
	}
}
