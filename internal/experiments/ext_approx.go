package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
)

// ExtApprox is an EXTENSION experiment (not a paper figure): it evaluates
// the approximate kSPR algorithm the paper proposes as future work (§8),
// sweeping the accuracy target epsilon against exact LP-CTA on the same
// workload. Reported: response time, number of certain regions, certain
// volume, and the guaranteed uncertainty bound.
func ExtApprox(cfg Config) error {
	cfg.normalize()
	w := cfg.Out
	header(w, "ext-approx", "approximate kSPR (future work §8): epsilon sweep vs exact LP-CTA")
	wl, err := buildWorkload(dataset.Independent, cfg.n(baseN), defaultD, cfg.Seed)
	if err != nil {
		return err
	}
	k := cfg.kDefault(wl.ds.Len())
	focals := pickFocals(wl.ds.Len(), cfg.Queries, cfg.Seed)

	exact, err := wl.measure(focals, core.Options{
		K: k, Algorithm: core.LPCTA, FinalizeGeometry: false, ComputeVolumes: true,
		VolumeSamples: 5000, Seed: cfg.Seed,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "exact LP-CTA (k=%d): %s s, %.1f regions\n", k, seconds(exact.Elapsed), exact.Regions)
	fmt.Fprintf(w, "%9s %12s %10s %14s %16s %10s\n",
		"epsilon", "time (s)", "regions", "certain vol", "uncertain vol", "converged")
	for _, eps := range []float64{0.1, 0.05, 0.02, 0.01, 0.005} {
		var tot time.Duration
		var regions, certVol, uncVol float64
		conv := true
		for _, id := range focals {
			start := time.Now()
			res, err := core.RunApprox(wl.tree, wl.ds.Records[id], id, core.ApproxOptions{
				K: k, Epsilon: eps,
			})
			if err != nil {
				return err
			}
			tot += time.Since(start)
			regions += float64(len(res.Regions))
			for _, reg := range res.Regions {
				certVol += reg.Volume
			}
			uncVol += res.UncertainVolume
			conv = conv && res.Converged
		}
		q := float64(len(focals))
		fmt.Fprintf(w, "%9g %12s %10.1f %14.4f %16.4f %10v\n",
			eps, seconds(tot/time.Duration(len(focals))), regions/q, certVol/q, uncVol/q, conv)
	}
	return nil
}
