package experiments

import (
	"fmt"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/dataset"
)

// Fig9 reruns the §7.2 case study: the kSPR regions (k=3) of the simulated
// star center over points/rebounds/assists in two seasons. The paper's
// claim to reproduce: season 1 regions sit at high points-weight, season 2
// regions at high rebounds-weight.
func Fig9(cfg Config) error {
	cfg.normalize()
	w := cfg.Out
	header(w, "fig9", "kSPR regions of the focal center (NBA sim, k=3)")
	for season := 1; season <= 2; season++ {
		ds := dataset.NBA(cfg.n(500), season, 2015)
		sub := &dataset.Dataset{Name: ds.Name, Attributes: []string{"points", "rebounds", "assists"}}
		for _, r := range ds.Records {
			sub.Records = append(sub.Records, []float64{r[7], r[1], r[2]})
		}
		wl, err := indexDataset(sub)
		if err != nil {
			return err
		}
		res, err := core.Run(wl.tree, sub.Records[0], 0, core.Options{
			K: 3, Algorithm: core.LPCTA, FinalizeGeometry: true,
			ComputeVolumes: true, VolumeSamples: 20000, Seed: cfg.Seed,
		})
		if err != nil {
			return err
		}
		var cw1, cw2, vol float64
		for _, reg := range res.Regions {
			cw1 += reg.Witness[0] * reg.Volume
			cw2 += reg.Witness[1] * reg.Volume
			vol += reg.Volume
		}
		if vol > 0 {
			cw1 /= vol
			cw2 /= vol
		}
		fmt.Fprintf(w, "season %d: %d regions, total area %.4f, mass centre (w1=points %.2f, w2=rebounds %.2f)\n",
			season, len(res.Regions), vol, cw1, cw2)
		for i, reg := range res.Regions {
			if i >= 4 {
				fmt.Fprintf(w, "  ... %d more regions\n", len(res.Regions)-4)
				break
			}
			fmt.Fprintf(w, "  region rank=%d witness=(%.3f, %.3f) area=%.4f\n",
				reg.Rank, reg.Witness[0], reg.Witness[1], reg.Volume)
		}
	}
	return nil
}

// Fig10a compares LP-CTA with RTOPK on 2-dimensional IND data, varying k
// (paper: LP-CTA an order of magnitude faster).
func Fig10a(cfg Config) error {
	cfg.normalize()
	w := cfg.Out
	header(w, "fig10a", "LP-CTA vs RTOPK (IND, d=2)")
	wl, err := buildWorkload(dataset.Independent, cfg.n(baseN), 2, cfg.Seed)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%4s %14s %14s %18s %18s\n", "k", "LP-CTA (s)", "RTOPK (s)", "LP-CTA records", "RTOPK records")
	for _, k := range cfg.ks(wl.ds.Len()) {
		focals := pickFocals(wl.ds.Len(), cfg.Queries, cfg.Seed+int64(k))
		lp, err := wl.measure(focals, core.Options{K: k, Algorithm: core.LPCTA, FinalizeGeometry: true})
		if err != nil {
			return err
		}
		var rtTime time.Duration
		var rtRecords float64
		for _, id := range focals {
			start := time.Now()
			res, err := baseline.RTopK(wl.ds.Records, wl.ds.Records[id], id, k)
			if err != nil {
				return err
			}
			rtTime += time.Since(start)
			rtRecords += float64(res.Stats.ProcessedRecords)
		}
		rtTime /= time.Duration(len(focals))
		rtRecords /= float64(len(focals))
		fmt.Fprintf(w, "%4d %14s %14s %18.1f %18.1f\n",
			k, seconds(lp.Elapsed), seconds(rtTime/time.Duration(1)), lp.Processed, rtRecords)
	}
	return nil
}

// Fig10b compares CTA, P-CTA, LP-CTA and iMaxRank on IND d=4 data, varying
// k. iMaxRank runs on a reduced cardinality and only for small k — exactly
// the "fails to terminate" behaviour the paper reports; rows where it is
// skipped print DNF.
func Fig10b(cfg Config) error {
	cfg.normalize()
	w := cfg.Out
	header(w, "fig10b", "CTA vs P-CTA vs LP-CTA vs iMaxRank (IND, d=4)")
	wl, err := buildWorkload(dataset.Independent, cfg.n(baseN), defaultD, cfg.Seed)
	if err != nil {
		return err
	}
	// iMaxRank gets its own (much smaller) instance, like the paper's
	// "small kSPR instances"; beyond k=30 it is DNF.
	imN := cfg.n(baseN) / 10
	imWL, err := buildWorkload(dataset.Independent, imN, defaultD, cfg.Seed)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%4s %12s %12s %12s %16s\n", "k", "CTA (s)", "P-CTA (s)", "LP-CTA (s)", "iMaxRank (s)")
	for _, k := range cfg.ks(wl.ds.Len()) {
		focals := pickFocals(wl.ds.Len(), cfg.Queries, cfg.Seed+int64(k))
		row := fmt.Sprintf("%4d", k)
		for _, algo := range []core.Algorithm{core.CTA, core.PCTA, core.LPCTA} {
			if algo == core.CTA && k > 50 {
				// The paper reports CTA exceeding 2 hours beyond k=50.
				row += fmt.Sprintf(" %12s", "DNF")
				continue
			}
			m, err := wl.measure(focals, core.Options{K: k, Algorithm: algo, FinalizeGeometry: true})
			if err != nil {
				return err
			}
			row += fmt.Sprintf(" %12s", seconds(m.Elapsed))
		}
		if k <= 30 {
			imFocals := pickFocals(imN, cfg.Queries, cfg.Seed+int64(k))
			var imTime time.Duration
			for _, id := range imFocals {
				start := time.Now()
				if _, err := baseline.IMaxRank(imWL.ds.Records, imWL.ds.Records[id], id, k,
					baseline.DefaultIMaxRankOptions()); err != nil {
					return err
				}
				imTime += time.Since(start)
			}
			imTime /= time.Duration(len(imFocals))
			row += fmt.Sprintf(" %13s@n/10", seconds(imTime))
		} else {
			row += fmt.Sprintf(" %16s", "DNF")
		}
		fmt.Fprintln(w, row)
	}
	return nil
}

// Fig11 reports the side metrics of Fig. 10b's run: processed records
// (=inserted hyperplanes) and CellTree nodes at termination.
func Fig11(cfg Config) error {
	cfg.normalize()
	w := cfg.Out
	header(w, "fig11", "processed records / CellTree nodes (IND, d=4)")
	wl, err := buildWorkload(dataset.Independent, cfg.n(baseN), defaultD, cfg.Seed)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%4s | %10s %10s %10s | %10s %10s %10s\n",
		"k", "CTA recs", "P-CTA recs", "LP-CTA recs", "CTA nodes", "P-CTA nodes", "LP-CTA nodes")
	for _, k := range cfg.ks(wl.ds.Len()) {
		focals := cfg.focals(wl, k, cfg.Queries, cfg.Seed+int64(k))
		var recs, nodes [3]float64
		for i, algo := range []core.Algorithm{core.CTA, core.PCTA, core.LPCTA} {
			if algo == core.CTA && k > 50 {
				recs[i], nodes[i] = -1, -1 // DNF, as in the paper
				continue
			}
			m, err := wl.measure(focals, core.Options{K: k, Algorithm: algo, FinalizeGeometry: false})
			if err != nil {
				return err
			}
			recs[i], nodes[i] = m.Processed, m.Nodes
		}
		fmt.Fprintf(w, "%4d | %10.1f %10.1f %10.1f | %10.1f %10.1f %10.1f\n",
			k, recs[0], recs[1], recs[2], nodes[0], nodes[1], nodes[2])
	}
	fmt.Fprintln(w, "(-1 marks DNF rows: the paper reports CTA exceeding 2 hours beyond k=50)")
	return nil
}

// Fig12 varies the dataset cardinality (paper: 100K..10M; here scaled) and
// reports response time and space consumption (CellTree-dominated, which we
// report as node count and estimated MB).
func Fig12(cfg Config) error {
	cfg.normalize()
	w := cfg.Out
	header(w, "fig12", "effect of cardinality (IND, d=4, k=30)")
	// Paper axis 100K..10M around the 1M default; ours scales around baseN.
	baseCards := []int{baseN / 10, baseN / 2, baseN, baseN * 2, baseN * 5}
	kEff := cfg.kDefault(cfg.n(baseCards[0])) // one k across the sweep
	fmt.Fprintf(w, "(k=%d) ", kEff)
	fmt.Fprintf(w, "%9s | %12s %12s %12s | %14s %14s %14s\n",
		"n", "CTA (s)", "P-CTA (s)", "LP-CTA (s)", "CTA MB", "P-CTA MB", "LP-CTA MB")
	for _, bn := range baseCards {
		n := cfg.n(bn)
		wl, err := buildWorkload(dataset.Independent, n, defaultD, cfg.Seed)
		if err != nil {
			return err
		}
		focals := cfg.focals(wl, kEff, cfg.Queries, cfg.Seed+int64(n))
		var times [3]time.Duration
		var mem [3]float64
		for i, algo := range []core.Algorithm{core.CTA, core.PCTA, core.LPCTA} {
			m, err := wl.measure(focals, core.Options{K: kEff, Algorithm: algo, FinalizeGeometry: false})
			if err != nil {
				return err
			}
			times[i] = m.Elapsed
			mem[i] = m.Nodes * approxNodeBytes / (1 << 20)
		}
		fmt.Fprintf(w, "%9d | %12s %12s %12s | %14.3f %14.3f %14.3f\n",
			n, seconds(times[0]), seconds(times[1]), seconds(times[2]), mem[0], mem[1], mem[2])
	}
	return nil
}

// approxNodeBytes estimates the in-memory footprint of one CellTree node
// (struct, label, average cover-set share) for the space plot.
const approxNodeBytes = 256

// Fig13 varies the dimensionality from 2 to 7 and reports the response
// time of P-CTA and LP-CTA plus the kSPR result size.
func Fig13(cfg Config) error {
	cfg.normalize()
	w := cfg.Out
	header(w, "fig13", "effect of dimensionality (IND, k=30)")
	fmt.Fprintf(w, "%2s %8s %4s %14s %14s %14s\n", "d", "n", "k", "P-CTA (s)", "LP-CTA (s)", "result size")
	for _, d := range []int{2, 3, 4, 5, 6} {
		// High dimensionalities blow up the arrangement; shrink the
		// workload with d to keep the sweep tractable (documented in
		// EXPERIMENTS.md; the paper's C++ testbed faced the same trend).
		bn := baseN
		for dd := 5; dd <= d; dd++ {
			bn /= 4
		}
		wl, err := buildWorkload(dataset.Independent, cfg.n(bn), d, cfg.Seed)
		if err != nil {
			return err
		}
		kEff := cfg.kDefault(wl.ds.Len())
		focals := pickFocals(wl.ds.Len(), cfg.Queries, cfg.Seed+int64(d))
		p, err := wl.measure(focals, core.Options{K: kEff, Algorithm: core.PCTA, FinalizeGeometry: false})
		if err != nil {
			return err
		}
		l, err := wl.measure(focals, core.Options{K: kEff, Algorithm: core.LPCTA, FinalizeGeometry: false})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%2d %8d %4d %14s %14s %14.2f\n", d, wl.ds.Len(), kEff, seconds(p.Elapsed), seconds(l.Elapsed), l.Regions)
	}
	fmt.Fprintln(w, " 7      DNF: 6-d arrangements are impractical for this substrate at any useful n (see EXPERIMENTS.md)")
	return nil
}

// Fig14 studies the data distribution: LP-CTA response time and result size
// for IND, COR, ANTI while varying k (paper: COR fastest, ANTI slowest).
func Fig14(cfg Config) error {
	cfg.normalize()
	w := cfg.Out
	header(w, "fig14", "effect of distribution (LP-CTA, d=4)")
	dists := []dataset.Distribution{dataset.Anticorrelated, dataset.Independent, dataset.Correlated}
	fmt.Fprintf(w, "%4s |", "k")
	for _, dist := range dists {
		fmt.Fprintf(w, " %10s(s) %10s(sz) |", dist, dist)
	}
	fmt.Fprintln(w)
	wls := map[dataset.Distribution]*workload{}
	for _, dist := range dists {
		wl, err := buildWorkload(dist, cfg.n(baseN), defaultD, cfg.Seed)
		if err != nil {
			return err
		}
		wls[dist] = wl
	}
	for _, k := range cfg.ks(cfg.n(baseN)) {
		fmt.Fprintf(w, "%4d |", k)
		for _, dist := range dists {
			wl := wls[dist]
			focals := pickFocals(wl.ds.Len(), cfg.Queries, cfg.Seed+int64(k))
			m, err := wl.measure(focals, core.Options{K: k, Algorithm: core.LPCTA, FinalizeGeometry: false})
			if err != nil {
				return err
			}
			fmt.Fprintf(w, " %13s %13.1f |", seconds(m.Elapsed), m.Regions)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Fig15 runs P-CTA and LP-CTA on the simulated real datasets, varying k,
// and reports times plus result sizes.
func Fig15(cfg Config) error {
	cfg.normalize()
	w := cfg.Out
	header(w, "fig15", "real datasets (simulated): P-CTA vs LP-CTA")
	sets := []*dataset.Dataset{
		dataset.Hotel(cfg.n(41884), cfg.Seed),
		dataset.House(cfg.n(31526), cfg.Seed),
		dataset.NBA(cfg.n(2196), 1, cfg.Seed),
	}
	for _, ds := range sets {
		wl, err := indexDataset(ds)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s (n=%d, d=%d)\n", ds.Name, ds.Len(), ds.Dim())
		fmt.Fprintf(w, "  %4s %14s %14s %14s\n", "k", "P-CTA (s)", "LP-CTA (s)", "result size")
		for _, k := range cfg.ks(ds.Len()) {
			focals := pickFocals(ds.Len(), cfg.Queries, cfg.Seed+int64(k))
			p, err := wl.measure(focals, core.Options{K: k, Algorithm: core.PCTA, FinalizeGeometry: false})
			if err != nil {
				return err
			}
			l, err := wl.measure(focals, core.Options{K: k, Algorithm: core.LPCTA, FinalizeGeometry: false})
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "  %4d %14s %14s %14.1f\n", k, seconds(p.Elapsed), seconds(l.Elapsed), l.Regions)
		}
	}
	return nil
}
