package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/diskio"
	"repro/internal/rtree"
)

// measureDisk runs a configuration with the simulated disk manager attached
// (Appendix A): every R-tree page visit goes through an LRU buffer pool and
// cold reads are charged the paper's 0.2 ms.
func (w *workload) measureDisk(focals []int, opts core.Options) (cpu, io time.Duration, err error) {
	mgr := diskio.New(diskio.DefaultBufferPages, diskio.DefaultPageLatency)
	w.tree.SetTracker(mgr)
	defer w.tree.SetTracker(nil)
	for _, id := range focals {
		mgr.Reset()
		res, err := core.Run(w.tree, w.ds.Records[id], id, opts)
		if err != nil {
			return 0, 0, err
		}
		cpu += res.Stats.Elapsed
		io += mgr.IOTime()
	}
	q := time.Duration(len(focals))
	return cpu / q, io / q, nil
}

// Fig19 reproduces the disk-based scenario: total response time split into
// CPU and I/O for P-CTA and LP-CTA across k, n, d, and the real-dataset
// sims.
func Fig19(cfg Config) error {
	cfg.normalize()
	w := cfg.Out
	header(w, "fig19", "disk-based scenario (CPU + simulated I/O)")

	printRows := func(wl *workload, focals []int, label string) error {
		for _, algo := range []core.Algorithm{core.PCTA, core.LPCTA} {
			cpu, io, err := wl.measureDisk(focals, core.Options{K: cfg.kDefault(wl.ds.Len()), Algorithm: algo, FinalizeGeometry: false})
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "  %-10s %-8v cpu=%-10s io=%-10s total=%s\n",
				label, algo, seconds(cpu), seconds(io), seconds(cpu+io))
		}
		return nil
	}

	fmt.Fprintln(w, "(a) effect of k (IND, d=4)")
	wl, err := buildWorkload(dataset.Independent, cfg.n(baseN), defaultD, cfg.Seed)
	if err != nil {
		return err
	}
	for _, k := range cfg.ks(wl.ds.Len()) {
		focals := pickFocals(wl.ds.Len(), cfg.Queries, cfg.Seed+int64(k))
		for _, algo := range []core.Algorithm{core.PCTA, core.LPCTA} {
			cpu, io, err := wl.measureDisk(focals, core.Options{K: k, Algorithm: algo, FinalizeGeometry: false})
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "  k=%-4d %-8v cpu=%-10s io=%-10s total=%s\n",
				k, algo, seconds(cpu), seconds(io), seconds(cpu+io))
		}
	}

	fmt.Fprintln(w, "(b) effect of n (IND, d=4, k=30)")
	for _, bn := range []int{baseN / 10, baseN, baseN * 5} {
		n := cfg.n(bn)
		wl, err := buildWorkload(dataset.Independent, n, defaultD, cfg.Seed)
		if err != nil {
			return err
		}
		focals := pickFocals(n, cfg.Queries, cfg.Seed+int64(n))
		if err := printRows(wl, focals, fmt.Sprintf("n=%d", n)); err != nil {
			return err
		}
	}

	fmt.Fprintln(w, "(c) effect of d (IND, k=30; d>=5 omitted, see EXPERIMENTS.md)")
	for _, d := range []int{3, 4} {
		wl, err := buildWorkload(dataset.Independent, cfg.n(baseN), d, cfg.Seed)
		if err != nil {
			return err
		}
		focals := pickFocals(wl.ds.Len(), cfg.Queries, cfg.Seed+int64(d))
		if err := printRows(wl, focals, fmt.Sprintf("d=%d", d)); err != nil {
			return err
		}
	}

	fmt.Fprintln(w, "(d) real datasets (k=30)")
	for _, ds := range []*dataset.Dataset{
		dataset.Hotel(cfg.n(41884), cfg.Seed),
		dataset.House(cfg.n(31526), cfg.Seed),
		dataset.NBA(cfg.n(2196), 1, cfg.Seed),
	} {
		wl, err := indexDataset(ds)
		if err != nil {
			return err
		}
		focals := pickFocals(ds.Len(), cfg.Queries, cfg.Seed)
		if err := printRows(wl, focals, ds.Name); err != nil {
			return err
		}
	}
	return nil
}

// Fig20 compares P-CTA against the k-skyband approach of Appendix B:
// processed records and response time while varying k.
func Fig20(cfg Config) error {
	cfg.normalize()
	w := cfg.Out
	header(w, "fig20", "P-CTA vs k-skyband approach (IND, d=4)")
	wl, err := buildWorkload(dataset.Independent, cfg.n(baseN), defaultD, cfg.Seed)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%4s | %14s %14s | %14s %14s\n",
		"k", "P-CTA recs", "skyband recs", "P-CTA (s)", "skyband (s)")
	for _, k := range cfg.ks(wl.ds.Len()) {
		focals := pickFocals(wl.ds.Len(), cfg.Queries, cfg.Seed+int64(k))
		p, err := wl.measure(focals, core.Options{K: k, Algorithm: core.PCTA, FinalizeGeometry: false})
		if err != nil {
			return err
		}
		b, err := wl.measure(focals, core.Options{K: k, Algorithm: core.KSkybandCTA, FinalizeGeometry: false})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%4d | %14.1f %14.1f | %14s %14s\n",
			k, p.Processed, b.Processed, seconds(p.Elapsed), seconds(b.Elapsed))
	}
	return nil
}

// Fig22 compares the transformed-space algorithms with their
// original-space counterparts OP-CTA and OLP-CTA (Appendix C).
func Fig22(cfg Config) error {
	cfg.normalize()
	w := cfg.Out
	header(w, "fig22", "transformed vs original preference space (IND)")
	variants := []struct {
		name string
		opts core.Options
	}{
		{"P-CTA", core.Options{Algorithm: core.PCTA}},
		{"OP-CTA", core.Options{Algorithm: core.PCTA, Space: core.Original}},
		{"LP-CTA", core.Options{Algorithm: core.LPCTA}},
		{"OLP-CTA", core.Options{Algorithm: core.LPCTA, Space: core.Original}},
	}

	fmt.Fprintln(w, "(a) effect of k (d=4)")
	wl, err := buildWorkload(dataset.Independent, cfg.n(baseN), defaultD, cfg.Seed)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%4s", "k")
	for _, v := range variants {
		fmt.Fprintf(w, " %12s", v.name)
	}
	fmt.Fprintln(w)
	for _, k := range cfg.ks(wl.ds.Len()) {
		focals := pickFocals(wl.ds.Len(), cfg.Queries, cfg.Seed+int64(k))
		fmt.Fprintf(w, "%4d", k)
		for _, v := range variants {
			opts := v.opts
			opts.K = k
			m, err := wl.measure(focals, opts)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, " %12s", seconds(m.Elapsed))
		}
		fmt.Fprintln(w)
	}

	fmt.Fprintln(w, "(b) effect of d (k=30)")
	fmt.Fprintf(w, "%4s", "d")
	for _, v := range variants {
		fmt.Fprintf(w, " %12s", v.name)
	}
	fmt.Fprintln(w)
	for _, d := range []int{3, 4} {
		wl, err := buildWorkload(dataset.Independent, cfg.n(baseN), d, cfg.Seed)
		if err != nil {
			return err
		}
		focals := pickFocals(wl.ds.Len(), cfg.Queries, cfg.Seed+int64(d))
		fmt.Fprintf(w, "%4d", d)
		for _, v := range variants {
			opts := v.opts
			opts.K = cfg.kDefault(wl.ds.Len())
			m, err := wl.measure(focals, opts)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, " %12s", seconds(m.Elapsed))
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Fig23 measures index construction cost for the plain R-tree and the
// aggregate R-tree while varying n and d (Appendix D).
func Fig23(cfg Config) error {
	cfg.normalize()
	w := cfg.Out
	header(w, "fig23", "index construction time")

	build := func(n, d int) (time.Duration, time.Duration, error) {
		ds, err := dataset.Generate(dataset.Independent, n, d, cfg.Seed)
		if err != nil {
			return 0, 0, err
		}
		start := time.Now()
		if _, err := rtree.Build(ds.Records, rtree.WithoutAggregates()); err != nil {
			return 0, 0, err
		}
		plain := time.Since(start)
		start = time.Now()
		if _, err := rtree.Build(ds.Records); err != nil {
			return 0, 0, err
		}
		agg := time.Since(start)
		return plain, agg, nil
	}

	fmt.Fprintln(w, "(a) effect of n (d=4)")
	fmt.Fprintf(w, "%9s %14s %14s\n", "n", "R-tree (s)", "aR-tree (s)")
	for _, bn := range []int{baseN / 10, baseN / 2, baseN, baseN * 2, baseN * 5} {
		n := cfg.n(bn)
		plain, agg, err := build(n, defaultD)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%9d %14s %14s\n", n, seconds(plain), seconds(agg))
	}
	fmt.Fprintln(w, "(b) effect of d (n=base)")
	fmt.Fprintf(w, "%9s %14s %14s\n", "d", "R-tree (s)", "aR-tree (s)")
	for _, d := range []int{2, 3, 4, 5, 6, 7} {
		plain, agg, err := build(cfg.n(baseN), d)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%9d %14s %14s\n", d, seconds(plain), seconds(agg))
	}
	return nil
}

// Fig24 amortizes the index construction cost over the query workload and
// reports the resulting response times (Appendix D).
func Fig24(cfg Config) error {
	cfg.normalize()
	w := cfg.Out
	header(w, "fig24", "amortized response time (construction / queries added)")
	amortOver := 1000.0 // the paper amortizes over its 1000-query workloads

	fmt.Fprintln(w, "(a) effect of n (d=4, k=30)")
	fmt.Fprintf(w, "%9s %14s %14s\n", "n", "P-CTA (s)", "LP-CTA (s)")
	for _, bn := range []int{baseN / 10, baseN, baseN * 5} {
		n := cfg.n(bn)
		ds, err := dataset.Generate(dataset.Independent, n, defaultD, cfg.Seed)
		if err != nil {
			return err
		}
		start := time.Now()
		wl, err := indexDataset(ds)
		if err != nil {
			return err
		}
		buildCost := time.Since(start)
		focals := pickFocals(n, cfg.Queries, cfg.Seed+int64(n))
		amort := time.Duration(float64(buildCost) / amortOver)
		p, err := wl.measure(focals, core.Options{K: cfg.kDefault(wl.ds.Len()), Algorithm: core.PCTA, FinalizeGeometry: false})
		if err != nil {
			return err
		}
		l, err := wl.measure(focals, core.Options{K: cfg.kDefault(wl.ds.Len()), Algorithm: core.LPCTA, FinalizeGeometry: false})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%9d %14s %14s\n", n, seconds(p.Elapsed+amort), seconds(l.Elapsed+amort))
	}

	fmt.Fprintln(w, "(b) effect of d (k=30)")
	fmt.Fprintf(w, "%9s %14s %14s\n", "d", "P-CTA (s)", "LP-CTA (s)")
	for _, d := range []int{3, 4, 5} {
		ds, err := dataset.Generate(dataset.Independent, cfg.n(baseN), d, cfg.Seed)
		if err != nil {
			return err
		}
		start := time.Now()
		wl, err := indexDataset(ds)
		if err != nil {
			return err
		}
		amort := time.Duration(float64(time.Since(start)) / amortOver)
		focals := pickFocals(ds.Len(), cfg.Queries, cfg.Seed+int64(d))
		p, err := wl.measure(focals, core.Options{K: cfg.kDefault(wl.ds.Len()), Algorithm: core.PCTA, FinalizeGeometry: false})
		if err != nil {
			return err
		}
		l, err := wl.measure(focals, core.Options{K: cfg.kDefault(wl.ds.Len()), Algorithm: core.LPCTA, FinalizeGeometry: false})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%9d %14s %14s\n", d, seconds(p.Elapsed+amort), seconds(l.Elapsed+amort))
	}
	return nil
}
