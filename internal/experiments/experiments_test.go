package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/geom"
	"repro/internal/lp"
)

// tinyConfig keeps experiment smoke tests fast: minimal cardinalities and a
// single query per point.
func tinyConfig(buf *bytes.Buffer) Config {
	return Config{Scale: 0.01, Queries: 1, Seed: 7, Out: buf}
}

func TestAllRegistered(t *testing.T) {
	ids := map[string]bool{}
	for _, e := range All() {
		if e.ID == "" || e.Desc == "" || e.Run == nil {
			t.Fatalf("incomplete experiment entry %+v", e)
		}
		if ids[e.ID] {
			t.Fatalf("duplicate experiment id %s", e.ID)
		}
		ids[e.ID] = true
	}
	for _, want := range []string{"table1", "table2", "fig9", "fig10a", "fig10b", "fig11",
		"fig12", "fig13", "fig14", "fig15", "fig16", "fig17", "fig18", "fig19",
		"fig20", "fig22", "fig23", "fig24"} {
		if !ids[want] {
			t.Fatalf("experiment %s missing from registry", want)
		}
	}
	if _, ok := Lookup("fig9"); !ok {
		t.Fatal("Lookup(fig9) failed")
	}
	if _, ok := Lookup("nope"); ok {
		t.Fatal("Lookup(nope) succeeded")
	}
}

// Every experiment must run end-to-end at tiny scale and produce output.
// The heavyweight dimensional sweeps are exercised by the selected subset
// below; the rest run in the ksprbench binary.
func TestExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke tests are not short")
	}
	for _, id := range []string{"table1", "table2", "fig9", "fig10a", "fig11",
		"fig14", "fig17", "fig20", "fig23", "fig24"} {
		id := id
		t.Run(id, func(t *testing.T) {
			e, ok := Lookup(id)
			if !ok {
				t.Fatalf("experiment %s not registered", id)
			}
			var buf bytes.Buffer
			if err := e.Run(tinyConfig(&buf)); err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			if !strings.Contains(buf.String(), "===") {
				t.Fatalf("%s produced no banner:\n%s", id, buf.String())
			}
			if len(buf.String()) < 80 {
				t.Fatalf("%s produced suspiciously little output:\n%s", id, buf.String())
			}
		})
	}
}

func TestConfigNormalization(t *testing.T) {
	var c Config
	c.normalize()
	if c.Scale != 1 || c.Queries != 3 || c.Out == nil {
		t.Fatalf("normalize gave %+v", c)
	}
	if (Config{Scale: 0.001}).n(1000) < 10 {
		t.Fatal("n() must clamp to a usable floor")
	}
}

func TestKScaling(t *testing.T) {
	var c Config
	c.normalize()
	// Large n: the full sweep survives.
	full := c.ks(30000)
	if len(full) != len(kSweep) {
		t.Fatalf("ks(30000) = %v, want the full sweep", full)
	}
	// Tiny scale: clamped to a small k.
	small := c.ks(200)
	for _, k := range small {
		if k > 10 {
			t.Fatalf("ks(200) includes k=%d", k)
		}
	}
	if len(small) == 0 {
		t.Fatal("ks must never be empty")
	}
	if got := c.kDefault(20000); got != defaultK {
		t.Fatalf("kDefault(20000) = %d, want %d", got, defaultK)
	}
	if got := c.kDefault(200); got > 10 || got < 5 {
		t.Fatalf("kDefault(200) = %d out of clamp range", got)
	}
}

func TestSampleCells(t *testing.T) {
	cells, err := sampleCells(4, 50, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 5 {
		t.Fatalf("got %d cells, want 5", len(cells))
	}
	for i, cell := range cells {
		if len(cell.lemma2) > len(cell.full) {
			t.Fatalf("cell %d: lemma2 set (%d rows) exceeds full set (%d rows)",
				i, len(cell.lemma2), len(cell.full))
		}
		// Both sets must be feasible: they describe the same non-empty cell.
		for name, cons := range map[string][]geom.Constraint{"full": cell.full, "lemma2": cell.lemma2} {
			in, err := lp.FeasibleInterior(cons, 3, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !in.Feasible {
				t.Fatalf("cell %d: %s constraint set infeasible", i, name)
			}
		}
	}
}
