package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/lp"
	"repro/internal/polytope"
)

// arrangementCell is one random cell of the arrangement of m record
// hyperplanes: its full defining halfspace set (one oriented row per
// hyperplane) and its Lemma-2 set (space bounds + the labels the cell's
// root path would carry in a CellTree).
type arrangementCell struct {
	full   []geom.Constraint
	lemma2 []geom.Constraint
}

// sampleCells materializes `count` random cells of the arrangement of m
// hyperplanes in the (d-1)-dimensional transformed space WITHOUT building
// the full arrangement (which has O(m^(d-1)) cells and is intractable at
// the paper's m): a random interior point identifies its cell; the full set
// orients every hyperplane toward the point; the Lemma-2 label set is
// obtained by replaying the insertions for just this root path — a
// hyperplane becomes a label exactly when it cuts the current cell, i.e.
// when its far side is still feasible against the labels collected so far.
func sampleCells(d, m, count int, seed int64) ([]arrangementCell, error) {
	rng := rand.New(rand.NewSource(seed))
	ds, err := dataset.Generate(dataset.Independent, m*4+count, d, seed)
	if err != nil {
		return nil, err
	}
	focal := ds.Records[0]
	dim := d - 1
	var planes []geom.Hyperplane
	for id := 1; id < ds.Len() && len(planes) < m; id++ {
		rec := ds.Records[id]
		if geom.Compare(rec, focal) != geom.DomNone {
			continue
		}
		h := geom.NewHyperplaneTransformed(id, rec, focal)
		if h.Kind == geom.Proper {
			planes = append(planes, h)
		}
	}
	if len(planes) == 0 {
		return nil, fmt.Errorf("experiments: no usable hyperplanes for the arrangement")
	}
	bounds := geom.SpaceBoundsTransformed(dim)
	cells := make([]arrangementCell, 0, count)
	for len(cells) < count {
		w := simplexSample(rng, dim)
		onPlane := false
		cell := arrangementCell{
			full:   append([]geom.Constraint(nil), bounds...),
			lemma2: append([]geom.Constraint(nil), bounds...),
		}
		for _, h := range planes {
			side := h.Side(w, 1e-9)
			if side == 0 {
				onPlane = true
				break
			}
			hs := geom.Halfspace{H: h, Sign: side}
			cell.full = append(cell.full, hs.AsConstraint())
			// Label test: does h cut the current (label-defined) cell?
			far := geom.Halfspace{H: h, Sign: side.Opposite()}
			in, err := lp.FeasibleInterior(append(cell.lemma2, far.AsConstraint()), dim, nil)
			if err != nil {
				return nil, err
			}
			if in.Feasible {
				cell.lemma2 = append(cell.lemma2, hs.AsConstraint())
			}
		}
		if onPlane {
			continue
		}
		cells = append(cells, cell)
	}
	return cells, nil
}

// Fig16 compares the LP-based feasibility test with exact halfspace
// intersection (the lp_solve vs qhull experiment): both decide feasibility
// for 100 random cells of the arrangement of m hyperplanes, varying d and
// m. Both mechanisms receive the realistic cell description (the Lemma-2
// label set, what insertion actually tests); exact intersection on the raw
// m-row set is combinatorially impossible for our vertex-enumeration hull,
// just as the paper's full arrangements are impossible to materialize.
func Fig16(cfg Config) error {
	cfg.normalize()
	w := cfg.Out
	header(w, "fig16", "LP feasibility vs halfspace intersection (100 random cells)")
	const cellSamples = 100

	run := func(d, m int) (time.Duration, time.Duration, error) {
		cells, err := sampleCells(d, m, cellSamples, cfg.Seed)
		if err != nil {
			return 0, 0, err
		}
		dim := d - 1
		var lpTime, hullTime time.Duration
		for _, cell := range cells {
			start := time.Now()
			if _, err := lp.FeasibleInterior(cell.lemma2, dim, nil); err != nil {
				return 0, 0, err
			}
			lpTime += time.Since(start)
			start = time.Now()
			if _, err := polytope.FeasibleByVertexEnum(cell.lemma2, dim, nil); err != nil {
				return 0, 0, err
			}
			hullTime += time.Since(start)
		}
		return lpTime, hullTime, nil
	}

	fmt.Fprintln(w, "(a) effect of d (m=1000 hyperplanes; d=7 omitted: exact intersection is intractable there, which is the point)")
	fmt.Fprintf(w, "%2s %16s %16s %8s\n", "d", "lp_solve (s)", "qhull-style (s)", "speedup")
	for _, d := range []int{3, 4, 5, 6} {
		lpT, hullT, err := run(d, cfg.n(1000))
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%2d %16s %16s %8.1fx\n", d, seconds(lpT), seconds(hullT), hullT.Seconds()/lpT.Seconds())
	}
	fmt.Fprintln(w, "(b) effect of m (d=4)")
	fmt.Fprintf(w, "%6s %16s %16s %8s\n", "m", "lp_solve (s)", "qhull-style (s)", "speedup")
	for _, m := range []int{500, 1000, 5000, 10000} {
		lpT, hullT, err := run(defaultD, cfg.n(m))
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%6d %16s %16s %8.1fx\n", cfg.n(m), seconds(lpT), seconds(hullT), hullT.Seconds()/lpT.Seconds())
	}
	return nil
}

// Fig17 quantifies Lemma 2: feasibility testing against the full defining
// halfspace set of each cell versus only the root-path labels. The paper
// reports 96.5%+ of constraints eliminated and one to two orders of
// magnitude faster tests.
func Fig17(cfg Config) error {
	cfg.normalize()
	w := cfg.Out
	header(w, "fig17", "Lemma-2 constraint elimination (d=4, 100 random leaves)")
	const cellSamples = 100
	dim := defaultD - 1
	// The paper sweeps m to 50K with a sparse LP; our dense tableau is
	// O(m^2) memory on the full constraint set, so the sweep stops at 2000
	// — the ratio trend is established well before that.
	fmt.Fprintf(w, "%6s | %12s %12s | %14s %14s %8s\n",
		"m", "full rows", "lemma2 rows", "full (s)", "lemma2 (s)", "speedup")
	for _, m := range []int{500, 1000, 2000} {
		cells, err := sampleCells(defaultD, cfg.n(m), cellSamples, cfg.Seed)
		if err != nil {
			return err
		}
		var fullRows, lemmaRows int
		var fullTime, lemmaTime time.Duration
		for _, cell := range cells {
			fullRows += len(cell.full)
			lemmaRows += len(cell.lemma2)
			start := time.Now()
			if _, err := lp.FeasibleInterior(cell.full, dim, nil); err != nil {
				return err
			}
			fullTime += time.Since(start)
			start = time.Now()
			if _, err := lp.FeasibleInterior(cell.lemma2, dim, nil); err != nil {
				return err
			}
			lemmaTime += time.Since(start)
		}
		fmt.Fprintf(w, "%6d | %12.1f %12.1f | %14s %14s %8.1fx\n",
			cfg.n(m),
			float64(fullRows)/cellSamples, float64(lemmaRows)/cellSamples,
			seconds(fullTime), seconds(lemmaTime),
			fullTime.Seconds()/lemmaTime.Seconds())
	}
	return nil
}

// Fig18 compares the three LP-CTA bound flavours — per-record bounds
// (§6.1), group bounds (§6.2), and fast bounds (§6.3) — varying k and d.
func Fig18(cfg Config) error {
	cfg.normalize()
	w := cfg.Out
	header(w, "fig18", "record vs group vs fast bounds in LP-CTA (IND)")
	modes := []core.BoundsMode{core.FastBounds, core.GroupBounds, core.RecordBounds}

	fmt.Fprintln(w, "(a) effect of k (d=4)")
	wl, err := buildWorkload(dataset.Independent, cfg.n(baseN), defaultD, cfg.Seed)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%4s %14s %14s %14s\n", "k", "fast (s)", "group (s)", "record (s)")
	for _, k := range cfg.ks(wl.ds.Len()) {
		focals := pickFocals(wl.ds.Len(), cfg.Queries, cfg.Seed+int64(k))
		fmt.Fprintf(w, "%4d", k)
		for _, mode := range modes {
			m, err := wl.measure(focals, core.Options{
				K: k, Algorithm: core.LPCTA, Bounds: mode, FinalizeGeometry: false,
			})
			if err != nil {
				return err
			}
			fmt.Fprintf(w, " %14s", seconds(m.Elapsed))
		}
		fmt.Fprintln(w)
	}

	fmt.Fprintln(w, "(b) effect of d (k=30; d>=5 omitted: record/group bounds need LPs per entry there and do not terminate at useful scale)")
	fmt.Fprintf(w, "%4s %14s %14s %14s\n", "d", "fast (s)", "group (s)", "record (s)")
	for _, d := range []int{2, 3, 4} {
		bn := baseN
		wl, err := buildWorkload(dataset.Independent, cfg.n(bn), d, cfg.Seed)
		if err != nil {
			return err
		}
		kEff := cfg.kDefault(wl.ds.Len())
		focals := pickFocals(wl.ds.Len(), cfg.Queries, cfg.Seed+int64(d))
		fmt.Fprintf(w, "%4d", d)
		for _, mode := range modes {
			m, err := wl.measure(focals, core.Options{
				K: kEff, Algorithm: core.LPCTA, Bounds: mode, FinalizeGeometry: false,
			})
			if err != nil {
				return err
			}
			fmt.Fprintf(w, " %14s", seconds(m.Elapsed))
		}
		fmt.Fprintln(w)
	}
	return nil
}
