// Package experiments regenerates every table and figure of the paper's
// evaluation (§7 and appendices) on scaled-down workloads. Each experiment
// prints the same rows/series the paper plots; EXPERIMENTS.md records how
// the shapes compare. The cardinalities are scaled (Config.Scale) because
// the paper's testbed ran up to 10M records and 1000 queries per point;
// shapes — who wins, by what factor, where trends bend — are what the
// reproduction targets.
package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/rtree"
)

// Config controls experiment scale and reporting.
type Config struct {
	// Scale multiplies the baseline cardinalities (default 1.0; the
	// baseline default dataset is 20K records vs the paper's 1M).
	Scale float64
	// Queries is the number of focal records averaged per data point
	// (paper: 1000; default here: 3).
	Queries int
	// Seed fixes all randomness.
	Seed int64
	// Out receives the printed tables.
	Out io.Writer
	// SkybandFocals draws focal records from the dataset's K-skyband
	// instead of uniformly. The paper samples uniformly and averages over
	// 1000 queries; at reproduction scale with few queries, uniform draws
	// are usually dominated by >= k records and trivially empty, so this
	// mode exists to exercise the non-trivial path deterministically.
	SkybandFocals bool
}

func (c *Config) normalize() {
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.Queries <= 0 {
		c.Queries = 3
	}
	if c.Out == nil {
		c.Out = io.Discard
	}
}

// n scales a baseline cardinality.
func (c Config) n(base int) int {
	v := int(float64(base) * c.Scale)
	if v < 10 {
		v = 10
	}
	return v
}

// Experiment is a registered, runnable experiment.
type Experiment struct {
	ID   string
	Desc string
	Run  func(Config) error
}

// All lists every experiment in presentation order.
func All() []Experiment {
	return []Experiment{
		{"table1", "real dataset inventory (simulated, scaled)", Table1},
		{"table2", "experiment parameters and defaults", Table2},
		{"fig9", "NBA case study: focal center across two seasons", Fig9},
		{"fig10a", "LP-CTA vs RTOPK (IND, d=2, vary k)", Fig10a},
		{"fig10b", "CTA vs P-CTA vs LP-CTA vs iMaxRank (IND, d=4, vary k)", Fig10b},
		{"fig11", "processed records and CellTree nodes (IND, vary k)", Fig11},
		{"fig12", "response time and space vs cardinality (IND)", Fig12},
		{"fig13", "response time and result size vs dimensionality (IND)", Fig13},
		{"fig14", "effect of data distribution (LP-CTA, vary k)", Fig14},
		{"fig15", "real datasets: P-CTA vs LP-CTA (vary k)", Fig15},
		{"fig16", "LP feasibility test vs halfspace intersection", Fig16},
		{"fig17", "Lemma-2 inconsequential-halfspace elimination", Fig17},
		{"fig18", "record vs group vs fast bounds in LP-CTA", Fig18},
		{"fig19", "disk-based scenario: CPU + I/O time", Fig19},
		{"fig20", "P-CTA vs k-skyband approach (IND, vary k)", Fig20},
		{"fig22", "transformed vs original preference space", Fig22},
		{"fig23", "index construction cost (R-tree vs aR-tree)", Fig23},
		{"fig24", "amortized response time (construction cost amortized)", Fig24},
		{"ext-approx", "EXTENSION: approximate kSPR with accuracy guarantees (§8 future work)", ExtApprox},
	}
}

// Lookup finds an experiment by id.
func Lookup(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// Baseline workload parameters (paper defaults in parentheses).
const (
	baseN    = 20000 // cardinality (paper: 1M)
	defaultD = 4     // dimensionality (paper: 4)
	defaultK = 30    // shortlist size (paper: 30)
)

// kSweep is the paper's k-axis.
var kSweep = []int{10, 30, 50, 70, 90}

// ks returns the k values usable against a dataset of cardinality n: the
// paper's sweep, filtered so that k stays a small fraction of n. At the
// paper's scale (k=30 vs n=1M, 0.003%) the sweep is untouched; on
// scaled-down workloads, unfiltered k values would make the kSPR result
// cover much of the preference space and the arrangement blow up — a
// regime the paper never evaluates.
func (c Config) ks(n int) []int {
	// n/300 keeps k/n within a factor ~30 of the paper's densest setting
	// (k=90 at n=1M); beyond that the result covers so much of the space
	// that runtimes explode without saying anything the paper measures.
	cap := n / 300
	if cap < 10 {
		cap = 10
	}
	out := make([]int, 0, len(kSweep))
	for _, k := range kSweep {
		if k <= cap {
			out = append(out, k)
		}
	}
	if len(out) == 0 {
		out = append(out, cap)
	}
	return out
}

// kDefault returns the default k (the paper's 30) clamped the same way.
func (c Config) kDefault(n int) int {
	k := defaultK
	if cap := n / 300; cap < k {
		k = cap
	}
	if k < 5 {
		k = 5
	}
	return k
}

// workload bundles a dataset with its index.
type workload struct {
	ds   *dataset.Dataset
	tree *rtree.Tree
}

func buildWorkload(dist dataset.Distribution, n, d int, seed int64) (*workload, error) {
	ds, err := dataset.Generate(dist, n, d, seed)
	if err != nil {
		return nil, err
	}
	tree, err := rtree.Build(ds.Records)
	if err != nil {
		return nil, err
	}
	return &workload{ds: ds, tree: tree}, nil
}

func indexDataset(ds *dataset.Dataset) (*workload, error) {
	tree, err := rtree.Build(ds.Records)
	if err != nil {
		return nil, err
	}
	return &workload{ds: ds, tree: tree}, nil
}

// pickFocals selects q focal record ids uniformly at random, as the paper
// does ("1000 queries randomly selected from the corresponding dataset").
func pickFocals(n, q int, seed int64) []int {
	rng := rand.New(rand.NewSource(seed))
	ids := make([]int, q)
	for i := range ids {
		ids[i] = rng.Intn(n)
	}
	return ids
}

// focals picks the focal set for a workload: uniform (the paper's protocol)
// or from the k-skyband when Config.SkybandFocals is set.
func (c Config) focals(wl *workload, k, q int, seed int64) []int {
	if !c.SkybandFocals {
		return pickFocals(wl.ds.Len(), q, seed)
	}
	band := wl.tree.KSkyband(k, nil)
	rng := rand.New(rand.NewSource(seed))
	ids := make([]int, q)
	for i := range ids {
		ids[i] = band[rng.Intn(len(band))]
	}
	return ids
}

// measure runs a kSPR configuration over the focal set and returns the
// average stats plus average elapsed time.
type measurement struct {
	Elapsed   time.Duration
	Processed float64
	Nodes     float64
	Regions   float64
	LPSolves  float64
	IOReads   float64 // filled by the disk experiment
	CPU       time.Duration
}

func (w *workload) measure(focals []int, opts core.Options) (measurement, error) {
	var m measurement
	for _, id := range focals {
		res, err := core.Run(w.tree, w.ds.Records[id], id, opts)
		if err != nil {
			return m, fmt.Errorf("focal %d: %w", id, err)
		}
		m.Elapsed += res.Stats.Elapsed
		m.Processed += float64(res.Stats.ProcessedRecords)
		m.Nodes += float64(res.Stats.CellTreeNodes)
		m.Regions += float64(res.Stats.Regions)
		m.LPSolves += float64(res.Stats.LPSolves)
	}
	q := len(focals)
	m.Elapsed /= time.Duration(q)
	m.Processed /= float64(q)
	m.Nodes /= float64(q)
	m.Regions /= float64(q)
	m.LPSolves /= float64(q)
	return m, nil
}

// seconds renders a duration the way the paper's log-scale plots read.
func seconds(d time.Duration) string {
	return fmt.Sprintf("%.4g", d.Seconds())
}

// header prints an experiment banner.
func header(w io.Writer, id, title string) {
	fmt.Fprintf(w, "\n=== %s — %s\n", id, title)
}

// simplexSample draws a random interior point of the transformed space.
func simplexSample(rng *rand.Rand, dim int) geom.Vector {
	raw := make([]float64, dim+1)
	var sum float64
	for i := range raw {
		raw[i] = rng.ExpFloat64() + 1e-9
		sum += raw[i]
	}
	w := make(geom.Vector, dim)
	for i := range w {
		w[i] = raw[i] / sum
	}
	return w
}
