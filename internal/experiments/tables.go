package experiments

import (
	"fmt"
	"strings"

	"repro/internal/dataset"
)

// Table1 prints the real-dataset inventory of the paper's Table 1, with the
// simulated stand-ins actually used here and their scaled cardinalities.
func Table1(cfg Config) error {
	cfg.normalize()
	w := cfg.Out
	header(w, "table1", "real dataset information (simulated stand-ins)")
	type row struct {
		name      string
		d         int
		paperN    int
		ds        *dataset.Dataset
		source    string
		simulated string
	}
	rows := []row{
		{"HOTEL", 4, 418843, dataset.Hotel(cfg.n(41884), cfg.Seed), "hotels-base.com",
			"latent-quality simulation (stars/facilities correlated, price-value opposed)"},
		{"HOUSE", 6, 315265, dataset.House(cfg.n(31526), cfg.Seed), "ipums.org",
			"budget-constrained spending simulation (mildly anti-correlated)"},
		{"NBA", 8, 21960, dataset.NBA(cfg.n(2196), 1, cfg.Seed), "basketball-reference.com",
			"latent skill-and-minutes simulation with positional specialization"},
	}
	fmt.Fprintf(w, "%-7s %2s %10s %10s  %-28s %s\n", "dataset", "d", "paper n", "sim n", "source (paper)", "attributes")
	for _, r := range rows {
		fmt.Fprintf(w, "%-7s %2d %10d %10d  %-28s %s\n",
			r.name, r.d, r.paperN, r.ds.Len(), r.source, strings.Join(r.ds.Attributes, ","))
		fmt.Fprintf(w, "        substitution: %s\n", r.simulated)
	}
	return nil
}

// Table2 prints the experiment parameter grid of the paper's Table 2 and
// the scaled values this harness uses.
func Table2(cfg Config) error {
	cfg.normalize()
	w := cfg.Out
	header(w, "table2", "experiment parameters (defaults in [brackets])")
	fmt.Fprintf(w, "%-26s %-40s %s\n", "parameter", "paper values", "harness values")
	fmt.Fprintf(w, "%-26s %-40s 100K..10M scaled by %g => base [%d]\n",
		"dataset cardinality (n)", "100K, 500K, [1M], 5M, 10M", cfg.Scale, cfg.n(baseN))
	fmt.Fprintf(w, "%-26s %-40s same\n", "dimensionality (d)", "2, 3, [4], 5, 6, 7")
	fmt.Fprintf(w, "%-26s %-40s same\n", "value k", "10, [30], 50, 70, 90")
	fmt.Fprintf(w, "%-26s %-40s %d\n", "queries per data point", "1000", cfg.Queries)
	return nil
}
