// Package dominance maintains the dominance graph of P-CTA (§5): as records
// are fetched and processed, all dominance relationships between processed
// records are recorded so that the hyperplane-insertion algorithm can skip
// feasibility tests (the optInsert shortcut of Algorithm 2).
package dominance

import (
	"repro/internal/geom"
	"repro/internal/kernel"
)

// Graph tracks dominance relationships among a growing set of records.
// Record coordinates live in one flat row-major array (appended on Add),
// so wiring a new record compares it against contiguous memory instead
// of chasing a map of per-record slices — the O(m^2) edge construction
// is the progressive engine's dominance hot loop.
// The zero value is not usable; call New.
type Graph struct {
	ids  []int
	pos  map[int]int // id -> row index into vals
	vals []float64   // row-major record coordinates, d per row
	d    int         // set by the first Add
	// dominators[id] lists the processed records that dominate id.
	dominators map[int][]int
	// dominatees[id] lists the processed records dominated by id.
	dominatees map[int][]int
}

// New returns an empty dominance graph.
func New() *Graph {
	return &Graph{
		pos:        make(map[int]int),
		dominators: make(map[int][]int),
		dominatees: make(map[int][]int),
	}
}

// Add inserts a record and wires its dominance edges to every record
// already in the graph. Adding an existing id is a no-op.
func (g *Graph) Add(id int, v geom.Vector) {
	if _, ok := g.pos[id]; ok {
		return
	}
	if len(g.ids) == 0 {
		g.d = len(v)
	}
	d := g.d
	for row, other := range g.ids {
		switch kernel.CompareFlat(g.vals[row*d:(row+1)*d], v, d) {
		case kernel.CmpFirst:
			g.dominators[id] = append(g.dominators[id], other)
			g.dominatees[other] = append(g.dominatees[other], id)
		case kernel.CmpSecond:
			g.dominators[other] = append(g.dominators[other], id)
			g.dominatees[id] = append(g.dominatees[id], other)
		}
	}
	g.pos[id] = len(g.ids)
	g.ids = append(g.ids, id)
	g.vals = append(g.vals, v...)
}

// Has reports whether id is in the graph.
func (g *Graph) Has(id int) bool {
	_, ok := g.pos[id]
	return ok
}

// Len returns the number of records in the graph.
func (g *Graph) Len() int { return len(g.ids) }

// Dominators returns the IDs of processed records that dominate id.
// Because dominance is transitive and every dominator of a processed record
// is processed before it (P-CTA's Invariant 1), this is the full ancestor
// set, not just direct parents.
func (g *Graph) Dominators(id int) []int { return g.dominators[id] }

// Dominatees returns the IDs of processed records dominated by id.
func (g *Graph) Dominatees(id int) []int { return g.dominatees[id] }

// Vector returns the stored record for id (nil if absent).
func (g *Graph) Vector(id int) geom.Vector {
	row, ok := g.pos[id]
	if !ok {
		return nil
	}
	return geom.Vector(g.vals[row*g.d : (row+1)*g.d : (row+1)*g.d])
}
