// Package dominance maintains the dominance graph of P-CTA (§5): as records
// are fetched and processed, all dominance relationships between processed
// records are recorded so that the hyperplane-insertion algorithm can skip
// feasibility tests (the optInsert shortcut of Algorithm 2).
package dominance

import (
	"repro/internal/geom"
)

// Graph tracks dominance relationships among a growing set of records.
// The zero value is not usable; call New.
type Graph struct {
	ids  []int
	vecs map[int]geom.Vector
	// dominators[id] lists the processed records that dominate id.
	dominators map[int][]int
	// dominatees[id] lists the processed records dominated by id.
	dominatees map[int][]int
}

// New returns an empty dominance graph.
func New() *Graph {
	return &Graph{
		vecs:       make(map[int]geom.Vector),
		dominators: make(map[int][]int),
		dominatees: make(map[int][]int),
	}
}

// Add inserts a record and wires its dominance edges to every record
// already in the graph. Adding an existing id is a no-op.
func (g *Graph) Add(id int, v geom.Vector) {
	if _, ok := g.vecs[id]; ok {
		return
	}
	for _, other := range g.ids {
		switch geom.Compare(g.vecs[other], v) {
		case geom.DomFirst:
			g.dominators[id] = append(g.dominators[id], other)
			g.dominatees[other] = append(g.dominatees[other], id)
		case geom.DomSecond:
			g.dominators[other] = append(g.dominators[other], id)
			g.dominatees[id] = append(g.dominatees[id], other)
		}
	}
	g.ids = append(g.ids, id)
	g.vecs[id] = v
}

// Has reports whether id is in the graph.
func (g *Graph) Has(id int) bool {
	_, ok := g.vecs[id]
	return ok
}

// Len returns the number of records in the graph.
func (g *Graph) Len() int { return len(g.ids) }

// Dominators returns the IDs of processed records that dominate id.
// Because dominance is transitive and every dominator of a processed record
// is processed before it (P-CTA's Invariant 1), this is the full ancestor
// set, not just direct parents.
func (g *Graph) Dominators(id int) []int { return g.dominators[id] }

// Dominatees returns the IDs of processed records dominated by id.
func (g *Graph) Dominatees(id int) []int { return g.dominatees[id] }

// Vector returns the stored record for id (nil if absent).
func (g *Graph) Vector(id int) geom.Vector { return g.vecs[id] }
