package dominance

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geom"
)

func TestAddAndQuery(t *testing.T) {
	g := New()
	g.Add(1, geom.Vector{0.9, 0.9}) // dominates 2 and 3
	g.Add(2, geom.Vector{0.5, 0.5}) // dominates 3
	g.Add(3, geom.Vector{0.1, 0.2})
	g.Add(4, geom.Vector{0.95, 0.1}) // incomparable with 2, 3

	if g.Len() != 4 {
		t.Fatalf("Len = %d", g.Len())
	}
	if !g.Has(2) || g.Has(99) {
		t.Fatal("Has is broken")
	}
	wantDom := map[int][]int{
		1: nil,
		2: {1},
		3: {1, 2},
		4: nil,
	}
	for id, want := range wantDom {
		got := append([]int(nil), g.Dominators(id)...)
		sort.Ints(got)
		if len(got) != len(want) {
			t.Fatalf("Dominators(%d) = %v, want %v", id, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("Dominators(%d) = %v, want %v", id, got, want)
			}
		}
	}
	dees := append([]int(nil), g.Dominatees(1)...)
	sort.Ints(dees)
	if len(dees) != 2 || dees[0] != 2 || dees[1] != 3 {
		t.Fatalf("Dominatees(1) = %v", dees)
	}
}

func TestAddIdempotent(t *testing.T) {
	g := New()
	g.Add(1, geom.Vector{0.5, 0.5})
	g.Add(1, geom.Vector{0.5, 0.5})
	if g.Len() != 1 {
		t.Fatalf("duplicate Add changed Len to %d", g.Len())
	}
}

func TestVectorAccess(t *testing.T) {
	g := New()
	v := geom.Vector{0.3, 0.4}
	g.Add(7, v)
	if got := g.Vector(7); !got.Equal(v) {
		t.Fatalf("Vector(7) = %v", got)
	}
	if g.Vector(8) != nil {
		t.Fatal("Vector of absent id should be nil")
	}
}

func TestGraphMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	vecs := make([]geom.Vector, 80)
	g := New()
	for i := range vecs {
		v := geom.Vector{rng.Float64(), rng.Float64(), rng.Float64()}
		vecs[i] = v
		g.Add(i, v)
	}
	for i := range vecs {
		var want []int
		for j := range vecs {
			if i != j && geom.Dominates(vecs[j], vecs[i]) {
				want = append(want, j)
			}
		}
		got := append([]int(nil), g.Dominators(i)...)
		sort.Ints(got)
		sort.Ints(want)
		if len(got) != len(want) {
			t.Fatalf("record %d: %d dominators, want %d", i, len(got), len(want))
		}
		for k := range got {
			if got[k] != want[k] {
				t.Fatalf("record %d: dominators %v, want %v", i, got, want)
			}
		}
	}
}

func TestEqualRecordsAreNotEdges(t *testing.T) {
	g := New()
	g.Add(1, geom.Vector{0.5, 0.5})
	g.Add(2, geom.Vector{0.5, 0.5})
	if len(g.Dominators(1)) != 0 || len(g.Dominators(2)) != 0 {
		t.Fatal("equal records must not dominate each other")
	}
}
