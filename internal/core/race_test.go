//go:build race

package core

// raceEnabled trims the heaviest test matrices when the race detector is
// on: instrumentation slows the LP-heavy loops by an order of magnitude,
// and the race job's goal is interleaving coverage, not numeric breadth.
const raceEnabled = true
