package core

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/rtree"
)

// liveSim simulates the live-dataset store at the engine level: records
// with stable ids, mutated one batch at a time, re-indexed per generation.
type liveSim struct {
	ids    []int64
	recs   []geom.Vector
	nextID int64
	tree   *rtree.Tree
}

func newLiveSim(t *testing.T, recs []geom.Vector) *liveSim {
	t.Helper()
	s := &liveSim{}
	for _, r := range recs {
		s.ids = append(s.ids, s.nextID)
		s.recs = append(s.recs, r.Clone())
		s.nextID++
	}
	s.rebuild(t)
	return s
}

func (s *liveSim) rebuild(t *testing.T) {
	t.Helper()
	tree, err := rtree.Build(s.recs)
	if err != nil {
		t.Fatalf("rebuild index: %v", err)
	}
	s.tree = tree
}

func (s *liveSim) dense(id int64) int {
	for i, x := range s.ids {
		if x == id {
			return i
		}
	}
	return -1
}

// step applies one mutation and returns the engine-level delta.
func (s *liveSim) step(t *testing.T, op string, id int64, vals geom.Vector) Delta {
	t.Helper()
	var d Delta
	switch op {
	case "insert":
		d.New = vals.Clone()
		s.ids = append(s.ids, s.nextID)
		s.recs = append(s.recs, d.New)
		s.nextID++
	case "update":
		i := s.dense(id)
		d.Old, d.New = s.recs[i], vals.Clone()
		s.recs = append(append([]geom.Vector(nil), s.recs[:i]...), s.recs[i:]...) // copy-on-write
		s.recs[i] = d.New
	case "delete":
		i := s.dense(id)
		d.Old = s.recs[i]
		s.ids = append(append([]int64(nil), s.ids[:i]...), s.ids[i+1:]...)
		s.recs = append(append([]geom.Vector(nil), s.recs[:i]...), s.recs[i+1:]...)
	}
	s.rebuild(t)
	return d
}

func randVec(rng *rand.Rand, d int, lo, hi float64) geom.Vector {
	v := make(geom.Vector, d)
	for j := range v {
		v[j] = lo + (hi-lo)*rng.Float64()
	}
	return v
}

// TestIncrementalMatchesColdRecompute is the acceptance test of the
// incremental maintenance engine: a randomized mutation stream — a mix of
// irrelevant churn (records dominated by the focal or deep inside the
// dominated interior) and genuinely relevant edits — applied one
// generation at a time, asserting after EVERY generation that the
// maintained result is byte-identical to a cold recompute on that
// generation, and that both the keep and the recompute path actually ran.
func TestIncrementalMatchesColdRecompute(t *testing.T) {
	algos := []Algorithm{LPCTA, PCTA, KSkybandCTA, CTA}
	for _, algo := range algos {
		algo := algo
		t.Run(algo.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(7 + int64(algo)))
			const n, d, k = 220, 3, 6
			base := make([]geom.Vector, n)
			for i := range base {
				base[i] = randVec(rng, d, 0, 1)
			}
			sim := newLiveSim(t, base)

			// A focal from the k-skyband so the query does real work.
			band := sim.tree.KSkyband(k, nil)
			focalStable := sim.ids[band[len(band)/2]]
			focalDense := sim.dense(focalStable)
			opts := Options{K: k, Algorithm: algo, FinalizeGeometry: true, Seed: 3}

			m, err := NewMaintainer(sim.tree, sim.tree.Records[focalDense], focalDense, opts)
			if err != nil {
				t.Fatalf("cold run: %v", err)
			}

			focal := m.Result().Focal
			for step := 0; step < 24; step++ {
				var delta Delta
				switch step % 6 {
				case 0: // Tier-A churn: insert a record the focal dominates
					v := focal.Clone()
					for j := range v {
						v[j] *= 0.3 + 0.6*rng.Float64()
					}
					delta = sim.step(t, "insert", 0, v)
				case 1: // Tier-B churn: insert deep in the dominated interior
					delta = sim.step(t, "insert", 0, randVec(rng, d, 0.01, 0.15))
				case 2: // relevant: insert near the skyline
					delta = sim.step(t, "insert", 0, randVec(rng, d, 0.85, 1))
				case 3: // delete a random non-focal record
					for {
						id := sim.ids[rng.Intn(len(sim.ids))]
						if id != focalStable {
							delta = sim.step(t, "delete", id, nil)
							break
						}
					}
				case 4: // update a random non-focal record
					for {
						id := sim.ids[rng.Intn(len(sim.ids))]
						if id != focalStable {
							delta = sim.step(t, "update", id, randVec(rng, d, 0, 1))
							break
						}
					}
				default: // no-op update (value-preserving)
					id := sim.ids[rng.Intn(len(sim.ids))]
					delta = sim.step(t, "update", id, sim.recs[sim.dense(id)].Clone())
				}

				newDense := sim.dense(focalStable)
				got, _, err := m.Apply(sim.tree, newDense, []Delta{delta})
				if err != nil {
					t.Fatalf("step %d: apply: %v", step, err)
				}
				cold, err := Run(sim.tree, sim.tree.Records[newDense], newDense, opts)
				if err != nil {
					t.Fatalf("step %d: cold run: %v", step, err)
				}
				if !bytes.Equal(EncodeResult(got), EncodeResult(cold)) {
					t.Fatalf("%s step %d: incremental result diverged from cold recompute (incremental %d regions, cold %d)",
						algo, step, len(got.Regions), len(cold.Regions))
				}
			}
			st := m.Stats()
			if st.Kept == 0 {
				t.Fatalf("%s: keep path never taken (stats %+v)", algo, st)
			}
			if st.Recomputed == 0 {
				t.Fatalf("%s: recompute path never taken (stats %+v)", algo, st)
			}
			if st.Generations != 24 {
				t.Fatalf("generations %d, want 24", st.Generations)
			}
		})
	}
}

// TestIncrementalFollowsRepricedFocal pins the focal-mutation semantics:
// repricing the focal option recomputes with the new vector, and deleting
// it errors.
func TestIncrementalFollowsRepricedFocal(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	base := make([]geom.Vector, 150)
	for i := range base {
		base[i] = randVec(rng, 3, 0, 1)
	}
	sim := newLiveSim(t, base)
	band := sim.tree.KSkyband(4, nil)
	focalStable := sim.ids[band[0]]
	opts := Options{K: 4, Algorithm: LPCTA, FinalizeGeometry: true}
	m, err := NewMaintainer(sim.tree, sim.tree.Records[sim.dense(focalStable)], sim.dense(focalStable), opts)
	if err != nil {
		t.Fatal(err)
	}

	reprice := randVec(rng, 3, 0.8, 1)
	delta := sim.step(t, "update", focalStable, reprice)
	res, recomputed, err := m.Apply(sim.tree, sim.dense(focalStable), []Delta{delta})
	if err != nil {
		t.Fatalf("apply reprice: %v", err)
	}
	if !recomputed {
		t.Fatal("focal reprice did not recompute")
	}
	if !res.Focal.Equal(reprice) {
		t.Fatalf("maintained result focal %v, want repriced %v", res.Focal, reprice)
	}
	cold, err := Run(sim.tree, geom.Vector(reprice), sim.dense(focalStable), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(EncodeResult(res), EncodeResult(cold)) {
		t.Fatal("repriced result diverged from cold recompute")
	}

	sim.step(t, "delete", focalStable, nil)
	if _, _, err := m.Apply(sim.tree, -1, nil); err == nil {
		t.Fatal("deleting the focal record did not error")
	}
}

// TestFocalStateClassification pins the irrelevance tiers directly.
func TestFocalStateClassification(t *testing.T) {
	recs := []geom.Vector{
		{0.9, 0.9}, {0.8, 0.95}, {0.95, 0.8}, // skyline
		{0.5, 0.5},               // the focal
		{0.7, 0.7}, {0.75, 0.65}, // mid-band
	}
	tree, err := rtree.Build(recs)
	if err != nil {
		t.Fatal(err)
	}
	s := NewFocalState(tree, recs[3], 3, 2, LPCTA)

	if !s.VectorIrrelevant(geom.Vector{0.4, 0.3}) {
		t.Fatal("focal-dominated vector classified relevant")
	}
	if !s.VectorIrrelevant(geom.Vector{0.5, 0.5}) {
		t.Fatal("exact tie classified relevant")
	}
	if !s.VectorIrrelevant(geom.Vector{0.6, 0.6}) {
		t.Fatal("2-dominated vector classified relevant (K=2)")
	}
	if s.VectorIrrelevant(geom.Vector{0.97, 0.97}) {
		t.Fatal("new skyline point classified irrelevant")
	}
	if s.VectorIrrelevant(geom.Vector{0.85, 0.9}) {
		t.Fatal("1-dominated vector classified irrelevant at K=2")
	}

	cta := NewFocalState(tree, recs[3], 3, 2, CTA)
	if cta.VectorIrrelevant(geom.Vector{0.6, 0.6}) {
		t.Fatal("CTA must not keep through Tier B")
	}
	if !cta.VectorIrrelevant(geom.Vector{0.4, 0.3}) {
		t.Fatal("CTA Tier A broken")
	}

	if !s.Unaffected([]Delta{{Old: geom.Vector{0.9, 0.9}, New: geom.Vector{0.9, 0.9}}}) {
		t.Fatal("value-preserving update classified affected")
	}
	if s.Unaffected([]Delta{{New: geom.Vector{0.99, 0.99}}}) {
		t.Fatal("skyline insert classified unaffected")
	}
}

// TestSubEpsilonRepriceRecomputes pins bit-exactness of the keep-path: a
// reprice smaller than geom.Eps still changes the bytes a cold recompute
// builds, so it must NOT be classified a value-preserving no-op.
func TestSubEpsilonRepriceRecomputes(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	base := make([]geom.Vector, 120)
	for i := range base {
		base[i] = randVec(rng, 3, 0, 1)
	}
	sim := newLiveSim(t, base)
	band := sim.tree.KSkyband(4, nil)
	focalStable := sim.ids[band[len(band)/2]]
	opts := Options{K: 4, Algorithm: LPCTA, FinalizeGeometry: true}
	m, err := NewMaintainer(sim.tree, sim.tree.Records[sim.dense(focalStable)], sim.dense(focalStable), opts)
	if err != nil {
		t.Fatal(err)
	}
	// Sub-epsilon reprice of a SKYLINE record (relevant for sure).
	victim := sim.ids[sim.tree.Skyline(nil)[0]]
	if victim == focalStable {
		victim = sim.ids[sim.tree.Skyline(nil)[1]]
	}
	nudged := sim.recs[sim.dense(victim)].Clone()
	nudged[0] += 1e-12
	delta := sim.step(t, "update", victim, nudged)
	got, recomputed, err := m.Apply(sim.tree, sim.dense(focalStable), []Delta{delta})
	if err != nil {
		t.Fatal(err)
	}
	if !recomputed {
		t.Fatal("sub-epsilon reprice of a relevant record classified as no-op")
	}
	cold, err := Run(sim.tree, sim.tree.Records[sim.dense(focalStable)], sim.dense(focalStable), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(EncodeResult(got), EncodeResult(cold)) {
		t.Fatal("result diverged after sub-epsilon reprice")
	}
	// A sub-epsilon reprice of the FOCAL must also recompute (bit-exact
	// revalidation), with the result following the new bits.
	fNudged := sim.recs[sim.dense(focalStable)].Clone()
	fNudged[1] += 1e-12
	delta = sim.step(t, "update", focalStable, fNudged)
	got, recomputed, err = m.Apply(sim.tree, sim.dense(focalStable), []Delta{delta})
	if err != nil {
		t.Fatal(err)
	}
	if !recomputed {
		t.Fatal("sub-epsilon focal reprice kept the stale result")
	}
	if got.Focal[1] != fNudged[1] {
		t.Fatal("recompute did not follow the focal's new bits")
	}
}
