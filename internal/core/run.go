package core

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/celltree"
	"repro/internal/dominance"
	"repro/internal/geom"
	"repro/internal/lp"
	"repro/internal/rtree"
)

// querySolverPool shares LP workspaces across standalone queries: the
// serial-path solver and the per-worker rank-bound solvers are drawn
// here and returned when the query finishes, so repeated queries stop
// rebuilding simplex arenas. Batch queries are excluded — their arenas
// are owned by the batch scheduler's slots.
var querySolverPool sync.Pool

// getPooledSolver draws a solver from the query pool, rebound to stats.
func getPooledSolver(stats *lp.Stats) *lp.Solver {
	if sv, ok := querySolverPool.Get().(*lp.Solver); ok {
		sv.SetStats(stats)
		return sv
	}
	return lp.NewSolver(stats)
}

// putPooledSolver returns a solver to the query pool.
func putPooledSolver(sv *lp.Solver) {
	sv.SetStats(nil)
	querySolverPool.Put(sv)
}

// Run answers a kSPR query: it reports every region of the preference space
// where focal ranks within the top opts.K records of the indexed dataset.
// focalID is the index of the focal record inside the dataset, or -1 when
// the focal record is not part of it.
func Run(tree *rtree.Tree, focal geom.Vector, focalID int, opts Options) (*Result, error) {
	return runQuery(tree, focal, focalID, opts, nil, nil, nil)
}

// runQuery runs one kSPR query, optionally wired into a batch: shared is
// the batch's read-only precomputation, arena a reusable LP solver owned
// by the calling scheduler slot, and forks the batch-wide insertion token
// pool (all nil for a standalone Run).
func runQuery(tree *rtree.Tree, focal geom.Vector, focalID int, opts Options,
	shared *batchShared, arena *lp.Solver, forks *celltree.Forks) (*Result, error) {
	if opts.K <= 0 {
		return nil, fmt.Errorf("core: K must be positive, got %d", opts.K)
	}
	if len(focal) != tree.Dim {
		return nil, fmt.Errorf("core: focal record has %d dims, index has %d", len(focal), tree.Dim)
	}
	if tree.Dim < 2 {
		return nil, fmt.Errorf("core: kSPR needs at least 2 data dimensions")
	}
	if opts.VolumeSamples <= 0 {
		opts.VolumeSamples = 10000
	}
	start := time.Now()
	r := &runner{tree: tree, focal: focal, focalID: focalID, opts: opts,
		shared: shared, batchForks: forks, inBatch: shared != nil || arena != nil || forks != nil}
	if arena != nil {
		arena.SetStats(&r.lpStats)
		r.solver = arena
	}
	res, err := r.run()
	// All insertion forks and rank-bound workers have joined: hand the
	// query's pooled LP workspaces back (on the error path too — solvers
	// carry no state between solves).
	r.releaseSolvers()
	if err != nil {
		return nil, err
	}
	res.Stats.Elapsed = time.Since(start)
	return res, nil
}

// cancelled reports the Ctx error once the query's context is done. It is
// the single cancellation check shared by every processing loop; with a nil
// Ctx it is a constant-time no-op.
func (r *runner) cancelled() error {
	if r.opts.Ctx == nil {
		return nil
	}
	select {
	case <-r.opts.Ctx.Done():
		return r.opts.Ctx.Err()
	default:
		return nil
	}
}

// runner holds the per-query state shared by the algorithm variants.
type runner struct {
	tree    *rtree.Tree
	focal   geom.Vector
	focalID int
	opts    Options

	// space geometry
	dim    int // preference-space dimensionality (d-1 transformed, d original)
	bounds []geom.Constraint

	// dominance filtering (§3.1)
	baseRank int          // records dominating focal: they outrank it everywhere
	domIDs   []int        // the dominators themselves (ascending), for Region.Outscorers
	kAdj     int          // K - baseRank: threshold inside the CellTree
	skip     map[int]bool // records excluded from hyperplane processing
	// rankSkip excludes records that can never outscore focal from rank
	// bound computations (focal itself, exact ties, records dominated by
	// focal). Dominators stay IN rank bounds: they count toward K there.
	rankSkip map[int]bool

	ct      *celltree.Tree
	lpStats lp.Stats
	// boundsIdx is the candidate index LP-CTA's look-ahead rank bounds
	// traverse: an aggregate R-tree over exactly this query's non-skip
	// k-skyband (see buildBoundsIndex). nil when the query has no
	// candidates or no look-ahead.
	boundsIdx *rtree.Tree
	// solver is the coordinating goroutine's reusable LP workspace; engine
	// workers get their own (see parallel.go). pooledSolver marks it as
	// drawn from querySolverPool (standalone path) rather than owned by a
	// batch scheduler slot.
	solver       *lp.Solver
	pooledSolver bool
	// workerSolvers / workerStats are the rank-bound workers' persistent
	// arenas, created once per query so solver workspaces survive across
	// progressive batches.
	workerSolvers []*lp.Solver
	workerStats   []lp.Stats

	// score bounds machinery (per-space objective for S(p))
	pObj   geom.Vector
	pConst float64

	// batch wiring (nil/false for a standalone Run): shared is the batch's
	// read-only precomputation, batchForks the batch-wide insertion token
	// pool, and inBatch suppresses the per-query fork budget (the batch
	// scheduler owns goroutine accounting).
	shared     *batchShared
	batchForks *celltree.Forks
	inBatch    bool

	result *Result
}

// lpSolver returns the runner's serial-path LP solver, drawn from the
// query pool on first use and accounting into the query's LP totals.
func (r *runner) lpSolver() *lp.Solver {
	if r.solver == nil {
		r.solver = getPooledSolver(&r.lpStats)
		r.pooledSolver = true
	}
	return r.solver
}

// releaseSolvers returns every pooled LP workspace the query acquired:
// the serial-path solver (unless it is a batch-owned arena), the rank
// bound workers' solvers, and the cell tree's insertion solver. Called
// once per query after all workers have joined.
func (r *runner) releaseSolvers() {
	if r.pooledSolver {
		putPooledSolver(r.solver)
		r.solver = nil
		r.pooledSolver = false
	}
	for _, sv := range r.workerSolvers {
		putPooledSolver(sv)
	}
	r.workerSolvers = nil
	if r.ct != nil {
		r.ct.ReleaseSolvers()
	}
}

// lpWorkerSolvers returns the query's persistent per-worker solvers with
// their stats counters reset, ready for one parallel phase. workers is
// constant for a query (r.workers()), so the slices are sized once and the
// solvers' stats pointers stay valid for the query's lifetime.
func (r *runner) lpWorkerSolvers(workers int) ([]*lp.Solver, []lp.Stats) {
	if r.workerSolvers == nil {
		r.workerStats = make([]lp.Stats, workers)
		r.workerSolvers = make([]*lp.Solver, workers)
		for w := range r.workerSolvers {
			r.workerSolvers[w] = getPooledSolver(&r.workerStats[w])
		}
	}
	for w := range r.workerStats {
		r.workerStats[w] = lp.Stats{}
	}
	return r.workerSolvers, r.workerStats
}

func (r *runner) run() (*Result, error) {
	d := r.tree.Dim
	excludeFocal := func(id int) bool { return id == r.focalID }

	domSpan := r.opts.Trace.Span(PhaseDominance)
	dominators := r.tree.Dominators(r.focal, excludeFocal)
	dominated := r.tree.DominatedBy(r.focal, excludeFocal)
	ties := r.tree.EqualTo(r.focal, excludeFocal)
	domSpan.End()

	r.baseRank = len(dominators)
	r.domIDs = dominators
	r.kAdj = r.opts.K - r.baseRank
	r.result = &Result{Focal: r.focal.Clone(), K: r.opts.K, Space: r.opts.Space}
	r.result.Stats.BaseRank = r.baseRank
	if r.kAdj <= 0 {
		// p is beaten everywhere by at least K records: empty result.
		return r.finish(), nil
	}

	r.skip = make(map[int]bool, len(dominators)+len(dominated)+len(ties)+1)
	r.rankSkip = make(map[int]bool, len(dominated)+len(ties)+1)
	if r.focalID >= 0 {
		r.skip[r.focalID] = true
		r.rankSkip[r.focalID] = true
	}
	for _, id := range dominators {
		r.skip[id] = true
	}
	for _, id := range dominated {
		r.skip[id] = true
		r.rankSkip[id] = true
	}
	for _, id := range ties {
		r.skip[id] = true
		r.rankSkip[id] = true
	}

	// Space-dependent machinery.
	switch r.opts.Space {
	case Transformed:
		r.dim = d - 1
		r.bounds = geom.SpaceBoundsTransformed(r.dim)
		r.ct = celltree.New(r.dim, r.kAdj, r.bounds, geom.SimplexCenter(r.dim), &r.lpStats)
		r.pObj = make(geom.Vector, r.dim)
		for j := 0; j < r.dim; j++ {
			r.pObj[j] = r.focal[j] - r.focal[d-1]
		}
		r.pConst = r.focal[d-1]
	case Original:
		r.dim = d
		r.bounds = geom.SpaceBoundsOriginal(d)
		center := make(geom.Vector, d)
		for j := range center {
			center[j] = 0.5
		}
		r.ct = celltree.New(r.dim, r.kAdj, r.bounds, center, &r.lpStats)
		r.pObj = r.focal.Clone()
		r.pConst = 0
	default:
		return nil, fmt.Errorf("core: unknown space %d", r.opts.Space)
	}
	switch {
	case r.inBatch:
		// The batch scheduler owns goroutine accounting: insertions draw
		// from the batch-wide token pool (possibly nil), shared with every
		// sibling query.
		r.ct.Forks = r.batchForks
	default:
		if w := r.workers(); w > 1 {
			// Attach the engine's fork budget: insertions may then fan
			// disjoint cell subtrees across w goroutines in total.
			r.ct.Forks = celltree.NewForks(w - 1)
		}
	}

	var err error
	switch r.opts.Algorithm {
	case CTA:
		err = r.runCTA(r.allCandidateIDs())
	case KSkybandCTA:
		bandSpan := r.opts.Trace.Span(PhaseSkyband)
		ids := r.kSkybandIDs()
		bandSpan.End()
		err = r.runCTA(ids)
	case PCTA, LPCTA:
		err = r.runProgressive()
	default:
		err = fmt.Errorf("core: unknown algorithm %d", r.opts.Algorithm)
	}
	if err != nil {
		return nil, err
	}

	// Emit every surviving leaf (rank is exact there). The walk collects in
	// DFS order; finalization fans out and appends in that same order.
	var pending []pendingRegion
	var walkErr error
	r.ct.LiveLeaves(func(n *celltree.Node) bool {
		if err := r.cancelled(); err != nil {
			walkErr = err
			return false
		}
		rank := r.baseRank + r.ct.Rank(n)
		if rank <= r.opts.K {
			pending = append(pending, pendingRegion{leaf: n, rank: rank, exact: true})
		}
		return true
	})
	if walkErr != nil {
		return nil, walkErr
	}
	if err := r.emitAll(pending); err != nil {
		return nil, err
	}
	return r.finish(), nil
}

// maximalPivots drops pivots dominated by other pivots: by transitivity
// their dominance regions are subsumed, so the AnyNotDominated check is
// unchanged while the per-entry dominance tests shrink drastically.
func maximalPivots(ids []int, dg *dominance.Graph) []int {
	if len(ids) <= 1 {
		return ids
	}
	inSet := make(map[int]bool, len(ids))
	for _, id := range ids {
		inSet[id] = true
	}
	out := ids[:0]
	for _, id := range ids {
		maximal := true
		for _, dom := range dg.Dominators(id) {
			if inSet[dom] {
				maximal = false
				break
			}
		}
		if maximal {
			out = append(out, id)
		}
	}
	return out
}

// pivotKey canonicalizes a sorted pivot id list for caching.
func pivotKey(ids []int) string {
	sort.Ints(ids)
	var b []byte
	for _, id := range ids {
		b = appendInt(b, id)
		b = append(b, ',')
	}
	return string(b)
}

func appendInt(b []byte, v int) []byte {
	if v == 0 {
		return append(b, '0')
	}
	var tmp [20]byte
	i := len(tmp)
	for v > 0 {
		i--
		tmp[i] = byte('0' + v%10)
		v /= 10
	}
	return append(b, tmp[i:]...)
}

// hyperplane maps record id to its hyperplane in the processing space.
func (r *runner) hyperplane(id int) geom.Hyperplane {
	rec := r.tree.Records[id]
	if r.opts.Space == Original {
		return geom.NewHyperplaneOriginal(id, rec, r.focal)
	}
	return geom.NewHyperplaneTransformed(id, rec, r.focal)
}

// allCandidateIDs returns every record that competes with focal (CTA's
// processing order: dataset order).
func (r *runner) allCandidateIDs() []int {
	ids := make([]int, 0, r.tree.Len())
	for id := range r.tree.Records {
		if !r.skip[id] {
			ids = append(ids, id)
		}
	}
	return ids
}

// kSkybandCandidates returns the K-skyband of the dataset with the focal
// record excluded, in ascending id order. Standalone queries traverse the
// R-tree; batch queries derive the identical list from the shared
// dominator-count table in O(band).
func (r *runner) kSkybandCandidates() []int {
	if r.shared != nil {
		return r.shared.skyband(r.tree, r.opts.K, r.focalID)
	}
	// KSkybandExcluding serves from the tree's persisted band table when
	// one is attached (warm-loaded index) and falls back to the BBS
	// traversal otherwise — identical output either way.
	return r.tree.KSkybandExcluding(r.opts.K, r.focalID)
}

// kSkybandIDs returns the K-skyband of the dataset minus skipped records
// (Appendix B: by Lemma 6 only these can matter).
func (r *runner) kSkybandIDs() []int {
	band := r.kSkybandCandidates()
	ids := band[:0]
	for _, id := range band {
		if !r.skip[id] {
			ids = append(ids, id)
		}
	}
	return ids
}

// candIndex is the candidate record index the progressive algorithms run
// their pivot reportability checks against: an aggregate R-tree whose
// record id ci maps to dataset id orig[ci]. member, when non-nil, narrows
// the index to this query's candidates (the batch path shares one tree
// across queries with different candidate sets); a nil candIndex means no
// candidates at all.
type candIndex struct {
	tree   *rtree.Tree
	orig   []int
	member []bool
}

// anyUnprocessedEscapes reports whether some still-unprocessed candidate
// escapes the pivots' dominance regions (the Lemma 5 reportability test).
func (ci *candIndex) anyUnprocessedEscapes(pivots []geom.Vector, processed map[int]bool) bool {
	if ci == nil {
		return false
	}
	return ci.tree.AnyNotDominated(pivots, func(i int) bool {
		if ci.member != nil && !ci.member[i] {
			return true
		}
		return processed[ci.orig[i]]
	})
}

// buildCandIndex assembles the candidate index for this query: only
// K-skyband records can matter (Lemma 6's argument extends to the
// reportability test: a non-skyband escapee implies either a skyband
// escapee or enough accounted dominators to disqualify the cell). Batch
// queries reuse the shared band tree with a membership mask; standalone
// queries build a dedicated tree over just their candidates.
func (r *runner) buildCandIndex() (*candIndex, error) {
	if r.shared != nil {
		member := make([]bool, len(r.shared.band))
		any := false
		for i, id := range r.shared.band {
			if r.shared.inSkyband(i, r.opts.K, r.focalID, r.tree) && !r.skip[id] {
				member[i] = true
				any = true
			}
		}
		if !any {
			return nil, nil
		}
		return &candIndex{tree: r.shared.candTree, orig: r.shared.band, member: member}, nil
	}
	candIDs := r.kSkybandCandidates()
	candRecs := make([]geom.Vector, 0, len(candIDs))
	candOrig := make([]int, 0, len(candIDs))
	for _, id := range candIDs {
		if !r.skip[id] {
			candRecs = append(candRecs, r.tree.Records[id])
			candOrig = append(candOrig, id)
		}
	}
	if len(candRecs) == 0 {
		return nil, nil
	}
	tree, err := rtree.Build(candRecs)
	if err != nil {
		return nil, err
	}
	return &candIndex{tree: tree, orig: candOrig}, nil
}

// buildBoundsIndex assembles the index LP-CTA's look-ahead rank bounds
// traverse: an aggregate R-tree over exactly this query's candidates (the
// non-skip k-skyband, ascending dataset id). Standalone queries reuse the
// candidate index's dedicated tree; batch queries materialize their own
// small tree from the shared band and membership mask, so the bound
// decisions — group MBRs, counts, traversal order — are a pure function
// of the candidate set and therefore identical between batch and serial
// runs, and across dataset generations that leave the candidate set
// untouched (incremental maintenance's keep-path guarantee).
func (r *runner) buildBoundsIndex(cand *candIndex) (*rtree.Tree, error) {
	if cand == nil {
		return nil, nil
	}
	if cand.member == nil {
		return cand.tree, nil
	}
	recs := make([]geom.Vector, 0, len(cand.orig))
	for i, in := range cand.member {
		if in {
			recs = append(recs, r.shared.recs[i])
		}
	}
	return rtree.Build(recs)
}

// runCTA inserts the given records' hyperplanes one by one (§4).
func (r *runner) runCTA(ids []int) error {
	span := r.opts.Trace.Span(PhaseExpand)
	defer span.End()
	for _, id := range ids {
		if r.ct.Done() {
			return nil
		}
		if err := r.cancelled(); err != nil {
			return err
		}
		h := r.hyperplane(id)
		if h.Kind != geom.Proper {
			// Ties and constant shifts were filtered out; anything left is a
			// degenerate duplicate — ignore it, it cannot alter any ranking.
			continue
		}
		if err := r.ct.Insert(h, nil); err != nil {
			return err
		}
		r.result.Stats.ProcessedRecords++
	}
	return nil
}

// runProgressive implements Algorithms 2 and 3: batch processing in
// dominance order with pivot-based early reporting, plus (for LP-CTA)
// look-ahead rank bounds on freshly created cells.
func (r *runner) runProgressive() error {
	dg := dominance.New()
	processed := make(map[int]bool)
	excludeBase := func(id int) bool { return r.skip[id] }

	// Candidate index for the pivot checks (shared across the batch when
	// this query runs as part of one).
	bandSpan := r.opts.Trace.Span(PhaseSkyband)
	cand, err := r.buildCandIndex()
	if err != nil {
		return err
	}
	lookahead := r.opts.Algorithm == LPCTA
	if lookahead {
		if r.boundsIdx, err = r.buildBoundsIndex(cand); err != nil {
			return err
		}
	}

	// First batch: the skyline of the competing records (Invariant 1) —
	// derived from the shared dominance table when batched (exact here:
	// every member of Skyline(D \ skip) is in the shared band once the
	// query survives the kAdj > 0 check, see batchShared.firstBatch).
	var batch []int
	if r.shared != nil {
		batch = r.shared.firstBatch(r.skip)
	} else {
		batch = r.tree.Skyline(excludeBase)
	}
	bandSpan.End()

	r.ct.TakeFreshLeaves() // the root cell's bounds are trivially [1, n]

	for len(batch) > 0 && !r.ct.Done() {
		r.result.Stats.Batches++
		sort.Ints(batch)
		expandSpan := r.opts.Trace.Span(PhaseExpand)
		for _, id := range batch {
			if r.ct.Done() {
				break
			}
			if err := r.cancelled(); err != nil {
				return err
			}
			h := r.hyperplane(id)
			processed[id] = true
			if h.Kind != geom.Proper {
				continue
			}
			dg.Add(id, r.tree.Records[id])
			dom := dg.Dominators(id)
			var domSet map[int]bool
			if len(dom) > 0 {
				domSet = make(map[int]bool, len(dom))
				for _, d := range dom {
					domSet[d] = true
				}
			}
			if err := r.ct.Insert(h, domSet); err != nil {
				return err
			}
			r.result.Stats.ProcessedRecords++
		}
		expandSpan.End()
		if r.ct.Done() {
			break
		}

		// LP-CTA: rank bounds for the cells created by this batch (§6.4).
		if lookahead {
			if err := r.boundFreshLeaves(); err != nil {
				return err
			}
		} else {
			r.ct.TakeFreshLeaves() // keep the buffer from growing
		}
		if r.ct.Done() {
			break
		}

		// Pivot-based reporting and the union of non-pivots (Algorithm 2
		// lines 13-19).
		pivotSpan := r.opts.Trace.Span(PhasePivots)
		np := make(map[int]bool)
		var reportErr error
		var toReport, toPrune []*celltree.Node
		// The pivot check depends only on the (maximal) pivot set, which
		// many sibling cells share; cache it per batch.
		checkCache := make(map[string]bool)
		r.ct.LiveLeaves(func(c *celltree.Node) bool {
			if r.ct.Rank(c) > r.kAdj {
				// Rank grew past the budget through an ancestor's cover set
				// without the leaf being revisited; it is not promising.
				toPrune = append(toPrune, c)
				return true
			}
			pivotIDs := maximalPivots(r.ct.Pivots(c), dg)
			key := pivotKey(pivotIDs)
			affected, seen := checkCache[key]
			if !seen {
				pivots := make([]geom.Vector, len(pivotIDs))
				for i, id := range pivotIDs {
					pivots[i] = r.tree.Records[id]
				}
				affected = cand.anyUnprocessedEscapes(pivots, processed)
				checkCache[key] = affected
			}
			if affected {
				// Some unprocessed record may still affect c.
				for _, id := range r.ct.NonPivots(c) {
					np[id] = true
				}
				return true
			}
			toReport = append(toReport, c)
			return true
		})
		for _, c := range toPrune {
			r.ct.Prune(c)
		}
		pivotSpan.End()
		if len(toReport) > 0 {
			pending := make([]pendingRegion, len(toReport))
			for i, c := range toReport {
				pending[i] = pendingRegion{leaf: c, rank: r.baseRank + r.ct.Rank(c), exact: true}
			}
			if err := r.emitAll(pending); err != nil {
				reportErr = err
			}
			for _, c := range toReport {
				r.ct.Report(c)
			}
		}
		if reportErr != nil {
			return reportErr
		}
		if r.ct.Done() {
			break
		}

		// Next batch: unprocessed records on the skyline of D minus the
		// non-pivot union (Algorithm 2 lines 20-21).
		skySpan := r.opts.Trace.Span(PhaseSkyband)
		sky := r.tree.Skyline(func(id int) bool { return r.skip[id] || np[id] })
		batch = batch[:0]
		for _, id := range sky {
			if !processed[id] {
				batch = append(batch, id)
			}
		}
		skySpan.End()
		if len(batch) == 0 {
			// Should be impossible while live cells remain (every live cell
			// admits an unprocessed record outside its pivots' dominance
			// region, and such a record surfaces in the skyline of D\NP).
			// Defensive fallback: finish exactly with plain insertion.
			var rest []int
			for id := range r.tree.Records {
				if !processed[id] && !r.skip[id] {
					rest = append(rest, id)
				}
			}
			sort.Ints(rest)
			return r.runCTA(rest)
		}
	}
	return nil
}
