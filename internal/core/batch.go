// Shared-work batch execution. A kSPR workload that interrogates one
// dataset with many focal options (a product panel, a pricing sweep, a
// what-if grid) repeats a large amount of dataset-dependent work per query:
// the k-skyband candidate filter, the candidate R-tree used by the pivot
// reportability checks, and the warm-up of per-worker LP solver arenas.
// RunBatch answers kSPR for N focal options in a single pass that pays
// those costs once:
//
//   - dominance precomputation: one (maxK+1)-skyband of the dataset with
//     exact dominator counts, from which every item's per-focal k-skyband
//     is derived in O(band) instead of a fresh R-tree traversal — exactly,
//     so results stay byte-identical to serial runs;
//   - a single candidate R-tree over that skyband, shared (read-only) by
//     every item's progressive reportability checks;
//   - a batch-wide celltree.Forks token pool, so insertion fan-out capacity
//     migrates to whichever item can use it;
//   - one lp.Solver arena per scheduler slot, rebound (SetStats) to each
//     item it runs, so simplex scratch memory is reused across queries.
//
// Scheduling goes through the same Options.Parallelism budget as a single
// query: with W workers and N items, min(W, N) items run concurrently and
// each item's engine gets W/min(W,N) workers, so a one-item batch behaves
// exactly like Run and a wide batch keeps every core on a distinct query.
// Each item's Result is byte-identical to a serial Run of that item (see
// TestBatchMatchesSerial); only scheduling-observable fields (Elapsed,
// Stats.Parallelism) depend on the batch shape.
package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/celltree"
	"repro/internal/geom"
	"repro/internal/kernel"
	"repro/internal/lp"
	"repro/internal/rtree"
)

// maxSharedBand caps the skyband size the batch precomputation is built
// for: the dominance table is quadratic in the band, so beyond this the
// batch falls back to independent per-item traversals (results are
// identical; only the sharing is skipped).
const maxSharedBand = 4096

// ErrBatchAborted marks items that were never started because an earlier
// item failed and the batch runs in fail-fast mode.
var ErrBatchAborted = errors.New("core: batch item skipped after earlier item failed")

// BatchItem is one focal option of a batch. Focal may be nil when FocalID
// names a dataset record; a non-nil Focal is used verbatim (FocalID < 0
// for hypothetical records). K overrides BatchOptions.K when positive, so
// a batch may mix shortlist sizes. Ctx, when non-nil, cancels just this
// item (it replaces Options.Ctx for the item's run).
type BatchItem struct {
	FocalID int
	Focal   geom.Vector
	K       int
	Ctx     context.Context
}

// BatchOutcome is the per-item result of RunBatch: exactly one of Result
// and Err is set. Item failures (bad focal id, per-item cancellation) are
// reported here, not as a batch-level error, so one poisoned item cannot
// sink its siblings.
type BatchOutcome struct {
	Result *Result
	Err    error
}

// BatchOptions configures RunBatch. The embedded Options apply to every
// item (K acts as the default shortlist size; Ctx as the batch-wide
// cancellation).
type BatchOptions struct {
	Options
	// FailFast aborts items not yet started once any item errors; they
	// settle with ErrBatchAborted.
	FailFast bool
	// NoShare disables the shared precomputation, running every item as an
	// independent serial query on the scheduler. Outputs are identical
	// either way; the switch exists for cross-checking and measurement.
	NoShare bool
	// ItemTimeout, when positive, bounds each item's processing time: the
	// item's context is derived with this timeout when the item starts
	// running (queue time does not count), so one pathological item times
	// out on its own instead of consuming the whole batch's deadline.
	ItemTimeout time.Duration
	// OnOutcome, when set, receives each item's outcome as soon as it
	// settles (completion order, not item order; calls are serialized).
	OnOutcome func(i int, o BatchOutcome)
}

// batchShared is the read-only state precomputed once per batch and
// consulted by every item's runner.
type batchShared struct {
	// band is the (maxK+1)-skyband of the dataset in ascending id order:
	// the only records that can appear in any item's k-skyband (k <= maxK).
	band []int
	// recs[i] is the record vector of band[i]; domCnt[i] its exact
	// dominator count over the full dataset (all dominators of a band
	// member are band members, by transitivity).
	recs   []geom.Vector
	domCnt []int
	// domAdj[i] lists the band positions of band[i]'s dominators, powering
	// the derived first-batch skyline of the progressive algorithms.
	domAdj [][]int32
	// candTree indexes the band records (record id i in candTree is band
	// position i); shared by every item's reportability checks.
	candTree *rtree.Tree
}

// newBatchShared builds the shared dominance precomputation for shortlist
// sizes up to maxK. It returns a shared state with a nil candTree when
// there is nothing worth sharing (empty dataset band, or a band too large
// for the quadratic dominance table).
func newBatchShared(tree *rtree.Tree, maxK int) (*batchShared, error) {
	band := tree.KSkyband(maxK+1, nil)
	if len(band) == 0 || len(band) > maxSharedBand {
		return &batchShared{}, nil
	}
	s := &batchShared{
		band:   band,
		recs:   make([]geom.Vector, len(band)),
		domCnt: make([]int, len(band)),
		domAdj: make([][]int32, len(band)),
	}
	for i, id := range band {
		s.recs[i] = tree.Records[id]
	}
	// The quadratic dominance table runs over a gathered flat copy of the
	// band records (see internal/kernel): one contiguous array instead of
	// a slice-of-slices walk.
	rows := kernel.PackRows(s.recs, tree.Dim)
	kernel.PairwiseDominators(rows, len(band), tree.Dim, s.domCnt, s.domAdj)
	var err error
	s.candTree, err = rtree.Build(s.recs)
	if err != nil {
		return nil, fmt.Errorf("core: batch candidate index: %w", err)
	}
	return s, nil
}

// inSkyband reports whether band position i belongs to the k-skyband of
// the dataset with the record focalID excluded — the same membership
// tree.KSkyband(k, exclude focalID) computes, derived from the shared
// dominator counts: excluding the focal record removes at most its own
// dominance contribution from every count.
func (s *batchShared) inSkyband(i, k, focalID int, tree *rtree.Tree) bool {
	if s.band[i] == focalID {
		return false
	}
	cnt := s.domCnt[i]
	if focalID >= 0 && geom.Dominates(tree.Records[focalID], s.recs[i]) {
		cnt--
	}
	return cnt < k
}

// skyband materializes the derived k-skyband id list (ascending, matching
// tree.KSkyband output order).
func (s *batchShared) skyband(tree *rtree.Tree, k, focalID int) []int {
	out := make([]int, 0, len(s.band))
	for i, id := range s.band {
		if s.inSkyband(i, k, focalID, tree) {
			out = append(out, id)
		}
	}
	return out
}

// firstBatch derives tree.Skyline(exclude skip) for a query that reached
// the progressive loop, in ascending id order. The derivation is exact
// there: a record outside the skip set whose dominators all lie in skip
// has only focal-dominating dominators (a dominator that the focal
// dominates or ties would transitively put the record in skip), so its
// dominator count is at most baseRank <= K-1 and it belongs to the shared
// band. Skyline membership within D\skip is then "every dominator is
// skipped", read straight off the adjacency lists.
func (s *batchShared) firstBatch(skip map[int]bool) []int {
	out := make([]int, 0, 16)
	for i, id := range s.band {
		if skip[id] {
			continue
		}
		onSky := true
		for _, j := range s.domAdj[i] {
			if !skip[s.band[j]] {
				onSky = false
				break
			}
		}
		if onSky {
			out = append(out, id)
		}
	}
	return out
}

// resolveOuterInner splits a parallelism budget across n items: outer
// items run concurrently, each on an engine of inner workers.
func resolveOuterInner(workers, n int) (outer, inner int) {
	outer = workers
	if outer > n {
		outer = n
	}
	if outer < 1 {
		outer = 1
	}
	inner = workers / outer
	if inner < 1 {
		inner = 1
	}
	return outer, inner
}

// RunBatch answers kSPR for every item over one dataset, sharing
// precomputation and scheduling across the Options.Parallelism budget.
// The returned slice is indexed like items and is identical regardless of
// parallelism or scheduling order. A non-nil error is returned only for
// batch-level misconfiguration (unusable index, no positive K anywhere);
// per-item failures land in the corresponding BatchOutcome.
func RunBatch(tree *rtree.Tree, items []BatchItem, opts BatchOptions) ([]BatchOutcome, error) {
	if len(items) == 0 {
		return nil, nil
	}
	if tree.Dim < 2 {
		return nil, fmt.Errorf("core: kSPR needs at least 2 data dimensions")
	}
	maxK := 0
	for i := range items {
		k := items[i].K
		if k == 0 {
			k = opts.K
		}
		if k > maxK {
			maxK = k
		}
	}
	if maxK <= 0 {
		return nil, fmt.Errorf("core: batch needs a positive K (options or per item)")
	}

	var shared *batchShared
	if !opts.NoShare && len(items) > 1 && opts.Algorithm != CTA {
		sharedSpan := opts.Trace.Span(PhaseSkyband)
		var err error
		shared, err = newBatchShared(tree, maxK)
		sharedSpan.End()
		if err != nil {
			return nil, err
		}
		if shared.candTree == nil {
			shared = nil // nothing worth sharing
		}
	}

	workers := resolveParallelism(opts.Parallelism)
	outer, inner := resolveOuterInner(workers, len(items))
	var forks *celltree.Forks
	if workers > outer {
		// The batch-wide fork pool: insertion fan-out tokens float between
		// items, so capacity freed by a finished item is picked up by
		// whichever item next reaches a fork point.
		forks = celltree.NewForks(workers - outer)
	}

	outcomes := make([]BatchOutcome, len(items))
	var next atomic.Int64
	next.Store(-1)
	var aborted atomic.Bool
	var emitMu sync.Mutex
	settle := func(i int, o BatchOutcome) {
		outcomes[i] = o
		if opts.OnOutcome != nil {
			emitMu.Lock()
			opts.OnOutcome(i, o)
			emitMu.Unlock()
		}
	}
	runItem := func(arena *lp.Solver, i int) {
		if opts.FailFast && aborted.Load() {
			settle(i, BatchOutcome{Err: ErrBatchAborted})
			return
		}
		it := items[i]
		o := opts.Options
		if it.K != 0 {
			o.K = it.K
		}
		if it.Ctx != nil {
			o.Ctx = it.Ctx
		}
		if opts.ItemTimeout > 0 {
			base := o.Ctx
			if base == nil {
				base = context.Background()
			}
			ctx, cancel := context.WithTimeout(base, opts.ItemTimeout)
			defer cancel()
			o.Ctx = ctx
		}
		o.Parallelism = inner
		focal := it.Focal
		if focal == nil {
			if it.FocalID < 0 || it.FocalID >= tree.Len() {
				if opts.FailFast {
					aborted.Store(true)
				}
				settle(i, BatchOutcome{Err: fmt.Errorf("core: batch item %d: focal id %d out of range [0, %d)",
					i, it.FocalID, tree.Len())})
				return
			}
			focal = tree.Records[it.FocalID]
		}
		res, err := runQuery(tree, focal, it.FocalID, o, shared, arena, forks)
		if err != nil {
			if opts.FailFast {
				aborted.Store(true)
			}
			settle(i, BatchOutcome{Err: err})
			return
		}
		settle(i, BatchOutcome{Result: res})
	}

	if outer == 1 {
		arena := lp.NewSolver(nil)
		for i := range items {
			runItem(arena, i)
		}
		return outcomes, nil
	}
	var wg sync.WaitGroup
	for w := 0; w < outer; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			arena := lp.NewSolver(nil)
			for {
				i := int(next.Add(1))
				if i >= len(items) {
					return
				}
				runItem(arena, i)
			}
		}()
	}
	wg.Wait()
	return outcomes, nil
}
