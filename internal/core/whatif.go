package core

// Competitor attribution: the measurement half of the what-if layer. Given
// a focal option's kSPR result, Attribute decomposes the preference space
// by who takes it — inside the result regions it aggregates the exact
// per-region Outscorers facts the cell tree proved (the competitors that
// outrank the focal even where it is shortlisted), and on the complement
// (where the focal misses the top-K entirely) it charges each sampled
// preference vector to the K records occupying the shortlist there. Both
// passes reuse dominance work the engine already did: region membership is
// a constraint check against the existing result, and shortlist occupants
// are drawn from the K-skyband (only skyband records can be top-K
// anywhere), so no per-sample dominance recomputation happens.

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/geom"
	"repro/internal/rtree"
)

// AttributionEntry is one competitor's measured impact on a focal option.
type AttributionEntry struct {
	// ID is the competitor's dense record index in the generation the
	// attribution ran against.
	ID int
	// MissShare is the fraction of preference space where the focal misses
	// the top-K AND this record holds one of the K shortlist slots — the
	// space this competitor takes from the focal. Shares of different
	// competitors overlap (every miss point has K occupants), so they sum
	// to about K times the miss probability, not to it.
	MissShare float64
	// PressureShare is the fraction of preference space where the focal IS
	// shortlisted but this record still outranks it — aggregated from the
	// per-region Outscorers facts, it measures who pushes the focal down
	// within its own impact region. For exact-rank regions the facts are
	// complete; early-reported regions (RankExact false, LP-CTA look-ahead)
	// carry only the proven subset, so PressureShare is exact when every
	// region is rank-exact and a proven lower bound otherwise.
	PressureShare float64
}

// Attribution is the result of Attribute: the focal option's impact
// probability and the per-competitor decomposition of the rest.
type Attribution struct {
	// K and Samples echo the query and the Monte-Carlo sample count; the
	// probabilities below have the standard O(1/sqrt(Samples)) error.
	K       int
	Samples int
	// Impact is the estimated probability that the focal is shortlisted
	// for a uniformly random preference vector; Miss is its complement
	// (the two are measured on the same samples, so they sum to exactly 1).
	Impact float64
	Miss   float64
	// Entries lists every competitor observed taking or pressuring the
	// focal's space, ordered by MissShare (then PressureShare, then ID)
	// descending.
	Entries []AttributionEntry
}

// Attribute measures which competitors take the focal option's preference
// space. res must be an exact kSPR result for focal on the dataset indexed
// by tree (focalID is the focal's dense index there, -1 for hypothetical
// focals); samples is the Monte-Carlo sample count and must be positive.
func Attribute(tree *rtree.Tree, res *Result, focal geom.Vector, focalID, samples int, seed int64) (*Attribution, error) {
	if res == nil {
		return nil, fmt.Errorf("core: Attribute needs a result")
	}
	if samples <= 0 {
		return nil, fmt.Errorf("core: Attribute needs a positive sample count, got %d", samples)
	}
	d := tree.Dim
	if len(focal) != d {
		return nil, fmt.Errorf("core: focal record has %d dims, index has %d", len(focal), d)
	}
	// Shortlist occupants at any preference vector come from the K-skyband
	// (a record with >= K dominators is outscored by all of them
	// everywhere); exact score ties of the focal are excluded to match the
	// engine's tie semantics (the paper ignores ties).
	band := tree.KSkyband(res.K, func(id int) bool { return id == focalID })
	cands := band[:0]
	for _, id := range band {
		if !tree.Records[id].Equal(focal) {
			cands = append(cands, id)
		}
	}

	miss := make(map[int]int)
	pressure := make(map[int]int)
	rng := rand.New(rand.NewSource(seed))
	raw := make([]float64, d)
	w := make(geom.Vector, d)
	type slot struct {
		id    int
		score float64
	}
	top := make([]slot, 0, res.K)
	hits := 0
	for s := 0; s < samples; s++ {
		var sum float64
		for i := range raw {
			raw[i] = rng.ExpFloat64() + 1e-12
			sum += raw[i]
		}
		for i := range w {
			w[i] = raw[i] / sum
		}
		probe := w[:d-1]
		if res.Space == Original {
			probe = w
		}
		if reg := containingRegion(res, probe); reg != nil {
			hits++
			for _, id := range reg.Outscorers {
				pressure[id]++
			}
			continue
		}
		// Miss: charge the K shortlist occupants that actually outscore the
		// focal here (all K do, up to boundary tolerance).
		ps := focal.Dot(w)
		top = top[:0]
		for _, id := range cands {
			sc := tree.Records[id].Dot(w)
			if sc <= ps {
				continue
			}
			pos := len(top)
			for pos > 0 && top[pos-1].score < sc {
				pos--
			}
			if pos >= res.K {
				continue
			}
			if len(top) < res.K {
				top = append(top, slot{})
			}
			copy(top[pos+1:], top[pos:])
			top[pos] = slot{id: id, score: sc}
		}
		for _, t := range top {
			miss[t.id]++
		}
	}

	attr := &Attribution{
		K:       res.K,
		Samples: samples,
		Impact:  float64(hits) / float64(samples),
		Miss:    float64(samples-hits) / float64(samples),
	}
	ids := make(map[int]bool, len(miss)+len(pressure))
	for id := range miss {
		ids[id] = true
	}
	for id := range pressure {
		ids[id] = true
	}
	for id := range ids {
		attr.Entries = append(attr.Entries, AttributionEntry{
			ID:            id,
			MissShare:     float64(miss[id]) / float64(samples),
			PressureShare: float64(pressure[id]) / float64(samples),
		})
	}
	sort.Slice(attr.Entries, func(i, j int) bool {
		a, b := attr.Entries[i], attr.Entries[j]
		if a.MissShare != b.MissShare {
			return a.MissShare > b.MissShare
		}
		if a.PressureShare != b.PressureShare {
			return a.PressureShare > b.PressureShare
		}
		return a.ID < b.ID
	})
	return attr, nil
}

// containingRegion returns the first result region whose closure contains
// the (processing-space) weight vector, or nil.
func containingRegion(res *Result, w geom.Vector) *Region {
	for i := range res.Regions {
		if res.Regions[i].Contains(w, 1e-9) {
			return &res.Regions[i]
		}
	}
	return nil
}
