//go:build !race

package core

// raceEnabled is false in regular builds: tests run their full matrices.
const raceEnabled = false
