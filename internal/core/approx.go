package core

import (
	"container/heap"
	"context"
	"fmt"

	"repro/internal/celltree"
	"repro/internal/geom"
	"repro/internal/polytope"
	"repro/internal/rtree"
)

// ApproxResult is the outcome of the approximate kSPR algorithm: certain
// regions (the focal record is provably top-K everywhere inside), plus the
// residual uncertain regions whose total measure is bounded by the accuracy
// target. The paper names approximate kSPR with accuracy guarantees as
// future work (§8); this implements it by adaptive subdivision of the
// preference space driven by the same look-ahead rank bounds LP-CTA uses.
type ApproxResult struct {
	Result
	// Uncertain holds the unresolved boxes: the true kSPR region boundary
	// lies inside their union.
	Uncertain []Region
	// UncertainVolume is an upper bound on the measure of the uncertain
	// set; the guarantee is UncertainVolume <= Epsilon * (space measure),
	// unless MaxCells stopped refinement first (check Converged).
	UncertainVolume float64
	// Converged reports whether the epsilon target was met.
	Converged bool
}

// ApproxOptions tunes RunApprox.
type ApproxOptions struct {
	// K is the shortlist size.
	K int
	// Epsilon is the accuracy target: the measure of the uncertain set,
	// relative to the whole preference space, that is acceptable.
	Epsilon float64
	// MaxCells caps the number of boxes examined (0 = 1<<20).
	MaxCells int
	// Ctx, when non-nil, cancels the refinement loop; RunApprox then
	// returns ctx.Err(). A nil Ctx never cancels.
	Ctx context.Context
}

// boxItem is a subdivision box ordered by volume (largest first), so
// refinement always attacks the biggest contributor to the uncertainty.
type boxItem struct {
	lo, hi geom.Vector
	vol    float64
}

type boxHeap []boxItem

func (h boxHeap) Len() int            { return len(h) }
func (h boxHeap) Less(i, j int) bool  { return h[i].vol > h[j].vol }
func (h boxHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *boxHeap) Push(x interface{}) { *h = append(*h, x.(boxItem)) }
func (h *boxHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// RunApprox answers kSPR approximately: it subdivides the transformed
// preference space into boxes, classifies each box with the rank bounds of
// §6 (upper bound <= K: certainly in; lower bound > K: certainly out), and
// splits inconclusive boxes until their total volume drops below
// Epsilon x the space's volume. Runtime is independent of the arrangement
// complexity — no CellTree is built — which is exactly the trade the
// paper's future-work remark anticipates.
func RunApprox(tree *rtree.Tree, focal geom.Vector, focalID int, opts ApproxOptions) (*ApproxResult, error) {
	if opts.K <= 0 {
		return nil, fmt.Errorf("core: K must be positive, got %d", opts.K)
	}
	if len(focal) != tree.Dim {
		return nil, fmt.Errorf("core: focal record has %d dims, index has %d", len(focal), tree.Dim)
	}
	if opts.Epsilon <= 0 {
		opts.Epsilon = 0.01
	}
	if opts.MaxCells <= 0 {
		opts.MaxCells = 1 << 20
	}
	dim := tree.Dim - 1
	r := &runner{
		tree: tree, focal: focal, focalID: focalID,
		opts:   Options{K: opts.K, Algorithm: LPCTA, Ctx: opts.Ctx},
		dim:    dim,
		bounds: geom.SpaceBoundsTransformed(dim),
	}
	r.pObj = make(geom.Vector, dim)
	d := tree.Dim
	for j := 0; j < dim; j++ {
		r.pObj[j] = focal[j] - focal[d-1]
	}
	r.pConst = focal[d-1]
	r.rankSkip = map[int]bool{}
	if focalID >= 0 {
		r.rankSkip[focalID] = true
	}
	for _, id := range tree.EqualTo(focal, func(id int) bool { return id == focalID }) {
		r.rankSkip[id] = true
	}
	for _, id := range tree.DominatedBy(focal, nil) {
		r.rankSkip[id] = true
	}

	res := &ApproxResult{}
	res.Focal = focal.Clone()
	res.K = opts.K
	res.Space = Transformed

	// The whole transformed space is the simplex of volume 1/dim!.
	spaceVol := 1.0
	for i := 2; i <= dim; i++ {
		spaceVol /= float64(i)
	}
	budget := opts.Epsilon * spaceVol

	boxes := &boxHeap{}
	root := boxItem{lo: make(geom.Vector, dim), hi: onesVec(dim), vol: 1}
	heap.Push(boxes, root)
	var uncertainVol float64 = root.vol
	examined := 0

	for boxes.Len() > 0 && uncertainVol > budget && examined < opts.MaxCells {
		if err := r.cancelled(); err != nil {
			return nil, err
		}
		box := heap.Pop(boxes).(boxItem)
		uncertainVol -= box.vol
		examined++

		cons := r.boxConstraints(box)
		// Skip boxes fully outside the simplex.
		if box.lo.Sum() >= 1 {
			continue
		}
		cb := &cellBounds{cons: cons, sv: r.lpSolver(), idx: r.tree, skip: r.rankSkip}
		lower, upper, err := r.boxRankBounds(cb)
		if err != nil {
			return nil, err
		}
		switch {
		case upper <= opts.K:
			res.Regions = append(res.Regions, Region{
				Constraints: cons,
				Witness:     boxCenter(box),
				Rank:        upper,
				RankExact:   false,
				Volume:      r.clippedVolume(cons, box),
			})
		case lower > opts.K:
			// certainly out: drop
		default:
			// Split along the widest axis.
			axis, width := 0, box.hi[0]-box.lo[0]
			for j := 1; j < dim; j++ {
				if w := box.hi[j] - box.lo[j]; w > width {
					axis, width = j, w
				}
			}
			if width < 1e-6 {
				// Numerically unsplittable: keep as uncertain forever.
				res.Uncertain = append(res.Uncertain, Region{
					Constraints: cons, Witness: boxCenter(box), Volume: r.clippedVolume(cons, box),
				})
				continue
			}
			mid := (box.lo[axis] + box.hi[axis]) / 2
			for _, half := range splitBox(box, axis, mid) {
				if half.lo.Sum() >= 1 {
					continue // fully outside the simplex
				}
				heap.Push(boxes, half)
				uncertainVol += half.vol
			}
		}
	}

	// Whatever remains queued is uncertain.
	for _, box := range *boxes {
		cons := r.boxConstraints(box)
		res.Uncertain = append(res.Uncertain, Region{
			Constraints: cons,
			Witness:     boxCenter(box),
			Volume:      r.clippedVolume(cons, box),
		})
	}
	for _, u := range res.Uncertain {
		res.UncertainVolume += u.Volume
	}
	res.Converged = res.UncertainVolume <= budget
	res.Stats.Regions = len(res.Regions)
	res.Stats.RankBoundCells = examined
	res.Stats.LPSolves = r.lpStats.Solves
	return res, nil
}

// boxRankBounds computes rank bounds for a box cell, using its exact corner
// geometry when the dimension permits.
func (r *runner) boxRankBounds(cb *cellBounds) (int, int, error) {
	if r.dim <= celltree.GeomMaxDim {
		if g := celltree.BuildCellGeom(cb.cons, r.dim); g != nil {
			cb.verts = g.Verts
		}
	}
	var err error
	cb.pMin, cb.pMax, err = r.interval(cb, r.pObj, r.pConst)
	if err != nil {
		return 0, 0, err
	}
	cb.wL, cb.wU, err = r.cornerVectors(cb)
	if err != nil {
		return 0, 0, err
	}
	cb.useFast = true
	lower, upper := 1, 1
	err = r.updateRank(r.tree.Root, cb, &lower, &upper)
	return lower, upper, err
}

// boxConstraints renders a box (clipped by the simplex) as constraint rows.
func (r *runner) boxConstraints(box boxItem) []geom.Constraint {
	cons := append([]geom.Constraint(nil), r.bounds...)
	for j := 0; j < r.dim; j++ {
		lo := make(geom.Vector, r.dim)
		lo[j] = -1
		cons = append(cons, geom.Constraint{A: lo, B: -box.lo[j]})
		hi := make(geom.Vector, r.dim)
		hi[j] = 1
		cons = append(cons, geom.Constraint{A: hi, B: box.hi[j]})
	}
	return cons
}

func splitBox(box boxItem, axis int, mid float64) [2]boxItem {
	a := boxItem{lo: box.lo.Clone(), hi: box.hi.Clone()}
	b := boxItem{lo: box.lo.Clone(), hi: box.hi.Clone()}
	a.hi[axis] = mid
	b.lo[axis] = mid
	a.vol = rawBoxVolume(a)
	b.vol = rawBoxVolume(b)
	return [2]boxItem{a, b}
}

func rawBoxVolume(box boxItem) float64 {
	v := 1.0
	for j := range box.lo {
		v *= box.hi[j] - box.lo[j]
	}
	return v
}

// clippedVolume measures box ∩ simplex: exact (via the cell geometry) in
// low dimensions, falling back to the raw box volume — a safe overestimate
// — when geometry is unavailable.
func (r *runner) clippedVolume(cons []geom.Constraint, box boxItem) float64 {
	if r.dim <= celltree.GeomMaxDim {
		if g := celltree.BuildCellGeom(cons, r.dim); g != nil {
			p := polytope.Polytope{Dim: r.dim, Facets: g.Facets, Vertices: g.Verts}
			return p.Volume(4000, 1)
		}
		return 0 // degenerate sliver outside or on the simplex boundary
	}
	return rawBoxVolume(box)
}

func boxCenter(box boxItem) geom.Vector {
	c := make(geom.Vector, len(box.lo))
	for j := range c {
		c[j] = (box.lo[j] + box.hi[j]) / 2
	}
	return c
}

func onesVec(dim int) geom.Vector {
	v := make(geom.Vector, dim)
	for i := range v {
		v[i] = 1
	}
	return v
}
