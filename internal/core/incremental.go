package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/rtree"
)

// Delta is one record-level dataset change in engine terms: Old is the
// record's attribute vector before the change (nil for an insert), New
// the vector after it (nil for a delete). An update carries both.
type Delta struct {
	Old, New geom.Vector
}

// WeakDominates reports p >= v in every attribute (equality allowed
// everywhere): then p scores at least as high as v under every weight
// vector, so v can never strictly outscore p. It is the Tier-A test of
// incremental maintenance, shared with the serving layer's mutation
// classifier.
func WeakDominates(p, v geom.Vector) bool {
	for i, x := range p {
		if x < v[i] {
			return false
		}
	}
	return true
}

// ExactlyEqual reports bit-exact component equality. The incremental
// keep-path must use this, NOT the epsilon-tolerant geom.Vector.Equal: a
// sub-epsilon reprice still changes the hyperplane bits a cold recompute
// would build, and the kept-result guarantee is BYTE identity.
func ExactlyEqual(a, b geom.Vector) bool {
	if len(a) != len(b) {
		return false
	}
	for i, x := range a {
		if x != b[i] {
			return false
		}
	}
	return true
}

// FocalState is the cached per-focal classification state incremental
// maintenance tests mutations against: the focal vector plus the record
// vectors that can certify a mutation irrelevant — the focal's k-skyband
// together with the focal's dominators. It is built once per (focal, K)
// from the dataset index and consulted with pure dominance tests, so
// classifying a mutation batch touches no index structures at all.
type FocalState struct {
	// Focal is the focal option's attribute vector; K the shortlist size;
	// Algorithm the processing algorithm the maintained result was
	// computed with.
	Focal     geom.Vector
	K         int
	Algorithm Algorithm
	refs      []geom.Vector
}

// NewFocalState caches the classification state for one focal option.
// focalID is the focal's index in tree (or -1 for a hypothetical record).
func NewFocalState(tree *rtree.Tree, focal geom.Vector, focalID, k int, algo Algorithm) *FocalState {
	s := &FocalState{Focal: focal.Clone(), K: k, Algorithm: algo}
	band := tree.KSkyband(k, func(id int) bool { return id == focalID })
	for _, id := range band {
		rec := tree.Records[id]
		// Records the focal weakly dominates can never certify a mutation
		// irrelevant on their own: whenever such a record dominates the
		// mutated vector, so does the focal, and the Tier-A test already
		// catches that.
		if !WeakDominates(focal, rec) {
			s.refs = append(s.refs, rec)
		}
	}
	return s
}

// VectorIrrelevant reports whether a record with attribute vector v is
// provably irrelevant to the focal's kSPR result — inserting, deleting,
// or repricing away from/to v cannot change the result's regions:
//
//   - Tier A (any algorithm): the focal weakly dominates v, so v never
//     strictly outscores the focal anywhere in preference space and is
//     excluded from processing outright;
//   - Tier B (dominance-ordered algorithms, i.e. everything but plain
//     CTA): at least K cached reference records strictly dominate v, so
//     wherever v outscores the focal, K others already do — v lies
//     outside the k-skyband and outside every bound, pivot, and batch
//     decision the engine makes.
//
// Counting dominators within the cached references is exact: a dominator
// of v outside the k-skyband has >= K skyband dominators of its own that
// also dominate v, and skyband dominators the focal weakly dominates
// imply Tier A.
func (s *FocalState) VectorIrrelevant(v geom.Vector) bool {
	if len(v) != len(s.Focal) {
		return false
	}
	if WeakDominates(s.Focal, v) {
		return true
	}
	if s.Algorithm == CTA {
		// CTA inserts hyperplanes in dataset order, so even a K-dominated
		// record can transiently split live cells before its dominators
		// close them; only Tier A preserves the output bit-for-bit.
		return false
	}
	n := 0
	for _, r := range s.refs {
		if geom.Dominates(r, v) {
			n++
			if n >= s.K {
				return true
			}
		}
	}
	return false
}

// Unaffected reports whether the whole mutation batch is provably unable
// to change the focal's kSPR result. Mutations of the focal record itself
// must be detected by identity upstream — FocalState classifies by value
// and would treat a tie's removal and the focal's removal alike.
func (s *FocalState) Unaffected(deltas []Delta) bool {
	for _, d := range deltas {
		if d.Old != nil && d.New != nil && ExactlyEqual(d.Old, d.New) {
			continue // value-preserving update: the dataset is unchanged
		}
		if d.Old != nil && !s.VectorIrrelevant(d.Old) {
			return false
		}
		if d.New != nil && !s.VectorIrrelevant(d.New) {
			return false
		}
	}
	return true
}

// MaintStats counts a Maintainer's generation-by-generation decisions.
type MaintStats struct {
	// Kept counts generations absorbed without an engine run: mutations
	// classified irrelevant with the prior result revalidated and reused,
	// or — after a focal reprice — the result proven empty by the
	// dominator-count shortcut. Recomputed counts cold reruns. Generations
	// is their sum.
	Kept, Recomputed, Generations uint64
}

// Maintainer keeps one focal option's kSPR result current across dataset
// generations. Apply classifies each mutation batch against the cached
// per-focal state: when every mutation is provably irrelevant the prior
// result is revalidated (the focal's presence and values are re-checked
// against the new index) and reused — byte-identical to what a cold rerun
// on the new generation would produce — and only otherwise is the query
// recomputed. Not safe for concurrent use; callers serialize.
type Maintainer struct {
	opts    Options
	tree    *rtree.Tree
	focalID int
	state   *FocalState
	res     *Result
	stats   MaintStats
}

// NewMaintainer answers the query cold on tree and caches the per-focal
// classification state. focal is the focal vector (tree.Records[focalID]
// when focalID >= 0); opts.K must be positive.
func NewMaintainer(tree *rtree.Tree, focal geom.Vector, focalID int, opts Options) (*Maintainer, error) {
	res, err := Run(tree, focal, focalID, opts)
	if err != nil {
		return nil, err
	}
	return &Maintainer{
		opts:    opts,
		tree:    tree,
		focalID: focalID,
		state:   NewFocalState(tree, focal, focalID, opts.K, opts.Algorithm),
		res:     res,
	}, nil
}

// Result returns the current maintained result.
func (m *Maintainer) Result() *Result { return m.res }

// Stats returns the keep/recompute tallies so far.
func (m *Maintainer) Stats() MaintStats { return m.stats }

// Apply advances the maintained result to the dataset generation indexed
// by tree, which the deltas produced from the previous generation.
// focalID is the focal record's index in the NEW tree (-1 for
// hypothetical focals; an error for deleted ones). It returns the current
// result and whether it was recomputed. When the focal record itself was
// repriced, the maintained query follows it: the result is recomputed for
// the new focal vector.
func (m *Maintainer) Apply(tree *rtree.Tree, focalID int, deltas []Delta) (*Result, bool, error) {
	focal := m.state.Focal
	recompute := false
	if m.focalID >= 0 {
		if focalID < 0 || focalID >= tree.Len() {
			return nil, false, fmt.Errorf("core: maintained focal record no longer exists (new index %d)", focalID)
		}
		// Revalidation: the kept result is only valid if the focal option
		// still carries the exact values it was computed for (bit-exact:
		// even a sub-epsilon reprice changes the cold recompute's bytes).
		if !ExactlyEqual(tree.Records[focalID], focal) {
			focal = tree.Records[focalID]
			// Reprice shortcut: when the repriced focal has at least K
			// strict dominators in the new tree, the cold recompute is
			// provably the empty result (kAdj <= 0 short-circuits before any
			// cell-tree work), so synthesize it — byte-identical under
			// EncodeResult — instead of running the engine. This is the keep
			// path what-if reprice probes hit while the probed price is
			// still hopeless. The other deltas in the batch need no
			// classification: emptiness is determined by the new tree alone.
			doms := tree.Dominators(focal, func(id int) bool { return id == focalID })
			if len(doms) >= m.opts.K {
				res := &Result{Focal: focal.Clone(), K: m.opts.K, Space: m.opts.Space}
				res.Stats.BaseRank = len(doms)
				m.stats.Generations++
				m.stats.Kept++
				m.tree, m.focalID = tree, focalID
				m.state = NewFocalState(tree, focal, focalID, m.opts.K, m.opts.Algorithm)
				m.res = res
				return res, false, nil
			}
			recompute = true
		}
	}
	if !recompute {
		classifySpan := m.opts.Trace.Span(PhaseClassify)
		unaffected := m.state.Unaffected(deltas)
		classifySpan.End()
		if !unaffected {
			recompute = true
		}
	}
	m.stats.Generations++
	if !recompute {
		m.stats.Kept++
		m.tree, m.focalID = tree, focalID
		return m.res, false, nil
	}
	res, err := Run(tree, focal, focalID, m.opts)
	if err != nil {
		return nil, false, err
	}
	m.stats.Recomputed++
	m.tree, m.focalID = tree, focalID
	m.state = NewFocalState(tree, focal, focalID, m.opts.K, m.opts.Algorithm)
	m.res = res
	return res, true, nil
}

// EncodeResult renders a result's query identity and regions — focal, K,
// space, and every region's rank, exactness, witness, constraints,
// vertices, and volume — as a canonical byte string. Two results encode
// identically iff they answer the same query with the same regions in the
// same order; Stats and timing are deliberately excluded (they describe
// the computation, not the answer), and so are Region.Outscorers — dense
// record ids are relative to the generation the result was computed on,
// and a kept result may legitimately carry the previous generation's ids
// after an id-shifting (but result-preserving) delete.
// Incremental-maintenance tests compare kept results against cold
// recomputes with it.
func EncodeResult(res *Result) []byte {
	var b bytes.Buffer
	w := func(vals ...uint64) {
		for _, v := range vals {
			binary.Write(&b, binary.LittleEndian, v)
		}
	}
	wf := func(fs []float64) {
		w(uint64(len(fs)))
		for _, f := range fs {
			w(math.Float64bits(f))
		}
	}
	w(uint64(res.K), uint64(res.Space))
	wf(res.Focal)
	w(uint64(len(res.Regions)))
	for i := range res.Regions {
		reg := &res.Regions[i]
		exact := uint64(0)
		if reg.RankExact {
			exact = 1
		}
		w(uint64(reg.Rank), exact, math.Float64bits(reg.Volume))
		wf(reg.Witness)
		w(uint64(len(reg.Constraints)))
		for _, c := range reg.Constraints {
			wf(c.A)
			w(math.Float64bits(c.B))
		}
		w(uint64(len(reg.Vertices)))
		for _, v := range reg.Vertices {
			wf(v)
		}
	}
	return b.Bytes()
}
