// Package core implements the paper's kSPR algorithms: the basic Cell Tree
// Approach (CTA, §4), the Progressive CTA (P-CTA, §5), and the Look-ahead
// Progressive CTA (LP-CTA, §6), together with the k-skyband variant of
// Appendix B and the original-space variants OP-CTA / OLP-CTA of Appendix C.
package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/geom"
	"repro/internal/obs"
)

// Trace-phase names the engine records when Options.Trace is set. The
// phases are non-overlapping within one query, so their times sum to
// (approximately) the query's wall time; docs/OBSERVABILITY.md is the
// operator-facing glossary and must stay in step with this list.
const (
	// PhaseDominance is the §3.1 dominance filtering that classifies the
	// dataset against the focal record before any cell-tree work.
	PhaseDominance = "dominance"
	// PhaseSkyband covers candidate discovery: k-skyband extraction,
	// candidate/bounds index construction, and per-batch skyline pulls.
	PhaseSkyband = "skyband"
	// PhaseExpand is cell-tree expansion (hyperplane insertion).
	PhaseExpand = "expand"
	// PhaseRankBounds is LP-CTA's look-ahead rank-bound classification of
	// freshly created cells (§6.4).
	PhaseRankBounds = "rank_bounds"
	// PhasePivots is the progressive algorithms' pivot-based reportability
	// sweep over live leaves (Algorithm 2 lines 13-19).
	PhasePivots = "pivot_check"
	// PhaseFinalize is region finalization: LP geometry, volumes, and
	// result assembly.
	PhaseFinalize = "finalize"
	// PhaseClassify is incremental maintenance's delta classification
	// (keep-or-recompute decision), recorded by Maintainer.Apply.
	PhaseClassify = "classify"
)

// Algorithm selects the kSPR processing strategy.
type Algorithm int

const (
	// CTA inserts every (non-dominated/non-dominating) record's hyperplane
	// into the CellTree in dataset order (§4).
	CTA Algorithm = iota
	// PCTA processes records in dominance-aware batches with pivot-based
	// pruning and progressive reporting (§5).
	PCTA
	// LPCTA adds look-ahead rank bounds over the aggregate R-tree on top of
	// P-CTA (§6).
	LPCTA
	// KSkybandCTA feeds the k-skyband of the dataset to CTA (Appendix B's
	// comparison point).
	KSkybandCTA
)

// String names the algorithm as the paper does (CTA, P-CTA, LP-CTA,
// k-skyband).
func (a Algorithm) String() string {
	switch a {
	case CTA:
		return "CTA"
	case PCTA:
		return "P-CTA"
	case LPCTA:
		return "LP-CTA"
	case KSkybandCTA:
		return "k-skyband"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Space selects the preference space the arrangement lives in (Appendix C).
type Space int

const (
	// Transformed works in d-1 dimensions using the Σw=1 normalization
	// (the default throughout the paper).
	Transformed Space = iota
	// Original works in the full d-dimensional space where hyperplanes pass
	// through the origin and cells are cones (OP-CTA / OLP-CTA).
	Original
)

// String names the preference space ("transformed" or "original").
func (s Space) String() string {
	if s == Original {
		return "original"
	}
	return "transformed"
}

// BoundsMode selects how LP-CTA derives rank bounds (Fig. 18's ablation).
type BoundsMode int

const (
	// FastBounds filters with the O(d) min/max-vector bounds of §6.3 before
	// falling back to tight group bounds — the full LP-CTA.
	FastBounds BoundsMode = iota
	// GroupBounds uses only the tight LP group bounds of §6.2.
	GroupBounds
	// RecordBounds computes per-record score bounds (§6.1) without using
	// the index structure.
	RecordBounds
)

// String names the bound mode as Fig. 18's ablation labels it.
func (b BoundsMode) String() string {
	switch b {
	case FastBounds:
		return "fast_bounds"
	case GroupBounds:
		return "group_bounds"
	default:
		return "record_bounds"
	}
}

// Options configures a kSPR query. The zero value is NOT usable; K must be
// positive. Other fields default to the paper's primary configuration
// (LP-CTA would be LPCTA; the zero Algorithm is CTA for explicitness in
// ablations, so set Algorithm deliberately).
type Options struct {
	// K is the shortlist size.
	K int
	// Algorithm selects CTA / P-CTA / LP-CTA / k-skyband.
	Algorithm Algorithm
	// Space selects transformed (default) or original preference space.
	Space Space
	// Bounds selects the LP-CTA bound mode (FastBounds default).
	Bounds BoundsMode
	// FinalizeGeometry controls whether result regions get exact vertex
	// geometry via halfspace intersection (the paper's finalization step;
	// on by default through Run).
	FinalizeGeometry bool
	// ComputeVolumes additionally measures each region (exact for 1-2
	// dimensional preference spaces, Monte-Carlo otherwise).
	ComputeVolumes bool
	// VolumeSamples bounds the Monte-Carlo sample count (default 10000).
	VolumeSamples int
	// Seed drives any randomized estimation for reproducibility.
	Seed int64
	// OnRegion, when set, receives regions as soon as they are final
	// (progressive reporting, a headline property of P-CTA/LP-CTA).
	OnRegion func(Region)
	// Parallelism is the number of goroutines the expansion engine may use
	// for this query: cell-subtree insertion, look-ahead rank-bound
	// classification, and region finalization all fan out across this many
	// workers, each with its own reusable LP solver state. Results are
	// byte-identical to the serial run for every value — the engine merges
	// work in deterministic order — so the setting trades CPU for latency
	// only. <= 0 (the default) uses one worker per available CPU
	// (runtime.GOMAXPROCS); 1 runs the paper's single-threaded algorithms
	// unchanged.
	Parallelism int
	// Ctx, when non-nil, is polled at cell-tree expansion points (record
	// insertion, rank-bound classification, batch boundaries). Once it is
	// done, Run abandons the query and returns ctx.Err(), so callers can
	// impose deadlines and cancel in-flight work. A nil Ctx never cancels.
	Ctx context.Context
	// Trace, when non-nil, records per-phase wall time for the run (see the
	// Phase* constants). The recorder is concurrency-safe, so one trace may
	// be shared by every query of a batch; nil disables tracing at
	// negligible cost (phase-granular nil checks, no clock reads).
	Trace *obs.Trace
}

// Region is one kSPR result region in the processing space (transformed by
// default): the set of weight vectors for which the focal record ranks
// within the top K.
type Region struct {
	// Constraints define the region's closure (space bounds + cell
	// boundaries, unit-normalized rows).
	Constraints []geom.Constraint
	// Vertices hold the exact geometry when finalization is enabled.
	Vertices []geom.Vector
	// Witness is a strictly interior weight vector of the region.
	Witness geom.Vector
	// Outscorers are the dataset record ids (dense indexes of the
	// generation the query ran against, ascending) proven to strictly
	// outscore the focal record throughout the region: the focal's global
	// dominators plus every record whose hyperplane covers the region on
	// the positive side. When RankExact is true the set is complete —
	// len(Outscorers) == Rank-1 — so it names exactly the competitors that
	// push the focal down to Rank here; for early-reported regions it is
	// the proven subset the look-ahead bound had seen. The what-if layer's
	// competitor attribution aggregates these per-region facts instead of
	// recomputing dominance.
	Outscorers []int
	// Rank is the rank of the focal record in the region. When RankExact is
	// false (early-reported cells), Rank is an upper bound and the region
	// may span cells of several ranks, all within K.
	Rank      int
	RankExact bool
	// Volume is the measure of the region when ComputeVolumes was set.
	Volume float64
}

// Contains reports whether the (transformed-space) weight vector lies in
// the region's closure.
func (r *Region) Contains(w geom.Vector, tol float64) bool {
	for _, c := range r.Constraints {
		if c.A.Dot(w)-c.B > tol {
			return false
		}
	}
	return true
}

// Stats aggregates the side metrics the paper reports.
type Stats struct {
	// ProcessedRecords is the number of records mapped to hyperplanes and
	// inserted (Fig. 11a).
	ProcessedRecords int
	// CellTreeNodes is the node count at termination (Fig. 11b).
	CellTreeNodes int
	// Batches is the number of P-CTA/LP-CTA processing rounds.
	Batches int
	// BaseRank is the number of records dominating the focal record (they
	// outrank it everywhere).
	BaseRank int
	// LPSolves / LPPivots count simplex activity.
	LPSolves int
	LPPivots int
	// FeasibilityTests and ConstraintRows mirror celltree.Stats.
	FeasibilityTests int
	ConstraintRows   int
	WStarSkips       int
	DomShortcuts     int
	// RankBoundCells is the number of cells for which look-ahead rank
	// bounds were computed; EarlyReported/EarlyPruned count their outcomes.
	RankBoundCells int
	EarlyReported  int
	EarlyPruned    int
	// CellsPruned counts subtrees the top-k rank bound eliminated, read
	// from the CellTree's shared atomic prune counter. It is identical
	// between serial and parallel runs of the same query.
	CellsPruned int
	// Parallelism is the effective worker count the expansion engine ran
	// with (1 = serial). It reflects configuration, not results: every
	// other field is independent of it.
	Parallelism int
	// Regions is the result cardinality (Fig. 13b / 14b / 15d).
	Regions int
	// Elapsed is the wall-clock processing time including finalization.
	Elapsed time.Duration
}

// Result is a complete kSPR answer.
type Result struct {
	// Focal is the query record; K the requested shortlist size.
	Focal geom.Vector
	K     int
	// Space is the preference space the regions are expressed in.
	Space Space
	// Regions is the kSPR result: p is in the top-K exactly for weight
	// vectors inside these regions.
	Regions []Region
	Stats   Stats
}

// ContainsWeight reports whether the transformed-space (or original-space,
// matching Result.Space) weight vector falls in some result region.
func (res *Result) ContainsWeight(w geom.Vector, tol float64) bool {
	for i := range res.Regions {
		if res.Regions[i].Contains(w, tol) {
			return true
		}
	}
	return false
}

// TotalVolume sums region volumes (meaningful when ComputeVolumes was set;
// regions are disjoint cells, so the sum is the measure of the union).
func (res *Result) TotalVolume() float64 {
	var v float64
	for i := range res.Regions {
		v += res.Regions[i].Volume
	}
	return v
}
