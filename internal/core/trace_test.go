package core

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/rtree"
)

// phaseSet runs one traced query and returns the recorded phase names.
func phaseSet(t *testing.T, opts Options) (map[string]obs.Phase, *Result) {
	t.Helper()
	tr, recs := buildIND(t, 120, 4, 99)
	// A skyline focal guarantees a non-empty result (rank 1 somewhere).
	focalID := tr.Skyline(nil)[0]
	trace := obs.NewTrace()
	opts.K = 8
	opts.Trace = trace
	opts.FinalizeGeometry = true
	res, err := Run(tr, recs[focalID], focalID, opts)
	if err != nil {
		t.Fatalf("%v: %v", opts.Algorithm, err)
	}
	got := make(map[string]obs.Phase)
	for _, p := range trace.Phases() {
		if p.Ns < 0 || p.Count <= 0 {
			t.Fatalf("%v: malformed phase %+v", opts.Algorithm, p)
		}
		got[p.Name] = p
	}
	if trace.TotalNs() > res.Stats.Elapsed.Nanoseconds() {
		t.Fatalf("%v: phase sum %d exceeds elapsed %d (phases overlap?)",
			opts.Algorithm, trace.TotalNs(), res.Stats.Elapsed.Nanoseconds())
	}
	return got, res
}

// TestTracePhaseCompleteness pins the phase vocabulary each algorithm
// records: every path must account its dominance filtering, expansion and
// finalization, the skyband/progressive paths their candidate discovery,
// and LP-CTA its rank-bound classification. Phase times must never sum
// past the run's wall time (the non-overlap invariant EXPLAIN mode
// depends on).
func TestTracePhaseCompleteness(t *testing.T) {
	expect := map[Algorithm][]string{
		CTA:         {PhaseDominance, PhaseExpand, PhaseFinalize},
		KSkybandCTA: {PhaseDominance, PhaseSkyband, PhaseExpand, PhaseFinalize},
		PCTA:        {PhaseDominance, PhaseSkyband, PhaseExpand, PhasePivots, PhaseFinalize},
		LPCTA:       {PhaseDominance, PhaseSkyband, PhaseExpand, PhaseRankBounds, PhasePivots, PhaseFinalize},
	}
	for algo, want := range expect {
		for _, par := range []int{1, 4} {
			got, res := phaseSet(t, Options{Algorithm: algo, Parallelism: par})
			if res.Stats.Regions == 0 {
				t.Fatalf("%v: expected a non-empty result for the phase check", algo)
			}
			for _, name := range want {
				if _, ok := got[name]; !ok {
					t.Errorf("%v (parallelism %d): phase %q missing (got %v)", algo, par, name, got)
				}
			}
		}
	}
}

// TestTraceDisabledIsIdentical pins that running with and without a trace
// yields byte-identical results (tracing is pure observation).
func TestTraceDisabledIsIdentical(t *testing.T) {
	tr, recs := buildIND(t, 100, 3, 17)
	base, err := Run(tr, recs[5], 5, Options{K: 6, Algorithm: LPCTA, FinalizeGeometry: true})
	if err != nil {
		t.Fatal(err)
	}
	traced, err := Run(tr, recs[5], 5, Options{K: 6, Algorithm: LPCTA, FinalizeGeometry: true, Trace: obs.NewTrace()})
	if err != nil {
		t.Fatal(err)
	}
	if string(EncodeResult(base)) != string(EncodeResult(traced)) {
		t.Fatal("tracing changed the result")
	}
}

// TestTraceBatchShared pins that one trace aggregates across a whole
// batch (including the shared skyband precomputation) without racing.
func TestTraceBatchShared(t *testing.T) {
	tr, recs := buildIND(t, 120, 4, 23)
	trace := obs.NewTrace()
	items := make([]BatchItem, 6)
	for i := range items {
		items[i] = BatchItem{FocalID: i * 7}
	}
	_ = recs
	outcomes, err := RunBatch(tr, items, BatchOptions{Options: Options{
		K: 8, Algorithm: LPCTA, FinalizeGeometry: true, Trace: trace, Parallelism: 4,
	}})
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range outcomes {
		if o.Err != nil {
			t.Fatalf("item %d: %v", i, o.Err)
		}
	}
	got := map[string]bool{}
	for _, p := range trace.Phases() {
		got[p.Name] = true
	}
	for _, name := range []string{PhaseSkyband, PhaseExpand, PhaseRankBounds, PhaseFinalize} {
		if !got[name] {
			t.Errorf("batch trace missing phase %q (got %v)", name, trace.Phases())
		}
	}
}

// TestTraceIncrementalClassify pins that maintained queries record the
// delta-classification phase on the keep path.
func TestTraceIncrementalClassify(t *testing.T) {
	tr, recs := buildIND(t, 80, 3, 31)
	trace := obs.NewTrace()
	m, err := NewMaintainer(tr, recs[4], 4, Options{K: 5, Algorithm: LPCTA, FinalizeGeometry: true, Trace: trace})
	if err != nil {
		t.Fatal(err)
	}
	// Insert a record far from the focal's competitive neighbourhood: the
	// classifier runs (recording PhaseClassify) whatever it decides.
	newRec := geom.Vector{0.001, 0.001, 0.001}
	recs2 := append(append([]geom.Vector{}, recs...), newRec)
	tr2, err := rtree.Build(recs2, rtree.WithFanout(16))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Apply(tr2, 4, []Delta{{New: newRec}}); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, p := range trace.Phases() {
		if p.Name == PhaseClassify {
			found = true
		}
	}
	if !found {
		t.Fatalf("maintained apply did not record %q (got %v)", PhaseClassify, trace.Phases())
	}
}
