package core

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/rtree"
)

// Micro-benchmarks on a fixed moderate workload; bench_test.go at the
// module root covers the paper's full figure suite.
func benchAlgoMicro(b *testing.B, n, d, k int, algo Algorithm) {
	b.Helper()
	ds, err := dataset.Generate(dataset.Independent, n, d, 7)
	if err != nil {
		b.Fatal(err)
	}
	tr, err := rtree.Build(ds.Records)
	if err != nil {
		b.Fatal(err)
	}
	focalID := tr.Skyline(nil)[2]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(tr, ds.Records[focalID], focalID, Options{K: k, Algorithm: algo}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCTA_n2k_k10(b *testing.B)    { benchAlgoMicro(b, 2000, 4, 10, CTA) }
func BenchmarkPCTA_n2k_k10(b *testing.B)   { benchAlgoMicro(b, 2000, 4, 10, PCTA) }
func BenchmarkLPCTA_n2k_k10(b *testing.B)  { benchAlgoMicro(b, 2000, 4, 10, LPCTA) }
func BenchmarkLPCTA_n10k_k30(b *testing.B) { benchAlgoMicro(b, 10000, 4, 30, LPCTA) }
