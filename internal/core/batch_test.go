package core

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"

	"repro/internal/geom"
)

// TestBatchMatchesSerial is the batch engine's correctness contract: for
// every algorithm, across seeds, dimensionalities, shortlist sizes, batch
// parallelism and the share/no-share paths, RunBatch returns per-item
// results that are deeply identical — same regions in the same order, same
// ranks, witnesses, vertices, constraints, volumes and side statistics —
// to running each item through Run serially.
func TestBatchMatchesSerial(t *testing.T) {
	for _, algo := range []Algorithm{CTA, PCTA, LPCTA, KSkybandCTA} {
		for _, d := range []int{3, 5} {
			if d == 5 && (algo == CTA || algo == KSkybandCTA) {
				// The non-progressive variants process every record in high
				// dimensions; LP-CTA and P-CTA cover the d=5 paths cheaply.
				continue
			}
			for _, k := range []int{4, 8} {
				n := 200
				if d == 5 {
					n = 60
				}
				if raceEnabled {
					n /= 2
				}
				seed := int64(41*int64(d) + int64(k))
				tr, recs := buildRandom(t, n, d, seed)

				// A panel of focal options: skyline records (real work),
				// an arbitrary mid-dataset record, a hypothetical vector
				// focal, and one item overriding the batch K.
				sky := tr.Skyline(nil)
				items := []BatchItem{
					{FocalID: sky[0]},
					{FocalID: sky[len(sky)/2]},
					{FocalID: n / 3},
					{FocalID: -1, Focal: recs[sky[0]].Clone()},
					{FocalID: sky[len(sky)-1], K: k / 2},
				}
				base := Options{
					K:                k,
					Algorithm:        algo,
					FinalizeGeometry: true,
					ComputeVolumes:   d == 3,
					VolumeSamples:    400,
					Seed:             7,
				}

				// Ground truth: each item as an independent serial run.
				want := make([]*Result, len(items))
				for i, it := range items {
					o := base
					if it.K != 0 {
						o.K = it.K
					}
					o.Parallelism = 1
					focal := it.Focal
					if focal == nil {
						focal = recs[it.FocalID]
					}
					res, err := Run(tr, focal, it.FocalID, o)
					if err != nil {
						t.Fatalf("%v d=%d k=%d item %d serial: %v", algo, d, k, i, err)
					}
					want[i] = res
				}

				for _, cfg := range []struct {
					label       string
					parallelism int
					noShare     bool
				}{
					{"shared serial", 1, false},
					{"shared parallel", 6, false},
					{"noshare parallel", 6, true},
				} {
					opts := BatchOptions{Options: base, NoShare: cfg.noShare}
					opts.Parallelism = cfg.parallelism
					got, err := RunBatch(tr, items, opts)
					if err != nil {
						t.Fatalf("%v d=%d k=%d %s: %v", algo, d, k, cfg.label, err)
					}
					if len(got) != len(items) {
						t.Fatalf("%v d=%d k=%d %s: %d outcomes for %d items",
							algo, d, k, cfg.label, len(got), len(items))
					}
					for i := range got {
						if got[i].Err != nil {
							t.Fatalf("%v d=%d k=%d %s item %d: %v", algo, d, k, cfg.label, i, got[i].Err)
						}
						if !reflect.DeepEqual(got[i].Result.Regions, want[i].Regions) {
							t.Fatalf("%v d=%d k=%d %s: item %d regions differ\nserial: %+v\nbatch:  %+v",
								algo, d, k, cfg.label, i, want[i].Regions, got[i].Result.Regions)
						}
						if gs, ws := statsComparable(got[i].Result.Stats), statsComparable(want[i].Stats); gs != ws {
							t.Fatalf("%v d=%d k=%d %s: item %d stats differ\nserial: %+v\nbatch:  %+v",
								algo, d, k, cfg.label, i, ws, gs)
						}
					}
				}
			}
		}
	}
}

// TestBatchSkybandDerivation pins the shared dominator-count table to the
// R-tree traversal it replaces: the derived per-focal k-skyband must equal
// tree.KSkyband(k, exclude focal) exactly, including order.
func TestBatchSkybandDerivation(t *testing.T) {
	for _, d := range []int{2, 3, 4} {
		tr, _ := buildRandom(t, 150, d, int64(100+d))
		for _, k := range []int{1, 3, 7} {
			shared, err := newBatchShared(tr, k)
			if err != nil {
				t.Fatal(err)
			}
			for _, focalID := range []int{-1, 0, 17, 149} {
				want := tr.KSkyband(k, func(id int) bool { return id == focalID })
				got := shared.skyband(tr, k, focalID)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("d=%d k=%d focal=%d: derived skyband %v, traversal %v",
						d, k, focalID, got, want)
				}
			}
		}
	}
}

// TestBatchPerItemErrors: a bad item settles with its own error and leaves
// its siblings untouched.
func TestBatchPerItemErrors(t *testing.T) {
	tr, _ := buildRandom(t, 80, 3, 5)
	items := []BatchItem{
		{FocalID: tr.Skyline(nil)[0]},
		{FocalID: 9999},                         // out of range
		{FocalID: -1, Focal: geom.Vector{1, 1}}, // wrong dimensionality
		{FocalID: tr.Skyline(nil)[0], K: 3},     // fine
	}
	got, err := RunBatch(tr, items, BatchOptions{Options: Options{K: 5, Algorithm: LPCTA, Parallelism: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Err != nil || got[0].Result == nil {
		t.Fatalf("item 0 should succeed: %v", got[0].Err)
	}
	if got[1].Err == nil {
		t.Fatal("out-of-range focal id must fail")
	}
	if got[2].Err == nil {
		t.Fatal("wrong-dimensional focal vector must fail")
	}
	if got[3].Err != nil || got[3].Result == nil {
		t.Fatalf("item 3 should succeed: %v", got[3].Err)
	}
}

// TestBatchFailFast: after the first failure, unstarted items settle with
// ErrBatchAborted instead of running.
func TestBatchFailFast(t *testing.T) {
	tr, _ := buildRandom(t, 60, 3, 11)
	items := make([]BatchItem, 12)
	for i := range items {
		items[i] = BatchItem{FocalID: 9999} // every item invalid
	}
	got, err := RunBatch(tr, items, BatchOptions{
		Options:  Options{K: 4, Algorithm: LPCTA, Parallelism: 1},
		FailFast: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Err == nil {
		t.Fatal("first item must fail")
	}
	aborted := 0
	for _, o := range got[1:] {
		if errors.Is(o.Err, ErrBatchAborted) {
			aborted++
		}
	}
	if aborted != len(items)-1 {
		t.Fatalf("want %d aborted items after first failure (serial scheduler), got %d",
			len(items)-1, aborted)
	}
}

// TestBatchItemCancellation: a cancelled per-item context fails only that
// item; the batch context cancels items that honour it.
func TestBatchItemCancellation(t *testing.T) {
	tr, _ := buildRandom(t, 120, 3, 23)
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	sky := tr.Skyline(nil)
	items := []BatchItem{
		{FocalID: sky[0]},
		{FocalID: sky[0], Ctx: cancelled},
	}
	got, err := RunBatch(tr, items, BatchOptions{Options: Options{K: 5, Algorithm: LPCTA, Parallelism: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Err != nil {
		t.Fatalf("uncancelled item failed: %v", got[0].Err)
	}
	if !errors.Is(got[1].Err, context.Canceled) {
		t.Fatalf("cancelled item returned %v, want context.Canceled", got[1].Err)
	}
}

// TestBatchOnOutcome: every item fires the callback exactly once, with the
// same outcome that lands in the returned slice.
func TestBatchOnOutcome(t *testing.T) {
	tr, _ := buildRandom(t, 80, 3, 31)
	sky := tr.Skyline(nil)
	items := make([]BatchItem, 6)
	for i := range items {
		items[i] = BatchItem{FocalID: sky[i%len(sky)]}
	}
	var mu sync.Mutex
	seen := make(map[int]int)
	opts := BatchOptions{
		Options: Options{K: 4, Algorithm: PCTA, Parallelism: 3},
		OnOutcome: func(i int, o BatchOutcome) {
			mu.Lock()
			seen[i]++
			mu.Unlock()
		},
	}
	got, err := RunBatch(tr, items, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(items) {
		t.Fatalf("callback fired for %d items, want %d", len(seen), len(items))
	}
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("item %d fired %d times", i, c)
		}
	}
	for i := range got {
		if got[i].Err != nil {
			t.Fatalf("item %d: %v", i, got[i].Err)
		}
	}
}

// TestBatchValidation covers the batch-level error paths.
func TestBatchValidation(t *testing.T) {
	tr, _ := buildRandom(t, 30, 3, 3)
	if got, err := RunBatch(tr, nil, BatchOptions{Options: Options{K: 3}}); err != nil || got != nil {
		t.Fatalf("empty batch: got %v, %v; want nil, nil", got, err)
	}
	items := []BatchItem{{FocalID: 0}}
	if _, err := RunBatch(tr, items, BatchOptions{}); err == nil {
		t.Fatal("batch without any positive K must error")
	}
}
