package core

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func TestApproxValidation(t *testing.T) {
	tr, _ := buildIND(t, 20, 3, 1)
	if _, err := RunApprox(tr, geom.Vector{0.5, 0.5, 0.5}, -1, ApproxOptions{K: 0}); err == nil {
		t.Fatal("expected error for K=0")
	}
	if _, err := RunApprox(tr, geom.Vector{0.5, 0.5}, -1, ApproxOptions{K: 1}); err == nil {
		t.Fatal("expected error for dim mismatch")
	}
}

// The approximate result must be SOUND (certain regions contain only
// weights where the focal record is top-K) and COMPLETE up to the
// uncertain set (any top-K weight lies in a certain or uncertain region).
func TestApproxSoundAndComplete(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, d := range []int{3, 4} {
		tr, recs := buildIND(t, 150, d, int64(d)*31)
		focalID := tr.Skyline(nil)[0]
		k := 4
		res, err := RunApprox(tr, recs[focalID], focalID, ApproxOptions{K: k, Epsilon: 0.02})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("d=%d: did not converge to epsilon", d)
		}
		inUncertain := func(wt geom.Vector) bool {
			for i := range res.Uncertain {
				if res.Uncertain[i].Contains(wt, 1e-9) {
					return true
				}
			}
			return false
		}
		for s := 0; s < 400; s++ {
			wt := randSimplexPoint(rng, d-1)
			w := geom.Lift(wt)
			rank, ok := bruteRank(recs, recs[focalID], focalID, w, 1e-9)
			if !ok {
				continue
			}
			certain := res.ContainsWeight(wt, 1e-9)
			uncertain := inUncertain(wt)
			if certain && !uncertain && rank > k {
				t.Fatalf("d=%d: unsound — rank %d > k inside a certain region at %v", d, rank, wt)
			}
			if rank <= k && !certain && !uncertain {
				t.Fatalf("d=%d: incomplete — rank %d <= k outside certain+uncertain at %v", d, rank, wt)
			}
		}
	}
}

func TestApproxUncertaintyShrinksWithEpsilon(t *testing.T) {
	tr, recs := buildIND(t, 120, 3, 11)
	focalID := tr.Skyline(nil)[0]
	coarse, err := RunApprox(tr, recs[focalID], focalID, ApproxOptions{K: 5, Epsilon: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	fine, err := RunApprox(tr, recs[focalID], focalID, ApproxOptions{K: 5, Epsilon: 0.005})
	if err != nil {
		t.Fatal(err)
	}
	if fine.UncertainVolume > coarse.UncertainVolume+1e-12 {
		t.Fatalf("uncertainty grew with smaller epsilon: %v -> %v",
			coarse.UncertainVolume, fine.UncertainVolume)
	}
	// Volume guarantee: 0.5 is the 2-d simplex area.
	if fine.Converged && fine.UncertainVolume > 0.005*0.5+1e-9 {
		t.Fatalf("claimed convergence but uncertain volume %v exceeds budget", fine.UncertainVolume)
	}
}

func TestApproxMaxCellsStopsRefinement(t *testing.T) {
	tr, recs := buildIND(t, 120, 3, 13)
	focalID := tr.Skyline(nil)[0]
	res, err := RunApprox(tr, recs[focalID], focalID, ApproxOptions{K: 5, Epsilon: 1e-9, MaxCells: 20})
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Fatal("cannot converge to epsilon 1e-9 within 20 cells")
	}
	if res.Stats.RankBoundCells > 20 {
		t.Fatalf("examined %d cells, cap was 20", res.Stats.RankBoundCells)
	}
}

func TestApproxAgreesWithExactOnVolume(t *testing.T) {
	tr, recs := buildIND(t, 100, 3, 17)
	focalID := tr.Skyline(nil)[0]
	k := 4
	exact, err := Run(tr, recs[focalID], focalID, Options{
		K: k, Algorithm: LPCTA, ComputeVolumes: true, VolumeSamples: 20000, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	approx, err := RunApprox(tr, recs[focalID], focalID, ApproxOptions{K: k, Epsilon: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	var certainVol float64
	for _, r := range approx.Regions {
		certainVol += r.Volume
	}
	exactVol := exact.TotalVolume()
	// certain <= exact <= certain + uncertain (within estimation noise).
	if certainVol > exactVol+0.01 {
		t.Fatalf("certain volume %v exceeds exact %v", certainVol, exactVol)
	}
	if exactVol > certainVol+approx.UncertainVolume+0.01 {
		t.Fatalf("exact volume %v exceeds certain+uncertain %v",
			exactVol, certainVol+approx.UncertainVolume)
	}
}
