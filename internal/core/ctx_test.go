package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/rtree"
)

func ctxTestTree(t *testing.T, n, d int) *rtree.Tree {
	t.Helper()
	ds, err := dataset.Generate(dataset.Anticorrelated, n, d, 42)
	if err != nil {
		t.Fatal(err)
	}
	recs := make([]geom.Vector, len(ds.Records))
	copy(recs, ds.Records)
	tree, err := rtree.Build(recs)
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func TestRunHonoursCancelledContext(t *testing.T) {
	tree := ctxTestTree(t, 500, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already dead before the query starts

	for _, algo := range []Algorithm{CTA, PCTA, LPCTA} {
		_, err := Run(tree, tree.Records[3], 3, Options{K: 10, Algorithm: algo, Ctx: ctx})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%v: err = %v, want context.Canceled", algo, err)
		}
	}
}

func TestRunHonoursDeadline(t *testing.T) {
	tree := ctxTestTree(t, 3000, 4)
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := Run(tree, tree.Records[1], 1, Options{K: 30, Algorithm: CTA, Ctx: ctx})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	// The full CTA query on this workload takes orders of magnitude longer
	// than the deadline; cancellation must cut processing short.
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("query ran %v past a 1ms deadline", elapsed)
	}
}

func TestRunNilContextUnaffected(t *testing.T) {
	tree := ctxTestTree(t, 200, 3)
	res, err := Run(tree, tree.Records[5], 5, Options{K: 5, Algorithm: LPCTA, FinalizeGeometry: true})
	if err != nil {
		t.Fatalf("nil-ctx run failed: %v", err)
	}
	// Same query with a live context must agree exactly.
	res2, err := Run(tree, tree.Records[5], 5, Options{
		K: 5, Algorithm: LPCTA, FinalizeGeometry: true, Ctx: context.Background(),
	})
	if err != nil {
		t.Fatalf("ctx run failed: %v", err)
	}
	if len(res.Regions) != len(res2.Regions) {
		t.Fatalf("ctx changed the result: %d vs %d regions", len(res.Regions), len(res2.Regions))
	}
}

func TestRunApproxHonoursCancelledContext(t *testing.T) {
	tree := ctxTestTree(t, 500, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunApprox(tree, tree.Records[2], 2, ApproxOptions{K: 10, Epsilon: 0.01, Ctx: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
