// Parallel expansion engine. A kSPR query has three CPU-heavy phases —
// hyperplane insertion into the CellTree, look-ahead rank-bound
// classification, and region finalization — and all three decompose into
// independent units (cell subtrees, fresh leaves, decided cells). The
// engine fans each phase across Options.Parallelism goroutines while
// keeping every observable output byte-identical to the serial algorithms:
//
//   - insertion forks disjoint cell subtrees (celltree.Forks) and merges
//     task results in deterministic negative-before-positive order;
//   - rank bounds and finalization pull work items from a shared atomic
//     cursor (work-stealing at item granularity) into per-worker slots,
//     then apply the results in item order;
//   - every worker owns a reusable lp.Solver, so LP scratch memory is
//     per-worker arena state rather than per-call garbage;
//   - the CellTree's atomic prune counter and closure flags are the only
//     cross-worker shared state, both lock-free.
package core

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// parallelLeafThreshold is the fresh-leaf batch size below which rank-bound
// classification stays serial: below it goroutine startup dominates the LP
// work being spread.
const parallelLeafThreshold = 16

// resolveParallelism maps an Options.Parallelism setting to an effective
// worker count: <= 0 means one worker per available CPU, anything else is
// taken literally (1 = the paper's serial algorithms).
func resolveParallelism(p int) int {
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p < 1 {
		p = 1
	}
	return p
}

// workers resolves the runner's Options.Parallelism.
func (r *runner) workers() int { return resolveParallelism(r.opts.Parallelism) }

// parallelDo runs body(worker, i) for every i in [0, n) across up to
// workers goroutines. Items are claimed from a shared atomic cursor, so a
// worker that finishes its item immediately steals the next unclaimed one.
// Each in-flight worker sees a distinct worker index in [0, workers), so
// callers can give workers private state (solvers, stats) sized by the
// workers argument. Errors are collected per item and the lowest-index one
// is returned — the same error a serial left-to-right loop would surface —
// with remaining items abandoned on the first failure.
func parallelDo(workers, n int, body func(worker, i int) error) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := body(0, i); err != nil {
				return err
			}
		}
		return nil
	}
	var next atomic.Int64
	next.Store(-1)
	var failed atomic.Bool
	errs := make([]error, n)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n || failed.Load() {
					return
				}
				if err := body(w, i); err != nil {
					errs[i] = err
					failed.Store(true)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
