package core

import (
	"repro/internal/celltree"
	"repro/internal/polytope"
)

// emit converts a CellTree leaf into a result Region, optionally
// materializing its exact geometry (the paper's finalization step at the
// end of §4.2 — the only place exact halfspace intersection happens), and
// hands it to the progressive callback.
func (r *runner) emit(leaf *celltree.Node, rank int, exact bool) error {
	region := Region{
		Constraints: r.ct.PathConstraints(leaf),
		Witness:     leaf.WStar,
		Rank:        rank,
		RankExact:   exact,
	}
	if r.opts.FinalizeGeometry || r.opts.ComputeVolumes {
		var poly *polytope.Polytope
		if g := leaf.Geom; g != nil {
			// Incrementally maintained geometry: already exact.
			poly = &polytope.Polytope{Dim: r.dim, Facets: g.Facets, Vertices: g.Verts}
		} else {
			var err error
			poly, err = polytope.FromConstraints(region.Constraints, r.dim, &r.lpStats)
			if err != nil {
				return err
			}
		}
		if r.opts.FinalizeGeometry {
			region.Vertices = poly.Vertices
		}
		if r.opts.ComputeVolumes {
			region.Volume = poly.Volume(r.opts.VolumeSamples, r.opts.Seed+int64(len(r.result.Regions)))
		}
	}
	r.result.Regions = append(r.result.Regions, region)
	if r.opts.OnRegion != nil {
		r.opts.OnRegion(region)
	}
	return nil
}

// finish snapshots the statistics into the result.
func (r *runner) finish() *Result {
	st := &r.result.Stats
	st.Regions = len(r.result.Regions)
	st.LPSolves = r.lpStats.Solves
	st.LPPivots = r.lpStats.Pivots
	if r.ct != nil {
		st.CellTreeNodes = r.ct.CountNodes()
		st.FeasibilityTests = r.ct.Stats.FeasibilityTests
		st.ConstraintRows = r.ct.Stats.ConstraintRows
		st.WStarSkips = r.ct.Stats.WStarSkips
		st.DomShortcuts = r.ct.Stats.DomShortcuts
	}
	return r.result
}
