package core

import (
	"sort"

	"repro/internal/celltree"
	"repro/internal/lp"
	"repro/internal/polytope"
)

// pendingRegion queues a decided CellTree leaf for finalization: rank is
// the focal record's rank to report, exact whether that rank is exact (a
// surviving leaf) or an upper bound (an early-reported cell).
type pendingRegion struct {
	leaf  *celltree.Node
	rank  int
	exact bool
}

// buildRegion materializes one result region from a decided leaf,
// optionally computing its exact geometry via halfspace intersection (the
// paper's finalization step at the end of §4.2 — the only place exact
// intersection happens). index is the region's final position in the
// result; it seeds volume estimation, so a region's volume is independent
// of how the build work was scheduled. buildRegion only reads shared query
// state, so distinct leaves finalize concurrently as long as each call
// gets its own lpStats.
func (r *runner) buildRegion(p pendingRegion, index int, lpStats *lp.Stats) (Region, error) {
	region := Region{
		Constraints: r.ct.PathConstraints(p.leaf),
		Witness:     p.leaf.WStar,
		Outscorers:  r.outscorers(p.leaf),
		Rank:        p.rank,
		RankExact:   p.exact,
	}
	if r.opts.FinalizeGeometry || r.opts.ComputeVolumes {
		var poly *polytope.Polytope
		if g := p.leaf.Geom; g != nil {
			// Incrementally maintained geometry: already exact.
			poly = &polytope.Polytope{Dim: r.dim, Facets: g.Facets, Vertices: g.Verts}
		} else {
			var err error
			poly, err = polytope.FromConstraints(region.Constraints, r.dim, lpStats)
			if err != nil {
				return Region{}, err
			}
		}
		if r.opts.FinalizeGeometry {
			region.Vertices = poly.Vertices
		}
		if r.opts.ComputeVolumes {
			region.Volume = poly.Volume(r.opts.VolumeSamples, r.opts.Seed+int64(index))
		}
	}
	return region, nil
}

// outscorers collects the dataset record ids proven to strictly outscore
// the focal record throughout the leaf's cell: the focal's global
// dominators (they outrank it everywhere) plus every record contributing a
// positive halfspace to the leaf's path — the cell-tree facts Rank counts
// (Lemma 1), so for an exact-rank leaf the set has exactly rank-1 members.
// The ids are ascending; dominators and positive-halfspace records are
// disjoint because dominators are excluded from hyperplane processing.
func (r *runner) outscorers(leaf *celltree.Node) []int {
	np := r.ct.NonPivots(leaf)
	if len(np) == 0 && len(r.domIDs) == 0 {
		return nil
	}
	out := make([]int, 0, len(r.domIDs)+len(np))
	out = append(out, r.domIDs...)
	out = append(out, np...)
	sort.Ints(out)
	return out
}

// appendRegion adds a finished region to the result and fires the
// progressive callback; always called in deterministic region order.
func (r *runner) appendRegion(region Region) {
	r.result.Regions = append(r.result.Regions, region)
	if r.opts.OnRegion != nil {
		r.opts.OnRegion(region)
	}
}

// emit finalizes and reports a single cell.
func (r *runner) emit(leaf *celltree.Node, rank int, exact bool) error {
	return r.emitAll([]pendingRegion{{leaf: leaf, rank: rank, exact: exact}})
}

// emitAll finalizes the pending cells — concurrently when the engine has
// more than one worker and geometry work makes it worthwhile — and appends
// them in order, so the result list and the OnRegion callback sequence are
// identical to a serial run.
func (r *runner) emitAll(pending []pendingRegion) error {
	if len(pending) == 0 {
		return nil
	}
	span := r.opts.Trace.Span(PhaseFinalize)
	defer span.End()
	workers := r.workers()
	heavy := r.opts.FinalizeGeometry || r.opts.ComputeVolumes
	if workers <= 1 || len(pending) < 2 || !heavy {
		for _, p := range pending {
			if err := r.cancelled(); err != nil {
				return err
			}
			region, err := r.buildRegion(p, len(r.result.Regions), &r.lpStats)
			if err != nil {
				return err
			}
			r.appendRegion(region)
		}
		return nil
	}
	base := len(r.result.Regions)
	regions := make([]Region, len(pending))
	stats := make([]lp.Stats, workers)
	err := parallelDo(workers, len(pending), func(w, i int) error {
		if err := r.cancelled(); err != nil {
			return err
		}
		region, err := r.buildRegion(pending[i], base+i, &stats[w])
		if err != nil {
			return err
		}
		regions[i] = region
		return nil
	})
	for i := range stats {
		r.lpStats.Add(stats[i])
	}
	if err != nil {
		return err
	}
	for _, region := range regions {
		r.appendRegion(region)
	}
	return nil
}

// finish snapshots the statistics into the result.
func (r *runner) finish() *Result {
	st := &r.result.Stats
	st.Regions = len(r.result.Regions)
	st.LPSolves = r.lpStats.Solves
	st.LPPivots = r.lpStats.Pivots
	st.Parallelism = r.workers()
	if r.ct != nil {
		st.CellTreeNodes = r.ct.CountNodes()
		st.FeasibilityTests = r.ct.Stats.FeasibilityTests
		st.ConstraintRows = r.ct.Stats.ConstraintRows
		st.WStarSkips = r.ct.Stats.WStarSkips
		st.DomShortcuts = r.ct.Stats.DomShortcuts
		st.CellsPruned = int(r.ct.PrunedCells.Load())
	}
	return r.result
}
