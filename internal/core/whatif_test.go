package core

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/rtree"
)

// TestRegionOutscorersRankInvariant pins the per-region dominator facts:
// for every exact-rank region, Outscorers has exactly Rank-1 members and
// every member strictly outscores the focal at the region's witness.
func TestRegionOutscorersRankInvariant(t *testing.T) {
	algos := []Algorithm{CTA, PCTA, LPCTA, KSkybandCTA}
	for _, algo := range algos {
		for seed := int64(1); seed <= 2; seed++ {
			rng := rand.New(rand.NewSource(seed))
			recs := make([]geom.Vector, 60)
			for i := range recs {
				recs[i] = geom.Vector{rng.Float64(), rng.Float64(), rng.Float64()}
			}
			tree, err := rtree.Build(recs)
			if err != nil {
				t.Fatal(err)
			}
			band := tree.KSkyband(4, nil)
			focalID := band[len(band)/2]
			res, err := Run(tree, recs[focalID], focalID, Options{K: 4, Algorithm: algo})
			if err != nil {
				t.Fatalf("%v seed %d: %v", algo, seed, err)
			}
			for ri := range res.Regions {
				reg := &res.Regions[ri]
				if !reg.RankExact {
					if len(reg.Outscorers) > reg.Rank-1 {
						t.Fatalf("%v seed %d region %d: %d outscorers exceed rank bound %d",
							algo, seed, ri, len(reg.Outscorers), reg.Rank)
					}
					continue
				}
				if len(reg.Outscorers) != reg.Rank-1 {
					t.Fatalf("%v seed %d region %d: %d outscorers, want rank-1 = %d",
						algo, seed, ri, len(reg.Outscorers), reg.Rank-1)
				}
				w := geom.Lift(reg.Witness)
				ps := recs[focalID].Dot(w)
				seen := map[int]bool{}
				for _, id := range reg.Outscorers {
					if id == focalID {
						t.Fatalf("%v seed %d region %d: focal listed as its own outscorer", algo, seed, ri)
					}
					if seen[id] {
						t.Fatalf("%v seed %d region %d: duplicate outscorer %d", algo, seed, ri, id)
					}
					seen[id] = true
					if recs[id].Dot(w) <= ps-1e-9 {
						t.Fatalf("%v seed %d region %d: outscorer %d does not outscore the focal at the witness",
							algo, seed, ri, id)
					}
				}
			}
		}
	}
}

// TestAttributeAccounting checks the Monte-Carlo attribution's internal
// bookkeeping on a small fixed dataset.
func TestAttributeAccounting(t *testing.T) {
	recs := []geom.Vector{
		{0.5, 0.5, 0.5},
		{0.9, 0.3, 0.2},
		{0.2, 0.9, 0.3},
		{0.3, 0.2, 0.9},
	}
	tree, err := rtree.Build(recs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(tree, recs[0], 0, Options{K: 2, Algorithm: LPCTA})
	if err != nil {
		t.Fatal(err)
	}
	const samples = 5000
	attr, err := Attribute(tree, res, recs[0], 0, samples, 17)
	if err != nil {
		t.Fatal(err)
	}
	if attr.Impact+attr.Miss != 1 {
		t.Fatalf("impact %v + miss %v != 1", attr.Impact, attr.Miss)
	}
	if attr.K != 2 || attr.Samples != samples {
		t.Fatalf("echoed parameters wrong: %+v", attr)
	}
	var missTotal float64
	for _, e := range attr.Entries {
		if e.ID == 0 {
			t.Fatalf("focal attributed to itself")
		}
		missTotal += e.MissShare
	}
	// Every miss sample charges at most K occupants.
	if missTotal > float64(attr.K)*attr.Miss+1e-12 {
		t.Fatalf("miss shares sum %.6f exceed K*miss %.6f", missTotal, float64(attr.K)*attr.Miss)
	}

	if _, err := Attribute(tree, nil, recs[0], 0, 100, 1); err == nil {
		t.Fatal("nil result accepted")
	}
	if _, err := Attribute(tree, res, recs[0], 0, 0, 1); err == nil {
		t.Fatal("zero samples accepted")
	}
	if _, err := Attribute(tree, res, geom.Vector{1}, 0, 100, 1); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
}

// TestMaintainerRepriceShortcutMatrix pins the reprice keep tier across
// all four algorithms at the core level: a reprice into >= K dominators
// keeps (with the synthesized empty result equal to a cold run), and a
// reprice back out recomputes.
func TestMaintainerRepriceShortcutMatrix(t *testing.T) {
	base := []geom.Vector{
		{0.5, 0.5, 0.5},
		{0.9, 0.92, 0.95},
		{0.95, 0.9, 0.91},
		{0.91, 0.94, 0.9},
	}
	for _, algo := range []Algorithm{CTA, PCTA, LPCTA, KSkybandCTA} {
		tree, err := rtree.Build(base)
		if err != nil {
			t.Fatal(err)
		}
		m, err := NewMaintainer(tree, base[0], 0, Options{K: 2, Algorithm: algo})
		if err != nil {
			t.Fatal(err)
		}

		down := append([]geom.Vector{}, base...)
		down[0] = geom.Vector{0.01, 0.01, 0.01}
		tree2, err := rtree.Build(down)
		if err != nil {
			t.Fatal(err)
		}
		res, recomputed, err := m.Apply(tree2, 0, []Delta{{Old: base[0], New: down[0]}})
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if recomputed {
			t.Fatalf("%v: dominated reprice should keep", algo)
		}
		cold, err := Run(tree2, down[0], 0, Options{K: 2, Algorithm: algo})
		if err != nil {
			t.Fatal(err)
		}
		if string(EncodeResult(res)) != string(EncodeResult(cold)) {
			t.Fatalf("%v: synthesized empty result diverges from cold run", algo)
		}
		if st := m.Stats(); st.Kept != 1 || st.Recomputed != 0 {
			t.Fatalf("%v: stats %+v", algo, st)
		}

		up := append([]geom.Vector{}, base...)
		up[0] = geom.Vector{0.97, 0.97, 0.97}
		tree3, err := rtree.Build(up)
		if err != nil {
			t.Fatal(err)
		}
		res, recomputed, err = m.Apply(tree3, 0, []Delta{{Old: down[0], New: up[0]}})
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if !recomputed {
			t.Fatalf("%v: competitive reprice should recompute", algo)
		}
		cold, err = Run(tree3, up[0], 0, Options{K: 2, Algorithm: algo})
		if err != nil {
			t.Fatal(err)
		}
		if string(EncodeResult(res)) != string(EncodeResult(cold)) {
			t.Fatalf("%v: recomputed result diverges from cold run", algo)
		}
	}
}
