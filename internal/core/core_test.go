package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/rtree"
)

// bruteRank computes the rank of focal under the lifted weight vector w
// (original d-dimensional weights): 1 + number of records scoring strictly
// higher. Records equal to focal (ties) and the focal itself are ignored,
// matching the paper's tie handling. It reports ok=false when some score is
// within eps of the focal score (the point is too close to a boundary for a
// reliable oracle).
func bruteRank(recs []geom.Vector, focal geom.Vector, focalID int, w geom.Vector, eps float64) (int, bool) {
	ps := focal.Dot(w)
	rank := 1
	for id, rec := range recs {
		if id == focalID || rec.Equal(focal) {
			continue
		}
		diff := rec.Dot(w) - ps
		if math.Abs(diff) < eps {
			return 0, false
		}
		if diff > 0 {
			rank++
		}
	}
	return rank, true
}

func randSimplexPoint(rng *rand.Rand, dPref int) geom.Vector {
	raw := make([]float64, dPref+1)
	var sum float64
	for i := range raw {
		raw[i] = rng.ExpFloat64() + 1e-9
		sum += raw[i]
	}
	w := make(geom.Vector, dPref)
	for i := range w {
		w[i] = raw[i] / sum
	}
	return w
}

// checkOracle verifies the defining property of a kSPR result: a weight
// vector is inside some region iff the focal record ranks within the top k
// there. Regions may be expressed in either space.
func checkOracle(t *testing.T, res *Result, recs []geom.Vector, focal geom.Vector, focalID, k int, rng *rand.Rand, samples int) {
	t.Helper()
	dPref := len(focal) - 1
	for s := 0; s < samples; s++ {
		wt := randSimplexPoint(rng, dPref)
		w := geom.Lift(wt)
		rank, ok := bruteRank(recs, focal, focalID, w, 1e-9)
		if !ok {
			continue
		}
		probe := wt
		if res.Space == Original {
			probe = w
		}
		in := res.ContainsWeight(probe, 1e-9)
		// Points within tolerance of a region boundary can legitimately
		// flip; retest with a strict margin before failing.
		if in != (rank <= k) {
			if res.ContainsWeight(probe, 1e-6) != res.ContainsWeight(probe, -1e-6) {
				continue // too close to a boundary to judge
			}
			t.Fatalf("oracle violation at wt=%v: rank=%d k=%d inRegions=%v (algo=%v space=%v)",
				wt, rank, k, in, res.Stats, res.Space)
		}
	}
}

func buildIND(t *testing.T, n, d int, seed int64) (*rtree.Tree, []geom.Vector) {
	t.Helper()
	ds, err := dataset.Generate(dataset.Independent, n, d, seed)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := rtree.Build(ds.Records, rtree.WithFanout(16))
	if err != nil {
		t.Fatal(err)
	}
	return tr, ds.Records
}

func TestRunValidation(t *testing.T) {
	tr, _ := buildIND(t, 10, 3, 1)
	if _, err := Run(tr, geom.Vector{0.5, 0.5, 0.5}, -1, Options{K: 0}); err == nil {
		t.Fatal("expected error for K=0")
	}
	if _, err := Run(tr, geom.Vector{0.5, 0.5}, -1, Options{K: 1}); err == nil {
		t.Fatal("expected error for dim mismatch")
	}
}

func TestOracleAllAlgorithmsTransformed(t *testing.T) {
	rng := rand.New(rand.NewSource(500))
	for _, algo := range []Algorithm{CTA, PCTA, LPCTA, KSkybandCTA} {
		for _, d := range []int{2, 3, 4} {
			n := 60
			tr, recs := buildIND(t, n, d, int64(d)*17)
			focalID := rng.Intn(n)
			k := 1 + rng.Intn(6)
			res, err := Run(tr, recs[focalID], focalID, Options{K: k, Algorithm: algo})
			if err != nil {
				t.Fatalf("%v d=%d: %v", algo, d, err)
			}
			checkOracle(t, res, recs, recs[focalID], focalID, k, rng, 300)
		}
	}
}

func TestOracleOriginalSpace(t *testing.T) {
	rng := rand.New(rand.NewSource(700))
	for _, algo := range []Algorithm{PCTA, LPCTA} {
		for _, d := range []int{2, 3} {
			n := 50
			tr, recs := buildIND(t, n, d, int64(d)*29)
			focalID := rng.Intn(n)
			k := 1 + rng.Intn(5)
			res, err := Run(tr, recs[focalID], focalID, Options{K: k, Algorithm: algo, Space: Original})
			if err != nil {
				t.Fatalf("O%v d=%d: %v", algo, d, err)
			}
			if res.Space != Original {
				t.Fatal("result space not original")
			}
			checkOracle(t, res, recs, recs[focalID], focalID, k, rng, 200)
		}
	}
}

func TestOracleAcrossDistributions(t *testing.T) {
	rng := rand.New(rand.NewSource(900))
	for _, dist := range []dataset.Distribution{dataset.Independent, dataset.Correlated, dataset.Anticorrelated} {
		ds, err := dataset.Generate(dist, 80, 3, 11)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := rtree.Build(ds.Records, rtree.WithFanout(16))
		if err != nil {
			t.Fatal(err)
		}
		focalID := 7
		res, err := Run(tr, ds.Records[focalID], focalID, Options{K: 5, Algorithm: LPCTA})
		if err != nil {
			t.Fatalf("%s: %v", dist, err)
		}
		checkOracle(t, res, ds.Records, ds.Records[focalID], focalID, 5, rng, 300)
	}
}

func TestEmptyResultWhenDominatedByK(t *testing.T) {
	// Focal record dominated by 3 records; k=2 -> empty result.
	recs := []geom.Vector{
		{0.9, 0.9}, {0.8, 0.95}, {0.95, 0.8},
		{0.5, 0.5}, // focal
		{0.1, 0.2},
	}
	tr, err := rtree.Build(recs, rtree.WithFanout(4))
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []Algorithm{CTA, PCTA, LPCTA} {
		res, err := Run(tr, recs[3], 3, Options{K: 2, Algorithm: algo})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Regions) != 0 {
			t.Fatalf("%v: got %d regions, want empty", algo, len(res.Regions))
		}
		if res.Stats.BaseRank != 3 {
			t.Fatalf("%v: BaseRank = %d, want 3", algo, res.Stats.BaseRank)
		}
	}
}

func TestWholeSpaceWhenKGEQN(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	tr, recs := buildIND(t, 20, 3, 3)
	focalID := 4
	res, err := Run(tr, recs[focalID], focalID, Options{K: 25, Algorithm: LPCTA})
	if err != nil {
		t.Fatal(err)
	}
	// Every weight vector must be covered: rank can never exceed n <= k.
	for s := 0; s < 200; s++ {
		wt := randSimplexPoint(rng, 2)
		if !res.ContainsWeight(wt, 1e-9) {
			t.Fatalf("weight %v not covered although k >= n", wt)
		}
	}
}

func TestTiesAreIgnored(t *testing.T) {
	// Two records identical to the focal one must not affect its rank.
	recs := []geom.Vector{
		{0.5, 0.5, 0.5}, // focal
		{0.5, 0.5, 0.5}, // tie
		{0.5, 0.5, 0.5}, // tie
		{0.9, 0.1, 0.4},
		{0.1, 0.9, 0.4},
	}
	tr, err := rtree.Build(recs, rtree.WithFanout(4))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(tr, recs[0], 0, Options{K: 1, Algorithm: LPCTA})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	checkOracle(t, res, recs, recs[0], 0, 1, rng, 300)
}

func TestFocalNotInDataset(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	tr, recs := buildIND(t, 50, 3, 13)
	focal := geom.Vector{0.6, 0.55, 0.5}
	res, err := Run(tr, focal, -1, Options{K: 4, Algorithm: LPCTA})
	if err != nil {
		t.Fatal(err)
	}
	checkOracle(t, res, recs, focal, -1, 4, rng, 300)
}

func TestAlgorithmsAgreeOnVolume(t *testing.T) {
	tr, recs := buildIND(t, 70, 3, 23)
	focalID := 11
	var vols []float64
	for _, algo := range []Algorithm{CTA, PCTA, LPCTA, KSkybandCTA} {
		res, err := Run(tr, recs[focalID], focalID, Options{
			K: 4, Algorithm: algo, ComputeVolumes: true, VolumeSamples: 4000, Seed: 7,
		})
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		vols = append(vols, res.TotalVolume())
	}
	for i := 1; i < len(vols); i++ {
		if math.Abs(vols[i]-vols[0]) > 0.02*(1+vols[0]) {
			t.Fatalf("volumes disagree: %v", vols)
		}
	}
}

func TestProgressiveCallback(t *testing.T) {
	tr, recs := buildIND(t, 80, 3, 29)
	var streamed int
	res, err := Run(tr, recs[3], 3, Options{
		K: 5, Algorithm: LPCTA,
		OnRegion: func(Region) { streamed++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if streamed != len(res.Regions) {
		t.Fatalf("callback saw %d regions, result has %d", streamed, len(res.Regions))
	}
}

func TestPCTAProcessesFewerRecordsThanCTA(t *testing.T) {
	tr, recs := buildIND(t, 400, 4, 37)
	focalID := 17
	opts := Options{K: 5}
	opts.Algorithm = CTA
	ctaRes, err := Run(tr, recs[focalID], focalID, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Algorithm = PCTA
	pctaRes, err := Run(tr, recs[focalID], focalID, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Algorithm = KSkybandCTA
	bandRes, err := Run(tr, recs[focalID], focalID, opts)
	if err != nil {
		t.Fatal(err)
	}
	if pctaRes.Stats.ProcessedRecords >= ctaRes.Stats.ProcessedRecords {
		t.Fatalf("P-CTA processed %d records, CTA %d — pruning ineffective",
			pctaRes.Stats.ProcessedRecords, ctaRes.Stats.ProcessedRecords)
	}
	if pctaRes.Stats.ProcessedRecords > bandRes.Stats.ProcessedRecords {
		t.Fatalf("P-CTA processed %d > k-skyband %d", pctaRes.Stats.ProcessedRecords, bandRes.Stats.ProcessedRecords)
	}
	// Lemma 6: P-CTA never processes a record dominated by k or more others.
	if bandRes.Stats.ProcessedRecords >= ctaRes.Stats.ProcessedRecords {
		t.Fatalf("k-skyband %d >= CTA %d", bandRes.Stats.ProcessedRecords, ctaRes.Stats.ProcessedRecords)
	}
}

func TestLPCTAEarlyDecisions(t *testing.T) {
	tr, recs := buildIND(t, 400, 4, 43)
	// Use a skyline record as focal so the result is non-trivial.
	focalID := tr.Skyline(nil)[0]
	res, err := Run(tr, recs[focalID], focalID, Options{K: 5, Algorithm: LPCTA})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.RankBoundCells == 0 {
		t.Fatal("LP-CTA computed no rank bounds")
	}
	if res.Stats.EarlyReported+res.Stats.EarlyPruned == 0 {
		t.Fatal("look-ahead bounds never decided a cell")
	}
}

func TestFinalizedGeometryMatchesConstraints(t *testing.T) {
	tr, recs := buildIND(t, 60, 3, 47)
	res, err := Run(tr, recs[5], 5, Options{K: 3, Algorithm: LPCTA, FinalizeGeometry: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Regions) == 0 {
		t.Skip("empty result for this focal record")
	}
	for _, reg := range res.Regions {
		if len(reg.Vertices) < 3 {
			t.Fatalf("region with %d vertices in 2-d preference space", len(reg.Vertices))
		}
		for _, v := range reg.Vertices {
			if !reg.Contains(v, 1e-6) {
				t.Fatalf("vertex %v outside its own region", v)
			}
		}
		if reg.Witness == nil || !reg.Contains(reg.Witness, 1e-9) {
			t.Fatalf("witness %v not inside region", reg.Witness)
		}
	}
}

func TestBoundsModesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	tr, recs := buildIND(t, 120, 3, 59)
	focalID := 21
	var results []*Result
	for _, mode := range []BoundsMode{FastBounds, GroupBounds, RecordBounds} {
		res, err := Run(tr, recs[focalID], focalID, Options{K: 4, Algorithm: LPCTA, Bounds: mode})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		results = append(results, res)
	}
	for _, res := range results {
		checkOracle(t, res, recs, recs[focalID], focalID, 4, rng, 200)
	}
}

func TestRegionRanksAreConsistent(t *testing.T) {
	tr, recs := buildIND(t, 80, 3, 61)
	res, err := Run(tr, recs[13], 13, Options{K: 5, Algorithm: PCTA})
	if err != nil {
		t.Fatal(err)
	}
	for _, reg := range res.Regions {
		if reg.Rank < 1 || reg.Rank > 5 {
			t.Fatalf("region rank %d outside [1, k]", reg.Rank)
		}
		if reg.RankExact && reg.Witness != nil {
			// Verify the exact rank at the witness.
			w := geom.Lift(reg.Witness)
			rank, ok := bruteRank(recs, recs[13], 13, w, 1e-12)
			if ok && rank != reg.Rank {
				t.Fatalf("region claims rank %d, witness has rank %d", reg.Rank, rank)
			}
		}
	}
}

func TestParallelBoundsMatchSerial(t *testing.T) {
	tr, recs := buildIND(t, 600, 4, 67)
	focalID := tr.Skyline(nil)[0]
	serial, err := Run(tr, recs[focalID], focalID, Options{K: 8, Algorithm: LPCTA, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(tr, recs[focalID], focalID, Options{K: 8, Algorithm: LPCTA, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Regions) != len(parallel.Regions) {
		t.Fatalf("serial %d regions, parallel %d", len(serial.Regions), len(parallel.Regions))
	}
	for i := range serial.Regions {
		if serial.Regions[i].Rank != parallel.Regions[i].Rank {
			t.Fatalf("region %d rank differs: %d vs %d",
				i, serial.Regions[i].Rank, parallel.Regions[i].Rank)
		}
		if !serial.Regions[i].Witness.Equal(parallel.Regions[i].Witness) {
			t.Fatalf("region %d witness differs", i)
		}
	}
	if serial.Stats.EarlyReported != parallel.Stats.EarlyReported ||
		serial.Stats.EarlyPruned != parallel.Stats.EarlyPruned {
		t.Fatalf("decision counts differ: serial %+v parallel %+v",
			serial.Stats, parallel.Stats)
	}
}

func TestOracleOriginalSpaceCTAVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(1100))
	for _, algo := range []Algorithm{CTA, KSkybandCTA} {
		tr, recs := buildIND(t, 40, 3, 71)
		focalID := tr.Skyline(nil)[0]
		res, err := Run(tr, recs[focalID], focalID, Options{K: 3, Algorithm: algo, Space: Original})
		if err != nil {
			t.Fatalf("O-%v: %v", algo, err)
		}
		checkOracle(t, res, recs, recs[focalID], focalID, 3, rng, 200)
	}
}

func TestStatsElapsedAndRegions(t *testing.T) {
	tr, recs := buildIND(t, 60, 3, 73)
	focalID := tr.Skyline(nil)[0]
	res, err := Run(tr, recs[focalID], focalID, Options{K: 3, Algorithm: LPCTA})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Elapsed <= 0 {
		t.Fatal("Elapsed not recorded")
	}
	if res.Stats.Regions != len(res.Regions) {
		t.Fatalf("Stats.Regions %d != len(Regions) %d", res.Stats.Regions, len(res.Regions))
	}
	if res.Stats.CellTreeNodes <= 0 {
		t.Fatal("CellTreeNodes not recorded")
	}
}

func TestAlgorithmStringer(t *testing.T) {
	for algo, want := range map[Algorithm]string{
		CTA: "CTA", PCTA: "P-CTA", LPCTA: "LP-CTA", KSkybandCTA: "k-skyband",
	} {
		if algo.String() != want {
			t.Fatalf("%d.String() = %q, want %q", algo, algo.String(), want)
		}
	}
	if Algorithm(99).String() == "" {
		t.Fatal("unknown algorithm must still format")
	}
	if Transformed.String() != "transformed" || Original.String() != "original" {
		t.Fatal("Space.String broken")
	}
	if FastBounds.String() != "fast_bounds" || GroupBounds.String() != "group_bounds" ||
		RecordBounds.String() != "record_bounds" {
		t.Fatal("BoundsMode.String broken")
	}
}
