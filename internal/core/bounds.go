package core

import (
	"repro/internal/celltree"
	"repro/internal/geom"
	"repro/internal/lp"
	"repro/internal/rtree"
)

// boundFreshLeaves computes look-ahead rank bounds for every leaf created
// since the previous batch and prunes / reports cells whose bounds decide
// them (§6.4, Algorithm 3). Classification is a pure function of the
// (immutable) cell and the index, so with engine workers available it fans
// out across them, each on its own reusable LP solver; decisions apply in
// leaf order below either way, keeping results bit-identical to the serial
// path.
func (r *runner) boundFreshLeaves() error {
	span := r.opts.Trace.Span(PhaseRankBounds)
	fresh := r.ct.TakeFreshLeaves()
	live := fresh[:0]
	for _, leaf := range fresh {
		if !leaf.Closed() {
			live = append(live, leaf)
		}
	}
	type decision struct {
		lower, upper int
	}
	decisions := make([]decision, len(live))
	if workers := r.workers(); workers > 1 && len(live) >= parallelLeafThreshold {
		solvers, stats := r.lpWorkerSolvers(workers)
		err := parallelDo(workers, len(live), func(w, i int) error {
			if err := r.cancelled(); err != nil {
				return err
			}
			lo, hi, err := r.rankBounds(live[i], solvers[w])
			if err != nil {
				return err
			}
			decisions[i] = decision{lo, hi}
			return nil
		})
		for i := range stats {
			r.lpStats.Add(stats[i])
		}
		if err != nil {
			return err
		}
	} else {
		sv := r.lpSolver()
		for i, leaf := range live {
			if err := r.cancelled(); err != nil {
				return err
			}
			lo, hi, err := r.rankBounds(leaf, sv)
			if err != nil {
				return err
			}
			decisions[i] = decision{lo, hi}
		}
	}
	var pending []pendingRegion
	for i, leaf := range live {
		r.result.Stats.RankBoundCells++
		switch {
		case decisions[i].lower > r.opts.K:
			r.ct.Prune(leaf)
			r.result.Stats.EarlyPruned++
		case decisions[i].upper <= r.opts.K:
			pending = append(pending, pendingRegion{leaf: leaf, rank: decisions[i].upper})
			r.ct.Report(leaf)
			r.result.Stats.EarlyReported++
		}
	}
	// Close the classification span before finalization so the emit work
	// accounts to PhaseFinalize, keeping the phases non-overlapping.
	span.End()
	return r.emitAll(pending)
}

// cellBounds carries the per-cell quantities shared across the index
// traversal: the focal score interval and (transformed space only) the
// min/max-vectors that power the fast bounds of §6.3.
type cellBounds struct {
	cons       []geom.Constraint
	pMin, pMax float64
	// sv solves this cell's bound LPs (and accounts them); per-worker when
	// bounds are computed in parallel.
	sv *lp.Solver
	// idx is the record index the traversal walks (the query's candidate
	// bounds index, or the full dataset tree for the approximate engine);
	// skip excludes record ids from leaf-level decisions. The query bounds
	// leave skip nil — their candidate index already contains only relevant
	// records — while the approximate engine sets it to the runner's
	// rankSkip.
	idx  *rtree.Tree
	skip map[int]bool
	// fast bounds (transformed space, FastBounds mode only)
	useFast bool
	wL, wU  geom.Vector // original-space d-dimensional corner weight vectors
	// verts, when non-nil, holds the cell's exact vertices; linear score
	// intervals are then min/max over the vertices instead of LP solves.
	// This is an exact acceleration (a linear function attains its extrema
	// over a polytope at vertices) that pays off in low-dimensional
	// preference spaces; higher dimensions fall back to the LP bounds the
	// paper describes.
	verts []geom.Vector
	// objA/objB are reusable objective buffers for recordObj and
	// diffInterval, replacing the per-record allocations that dominated
	// the rank traversal's GC pressure at large candidate counts. Two
	// buffers, because groupDecide holds the low- and high-corner
	// objectives simultaneously.
	objA, objB geom.Vector
}

// scratchA returns the first reusable objective buffer at length n.
func (cb *cellBounds) scratchA(n int) geom.Vector {
	if cap(cb.objA) < n {
		cb.objA = make(geom.Vector, n)
	}
	return cb.objA[:n]
}

// scratchB returns the second reusable objective buffer at length n.
func (cb *cellBounds) scratchB(n int) geom.Vector {
	if cap(cb.objB) < n {
		cb.objB = make(geom.Vector, n)
	}
	return cb.objB[:n]
}

// boundEps is the safety margin rank-bound comparisons keep from strict
// equality, so that tiny numerical error in LP/vertex extrema can only make
// the bounds looser (correct), never tighter (wrong).
const boundEps = 1e-9

// vertexBoundsMaxDim bounds the preference-space dimensionality for which
// per-cell vertex enumeration is attempted, and vertexBoundsMaxFacets the
// facet count beyond which it is abandoned.
const vertexBoundsMaxDim = 3

// intervalOverVertices returns [min, max] of obj·v + c across the vertices.
func intervalOverVertices(verts []geom.Vector, obj geom.Vector, c float64) (float64, float64) {
	lo := obj.Dot(verts[0]) + c
	hi := lo
	for _, v := range verts[1:] {
		s := obj.Dot(v) + c
		if s < lo {
			lo = s
		}
		if s > hi {
			hi = s
		}
	}
	return lo, hi
}

// rankBounds computes [Rank(c), Rank̄(c)] for a cell: the best and worst
// rank the focal record can attain inside it. The traversal runs over the
// query's candidate bounds index (the non-skip k-skyband) with the
// focal's dominators folded in as a constant: a dominator outranks the
// focal everywhere, and a record outside the k-skyband can only beat the
// focal where at least K skyband records already do (Lemma 6's argument),
// so 1 + baseRank + [certain, possible] skyband beaters brackets the true
// rank exactly. Beyond being tighter and cheaper than a full-dataset
// traversal, this makes every bound decision a pure function of the
// candidate set — the property incremental maintenance relies on. sv is
// the calling worker's LP solver.
func (r *runner) rankBounds(leaf *celltree.Node, sv *lp.Solver) (int, int, error) {
	cb := &cellBounds{cons: r.ct.PathConstraints(leaf), sv: sv}
	base := 1 + r.baseRank

	if r.opts.Space == Original {
		// Appendix C: every original-space cell touches the origin, so raw
		// score intervals all start at 0 and are useless; bound the
		// difference S(r) - S(p) instead.
		return r.rankBoundsOriginal(leaf, cb, base)
	}

	if g := leaf.Geom; g != nil {
		cb.verts = g.Verts
	}
	lower, upper := base, base
	if r.boundsIdx == nil {
		// No candidate can ever outscore the focal record: its rank is
		// exactly 1 + baseRank throughout the cell.
		return lower, upper, nil
	}
	cb.idx = r.boundsIdx
	var err error
	cb.pMin, cb.pMax, err = r.interval(cb, r.pObj, r.pConst)
	if err != nil {
		return 0, 0, err
	}

	if r.opts.Bounds == FastBounds {
		cb.wL, cb.wU, err = r.cornerVectors(cb)
		if err != nil {
			return 0, 0, err
		}
		cb.useFast = true
	}

	if r.opts.Bounds == RecordBounds {
		return r.rankBoundsByRecords(cb, lower, upper)
	}
	err = r.updateRank(r.boundsIdx.Root, cb, &lower, &upper)
	return lower, upper, err
}

// rankBoundsOriginal derives rank bounds in the original space by
// minimizing/maximizing S(r) - S(p) per entry (Appendix C), over the same
// candidate bounds index as the transformed space. Fast bounds do not
// apply there (the min-vector would always be the origin).
func (r *runner) rankBoundsOriginal(leaf *celltree.Node, cb *cellBounds, base int) (int, int, error) {
	if g := leaf.Geom; g != nil {
		cb.verts = g.Verts
	}
	lower, upper := base, base
	if r.boundsIdx == nil {
		return lower, upper, nil
	}
	cb.idx = r.boundsIdx
	if r.opts.Bounds == RecordBounds {
		for _, rec := range r.boundsIdx.Records {
			if err := r.recordDecideOriginal(rec, cb, &lower, &upper); err != nil {
				return 0, 0, err
			}
			if lower > r.opts.K {
				return lower, upper, nil
			}
		}
		return lower, upper, nil
	}
	err := r.updateRankOriginal(r.boundsIdx.Root, cb, &lower, &upper)
	return lower, upper, err
}

// interval returns [min, max] of obj·w + c over the cell closure, using
// cached vertices when available and LPs otherwise.
func (r *runner) interval(cb *cellBounds, obj geom.Vector, c float64) (float64, float64, error) {
	if cb.verts != nil {
		lo, hi := intervalOverVertices(cb.verts, obj, c)
		return lo, hi, nil
	}
	return scoreInterval(cb.sv, cb.cons, obj, c)
}

// diffInterval returns min (wantMax=false) or max of (v - focal)·w over the
// cell closure.
func (r *runner) diffInterval(cb *cellBounds, v geom.Vector, wantMax bool) (float64, error) {
	obj := cb.scratchA(len(v))
	for j := range obj {
		obj[j] = v[j] - r.focal[j]
	}
	if cb.verts != nil {
		lo, hi := intervalOverVertices(cb.verts, obj, 0)
		if wantMax {
			return hi, nil
		}
		return lo, nil
	}
	val, _, st, err := cb.sv.Bound(cb.cons, obj, wantMax)
	if err != nil {
		return 0, err
	}
	if st != lp.Optimal {
		return 0, errStatus(st)
	}
	return val, nil
}

func (r *runner) updateRankOriginal(n *rtree.Node, cb *cellBounds, lower, upper *int) error {
	if *lower > r.opts.K {
		return nil
	}
	for i := range n.Entries {
		e := &n.Entries[i]
		if e.Child != nil {
			// min over cell of S(GL)-S(p) > 0: the whole group beats p
			// everywhere in the cell.
			minLo, err := r.diffInterval(cb, e.Low, false)
			if err != nil {
				return err
			}
			if minLo > boundEps {
				*lower += e.Count
				*upper += e.Count
			} else {
				// max of S(GU)-S(p) <= 0: the group never beats p.
				maxHi, err := r.diffInterval(cb, e.High, true)
				if err != nil {
					return err
				}
				if maxHi > -boundEps {
					if err := r.updateRankOriginal(e.Child, cb, lower, upper); err != nil {
						return err
					}
				}
			}
			if *lower > r.opts.K {
				return nil
			}
			continue
		}
		if cb.skip != nil && cb.skip[e.RecordID] {
			continue
		}
		if err := r.recordDecideOriginal(cb.idx.Records[e.RecordID], cb, lower, upper); err != nil {
			return err
		}
		if *lower > r.opts.K {
			return nil
		}
	}
	return nil
}

func (r *runner) recordDecideOriginal(rec geom.Vector, cb *cellBounds, lower, upper *int) error {
	minD, err := r.diffInterval(cb, rec, false)
	if err != nil {
		return err
	}
	if minD > boundEps {
		*lower++
		*upper++
		return nil
	}
	maxD, err := r.diffInterval(cb, rec, true)
	if err != nil {
		return err
	}
	if maxD > -boundEps {
		*upper++
	}
	return nil
}

// scoreInterval returns [min, max] of obj·w + c over the cell closure,
// solving both LPs on sv.
func scoreInterval(sv *lp.Solver, cons []geom.Constraint, obj geom.Vector, c float64) (float64, float64, error) {
	lo, _, st, err := sv.Bound(cons, obj, false)
	if err != nil {
		return 0, 0, err
	}
	if st != lp.Optimal {
		return 0, 0, errStatus(st)
	}
	hi, _, st, err := sv.Bound(cons, obj, true)
	if err != nil {
		return 0, 0, err
	}
	if st != lp.Optimal {
		return 0, 0, errStatus(st)
	}
	return lo + c, hi + c, nil
}

type errStatus lp.Status

func (e errStatus) Error() string { return "core: score-bound LP " + lp.Status(e).String() }

// cornerVectors computes the min-vector wL and max-vector wU of a cell
// (§6.3): original-space weight vectors such that for every record r and
// every w in the cell, S(r, wL) <= S(r, w) <= S(r, wU). Component j < d-1
// is the min/max of w_j over the cell; the last component is the min/max of
// w_d = 1 - Σ w_j, i.e. one minus the opposite bound of the sum.
func (r *runner) cornerVectors(cb *cellBounds) (geom.Vector, geom.Vector, error) {
	d := r.tree.Dim
	wL := make(geom.Vector, d)
	wU := make(geom.Vector, d)
	axis := make(geom.Vector, r.dim)
	for j := 0; j < r.dim; j++ {
		for i := range axis {
			axis[i] = 0
		}
		axis[j] = 1
		lo, hi, err := r.interval(cb, axis, 0)
		if err != nil {
			return nil, nil, err
		}
		wL[j], wU[j] = lo, hi
	}
	ones := make(geom.Vector, r.dim)
	for i := range ones {
		ones[i] = 1
	}
	sumLo, sumHi, err := r.interval(cb, ones, 0)
	if err != nil {
		return nil, nil, err
	}
	wL[d-1], wU[d-1] = 1-sumHi, 1-sumLo
	return wL, wU, nil
}

// recordObj returns the score objective of a data-space vector v in the
// processing space, as (objective, constant). In the transformed space
// the objective is written into dst (a cellBounds scratch buffer); the
// original space returns v itself.
func (r *runner) recordObj(v, dst geom.Vector) (geom.Vector, float64) {
	if r.opts.Space == Original {
		return v, 0
	}
	d := r.tree.Dim
	obj := dst[:r.dim]
	for j := 0; j < r.dim; j++ {
		obj[j] = v[j] - v[d-1]
	}
	return obj, v[d-1]
}

// updateRank is Algorithm 3's UpdateRank: traverse the aggregate R-tree,
// comparing each entry's score interval in the cell against the focal
// interval, with the fast bounds as a filtering step.
func (r *runner) updateRank(n *rtree.Node, cb *cellBounds, lower, upper *int) error {
	if *lower > r.opts.K {
		return nil // already prunable; no need to tighten further
	}
	for i := range n.Entries {
		e := &n.Entries[i]
		if e.Child != nil {
			decided, err := r.groupDecide(e, cb, lower, upper)
			if err != nil {
				return err
			}
			if !decided {
				if err := r.updateRank(e.Child, cb, lower, upper); err != nil {
					return err
				}
			}
			if *lower > r.opts.K {
				return nil
			}
			continue
		}
		if cb.skip != nil && cb.skip[e.RecordID] {
			continue
		}
		if err := r.recordDecide(cb.idx.Records[e.RecordID], cb, lower, upper); err != nil {
			return err
		}
		if *lower > r.opts.K {
			return nil
		}
	}
	return nil
}

// groupDecide tries to classify an entire subtree against the focal score
// interval. It returns true when the subtree was fully accounted for.
func (r *runner) groupDecide(e *rtree.Entry, cb *cellBounds, lower, upper *int) (bool, error) {
	// Fast filtering step (§6.3).
	if cb.useFast {
		fastLo := cb.wL.Dot(e.Low)
		fastHi := cb.wU.Dot(e.High)
		if done := applyInterval(fastLo, fastHi, e.Count, cb, lower, upper); done {
			return true, nil
		}
	}
	// Tight group bounds (§6.2): interval of S over [GL, GU] across the cell.
	loObj, loC := r.recordObj(e.Low, cb.scratchA(r.dim))
	hiObj, hiC := r.recordObj(e.High, cb.scratchB(r.dim))
	if cb.verts != nil {
		gLo, _ := intervalOverVertices(cb.verts, loObj, loC)
		_, gHi := intervalOverVertices(cb.verts, hiObj, hiC)
		return applyInterval(gLo, gHi, e.Count, cb, lower, upper), nil
	}
	gLo, _, st, err := cb.sv.Bound(cb.cons, loObj, false)
	if err != nil {
		return false, err
	}
	if st != lp.Optimal {
		return false, errStatus(st)
	}
	gHi, _, st, err := cb.sv.Bound(cb.cons, hiObj, true)
	if err != nil {
		return false, err
	}
	if st != lp.Optimal {
		return false, errStatus(st)
	}
	return applyInterval(gLo+loC, gHi+hiC, e.Count, cb, lower, upper), nil
}

// applyInterval implements the three decisive outcomes of Algorithm 3 for a
// group with score interval [lo, hi] and cardinality count:
//
//   - lo > pMax: every record outscores p everywhere in the cell — both
//     bounds advance;
//   - hi < pMin: no record ever outscores p — the group is irrelevant;
//   - [lo, hi] inside [pMin, pMax]: records can never beat p everywhere,
//     but may beat it somewhere — only the upper bound advances.
//
// It returns false when the interval is inconclusive and the caller must
// refine (tighter bounds or descend).
func applyInterval(lo, hi float64, count int, cb *cellBounds, lower, upper *int) bool {
	switch {
	case lo > cb.pMax+boundEps:
		*lower += count
		*upper += count
		return true
	case hi < cb.pMin-boundEps:
		return true
	case lo >= cb.pMin-boundEps && hi <= cb.pMax+boundEps:
		*upper += count
		return true
	default:
		return false
	}
}

// recordDecide classifies a single record: fast filter first, then tight
// per-record score bounds (§6.1).
func (r *runner) recordDecide(rec geom.Vector, cb *cellBounds, lower, upper *int) error {
	if cb.useFast {
		fastLo := cb.wL.Dot(rec)
		fastHi := cb.wU.Dot(rec)
		if applyInterval(fastLo, fastHi, 1, cb, lower, upper) {
			return nil
		}
	}
	obj, c := r.recordObj(rec, cb.scratchA(r.dim))
	rLo, rHi, err := r.interval(cb, obj, c)
	if err != nil {
		return err
	}
	if !applyInterval(rLo, rHi, 1, cb, lower, upper) {
		// Tight bounds straddle the focal interval: the record may or may
		// not beat p depending on w — count it toward the worst case only.
		*upper++
	}
	return nil
}

// rankBoundsByRecords is the record_bounds ablation (§6.1 without the
// index structure): exact per-record score intervals for every candidate.
func (r *runner) rankBoundsByRecords(cb *cellBounds, lower, upper int) (int, int, error) {
	for _, rec := range r.boundsIdx.Records {
		if err := r.recordDecide(rec, cb, &lower, &upper); err != nil {
			return 0, 0, err
		}
		if lower > r.opts.K {
			// Enough to prune; bail out early like the traversal does.
			return lower, upper, nil
		}
	}
	return lower, upper, nil
}
