package core

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/geom"
	"repro/internal/rtree"
)

func buildRandom(t *testing.T, n, d int, seed int64) (*rtree.Tree, []geom.Vector) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	recs := make([]geom.Vector, n)
	for i := range recs {
		v := make(geom.Vector, d)
		for j := range v {
			v[j] = rng.Float64()
		}
		recs[i] = v
	}
	tr, err := rtree.Build(recs)
	if err != nil {
		t.Fatal(err)
	}
	return tr, recs
}

// statsComparable zeroes the fields that legitimately differ between runs
// (wall clock, configured worker count); everything else must match.
func statsComparable(s Stats) Stats {
	s.Elapsed = 0
	s.Parallelism = 0
	return s
}

// TestParallelMatchesSerial is the engine's determinism contract: for every
// algorithm, across seeds, dimensionalities and k, a parallel run returns
// regions that are deeply identical — same order, same ranks, witnesses,
// vertices, constraints and volumes — to the serial run, and identical
// side statistics.
func TestParallelMatchesSerial(t *testing.T) {
	for _, algo := range []Algorithm{CTA, PCTA, LPCTA, KSkybandCTA} {
		for _, d := range []int{3, 5} {
			if d == 5 && (algo == CTA || algo == KSkybandCTA) {
				// The non-progressive variants process every record in high
				// dimensions; LP-CTA and P-CTA cover the d=5 engine paths at
				// a fraction of the cost.
				continue
			}
			for _, k := range []int{4, 8} {
				seeds := int64(2)
				n := 200
				if d == 5 {
					n = 60
				}
				if raceEnabled {
					// Race instrumentation makes the LP loops ~10x slower;
					// one seed and smaller datasets still cover every
					// engine interleaving.
					seeds = 1
					n /= 2
				}
				for seed := int64(1); seed <= seeds; seed++ {
					tr, recs := buildRandom(t, n, d, seed*31)
					focalID := tr.Skyline(nil)[0]
					base := Options{
						K:                k,
						Algorithm:        algo,
						FinalizeGeometry: true,
						ComputeVolumes:   d == 3, // keep the d=5 cases fast
						VolumeSamples:    500,
						Seed:             7,
					}
					serialOpts := base
					serialOpts.Parallelism = 1
					parallelOpts := base
					parallelOpts.Parallelism = 6

					serial, err := Run(tr, recs[focalID], focalID, serialOpts)
					if err != nil {
						t.Fatalf("%v d=%d k=%d seed=%d serial: %v", algo, d, k, seed, err)
					}
					parallel, err := Run(tr, recs[focalID], focalID, parallelOpts)
					if err != nil {
						t.Fatalf("%v d=%d k=%d seed=%d parallel: %v", algo, d, k, seed, err)
					}
					if len(serial.Regions) != len(parallel.Regions) {
						t.Fatalf("%v d=%d k=%d seed=%d: %d regions serial, %d parallel",
							algo, d, k, seed, len(serial.Regions), len(parallel.Regions))
					}
					for i := range serial.Regions {
						if !reflect.DeepEqual(serial.Regions[i], parallel.Regions[i]) {
							t.Fatalf("%v d=%d k=%d seed=%d: region %d differs\nserial:   %+v\nparallel: %+v",
								algo, d, k, seed, i, serial.Regions[i], parallel.Regions[i])
						}
					}
					if got, want := statsComparable(parallel.Stats), statsComparable(serial.Stats); got != want {
						t.Fatalf("%v d=%d k=%d seed=%d: stats differ\nserial:   %+v\nparallel: %+v",
							algo, d, k, seed, want, got)
					}
				}
			}
		}
	}
}

// TestParallelProgressiveCallbackOrder asserts the OnRegion stream is also
// deterministic: parallel finalization must fire the progressive callback
// in exactly the serial order.
func TestParallelProgressiveCallbackOrder(t *testing.T) {
	tr, recs := buildRandom(t, 300, 4, 97)
	focalID := tr.Skyline(nil)[0]
	run := func(parallelism int) []geom.Vector {
		var witnesses []geom.Vector
		opts := Options{
			K: 6, Algorithm: LPCTA, FinalizeGeometry: true,
			Parallelism: parallelism,
			OnRegion:    func(reg Region) { witnesses = append(witnesses, reg.Witness) },
		}
		if _, err := Run(tr, recs[focalID], focalID, opts); err != nil {
			t.Fatal(err)
		}
		return witnesses
	}
	serial := run(1)
	parallel := run(5)
	if len(serial) != len(parallel) {
		t.Fatalf("callback count differs: %d serial, %d parallel", len(serial), len(parallel))
	}
	for i := range serial {
		if !serial[i].Equal(parallel[i]) {
			t.Fatalf("callback %d witness differs: %v vs %v", i, serial[i], parallel[i])
		}
	}
}
