package geom

import (
	"fmt"
	"math"
)

// Sign selects one side of a hyperplane.
type Sign int8

const (
	// Negative selects the halfspace where the competing record scores
	// LOWER than the focal record (good for the focal record).
	Negative Sign = -1
	// Positive selects the halfspace where the competing record scores
	// HIGHER than the focal record.
	Positive Sign = +1
)

// Opposite returns the other side.
func (s Sign) Opposite() Sign { return -s }

func (s Sign) String() string {
	if s == Positive {
		return "+"
	}
	return "-"
}

// Kind classifies how a record's hyperplane interacts with the preference
// space as a whole. Most records produce a proper hyperplane that can cut
// through the space; a record that differs from the focal record by a
// constant shift produces no hyperplane at all — one of the two compares
// wins everywhere.
type Kind int8

const (
	// Proper means the hyperplane genuinely partitions the space.
	Proper Kind = iota
	// AlwaysPositive means the record outscores the focal record for every
	// weight vector (it contributes +1 to the rank globally).
	AlwaysPositive
	// AlwaysNegative means the focal record outscores the record everywhere;
	// the record is irrelevant to kSPR.
	AlwaysNegative
	// Tie means the two records have identical scores everywhere.
	Tie
)

// Hyperplane is the locus S(r) = S(p) in preference space, stored as
// Coef·w = RHS with Coef unit-normalized. The positive side Coef·w > RHS is
// where record r outscores the focal record p.
//
// In the transformed space Coef has length d-1; in the original space it has
// length d and RHS is 0 (the hyperplane passes through the origin).
type Hyperplane struct {
	// ID identifies the competing record that induced this hyperplane.
	ID int
	// Coef is the unit-normalized normal vector.
	Coef Vector
	// RHS is the right-hand side after normalization.
	RHS float64
	// Kind records degenerate cases; Coef/RHS are meaningful only for Proper.
	Kind Kind
}

// NewHyperplaneTransformed builds the hyperplane S(r)=S(p) in the
// transformed (d-1)-dimensional preference space:
//
//	Σ_{j<d} (r_j - r_d - p_j + p_d)·w_j = p_d - r_d
//
// following §3.2 of the paper. id tags the competing record.
func NewHyperplaneTransformed(id int, r, p Vector) Hyperplane {
	d := len(r)
	if len(p) != d {
		panic(fmt.Sprintf("geom: hyperplane from records of lengths %d and %d", d, len(p)))
	}
	coef := make(Vector, d-1)
	for j := 0; j < d-1; j++ {
		coef[j] = (r[j] - r[d-1]) - (p[j] - p[d-1])
	}
	rhs := p[d-1] - r[d-1]
	return normalize(id, coef, rhs)
}

// NewHyperplaneOriginal builds the hyperplane S(r)=S(p) in the original
// d-dimensional preference space: (r-p)·w = 0, which always passes through
// the origin (Appendix C).
func NewHyperplaneOriginal(id int, r, p Vector) Hyperplane {
	d := len(r)
	if len(p) != d {
		panic(fmt.Sprintf("geom: hyperplane from records of lengths %d and %d", d, len(p)))
	}
	coef := make(Vector, d)
	for j := 0; j < d; j++ {
		coef[j] = r[j] - p[j]
	}
	return normalize(id, coef, 0)
}

func normalize(id int, coef Vector, rhs float64) Hyperplane {
	n := coef.Norm()
	if n <= Eps {
		// Degenerate: scores differ by the constant -rhs everywhere
		// (S(r) - S(p) = coef·w - rhs = -rhs on the simplex).
		switch {
		case rhs < -Eps:
			return Hyperplane{ID: id, Kind: AlwaysPositive}
		case rhs > Eps:
			return Hyperplane{ID: id, Kind: AlwaysNegative}
		default:
			return Hyperplane{ID: id, Kind: Tie}
		}
	}
	out := make(Vector, len(coef))
	for i, c := range coef {
		out[i] = c / n
	}
	return Hyperplane{ID: id, Coef: out, RHS: rhs / n, Kind: Proper}
}

// Eval returns Coef·w - RHS: positive on the positive side, negative on the
// negative side, ~0 on the hyperplane.
func (h Hyperplane) Eval(w Vector) float64 {
	return h.Coef.Dot(w) - h.RHS
}

// Side returns which open halfspace w lies in, or 0 if w is on the
// hyperplane within tol.
func (h Hyperplane) Side(w Vector, tol float64) Sign {
	v := h.Eval(w)
	switch {
	case v > tol:
		return Positive
	case v < -tol:
		return Negative
	default:
		return 0
	}
}

func (h Hyperplane) String() string {
	return fmt.Sprintf("h%d{%v = %.6g}", h.ID, []float64(h.Coef), h.RHS)
}

// Halfspace is one side of a hyperplane: the open set where Sign·(Coef·w -
// RHS) > 0.
type Halfspace struct {
	H    Hyperplane
	Sign Sign
}

// Contains reports whether w lies strictly inside the halfspace (by tol).
func (hs Halfspace) Contains(w Vector, tol float64) bool {
	return float64(hs.Sign)*hs.H.Eval(w) > tol
}

// AsConstraint renders the halfspace as a row a·w <= b (the closed
// complement boundary): Sign=+1 (Coef·w > RHS) becomes -Coef·w <= -RHS;
// Sign=-1 (Coef·w < RHS) becomes Coef·w <= RHS. Rows stay unit-normalized.
func (hs Halfspace) AsConstraint() Constraint {
	if hs.Sign == Negative {
		return Constraint{A: hs.H.Coef, B: hs.H.RHS, Strict: true}
	}
	a := make(Vector, len(hs.H.Coef))
	for i, c := range hs.H.Coef {
		a[i] = -c
	}
	return Constraint{A: a, B: -hs.H.RHS, Strict: true}
}

func (hs Halfspace) String() string {
	return fmt.Sprintf("h%d%s", hs.H.ID, hs.Sign)
}

// Constraint is a linear row a·w <= b (Strict: a·w < b) with a
// unit-normalized unless constructed otherwise.
type Constraint struct {
	A      Vector
	B      float64
	Strict bool
}

// Holds reports whether w satisfies the constraint with tolerance tol
// (strict constraints require a margin of tol; non-strict allow +tol).
func (c Constraint) Holds(w Vector, tol float64) bool {
	v := c.A.Dot(w) - c.B
	if c.Strict {
		return v < -tol
	}
	return v <= tol
}

// SpaceBoundsTransformed returns the constraints delimiting the transformed
// preference space in dPref = d-1 dimensions: w_j > 0 for every j, and
// Σ w_j < 1 (so that the implicit w_d is positive). Rows are
// unit-normalized.
func SpaceBoundsTransformed(dPref int) []Constraint {
	cons := make([]Constraint, 0, dPref+1)
	for j := 0; j < dPref; j++ {
		a := make(Vector, dPref)
		a[j] = -1
		cons = append(cons, Constraint{A: a, B: 0, Strict: true})
	}
	a := make(Vector, dPref)
	norm := math.Sqrt(float64(dPref))
	for j := range a {
		a[j] = 1 / norm
	}
	cons = append(cons, Constraint{A: a, B: 1 / norm, Strict: true})
	return cons
}

// SpaceBoundsOriginal returns the constraints delimiting the original
// preference space in d dimensions: w_j > 0 and w_j < 1 for every j
// (Appendix C; no normalization constraint, so cells are cones).
func SpaceBoundsOriginal(d int) []Constraint {
	cons := make([]Constraint, 0, 2*d)
	for j := 0; j < d; j++ {
		lo := make(Vector, d)
		lo[j] = -1
		cons = append(cons, Constraint{A: lo, B: 0, Strict: true})
		hi := make(Vector, d)
		hi[j] = 1
		cons = append(cons, Constraint{A: hi, B: 1, Strict: true})
	}
	return cons
}
