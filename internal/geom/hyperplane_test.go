package geom

import (
	"math"
	"math/rand"
	"testing"
)

// The defining property of a transformed-space hyperplane: for any weight
// vector wt, the side of the hyperplane matches the score comparison
// between r and p under the lifted weights (paper §3.2).
func TestHyperplaneSideMatchesScoreComparison(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 2000; trial++ {
		d := 2 + rng.Intn(5)
		r := randVector(rng, d)
		p := randVector(rng, d)
		h := NewHyperplaneTransformed(1, r, p)
		wt := randSimplex(rng, d-1)
		w := Lift(wt)
		diff := Score(r, w) - Score(p, w)
		switch h.Kind {
		case Proper:
			v := h.Eval(wt)
			if diff > 1e-7 && v <= 0 {
				t.Fatalf("S(r)>S(p) (diff=%g) but Eval=%g <= 0", diff, v)
			}
			if diff < -1e-7 && v >= 0 {
				t.Fatalf("S(r)<S(p) (diff=%g) but Eval=%g >= 0", diff, v)
			}
		case AlwaysPositive:
			if diff <= 0 {
				t.Fatalf("AlwaysPositive but diff=%g", diff)
			}
		case AlwaysNegative:
			if diff >= 0 {
				t.Fatalf("AlwaysNegative but diff=%g", diff)
			}
		case Tie:
			if math.Abs(diff) > 1e-7 {
				t.Fatalf("Tie but diff=%g", diff)
			}
		}
	}
}

func TestHyperplaneOriginalPassesThroughOrigin(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		d := 2 + rng.Intn(5)
		r, p := randVector(rng, d), randVector(rng, d)
		h := NewHyperplaneOriginal(1, r, p)
		if h.Kind != Proper {
			continue
		}
		if h.RHS != 0 {
			t.Fatalf("original-space hyperplane has RHS %v, want 0", h.RHS)
		}
		// Side must match the raw score comparison at any positive w.
		w := randVector(rng, d)
		diff := Score(r, w) - Score(p, w)
		v := h.Eval(w)
		if diff > 1e-7 && v <= 0 || diff < -1e-7 && v >= 0 {
			t.Fatalf("original-space side mismatch: diff=%g eval=%g", diff, v)
		}
	}
}

func TestHyperplaneDegenerateKinds(t *testing.T) {
	p := Vector{1, 2, 3}
	// r = p + 0.5 in every dimension: r dominates p, scores always higher.
	r := Vector{1.5, 2.5, 3.5}
	if h := NewHyperplaneTransformed(0, r, p); h.Kind != AlwaysPositive {
		t.Fatalf("constant-shift-up record: kind %v, want AlwaysPositive", h.Kind)
	}
	// r = p - 0.5 everywhere.
	r = Vector{0.5, 1.5, 2.5}
	if h := NewHyperplaneTransformed(0, r, p); h.Kind != AlwaysNegative {
		t.Fatalf("constant-shift-down record: kind %v, want AlwaysNegative", h.Kind)
	}
	if h := NewHyperplaneTransformed(0, p.Clone(), p); h.Kind != Tie {
		t.Fatalf("identical record: kind %v, want Tie", h.Kind)
	}
}

func TestHyperplaneNormalization(t *testing.T) {
	h := NewHyperplaneTransformed(0, Vector{9, 4, 4}, Vector{5, 5, 7})
	if h.Kind != Proper {
		t.Fatalf("kind = %v, want Proper", h.Kind)
	}
	if math.Abs(h.Coef.Norm()-1) > 1e-12 {
		t.Fatalf("coefficients not unit-normalized: |a| = %v", h.Coef.Norm())
	}
}

func TestHalfspaceContainsAndConstraint(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 500; trial++ {
		d := 3
		r, p := randVector(rng, d), randVector(rng, d)
		h := NewHyperplaneTransformed(1, r, p)
		if h.Kind != Proper {
			continue
		}
		wt := randSimplex(rng, d-1)
		for _, sign := range []Sign{Positive, Negative} {
			hs := Halfspace{H: h, Sign: sign}
			in := hs.Contains(wt, 1e-9)
			con := hs.AsConstraint()
			// Membership in the open halfspace implies the constraint holds.
			if in && !con.Holds(wt, 0) {
				t.Fatalf("halfspace %v contains %v but constraint fails", hs, wt)
			}
			if !in && con.Holds(wt, -1e-6) {
				// Strictly inside the constraint by a margin implies Contains.
				t.Fatalf("constraint strictly holds at %v but Contains is false", wt)
			}
		}
	}
}

func TestSignOpposite(t *testing.T) {
	if Positive.Opposite() != Negative || Negative.Opposite() != Positive {
		t.Fatal("Opposite is broken")
	}
	if Positive.String() != "+" || Negative.String() != "-" {
		t.Fatal("Sign.String is broken")
	}
}

func TestSpaceBoundsTransformed(t *testing.T) {
	cons := SpaceBoundsTransformed(2)
	if len(cons) != 3 {
		t.Fatalf("got %d constraints, want 3", len(cons))
	}
	inside := Vector{0.2, 0.3}
	outside := []Vector{{-0.1, 0.3}, {0.6, 0.6}, {0.2, -0.01}}
	for _, c := range cons {
		if !c.Holds(inside, 1e-12) {
			t.Fatalf("interior point violates %+v", c)
		}
	}
	for _, w := range outside {
		ok := true
		for _, c := range cons {
			if !c.Holds(w, 1e-12) {
				ok = false
			}
		}
		if ok {
			t.Fatalf("exterior point %v satisfies all bounds", w)
		}
	}
}

func TestSpaceBoundsOriginal(t *testing.T) {
	cons := SpaceBoundsOriginal(3)
	if len(cons) != 6 {
		t.Fatalf("got %d constraints, want 6", len(cons))
	}
	in := Vector{0.5, 0.5, 0.5}
	for _, c := range cons {
		if !c.Holds(in, 1e-12) {
			t.Fatalf("interior point violates %+v", c)
		}
	}
	out := Vector{1.5, 0.5, 0.5}
	viol := 0
	for _, c := range cons {
		if !c.Holds(out, 1e-12) {
			viol++
		}
	}
	if viol == 0 {
		t.Fatal("exterior point satisfies all original-space bounds")
	}
}

func TestSideClassification(t *testing.T) {
	h := NewHyperplaneTransformed(0, Vector{9, 4, 4}, Vector{5, 5, 7})
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 200; i++ {
		wt := randSimplex(rng, 2)
		side := h.Side(wt, 1e-9)
		diff := Score(Vector{9, 4, 4}, Lift(wt)) - Score(Vector{5, 5, 7}, Lift(wt))
		if side == Positive && diff <= 0 || side == Negative && diff >= 0 {
			t.Fatalf("side %v inconsistent with score diff %g", side, diff)
		}
	}
}
