package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDotAndSum(t *testing.T) {
	v := Vector{1, 2, 3}
	u := Vector{4, 5, 6}
	if got := v.Dot(u); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
	if got := v.Sum(); got != 6 {
		t.Fatalf("Sum = %v, want 6", got)
	}
	if got := (Vector{3, 4}).Norm(); math.Abs(got-5) > Eps {
		t.Fatalf("Norm = %v, want 5", got)
	}
}

func TestDotPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on mismatched lengths")
		}
	}()
	Vector{1}.Dot(Vector{1, 2})
}

func TestCloneIndependence(t *testing.T) {
	v := Vector{1, 2}
	c := v.Clone()
	c[0] = 99
	if v[0] != 1 {
		t.Fatal("Clone aliases the original")
	}
}

func TestDominates(t *testing.T) {
	cases := []struct {
		r, s Vector
		want bool
	}{
		{Vector{2, 2}, Vector{1, 1}, true},
		{Vector{2, 1}, Vector{1, 1}, true},
		{Vector{1, 1}, Vector{1, 1}, false}, // equal: no strict dimension
		{Vector{2, 0}, Vector{1, 1}, false},
		{Vector{1, 2}, Vector{2, 1}, false},
	}
	for _, c := range cases {
		if got := Dominates(c.r, c.s); got != c.want {
			t.Errorf("Dominates(%v, %v) = %v, want %v", c.r, c.s, got, c.want)
		}
	}
}

func TestCompare(t *testing.T) {
	if Compare(Vector{2, 2}, Vector{1, 1}) != DomFirst {
		t.Error("want DomFirst")
	}
	if Compare(Vector{1, 1}, Vector{2, 2}) != DomSecond {
		t.Error("want DomSecond")
	}
	if Compare(Vector{1, 2}, Vector{2, 1}) != DomNone {
		t.Error("want DomNone")
	}
	if Compare(Vector{1, 2}, Vector{1, 2}) != DomEqual {
		t.Error("want DomEqual")
	}
}

// Property: Compare is consistent with Dominates.
func TestCompareConsistentWithDominates(t *testing.T) {
	f := func(a, b [4]float64) bool {
		r, s := Vector(a[:]), Vector(b[:])
		rel := Compare(r, s)
		return (rel == DomFirst) == Dominates(r, s) &&
			(rel == DomSecond) == Dominates(s, r)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: ScoreTransformed(r, wt) == Score(r, Lift(wt)) for wt in the simplex.
func TestScoreTransformedMatchesLiftedScore(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		d := 2 + rng.Intn(5)
		r := randVector(rng, d)
		wt := randSimplex(rng, d-1)
		got := ScoreTransformed(r, wt)
		want := Score(r, Lift(wt))
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("d=%d: transformed score %v != lifted score %v", d, got, want)
		}
	}
}

func TestLiftProjectRoundTrip(t *testing.T) {
	wt := Vector{0.2, 0.3}
	w := Lift(wt)
	if math.Abs(w.Sum()-1) > Eps {
		t.Fatalf("lifted vector sums to %v, want 1", w.Sum())
	}
	if !Project(w).Equal(wt) {
		t.Fatalf("Project(Lift(wt)) = %v, want %v", Project(w), wt)
	}
}

func TestInSimplex(t *testing.T) {
	if !InSimplex(Vector{0.2, 0.3}) {
		t.Error("interior point rejected")
	}
	if InSimplex(Vector{0.5, 0.5}) {
		t.Error("boundary point (sum=1) accepted")
	}
	if InSimplex(Vector{0, 0.3}) {
		t.Error("boundary point (w1=0) accepted")
	}
	if InSimplex(Vector{-0.1, 0.3}) {
		t.Error("exterior point accepted")
	}
}

func TestSimplexCenter(t *testing.T) {
	c := SimplexCenter(3)
	if !InSimplex(c) {
		t.Fatalf("center %v not interior", c)
	}
}

// randVector returns a vector with components in [0,1).
func randVector(rng *rand.Rand, d int) Vector {
	v := make(Vector, d)
	for i := range v {
		v[i] = rng.Float64()
	}
	return v
}

// randSimplex returns a strictly interior point of the transformed
// preference space in dPref dimensions.
func randSimplex(rng *rand.Rand, dPref int) Vector {
	// Sample d = dPref+1 exponentials and normalize; drop the last.
	raw := make([]float64, dPref+1)
	var sum float64
	for i := range raw {
		raw[i] = rng.ExpFloat64() + 1e-6
		sum += raw[i]
	}
	wt := make(Vector, dPref)
	for i := range wt {
		wt[i] = raw[i] / sum
	}
	return wt
}
