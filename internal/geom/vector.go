// Package geom provides the vector math, dominance tests, and the
// hyperplane/halfspace machinery on which kSPR processing is built.
//
// Records and weight vectors are dense []float64 slices. A record r maps,
// relative to a focal record p, to the hyperplane S(r) = S(p) in preference
// space; the positive halfspace is where r outscores p and the negative
// halfspace is where p outscores r (paper §3.2).
package geom

import (
	"fmt"
	"math"
)

// Eps is the geometric tolerance used throughout the library. Coordinates
// are expected to be of magnitude O(1) (generators produce values in [0,1]),
// so a single absolute tolerance is appropriate.
const Eps = 1e-9

// Vector is a point in data space or preference space.
type Vector []float64

// Clone returns a copy of v.
func (v Vector) Clone() Vector {
	c := make(Vector, len(v))
	copy(c, v)
	return c
}

// Dot returns the inner product v·u. It panics if the lengths differ,
// because mismatched dimensionality is always a programming error.
func (v Vector) Dot(u Vector) float64 {
	if len(v) != len(u) {
		panic(fmt.Sprintf("geom: dot of vectors with lengths %d and %d", len(v), len(u)))
	}
	var s float64
	for i, x := range v {
		s += x * u[i]
	}
	return s
}

// Sum returns the sum of the components of v.
func (v Vector) Sum() float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}

// Norm returns the Euclidean norm of v.
func (v Vector) Norm() float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// Equal reports whether v and u are component-wise equal within Eps.
func (v Vector) Equal(u Vector) bool {
	if len(v) != len(u) {
		return false
	}
	for i, x := range v {
		if math.Abs(x-u[i]) > Eps {
			return false
		}
	}
	return true
}

// Score returns the linear score r·w of record r under weight vector w
// (Equation 1 of the paper). Both must have the same length d.
func Score(r, w Vector) float64 { return r.Dot(w) }

// ScoreTransformed evaluates S(r) for a weight vector in the transformed
// preference space (d-1 free weights; the last weight is 1 - Σ wt).
// It computes r_d + Σ_{j<d} (r_j - r_d)·wt_j.
func ScoreTransformed(r Vector, wt Vector) float64 {
	d := len(r)
	if len(wt) != d-1 {
		panic(fmt.Sprintf("geom: transformed weight length %d for %d-dimensional record", len(wt), d))
	}
	s := r[d-1]
	for j := 0; j < d-1; j++ {
		s += (r[j] - r[d-1]) * wt[j]
	}
	return s
}

// Lift converts a transformed weight vector (length d-1) into the original
// d-dimensional weight vector by appending w_d = 1 - Σ wt_j.
func Lift(wt Vector) Vector {
	w := make(Vector, len(wt)+1)
	copy(w, wt)
	w[len(wt)] = 1 - wt.Sum()
	return w
}

// Project converts an original-space weight vector (length d, summing to 1)
// into the transformed space by dropping the last component.
func Project(w Vector) Vector {
	return w[:len(w)-1].Clone()
}

// DomRelation classifies the dominance relationship between two records.
type DomRelation int

const (
	// DomNone means neither record dominates the other.
	DomNone DomRelation = iota
	// DomFirst means the first record dominates the second.
	DomFirst
	// DomSecond means the second record dominates the first.
	DomSecond
	// DomEqual means the records are component-wise equal (a tie).
	DomEqual
)

// Dominates reports whether r dominates s under "larger is better"
// semantics: r is no smaller than s in every dimension and strictly larger
// in at least one (paper §2).
func Dominates(r, s Vector) bool {
	if len(r) != len(s) {
		panic("geom: dominance test on vectors of different lengths")
	}
	strict := false
	for i, x := range r {
		switch {
		case x < s[i]:
			return false
		case x > s[i]:
			strict = true
		}
	}
	return strict
}

// Compare returns the dominance relation between r and s.
func Compare(r, s Vector) DomRelation {
	rBetter, sBetter := false, false
	for i, x := range r {
		switch {
		case x > s[i]:
			rBetter = true
		case x < s[i]:
			sBetter = true
		}
		if rBetter && sBetter {
			return DomNone
		}
	}
	switch {
	case rBetter:
		return DomFirst
	case sBetter:
		return DomSecond
	default:
		return DomEqual
	}
}

// InSimplex reports whether a transformed weight vector lies strictly inside
// the preference space: every component > 0 and the component sum < 1.
func InSimplex(wt Vector) bool {
	var s float64
	for _, x := range wt {
		if x <= 0 {
			return false
		}
		s += x
	}
	return s < 1
}

// SimplexCenter returns the barycenter of the transformed preference space
// in dPref dimensions: each coordinate 1/(dPref+1). It is always strictly
// interior and is a convenient starting point for sampling.
func SimplexCenter(dPref int) Vector {
	c := make(Vector, dPref)
	for i := range c {
		c[i] = 1 / float64(dPref+1)
	}
	return c
}
