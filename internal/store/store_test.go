package store

import (
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func open(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	return s
}

func apply(t *testing.T, s *Store, muts ...Mutation) (*Version, []Applied) {
	t.Helper()
	v, a, err := s.Apply(muts)
	if err != nil {
		t.Fatalf("apply: %v", err)
	}
	return v, a
}

func TestApplyBasics(t *testing.T) {
	s := open(t, t.TempDir(), Options{})
	v, a := apply(t, s,
		Mutation{Op: OpInsert, Values: []float64{1, 2}},
		Mutation{Op: OpInsert, Values: []float64{3, 4}},
	)
	if v.Gen != 1 || v.Len() != 2 || v.Dim() != 2 {
		t.Fatalf("after insert: gen=%d len=%d dim=%d", v.Gen, v.Len(), v.Dim())
	}
	if a[0].ID != 0 || a[1].ID != 1 {
		t.Fatalf("assigned ids %d, %d", a[0].ID, a[1].ID)
	}
	v, a = apply(t, s, Mutation{Op: OpUpdate, ID: 0, Values: []float64{9, 9}})
	if got := v.Rows()[0]; got[0] != 9 {
		t.Fatalf("update not applied: %v", got)
	}
	if a[0].Old[0] != 1 {
		t.Fatalf("old values not captured: %v", a[0].Old)
	}
	v, _ = apply(t, s, Mutation{Op: OpDelete, ID: 0})
	if v.Len() != 1 || v.IDs()[0] != 1 {
		t.Fatalf("delete left %v", v.IDs())
	}
	if _, ok := v.Dense(0); ok {
		t.Fatal("deleted id still dense-resolvable")
	}
	if i, ok := v.Dense(1); !ok || i != 0 {
		t.Fatalf("Dense(1) = %d, %v", i, ok)
	}
	// New inserts never reuse a deleted id.
	_, a = apply(t, s, Mutation{Op: OpInsert, Values: []float64{5, 5}})
	if a[0].ID != 2 {
		t.Fatalf("insert reused id: %d", a[0].ID)
	}
}

func TestApplyValidation(t *testing.T) {
	s := open(t, t.TempDir(), Options{})
	apply(t, s, Mutation{Op: OpInsert, Values: []float64{1, 2}})
	cases := []Mutation{
		{Op: OpInsert, Values: []float64{1, 2, 3}},     // wrong dim
		{Op: OpInsert, Values: nil},                    // empty
		{Op: OpInsert, ID: 7, Values: []float64{1, 2}}, // explicit id
		{Op: OpUpdate, ID: 42, Values: []float64{1, 2}},
		{Op: OpDelete, ID: 42},
		{Op: OpDelete, ID: 0, Values: []float64{1, 2}},
		{Op: Op(9)},
	}
	for i, m := range cases {
		if _, _, err := s.Apply([]Mutation{m}); err == nil {
			t.Fatalf("case %d: invalid mutation accepted", i)
		}
	}
	// A failed batch must not change anything.
	_, _, err := s.Apply([]Mutation{
		{Op: OpInsert, Values: []float64{8, 8}},
		{Op: OpDelete, ID: 42},
	})
	if err == nil {
		t.Fatal("half-bad batch accepted")
	}
	v := s.View()
	if v.Gen != 1 || v.Len() != 1 {
		t.Fatalf("failed batch mutated state: gen=%d len=%d", v.Gen, v.Len())
	}
}

func TestVersionsAreImmutable(t *testing.T) {
	s := open(t, t.TempDir(), Options{})
	v1, _ := apply(t, s, Mutation{Op: OpInsert, Values: []float64{1, 2}})
	v2, _ := apply(t, s, Mutation{Op: OpUpdate, ID: 0, Values: []float64{7, 7}})
	if v1.Rows()[0][0] != 1 {
		t.Fatalf("old version mutated: %v", v1.Rows()[0])
	}
	if v2.Rows()[0][0] != 7 {
		t.Fatalf("new version wrong: %v", v2.Rows()[0])
	}
}

func TestRecoveryFromWALOnly(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{})
	apply(t, s, Mutation{Op: OpInsert, Values: []float64{1, 2}})
	apply(t, s, Mutation{Op: OpInsert, Values: []float64{3, 4}})
	apply(t, s, Mutation{Op: OpDelete, ID: 0})
	want := s.View()
	// Simulate a crash: reopen without Close.
	s2 := open(t, dir, Options{})
	assertSameVersion(t, want, s2.View())
	// The recovered store keeps assigning fresh ids.
	_, a := apply(t, s2, Mutation{Op: OpInsert, Values: []float64{5, 6}})
	if a[0].ID != 2 {
		t.Fatalf("recovered nextID wrong: assigned %d", a[0].ID)
	}
}

func TestRecoveryWithSnapshotAndTail(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{SnapshotEvery: -1})
	apply(t, s, Mutation{Op: OpInsert, Values: []float64{1, 2}})
	apply(t, s, Mutation{Op: OpInsert, Values: []float64{3, 4}})
	if err := s.Snapshot(); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	apply(t, s, Mutation{Op: OpUpdate, ID: 1, Values: []float64{8, 8}})
	want := s.View()
	s2 := open(t, dir, Options{})
	assertSameVersion(t, want, s2.View())
	if s2.View().Gen != 3 {
		t.Fatalf("recovered generation %d, want 3", s2.View().Gen)
	}
}

func TestTornTailIsTruncated(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{})
	apply(t, s, Mutation{Op: OpInsert, Values: []float64{1, 2}})
	want := s.View()
	// A crash mid-append leaves a torn frame: some header bytes and part
	// of a payload.
	f, err := os.OpenFile(filepath.Join(dir, "wal.log"), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{200, 0, 0, 0, 1, 2, 3, 4, 9, 9}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	s2 := open(t, dir, Options{})
	assertSameVersion(t, want, s2.View())
	// The tail was truncated, so appending keeps working.
	v, _ := apply(t, s2, Mutation{Op: OpInsert, Values: []float64{3, 4}})
	if v.Gen != 2 || v.Len() != 2 {
		t.Fatalf("post-truncate apply: gen=%d len=%d", v.Gen, v.Len())
	}
	s3 := open(t, dir, Options{})
	assertSameVersion(t, v, s3.View())
}

func TestMidLogCorruptionIsAnError(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{})
	apply(t, s, Mutation{Op: OpInsert, Values: []float64{1, 2}})
	apply(t, s, Mutation{Op: OpInsert, Values: []float64{3, 4}})
	path := filepath.Join(dir, "wal.log")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[9] ^= 0xff // flip a byte inside the FIRST frame's payload
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("mid-log corruption silently accepted")
	}
}

// TestCrashStream is the acceptance scenario: a randomized mutation
// stream, "killed" (abandoned without Close) at a random point and
// reopened, must recover the exact pre-crash dataset and generation —
// including when snapshots landed mid-stream.
func TestCrashStream(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for round := 0; round < 5; round++ {
		dir := t.TempDir()
		s := open(t, dir, Options{SnapshotEvery: 7})
		var live []int64
		steps := 10 + rng.Intn(40)
		for i := 0; i < steps; i++ {
			var m Mutation
			switch {
			case len(live) == 0 || rng.Float64() < 0.5:
				m = Mutation{Op: OpInsert, Values: []float64{rng.Float64(), rng.Float64(), rng.Float64()}}
			case rng.Float64() < 0.5:
				m = Mutation{Op: OpUpdate, ID: live[rng.Intn(len(live))], Values: []float64{rng.Float64(), rng.Float64(), rng.Float64()}}
			default:
				m = Mutation{Op: OpDelete, ID: live[rng.Intn(len(live))]}
			}
			_, a, err := s.Apply([]Mutation{m})
			if err != nil {
				t.Fatalf("round %d step %d: %v", round, i, err)
			}
			switch a[0].Op {
			case OpInsert:
				live = append(live, a[0].ID)
			case OpDelete:
				for j, id := range live {
					if id == a[0].ID {
						live = append(live[:j], live[j+1:]...)
						break
					}
				}
			}
		}
		want := s.View()
		s2 := open(t, dir, Options{}) // crash: no Close
		assertSameVersion(t, want, s2.View())
		if s2.View().Gen != want.Gen {
			t.Fatalf("round %d: recovered gen %d, want %d", round, s2.View().Gen, want.Gen)
		}
	}
}

func TestSnapshotTruncatesWAL(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{SnapshotEvery: 3})
	for i := 0; i < 7; i++ {
		apply(t, s, Mutation{Op: OpInsert, Values: []float64{float64(i), 1}})
	}
	// 7 batches with cadence 3: two snapshots happened, WAL holds 1 frame.
	fi, err := os.Stat(filepath.Join(dir, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() == 0 {
		t.Fatal("wal empty; expected exactly the post-snapshot tail")
	}
	if _, err := os.Stat(filepath.Join(dir, "snapshot.snap")); err != nil {
		t.Fatalf("snapshot missing: %v", err)
	}
	s2 := open(t, dir, Options{})
	assertSameVersion(t, s.View(), s2.View())
}

func TestSyncOption(t *testing.T) {
	s := open(t, t.TempDir(), Options{Sync: true})
	v, _ := apply(t, s, Mutation{Op: OpInsert, Values: []float64{1, 2}})
	if v.Gen != 1 {
		t.Fatalf("gen %d", v.Gen)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if _, _, err := s.Apply([]Mutation{{Op: OpInsert, Values: []float64{1, 2}}}); err == nil {
		t.Fatal("apply after close accepted")
	}
}

func assertSameVersion(t *testing.T, want, got *Version) {
	t.Helper()
	if want.Gen != got.Gen {
		t.Fatalf("generation %d, want %d", got.Gen, want.Gen)
	}
	if !reflect.DeepEqual(want.IDs(), got.IDs()) {
		t.Fatalf("ids %v, want %v", got.IDs(), want.IDs())
	}
	if !reflect.DeepEqual(want.Rows(), got.Rows()) {
		t.Fatalf("rows differ")
	}
	if want.Dim() != got.Dim() {
		t.Fatalf("dim %d, want %d", got.Dim(), want.Dim())
	}
}

func TestApplyRecordsExported(t *testing.T) {
	recs, nextID, dim, applied, err := ApplyRecords(nil, 0, 0, []Mutation{
		{Op: OpInsert, Values: []float64{1, 2}},
		{Op: OpInsert, Values: []float64{3, 4}},
		{Op: OpUpdate, ID: 0, Values: []float64{5, 6}},
		{Op: OpDelete, ID: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].ID != 0 || recs[0].Values[0] != 5 {
		t.Fatalf("records %+v", recs)
	}
	if nextID != 2 || dim != 2 || len(applied) != 4 {
		t.Fatalf("nextID=%d dim=%d applied=%d", nextID, dim, len(applied))
	}
	// The exported form never accepts pre-assigned insert ids.
	if _, _, _, _, err := ApplyRecords(nil, 0, 0, []Mutation{{Op: OpInsert, ID: 5, Values: []float64{1, 2}}}); err == nil {
		t.Fatal("pre-assigned insert id accepted outside replay")
	}
}

func TestOpStringAndAccessors(t *testing.T) {
	for op, want := range map[Op]string{OpInsert: "insert", OpUpdate: "update", OpDelete: "delete", Op(9): "Op(9)"} {
		if got := op.String(); got != want {
			t.Fatalf("Op(%d).String() = %q, want %q", op, got, want)
		}
	}
	dir := t.TempDir()
	s := open(t, dir, Options{})
	if s.Dir() != dir {
		t.Fatalf("Dir() = %q", s.Dir())
	}
	v, _ := apply(t, s, Mutation{Op: OpInsert, Values: []float64{1, 2}})
	if recs := v.Records(); len(recs) != 1 || recs[0].ID != 0 {
		t.Fatalf("Records() = %+v", recs)
	}
}

// TestReloadChangesDimensionality pins the delete-all + insert-all reload
// pattern: emptying the store mid-batch frees the dimensionality, so the
// same atomic batch may re-establish a different one.
func TestReloadChangesDimensionality(t *testing.T) {
	s := open(t, t.TempDir(), Options{})
	apply(t, s, Mutation{Op: OpInsert, Values: []float64{1, 2, 3}},
		Mutation{Op: OpInsert, Values: []float64{4, 5, 6}})
	v, _ := apply(t, s,
		Mutation{Op: OpDelete, ID: 0},
		Mutation{Op: OpDelete, ID: 1},
		Mutation{Op: OpInsert, Values: []float64{1, 2, 3, 4}},
		Mutation{Op: OpInsert, Values: []float64{5, 6, 7, 8}},
	)
	if v.Dim() != 4 || v.Len() != 2 {
		t.Fatalf("after reload batch: dim=%d len=%d", v.Dim(), v.Len())
	}
	// And the mixed-dim batch without full emptying still fails.
	if _, _, err := s.Apply([]Mutation{{Op: OpInsert, Values: []float64{1, 2}}}); err == nil {
		t.Fatal("dim mismatch accepted")
	}
}
