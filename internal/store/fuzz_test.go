package store

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzDecodeWALPayload fuzzes the WAL frame payload parser — the bytes a
// crashed process (or a corrupt disk) hands recovery. Any input may be
// rejected, but none may panic or over-allocate, and every accepted
// payload must round-trip: re-encoding the decoded batch and decoding
// again reproduces it exactly (the frame format is canonical).
func FuzzDecodeWALPayload(f *testing.F) {
	good := encodeFrame(7, []Applied{
		{Mutation: Mutation{Op: OpInsert, ID: 1, Values: []float64{0.25, 0.75}}},
		{Mutation: Mutation{Op: OpUpdate, ID: 1, Values: []float64{0.5, 0.5}}},
		{Mutation: Mutation{Op: OpDelete, ID: 1}},
	})
	f.Add(good[8:]) // strip [len][crc]: decodePayload sees the payload only
	f.Add(encodeFrame(1, nil)[8:])
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 1, 255, 255, 255, 255})
	f.Fuzz(func(t *testing.T, payload []byte) {
		gen, muts, err := decodePayload(payload)
		if err != nil {
			return
		}
		reencode := func(gen uint64, muts []Mutation) []byte {
			applied := make([]Applied, len(muts))
			for i, m := range muts {
				applied[i] = Applied{Mutation: m}
			}
			return encodeFrame(gen, applied)
		}
		frame := reencode(gen, muts)
		gen2, muts2, err := decodePayload(frame[8:])
		if err != nil {
			t.Fatalf("re-encoded accepted payload rejected: %v", err)
		}
		// Bit-level comparison via the canonical encoding — DeepEqual on
		// the decoded values would treat identically-encoded NaNs as
		// unequal.
		if gen2 != gen || len(muts2) != len(muts) || !bytes.Equal(frame, reencode(gen2, muts2)) {
			t.Fatalf("round-trip mismatch: gen %d muts %v -> gen %d muts %v", gen, muts, gen2, muts2)
		}
	})
}

// FuzzDecodeIndex fuzzes the persisted candidate-index parser — the
// bytes a warm ksprd restart reads before serving queries. Any input may
// be rejected, but none may panic or allocate beyond the input size, and
// every accepted index must round-trip bit-exactly through the canonical
// encoder (so a warm load can never silently reinterpret a file).
func FuzzDecodeIndex(f *testing.F) {
	good := encodeIndex(&IndexSnapshot{
		Gen: 9, Fanout: 4, Dim: 2,
		Order: []int32{1, 0, 2}, GroupEnds: []int32{2, 3},
		BandK: 3, BandIDs: []int32{0, 2}, BandCnt: []int32{0, 2},
	})
	f.Add(good)
	f.Add(encodeIndex(&IndexSnapshot{Gen: 1, Fanout: 64, Dim: 3}))
	f.Add([]byte(indexMagic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		idx, err := decodeIndex(data)
		if err != nil {
			return
		}
		b := encodeIndex(idx)
		idx2, err := decodeIndex(b)
		if err != nil {
			t.Fatalf("re-encoded accepted index rejected: %v", err)
		}
		if !bytes.Equal(b, encodeIndex(idx2)) {
			t.Fatalf("round-trip mismatch: %+v vs %+v", idx, idx2)
		}
	})
}

// FuzzLoadSnapshot fuzzes the snapshot file parser with arbitrary file
// contents. Accepted snapshots must survive a write/reload round trip
// with an identical version; everything else must be a clean error — a
// panic or runaway allocation here would take down recovery at startup.
func FuzzLoadSnapshot(f *testing.F) {
	dir := f.TempDir()
	seedPath := filepath.Join(dir, "seed.snap")
	ver := newVersion(3, []Record{
		{ID: 1, Values: []float64{0.1, 0.9}},
		{ID: 4, Values: []float64{0.4, 0.6}},
	}, 2)
	if err := writeSnapshot(dir, seedPath, ver, 5); err != nil {
		f.Fatal(err)
	}
	seed, err := os.ReadFile(seedPath)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte(snapMagic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		tmp := t.TempDir()
		path := filepath.Join(tmp, "fuzz.snap")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		v, nextID, err := loadSnapshot(path)
		if err != nil {
			return
		}
		rt := filepath.Join(tmp, "roundtrip.snap")
		if err := writeSnapshot(tmp, rt, v, nextID); err != nil {
			t.Fatalf("re-writing accepted snapshot: %v", err)
		}
		v2, nextID2, err := loadSnapshot(rt)
		if err != nil {
			t.Fatalf("reloading re-written snapshot: %v", err)
		}
		rt2 := filepath.Join(tmp, "roundtrip2.snap")
		if err := writeSnapshot(tmp, rt2, v2, nextID2); err != nil {
			t.Fatalf("re-writing reloaded snapshot: %v", err)
		}
		// The writer is canonical, so equality of the written bytes is
		// bit-level equality of the versions (and NaN-safe, unlike
		// DeepEqual on decoded float records).
		b1, err1 := os.ReadFile(rt)
		b2, err2 := os.ReadFile(rt2)
		if err1 != nil || err2 != nil {
			t.Fatalf("reading round-trip snapshots: %v / %v", err1, err2)
		}
		if v2.Gen != v.Gen || nextID2 != nextID || v2.Dim() != v.Dim() || !bytes.Equal(b1, b2) {
			t.Fatalf("round-trip mismatch: gen %d/%d nextID %d/%d dim %d/%d",
				v.Gen, v2.Gen, nextID, nextID2, v.Dim(), v2.Dim())
		}
	})
}
