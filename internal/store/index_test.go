package store

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func testIndexSnapshot() *IndexSnapshot {
	return &IndexSnapshot{
		Gen:       42,
		Fanout:    8,
		Dim:       3,
		Order:     []int32{2, 0, 3, 1, 4},
		GroupEnds: []int32{2, 5},
		BandK:     4,
		BandIDs:   []int32{0, 2, 4},
		BandCnt:   []int32{0, 1, 3},
	}
}

func TestIndexRoundTrip(t *testing.T) {
	dir := t.TempDir()
	want := testIndexSnapshot()
	if err := WriteIndex(dir, want); err != nil {
		t.Fatal(err)
	}
	got, err := LoadIndex(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
	// Writing again must atomically replace, not append.
	want.Gen = 43
	if err := WriteIndex(dir, want); err != nil {
		t.Fatal(err)
	}
	got, err = LoadIndex(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Gen != 43 {
		t.Fatalf("rewrite not visible: gen %d", got.Gen)
	}
}

func TestLoadIndexMissingFile(t *testing.T) {
	idx, err := LoadIndex(t.TempDir())
	if idx != nil || err != nil {
		t.Fatalf("missing index: got (%v, %v), want (nil, nil)", idx, err)
	}
}

// reseal recomputes the CRC trailer so a corruption lands in the decoder
// proper, not the checksum gate.
func reseal(b []byte) []byte {
	body := b[:len(b)-4]
	return append(body[:len(body):len(body)],
		byte(crc32.ChecksumIEEE(body)),
		byte(crc32.ChecksumIEEE(body)>>8),
		byte(crc32.ChecksumIEEE(body)>>16),
		byte(crc32.ChecksumIEEE(body)>>24))
}

func TestDecodeIndexRejectsCorruption(t *testing.T) {
	good := encodeIndex(testIndexSnapshot())
	if _, err := decodeIndex(good); err != nil {
		t.Fatalf("good index rejected: %v", err)
	}
	cases := map[string][]byte{
		"empty":     {},
		"short":     good[:6],
		"magic":     append([]byte("NOTIDX00"), good[8:]...),
		"bitflip":   func() []byte { b := append([]byte(nil), good...); b[20] ^= 0xff; return b }(),
		"truncated": good[:len(good)-8],
		"trailing":  reseal(append(append([]byte(nil), good[:len(good)-4]...), 1, 2, 3, 4, 0, 0, 0, 0)),
		"huge-order": func() []byte {
			// A CRC-valid file whose order array claims 2^31-ish entries the
			// body cannot hold must be rejected before any allocation.
			b := append([]byte(nil), good[:len(indexMagic)+16]...)
			b = binary.LittleEndian.AppendUint32(b, 0x7fffffff)
			b = binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(b))
			return b
		}(),
	}
	for name, data := range cases {
		if _, err := decodeIndex(data); err == nil {
			t.Errorf("%s: corrupt index accepted", name)
		}
	}
}

func TestDecodeIndexValidatesBandTable(t *testing.T) {
	mutate := func(f func(idx *IndexSnapshot)) []byte {
		idx := testIndexSnapshot()
		f(idx)
		return encodeIndex(idx)
	}
	cases := map[string][]byte{
		"ids-not-ascending": mutate(func(i *IndexSnapshot) { i.BandIDs = []int32{2, 0, 4} }),
		"id-duplicate":      mutate(func(i *IndexSnapshot) { i.BandIDs = []int32{0, 2, 2} }),
		"id-out-of-range":   mutate(func(i *IndexSnapshot) { i.BandIDs = []int32{0, 2, 5} }),
		"cnt-negative":      mutate(func(i *IndexSnapshot) { i.BandCnt = []int32{0, -1, 3} }),
		"cnt-over-depth":    mutate(func(i *IndexSnapshot) { i.BandCnt = []int32{0, 1, 4} }),
		"mismatched-lens":   mutate(func(i *IndexSnapshot) { i.BandCnt = i.BandCnt[:2] }),
		"bad-fanout":        mutate(func(i *IndexSnapshot) { i.Fanout = 1 }),
		"bad-dim":           mutate(func(i *IndexSnapshot) { i.Dim = 0 }),
	}
	for name, data := range cases {
		if _, err := decodeIndex(data); err == nil {
			t.Errorf("%s: invalid index accepted", name)
		}
	}
}

func TestWriteIndexLeavesNoTempFile(t *testing.T) {
	dir := t.TempDir()
	if err := WriteIndex(dir, testIndexSnapshot()); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "index.tmp")); !os.IsNotExist(err) {
		t.Fatalf("temp file left behind (stat err: %v)", err)
	}
}
