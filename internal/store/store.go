// Package store implements the durable half of the live-dataset
// subsystem: a versioned, disk-backed option store with an append-only
// write-ahead log of mutations, periodic binary snapshots, and MVCC
// generation handles. Writers advance the generation one atomic mutation
// batch at a time; readers take an immutable Version and keep using it for
// as long as they like, so in-flight queries never observe a torn dataset.
//
// # On-disk layout
//
// A store directory holds at most three files:
//
//	wal.log        append-only frames, one per applied mutation batch
//	snapshot.snap  the most recent full snapshot (replaced atomically)
//	snapshot.tmp   scratch for the snapshot rename dance (transient)
//
// Every WAL frame carries the generation it produced plus a CRC, so
// recovery is snapshot-load + replay of the frames whose generation
// exceeds the snapshot's. A torn final frame (crash mid-append) is
// detected by the CRC and truncated away; corruption anywhere earlier is
// reported as an error rather than silently skipped.
package store

import (
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
)

// Op identifies a mutation kind.
type Op uint8

// Mutation kinds: insert a new option, update an existing one in place,
// or delete it.
const (
	OpInsert Op = 1
	OpUpdate Op = 2
	OpDelete Op = 3
)

// String names the operation as the wire protocol spells it.
func (o Op) String() string {
	switch o {
	case OpInsert:
		return "insert"
	case OpUpdate:
		return "update"
	case OpDelete:
		return "delete"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// Mutation is one option-level change. ID names the stable option id for
// OpUpdate/OpDelete and must be zero for OpInsert (the store assigns the
// next id). Values carries the new attribute vector for insert/update and
// must be nil for delete.
type Mutation struct {
	Op     Op
	ID     int64
	Values []float64
}

// Applied is one executed mutation: the input with the assigned ID filled
// in (inserts) and the previous attribute vector captured (update/delete).
type Applied struct {
	Mutation
	// Old is the option's values before the mutation; nil for inserts.
	Old []float64
}

// Record is one live option: a stable id plus its attribute vector.
type Record struct {
	ID     int64
	Values []float64
}

// Version is an immutable MVCC handle on one generation of the store.
// All accessors are safe for concurrent use and remain valid after the
// store has advanced past (or even closed behind) this generation.
type Version struct {
	// Gen is the generation this version materializes; generation 0 is the
	// empty store.
	Gen  uint64
	recs []Record // ascending stable id
	rows [][]float64
	ids  []int64
	dim  int
}

func newVersion(gen uint64, recs []Record, dim int) *Version {
	v := &Version{Gen: gen, recs: recs, dim: dim}
	v.rows = make([][]float64, len(recs))
	v.ids = make([]int64, len(recs))
	for i, r := range recs {
		v.rows[i] = r.Values
		v.ids[i] = r.ID
	}
	return v
}

// Len returns the number of live options.
func (v *Version) Len() int { return len(v.recs) }

// Dim returns the attribute dimensionality (0 while the store is empty).
func (v *Version) Dim() int { return v.dim }

// Rows returns the live options' attribute vectors in ascending stable-id
// order — the dense view query indexes are built over. The returned slices
// are shared and must not be modified.
func (v *Version) Rows() [][]float64 { return v.rows }

// IDs returns the stable option id at each dense index, ascending. The
// returned slice is shared and must not be modified.
func (v *Version) IDs() []int64 { return v.ids }

// Dense maps a stable option id to its dense index in Rows.
func (v *Version) Dense(id int64) (int, bool) {
	i := sort.Search(len(v.ids), func(i int) bool { return v.ids[i] >= id })
	if i < len(v.ids) && v.ids[i] == id {
		return i, true
	}
	return 0, false
}

// Records returns the live options (id + values), ascending by id. The
// returned slice is shared and must not be modified.
func (v *Version) Records() []Record { return v.recs }

// Options tunes a Store.
type Options struct {
	// Sync fsyncs the WAL after every applied batch. Off by default: an OS
	// or process crash then loses at most the page-cache tail, while a
	// plain process kill loses nothing (writes reach the kernel before
	// Apply returns either way).
	Sync bool
	// SnapshotEvery writes a snapshot and truncates the WAL after this many
	// applied batches (default 256; negative disables automatic snapshots).
	SnapshotEvery int
	// OnEvent, when set, is called for store lifecycle events (WAL
	// recovery, snapshot writes). The callback may run while the store's
	// mutex is held, so it must be fast and must not call back into the
	// store.
	OnEvent func(Event)
}

// Event is one store lifecycle event delivered to Options.OnEvent.
type Event struct {
	// Kind is "wal_recovery" or "snapshot_write".
	Kind string
	// Gen is the store generation in force after the event.
	Gen uint64
	// Records is the live record count at Gen.
	Records int
	// WALFrames is the number of WAL frames replayed beyond the snapshot
	// (wal_recovery) or compacted away (snapshot_write).
	WALFrames int
}

// Store event kinds delivered to Options.OnEvent.
const (
	// EventWALRecovery fires once per Open after snapshot load + WAL replay.
	EventWALRecovery = "wal_recovery"
	// EventSnapshotWrite fires after each successful snapshot + WAL truncate.
	EventSnapshotWrite = "snapshot_write"
)

// emit delivers ev to the OnEvent hook when one is installed.
func (s *Store) emit(ev Event) {
	if s.opts.OnEvent != nil {
		s.opts.OnEvent(ev)
	}
}

// DefaultSnapshotEvery is the automatic snapshot cadence in applied
// batches.
const DefaultSnapshotEvery = 256

// ErrIO marks server-side storage failures (a WAL append or fsync that
// did not complete). Mutations failing with ErrIO were NOT applied and
// are safe to retry; callers should distinguish them from validation
// errors, which indicate a bad request.
var ErrIO = errors.New("store: io failure")

// Store is a WAL-backed mutable option set. One writer at a time advances
// the generation through Apply; any number of readers take Versions.
type Store struct {
	dir  string
	opts Options

	mu       sync.Mutex
	cur      atomic.Pointer[Version]
	nextID   int64
	wal      *os.File
	walSize  int64
	walCount int // batches appended since the last snapshot
	snapErr  error
	closed   bool
}

// Open opens (or creates) the store directory, recovering state by
// loading the latest snapshot and replaying the WAL tail. The recovered
// generation is exactly the last durably applied one.
func Open(dir string, opts Options) (*Store, error) {
	if opts.SnapshotEvery == 0 {
		opts.SnapshotEvery = DefaultSnapshotEvery
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create dir: %w", err)
	}
	s := &Store{dir: dir, opts: opts}
	ver, nextID, err := loadSnapshot(s.snapPath())
	if err != nil {
		return nil, err
	}
	s.nextID = nextID
	wal, size, count, ver, err := replayWAL(s.walPath(), ver, s)
	if err != nil {
		return nil, err
	}
	s.wal, s.walSize, s.walCount = wal, size, count
	s.cur.Store(ver)
	s.emit(Event{Kind: EventWALRecovery, Gen: ver.Gen, Records: ver.Len(), WALFrames: count})
	return s, nil
}

// View returns the current generation's immutable version.
func (s *Store) View() *Version { return s.cur.Load() }

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// Apply executes one atomic mutation batch: it validates every mutation
// against the current generation, appends a single WAL frame, then
// installs the new Version. Either the whole batch applies (one new
// generation) or none of it does. It returns the new version together
// with the executed mutations (assigned ids, captured old values).
func (s *Store) Apply(muts []Mutation) (*Version, []Applied, error) {
	if len(muts) == 0 {
		return s.View(), nil, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, nil, fmt.Errorf("store: closed")
	}
	cur := s.cur.Load()
	recs, nextID, dim, applied, err := applyRecords(cur.recs, s.nextID, cur.dim, muts, false)
	if err != nil {
		return nil, nil, err
	}
	gen := cur.Gen + 1
	frame := encodeFrame(gen, applied)
	if _, err := s.wal.Write(frame); err != nil {
		return nil, nil, fmt.Errorf("%w: wal append: %v", ErrIO, err)
	}
	if s.opts.Sync {
		if err := s.wal.Sync(); err != nil {
			return nil, nil, fmt.Errorf("%w: wal sync: %v", ErrIO, err)
		}
	}
	s.walSize += int64(len(frame))
	s.walCount++
	s.nextID = nextID
	s.cur.Store(newVersion(gen, recs, dim))
	if s.opts.SnapshotEvery > 0 && s.walCount >= s.opts.SnapshotEvery {
		// The batch is already durably committed (WAL) and installed; a
		// failed snapshot only delays compaction, so it must NOT fail the
		// Apply — callers would wrongly conclude the batch did not happen.
		// walCount stays high, so the next batch retries the snapshot; the
		// error is retrievable via LastSnapshotError.
		s.snapErr = s.snapshotLocked()
	}
	return s.cur.Load(), applied, nil
}

// LastSnapshotError returns the most recent automatic-snapshot failure
// (nil once a snapshot succeeds again). Snapshot failures never fail
// Apply — the WAL already holds every committed batch — they only delay
// compaction.
func (s *Store) LastSnapshotError() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snapErr
}

// SinceSnapshot reports how many applied batches the WAL holds beyond
// the last durable snapshot. Zero right after an Apply means that Apply
// triggered an automatic snapshot — the moment callers persist derived
// artifacts (like the candidate index) alongside it.
func (s *Store) SinceSnapshot() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.walCount
}

// Snapshot forces a snapshot of the current generation and truncates the
// WAL. It is called automatically every Options.SnapshotEvery batches.
func (s *Store) Snapshot() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: closed")
	}
	s.snapErr = s.snapshotLocked()
	return s.snapErr
}

func (s *Store) snapshotLocked() error {
	ver := s.cur.Load()
	if err := writeSnapshot(s.dir, s.snapPath(), ver, s.nextID); err != nil {
		return err
	}
	// A crash between the snapshot rename and this truncate is harmless:
	// replay skips WAL frames whose generation the snapshot already covers.
	if err := s.wal.Truncate(0); err != nil {
		return fmt.Errorf("store: truncate wal: %w", err)
	}
	if _, err := s.wal.Seek(0, 0); err != nil {
		return fmt.Errorf("store: rewind wal: %w", err)
	}
	compacted := s.walCount
	s.walSize, s.walCount = 0, 0
	s.emit(Event{Kind: EventSnapshotWrite, Gen: ver.Gen, Records: ver.Len(), WALFrames: compacted})
	return nil
}

// Close syncs and closes the WAL. The store must not be used afterwards;
// outstanding Versions remain valid.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if err := s.wal.Sync(); err != nil {
		s.wal.Close()
		return fmt.Errorf("store: close sync: %w", err)
	}
	return s.wal.Close()
}

func (s *Store) snapPath() string { return filepath.Join(s.dir, "snapshot.snap") }
func (s *Store) walPath() string  { return filepath.Join(s.dir, "wal.log") }

// ApplyRecords executes a mutation batch against an immutable record
// slice, producing a fresh slice (copy-on-write; the input and its value
// slices are never modified). It is the store's single source of truth
// for mutation semantics, exported so in-memory (WAL-less) datasets apply
// mutations identically to durable ones. It returns the new records, the
// advanced id watermark and dimensionality, and the executed mutations.
func ApplyRecords(in []Record, nextID int64, dim int, muts []Mutation) ([]Record, int64, int, []Applied, error) {
	return applyRecords(in, nextID, dim, muts, false)
}

// applyRecords is ApplyRecords plus the WAL-replay mode, where insert ids
// arrive pre-assigned.
func applyRecords(in []Record, nextID int64, dim int, muts []Mutation, replay bool) (
	[]Record, int64, int, []Applied, error) {
	recs := append(make([]Record, 0, len(in)+len(muts)), in...)
	applied := make([]Applied, 0, len(muts))
	find := func(id int64) (int, bool) {
		i := sort.Search(len(recs), func(i int) bool { return recs[i].ID >= id })
		if i < len(recs) && recs[i].ID == id {
			return i, true
		}
		return 0, false
	}
	for mi, m := range muts {
		switch m.Op {
		case OpInsert:
			if err := checkValues(m.Values, &dim); err != nil {
				return nil, 0, 0, nil, fmt.Errorf("store: mutation %d: %w", mi, err)
			}
			id := m.ID
			if replay && id != 0 {
				if id < nextID {
					return nil, 0, 0, nil, fmt.Errorf("store: mutation %d: replayed insert id %d below next id %d", mi, id, nextID)
				}
			} else {
				if id != 0 {
					return nil, 0, 0, nil, fmt.Errorf("store: mutation %d: insert must not set an id (store assigns them)", mi)
				}
				id = nextID
			}
			nextID = id + 1
			vals := append([]float64(nil), m.Values...)
			recs = append(recs, Record{ID: id, Values: vals})
			applied = append(applied, Applied{Mutation: Mutation{Op: OpInsert, ID: id, Values: vals}})
		case OpUpdate:
			if err := checkValues(m.Values, &dim); err != nil {
				return nil, 0, 0, nil, fmt.Errorf("store: mutation %d: %w", mi, err)
			}
			i, ok := find(m.ID)
			if !ok {
				return nil, 0, 0, nil, fmt.Errorf("store: mutation %d: update of unknown option id %d", mi, m.ID)
			}
			old := recs[i].Values
			vals := append([]float64(nil), m.Values...)
			recs[i] = Record{ID: m.ID, Values: vals}
			applied = append(applied, Applied{Mutation: Mutation{Op: OpUpdate, ID: m.ID, Values: vals}, Old: old})
		case OpDelete:
			if m.Values != nil {
				return nil, 0, 0, nil, fmt.Errorf("store: mutation %d: delete must not carry values", mi)
			}
			i, ok := find(m.ID)
			if !ok {
				return nil, 0, 0, nil, fmt.Errorf("store: mutation %d: delete of unknown option id %d", mi, m.ID)
			}
			old := recs[i].Values
			recs = append(recs[:i], recs[i+1:]...)
			applied = append(applied, Applied{Mutation: Mutation{Op: OpDelete, ID: m.ID}, Old: old})
			if len(recs) == 0 {
				// Emptied mid-batch: later inserts in the SAME batch may
				// establish a new dimensionality (the delete-all + insert-all
				// reload pattern depends on this).
				dim = 0
			}
		default:
			return nil, 0, 0, nil, fmt.Errorf("store: mutation %d: unknown op %d", mi, m.Op)
		}
	}
	if len(recs) == 0 {
		dim = 0 // an emptied store accepts any dimensionality again
	}
	return recs, nextID, dim, applied, nil
}

// checkValues validates an insert/update vector against the store's
// dimensionality, fixing it on first use.
func checkValues(vals []float64, dim *int) error {
	if len(vals) == 0 {
		return fmt.Errorf("insert/update needs a non-empty values vector")
	}
	for _, v := range vals {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("values must be finite, got %v", v)
		}
	}
	if *dim == 0 {
		*dim = len(vals)
	} else if len(vals) != *dim {
		return fmt.Errorf("values have %d attributes, store has %d", len(vals), *dim)
	}
	return nil
}
