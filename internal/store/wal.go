// WAL frame and snapshot encoding. Both use the same primitive little-
// endian layout; frames add a length+CRC header so a torn tail (crash
// mid-append) is detected and truncated at recovery, and snapshots add a
// whole-file CRC trailer so a half-written snapshot is never trusted.
package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
)

// snapMagic identifies snapshot files (8 bytes, versioned).
const snapMagic = "KSPRSTO1"

// maxFrame bounds a single WAL frame; larger claims mean corruption.
const maxFrame = 1 << 30

// ---- primitives ----------------------------------------------------------

func putU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }
func putU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }

func putF64s(b []byte, vals []float64) []byte {
	b = putU32(b, uint32(len(vals)))
	for _, v := range vals {
		b = putU64(b, math.Float64bits(v))
	}
	return b
}

type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) u32() uint32 {
	if r.err != nil || r.off+4 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *reader) u64() uint64 {
	if r.err != nil || r.off+8 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

func (r *reader) f64s() []float64 {
	n := int(r.u32())
	if r.err != nil || n < 0 || r.off+8*n > len(r.b) {
		r.fail()
		return nil
	}
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = math.Float64frombits(r.u64())
	}
	return vals
}

func (r *reader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("store: truncated payload")
	}
}

// ---- WAL frames ----------------------------------------------------------

// encodeFrame renders one applied batch as a WAL frame:
// [len u32][crc u32][payload], payload = gen u64, count u32, then per
// mutation op u8, id u64, values (u32 count + f64 bits; absent for
// deletes).
func encodeFrame(gen uint64, applied []Applied) []byte {
	payload := putU64(nil, gen)
	payload = putU32(payload, uint32(len(applied)))
	for _, a := range applied {
		payload = append(payload, byte(a.Op))
		payload = putU64(payload, uint64(a.ID))
		if a.Op != OpDelete {
			payload = putF64s(payload, a.Values)
		}
	}
	frame := putU32(nil, uint32(len(payload)))
	frame = putU32(frame, crc32.ChecksumIEEE(payload))
	return append(frame, payload...)
}

// decodePayload parses a WAL frame payload into its generation and
// mutation batch (insert ids pre-assigned, ready for replay).
func decodePayload(payload []byte) (uint64, []Mutation, error) {
	r := &reader{b: payload}
	gen := r.u64()
	n := int(r.u32())
	// Each mutation costs at least 9 bytes (op u8 + id u64); a count the
	// remaining payload cannot hold is corruption, rejected before the
	// batch allocation so a tiny frame cannot demand a huge make.
	if r.err != nil || n < 0 || n > (len(payload)-r.off)/9 {
		return 0, nil, fmt.Errorf("store: corrupt wal payload header")
	}
	muts := make([]Mutation, 0, n)
	for i := 0; i < n; i++ {
		if r.off >= len(r.b) {
			return 0, nil, fmt.Errorf("store: corrupt wal payload (short mutation list)")
		}
		op := Op(r.b[r.off])
		r.off++
		id := int64(r.u64())
		var vals []float64
		if op != OpDelete {
			vals = r.f64s()
		}
		if r.err != nil {
			return 0, nil, r.err
		}
		muts = append(muts, Mutation{Op: op, ID: id, Values: vals})
	}
	if r.off != len(r.b) {
		return 0, nil, fmt.Errorf("store: corrupt wal payload (trailing bytes)")
	}
	return gen, muts, nil
}

// replayWAL opens the WAL for appending, replaying every intact frame
// whose generation exceeds ver's onto it. A torn or corrupt tail frame is
// truncated away (the batch never finished committing); corruption before
// the tail is an error. It returns the opened file positioned at the end,
// the live size, the replayed batch count, and the recovered version.
func replayWAL(path string, ver *Version, s *Store) (*os.File, int64, int, *Version, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, 0, 0, nil, fmt.Errorf("store: open wal: %w", err)
	}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, 0, 0, nil, fmt.Errorf("store: read wal: %w", err)
	}
	off, count := 0, 0
	recs, nextID, dim := ver.recs, s.nextID, ver.dim
	gen := ver.Gen
	for off < len(data) {
		frameStart := off
		if off+8 > len(data) {
			break // torn header
		}
		plen := int(binary.LittleEndian.Uint32(data[off:]))
		crc := binary.LittleEndian.Uint32(data[off+4:])
		if plen < 0 || plen > maxFrame || off+8+plen > len(data) {
			break // torn payload
		}
		payload := data[off+8 : off+8+plen]
		if crc32.ChecksumIEEE(payload) != crc {
			if off+8+plen == len(data) {
				break // torn tail: checksum never completed
			}
			f.Close()
			return nil, 0, 0, nil, fmt.Errorf("store: wal corrupt at offset %d (bad crc mid-log)", frameStart)
		}
		fgen, muts, err := decodePayload(payload)
		if err != nil {
			f.Close()
			return nil, 0, 0, nil, fmt.Errorf("store: wal frame at offset %d: %w", frameStart, err)
		}
		off += 8 + plen
		if fgen <= gen {
			continue // already covered by the snapshot
		}
		if fgen != gen+1 {
			f.Close()
			return nil, 0, 0, nil, fmt.Errorf("store: wal generation gap: have %d, frame carries %d", gen, fgen)
		}
		recs, nextID, dim, _, err = applyRecords(recs, nextID, dim, muts, true)
		if err != nil {
			f.Close()
			return nil, 0, 0, nil, fmt.Errorf("store: wal replay at offset %d: %w", frameStart, err)
		}
		gen = fgen
		count++
	}
	if off < len(data) {
		// Drop the torn tail so future appends start from a clean frame
		// boundary.
		if err := f.Truncate(int64(off)); err != nil {
			f.Close()
			return nil, 0, 0, nil, fmt.Errorf("store: truncate torn wal tail: %w", err)
		}
	}
	if _, err := f.Seek(int64(off), 0); err != nil {
		f.Close()
		return nil, 0, 0, nil, fmt.Errorf("store: seek wal: %w", err)
	}
	s.nextID = nextID
	return f, int64(off), count, newVersion(gen, recs, dim), nil
}

// ---- snapshots -----------------------------------------------------------

// writeSnapshot atomically replaces the snapshot file with the given
// version: write to a temp file, fsync, rename, fsync the directory.
func writeSnapshot(dir, path string, ver *Version, nextID int64) error {
	b := []byte(snapMagic)
	b = putU64(b, ver.Gen)
	b = putU64(b, uint64(nextID))
	b = putU32(b, uint32(ver.dim))
	b = putU32(b, uint32(len(ver.recs)))
	for _, r := range ver.recs {
		b = putU64(b, uint64(r.ID))
		b = putF64s(b, r.Values)
	}
	b = putU32(b, crc32.ChecksumIEEE(b))

	tmp := filepath.Join(dir, "snapshot.tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(b); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync() // best-effort directory entry durability
		d.Close()
	}
	return nil
}

// loadSnapshot reads the snapshot file, returning the empty generation-0
// version when none exists. A snapshot that fails its CRC is an error —
// the rename dance makes a half-written snapshot impossible under crash
// semantics, so a bad checksum means real corruption.
func loadSnapshot(path string) (*Version, int64, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return newVersion(0, nil, 0), 0, nil
	}
	if err != nil {
		return nil, 0, fmt.Errorf("store: read snapshot: %w", err)
	}
	if len(data) < len(snapMagic)+4 || string(data[:len(snapMagic)]) != snapMagic {
		return nil, 0, fmt.Errorf("store: snapshot has wrong magic")
	}
	body, trailer := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(trailer) {
		return nil, 0, fmt.Errorf("store: snapshot checksum mismatch")
	}
	r := &reader{b: body, off: len(snapMagic)}
	gen := r.u64()
	nextID := int64(r.u64())
	dim := int(r.u32())
	n := int(r.u32())
	// Each record costs at least 12 bytes (id u64 + values count u32), so
	// a count beyond body/12 cannot be satisfied — reject it before the
	// records allocation, or a CRC-valid 30-byte file claiming 4 billion
	// records would OOM recovery.
	if r.err != nil || n < 0 || n > (len(body)-r.off)/12 {
		return nil, 0, fmt.Errorf("store: snapshot header corrupt")
	}
	recs := make([]Record, 0, n)
	for i := 0; i < n; i++ {
		id := int64(r.u64())
		vals := r.f64s()
		if r.err != nil {
			return nil, 0, fmt.Errorf("store: snapshot record %d corrupt", i)
		}
		recs = append(recs, Record{ID: id, Values: vals})
	}
	if r.off != len(body) {
		return nil, 0, fmt.Errorf("store: snapshot has trailing bytes")
	}
	return newVersion(gen, recs, dim), nextID, nil
}
