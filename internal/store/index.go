// Persisted candidate-index snapshots. Rebuilding the R-tree after a
// daemon restart is O(n log n) in the dataset; the index file saves the
// part worth saving — the STR leaf order (and leaf group boundaries)
// plus the precomputed k-skyband table — so a warm restart reassembles a
// structurally identical tree in O(n) and serves skyband queries without
// a traversal. The file is advisory: it is validated against the store
// generation on load, and any mismatch or corruption just means a cold
// rebuild, never wrong results.
package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// indexMagic identifies index files (8 bytes, versioned).
const indexMagic = "KSPRIDX1"

// IndexFileName is the index file's name inside a store directory.
const IndexFileName = "index.bin"

// IndexSnapshot is the persisted form of a built candidate index: the
// dataset generation and tree shape it belongs to, the STR leaf layout
// (record positions in leaf order plus exclusive group ends), and the
// k-skyband table (ids ascending with exact dominator counts < BandK).
type IndexSnapshot struct {
	// Gen is the store generation the index was built from; an index
	// whose generation differs from the recovered version is stale.
	Gen uint64
	// Fanout and Dim pin the tree shape parameters.
	Fanout, Dim int
	// Order holds record positions (dense ids) in STR leaf order;
	// GroupEnds the exclusive end offset of each leaf's run.
	Order, GroupEnds []int32
	// BandK is the skyband depth of the table; BandIDs/BandCnt its
	// members (ascending) and their dominator counts.
	BandK            int
	BandIDs, BandCnt []int32
}

func putI32s(b []byte, vals []int32) []byte {
	b = putU32(b, uint32(len(vals)))
	for _, v := range vals {
		b = putU32(b, uint32(v))
	}
	return b
}

func (r *reader) i32s(max int) []int32 {
	n := int(r.u32())
	if r.err != nil || n < 0 || n > max || r.off+4*n > len(r.b) {
		r.fail()
		return nil
	}
	vals := make([]int32, n)
	for i := range vals {
		vals[i] = int32(r.u32())
	}
	return vals
}

// encodeIndex renders the snapshot: magic, gen u64, fanout u32, dim u32,
// then the order, group-end, band-id and band-count arrays (each u32
// count + i32 values), a bandK u32, and a whole-file CRC trailer.
func encodeIndex(idx *IndexSnapshot) []byte {
	b := []byte(indexMagic)
	b = putU64(b, idx.Gen)
	b = putU32(b, uint32(idx.Fanout))
	b = putU32(b, uint32(idx.Dim))
	b = putI32s(b, idx.Order)
	b = putI32s(b, idx.GroupEnds)
	b = putU32(b, uint32(idx.BandK))
	b = putI32s(b, idx.BandIDs)
	b = putI32s(b, idx.BandCnt)
	return putU32(b, crc32.ChecksumIEEE(b))
}

// decodeIndex parses and validates an index file's bytes. Like the WAL
// and snapshot decoders it is hardened against hostile input: every
// array length is bounded by the bytes actually present before its
// allocation, so a tiny CRC-valid file cannot demand a huge make, and
// the band table's invariants (ascending ids inside the record range,
// counts below the depth) are checked so a decoded table can never serve
// out-of-range records.
func decodeIndex(data []byte) (*IndexSnapshot, error) {
	if len(data) < len(indexMagic)+4 || string(data[:len(indexMagic)]) != indexMagic {
		return nil, fmt.Errorf("store: index has wrong magic")
	}
	body, trailer := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(trailer) {
		return nil, fmt.Errorf("store: index checksum mismatch")
	}
	r := &reader{b: body, off: len(indexMagic)}
	idx := &IndexSnapshot{Gen: r.u64()}
	idx.Fanout = int(int32(r.u32()))
	idx.Dim = int(int32(r.u32()))
	// Each array element costs 4 bytes; bound every claimed length by the
	// remaining body before allocating.
	idx.Order = r.i32s((len(body) - r.off) / 4)
	idx.GroupEnds = r.i32s((len(body) - r.off) / 4)
	idx.BandK = int(int32(r.u32()))
	idx.BandIDs = r.i32s((len(body) - r.off) / 4)
	idx.BandCnt = r.i32s((len(body) - r.off) / 4)
	if r.err != nil {
		return nil, fmt.Errorf("store: index corrupt")
	}
	if r.off != len(body) {
		return nil, fmt.Errorf("store: index has trailing bytes")
	}
	if idx.Fanout < 2 || idx.Dim < 1 || idx.BandK < 0 {
		return nil, fmt.Errorf("store: index header corrupt")
	}
	n := int32(len(idx.Order))
	if len(idx.BandIDs) != len(idx.BandCnt) {
		return nil, fmt.Errorf("store: index band table mismatched")
	}
	prev := int32(-1)
	for i, id := range idx.BandIDs {
		if id <= prev || id >= n || idx.BandCnt[i] < 0 || int(idx.BandCnt[i]) >= idx.BandK {
			return nil, fmt.Errorf("store: index band table corrupt")
		}
		prev = id
	}
	return idx, nil
}

// WriteIndex atomically replaces the index file in dir: write to a temp
// file, fsync, rename, fsync the directory — the snapshot dance.
func WriteIndex(dir string, idx *IndexSnapshot) error {
	b := encodeIndex(idx)
	tmp := filepath.Join(dir, "index.tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(b); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, IndexFileName)); err != nil {
		return err
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync() // best-effort directory entry durability
		d.Close()
	}
	return nil
}

// LoadIndex reads the index file from dir. A missing file returns
// (nil, nil) — the cold path, not an error; anything unreadable or
// failing validation is an error the caller treats as "rebuild cold".
func LoadIndex(dir string) (*IndexSnapshot, error) {
	data, err := os.ReadFile(filepath.Join(dir, IndexFileName))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: read index: %w", err)
	}
	return decodeIndex(data)
}
