package kernel

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
)

// genRecords produces n random d-dimensional records. When ties is true
// the coordinate pool is tiny and rows are sometimes duplicated, so the
// dataset is dense with component-level ties, exact duplicates, and
// incomparable pairs — the adversarial cases where an epsilon-sloppy or
// strictness-sloppy kernel diverges from the reference.
func genRecords(rng *rand.Rand, n, d int, ties bool) []geom.Vector {
	recs := make([]geom.Vector, n)
	for i := range recs {
		if ties && i > 0 && rng.Intn(4) == 0 {
			recs[i] = recs[rng.Intn(i)].Clone() // exact duplicate row
			if rng.Intn(2) == 0 {
				recs[i][rng.Intn(d)] = float64(rng.Intn(3)) / 2
			}
			continue
		}
		v := make(geom.Vector, d)
		for j := range v {
			if ties {
				v[j] = float64(rng.Intn(4)) / 3 // pool {0, 1/3, 2/3, 1}
			} else {
				v[j] = rng.Float64()
			}
		}
		recs[i] = v
	}
	return recs
}

// TestKernelsMatchReference is the property test pinning every kernel to
// the geom reference semantics on randomized datasets, with and without
// adversarial ties.
func TestKernelsMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	var scratch MaskScratch
	for trial := 0; trial < 200; trial++ {
		d := 1 + rng.Intn(6)
		n := 1 + rng.Intn(60)
		ties := trial%2 == 1
		recs := genRecords(rng, n, d, ties)
		rows := PackRows(recs, d)
		mat := NewMatrix(rows, n, d)

		// Row-major packing and transposition agree with the source.
		for i, r := range recs {
			for j, v := range r {
				if rows[i*d+j] != v {
					t.Fatalf("trial %d: PackRows[%d,%d] = %v, want %v", trial, i, j, rows[i*d+j], v)
				}
				if mat.Cols[j*n+i] != v {
					t.Fatalf("trial %d: Matrix[%d,%d] = %v, want %v", trial, i, j, mat.Cols[j*n+i], v)
				}
			}
		}

		// Pairwise flat dominance and comparison match geom exactly.
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a, b := rows[i*d:(i+1)*d], rows[j*d:(j+1)*d]
				if got, want := dominatesFlat(a, b, d), geom.Dominates(recs[i], recs[j]); got != want {
					t.Fatalf("trial %d: dominatesFlat(%v, %v) = %v, want %v", trial, recs[i], recs[j], got, want)
				}
				if got, want := CompareFlat(a, b, d), CompareResult(geom.Compare(recs[i], recs[j])); got != want {
					t.Fatalf("trial %d: CompareFlat(%v, %v) = %v, want %v", trial, recs[i], recs[j], got, want)
				}
			}
		}

		// Band membership tests match a naive scan over the same prefix.
		band := NewBand(d)
		for i, r := range recs {
			anyRef := false
			cntRef := 0
			for k := 0; k < i; k++ {
				if geom.Dominates(recs[k], r) {
					anyRef = true
					cntRef++
				}
			}
			if got := band.AnyDominates(r); got != anyRef {
				t.Fatalf("trial %d rec %d: AnyDominates = %v, want %v", trial, i, got, anyRef)
			}
			for limit := 1; limit <= cntRef+2; limit++ {
				want := cntRef
				if want > limit {
					want = limit
				}
				if got := band.CountDominatorsCapped(r, limit); got != want {
					t.Fatalf("trial %d rec %d limit %d: CountDominatorsCapped = %d, want %d", trial, i, limit, got, want)
				}
			}
			band.Push(r)
		}
		if band.Len() != n {
			t.Fatalf("trial %d: band length %d, want %d", trial, band.Len(), n)
		}
		for i := range recs {
			if !geom.Vector(band.Row(i)).Equal(recs[i]) {
				t.Fatalf("trial %d: band row %d diverged", trial, i)
			}
		}

		// Columnar whole-dataset counting matches the naive reference,
		// with and without an excluded record.
		for q := 0; q < 10; q++ {
			x := recs[rng.Intn(n)]
			exclude := -1
			if q%2 == 0 {
				exclude = rng.Intn(n)
			}
			want := 0
			for i, r := range recs {
				if i != exclude && geom.Dominates(r, x) {
					want++
				}
			}
			if got := mat.CountDominators(x, exclude, &scratch); got != want {
				t.Fatalf("trial %d: CountDominators(exclude=%d) = %d, want %d", trial, exclude, got, want)
			}
		}

		// The pairwise table matches per-record naive counts and
		// adjacency.
		cnt := make([]int, n)
		adj := make([][]int32, n)
		PairwiseDominators(rows, n, d, cnt, adj)
		for i := 0; i < n; i++ {
			wantCnt := 0
			var wantAdj []int32
			for j := 0; j < n; j++ {
				if j != i && geom.Dominates(recs[j], recs[i]) {
					wantCnt++
					wantAdj = append(wantAdj, int32(j))
				}
			}
			if cnt[i] != wantCnt {
				t.Fatalf("trial %d: cnt[%d] = %d, want %d", trial, i, cnt[i], wantCnt)
			}
			if len(adj[i]) != len(wantAdj) {
				t.Fatalf("trial %d: adj[%d] = %v, want %v", trial, i, adj[i], wantAdj)
			}
			for k := range wantAdj {
				if adj[i][k] != wantAdj[k] {
					t.Fatalf("trial %d: adj[%d] = %v, want %v", trial, i, adj[i], wantAdj)
				}
			}
		}
	}
}

// TestBandReset checks that Reset empties the band but keeps it usable.
func TestBandReset(t *testing.T) {
	b := NewBand(2)
	b.Push([]float64{1, 1})
	b.Reset()
	if b.Len() != 0 {
		t.Fatalf("Len after Reset = %d, want 0", b.Len())
	}
	if b.AnyDominates([]float64{0, 0}) {
		t.Fatal("empty band claims a dominator")
	}
	b.Push([]float64{1, 1})
	if !b.AnyDominates([]float64{0, 0}) {
		t.Fatal("band lost its record after Reset+Push")
	}
}
