// Package kernel provides the flat-array dominance kernels behind the
// large-n hot paths: R-tree skyline/k-skyband filtering, the batch
// engine's dominance table, and the progressive dominance graph.
//
// The package exists because the naive representation — a slice of
// per-record []float64 slices — costs one pointer chase per record per
// comparison, which dominates the inner loops once n outgrows the cache.
// Kernels here operate on dense flat layouts instead:
//
//   - row-major: vals[i*d+j] is attribute j of record i — the layout the
//     R-tree packs its records into, and the layout the accumulating
//     band scratch (Band) uses;
//   - column-major (attribute-major): cols[j*n+i] — the layout Matrix
//     uses for whole-dataset scans, where a pass per attribute streams
//     sequentially through memory.
//
// Inner loops are branch-light: dominance is evaluated with comparison
// counters (compiled to conditional moves on amd64, and to wider vector
// forms under GOAMD64=v3) rather than data-dependent early branches, and
// early exits happen only at record granularity.
//
// Contract: every kernel must agree exactly — on NaN-free input — with
// the reference semantics of geom.Dominates and geom.Compare ("larger is
// better": no smaller in every dimension, strictly larger in at least
// one, compared without epsilon). The property tests in this package pin
// that agreement on randomized and adversarially tied datasets.
package kernel

// PackRows copies the given records into one dense row-major backing
// array: out[i*d : (i+1)*d] holds record i. It panics if a record's
// length differs from d; callers validate dimensionality first.
func PackRows[V ~[]float64](recs []V, d int) []float64 {
	flat := make([]float64, len(recs)*d)
	for i, r := range recs {
		if len(r) != d {
			panic("kernel: record length mismatch in PackRows")
		}
		copy(flat[i*d:(i+1)*d], r)
	}
	return flat
}

// dominatesFlat reports whether row a dominates row x, both length-d
// flat slices, matching geom.Dominates exactly. The comparison-counter
// form keeps the loop body branch-light.
func dominatesFlat(a, x []float64, d int) bool {
	ge, gt := 0, 0
	for j := 0; j < d; j++ {
		av, xv := a[j], x[j]
		if av >= xv {
			ge++
		}
		if av > xv {
			gt++
		}
	}
	return ge == d && gt > 0
}

// Band is a grow-only accumulator of flat row-major records used by the
// R-tree skyline/k-skyband traversals: records join the band as they are
// reported, and every candidate entry is tested against the band so far.
// The flat backing replaces the []geom.Vector accumulation the loops
// used before, so membership tests stream through one contiguous array.
type Band struct {
	d    int
	n    int
	vals []float64
}

// NewBand returns an empty band for d-dimensional records.
func NewBand(d int) *Band { return &Band{d: d} }

// Reset empties the band, retaining its backing array.
func (b *Band) Reset() {
	b.n = 0
	b.vals = b.vals[:0]
}

// Len returns the number of records in the band.
func (b *Band) Len() int { return b.n }

// Push appends a record (length must be the band's dimensionality).
func (b *Band) Push(v []float64) {
	if len(v) != b.d {
		panic("kernel: record length mismatch in Band.Push")
	}
	b.vals = append(b.vals, v...)
	b.n++
}

// Row returns the i-th record in the band as a view into the backing
// array.
func (b *Band) Row(i int) []float64 {
	return b.vals[i*b.d : (i+1)*b.d]
}

// AnyDominates reports whether any band member dominates x.
func (b *Band) AnyDominates(x []float64) bool {
	d := b.d
	for off := 0; off < len(b.vals); off += d {
		if dominatesFlat(b.vals[off:off+d], x, d) {
			return true
		}
	}
	return false
}

// CountDominatorsCapped returns the number of band members dominating x,
// capped at limit: once limit dominators are found the scan stops, so
// comparisons against the cap (the k of a k-skyband) remain exact while
// deep non-members exit early.
func (b *Band) CountDominatorsCapped(x []float64, limit int) int {
	d := b.d
	count := 0
	for off := 0; off < len(b.vals); off += d {
		if dominatesFlat(b.vals[off:off+d], x, d) {
			count++
			if count >= limit {
				return count
			}
		}
	}
	return count
}

// Matrix is a column-major (attribute-major) view of an n x d dataset:
// Cols[j*N+i] is attribute j of record i. Whole-dataset kernels stream
// one attribute at a time, touching memory sequentially.
type Matrix struct {
	// N is the number of records, D the number of attributes.
	N, D int
	// Cols holds the attribute-major data, length N*D.
	Cols []float64
}

// NewMatrix transposes dense row-major data (rows[i*d+j], as produced by
// PackRows) into a column-major Matrix.
func NewMatrix(rows []float64, n, d int) *Matrix {
	if len(rows) != n*d {
		panic("kernel: row data length mismatch in NewMatrix")
	}
	cols := make([]float64, n*d)
	for i := 0; i < n; i++ {
		base := i * d
		for j := 0; j < d; j++ {
			cols[j*n+i] = rows[base+j]
		}
	}
	return &Matrix{N: n, D: d, Cols: cols}
}

// CountDominators returns the number of records in the matrix that
// dominate x, excluding the record index exclude (pass a negative index
// to exclude nothing). The scan runs one column at a time over byte
// masks, so each pass is a sequential stream with no per-record pointer
// chase.
func (m *Matrix) CountDominators(x []float64, exclude int, scratch *MaskScratch) int {
	if len(x) != m.D {
		panic("kernel: query length mismatch in CountDominators")
	}
	n := m.N
	ge, gt := scratch.masks(n)
	for i := range ge {
		ge[i] = 1
		gt[i] = 0
	}
	for j := 0; j < m.D; j++ {
		col := m.Cols[j*n : (j+1)*n]
		xv := x[j]
		for i, cv := range col {
			if cv < xv {
				ge[i] = 0
			}
			if cv > xv {
				gt[i] = 1
			}
		}
	}
	count := 0
	for i := 0; i < n; i++ {
		if i != exclude && ge[i]&gt[i] == 1 {
			count++
		}
	}
	return count
}

// MaskScratch holds the reusable per-record byte masks for Matrix scans,
// so repeated queries allocate nothing.
type MaskScratch struct {
	ge, gt []byte
}

// masks returns the two n-length mask slices, growing them on demand.
func (s *MaskScratch) masks(n int) ([]byte, []byte) {
	if cap(s.ge) < n {
		s.ge = make([]byte, n)
		s.gt = make([]byte, n)
	}
	return s.ge[:n], s.gt[:n]
}

// PairwiseDominators computes the full dominance table of a flat
// row-major dataset (n records of d attributes): cnt[i] receives the
// number of records dominating record i, and adj[i] — when adj is
// non-nil — receives the indices of those dominators in ascending
// order. cnt must have length n and arrive zeroed; adj must have length
// n and is appended to. This is the batch engine's shared dominance
// table, previously an O(n^2) loop over slice-of-slice records.
func PairwiseDominators(rows []float64, n, d int, cnt []int, adj [][]int32) {
	if len(rows) != n*d {
		panic("kernel: row data length mismatch in PairwiseDominators")
	}
	if len(cnt) != n {
		panic("kernel: count length mismatch in PairwiseDominators")
	}
	for i := 0; i < n; i++ {
		xi := rows[i*d : (i+1)*d]
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			if dominatesFlat(rows[j*d:(j+1)*d], xi, d) {
				cnt[i]++
				if adj != nil {
					adj[i] = append(adj[i], int32(j))
				}
			}
		}
	}
}

// CompareResult mirrors geom.DomRelation for flat rows without importing
// geom: 0 none, 1 first dominates, 2 second dominates, 3 equal.
type CompareResult int

// The flat-comparison outcomes, numerically aligned with
// geom.DomNone/DomFirst/DomSecond/DomEqual.
const (
	// CmpNone means neither row dominates the other.
	CmpNone CompareResult = iota
	// CmpFirst means the first row dominates the second.
	CmpFirst
	// CmpSecond means the second row dominates the first.
	CmpSecond
	// CmpEqual means the rows are component-wise identical.
	CmpEqual
)

// CompareFlat classifies the dominance relation between two length-d
// flat rows, matching geom.Compare exactly.
func CompareFlat(a, b []float64, d int) CompareResult {
	aBetter, bBetter := 0, 0
	for j := 0; j < d; j++ {
		av, bv := a[j], b[j]
		if av > bv {
			aBetter = 1
		}
		if av < bv {
			bBetter = 1
		}
	}
	switch {
	case aBetter == 1 && bBetter == 1:
		return CmpNone
	case aBetter == 1:
		return CmpFirst
	case bBetter == 1:
		return CmpSecond
	default:
		return CmpEqual
	}
}
