// Package viz renders kSPR results in 2-dimensional (transformed)
// preference spaces as standalone SVG documents — the plots of the paper's
// Figures 1(b) and 9. Stdlib only; geometry comes straight from the
// finalized region vertices.
package viz

import (
	"fmt"
	"io"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/geom"
)

// Options control the rendering.
type Options struct {
	// Size is the canvas edge in pixels (default 480).
	Size int
	// Title is drawn above the plot.
	Title string
	// XLabel / YLabel name the two weight axes (default w1 / w2).
	XLabel, YLabel string
	// ShowUncertain additionally draws the regions in Extra (e.g. the
	// uncertain set of an approximate result) hatched in a second colour.
	Extra []core.Region
}

// rankPalette colours regions by rank (best rank = strongest).
var rankPalette = []string{
	"#1a9850", "#66bd63", "#a6d96a", "#d9ef8b", "#fee08b",
	"#fdae61", "#f46d43", "#d73027",
}

// WriteSVG renders the result's regions. Only 2-d transformed spaces are
// supported (d=3 data); other dimensionalities return an error.
func WriteSVG(w io.Writer, res *core.Result, opts Options) error {
	if res == nil {
		return fmt.Errorf("viz: nil result")
	}
	if res.Space != core.Transformed {
		return fmt.Errorf("viz: only transformed-space results can be plotted")
	}
	for _, reg := range res.Regions {
		if len(reg.Witness) != 2 {
			return fmt.Errorf("viz: regions are %d-dimensional, need 2", len(reg.Witness))
		}
		break
	}
	if opts.Size <= 0 {
		opts.Size = 480
	}
	if opts.XLabel == "" {
		opts.XLabel = "w1"
	}
	if opts.YLabel == "" {
		opts.YLabel = "w2"
	}
	const margin = 40
	plot := float64(opts.Size - 2*margin)
	// Preference-space (0,0)-(1,1) maps to the plot area; y grows upward.
	toX := func(x float64) float64 { return margin + x*plot }
	toY := func(y float64) float64 { return float64(opts.Size) - margin - y*plot }

	fmt.Fprintf(w, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		opts.Size, opts.Size, opts.Size, opts.Size)
	fmt.Fprintf(w, `<rect width="%d" height="%d" fill="white"/>`+"\n", opts.Size, opts.Size)

	// The simplex outline: triangle (0,0) (1,0) (0,1).
	fmt.Fprintf(w, `<polygon points="%.1f,%.1f %.1f,%.1f %.1f,%.1f" fill="#f7f7f7" stroke="#999" stroke-dasharray="4 3"/>`+"\n",
		toX(0), toY(0), toX(1), toY(0), toX(0), toY(1))

	for _, reg := range res.Regions {
		drawRegion(w, reg, toX, toY, fillForRank(reg.Rank, res.K), "#333", 1.0)
	}
	for _, reg := range opts.Extra {
		drawRegion(w, reg, toX, toY, "#cccccc", "#888", 0.8)
	}

	// Axes.
	fmt.Fprintf(w, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="black"/>`+"\n",
		toX(0), toY(0), toX(1.02), toY(0))
	fmt.Fprintf(w, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="black"/>`+"\n",
		toX(0), toY(0), toX(0), toY(1.02))
	fmt.Fprintf(w, `<text x="%.1f" y="%.1f" font-size="12">%s</text>`+"\n",
		toX(0.95), toY(-0.06), xmlEscape(opts.XLabel))
	fmt.Fprintf(w, `<text x="%.1f" y="%.1f" font-size="12">%s</text>`+"\n",
		toX(-0.08), toY(0.97), xmlEscape(opts.YLabel))
	if opts.Title != "" {
		fmt.Fprintf(w, `<text x="%d" y="20" font-size="14" text-anchor="middle">%s</text>`+"\n",
			opts.Size/2, xmlEscape(opts.Title))
	}
	fmt.Fprintln(w, `</svg>`)
	return nil
}

func fillForRank(rank, k int) string {
	if k <= 1 {
		return rankPalette[0]
	}
	if rank < 1 {
		rank = 1
	}
	if rank > k {
		rank = k
	}
	// rank 1 -> strongest colour, rank k -> weakest.
	idx := (rank - 1) * (len(rankPalette) - 1) / (k - 1)
	return rankPalette[idx]
}

func drawRegion(w io.Writer, reg core.Region, toX, toY func(float64) float64, fill, stroke string, opacity float64) {
	verts := reg.Vertices
	if len(verts) < 3 {
		// No finalized geometry: draw the witness as a dot.
		if reg.Witness != nil {
			fmt.Fprintf(w, `<circle cx="%.1f" cy="%.1f" r="2.5" fill="%s"/>`+"\n",
				toX(reg.Witness[0]), toY(reg.Witness[1]), fill)
		}
		return
	}
	ordered := angularOrder(verts)
	points := ""
	for _, v := range ordered {
		points += fmt.Sprintf("%.2f,%.2f ", toX(v[0]), toY(v[1]))
	}
	fmt.Fprintf(w, `<polygon points="%s" fill="%s" fill-opacity="%.2f" stroke="%s" stroke-width="0.6"/>`+"\n",
		points, fill, opacity, stroke)
}

// angularOrder sorts polygon vertices around their centroid so the SVG
// polygon is simple (finalized vertex sets carry no ordering).
func angularOrder(verts []geom.Vector) []geom.Vector {
	var cx, cy float64
	for _, v := range verts {
		cx += v[0]
		cy += v[1]
	}
	cx /= float64(len(verts))
	cy /= float64(len(verts))
	out := append([]geom.Vector(nil), verts...)
	sort.Slice(out, func(i, j int) bool {
		return math.Atan2(out[i][1]-cy, out[i][0]-cx) < math.Atan2(out[j][1]-cy, out[j][0]-cx)
	})
	return out
}

func xmlEscape(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '<':
			out = append(out, "&lt;"...)
		case '>':
			out = append(out, "&gt;"...)
		case '&':
			out = append(out, "&amp;"...)
		case '"':
			out = append(out, "&quot;"...)
		default:
			out = append(out, s[i])
		}
	}
	return string(out)
}
