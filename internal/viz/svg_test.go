package viz

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/rtree"
)

func renderResult(t *testing.T) (*core.Result, string) {
	t.Helper()
	ds, err := dataset.Generate(dataset.Independent, 80, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := rtree.Build(ds.Records)
	if err != nil {
		t.Fatal(err)
	}
	focal := tr.Skyline(nil)[0]
	res, err := core.Run(tr, ds.Records[focal], focal, core.Options{
		K: 4, Algorithm: core.LPCTA, FinalizeGeometry: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSVG(&buf, res, Options{Title: "test <plot>", XLabel: "value", YLabel: "service"}); err != nil {
		t.Fatal(err)
	}
	return res, buf.String()
}

func TestWriteSVGBasics(t *testing.T) {
	res, svg := renderResult(t)
	if !strings.HasPrefix(svg, "<svg") || !strings.HasSuffix(strings.TrimSpace(svg), "</svg>") {
		t.Fatal("not a complete SVG document")
	}
	if strings.Count(svg, "<polygon") < len(res.Regions) {
		t.Fatalf("only %d polygons for %d regions", strings.Count(svg, "<polygon"), len(res.Regions))
	}
	if !strings.Contains(svg, "test &lt;plot&gt;") {
		t.Fatal("title not escaped/rendered")
	}
	if !strings.Contains(svg, "value") || !strings.Contains(svg, "service") {
		t.Fatal("axis labels missing")
	}
}

func TestWriteSVGValidation(t *testing.T) {
	if err := WriteSVG(&bytes.Buffer{}, nil, Options{}); err == nil {
		t.Fatal("expected error for nil result")
	}
	bad := &core.Result{Space: core.Original}
	if err := WriteSVG(&bytes.Buffer{}, bad, Options{}); err == nil {
		t.Fatal("expected error for original-space result")
	}
	threeD := &core.Result{Space: core.Transformed, Regions: []core.Region{{Witness: geom.Vector{0.1, 0.2, 0.3}}}}
	if err := WriteSVG(&bytes.Buffer{}, threeD, Options{}); err == nil {
		t.Fatal("expected error for 3-d regions")
	}
}

func TestWriteSVGWithUncertainExtra(t *testing.T) {
	ds, _ := dataset.Generate(dataset.Independent, 80, 3, 5)
	tr, _ := rtree.Build(ds.Records)
	focal := tr.Skyline(nil)[0]
	approx, err := core.RunApprox(tr, ds.Records[focal], focal, core.ApproxOptions{K: 4, Epsilon: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSVG(&buf, &approx.Result, Options{Extra: approx.Uncertain}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "#cccccc") {
		t.Fatal("uncertain overlay not drawn")
	}
}

func TestFillForRank(t *testing.T) {
	if fillForRank(1, 10) != rankPalette[0] {
		t.Fatal("rank 1 should map to the strongest colour")
	}
	if fillForRank(10, 10) != rankPalette[len(rankPalette)-1] {
		t.Fatal("rank k should map to the weakest colour")
	}
	if fillForRank(5, 0) == "" {
		t.Fatal("k=0 must not panic or return empty")
	}
}

func TestAngularOrderProducesSimplePolygon(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	square := []geom.Vector{{0, 0}, {1, 1}, {1, 0}, {0, 1}}
	rng.Shuffle(len(square), func(i, j int) { square[i], square[j] = square[j], square[i] })
	ordered := angularOrder(square)
	// Consecutive cross products must share a sign for a convex traversal.
	sign := 0.0
	for i := range ordered {
		a, b, c := ordered[i], ordered[(i+1)%4], ordered[(i+2)%4]
		cross := (b[0]-a[0])*(c[1]-b[1]) - (b[1]-a[1])*(c[0]-b[0])
		if cross != 0 {
			if sign == 0 {
				sign = cross
			} else if sign*cross < 0 {
				t.Fatal("angular order is not convex")
			}
		}
	}
}
