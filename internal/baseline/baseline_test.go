package baseline

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/rtree"
)

// bruteRank mirrors the oracle used in core's tests.
func bruteRank(recs []geom.Vector, focal geom.Vector, focalID int, w geom.Vector, eps float64) (int, bool) {
	ps := focal.Dot(w)
	rank := 1
	for id, rec := range recs {
		if id == focalID || rec.Equal(focal) {
			continue
		}
		diff := rec.Dot(w) - ps
		if math.Abs(diff) < eps {
			return 0, false
		}
		if diff > 0 {
			rank++
		}
	}
	return rank, true
}

func TestRTopKValidation(t *testing.T) {
	if _, err := RTopK([]geom.Vector{{1, 2, 3}}, geom.Vector{1, 2, 3}, 0, 3); err == nil {
		t.Fatal("expected error for 3-d records")
	}
	if _, err := RTopK([]geom.Vector{{1, 2}}, geom.Vector{1, 2}, 0, 0); err == nil {
		t.Fatal("expected error for k=0")
	}
}

func TestRTopKOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 20; trial++ {
		n := 40 + rng.Intn(100)
		ds, err := dataset.Generate(dataset.Independent, n, 2, int64(trial))
		if err != nil {
			t.Fatal(err)
		}
		focalID := rng.Intn(n)
		k := 1 + rng.Intn(8)
		res, err := RTopK(ds.Records, ds.Records[focalID], focalID, k)
		if err != nil {
			t.Fatal(err)
		}
		for s := 0; s < 200; s++ {
			a := rng.Float64()
			w := geom.Vector{a, 1 - a}
			rank, ok := bruteRank(ds.Records, ds.Records[focalID], focalID, w, 1e-9)
			if !ok {
				continue
			}
			in := res.ContainsWeight(geom.Vector{a}, 1e-9)
			if in != (rank <= k) {
				t.Fatalf("trial %d: a=%v rank=%d k=%d in=%v", trial, a, rank, k, in)
			}
		}
	}
}

func TestRTopKMatchesLPCTA(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	ds, err := dataset.Generate(dataset.Independent, 120, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := rtree.Build(ds.Records, rtree.WithFanout(16))
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 3, 7} {
		focalID := rng.Intn(120)
		rt, err := RTopK(ds.Records, ds.Records[focalID], focalID, k)
		if err != nil {
			t.Fatal(err)
		}
		lc, err := core.Run(tr, ds.Records[focalID], focalID, core.Options{K: k, Algorithm: core.LPCTA})
		if err != nil {
			t.Fatal(err)
		}
		// The two methods must implement the same membership function.
		for s := 0; s < 400; s++ {
			a := rng.Float64()
			inRT := rt.ContainsWeight(geom.Vector{a}, 1e-9)
			inLC := lc.ContainsWeight(geom.Vector{a}, 1e-9)
			if inRT != inLC {
				// Boundary tolerance: skip razor-edge points.
				if rt.ContainsWeight(geom.Vector{a}, 1e-6) != rt.ContainsWeight(geom.Vector{a}, -1e-6) {
					continue
				}
				if lc.ContainsWeight(geom.Vector{a}, 1e-6) != lc.ContainsWeight(geom.Vector{a}, -1e-6) {
					continue
				}
				t.Fatalf("k=%d: RTOPK and LP-CTA disagree at a=%v (%v vs %v)", k, a, inRT, inLC)
			}
		}
	}
}

func TestRTopKEmptyWhenDominated(t *testing.T) {
	recs := []geom.Vector{
		{0.9, 0.9}, {0.8, 0.8},
		{0.5, 0.5}, // focal, dominated by both
	}
	res, err := RTopK(recs, recs[2], 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Regions) != 0 {
		t.Fatalf("got %d regions, want none", len(res.Regions))
	}
	if res.Stats.BaseRank != 2 {
		t.Fatalf("BaseRank = %d", res.Stats.BaseRank)
	}
}

func TestRTopKRegionRanksAscending(t *testing.T) {
	recs := []geom.Vector{
		{0.2, 0.8}, // beats p for low a... depends; just check structural sanity
		{0.8, 0.2},
		{0.6, 0.6}, // focal
		{0.4, 0.55},
	}
	res, err := RTopK(recs, recs[2], 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Regions) == 0 {
		t.Fatal("expected regions for k = n")
	}
	// Intervals must be disjoint and ordered.
	for i := 1; i < len(res.Regions); i++ {
		prevHi := res.Regions[i-1].Vertices[1][0]
		curLo := res.Regions[i].Vertices[0][0]
		if curLo < prevHi-1e-12 {
			t.Fatalf("intervals overlap: %v then %v", res.Regions[i-1].Vertices, res.Regions[i].Vertices)
		}
	}
}

func TestIMaxRankValidation(t *testing.T) {
	if _, err := IMaxRank([]geom.Vector{{1}}, geom.Vector{1}, 0, 1, DefaultIMaxRankOptions()); err == nil {
		t.Fatal("expected error for 1-d")
	}
	if _, err := IMaxRank([]geom.Vector{{1, 2}}, geom.Vector{1, 2}, 0, 0, DefaultIMaxRankOptions()); err == nil {
		t.Fatal("expected error for k=0")
	}
}

func TestIMaxRankOracleSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	for trial := 0; trial < 6; trial++ {
		d := 2 + trial%2 // d = 2 or 3
		n := 30
		ds, err := dataset.Generate(dataset.Independent, n, d, int64(trial+100))
		if err != nil {
			t.Fatal(err)
		}
		focalID := rng.Intn(n)
		k := 1 + rng.Intn(4)
		res, err := IMaxRank(ds.Records, ds.Records[focalID], focalID, k, DefaultIMaxRankOptions())
		if err != nil {
			t.Fatal(err)
		}
		for s := 0; s < 150; s++ {
			wt := make(geom.Vector, d-1)
			var sum float64
			raw := make([]float64, d)
			for i := range raw {
				raw[i] = rng.ExpFloat64() + 1e-9
				sum += raw[i]
			}
			for i := range wt {
				wt[i] = raw[i] / sum
			}
			w := geom.Lift(wt)
			rank, ok := bruteRank(ds.Records, ds.Records[focalID], focalID, w, 1e-9)
			if !ok {
				continue
			}
			in := res.ContainsWeight(wt, 1e-9)
			if in != (rank <= k) {
				if res.ContainsWeight(wt, 1e-6) != res.ContainsWeight(wt, -1e-6) {
					continue
				}
				t.Fatalf("trial %d d=%d: wt=%v rank=%d k=%d in=%v", trial, d, wt, rank, k, in)
			}
		}
	}
}

func TestIMaxRankAgreesWithLPCTAOnVolume(t *testing.T) {
	ds, err := dataset.Generate(dataset.Independent, 40, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := rtree.Build(ds.Records, rtree.WithFanout(8))
	if err != nil {
		t.Fatal(err)
	}
	focalID := 5
	k := 3
	im, err := IMaxRank(ds.Records, ds.Records[focalID], focalID, k, DefaultIMaxRankOptions())
	if err != nil {
		t.Fatal(err)
	}
	lc, err := core.Run(tr, ds.Records[focalID], focalID, core.Options{
		K: k, Algorithm: core.LPCTA, ComputeVolumes: true, VolumeSamples: 4000, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Compare areas: iMaxRank regions are polygons; sum their shoelace areas.
	var imVol float64
	for _, reg := range im.Regions {
		imVol += polygonArea(reg.Vertices)
	}
	if math.Abs(imVol-lc.TotalVolume()) > 0.02*(1+lc.TotalVolume()) {
		t.Fatalf("areas disagree: iMaxRank %v vs LP-CTA %v", imVol, lc.TotalVolume())
	}
}

// polygonArea computes the area of a convex polygon given unordered
// vertices (sorted angularly around the centroid).
func polygonArea(vs []geom.Vector) float64 {
	if len(vs) < 3 {
		return 0
	}
	var cx, cy float64
	for _, v := range vs {
		cx += v[0]
		cy += v[1]
	}
	cx /= float64(len(vs))
	cy /= float64(len(vs))
	sorted := append([]geom.Vector(nil), vs...)
	for i := range sorted {
		for j := i + 1; j < len(sorted); j++ {
			ai := math.Atan2(sorted[i][1]-cy, sorted[i][0]-cx)
			aj := math.Atan2(sorted[j][1]-cy, sorted[j][0]-cx)
			if aj < ai {
				sorted[i], sorted[j] = sorted[j], sorted[i]
			}
		}
	}
	var area float64
	for i := range sorted {
		j := (i + 1) % len(sorted)
		area += sorted[i][0]*sorted[j][1] - sorted[j][0]*sorted[i][1]
	}
	return math.Abs(area) / 2
}

func TestRTopKFocalNotInDataset(t *testing.T) {
	ds, err := dataset.Generate(dataset.Independent, 60, 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	focal := geom.Vector{0.7, 0.6}
	res, err := RTopK(ds.Records, focal, -1, 5)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for s := 0; s < 200; s++ {
		a := rng.Float64()
		w := geom.Vector{a, 1 - a}
		rank, ok := bruteRank(ds.Records, focal, -1, w, 1e-9)
		if !ok {
			continue
		}
		if got := res.ContainsWeight(geom.Vector{a}, 1e-9); got != (rank <= 5) {
			t.Fatalf("a=%v rank=%d in=%v", a, rank, got)
		}
	}
}

func TestIMaxRankOptionVariations(t *testing.T) {
	ds, err := dataset.Generate(dataset.Independent, 25, 3, 21)
	if err != nil {
		t.Fatal(err)
	}
	focalID := 3
	base, err := IMaxRank(ds.Records, ds.Records[focalID], focalID, 3, DefaultIMaxRankOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Coarser and finer quad-trees must produce the same membership
	// function, only with different region fragmentation.
	for _, opts := range []IMaxRankOptions{
		{MaxCrossing: 2, MaxDepth: 8},
		{MaxCrossing: 20, MaxDepth: 4},
		{}, // zero values fall back to defaults
	} {
		other, err := IMaxRank(ds.Records, ds.Records[focalID], focalID, 3, opts)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(7))
		for s := 0; s < 150; s++ {
			wt := geom.Vector{rng.Float64(), rng.Float64()}
			if wt.Sum() >= 1 {
				continue
			}
			a := base.ContainsWeight(wt, 1e-9)
			b := other.ContainsWeight(wt, 1e-9)
			if a != b {
				if base.ContainsWeight(wt, 1e-6) != base.ContainsWeight(wt, -1e-6) {
					continue // boundary jitter
				}
				if other.ContainsWeight(wt, 1e-6) != other.ContainsWeight(wt, -1e-6) {
					continue
				}
				t.Fatalf("opts %+v: membership differs at %v (%v vs %v)", opts, wt, a, b)
			}
		}
	}
}

func TestIMaxRankEmptyForDeeplyDominated(t *testing.T) {
	recs := []geom.Vector{
		{0.9, 0.9, 0.9}, {0.8, 0.95, 0.85}, {0.95, 0.8, 0.9},
		{0.5, 0.5, 0.5}, // focal dominated by all three
	}
	res, err := IMaxRank(recs, recs[3], 3, 2, DefaultIMaxRankOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Regions) != 0 {
		t.Fatalf("expected empty result, got %d regions", len(res.Regions))
	}
	if res.Stats.BaseRank != 3 {
		t.Fatalf("BaseRank = %d", res.Stats.BaseRank)
	}
}
