// Package baseline implements the two competitors the paper evaluates
// against: RTOPK, the monochromatic reverse top-k of Vlachou et al. for
// 2-dimensional data (§2, §7.3 / Fig. 10a), and iMaxRank, the incremental
// maximum-rank adaptation of Mouratidis et al. (§2, §7.3 / Fig. 10b).
package baseline

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/geom"
)

// RTopK solves kSPR for d=2 with the switching-point sweep of the
// monochromatic reverse top-k query: the scoring function is
// a·r1 + (1-a)·r2, so the preference space is the segment a ∈ (0,1) and,
// for every record not dominating/dominated by the focal record, there is
// at most one value of a where its order relative to the focal record
// flips. Sorting those switching values and sweeping a from 0 to 1 yields
// the rank of the focal record in every elementary interval.
//
// focalID is the index of focal in records (-1 when absent). The result's
// regions are the elementary intervals with rank <= k, expressed in the
// transformed space (w1 = a).
func RTopK(records []geom.Vector, focal geom.Vector, focalID, k int) (*core.Result, error) {
	if len(focal) != 2 {
		return nil, fmt.Errorf("baseline: RTopK requires 2-dimensional records, got %d", len(focal))
	}
	if k <= 0 {
		return nil, fmt.Errorf("baseline: k must be positive, got %d", k)
	}
	res := &core.Result{Focal: focal.Clone(), K: k, Space: core.Transformed}

	// Records dominating p beat it for every a; dominated/tied records
	// never matter. RTOPK compares p against everything else (§7.3 notes it
	// applies the §3.1 filtering).
	base := 0
	type event struct {
		a     float64
		delta int // +1: record starts beating p at a; -1: it stops
	}
	var events []event
	countAtZero := 0 // records beating p as a -> 0+
	considered := 0
	for id, rec := range records {
		if id == focalID {
			continue
		}
		switch geom.Compare(rec, focal) {
		case geom.DomFirst:
			base++
			continue
		case geom.DomSecond, geom.DomEqual:
			continue
		}
		considered++
		// S(r)-S(p) = A·a + B with A = (r1-p1)-(r2-p2), B = r2-p2.
		A := (rec[0] - focal[0]) - (rec[1] - focal[1])
		B := rec[1] - focal[1]
		if A == 0 {
			if B > 0 {
				countAtZero++
			}
			continue
		}
		aStar := -B / A
		if aStar <= 0 || aStar >= 1 {
			// No switch inside (0,1): constant sign there; sample at 1/2.
			if A*0.5+B > 0 {
				countAtZero++
			}
			continue
		}
		if A > 0 {
			// Below aStar the record loses to p, above it wins.
			events = append(events, event{aStar, +1})
		} else {
			countAtZero++
			events = append(events, event{aStar, -1})
		}
	}
	res.Stats.ProcessedRecords = considered
	res.Stats.BaseRank = base
	if base >= k {
		res.Stats.Regions = 0
		return res, nil
	}

	sort.Slice(events, func(i, j int) bool { return events[i].a < events[j].a })
	count := base + countAtZero
	lo := 0.0
	flush := func(hi float64, rank int) {
		if rank <= k && hi-lo > 1e-12 {
			res.Regions = append(res.Regions, interval1D(lo, hi, rank))
		}
	}
	for _, ev := range events {
		flush(ev.a, count+1)
		lo = ev.a
		count += ev.delta
	}
	flush(1.0, count+1)
	res.Stats.Regions = len(res.Regions)
	return res, nil
}

// interval1D builds a 1-d transformed-space region [lo, hi].
func interval1D(lo, hi float64, rank int) core.Region {
	return core.Region{
		Constraints: []geom.Constraint{
			{A: geom.Vector{-1}, B: -lo, Strict: true},
			{A: geom.Vector{1}, B: hi, Strict: true},
		},
		Vertices:  []geom.Vector{{lo}, {hi}},
		Witness:   geom.Vector{(lo + hi) / 2},
		Rank:      rank,
		RankExact: true,
		Volume:    hi - lo,
	}
}
