package baseline

import (
	"container/heap"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/lp"
	"repro/internal/polytope"
)

// IMaxRankOptions tunes the reconstruction of the maximum-rank baseline.
type IMaxRankOptions struct {
	// MaxCrossing is the quad-tree subdivision threshold: leaves are split
	// while more hyperplanes than this cut through them (and MaxDepth
	// allows).
	MaxCrossing int
	// MaxDepth caps quad-tree depth.
	MaxDepth int
}

// DefaultIMaxRankOptions mirror a reasonable configuration of [23].
func DefaultIMaxRankOptions() IMaxRankOptions {
	return IMaxRankOptions{MaxCrossing: 8, MaxDepth: 10}
}

// IMaxRank answers kSPR through the incremental maximum-rank machinery of
// Mouratidis et al. [23], reconstructed from its description: the
// (transformed) preference space is partitioned by a quad-tree; each leaf
// tracks the positive halfspaces that fully cover it and the hyperplanes
// that cut through it; leaves are processed in increasing covered-count
// order; inside a leaf, cells are materialized by EXACT halfspace
// intersection (the expensive geometric work that makes this baseline
// slow), and cells are reported for ranks k*, k*+1, ..., k.
//
// It exists as a correctness cross-check and as the Fig. 10(b) competitor;
// expect it to scale poorly by design.
func IMaxRank(records []geom.Vector, focal geom.Vector, focalID, k int, opts IMaxRankOptions) (*core.Result, error) {
	d := len(focal)
	if d < 2 {
		return nil, fmt.Errorf("baseline: iMaxRank needs at least 2 dimensions")
	}
	if k <= 0 {
		return nil, fmt.Errorf("baseline: k must be positive, got %d", k)
	}
	if opts.MaxCrossing <= 0 {
		opts.MaxCrossing = 8
	}
	if opts.MaxDepth <= 0 {
		opts.MaxDepth = 10
	}
	dim := d - 1
	res := &core.Result{Focal: focal.Clone(), K: k, Space: core.Transformed}

	base := 0
	var planes []geom.Hyperplane
	for id, rec := range records {
		if id == focalID {
			continue
		}
		switch geom.Compare(rec, focal) {
		case geom.DomFirst:
			base++
			continue
		case geom.DomSecond, geom.DomEqual:
			continue
		}
		h := geom.NewHyperplaneTransformed(id, rec, focal)
		if h.Kind == geom.Proper {
			planes = append(planes, h)
		}
	}
	res.Stats.BaseRank = base
	res.Stats.ProcessedRecords = len(planes)
	if base >= k {
		return res, nil
	}
	budget := k - base // positive-halfspace budget inside the quad-tree

	// Build the quad-tree over [0,1]^dim; boxes fully outside the simplex
	// are discarded.
	root := &qnode{lo: make(geom.Vector, dim), hi: ones(dim)}
	for i := range planes {
		root.crossing = append(root.crossing, i)
	}
	leaves := &qleafHeap{}
	var build func(n *qnode, depth int)
	build = func(n *qnode, depth int) {
		if n.coverPos >= budget {
			return // every cell inside already has rank > k
		}
		if len(n.crossing) <= opts.MaxCrossing || depth >= opts.MaxDepth {
			heap.Push(leaves, n)
			return
		}
		for _, child := range n.subdivide(planes) {
			build(child, depth+1)
		}
	}
	build(root, 0)

	// Process leaves in increasing covered-count order (the [23] strategy);
	// each leaf materializes its local arrangement with exact geometry.
	var lpStats lp.Stats
	for leaves.Len() > 0 {
		n := heap.Pop(leaves).(*qnode)
		if n.coverPos >= budget {
			continue
		}
		if err := processLeaf(n, planes, dim, base, k, res, &lpStats); err != nil {
			return nil, err
		}
	}
	res.Stats.LPSolves = lpStats.Solves
	res.Stats.LPPivots = lpStats.Pivots
	res.Stats.Regions = len(res.Regions)
	return res, nil
}

// qnode is a quad-tree node over the transformed preference space.
type qnode struct {
	lo, hi   geom.Vector
	coverPos int   // positive halfspaces fully covering the box
	crossing []int // indices into planes of hyperplanes cutting the box
}

func ones(dim int) geom.Vector {
	v := make(geom.Vector, dim)
	for i := range v {
		v[i] = 1
	}
	return v
}

// subdivide splits the box into 2^dim children and classifies the parent's
// crossing hyperplanes against each child by corner evaluation. Children
// fully outside the simplex (Σw >= 1 at the low corner) are dropped.
func (n *qnode) subdivide(planes []geom.Hyperplane) []*qnode {
	dim := len(n.lo)
	var out []*qnode
	for mask := 0; mask < 1<<dim; mask++ {
		lo := make(geom.Vector, dim)
		hi := make(geom.Vector, dim)
		for j := 0; j < dim; j++ {
			mid := (n.lo[j] + n.hi[j]) / 2
			if mask&(1<<j) != 0 {
				lo[j], hi[j] = mid, n.hi[j]
			} else {
				lo[j], hi[j] = n.lo[j], mid
			}
		}
		if lo.Sum() >= 1 {
			continue // entirely outside the simplex
		}
		child := &qnode{lo: lo, hi: hi, coverPos: n.coverPos}
		for _, pi := range n.crossing {
			switch classifyBox(planes[pi], lo, hi) {
			case geom.Positive:
				child.coverPos++
			case geom.Negative:
				// negative cover: irrelevant to the count
			default:
				child.crossing = append(child.crossing, pi)
			}
		}
		out = append(out, child)
	}
	return out
}

// classifyBox evaluates h on all corners of the box: all positive -> the
// positive halfspace covers it, all negative -> the negative does, else it
// crosses.
func classifyBox(h geom.Hyperplane, lo, hi geom.Vector) geom.Sign {
	dim := len(lo)
	minV, maxV := math.Inf(1), math.Inf(-1)
	for mask := 0; mask < 1<<dim; mask++ {
		v := -h.RHS
		for j := 0; j < dim; j++ {
			if mask&(1<<j) != 0 {
				v += h.Coef[j] * hi[j]
			} else {
				v += h.Coef[j] * lo[j]
			}
		}
		minV = math.Min(minV, v)
		maxV = math.Max(maxV, v)
	}
	switch {
	case minV > 0:
		return geom.Positive
	case maxV < 0:
		return geom.Negative
	default:
		return 0
	}
}

// qleafHeap orders leaves by ascending coverPos.
type qleafHeap []*qnode

func (h qleafHeap) Len() int            { return len(h) }
func (h qleafHeap) Less(i, j int) bool  { return h[i].coverPos < h[j].coverPos }
func (h qleafHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *qleafHeap) Push(x interface{}) { *h = append(*h, x.(*qnode)) }
func (h *qleafHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// localCell is a cell of the in-leaf arrangement.
type localCell struct {
	cons []geom.Constraint
	pos  int // positive halfspaces among the leaf's crossing planes
}

// processLeaf materializes the arrangement of the leaf's crossing
// hyperplanes with exact halfspace-intersection feasibility and reports
// cells whose total rank stays within k.
func processLeaf(n *qnode, planes []geom.Hyperplane, dim, base, k int, res *core.Result, lpStats *lp.Stats) error {
	// Leaf box constraints plus the simplex boundary.
	boxCons := geom.SpaceBoundsTransformed(dim)
	for j := 0; j < dim; j++ {
		loRow := make(geom.Vector, dim)
		loRow[j] = -1
		boxCons = append(boxCons, geom.Constraint{A: loRow, B: -n.lo[j]})
		hiRow := make(geom.Vector, dim)
		hiRow[j] = 1
		boxCons = append(boxCons, geom.Constraint{A: hiRow, B: n.hi[j]})
	}
	cells := []localCell{{cons: boxCons, pos: 0}}
	budget := k - base - n.coverPos
	for _, pi := range n.crossing {
		h := planes[pi]
		next := cells[:0:0]
		for _, c := range cells {
			for _, sign := range []geom.Sign{geom.Negative, geom.Positive} {
				pos := c.pos
				if sign == geom.Positive {
					pos++
					if 1+pos > budget {
						continue // cell would exceed rank k everywhere
					}
				}
				cons := append(append([]geom.Constraint(nil), c.cons...),
					geom.Halfspace{H: h, Sign: sign}.AsConstraint())
				// Exact geometric feasibility — deliberately the expensive
				// path, as in [23].
				ok, err := polytope.FeasibleByVertexEnum(cons, dim, lpStats)
				if err != nil {
					return err
				}
				if !ok {
					continue
				}
				next = append(next, localCell{cons: cons, pos: pos})
			}
		}
		cells = next
	}
	for _, c := range cells {
		rank := 1 + base + n.coverPos + c.pos
		if rank > k {
			continue
		}
		poly, err := polytope.FromConstraints(c.cons, dim, lpStats)
		if err != nil {
			return err
		}
		if poly.Empty() {
			continue
		}
		res.Regions = append(res.Regions, core.Region{
			Constraints: c.cons,
			Vertices:    poly.Vertices,
			Witness:     poly.Centroid(),
			Rank:        rank,
			RankExact:   true,
		})
	}
	return nil
}
