package lp

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

// sanitize maps arbitrary floats into a small, well-conditioned range.
func sanitize(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0.3
	}
	return math.Mod(math.Abs(x), 2) - 1 // [-1, 1)
}

// Property: when Maximize reports Optimal, the returned point satisfies
// every constraint and is non-negative.
func TestQuickOptimalPointIsFeasible(t *testing.T) {
	f := func(rawA [][2]float64, rawB []float64, rawC [2]float64) bool {
		m := len(rawA)
		if len(rawB) < m {
			m = len(rawB)
		}
		if m == 0 {
			return true
		}
		a := make([][]float64, m)
		b := make([]float64, m)
		for i := 0; i < m; i++ {
			a[i] = []float64{sanitize(rawA[i][0]), sanitize(rawA[i][1])}
			b[i] = sanitize(rawB[i])
		}
		// Box rows keep the LP bounded.
		a = append(a, []float64{1, 0}, []float64{0, 1})
		b = append(b, 5, 5)
		c := []float64{sanitize(rawC[0]), sanitize(rawC[1])}
		sol, err := Maximize(c, a, b, nil)
		if err != nil {
			return false
		}
		if sol.Status != Optimal {
			return true // infeasible/unbounded is legitimate
		}
		for j := range sol.X {
			if sol.X[j] < -1e-7 {
				return false
			}
		}
		for i := range a {
			s := 0.0
			for j := range sol.X {
				s += a[i][j] * sol.X[j]
			}
			if s > b[i]+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: the objective at the reported optimum is at least the objective
// at any feasible corner candidate we can easily construct (the origin,
// when feasible).
func TestQuickOriginLowerBound(t *testing.T) {
	f := func(rawA [][2]float64, rawB []float64, rawC [2]float64) bool {
		m := len(rawA)
		if len(rawB) < m {
			m = len(rawB)
		}
		if m == 0 {
			return true
		}
		a := make([][]float64, m)
		b := make([]float64, m)
		originFeasible := true
		for i := 0; i < m; i++ {
			a[i] = []float64{sanitize(rawA[i][0]), sanitize(rawA[i][1])}
			b[i] = sanitize(rawB[i])
			if b[i] < 0 {
				originFeasible = false
			}
		}
		a = append(a, []float64{1, 0}, []float64{0, 1})
		b = append(b, 5, 5)
		c := []float64{sanitize(rawC[0]), sanitize(rawC[1])}
		sol, err := Maximize(c, a, b, nil)
		if err != nil {
			return false
		}
		if !originFeasible {
			return true
		}
		// Origin is feasible with objective 0, so the LP cannot be
		// infeasible and its optimum cannot be below 0.
		return sol.Status == Optimal && sol.Objective >= -1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: FeasibleInterior is monotone — adding constraints never turns
// an infeasible open cell feasible.
func TestQuickFeasibilityMonotone(t *testing.T) {
	f := func(rawRows [][2]float64, rawB []float64) bool {
		m := len(rawRows)
		if len(rawB) < m {
			m = len(rawB)
		}
		cons := geom.SpaceBoundsTransformed(2)
		feasible := make([]bool, 0, m+1)
		in, err := FeasibleInterior(cons, 2, nil)
		if err != nil {
			return false
		}
		feasible = append(feasible, in.Feasible)
		for i := 0; i < m; i++ {
			a := geom.Vector{sanitize(rawRows[i][0]), sanitize(rawRows[i][1])}
			n := a.Norm()
			if n < 1e-9 {
				continue
			}
			a[0] /= n
			a[1] /= n
			cons = append(cons, geom.Constraint{A: a, B: sanitize(rawB[i]), Strict: true})
			in, err := FeasibleInterior(cons, 2, nil)
			if err != nil {
				return false
			}
			feasible = append(feasible, in.Feasible)
		}
		for i := 1; i < len(feasible); i++ {
			if feasible[i] && !feasible[i-1] {
				return false // regained feasibility after losing it
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
