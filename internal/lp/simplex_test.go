package lp

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func solveMax(t *testing.T, c []float64, a [][]float64, b []float64) Solution {
	t.Helper()
	sol, err := Maximize(c, a, b, nil)
	if err != nil {
		t.Fatalf("Maximize: %v", err)
	}
	return sol
}

func TestMaximizeSimple2D(t *testing.T) {
	// max x+y s.t. x<=2, y<=3, x+y<=4 -> 4 at e.g. (1,3) or (2,2).
	sol := solveMax(t, []float64{1, 1},
		[][]float64{{1, 0}, {0, 1}, {1, 1}},
		[]float64{2, 3, 4})
	if sol.Status != Optimal || math.Abs(sol.Objective-4) > 1e-9 {
		t.Fatalf("got %+v, want objective 4", sol)
	}
}

func TestMaximizeClassic(t *testing.T) {
	// max 3x+5y s.t. x<=4, 2y<=12, 3x+2y<=18 -> 36 at (2,6).
	sol := solveMax(t, []float64{3, 5},
		[][]float64{{1, 0}, {0, 2}, {3, 2}},
		[]float64{4, 12, 18})
	if math.Abs(sol.Objective-36) > 1e-9 {
		t.Fatalf("objective %v, want 36", sol.Objective)
	}
	if math.Abs(sol.X[0]-2) > 1e-9 || math.Abs(sol.X[1]-6) > 1e-9 {
		t.Fatalf("X = %v, want (2, 6)", sol.X)
	}
}

func TestInfeasible(t *testing.T) {
	// x <= 1 and -x <= -2 (i.e. x >= 2): infeasible.
	sol := solveMax(t, []float64{1},
		[][]float64{{1}, {-1}},
		[]float64{1, -2})
	if sol.Status != Infeasible {
		t.Fatalf("status %v, want Infeasible", sol.Status)
	}
}

func TestUnbounded(t *testing.T) {
	// max x with only x >= 1 (as -x <= -1): unbounded above.
	sol := solveMax(t, []float64{1},
		[][]float64{{-1}},
		[]float64{-1})
	if sol.Status != Unbounded {
		t.Fatalf("status %v, want Unbounded", sol.Status)
	}
}

func TestNegativeRHSFeasible(t *testing.T) {
	// x >= 1, x <= 3, max -x -> optimum -1 at x=1 (needs phase 1).
	sol, err := Maximize([]float64{-1},
		[][]float64{{-1}, {1}},
		[]float64{-1, 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || math.Abs(sol.Objective+1) > 1e-9 {
		t.Fatalf("got %+v, want objective -1", sol)
	}
}

func TestMinimize(t *testing.T) {
	// min x+y s.t. x+y >= 2 (as -x-y <= -2), x,y >= 0 -> 2.
	sol, err := Minimize([]float64{1, 1},
		[][]float64{{-1, -1}},
		[]float64{-2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || math.Abs(sol.Objective-2) > 1e-9 {
		t.Fatalf("got %+v, want objective 2", sol)
	}
}

func TestDegenerateRedundantRows(t *testing.T) {
	// Duplicate and redundant constraints should not break the solver.
	sol := solveMax(t, []float64{1, 1},
		[][]float64{{1, 1}, {1, 1}, {1, 1}, {1, 0}},
		[]float64{1, 1, 1, 5})
	if sol.Status != Optimal || math.Abs(sol.Objective-1) > 1e-9 {
		t.Fatalf("got %+v, want objective 1", sol)
	}
}

func TestEqualityViaTwoInequalities(t *testing.T) {
	// x + y = 1 expressed as <= and >=; max 2x + y -> 2 at (1, 0).
	sol := solveMax(t, []float64{2, 1},
		[][]float64{{1, 1}, {-1, -1}},
		[]float64{1, -1})
	if sol.Status != Optimal || math.Abs(sol.Objective-2) > 1e-9 {
		t.Fatalf("got %+v, want objective 2", sol)
	}
}

func TestRowLengthValidation(t *testing.T) {
	if _, err := Maximize([]float64{1}, [][]float64{{1, 2}}, []float64{1}, nil); err == nil {
		t.Fatal("expected error for ragged row")
	}
	if _, err := Maximize([]float64{1}, [][]float64{{1}}, []float64{1, 2}, nil); err == nil {
		t.Fatal("expected error for RHS length mismatch")
	}
}

func TestStatsCounting(t *testing.T) {
	var st Stats
	solveMaxWithStats(t, &st)
	if st.Solves != 1 {
		t.Fatalf("Solves = %d, want 1", st.Solves)
	}
	if st.Pivots == 0 {
		t.Fatal("expected at least one pivot")
	}
}

func solveMaxWithStats(t *testing.T, st *Stats) {
	t.Helper()
	if _, err := Maximize([]float64{1, 1},
		[][]float64{{1, 0}, {0, 1}}, []float64{1, 1}, st); err != nil {
		t.Fatal(err)
	}
}

// bruteForceMax evaluates the LP max c·x over Ax<=b, x>=0 by enumerating
// basic feasible points: intersections of every n-subset of the constraint
// set (including the axes x_i = 0). Used as an oracle for random LPs.
func bruteForceMax(c []float64, a [][]float64, b []float64) (float64, bool) {
	n := len(c)
	// Build the full row set: Ax <= b plus -x_i <= 0.
	rows := make([][]float64, 0, len(a)+n)
	rhs := make([]float64, 0, len(a)+n)
	rows = append(rows, a...)
	rhs = append(rhs, b...)
	for i := 0; i < n; i++ {
		r := make([]float64, n)
		r[i] = -1
		rows = append(rows, r)
		rhs = append(rhs, 0)
	}
	best := math.Inf(-1)
	found := false
	idx := make([]int, n)
	var rec func(start, k int)
	rec = func(start, k int) {
		if k == n {
			x, ok := solveSquare(rows, rhs, idx)
			if !ok {
				return
			}
			for i := range rows {
				s := 0.0
				for j := 0; j < n; j++ {
					s += rows[i][j] * x[j]
				}
				if s > rhs[i]+1e-7 {
					return
				}
			}
			v := 0.0
			for j := 0; j < n; j++ {
				v += c[j] * x[j]
			}
			if v > best {
				best = v
			}
			found = true
			return
		}
		for i := start; i < len(rows); i++ {
			idx[k] = i
			rec(i+1, k+1)
		}
	}
	rec(0, 0)
	return best, found
}

// solveSquare solves the n x n system rows[idx] · x = rhs[idx] by Gaussian
// elimination; ok=false when singular.
func solveSquare(rows [][]float64, rhs []float64, idx []int) ([]float64, bool) {
	n := len(idx)
	m := make([][]float64, n)
	for i, ri := range idx {
		m[i] = make([]float64, n+1)
		copy(m[i], rows[ri][:n])
		m[i][n] = rhs[ri]
	}
	for col := 0; col < n; col++ {
		p := -1
		maxAbs := 1e-9
		for r := col; r < n; r++ {
			if v := math.Abs(m[r][col]); v > maxAbs {
				p, maxAbs = r, v
			}
		}
		if p < 0 {
			return nil, false
		}
		m[col], m[p] = m[p], m[col]
		pv := m[col][col]
		for j := col; j <= n; j++ {
			m[col][j] /= pv
		}
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := m[r][col]
			if f == 0 {
				continue
			}
			for j := col; j <= n; j++ {
				m[r][j] -= f * m[col][j]
			}
		}
	}
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = m[i][n]
	}
	return x, true
}

// Property test: on random bounded LPs, simplex matches the brute-force
// vertex-enumeration oracle.
func TestRandomLPsAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(3)
		m := 1 + rng.Intn(5)
		c := make([]float64, n)
		for j := range c {
			c[j] = rng.NormFloat64()
		}
		a := make([][]float64, m)
		b := make([]float64, m)
		for i := range a {
			a[i] = make([]float64, n)
			for j := range a[i] {
				a[i][j] = rng.NormFloat64()
			}
			b[i] = rng.NormFloat64()
		}
		// Box constraints keep the problem bounded so the oracle applies.
		for j := 0; j < n; j++ {
			row := make([]float64, n)
			row[j] = 1
			a = append(a, row)
			b = append(b, 10)
		}
		sol, err := Maximize(c, a, b, nil)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want, feasible := bruteForceMax(c, a, b)
		if !feasible {
			if sol.Status != Infeasible {
				t.Fatalf("trial %d: oracle infeasible, simplex says %v", trial, sol.Status)
			}
			continue
		}
		if sol.Status != Optimal {
			t.Fatalf("trial %d: oracle feasible (max %v), simplex says %v", trial, want, sol.Status)
		}
		if math.Abs(sol.Objective-want) > 1e-5*(1+math.Abs(want)) {
			t.Fatalf("trial %d: simplex %v, oracle %v", trial, sol.Objective, want)
		}
	}
}

func TestFeasibleInteriorBasic(t *testing.T) {
	// The 2-d transformed simplex is open and non-empty.
	cons := geom.SpaceBoundsTransformed(2)
	in, err := FeasibleInterior(cons, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !in.Feasible {
		t.Fatal("open simplex reported infeasible")
	}
	if !geom.InSimplex(in.Point) {
		t.Fatalf("witness %v not strictly interior", in.Point)
	}
	if in.Slack <= 0 {
		t.Fatalf("slack %v, want > 0", in.Slack)
	}
}

func TestFeasibleInteriorZeroExtent(t *testing.T) {
	// w1 < 0.5 and w1 > 0.5: empty. w1 < 0.5 and w1 >= 0.5 via touching
	// closed halves would have zero extent; both must be infeasible.
	cons := append(geom.SpaceBoundsTransformed(2),
		geom.Constraint{A: geom.Vector{1, 0}, B: 0.5, Strict: true},
		geom.Constraint{A: geom.Vector{-1, 0}, B: -0.5, Strict: true},
	)
	in, err := FeasibleInterior(cons, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if in.Feasible {
		t.Fatal("zero-extent cell reported feasible")
	}
}

func TestFeasibleInteriorWitnessSatisfiesAll(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 200; trial++ {
		dim := 1 + rng.Intn(4)
		cons := geom.SpaceBoundsTransformed(dim)
		// Add a few random halfspace constraints through the simplex.
		for i := 0; i < rng.Intn(6); i++ {
			a := make(geom.Vector, dim)
			for j := range a {
				a[j] = rng.NormFloat64()
			}
			n := a.Norm()
			if n < 1e-9 {
				continue
			}
			for j := range a {
				a[j] /= n
			}
			cons = append(cons, geom.Constraint{A: a, B: rng.Float64() - 0.2, Strict: true})
		}
		in, err := FeasibleInterior(cons, dim, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !in.Feasible {
			continue
		}
		for _, c := range cons {
			if !c.Holds(in.Point, 1e-9) {
				t.Fatalf("witness %v violates %+v", in.Point, c)
			}
		}
	}
}

func TestBoundMinMax(t *testing.T) {
	cons := geom.SpaceBoundsTransformed(2)
	// max w1 over the closed simplex = 1; min = 0.
	maxV, _, st, err := Bound(cons, geom.Vector{1, 0}, true, nil)
	if err != nil || st != Optimal {
		t.Fatalf("max: err=%v status=%v", err, st)
	}
	if math.Abs(maxV-1) > 1e-9 {
		t.Fatalf("max w1 = %v, want 1", maxV)
	}
	minV, _, st, err := Bound(cons, geom.Vector{1, 0}, false, nil)
	if err != nil || st != Optimal {
		t.Fatalf("min: err=%v status=%v", err, st)
	}
	if math.Abs(minV) > 1e-9 {
		t.Fatalf("min w1 = %v, want 0", minV)
	}
}

func TestBoundObjectiveWithNegativeCoefficients(t *testing.T) {
	cons := geom.SpaceBoundsTransformed(2)
	// min (w1 - w2) over closed simplex = -1 (at w2=1).
	v, x, st, err := Bound(cons, geom.Vector{1, -1}, false, nil)
	if err != nil || st != Optimal {
		t.Fatalf("err=%v status=%v", err, st)
	}
	if math.Abs(v+1) > 1e-9 {
		t.Fatalf("min (w1-w2) = %v at %v, want -1", v, x)
	}
}

func TestStatusString(t *testing.T) {
	if Optimal.String() != "optimal" || Infeasible.String() != "infeasible" ||
		Unbounded.String() != "unbounded" {
		t.Fatal("Status.String is broken")
	}
	if Status(42).String() == "" {
		t.Fatal("unknown status should still format")
	}
}
