package lp

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func randomCell(rng *rand.Rand, dim, extra int) []geom.Constraint {
	cons := geom.SpaceBoundsTransformed(dim)
	for i := 0; i < extra; i++ {
		a := make(geom.Vector, dim)
		for j := range a {
			a[j] = rng.NormFloat64()
		}
		n := a.Norm()
		if n < 1e-9 {
			continue
		}
		for j := range a {
			a[j] /= n
		}
		cons = append(cons, geom.Constraint{A: a, B: rng.Float64() * 0.6, Strict: true})
	}
	return cons
}

func benchFeasibility(b *testing.B, dim, rows int) {
	rng := rand.New(rand.NewSource(1))
	cons := randomCell(rng, dim, rows)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FeasibleInterior(cons, dim, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFeasibility_d3_rows10(b *testing.B)  { benchFeasibility(b, 3, 10) }
func BenchmarkFeasibility_d3_rows50(b *testing.B)  { benchFeasibility(b, 3, 50) }
func BenchmarkFeasibility_d6_rows50(b *testing.B)  { benchFeasibility(b, 6, 50) }
func BenchmarkFeasibility_d3_rows200(b *testing.B) { benchFeasibility(b, 3, 200) }

func BenchmarkScoreBound_d3_rows30(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	cons := randomCell(rng, 3, 30)
	obj := geom.Vector{0.3, -0.2, 0.5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := Bound(cons, obj, true, nil); err != nil {
			b.Fatal(err)
		}
	}
}
