// Package lp implements a dense two-phase simplex solver for the small
// linear programs kSPR processing generates: cell feasibility tests, score
// bounds, and min/max weight vectors. It plays the role lp_solve plays in
// the paper (§4.2, §6).
//
// The solver handles problems of the form
//
//	maximize  c·x
//	subject to A·x <= b   (b may be negative)
//	           x >= 0
//
// which covers every LP in the paper because preference-space weights are
// non-negative by definition. Strict inequalities are handled one level up
// (FeasibleInterior) by maximizing a shared slack.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Status is the outcome of a solve.
type Status int

const (
	// Optimal means an optimal bounded solution was found.
	Optimal Status = iota
	// Infeasible means the constraint set is empty.
	Infeasible
	// Unbounded means the objective can grow without limit.
	Unbounded
)

// String names the solve outcome ("optimal", "infeasible", "unbounded").
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// Solution reports the result of a solve.
type Solution struct {
	Status    Status
	X         []float64
	Objective float64
}

const (
	pivotTol = 1e-9
	costTol  = 1e-9
	// feasTol is how much artificial residue phase 1 may leave behind and
	// still call the problem feasible.
	feasTol = 1e-7
	// blandAfter switches to Bland's anti-cycling rule after this many
	// Dantzig iterations.
	blandAfter = 2000
	maxIters   = 20000
)

// ErrIterationLimit is returned when the simplex fails to converge; with
// Bland's rule this indicates severe numerical trouble rather than cycling.
var ErrIterationLimit = errors.New("lp: iteration limit exceeded")

// Stats counts solver activity for instrumentation (e.g. the paper's
// "number of LP calls" side metrics). Counters are not goroutine-safe;
// each query (and, under the parallel engine, each worker) runs its own
// Stats and merges with Add.
type Stats struct {
	// Solves is the number of LPs solved; Pivots the total simplex pivots.
	Solves int
	Pivots int
}

// Add accumulates o into s. The parallel expansion engine uses it to merge
// per-worker solver counters back into a query's totals; addition commutes,
// so the merged totals match a serial run exactly.
func (s *Stats) Add(o Stats) {
	s.Solves += o.Solves
	s.Pivots += o.Pivots
}

// tableau is a dense simplex tableau.
type tableau struct {
	rows  [][]float64 // m x (cols+1); last column is RHS
	cost  []float64   // reduced cost row, length cols+1 (last = -objective)
	basis []int       // basis[i] = variable index basic in row i
	m     int
	cols  int
	nArt  int // number of artificial variables (occupy the last nArt cols)
	// unbounded is set by iterate when a pivot column has no leaving row.
	unbounded bool
}

// Maximize solves max c·x s.t. A·x <= b, x >= 0. It builds a throwaway
// workspace; hot paths that solve many LPs should hold a Solver instead.
func Maximize(c []float64, a [][]float64, b []float64, stats *Stats) (Solution, error) {
	s := Solver{stats: stats}
	return s.Maximize(c, a, b)
}

// Minimize solves min c·x s.t. A·x <= b, x >= 0.
func Minimize(c []float64, a [][]float64, b []float64, stats *Stats) (Solution, error) {
	s := Solver{stats: stats}
	return s.Minimize(c, a, b)
}

// priceOut makes the cost row consistent with the current basis by
// subtracting multiples of basic rows so reduced costs of basic variables
// are zero.
func (t *tableau) priceOut() {
	for i, bi := range t.basis {
		cb := t.cost[bi]
		if cb == 0 {
			continue
		}
		row := t.rows[i]
		for j := 0; j <= t.cols; j++ {
			t.cost[j] -= cb * row[j]
		}
		t.cost[bi] = 0 // exact
	}
}

// iterate runs simplex pivots until optimality (all reduced costs >= 0 for
// the minimization row), unboundedness, or the iteration cap.
func (t *tableau) iterate(stats *Stats) error {
	t.unbounded = false
	for iter := 0; iter < maxIters; iter++ {
		bland := iter > blandAfter
		col := t.chooseColumn(bland)
		if col < 0 {
			return nil // optimal
		}
		row := t.chooseRow(col, bland)
		if row < 0 {
			t.unbounded = true
			return nil
		}
		t.pivot(row, col)
		if stats != nil {
			stats.Pivots++
		}
	}
	return ErrIterationLimit
}

func (t *tableau) chooseColumn(bland bool) int {
	nFree := t.cols - t.nArt // artificials may never re-enter
	if bland {
		for j := 0; j < nFree; j++ {
			if t.cost[j] < -costTol {
				return j
			}
		}
		return -1
	}
	best, bestVal := -1, -costTol
	for j := 0; j < nFree; j++ {
		if t.cost[j] < bestVal {
			best, bestVal = j, t.cost[j]
		}
	}
	return best
}

func (t *tableau) chooseRow(col int, bland bool) int {
	best := -1
	bestRatio := math.Inf(1)
	for i := 0; i < t.m; i++ {
		aij := t.rows[i][col]
		if aij <= pivotTol {
			continue
		}
		ratio := t.rows[i][t.cols] / aij
		if ratio < bestRatio-pivotTol {
			best, bestRatio = i, ratio
		} else if ratio < bestRatio+pivotTol && best >= 0 {
			// Tie: prefer the smaller basis index (Bland) to avoid cycling,
			// or when not in Bland mode, the larger pivot for stability.
			if bland {
				if t.basis[i] < t.basis[best] {
					best, bestRatio = i, ratio
				}
			} else if aij > t.rows[best][col] {
				best, bestRatio = i, ratio
			}
		}
	}
	return best
}

func (t *tableau) pivot(r, c int) {
	row := t.rows[r]
	p := row[c]
	inv := 1 / p
	for j := 0; j <= t.cols; j++ {
		row[j] *= inv
	}
	row[c] = 1
	for i := 0; i < t.m; i++ {
		if i == r {
			continue
		}
		f := t.rows[i][c]
		if f == 0 {
			continue
		}
		ri := t.rows[i]
		for j := 0; j <= t.cols; j++ {
			ri[j] -= f * row[j]
		}
		ri[c] = 0
	}
	f := t.cost[c]
	if f != 0 {
		for j := 0; j <= t.cols; j++ {
			t.cost[j] -= f * row[j]
		}
		t.cost[c] = 0
	}
	t.basis[r] = c
}

// evictArtificials removes artificial variables from the basis at the end
// of phase 1 by pivoting them out where possible; rows where that is not
// possible are redundant and left in place (their artificial stays at zero
// and is frozen out of phase 2 by chooseColumn).
func (t *tableau) evictArtificials(n, m int) error {
	for i := 0; i < t.m; i++ {
		if t.basis[i] < n+m {
			continue // not artificial
		}
		row := t.rows[i]
		pivotCol := -1
		for j := 0; j < n+m; j++ {
			if math.Abs(row[j]) > feasTol {
				pivotCol = j
				break
			}
		}
		if pivotCol >= 0 {
			t.pivot(i, pivotCol)
		}
	}
	return nil
}
