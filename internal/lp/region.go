package lp

import (
	"repro/internal/geom"
)

// InteriorEps is the minimum slack for a cell to count as having non-zero
// extent. Constraint rows are unit-normalized, so the slack is a genuine
// Euclidean margin: a feasible cell contains a ball of radius >= InteriorEps.
const InteriorEps = 1e-7

// Interior is the result of a feasibility test on an open cell.
type Interior struct {
	// Feasible is true when the open intersection of the constraints is
	// non-empty (it contains a ball of radius Slack).
	Feasible bool
	// Point is a deep-interior witness (the Chebyshev-style center found by
	// the max-slack LP); valid only when Feasible.
	Point geom.Vector
	// Slack is the maximal uniform margin achieved.
	Slack float64
}

// FeasibleInterior decides whether the OPEN region defined by cons (rows
// a·w <= b, with Strict rows meaning a·w < b) has non-empty interior, by
// solving
//
//	maximize t  s.t.  a_i·w + t <= b_i (strict rows), a_i·w <= b_i (others),
//	                  w >= 0, t >= 0.
//
// Because rows are unit-normalized, t is a Euclidean inradius lower bound;
// cells of zero extent (faces, single points) come back infeasible, which is
// exactly the paper's notion of an infeasible cell (§4.2). The maximizing w
// doubles as the cached interior point of §4.3.2.
func FeasibleInterior(cons []geom.Constraint, dim int, stats *Stats) (Interior, error) {
	s := Solver{stats: stats}
	return s.FeasibleInterior(cons, dim)
}

// Bound optimizes a linear objective over the CLOSURE of the region defined
// by cons (infima/suprema over an open cell equal those over its closure).
// It returns the optimum value and an optimizing point.
//
// maximize=true computes sup obj·w, otherwise inf obj·w. The caller adds
// any constant term itself (e.g. the p_d term of a transformed score).
func Bound(cons []geom.Constraint, obj geom.Vector, maximize bool, stats *Stats) (float64, geom.Vector, Status, error) {
	s := Solver{stats: stats}
	return s.Bound(cons, obj, maximize)
}
