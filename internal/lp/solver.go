package lp

import (
	"fmt"

	"repro/internal/geom"
)

// Solver is a reusable simplex workspace: the tableau rows, cost row, basis
// and constraint-matrix scratch survive across solves, so the per-LP
// allocation cost is paid once per worker instead of once per call. The
// parallel expansion engine in internal/core hands every worker goroutine
// its own Solver (its per-worker "arena"), and the batch engine keeps one
// Solver per scheduler slot alive across all the queries that slot runs,
// rebinding its accounting with SetStats per query; the package-level
// Maximize, Minimize, FeasibleInterior and Bound helpers remain as
// one-shot conveniences that build a throwaway workspace.
//
// A Solver is NOT safe for concurrent use: create one per goroutine.
type Solver struct {
	stats *Stats
	tab   tableau
	// backing arenas, grown on demand and reused across solves
	rowData []float64
	rows    [][]float64
	cost    []float64
	basis   []int
	// constraint-matrix scratch for FeasibleInterior
	aData []float64
	aRows [][]float64
	bRow  []float64
	obj   []float64
	// objective-negation scratch for Minimize
	negObj []float64
}

// NewSolver returns a Solver counting its activity into stats; a nil stats
// disables accounting. Rebind later with SetStats.
func NewSolver(stats *Stats) *Solver { return &Solver{stats: stats} }

// SetStats redirects the solver's activity counters, e.g. when a reused
// solver is handed to a new query or worker.
func (s *Solver) SetStats(stats *Stats) { s.stats = stats }

// prep (re)initializes the embedded tableau for an m-row, cols-column
// problem, reusing the solver's backing arrays. All rows and the cost row
// come back zeroed.
func (s *Solver) prep(m, cols, nArt int) *tableau {
	t := &s.tab
	t.m, t.cols, t.nArt, t.unbounded = m, cols, nArt, false
	need := m * (cols + 1)
	if cap(s.rowData) < need {
		s.rowData = make([]float64, need)
	}
	data := s.rowData[:need]
	for i := range data {
		data[i] = 0
	}
	if cap(s.rows) < m {
		s.rows = make([][]float64, m)
	}
	t.rows = s.rows[:m]
	for i := 0; i < m; i++ {
		t.rows[i] = data[i*(cols+1) : (i+1)*(cols+1)]
	}
	if cap(s.basis) < m {
		s.basis = make([]int, m)
	}
	t.basis = s.basis[:m]
	t.cost = s.zeroCost(cols)
	return t
}

// zeroCost returns the reused cost row of length cols+1, zeroed.
func (s *Solver) zeroCost(cols int) []float64 {
	if cap(s.cost) < cols+1 {
		s.cost = make([]float64, cols+1)
	}
	c := s.cost[:cols+1]
	for i := range c {
		c[i] = 0
	}
	return c
}

// Maximize solves max c·x s.t. A·x <= b, x >= 0, like the package-level
// Maximize but reusing the solver's workspace.
func (s *Solver) Maximize(c []float64, a [][]float64, b []float64) (Solution, error) {
	if s.stats != nil {
		s.stats.Solves++
	}
	m := len(a)
	n := len(c)
	for i, row := range a {
		if len(row) != n {
			return Solution{}, fmt.Errorf("lp: row %d has %d coefficients, want %d", i, len(row), n)
		}
	}
	if len(b) != m {
		return Solution{}, fmt.Errorf("lp: %d rows but %d right-hand sides", m, len(b))
	}

	// Count artificials: one per negative-RHS row.
	nArt := 0
	for _, bi := range b {
		if bi < 0 {
			nArt++
		}
	}
	cols := n + m + nArt
	t := s.prep(m, cols, nArt)
	art := n + m // next artificial column
	for i := 0; i < m; i++ {
		row := t.rows[i]
		if b[i] >= 0 {
			copy(row, a[i])
			row[n+i] = 1 // slack
			row[cols] = b[i]
			t.basis[i] = n + i
		} else {
			for j, v := range a[i] {
				row[j] = -v
			}
			row[n+i] = -1 // negated slack
			row[art] = 1  // artificial
			row[cols] = -b[i]
			t.basis[i] = art
			art++
		}
	}

	if nArt > 0 {
		// Phase 1: minimize the sum of artificials (the cost slice is a
		// minimization row throughout).
		for j := n + m; j < cols; j++ {
			t.cost[j] = 1
		}
		t.priceOut()
		if err := t.iterate(s.stats); err != nil {
			return Solution{}, err
		}
		if -t.cost[cols] > feasTol { // objective value = -cost[cols]
			return Solution{Status: Infeasible}, nil
		}
		if err := t.evictArtificials(n, m); err != nil {
			return Solution{}, err
		}
	}

	// Phase 2: maximize c·x with artificial columns frozen; the cost row is
	// rebuilt as the minimization row of -c·x.
	t.cost = s.zeroCost(cols)
	for j := 0; j < n; j++ {
		t.cost[j] = -c[j]
	}
	t.priceOut()
	if err := t.iterate(s.stats); err != nil {
		return Solution{}, err
	}
	if t.unbounded {
		return Solution{Status: Unbounded}, nil
	}

	x := make([]float64, n)
	for i, bi := range t.basis {
		if bi < n {
			x[bi] = t.rows[i][t.cols]
		}
	}
	obj := 0.0
	for j := 0; j < n; j++ {
		obj += c[j] * x[j]
	}
	return Solution{Status: Optimal, X: x, Objective: obj}, nil
}

// Minimize solves min c·x s.t. A·x <= b, x >= 0, reusing the workspace.
func (s *Solver) Minimize(c []float64, a [][]float64, b []float64) (Solution, error) {
	if cap(s.negObj) < len(c) {
		s.negObj = make([]float64, len(c))
	}
	neg := s.negObj[:len(c)]
	for i, v := range c {
		neg[i] = -v
	}
	sol, err := s.Maximize(neg, a, b)
	if err != nil || sol.Status != Optimal {
		return sol, err
	}
	sol.Objective = -sol.Objective
	return sol, nil
}

// constraintScratch renders cons as an m x width coefficient matrix and RHS
// vector in the solver's scratch arenas. When slack is true, every row gets
// one trailing column reserved for the shared slack variable (+1 on Strict
// rows — the FeasibleInterior formulation); otherwise rows must match width
// exactly, so dimension mismatches fail loudly instead of being truncated
// or zero-padded into a plausible-but-wrong solve.
func (s *Solver) constraintScratch(cons []geom.Constraint, width int, slack bool) ([][]float64, []float64, error) {
	rowLen := width
	if slack {
		rowLen = width - 1
	}
	m := len(cons)
	need := m * width
	if cap(s.aData) < need {
		s.aData = make([]float64, need)
	}
	data := s.aData[:need]
	for i := range data {
		data[i] = 0
	}
	if cap(s.aRows) < m {
		s.aRows = make([][]float64, m)
	}
	if cap(s.bRow) < m {
		s.bRow = make([]float64, m)
	}
	a := s.aRows[:m]
	b := s.bRow[:m]
	for i, c := range cons {
		if len(c.A) != rowLen {
			return nil, nil, fmt.Errorf("lp: constraint %d has %d coefficients, want %d", i, len(c.A), rowLen)
		}
		row := data[i*width : (i+1)*width]
		copy(row, c.A)
		if slack && c.Strict {
			row[width-1] = 1
		}
		a[i] = row
		b[i] = c.B
	}
	return a, b, nil
}

// FeasibleInterior is the workspace-reusing equivalent of the package-level
// FeasibleInterior: it decides whether the open region defined by cons has
// non-empty interior and returns a deep-interior witness.
func (s *Solver) FeasibleInterior(cons []geom.Constraint, dim int) (Interior, error) {
	a, b, err := s.constraintScratch(cons, dim+1, true)
	if err != nil {
		return Interior{}, err
	}
	if cap(s.obj) < dim+1 {
		s.obj = make([]float64, dim+1)
	}
	obj := s.obj[:dim+1]
	for i := range obj {
		obj[i] = 0
	}
	obj[dim] = 1
	sol, err := s.Maximize(obj, a, b)
	if err != nil {
		return Interior{}, err
	}
	if sol.Status != Optimal || sol.Objective <= InteriorEps {
		return Interior{}, nil
	}
	return Interior{
		Feasible: true,
		Point:    geom.Vector(sol.X[:dim]).Clone(),
		Slack:    sol.Objective,
	}, nil
}

// Bound is the workspace-reusing equivalent of the package-level Bound: it
// optimizes obj over the closure of the region defined by cons.
func (s *Solver) Bound(cons []geom.Constraint, obj geom.Vector, maximize bool) (float64, geom.Vector, Status, error) {
	a, b, err := s.constraintScratch(cons, len(obj), false)
	if err != nil {
		return 0, nil, Optimal, err
	}
	var sol Solution
	if maximize {
		sol, err = s.Maximize(obj, a, b)
	} else {
		sol, err = s.Minimize(obj, a, b)
	}
	if err != nil {
		return 0, nil, Optimal, err
	}
	if sol.Status != Optimal {
		return 0, nil, sol.Status, nil
	}
	return sol.Objective, geom.Vector(sol.X).Clone(), Optimal, nil
}
