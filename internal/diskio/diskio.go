// Package diskio simulates the disk-resident scenario of Appendix A: data
// and index live on secondary storage, every R-tree node is one page, and a
// random page read costs a fixed latency (0.2 ms on the paper's SSD). An
// LRU buffer pool absorbs repeated accesses, so only cold reads are
// charged. The Manager implements rtree.Tracker.
package diskio

import (
	"container/list"
	"time"
)

// DefaultPageLatency is the per-random-read cost reported in the paper.
const DefaultPageLatency = 200 * time.Microsecond

// DefaultBufferPages is the default buffer-pool capacity in pages.
const DefaultBufferPages = 256

// Manager counts simulated page reads through an LRU buffer pool.
type Manager struct {
	PageLatency time.Duration
	capacity    int

	lru   *list.List // front = most recently used; values are page ids
	index map[int]*list.Element

	reads  int // cold reads (charged)
	visits int // total page visits (hits + misses)
}

// New returns a Manager with the given buffer capacity (pages) and
// per-miss latency. Non-positive arguments select the defaults.
func New(capacity int, latency time.Duration) *Manager {
	if capacity <= 0 {
		capacity = DefaultBufferPages
	}
	if latency <= 0 {
		latency = DefaultPageLatency
	}
	return &Manager{
		PageLatency: latency,
		capacity:    capacity,
		lru:         list.New(),
		index:       make(map[int]*list.Element),
	}
}

// Visit records an access to page; misses are counted as reads.
// It implements rtree.Tracker.
func (m *Manager) Visit(page int) {
	m.visits++
	if el, ok := m.index[page]; ok {
		m.lru.MoveToFront(el)
		return
	}
	m.reads++
	m.index[page] = m.lru.PushFront(page)
	if m.lru.Len() > m.capacity {
		back := m.lru.Back()
		m.lru.Remove(back)
		delete(m.index, back.Value.(int))
	}
}

// Reads returns the number of cold page reads so far.
func (m *Manager) Reads() int { return m.reads }

// Visits returns the number of page accesses so far (hits included).
func (m *Manager) Visits() int { return m.visits }

// IOTime returns the simulated time spent on cold reads.
func (m *Manager) IOTime() time.Duration {
	return time.Duration(m.reads) * m.PageLatency
}

// Reset clears counters and empties the buffer pool.
func (m *Manager) Reset() {
	m.reads, m.visits = 0, 0
	m.lru.Init()
	m.index = make(map[int]*list.Element)
}
