package diskio

import (
	"testing"
	"time"
)

func TestColdAndWarmReads(t *testing.T) {
	m := New(2, time.Millisecond)
	m.Visit(1)
	m.Visit(2)
	m.Visit(1) // warm
	if m.Reads() != 2 {
		t.Fatalf("Reads = %d, want 2", m.Reads())
	}
	if m.Visits() != 3 {
		t.Fatalf("Visits = %d, want 3", m.Visits())
	}
	if m.IOTime() != 2*time.Millisecond {
		t.Fatalf("IOTime = %v", m.IOTime())
	}
}

func TestLRUEviction(t *testing.T) {
	m := New(2, time.Millisecond)
	m.Visit(1)
	m.Visit(2)
	m.Visit(3) // evicts 1
	m.Visit(1) // cold again
	if m.Reads() != 4 {
		t.Fatalf("Reads = %d, want 4", m.Reads())
	}
	// 3 was most recently used before 1; visiting 2 now must be a miss
	// (2 was evicted when 1 came back).
	m.Visit(2)
	if m.Reads() != 5 {
		t.Fatalf("Reads = %d, want 5", m.Reads())
	}
}

func TestLRURecencyUpdate(t *testing.T) {
	m := New(2, time.Millisecond)
	m.Visit(1)
	m.Visit(2)
	m.Visit(1) // refresh 1; LRU order now [1, 2]
	m.Visit(3) // evicts 2, not 1
	m.Visit(1) // must be warm
	if m.Reads() != 3 {
		t.Fatalf("Reads = %d, want 3 (1 stayed warm)", m.Reads())
	}
}

func TestDefaults(t *testing.T) {
	m := New(0, 0)
	if m.PageLatency != DefaultPageLatency {
		t.Fatalf("latency %v", m.PageLatency)
	}
	if m.capacity != DefaultBufferPages {
		t.Fatalf("capacity %d", m.capacity)
	}
}

func TestReset(t *testing.T) {
	m := New(4, time.Millisecond)
	m.Visit(1)
	m.Visit(2)
	m.Reset()
	if m.Reads() != 0 || m.Visits() != 0 || m.IOTime() != 0 {
		t.Fatal("Reset did not clear counters")
	}
	m.Visit(1)
	if m.Reads() != 1 {
		t.Fatal("Reset did not clear the buffer pool")
	}
}
