package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

// getFlight fetches and decodes /v1/debug:flight with the given raw query.
func getFlight(t *testing.T, ts *httptest.Server, query string) flightResponse {
	t.Helper()
	url := ts.URL + "/v1/debug:flight"
	if query != "" {
		url += "?" + query
	}
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("get %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("get %s: status %d", url, resp.StatusCode)
	}
	var fr flightResponse
	if err := json.NewDecoder(resp.Body).Decode(&fr); err != nil {
		t.Fatalf("decode flight response: %v", err)
	}
	return fr
}

func TestDebugFlightCapture(t *testing.T) {
	_, ts := newTestServer(t, Config{FlightSampleEvery: 1})
	info := loadGenerated(t, ts, "ind", 200, 3, 7)

	if resp, body := postJSON(t, ts.URL+"/v1/kspr", queryRequest{Dataset: "ind", Focal: 5, K: 3}); resp.StatusCode != http.StatusOK {
		t.Fatalf("query: status %d: %s", resp.StatusCode, body)
	}
	if resp, _ := postJSON(t, ts.URL+"/v1/kspr", queryRequest{Dataset: "missing", Focal: 0, K: 1}); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing dataset: status %d, want 404", resp.StatusCode)
	}

	fr := getFlight(t, ts, "")
	if len(fr.Events) < 3 {
		t.Fatalf("captured %d events, want >= 3 (load, query, error)", len(fr.Events))
	}
	if fr.Stats.Captured == 0 {
		t.Fatal("stats report zero captures")
	}
	if fr.JournalLastSeq == 0 {
		t.Fatal("journal high-water mark is 0 after a dataset load")
	}
	var good, bad *obs.WideEvent
	for i := range fr.Events {
		ev := &fr.Events[i]
		if ev.Endpoint != "kspr" {
			continue
		}
		if ev.Status == http.StatusOK {
			good = ev
		} else {
			bad = ev
		}
	}
	if good == nil || bad == nil {
		t.Fatalf("missing kspr events in %+v", fr.Events)
	}
	if good.Dataset != "ind" || good.Generation != info.Generation {
		t.Fatalf("good event dataset/generation = %q/%d, want ind/%d", good.Dataset, good.Generation, info.Generation)
	}
	if good.RequestID == "" || good.Kind != obs.CaptureSampled || good.LatencyNs <= 0 {
		t.Fatalf("good event = %+v", good)
	}
	if len(good.Phases) == 0 {
		t.Fatal("good event carries no engine phase breakdown")
	}
	if bad.Kind != obs.CaptureError || bad.Status != http.StatusNotFound {
		t.Fatalf("bad event = %+v", bad)
	}
	if !strings.Contains(bad.Error, "not found") {
		t.Fatalf("bad event error text = %q, want the handler's 404 message", bad.Error)
	}

	// Filters narrow the read; limit keeps the most recent matches.
	for _, ev := range getFlight(t, ts, "errors_only=true").Events {
		if ev.Status < 400 {
			t.Fatalf("errors_only returned status %d", ev.Status)
		}
	}
	if got := getFlight(t, ts, "endpoint=kspr&errors_only=true").Events; len(got) != 1 {
		t.Fatalf("endpoint+errors filter kept %d events, want 1", len(got))
	}
	if got := getFlight(t, ts, "limit=1").Events; len(got) != 1 {
		t.Fatalf("limit=1 kept %d events", len(got))
	}
	if got := getFlight(t, ts, "dataset=ind").Events; len(got) == 0 {
		t.Fatal("dataset filter dropped everything")
	}
	for _, q := range []string{"min_latency_ms=abc", "min_latency_ms=-1", "errors_only=maybe", "limit=-2"} {
		resp, err := http.Get(ts.URL + "/v1/debug:flight?" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("query %q: status %d, want 400", q, resp.StatusCode)
		}
	}
}

func TestDebugFlightDisabled(t *testing.T) {
	_, ts := newTestServer(t, Config{FlightCapacity: -1})
	resp, err := http.Get(ts.URL + "/v1/debug:flight")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("disabled recorder: status %d, want 404", resp.StatusCode)
	}
}

// getEvents fetches and decodes /v1/debug:events with the given raw query.
func getEvents(t *testing.T, ts *httptest.Server, query string) eventsResponse {
	t.Helper()
	url := ts.URL + "/v1/debug:events"
	if query != "" {
		url += "?" + query
	}
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("get %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("get %s: status %d", url, resp.StatusCode)
	}
	var er eventsResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatalf("decode events response: %v", err)
	}
	return er
}

func TestDebugEventsCursor(t *testing.T) {
	_, ts := newTestServer(t, Config{FlightSampleEvery: 1})
	loadGenerated(t, ts, "ind", 100, 3, 7)
	if resp, body := postJSON(t, ts.URL+"/v1/datasets/ind:mutate",
		map[string]any{"op": "insert", "values": []float64{0.5, 0.5, 0.5}}); resp.StatusCode != http.StatusOK {
		t.Fatalf("mutate: status %d: %s", resp.StatusCode, body)
	}

	er := getEvents(t, ts, "")
	types := map[string]int{}
	for i, ev := range er.Events {
		types[ev.Type]++
		if i > 0 && ev.Seq <= er.Events[i-1].Seq {
			t.Fatalf("journal seqs not ascending: %d then %d", er.Events[i-1].Seq, ev.Seq)
		}
	}
	for _, want := range []string{obs.EventDatasetLoad, obs.EventMutationBatch, obs.EventCacheMigration} {
		if types[want] == 0 {
			t.Fatalf("journal missing %q event; got %v", want, types)
		}
	}
	if er.LastSeq != er.Events[len(er.Events)-1].Seq {
		t.Fatalf("last_seq %d != final event seq %d", er.LastSeq, er.Events[len(er.Events)-1].Seq)
	}

	// The since cursor resumes past what was already read.
	first := er.Events[0].Seq
	rest := getEvents(t, ts, "since="+jsonNumber(first))
	if len(rest.Events) != len(er.Events)-1 || rest.Events[0].Seq != first+1 {
		t.Fatalf("since=%d returned %d events starting at %d", first, len(rest.Events), rest.Events[0].Seq)
	}
	if got := getEvents(t, ts, "since="+jsonNumber(er.LastSeq)); len(got.Events) != 0 {
		t.Fatalf("since=last returned %d events, want 0", len(got.Events))
	}
	if got := getEvents(t, ts, "limit=1"); len(got.Events) != 1 {
		t.Fatalf("limit=1 returned %d events", len(got.Events))
	}
	resp, err := http.Get(ts.URL + "/v1/debug:events?since=nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid since: status %d, want 400", resp.StatusCode)
	}

	// A flight-captured request joins the journal: the wide event's
	// generation matches the mutation batch's recorded generation.
	if resp, body := postJSON(t, ts.URL+"/v1/kspr", queryRequest{Dataset: "ind", Focal: 5, K: 3}); resp.StatusCode != http.StatusOK {
		t.Fatalf("query after mutate: status %d: %s", resp.StatusCode, body)
	}
	var mutGen uint64
	for _, ev := range er.Events {
		if ev.Type == obs.EventMutationBatch {
			mutGen = ev.Generation
		}
	}
	found := false
	for _, ev := range getFlight(t, ts, "endpoint=kspr").Events {
		if ev.Status == http.StatusOK && ev.Generation == mutGen {
			found = true
		}
	}
	if !found {
		t.Fatalf("no captured kspr request at the mutation batch's generation %d", mutGen)
	}
}

func jsonNumber(v uint64) string {
	raw, _ := json.Marshal(v)
	return string(raw)
}

func TestWriteBlackBox(t *testing.T) {
	dir := t.TempDir()
	srv, ts := newTestServer(t, Config{FlightSampleEvery: 1, BlackBoxDir: dir})
	loadGenerated(t, ts, "ind", 100, 3, 7)
	if resp, _ := postJSON(t, ts.URL+"/v1/kspr", queryRequest{Dataset: "ind", Focal: 5, K: 3}); resp.StatusCode != http.StatusOK {
		t.Fatalf("query: status %d", resp.StatusCode)
	}

	path, err := srv.WriteBlackBox("test dump")
	if err != nil {
		t.Fatalf("WriteBlackBox: %v", err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var bundle blackBoxBundle
	if err := json.Unmarshal(raw, &bundle); err != nil {
		t.Fatalf("bundle is not valid JSON: %v", err)
	}
	if bundle.Reason != "test dump" || bundle.PID != os.Getpid() || bundle.Time.IsZero() {
		t.Fatalf("bundle header = %+v", bundle)
	}
	if len(bundle.Flight) == 0 {
		t.Fatal("bundle carries no flight events")
	}
	if len(bundle.Journal) == 0 {
		t.Fatal("bundle carries no journal events")
	}
	last := bundle.Journal[len(bundle.Journal)-1]
	if last.Type != obs.EventBlackBox {
		t.Fatalf("final journal event type %q, want %q", last.Type, obs.EventBlackBox)
	}
	if bundle.Metrics.Requests == 0 || len(bundle.Metrics.ByEndpoint) == 0 {
		t.Fatal("bundle carries no metrics snapshot")
	}
	if entries, _ := filepath.Glob(filepath.Join(dir, "*.tmp")); len(entries) != 0 {
		t.Fatalf("temp files left behind: %v", entries)
	}

	srv2 := NewServer(Config{})
	defer srv2.Close()
	if _, err := srv2.WriteBlackBox("x"); err == nil {
		t.Fatal("WriteBlackBox without a BlackBoxDir must error")
	}
}

func TestPanicWritesBlackBox(t *testing.T) {
	dir := t.TempDir()
	srv := NewServer(Config{BlackBoxDir: dir})
	defer srv.Close()
	h := srv.instrument("boom", func(w http.ResponseWriter, r *http.Request) {
		panic("kaboom")
	})

	func() {
		defer func() {
			if p := recover(); p == nil {
				t.Fatal("instrument swallowed the panic; net/http semantics need the re-panic")
			}
		}()
		h(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/boom", nil))
	}()

	bundles, err := filepath.Glob(filepath.Join(dir, "blackbox-*.json"))
	if err != nil || len(bundles) != 1 {
		t.Fatalf("found %d bundles (err %v), want 1", len(bundles), err)
	}
	raw, err := os.ReadFile(bundles[0])
	if err != nil {
		t.Fatal(err)
	}
	var bundle blackBoxBundle
	if err := json.Unmarshal(raw, &bundle); err != nil {
		t.Fatalf("bundle is not valid JSON: %v", err)
	}
	if !strings.Contains(bundle.Reason, "panic in boom: kaboom") {
		t.Fatalf("bundle reason = %q", bundle.Reason)
	}
	found := false
	for _, ev := range bundle.Flight {
		if ev.Endpoint == "boom" && ev.Kind == obs.CaptureError && strings.Contains(ev.Error, "kaboom") {
			found = true
		}
	}
	if !found {
		t.Fatalf("panicking request missing from the flight dump: %+v", bundle.Flight)
	}
}

func TestIndexWarmSurfaced(t *testing.T) {
	srv, ts := newTestServer(t, Config{StoreDir: t.TempDir()})
	if _, err := srv.RecoverDatasets(); err != nil {
		t.Fatal(err)
	}
	info := loadGenerated(t, ts, "ind", 100, 3, 7)
	// A freshly loaded dataset builds its index cold; warm restarts are
	// exercised end-to-end by scripts/crashsmoke.
	if info.IndexWarm {
		t.Fatal("fresh load reported a warm index")
	}

	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ready struct {
		Status    string          `json:"status"`
		IndexWarm map[string]bool `json:"index_warm"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ready); err != nil {
		t.Fatalf("decode readyz: %v", err)
	}
	if ready.Status != "ready" {
		t.Fatalf("readyz status %q", ready.Status)
	}
	if warm, ok := ready.IndexWarm["ind"]; !ok || warm {
		t.Fatalf("readyz index_warm = %v, want {\"ind\": false}", ready.IndexWarm)
	}

	promResp, err := http.Get(ts.URL + "/metrics.prom")
	if err != nil {
		t.Fatal(err)
	}
	defer promResp.Body.Close()
	prom, err := io.ReadAll(promResp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(prom), `ksprd_index_warm{dataset="ind"} 0`) {
		t.Fatal("/metrics.prom missing the ksprd_index_warm gauge")
	}
}
