package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestPercentileNearestRank pins the rounding rule at small sample counts:
// the index is round(p*(n-1)), so the median of two samples is the UPPER
// one (the classic ceil(p*n) rule returns the lower, which under-reports
// p50 until the window fills).
func TestPercentileNearestRank(t *testing.T) {
	cases := []struct {
		sorted []float64
		p      float64
		want   float64
	}{
		{nil, 0.50, 0},
		{[]float64{7}, 0.50, 7},
		{[]float64{7}, 0.99, 7},
		{[]float64{1, 9}, 0.50, 9}, // the pinned fix: upper of two
		{[]float64{1, 9}, 0.49, 1},
		{[]float64{1, 9}, 0.95, 9},
		{[]float64{1, 5, 9}, 0.50, 5},
		{[]float64{1, 5, 9}, 0.95, 9},
		{[]float64{1, 2, 3, 4}, 0.50, 3},
		{[]float64{1, 2, 3, 4, 5}, 0.50, 3},
		{[]float64{1, 2, 3, 4, 5}, 0.99, 5},
		{[]float64{1, 2, 3, 4, 5}, 0.0, 1},
		{[]float64{1, 2, 3, 4, 5}, 1.0, 5},
	}
	for _, c := range cases {
		if got := percentile(c.sorted, c.p); got != c.want {
			t.Errorf("percentile(%v, %v) = %v, want %v", c.sorted, c.p, got, c.want)
		}
	}
}

// promSample is one parsed exposition line.
type promSample struct {
	name   string
	labels map[string]string
	value  float64
}

// parseProm is a minimal Prometheus text-format parser: it validates the
// line grammar the exposition must follow (HELP/TYPE comments, then
// `name{labels} value` samples) and returns the samples.
func parseProm(t *testing.T, body string) []promSample {
	t.Helper()
	var out []promSample
	sc := bufio.NewScanner(strings.NewReader(body))
	types := map[string]string{}
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			parts := strings.SplitN(line, " ", 4)
			if len(parts) < 4 {
				t.Fatalf("malformed comment line %q", line)
			}
			if parts[1] == "TYPE" {
				switch parts[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					t.Fatalf("invalid metric type in %q", line)
				}
				types[parts[2]] = parts[3]
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("unknown comment form %q", line)
		}
		sample := promSample{labels: map[string]string{}}
		rest := line
		if i := strings.IndexByte(line, '{'); i >= 0 {
			j := strings.LastIndexByte(line, '}')
			if j < i {
				t.Fatalf("unbalanced braces in %q", line)
			}
			sample.name = line[:i]
			for _, pair := range strings.Split(line[i+1:j], ",") {
				kv := strings.SplitN(pair, "=", 2)
				if len(kv) != 2 || !strings.HasPrefix(kv[1], `"`) || !strings.HasSuffix(kv[1], `"`) {
					t.Fatalf("malformed label %q in %q", pair, line)
				}
				sample.labels[kv[0]] = strings.Trim(kv[1], `"`)
			}
			rest = line[j+1:]
		} else {
			sp := strings.IndexByte(line, ' ')
			if sp < 0 {
				t.Fatalf("no value on line %q", line)
			}
			sample.name = line[:sp]
			rest = line[sp:]
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
		if err != nil {
			t.Fatalf("bad value on line %q: %v", line, err)
		}
		sample.value = v
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(sample.name, "_bucket"), "_sum"), "_count")
		if _, ok := types[base]; !ok && types[sample.name] == "" {
			t.Fatalf("sample %q has no preceding # TYPE", sample.name)
		}
		out = append(out, sample)
	}
	return out
}

// TestMetricsPromExposition exercises /metrics.prom end to end: drive some
// traffic, then check the body parses as valid exposition text, carries
// the full metric catalogue, and keeps the histogram invariants
// (cumulative buckets, +Inf bucket == _count).
func TestMetricsPromExposition(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	loadGenerated(t, ts, "ind", 200, 3, 5)
	for i := 0; i < 3; i++ {
		resp, body := postJSON(t, ts.URL+"/v1/kspr", queryRequest{Dataset: "ind", Focal: i, K: 4})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query %d: status %d: %s", i, resp.StatusCode, body)
		}
	}

	resp, err := http.Get(ts.URL + "/metrics.prom")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") || !strings.Contains(ct, "0.0.4") {
		t.Fatalf("content type %q is not Prometheus text exposition", ct)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	samples := parseProm(t, buf.String())

	byName := map[string][]promSample{}
	for _, s := range samples {
		byName[s.name] = append(byName[s.name], s)
	}
	for _, want := range []string{
		"kspr_uptime_seconds", "kspr_requests_total", "kspr_errors_total", "kspr_qps_1m",
		"kspr_endpoint_requests_total", "kspr_endpoint_errors_total",
		"kspr_request_duration_seconds_bucket", "kspr_request_duration_seconds_sum", "kspr_request_duration_seconds_count",
		"kspr_cache_hits_total", "kspr_cache_misses_total", "kspr_cache_entries",
		"kspr_cache_results_migrated_total", "kspr_cache_results_dropped_total",
		"kspr_pool_workers", "kspr_pool_depth",
		"kspr_cpu_extra_slots", "kspr_cpu_slots_in_use",
		"kspr_mutation_batches_total", "kspr_mutations_total", "kspr_wal_recoveries_total",
		"kspr_whatif_probes_total", "kspr_whatif_kept_total", "kspr_whatif_keep_rate",
		"kspr_datasets",
	} {
		if len(byName[want]) == 0 {
			t.Errorf("exposition is missing %s", want)
		}
	}

	// Histogram invariants for the kspr endpoint: cumulative buckets end at
	// +Inf, and the +Inf bucket equals _count.
	var cum []float64
	var infV, count float64
	for _, s := range byName["kspr_request_duration_seconds_bucket"] {
		if s.labels["endpoint"] != "kspr" {
			continue
		}
		cum = append(cum, s.value)
		if s.labels["le"] == "+Inf" {
			infV = s.value
		}
	}
	for _, s := range byName["kspr_request_duration_seconds_count"] {
		if s.labels["endpoint"] == "kspr" {
			count = s.value
		}
	}
	if len(cum) == 0 {
		t.Fatal("no buckets for endpoint=kspr")
	}
	for i := 1; i < len(cum); i++ {
		if cum[i] < cum[i-1] {
			t.Fatalf("bucket counts not cumulative: %v", cum)
		}
	}
	if infV != count || count != 3 {
		t.Fatalf("+Inf bucket %v / _count %v, want both 3", infV, count)
	}
}

// TestEndpointPercentilesAgree pins that the per-endpoint histogram
// percentiles in JSON /metrics agree with the exact-sample global
// percentiles within one bucket width (the histogram reports its bucket's
// upper bound).
func TestEndpointPercentilesAgree(t *testing.T) {
	m := NewMetrics()
	durs := []time.Duration{
		800 * time.Microsecond, 1200 * time.Microsecond, 3 * time.Millisecond,
		7 * time.Millisecond, 12 * time.Millisecond, 40 * time.Millisecond,
	}
	for _, d := range durs {
		m.Observe("kspr", d, 200)
	}
	snap := m.Snapshot()
	ep, ok := snap.LatencyByEndpoint["kspr"]
	if !ok {
		t.Fatal("endpoint row missing")
	}
	if ep.Requests != uint64(len(durs)) || ep.Errors != 0 {
		t.Fatalf("endpoint counters %+v", ep)
	}
	// Each histogram percentile must agree with the exact-sample estimate
	// within one bucket ladder step (the 1-2.5-5 ladder spaces consecutive
	// upper bounds at most 2.5x apart; the two estimators may also pick
	// adjacent ranks at small even n).
	checks := []struct {
		name  string
		exact float64
		hist  float64
	}{
		{"p50", snap.Latency.P50Ms, ep.P50Ms},
		{"p95", snap.Latency.P95Ms, ep.P95Ms},
		{"p99", snap.Latency.P99Ms, ep.P99Ms},
	}
	for _, c := range checks {
		if c.hist < c.exact/2.5-1e-9 || c.hist > c.exact*2.5+1e-9 {
			t.Errorf("%s: histogram %v ms not within one bucket of exact %v ms", c.name, c.hist, c.exact)
		}
	}
}

// TestMetricsRaceStress hammers Observe and Snapshot concurrently; run
// under -race this pins that the per-endpoint path is data-race free.
func TestMetricsRaceStress(t *testing.T) {
	m := NewMetrics()
	var wg sync.WaitGroup
	endpoints := []string{"kspr", "kspr.batch", "healthz", "whatif.price"}
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				status := 200
				if i%7 == 0 {
					status = 500
				}
				m.Observe(endpoints[(g+i)%len(endpoints)], time.Duration(i)*time.Microsecond, status)
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				snap := m.Snapshot()
				var buf bytes.Buffer
				if err := m.WriteProm(&buf, snap); err != nil {
					t.Errorf("WriteProm: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	snap := m.Snapshot()
	if snap.Requests != 8*500 {
		t.Fatalf("requests %d, want %d", snap.Requests, 8*500)
	}
	var sum uint64
	for _, n := range snap.ByEndpoint {
		sum += n
	}
	if sum != snap.Requests {
		t.Fatalf("per-endpoint sum %d != total %d", sum, snap.Requests)
	}
}

// explainQuery runs one GET /v1/kspr?debug=trace query and returns the
// decoded response.
func explainQuery(t *testing.T, ts *httptest.Server, algo string) queryResponse {
	t.Helper()
	url := fmt.Sprintf("%s/v1/kspr?dataset=ind&focal=2&k=5&algorithm=%s&debug=trace", ts.URL, algo)
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var qr queryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatalf("%s: decode: %v", algo, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%s: status %d", algo, resp.StatusCode)
	}
	if resp.Header.Get("X-Request-Id") == "" {
		t.Fatalf("%s: no X-Request-Id header", algo)
	}
	return qr
}

// TestExplainModeAllAlgorithms is the EXPLAIN acceptance check: for every
// algorithm, ?debug=trace returns a phase breakdown whose per-phase sum
// matches the reported total within 10%, alongside the usual engine stats,
// and the traced response is never served from (or stored in) the cache.
func TestExplainModeAllAlgorithms(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	loadGenerated(t, ts, "ind", 250, 3, 11)

	for _, algo := range []string{"cta", "p-cta", "lp-cta", "k-skyband"} {
		qr := explainQuery(t, ts, algo)
		if qr.Trace == nil || len(qr.Trace.Phases) == 0 {
			t.Fatalf("%s: no trace in response", algo)
		}
		if qr.Cached {
			t.Fatalf("%s: traced response claims to be cached", algo)
		}
		if qr.Stats.ElapsedMs <= 0 || qr.Stats.Regions != len(qr.Regions) {
			t.Fatalf("%s: stats not attached: %+v", algo, qr.Stats)
		}
		var sum float64
		for _, p := range qr.Trace.Phases {
			if p.Count <= 0 || p.Ms < 0 {
				t.Fatalf("%s: malformed phase %+v", algo, p)
			}
			sum += p.Ms
		}
		if qr.Trace.TotalMs > 0 && math.Abs(sum-qr.Trace.TotalMs) > 0.10*qr.Trace.TotalMs {
			t.Fatalf("%s: phase sum %v ms vs total %v ms (>10%% apart)", algo, sum, qr.Trace.TotalMs)
		}
		// The engine phases are non-overlapping, so their sum can never
		// exceed the engine elapsed time (small scheduling slack allowed).
		if qr.Trace.TotalMs > qr.Stats.ElapsedMs*1.10+0.5 {
			t.Fatalf("%s: trace total %v ms exceeds engine elapsed %v ms", algo, qr.Trace.TotalMs, qr.Stats.ElapsedMs)
		}
		// A repeat EXPLAIN still runs fresh (debug bypasses the cache).
		if again := explainQuery(t, ts, algo); again.Cached || again.Trace == nil {
			t.Fatalf("%s: repeat EXPLAIN was cached or lost its trace", algo)
		}
	}

	// The traced runs must not have poisoned the cache: a plain query after
	// an EXPLAIN of the same shape is a miss first, a (trace-free) hit next.
	first, _ := http.Get(ts.URL + "/v1/kspr?dataset=ind&focal=2&k=5&algorithm=lp-cta")
	var plain queryResponse
	json.NewDecoder(first.Body).Decode(&plain)
	first.Body.Close()
	if plain.Cached || plain.Trace != nil {
		t.Fatalf("plain query after EXPLAIN: cached=%v trace=%v", plain.Cached, plain.Trace)
	}
	second, _ := http.Get(ts.URL + "/v1/kspr?dataset=ind&focal=2&k=5&algorithm=lp-cta")
	var hit queryResponse
	json.NewDecoder(second.Body).Decode(&hit)
	second.Body.Close()
	if !hit.Cached || hit.Trace != nil {
		t.Fatalf("repeat plain query: cached=%v trace=%v, want a trace-free hit", hit.Cached, hit.Trace)
	}
}

// TestExplainBatchTrailer pins the batch EXPLAIN contract: one trailer
// line with index -1 carrying the batch-wide phase breakdown.
func TestExplainBatchTrailer(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	loadGenerated(t, ts, "ind", 150, 3, 3)

	body := `{"dataset":"ind","k":4,"queries":[{"focal":1},{"focal":2},{"focal":3}]}`
	resp, err := http.Post(ts.URL+"/v1/kspr:batch?debug=trace", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var lines []batchLine
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var line batchLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		lines = append(lines, line)
	}
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want 3 items + 1 trailer", len(lines))
	}
	trailer := lines[len(lines)-1]
	if trailer.Index != -1 || trailer.Trace == nil || len(trailer.Trace.Phases) == 0 {
		t.Fatalf("last line is not a trace trailer: %+v", trailer)
	}
	for _, line := range lines[:3] {
		if line.Error != "" || line.Result == nil {
			t.Fatalf("item line failed: %+v", line)
		}
	}
}

// TestExplainWhatIf pins EXPLAIN mode on a what-if endpoint.
func TestExplainWhatIf(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	loadGenerated(t, ts, "ind", 120, 3, 9)

	url := ts.URL + "/v1/impact:competitors?dataset=ind&focal=2&k=4&samples=400&debug=trace"
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var cr competitorsResponse
	if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if cr.Trace == nil || len(cr.Trace.Phases) == 0 {
		t.Fatal("what-if EXPLAIN carried no trace")
	}
}

// TestRequestIDPropagation pins the correlation-id contract: a caller-sent
// X-Request-Id is echoed back verbatim; absent one, the server mints one.
func TestRequestIDPropagation(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	req.Header.Set("X-Request-Id", "caller-supplied-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "caller-supplied-42" {
		t.Fatalf("echoed id %q, want caller's", got)
	}

	resp2, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if got := resp2.Header.Get("X-Request-Id"); len(got) != 16 {
		t.Fatalf("minted id %q, want 16 hex chars", got)
	}
}

// TestSlowQueryLog pins the slow-query log: with a tiny threshold every
// query logs a Warn line carrying the request id and the phase breakdown.
func TestSlowQueryLog(t *testing.T) {
	var buf syncBuffer
	logger := slog.New(slog.NewJSONHandler(&buf, &slog.HandlerOptions{Level: slog.LevelWarn}))
	_, ts := newTestServer(t, Config{Logger: logger, SlowQuery: time.Nanosecond})
	loadGenerated(t, ts, "ind", 150, 3, 13)

	resp, body := postJSON(t, ts.URL+"/v1/kspr", queryRequest{Dataset: "ind", Focal: 4, K: 5})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	id := resp.Header.Get("X-Request-Id")

	logged := buf.String()
	var slow map[string]any
	for _, line := range strings.Split(strings.TrimSpace(logged), "\n") {
		var entry map[string]any
		if err := json.Unmarshal([]byte(line), &entry); err != nil {
			t.Fatalf("non-JSON log line %q: %v", line, err)
		}
		if entry["msg"] == "slow query" && entry["endpoint"] == "kspr" {
			slow = entry
		}
	}
	if slow == nil {
		t.Fatalf("no slow-query line for kspr in log: %s", logged)
	}
	if slow["request_id"] != id {
		t.Fatalf("slow-query request_id %v, want %v", slow["request_id"], id)
	}
	phases, ok := slow["phases"].(map[string]any)
	if !ok || len(phases) == 0 {
		t.Fatalf("slow-query line carries no phase breakdown: %v", slow)
	}
}

// syncBuffer is a mutex-guarded bytes.Buffer (slog handlers may be hit
// from multiple request goroutines).
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestReadyzLifecycle pins the liveness/readiness split: a store-backed
// server is alive but not ready until WAL recovery finishes, and the 503
// names the datasets still pending.
func TestReadyzLifecycle(t *testing.T) {
	dir := t.TempDir()

	// Seed the store with one durable dataset, then shut that server down.
	_, ts1 := newTestServer(t, Config{StoreDir: dir})
	loadGenerated(t, ts1, "walset", 80, 3, 21)
	ts1.Close()

	// A fresh server over the same store: live immediately, ready only
	// after recovery.
	srv := NewServer(Config{StoreDir: dir})
	ts2 := httptest.NewServer(srv.Handler())
	defer func() {
		ts2.Close()
		srv.Close()
	}()

	if resp, _ := http.Get(ts2.URL + "/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("liveness should be green pre-recovery, got %d", resp.StatusCode)
	} else {
		resp.Body.Close()
	}
	resp, err := http.Get(ts2.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var notReady struct {
		Status     string   `json:"status"`
		Recovering []string `json:"recovering"`
	}
	json.NewDecoder(resp.Body).Decode(&notReady)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || notReady.Status != "recovering" {
		t.Fatalf("pre-recovery readyz: status %d body %+v", resp.StatusCode, notReady)
	}
	if len(notReady.Recovering) != 1 || notReady.Recovering[0] != "walset" {
		t.Fatalf("recovering list %v, want [walset]", notReady.Recovering)
	}

	if _, err := srv.RecoverDatasets(); err != nil {
		t.Fatalf("recover: %v", err)
	}
	resp2, err := http.Get(ts2.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var ready struct {
		Status   string `json:"status"`
		Datasets int    `json:"datasets"`
	}
	json.NewDecoder(resp2.Body).Decode(&ready)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK || ready.Status != "ready" || ready.Datasets != 1 {
		t.Fatalf("post-recovery readyz: status %d body %+v", resp2.StatusCode, ready)
	}

	// A store-less server is ready from the start.
	_, ts3 := newTestServer(t, Config{})
	resp3, _ := http.Get(ts3.URL + "/readyz")
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("store-less readyz: %d", resp3.StatusCode)
	}
}

// TestKSPRGetValidation pins the query-string parser's error handling.
func TestKSPRGetValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	loadGenerated(t, ts, "ind", 60, 3, 2)

	for _, bad := range []string{
		"/v1/kspr?dataset=ind&focal=abc&k=5",
		"/v1/kspr?dataset=ind&focal=1&k=oops",
		"/v1/kspr?dataset=ind&focal=1&k=5&volumes=maybe",
		"/v1/kspr?dataset=ind&focal=1&k=5&epsilon=wide",
		"/v1/kspr?dataset=ind&focal=1&k=5&seed=1e9",
	} {
		resp, err := http.Get(ts.URL + bad)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", bad, resp.StatusCode)
		}
	}

	// And the happy path agrees with the POST form.
	resp, err := http.Get(ts.URL + "/v1/kspr?dataset=ind&focal=1&k=5&algorithm=cta")
	if err != nil {
		t.Fatal(err)
	}
	var viaGet queryResponse
	json.NewDecoder(resp.Body).Decode(&viaGet)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET query failed: %d", resp.StatusCode)
	}
	_, body := postJSON(t, ts.URL+"/v1/kspr", queryRequest{Dataset: "ind", Focal: 1, K: 5, Algorithm: "cta", NoCache: true})
	var viaPost queryResponse
	json.Unmarshal(body, &viaPost)
	if len(viaGet.Regions) != len(viaPost.Regions) || viaGet.Algorithm != viaPost.Algorithm {
		t.Fatalf("GET and POST disagree: %d/%s vs %d/%s",
			len(viaGet.Regions), viaGet.Algorithm, len(viaPost.Regions), viaPost.Algorithm)
	}
}
