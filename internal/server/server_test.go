package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	kspr "repro"
	"repro/internal/dataset"
)

// newTestServer spins up the service over httptest with fast timeouts.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv := NewServer(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

// loadGenerated installs a synthetic dataset through the HTTP API.
func loadGenerated(t *testing.T, ts *httptest.Server, name string, n, d int, seed int64) DatasetInfo {
	t.Helper()
	body := fmt.Sprintf(`{"name":%q,"generate":{"dist":"IND","n":%d,"d":%d,"seed":%d}}`, name, n, d, seed)
	resp, err := http.Post(ts.URL+"/v1/datasets", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("load dataset: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("load dataset: status %d", resp.StatusCode)
	}
	var info DatasetInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatalf("decode dataset info: %v", err)
	}
	return info
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("post %s: %v", url, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

func TestQueryMatchesLibrary(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	loadGenerated(t, ts, "ind", 300, 3, 7)

	resp, body := postJSON(t, ts.URL+"/v1/kspr", queryRequest{Dataset: "ind", Focal: 11, K: 5})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var qr queryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatalf("decode: %v", err)
	}

	// The service must agree with a direct library run on the same data.
	ds, err := dataset.Generate(dataset.Independent, 300, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	db, err := kspr.Open(ds.Float64s())
	if err != nil {
		t.Fatal(err)
	}
	want, err := db.KSPR(11, 5, kspr.WithAlgorithm(kspr.LPCTA))
	if err != nil {
		t.Fatal(err)
	}
	if len(qr.Regions) != len(want.Regions) {
		t.Fatalf("server returned %d regions, library %d", len(qr.Regions), len(want.Regions))
	}
	if qr.Cached {
		t.Fatal("first query must not be served from cache")
	}
	if qr.Algorithm != "LP-CTA" || qr.Dataset != "ind" || qr.K != 5 {
		t.Fatalf("unexpected response header fields: %+v", qr)
	}
}

func TestQueryValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	loadGenerated(t, ts, "ind", 50, 3, 1)

	cases := []struct {
		req    queryRequest
		status int
	}{
		{queryRequest{Dataset: "missing", Focal: 1, K: 5}, http.StatusNotFound},
		{queryRequest{Dataset: "ind", Focal: 1, K: 0}, http.StatusBadRequest},
		{queryRequest{Dataset: "ind", Focal: -3, K: 5}, http.StatusBadRequest},
		{queryRequest{Dataset: "ind", Focal: 5000, K: 5}, http.StatusBadRequest},
		{queryRequest{Dataset: "ind", Focal: 1, K: 5, Algorithm: "nope"}, http.StatusBadRequest},
	}
	for i, c := range cases {
		resp, body := postJSON(t, ts.URL+"/v1/kspr", c.req)
		if resp.StatusCode != c.status {
			t.Errorf("case %d: status %d, want %d (%s)", i, resp.StatusCode, c.status, body)
		}
	}
}

func TestCacheHitMiss(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	loadGenerated(t, ts, "ind", 200, 3, 3)

	req := queryRequest{Dataset: "ind", Focal: 4, K: 5}
	_, body1 := postJSON(t, ts.URL+"/v1/kspr", req)
	var first queryResponse
	if err := json.Unmarshal(body1, &first); err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Fatal("first response claims cached")
	}
	_, body2 := postJSON(t, ts.URL+"/v1/kspr", req)
	var second queryResponse
	if err := json.Unmarshal(body2, &second); err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Fatal("second identical query must be a cache hit")
	}
	if len(second.Regions) != len(first.Regions) {
		t.Fatalf("cached response has %d regions, fresh had %d", len(second.Regions), len(first.Regions))
	}

	st := srv.cache.Stats()
	if st.Hits < 1 || st.Misses < 1 {
		t.Fatalf("cache stats did not move: %+v", st)
	}

	// Spelling variants of the same algorithm share a canonical cache key.
	_, bodyAlt := postJSON(t, ts.URL+"/v1/kspr", queryRequest{Dataset: "ind", Focal: 4, K: 5, Algorithm: "lpcta"})
	var alt queryResponse
	if err := json.Unmarshal(bodyAlt, &alt); err != nil {
		t.Fatal(err)
	}
	if !alt.Cached {
		t.Fatal(`algorithm "lpcta" must hit the cache entry made by the default spelling`)
	}

	// A different k must miss.
	_, body3 := postJSON(t, ts.URL+"/v1/kspr", queryRequest{Dataset: "ind", Focal: 4, K: 6})
	var third queryResponse
	if err := json.Unmarshal(body3, &third); err != nil {
		t.Fatal(err)
	}
	if third.Cached {
		t.Fatal("different k must not hit the cache")
	}

	// The hit rate must be visible through /metrics.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap MetricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Cache.Hits < 1 {
		t.Fatalf("metrics cache hits = %d, want >= 1", snap.Cache.Hits)
	}
	if snap.Cache.HitRate <= 0 {
		t.Fatalf("metrics hit rate = %v, want > 0", snap.Cache.HitRate)
	}
	if snap.Requests == 0 {
		t.Fatal("metrics request counter did not move")
	}
}

func TestBatchStreamsAllQueries(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	loadGenerated(t, ts, "ind", 250, 3, 5)

	queries := make([]batchQuery, 12)
	for i := range queries {
		queries[i] = batchQuery{Focal: i * 7, K: 3 + i%4}
	}
	raw, _ := json.Marshal(batchRequest{Dataset: "ind", Queries: queries})
	resp, err := http.Post(ts.URL+"/v1/kspr:batch", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	seen := map[int]bool{}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	for sc.Scan() {
		var line batchLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad ndjson line %q: %v", sc.Text(), err)
		}
		if line.Error != "" {
			t.Fatalf("query %d failed: %s", line.Index, line.Error)
		}
		if line.Result == nil || len(line.Result.Regions) == 0 && line.Result.Stats.BaseRank < 0 {
			t.Fatalf("query %d: empty result", line.Index)
		}
		if seen[line.Index] {
			t.Fatalf("query %d reported twice", line.Index)
		}
		seen[line.Index] = true
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(queries) {
		t.Fatalf("got %d results, want %d", len(seen), len(queries))
	}
}

func TestBatchRejectsOversize(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBatch: 4})
	loadGenerated(t, ts, "ind", 50, 3, 1)
	queries := make([]batchQuery, 5)
	for i := range queries {
		queries[i] = batchQuery{Focal: i, K: 2}
	}
	resp, _ := postJSON(t, ts.URL+"/v1/kspr:batch", batchRequest{Dataset: "ind", Queries: queries})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
}

func TestTimeoutReturns504(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	// Large anticorrelated workload: CTA on it takes far longer than 1ms.
	body := `{"name":"anti","generate":{"dist":"ANTI","n":4000,"d":4,"seed":2}}`
	resp, err := http.Post(ts.URL+"/v1/datasets", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// A skyline record has base rank 0, so the query cannot short-circuit
	// to an empty result; CTA must chew through thousands of hyperplanes.
	sresp, err := http.Get(ts.URL + "/v1/skyline?dataset=anti")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var sk skylineResponse
	if err := json.NewDecoder(sresp.Body).Decode(&sk); err != nil {
		t.Fatal(err)
	}
	if len(sk.IDs) == 0 {
		t.Fatal("empty skyline")
	}

	r2, rbody := postJSON(t, ts.URL+"/v1/kspr", queryRequest{
		Dataset: "anti", Focal: sk.IDs[0], K: 30, Algorithm: "cta", TimeoutMs: 1, NoCache: true,
	})
	if r2.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504 (%s)", r2.StatusCode, rbody)
	}
}

func TestApproxQuery(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	loadGenerated(t, ts, "ind", 200, 3, 9)
	resp, body := postJSON(t, ts.URL+"/v1/kspr", queryRequest{
		Dataset: "ind", Focal: 3, K: 5, Algorithm: "approx", Epsilon: 0.05,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var qr queryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if qr.Algorithm != "approx" || qr.Converged == nil {
		t.Fatalf("approx response missing fields: %+v", qr)
	}
}

func TestTopKSkylineImpact(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	loadGenerated(t, ts, "ind", 300, 3, 4)

	resp, body := postJSON(t, ts.URL+"/v1/topk", topkRequest{
		Dataset: "ind", Weights: []float64{0.5, 0.3, 0.2}, K: 10,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("topk status %d: %s", resp.StatusCode, body)
	}
	var tk topkResponse
	if err := json.Unmarshal(body, &tk); err != nil {
		t.Fatal(err)
	}
	if len(tk.Results) != 10 {
		t.Fatalf("topk returned %d results", len(tk.Results))
	}
	for i := 1; i < len(tk.Results); i++ {
		if tk.Results[i].Score > tk.Results[i-1].Score+1e-12 {
			t.Fatalf("topk scores not descending at %d", i)
		}
	}

	sresp, err := http.Get(ts.URL + "/v1/skyline?dataset=ind")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var sk skylineResponse
	if err := json.NewDecoder(sresp.Body).Decode(&sk); err != nil {
		t.Fatal(err)
	}
	if sk.Count == 0 || sk.Count != len(sk.IDs) {
		t.Fatalf("bad skyline response: %+v", sk)
	}

	// k-skyband is a superset of the skyline.
	bresp, err := http.Get(ts.URL + "/v1/skyline?dataset=ind&k=3")
	if err != nil {
		t.Fatal(err)
	}
	defer bresp.Body.Close()
	var band skylineResponse
	if err := json.NewDecoder(bresp.Body).Decode(&band); err != nil {
		t.Fatal(err)
	}
	if band.Count < sk.Count {
		t.Fatalf("3-skyband (%d) smaller than skyline (%d)", band.Count, sk.Count)
	}

	// Impact for a skyline record under uniform and focused densities.
	focal := sk.IDs[0]
	iresp, ibody := postJSON(t, ts.URL+"/v1/impact", impactRequest{
		Dataset: "ind", Focal: focal, K: 10, Samples: 4000,
	})
	if iresp.StatusCode != http.StatusOK {
		t.Fatalf("impact status %d: %s", iresp.StatusCode, ibody)
	}
	var imp impactResponse
	if err := json.Unmarshal(ibody, &imp); err != nil {
		t.Fatal(err)
	}
	if imp.Probability <= 0 || imp.Probability > 1 {
		t.Fatalf("impact probability %v out of (0, 1]", imp.Probability)
	}
	if imp.Density != "uniform" {
		t.Fatalf("density %q", imp.Density)
	}

	iresp2, ibody2 := postJSON(t, ts.URL+"/v1/impact", impactRequest{
		Dataset: "ind", Focal: focal, K: 10, Samples: 4000,
		Density: &densityReq{Name: "dirichlet", Alpha: []float64{2, 2, 2}},
	})
	if iresp2.StatusCode != http.StatusOK {
		t.Fatalf("dirichlet impact status %d: %s", iresp2.StatusCode, ibody2)
	}
	var imp2 impactResponse
	if err := json.Unmarshal(ibody2, &imp2); err != nil {
		t.Fatal(err)
	}
	if !imp2.Cached {
		t.Fatal("second impact call must reuse the cached kSPR result")
	}
}

func TestDatasetAdmin(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	info := loadGenerated(t, ts, "a", 60, 3, 1)
	if info.Records != 60 || info.Dims != 3 || info.Generation == 0 {
		t.Fatalf("bad load info: %+v", info)
	}

	// Reload bumps the generation.
	info2 := loadGenerated(t, ts, "a", 80, 3, 2)
	if info2.Generation <= info.Generation {
		t.Fatalf("generation did not advance: %d -> %d", info.Generation, info2.Generation)
	}
	if info2.Records != 80 {
		t.Fatalf("reload kept old data: %+v", info2)
	}

	// Inline CSV load.
	csv := "a1,a2\n0.1,0.9\n0.8,0.2\n0.5,0.5\n"
	resp, body := postJSON(t, ts.URL+"/v1/datasets", loadRequest{Name: "inline", CSV: csv})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("inline load status %d: %s", resp.StatusCode, body)
	}

	// Listing shows both, sorted.
	lresp, err := http.Get(ts.URL + "/v1/datasets")
	if err != nil {
		t.Fatal(err)
	}
	defer lresp.Body.Close()
	var list []DatasetInfo
	if err := json.NewDecoder(lresp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 2 || list[0].Name != "a" || list[1].Name != "inline" {
		t.Fatalf("bad listing: %+v", list)
	}

	// Unload.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/datasets/inline", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("unload status %d", dresp.StatusCode)
	}
	if _, qbody := postJSON(t, ts.URL+"/v1/kspr", queryRequest{Dataset: "inline", Focal: 0, K: 1}); !bytes.Contains(qbody, []byte("not found")) {
		t.Fatalf("query after unload: %s", qbody)
	}

	// Bad loads.
	for _, bad := range []string{
		`{"name":"x"}`,
		`{"name":"x","path":"p","csv":"c"}`,
		`{"name":"","csv":"a\n1\n"}`,
		`{"name":"x","generate":{"dist":"NOPE","n":10,"d":3}}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/datasets", "application/json", strings.NewReader(bad))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("load %s: status %d, want 400", bad, resp.StatusCode)
		}
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
}

// TestReloadUnderLoad hammers the query path from 32 goroutines while the
// dataset is reloaded underneath them; every query must finish cleanly on
// whichever snapshot it resolved (no panics, no 5xx), and the generation
// must advance. Run with -race this also verifies the registry/cache/pool
// synchronization.
func TestReloadUnderLoad(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 8, Queue: 256})
	loadGenerated(t, ts, "hot", 200, 3, 1)

	const (
		goroutines = 32
		perG       = 6
	)
	stop := make(chan struct{})
	var reloads sync.WaitGroup
	reloads.Add(1)
	go func() {
		defer reloads.Done()
		seed := int64(2)
		for {
			select {
			case <-stop:
				return
			default:
			}
			ds, err := dataset.Generate(dataset.Independent, 150+int(seed)%100, 3, seed)
			if err != nil {
				t.Error(err)
				return
			}
			if _, err := srv.Registry().Load("hot", ds, "reload"); err != nil {
				t.Error(err)
				return
			}
			seed++
			time.Sleep(time.Millisecond)
		}
	}()

	var wg sync.WaitGroup
	errs := make(chan string, goroutines*perG)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				switch (g + i) % 3 {
				case 0:
					resp, body := postJSON(t, ts.URL+"/v1/kspr", queryRequest{
						Dataset: "hot", Focal: (g*perG + i) % 150, K: 3, NoCache: i%2 == 0,
					})
					if resp.StatusCode != http.StatusOK {
						errs <- fmt.Sprintf("kspr g%d i%d: %d %s", g, i, resp.StatusCode, body)
					}
				case 1:
					resp, body := postJSON(t, ts.URL+"/v1/topk", topkRequest{
						Dataset: "hot", Weights: []float64{0.4, 0.4, 0.2}, K: 5,
					})
					if resp.StatusCode != http.StatusOK {
						errs <- fmt.Sprintf("topk g%d i%d: %d %s", g, i, resp.StatusCode, body)
					}
				default:
					resp, err := http.Get(ts.URL + "/v1/skyline?dataset=hot")
					if err != nil {
						errs <- err.Error()
						continue
					}
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						errs <- fmt.Sprintf("skyline g%d i%d: %d", g, i, resp.StatusCode)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	reloads.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}

	snap, ok := srv.Registry().Get("hot")
	if !ok {
		t.Fatal("dataset vanished")
	}
	if snap.Generation < 2 {
		t.Fatalf("generation never advanced: %d", snap.Generation)
	}
}

// TestGracefulShutdown verifies Close waits for queued work and that
// submissions after Close fail cleanly.
func TestGracefulShutdown(t *testing.T) {
	srv := NewServer(Config{Workers: 2})
	loadDirect(t, srv, "d", 100, 3, 1)

	snap, _ := srv.Registry().Get("d")
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func(i int) {
			_, _, err := srv.runKSPR(t.Context(), snap, queryRequest{Dataset: "d", Focal: i, K: 3, NoCache: true})
			done <- err
		}(i)
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}
	srv.Close()
	_, _, err := srv.runKSPR(t.Context(), snap, queryRequest{Dataset: "d", Focal: 0, K: 3, NoCache: true})
	if err != ErrPoolClosed {
		t.Fatalf("after Close: err = %v, want ErrPoolClosed", err)
	}
}

func loadDirect(t *testing.T, srv *Server, name string, n, d int, seed int64) {
	t.Helper()
	ds, err := dataset.Generate(dataset.Independent, n, d, seed)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Registry().Load(name, ds, "test"); err != nil {
		t.Fatal(err)
	}
}
