package server

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// FuzzDecodeMutateRequest fuzzes the :mutate body decoder across its
// three wire forms (JSON envelope, bare mutation object, NDJSON stream)
// — the one parser that accepts arbitrary client bytes ahead of a
// durable write. No input may panic; rejected bodies must carry an error
// status; accepted batches must convert through toMutation without
// panicking.
func FuzzDecodeMutateRequest(f *testing.F) {
	f.Add(`{"mutations":[{"op":"insert","values":[0.5,0.5]},{"op":"delete","id":7}]}`, false)
	f.Add(`{"op":"update","id":3,"values":[0.25,0.75],"label":"x"}`, false)
	f.Add("{\"op\":\"insert\",\"values\":[0.1,0.9]}\n{\"op\":\"update\",\"id\":2,\"values\":[0.3,0.7]}\n", true)
	f.Add(`{"mutations":[]}`, false)
	f.Add(`{"mutations":[{"op":"insert","unknown_field":1}]}`, false)
	f.Add("not json at all", true)
	f.Fuzz(func(t *testing.T, body string, ndjson bool) {
		srv := &Server{} // decodeMutateRequest touches no server state
		req := httptest.NewRequest(http.MethodPost, "/v1/datasets/fuzz:mutate", strings.NewReader(body))
		if ndjson {
			req.Header.Set("Content-Type", "application/x-ndjson")
		} else {
			req.Header.Set("Content-Type", "application/json")
		}
		rec := httptest.NewRecorder()
		ops, ok := srv.decodeMutateRequest(rec, req)
		if !ok {
			if rec.Code < 400 {
				t.Fatalf("decoder rejected the body but wrote status %d", rec.Code)
			}
			return
		}
		for i, op := range ops {
			_, _ = op.toMutation(i) // validation errors fine, panics are not
		}
	})
}
