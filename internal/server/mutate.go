// The dataset mutation endpoint and the incremental result-cache
// migration it drives. POST /v1/datasets/{name}:mutate applies one atomic
// mutation batch (single JSON body or NDJSON stream, one mutation per
// line), advances the dataset generation, and then — instead of merely
// orphaning every cached result of the old generation — classifies each
// cached kSPR result against the batch (kspr.MutationImpact) and carries
// the provably unaffected ones to the new generation's cache keys.
package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"

	kspr "repro"
	"repro/internal/obs"
)

// mutateOp is one wire-form mutation.
type mutateOp struct {
	// Op is insert, update, or delete.
	Op string `json:"op"`
	// ID is the stable option id (required for update/delete, forbidden
	// for insert — the store assigns insert ids).
	ID *int64 `json:"id,omitempty"`
	// Values is the attribute vector (insert/update).
	Values []float64 `json:"values,omitempty"`
	// Label optionally (re)labels the option (insert/update).
	Label string `json:"label,omitempty"`
}

// mutateRequest is the JSON envelope of a mutation batch.
type mutateRequest struct {
	Mutations []mutateOp `json:"mutations"`
}

// mutateResponse acknowledges an applied batch.
type mutateResponse struct {
	Dataset    string `json:"dataset"`
	Generation uint64 `json:"generation"`
	// StoreGeneration is the generation WAL recovery restores; Durable
	// whether the dataset is WAL-backed at all.
	StoreGeneration uint64 `json:"store_generation"`
	Durable         bool   `json:"durable,omitempty"`
	Records         int    `json:"records"`
	Applied         int    `json:"applied"`
	// IDs holds the stable option id each mutation addressed, aligned with
	// the batch (freshly assigned for inserts).
	IDs []int64 `json:"ids"`
	// CacheMigrated / CacheDropped report the incremental cache pass:
	// cached results proven unaffected and carried over versus orphaned.
	CacheMigrated int `json:"cache_migrated"`
	CacheDropped  int `json:"cache_dropped"`
}

// toMutation validates and converts one wire mutation.
func (m mutateOp) toMutation(i int) (kspr.Mutation, error) {
	switch strings.ToLower(m.Op) {
	case "insert":
		if m.ID != nil {
			return kspr.Mutation{}, fmt.Errorf("mutation %d: insert must not set an id (the store assigns them)", i)
		}
		return kspr.Insert(m.Values...), nil
	case "update":
		if m.ID == nil {
			return kspr.Mutation{}, fmt.Errorf("mutation %d: update needs an id", i)
		}
		return kspr.Update(*m.ID, m.Values...), nil
	case "delete":
		if m.ID == nil {
			return kspr.Mutation{}, fmt.Errorf("mutation %d: delete needs an id", i)
		}
		if len(m.Values) > 0 {
			return kspr.Mutation{}, fmt.Errorf("mutation %d: delete must not carry values", i)
		}
		return kspr.Delete(*m.ID), nil
	default:
		return kspr.Mutation{}, fmt.Errorf("mutation %d: unknown op %q (want insert, update, delete)", i, m.Op)
	}
}

// decodeMutateRequest reads a mutation batch in any of the three wire
// forms: a JSON envelope with a mutations array, a single bare JSON
// mutation object, or (Content-Type application/x-ndjson) one mutation
// per line. The batch always applies atomically regardless of form.
func (s *Server) decodeMutateRequest(w http.ResponseWriter, r *http.Request) ([]mutateOp, bool) {
	if strings.Contains(r.Header.Get("Content-Type"), "ndjson") {
		sc := bufio.NewScanner(http.MaxBytesReader(w, r.Body, 16<<20))
		sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
		var ops []mutateOp
		for sc.Scan() {
			line := bytes.TrimSpace(sc.Bytes())
			if len(line) == 0 {
				continue
			}
			dec := json.NewDecoder(bytes.NewReader(line))
			dec.DisallowUnknownFields()
			var op mutateOp
			if err := dec.Decode(&op); err != nil {
				writeError(w, http.StatusBadRequest, "invalid mutation line %d: %v", len(ops), err)
				return nil, false
			}
			ops = append(ops, op)
		}
		if err := sc.Err(); err != nil {
			writeError(w, http.StatusBadRequest, "reading ndjson body: %v", err)
			return nil, false
		}
		return ops, true
	}
	raw, err := readBody(w, r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading request body: %v", err)
		return nil, false
	}
	// Envelope form first, then the single bare-mutation form.
	var req mutateRequest
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err == nil && len(req.Mutations) > 0 {
		return req.Mutations, true
	}
	var op mutateOp
	dec = json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&op); err == nil && op.Op != "" {
		return []mutateOp{op}, true
	}
	writeError(w, http.StatusBadRequest,
		`invalid mutation body: want {"mutations":[...]}, a single {"op":...}, or an ndjson stream`)
	return nil, false
}

// readBody drains the (size-capped) request body.
func readBody(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	var buf bytes.Buffer
	_, err := buf.ReadFrom(http.MaxBytesReader(w, r.Body, 16<<20))
	return buf.Bytes(), err
}

// handleDatasetMutate serves POST /v1/datasets/{name}:mutate.
func (s *Server) handleDatasetMutate(w http.ResponseWriter, r *http.Request) {
	action := r.PathValue("action")
	name, ok := strings.CutSuffix(action, ":mutate")
	if !ok || name == "" {
		writeError(w, http.StatusNotFound, "unknown dataset action %q (want <name>:mutate)", action)
		return
	}
	if _, ok := s.registry.Get(name); !ok {
		writeError(w, http.StatusNotFound, "dataset %q not found", name)
		return
	}
	ops, ok := s.decodeMutateRequest(w, r)
	if !ok {
		return
	}
	if len(ops) == 0 {
		writeError(w, http.StatusBadRequest, "mutation batch is empty")
		return
	}
	muts := make([]kspr.Mutation, len(ops))
	labels := make(map[int]string)
	for i, op := range ops {
		m, err := op.toMutation(i)
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		muts[i] = m
		if op.Label != "" {
			labels[i] = op.Label
		}
	}
	old, cur, res, err := s.registry.Mutate(name, muts, labels)
	if err != nil {
		// Not-found races (unloaded between the pre-check and Mutate) are
		// 404; storage-side failures (WAL append/fsync — not applied, safe
		// to retry) are 500; everything else is input validation.
		switch {
		case errors.Is(err, ErrDatasetNotFound):
			writeError(w, http.StatusNotFound, "%v", err)
		case errors.Is(err, kspr.ErrStoreIO):
			writeError(w, http.StatusInternalServerError, "%v", err)
		default:
			writeError(w, http.StatusBadRequest, "%v", err)
		}
		return
	}
	reqInfoFrom(r.Context()).noteDataset(cur)
	s.journal.Append(obs.JournalEvent{
		Type:            obs.EventMutationBatch,
		Dataset:         cur.Name,
		Generation:      cur.Generation,
		StoreGeneration: cur.StoreGeneration,
		Detail:          map[string]any{"mutations": len(muts), "records": cur.DB.Len()},
	})
	migrated, dropped := s.migrateCache(old, cur, res.Deltas)
	s.journal.Append(obs.JournalEvent{
		Type:       obs.EventCacheMigration,
		Dataset:    cur.Name,
		Generation: cur.Generation,
		Detail:     map[string]any{"migrated": migrated, "dropped": dropped, "from_generation": old.Generation},
	})
	s.metrics.AddMutationBatch(len(muts), migrated, dropped)
	writeJSON(w, http.StatusOK, mutateResponse{
		Dataset:         cur.Name,
		Generation:      cur.Generation,
		StoreGeneration: cur.StoreGeneration,
		Durable:         cur.Durable,
		Records:         cur.DB.Len(),
		Applied:         len(muts),
		IDs:             res.IDs,
		CacheMigrated:   migrated,
		CacheDropped:    dropped,
	})
}

// migrateCache is the serving half of incremental kSPR maintenance: after
// a mutation batch moved the dataset from old to cur, every cached exact
// kSPR result of the old generation is classified against the batch's
// dominance facts, and the provably unaffected ones are re-inserted under
// the new generation's cache keys (with the focal's dense index remapped
// through its stable id). Affected or unmappable entries are dropped —
// i.e. simply left to age out under their old-generation keys, which no
// request will ever build again. Returns (migrated, dropped).
func (s *Server) migrateCache(old, cur *Snapshot, deltas []kspr.Delta) (int, int) {
	prefix := fmt.Sprintf("%s@%d|kspr|", old.Name, old.Generation)
	type hit struct{ cq *cachedQuery }
	var hits []hit
	s.cache.EachPrefix(prefix, func(key string, val any) {
		if cq, ok := val.(*cachedQuery); ok {
			hits = append(hits, hit{cq})
		}
	})
	if len(hits) == 0 {
		return 0, 0
	}
	mi := kspr.NewMutationImpact(old.DB, cur.DB, deltas)
	migrated, dropped := 0, 0
	for _, h := range hits {
		cq := h.cq
		res, ok := cq.raw.(*kspr.Result)
		if !ok {
			dropped++ // approximate results carry no exact region set
			continue
		}
		algo, approx, err := parseAlgorithm(cq.req.Algorithm)
		if err != nil || approx {
			dropped++
			continue
		}
		oldDense, newDense := -1, -1
		req2 := cq.req
		if cq.req.FocalVector == nil {
			oldDense = cq.req.Focal
			stable, ok := old.DB.StableID(oldDense)
			if !ok {
				dropped++
				continue
			}
			nd, ok := cur.DB.DenseIndex(stable)
			if !ok {
				dropped++ // the focal option was deleted
				continue
			}
			if !float64sEqual(old.DB.Record(oldDense), cur.DB.Record(nd)) {
				dropped++ // the focal option was repriced
				continue
			}
			newDense = nd
			req2.Focal = nd
		}
		if !mi.Unaffected(res.Focal, oldDense, newDense, cq.req.K, algo) {
			dropped++
			continue
		}
		space, err := parseSpace(req2.Space)
		if err != nil {
			dropped++
			continue
		}
		bounds, err := parseBounds(req2.Bounds)
		if err != nil {
			dropped++
			continue
		}
		eps := req2.Epsilon
		if eps <= 0 {
			eps = 0.01
		}
		resp2 := *cq.resp
		resp2.Generation = cur.Generation
		resp2.Focal = cq.resp.Focal
		if cq.req.FocalVector == nil {
			resp2.Focal = newDense
		}
		key2 := cacheKey(cur, req2, algo, false, space, bounds, eps)
		s.cache.Put(key2, &cachedQuery{req: req2, resp: &resp2, raw: cq.raw})
		migrated++
	}
	return migrated, dropped
}

// float64sEqual compares two attribute vectors exactly.
func float64sEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
