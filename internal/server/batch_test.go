package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"
)

// postNDJSON sends an application/x-ndjson batch body.
func postNDJSON(t *testing.T, url, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// readBatchLines drains an NDJSON batch stream into index-keyed lines.
func readBatchLines(t *testing.T, resp *http.Response) map[int]batchLine {
	t.Helper()
	defer resp.Body.Close()
	lines := map[int]batchLine{}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	for sc.Scan() {
		var line batchLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad ndjson line %q: %v", sc.Text(), err)
		}
		if _, dup := lines[line.Index]; dup {
			t.Fatalf("index %d reported twice", line.Index)
		}
		lines[line.Index] = line
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return lines
}

// TestBatchNDJSONInput: the streaming wire form — a header line and one
// item per line — answers every item, honours the envelope's default k,
// and supports focal vectors.
func TestBatchNDJSONInput(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	loadGenerated(t, ts, "ind", 250, 3, 5)

	body := `{"dataset":"ind","k":5,"algorithm":"p-cta"}
{"focal":7}
{"focal":21,"k":3}
{"focal_vector":[0.95,0.95,0.95],"k":2}
`
	resp := postNDJSON(t, ts.URL+"/v1/kspr:batch", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	lines := readBatchLines(t, resp)
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3", len(lines))
	}
	for i := 0; i < 3; i++ {
		if lines[i].Error != "" {
			t.Fatalf("item %d failed: %s", i, lines[i].Error)
		}
	}
	if lines[0].Result.K != 5 || lines[1].Result.K != 3 || lines[2].Result.K != 2 {
		t.Fatalf("k defaults wrong: %d %d %d",
			lines[0].Result.K, lines[1].Result.K, lines[2].Result.K)
	}
	if lines[2].Result.Focal != -1 {
		t.Fatalf("vector item focal = %d, want -1", lines[2].Result.Focal)
	}
	if lines[0].Result.Algorithm != "P-CTA" {
		t.Fatalf("algorithm %q", lines[0].Result.Algorithm)
	}
	// A vector dominating the whole dataset is top-1 everywhere.
	if len(lines[2].Result.Regions) == 0 {
		t.Fatal("dominating focal vector must have regions")
	}
}

// TestBatchMalformedNDJSONItem: a broken item line yields a per-item 400
// line at its index; the surrounding items still run.
func TestBatchMalformedNDJSONItem(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	loadGenerated(t, ts, "ind", 120, 3, 9)

	body := `{"dataset":"ind","k":4}
{"focal":3}
{"focal":: not json
{"focal":5,"k":0,"bogus_field":1}
{"focal":9,"k":-2}
{"focal":11}
`
	resp := postNDJSON(t, ts.URL+"/v1/kspr:batch", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d (per-item failures must not fail the envelope)", resp.StatusCode)
	}
	lines := readBatchLines(t, resp)
	if len(lines) != 5 {
		t.Fatalf("got %d lines, want 5", len(lines))
	}
	if lines[0].Error != "" || lines[4].Error != "" {
		t.Fatalf("healthy items failed: %q / %q", lines[0].Error, lines[4].Error)
	}
	for _, i := range []int{1, 2, 3} {
		if lines[i].Error == "" || lines[i].Status != http.StatusBadRequest {
			t.Fatalf("item %d: want a 400 error line, got %+v", i, lines[i])
		}
	}
}

// TestBatchCancellationMidStream: when the batch deadline expires while
// results are streaming, every remaining item settles with an error line
// (no hang, no dropped index) and the healthy prefix is preserved.
func TestBatchCancellationMidStream(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	// Anticorrelated data makes CTA slow; item 0 is trivial (dominated
	// focal), later items are expensive.
	body := `{"name":"anti","generate":{"dist":"ANTI","n":3000,"d":4,"seed":2}}`
	resp, err := http.Post(ts.URL+"/v1/datasets", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	var b strings.Builder
	b.WriteString(`{"dataset":"anti","k":10,"algorithm":"cta","timeout_ms":300}` + "\n")
	for i := 0; i < 8; i++ {
		fmt.Fprintf(&b, `{"focal":%d}`+"\n", i*11)
	}
	start := time.Now()
	r2 := postNDJSON(t, ts.URL+"/v1/kspr:batch", b.String())
	if r2.StatusCode != http.StatusOK {
		t.Fatalf("status %d", r2.StatusCode)
	}
	lines := readBatchLines(t, r2)
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("batch did not respect its deadline: took %v", elapsed)
	}
	if len(lines) != 8 {
		t.Fatalf("got %d lines, want 8 (every item must settle)", len(lines))
	}
	timedOut := 0
	for i := 0; i < 8; i++ {
		if lines[i].Error != "" {
			if lines[i].Status != http.StatusGatewayTimeout && lines[i].Status != http.StatusServiceUnavailable {
				t.Fatalf("item %d: unexpected status %d (%s)", i, lines[i].Status, lines[i].Error)
			}
			timedOut++
		}
	}
	if timedOut == 0 {
		t.Fatal("expected at least one item to hit the 300ms batch deadline")
	}
}

// TestBatchCPUBudgetExhausted429: a parallel batch against a fully-claimed
// CPU budget is shed with 429 + Retry-After instead of queueing or
// silently degrading to one core.
func TestBatchCPUBudgetExhausted429(t *testing.T) {
	srv, ts := newTestServer(t, Config{CPUSlots: 2, MaxParallelism: 8})
	loadGenerated(t, ts, "ind", 100, 3, 3)

	// Claim the whole budget, as a long-running parallel query would.
	if got := srv.cpu.Acquire(2); got != 2 {
		t.Fatalf("claimed %d slots, want 2", got)
	}
	defer srv.cpu.Release(2)

	body := `{"dataset":"ind","k":4,"parallelism":4}
{"focal":1}
{"focal":2}
`
	resp := postNDJSON(t, ts.URL+"/v1/kspr:batch", body)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 must carry Retry-After")
	}

	// A serial batch (no parallelism ask) is unaffected by the exhausted
	// budget.
	serial := postNDJSON(t, ts.URL+"/v1/kspr:batch", `{"dataset":"ind","k":4}`+"\n"+`{"focal":1}`+"\n")
	if serial.StatusCode != http.StatusOK {
		t.Fatalf("serial batch status %d, want 200", serial.StatusCode)
	}
	lines := readBatchLines(t, serial)
	if lines[0].Error != "" {
		t.Fatalf("serial batch failed: %s", lines[0].Error)
	}

	// Once the budget frees up, the same parallel batch goes through.
	srv.cpu.Release(2)
	defer srv.cpu.Acquire(2) // restore for the deferred Release above
	retry := postNDJSON(t, ts.URL+"/v1/kspr:batch", body)
	if retry.StatusCode != http.StatusOK {
		t.Fatalf("retry status %d, want 200", retry.StatusCode)
	}
	readBatchLines(t, retry)
}

// TestBatchSharesCacheWithSingleQueries: a batch item and the equivalent
// single query hit the same cache entry, in both directions.
func TestBatchSharesCacheWithSingleQueries(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	loadGenerated(t, ts, "ind", 150, 3, 7)

	// Prime via single query.
	resp, body := postJSON(t, ts.URL+"/v1/kspr", queryRequest{Dataset: "ind", Focal: 4, K: 5})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("prime status %d: %s", resp.StatusCode, body)
	}

	lines := readBatchLines(t, postNDJSON(t, ts.URL+"/v1/kspr:batch",
		`{"dataset":"ind","k":5}`+"\n"+`{"focal":4}`+"\n"+`{"focal":8}`+"\n"))
	if lines[0].Error != "" || lines[1].Error != "" {
		t.Fatalf("batch failed: %+v", lines)
	}
	if !lines[0].Result.Cached {
		t.Fatal("batch item primed by a single query must be served from cache")
	}
	if lines[1].Result.Cached {
		t.Fatal("unprimed batch item must not claim to be cached")
	}

	// And the batch-computed item primes the single-query path.
	resp, body = postJSON(t, ts.URL+"/v1/kspr", queryRequest{Dataset: "ind", Focal: 8, K: 5})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var qr queryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if !qr.Cached {
		t.Fatal("single query primed by a batch item must be served from cache")
	}
}

// TestBatchMatchesSingleEndpoint: batch lines carry the same regions as
// the equivalent /v1/kspr calls.
func TestBatchMatchesSingleEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	loadGenerated(t, ts, "ind", 200, 3, 11)

	lines := readBatchLines(t, postNDJSON(t, ts.URL+"/v1/kspr:batch",
		`{"dataset":"ind","k":6,"no_cache":true}`+"\n"+`{"focal":0}`+"\n"+`{"focal":13}`+"\n"))
	for i := 0; i < 2; i++ {
		if lines[i].Error != "" {
			t.Fatalf("item %d: %s", i, lines[i].Error)
		}
	}
	for i, focal := range []int{0, 13} {
		resp, body := postJSON(t, ts.URL+"/v1/kspr",
			queryRequest{Dataset: "ind", Focal: focal, K: 6, NoCache: true})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("single status %d", resp.StatusCode)
		}
		var qr queryResponse
		if err := json.Unmarshal(body, &qr); err != nil {
			t.Fatal(err)
		}
		if len(qr.Regions) != len(lines[i].Result.Regions) {
			t.Fatalf("focal %d: batch %d regions, single %d",
				focal, len(lines[i].Result.Regions), len(qr.Regions))
		}
		for j := range qr.Regions {
			if qr.Regions[j].Rank != lines[i].Result.Regions[j].Rank {
				t.Fatalf("focal %d region %d rank differs", focal, j)
			}
		}
	}
}

// TestBatchEnvelopeErrors covers whole-request rejections of the NDJSON
// form.
func TestBatchEnvelopeErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBatch: 4})
	loadGenerated(t, ts, "ind", 50, 3, 1)

	cases := []struct {
		name, body string
		status     int
	}{
		{"bad header", "not json\n{\"focal\":1}\n", http.StatusBadRequest},
		{"inline queries in ndjson header",
			`{"dataset":"ind","queries":[{"focal":1,"k":2}]}` + "\n", http.StatusBadRequest},
		{"empty body", "", http.StatusBadRequest},
		{"no items", `{"dataset":"ind","k":3}` + "\n", http.StatusBadRequest},
		{"unknown dataset", `{"dataset":"nope","k":3}` + "\n" + `{"focal":1}` + "\n", http.StatusNotFound},
		{"bad algorithm", `{"dataset":"ind","k":3,"algorithm":"zap"}` + "\n" + `{"focal":1}` + "\n", http.StatusBadRequest},
		{"oversize", `{"dataset":"ind","k":2}` + "\n" +
			strings.Repeat(`{"focal":1}`+"\n", 5), http.StatusBadRequest},
	}
	for _, c := range cases {
		resp := postNDJSON(t, ts.URL+"/v1/kspr:batch", c.body)
		resp.Body.Close()
		if resp.StatusCode != c.status {
			t.Errorf("%s: status %d, want %d", c.name, resp.StatusCode, c.status)
		}
	}
}

// TestBatchApprox: approx batches fan out per item (no shared-work pass),
// reject the original space like the single-query path, and never consume
// CPU-budget slots.
func TestBatchApprox(t *testing.T) {
	srv, ts := newTestServer(t, Config{CPUSlots: 2, MaxParallelism: 8})
	loadGenerated(t, ts, "ind", 150, 3, 7)

	resp := postNDJSON(t, ts.URL+"/v1/kspr:batch",
		`{"dataset":"ind","k":4,"algorithm":"approx","space":"original"}`+"\n"+`{"focal":1}`+"\n")
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("approx+original: status %d, want 400", resp.StatusCode)
	}

	lines := readBatchLines(t, postNDJSON(t, ts.URL+"/v1/kspr:batch",
		`{"dataset":"ind","k":4,"algorithm":"approx","parallelism":4}`+"\n"+`{"focal":1}`+"\n"+`{"focal":4}`+"\n"))
	for i := 0; i < 2; i++ {
		if lines[i].Error != "" {
			t.Fatalf("approx item %d: %s", i, lines[i].Error)
		}
		if lines[i].Result.Algorithm != "approx" {
			t.Fatalf("approx item %d reports algorithm %q", i, lines[i].Result.Algorithm)
		}
	}
	if used := srv.cpu.InUse(); used != 0 {
		t.Fatalf("approx batch leaked %d CPU-budget slots", used)
	}
}

// TestBatchItemTimeout: item_timeout_ms bounds each item individually —
// a batch of expensive items over a tiny per-item budget settles every
// line with 504 while the envelope (with a generous batch deadline)
// stays 200.
func TestBatchItemTimeout(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := `{"name":"anti2","generate":{"dist":"ANTI","n":3000,"d":4,"seed":4}}`
	resp, err := http.Post(ts.URL+"/v1/datasets", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	var b bytes.Buffer
	b.WriteString(`{"dataset":"anti2","k":10,"algorithm":"cta","timeout_ms":30000,"item_timeout_ms":50,"no_cache":true}` + "\n")
	for i := 0; i < 3; i++ {
		fmt.Fprintf(&b, `{"focal":%d}`+"\n", 500+i)
	}
	r2 := postNDJSON(t, ts.URL+"/v1/kspr:batch", b.String())
	if r2.StatusCode != http.StatusOK {
		t.Fatalf("status %d", r2.StatusCode)
	}
	lines := readBatchLines(t, r2)
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3", len(lines))
	}
	for i := 0; i < 3; i++ {
		// Dominated focals finish instantly (fine); expensive ones must
		// 504 from their per-item budget rather than running unbounded.
		if lines[i].Error != "" && lines[i].Status != http.StatusGatewayTimeout {
			t.Fatalf("item %d: status %d (%s), want 504", i, lines[i].Status, lines[i].Error)
		}
	}
}
