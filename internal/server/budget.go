package server

import (
	"errors"
	"sync/atomic"
)

// ErrCPUBudgetExhausted is returned by AcquireRequired when a request asks
// for engine parallelism while every extra CPU slot is claimed. Handlers
// map it to 429 Too Many Requests so heavy callers back off instead of
// silently degrading (or blocking) a large batch to a single core.
var ErrCPUBudgetExhausted = errors.New("server: cpu budget exhausted, retry later")

// CPUBudget is the shared, lock-free budget of extra CPU slots available
// to parallel queries. Every running query implicitly owns one slot (the
// pool worker executing it); a query that wants engine parallelism p tries
// to acquire p-1 extra slots and gracefully degrades to whatever is free,
// so the service's total expansion concurrency never exceeds the worker
// count plus the budget, no matter what individual requests ask for.
type CPUBudget struct {
	slots int64
	avail atomic.Int64
}

// NewCPUBudget returns a budget of n extra slots (n < 0 is treated as 0,
// i.e. every query runs serially on its worker).
func NewCPUBudget(n int) *CPUBudget {
	if n < 0 {
		n = 0
	}
	b := &CPUBudget{slots: int64(n)}
	b.avail.Store(int64(n))
	return b
}

// Acquire claims up to n extra slots without blocking and returns how many
// were granted (possibly 0). The caller must Release exactly that many.
func (b *CPUBudget) Acquire(n int) int {
	if n <= 0 {
		return 0
	}
	for {
		cur := b.avail.Load()
		if cur <= 0 {
			return 0
		}
		take := int64(n)
		if take > cur {
			take = cur
		}
		if b.avail.CompareAndSwap(cur, cur-take) {
			return int(take)
		}
	}
}

// AcquireRequired claims up to n extra slots like Acquire, but fails with
// ErrCPUBudgetExhausted instead of granting zero when the budget HAS slots
// and they are all in use. A zero-slot budget (serial-only server) still
// grants 0 without error — waiting would never help there, so callers
// degrade to their one implicit worker slot. Never blocks.
func (b *CPUBudget) AcquireRequired(n int) (int, error) {
	if n <= 0 || b.slots == 0 {
		return 0, nil
	}
	granted := b.Acquire(n)
	if granted == 0 {
		return 0, ErrCPUBudgetExhausted
	}
	return granted, nil
}

// Release returns n slots claimed by Acquire.
func (b *CPUBudget) Release(n int) {
	if n > 0 {
		b.avail.Add(int64(n))
	}
}

// Slots reports the budget's size.
func (b *CPUBudget) Slots() int { return int(b.slots) }

// InUse reports how many extra slots are currently claimed.
func (b *CPUBudget) InUse() int { return int(b.slots - b.avail.Load()) }

// CPUStats is the /metrics view of the parallelism budget.
type CPUStats struct {
	// ExtraSlots is the budget size; InUse how many slots in-flight
	// parallel queries currently hold.
	ExtraSlots int `json:"extra_slots"`
	InUse      int `json:"in_use"`
}
