package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	kspr "repro"
)

func postMutate(t *testing.T, ts *httptest.Server, name, body string) (int, mutateResponse) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/datasets/"+name+":mutate", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("mutate: %v", err)
	}
	defer resp.Body.Close()
	var mr mutateResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
			t.Fatalf("decode mutate response: %v", err)
		}
	}
	return resp.StatusCode, mr
}

func TestMutateEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	info := loadGenerated(t, ts, "live", 200, 3, 5)

	// Single bare mutation.
	code, mr := postMutate(t, ts, "live", `{"op":"insert","values":[0.9,0.8,0.95],"label":"newbie"}`)
	if code != http.StatusOK {
		t.Fatalf("single mutate status %d", code)
	}
	if mr.Records != 201 || mr.Applied != 1 || mr.StoreGeneration != 2 {
		t.Fatalf("mutate response %+v", mr)
	}
	if mr.Generation <= info.Generation {
		t.Fatalf("generation did not advance: %d -> %d", info.Generation, mr.Generation)
	}
	newID := mr.IDs[0]

	// Envelope batch: update + delete, atomic.
	code, mr = postMutate(t, ts, "live",
		fmt.Sprintf(`{"mutations":[{"op":"update","id":%d,"values":[0.5,0.5,0.5]},{"op":"delete","id":3}]}`, newID))
	if code != http.StatusOK {
		t.Fatalf("batch mutate status %d", code)
	}
	if mr.Records != 200 || mr.Applied != 2 {
		t.Fatalf("batch response %+v", mr)
	}

	// Atomicity: a half-bad batch changes nothing.
	before := mr.StoreGeneration
	code, _ = postMutate(t, ts, "live",
		`{"mutations":[{"op":"insert","values":[0.1,0.1,0.1]},{"op":"delete","id":999999}]}`)
	if code != http.StatusBadRequest {
		t.Fatalf("half-bad batch status %d", code)
	}
	resp, err := http.Get(ts.URL + "/v1/datasets")
	if err != nil {
		t.Fatal(err)
	}
	var infos []DatasetInfo
	json.NewDecoder(resp.Body).Decode(&infos)
	resp.Body.Close()
	if infos[0].StoreGeneration != before || infos[0].Records != 200 {
		t.Fatalf("failed batch mutated dataset: %+v", infos[0])
	}

	// Validation errors.
	for _, bad := range []string{
		`{"op":"insert","id":7,"values":[0.1,0.2,0.3]}`,
		`{"op":"update","values":[0.1,0.2,0.3]}`,
		`{"op":"delete"}`,
		`{"op":"upsert","values":[0.1,0.2,0.3]}`,
		`{"op":"insert","values":[0.1]}`,
		`{"mutations":[]}`,
		`{"nonsense":1}`,
	} {
		if code, _ := postMutate(t, ts, "live", bad); code != http.StatusBadRequest {
			t.Fatalf("bad body %s: status %d", bad, code)
		}
	}

	// Unknown dataset and malformed action.
	if code, _ := postMutate(t, ts, "ghost", `{"op":"delete","id":1}`); code != http.StatusNotFound {
		t.Fatalf("ghost dataset status %d", code)
	}
	resp, err = http.Post(ts.URL+"/v1/datasets/live:obliterate", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown action status %d", resp.StatusCode)
	}
}

func TestMutateNDJSON(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	loadGenerated(t, ts, "live", 100, 3, 5)
	body := `{"op":"insert","values":[0.9,0.9,0.9]}
{"op":"insert","values":[0.8,0.8,0.8],"label":"b"}
{"op":"delete","id":0}
`
	resp, err := http.Post(ts.URL+"/v1/datasets/live:mutate", "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ndjson mutate status %d", resp.StatusCode)
	}
	var mr mutateResponse
	if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
		t.Fatal(err)
	}
	if mr.Applied != 3 || mr.Records != 101 || mr.StoreGeneration != 2 {
		t.Fatalf("ndjson response %+v", mr)
	}
}

// TestMutationInvalidatesQueries is the cache-generation regression test:
// a cached kSPR answer must never survive a mutation that changes it. The
// focal gets a new dominator inserted (changing its result), so the
// post-mutation query must differ — if the result cache served the old
// generation's entry, it would not.
func TestMutationInvalidatesQueries(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	loadGenerated(t, ts, "live", 150, 3, 5)

	snap, _ := srv.Registry().Get("live")
	band := snap.DB.KSkyband(3)
	focal := band[0]

	q := queryRequest{Dataset: "live", Focal: focal, K: 3}
	resp, body := postJSON(t, ts.URL+"/v1/kspr", q)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status %d: %s", resp.StatusCode, body)
	}
	var before queryResponse
	json.Unmarshal(body, &before)
	// Second identical query: served from cache.
	resp, body = postJSON(t, ts.URL+"/v1/kspr", q)
	var cachedResp queryResponse
	json.Unmarshal(body, &cachedResp)
	if !cachedResp.Cached {
		t.Fatal("second query not cached")
	}

	// Insert K records dominating the focal: it is beaten everywhere, so
	// every result region dies.
	fv := snap.DB.Record(focal)
	dom := fmt.Sprintf(`{"mutations":[{"op":"insert","values":[%g,%g,%g]},{"op":"insert","values":[%g,%g,%g]},{"op":"insert","values":[%g,%g,%g]}]}`,
		fv[0]+0.01, fv[1]+0.01, fv[2]+0.01,
		fv[0]+0.02, fv[1]+0.01, fv[2]+0.01,
		fv[0]+0.01, fv[1]+0.02, fv[2]+0.01)
	if code, _ := postMutate(t, ts, "live", dom); code != http.StatusOK {
		t.Fatalf("mutate status %d", code)
	}

	resp, body = postJSON(t, ts.URL+"/v1/kspr", q)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-mutation query status %d: %s", resp.StatusCode, body)
	}
	var after queryResponse
	json.Unmarshal(body, &after)
	if after.Cached {
		t.Fatal("post-mutation query served from the stale cache")
	}
	if after.Generation == before.Generation {
		t.Fatal("generation did not change in the response")
	}
	if len(after.Regions) != 0 {
		t.Fatalf("dominated focal still has %d regions; stale result", len(after.Regions))
	}
}

// TestMutationMigratesUnaffectedCache proves the incremental serving win:
// a mutation classified irrelevant for a cached focal carries the cached
// entry to the new generation — the follow-up query is a cache hit, not a
// recompute — while stale old-generation keys never resurface.
func TestMutationMigratesUnaffectedCache(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	loadGenerated(t, ts, "live", 150, 3, 5)

	snap, _ := srv.Registry().Get("live")
	band := snap.DB.KSkyband(3)
	focal := band[len(band)/2]

	q := queryRequest{Dataset: "live", Focal: focal, K: 3}
	resp, body := postJSON(t, ts.URL+"/v1/kspr", q)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status %d: %s", resp.StatusCode, body)
	}
	var before queryResponse
	json.Unmarshal(body, &before)

	// A deep-interior insert cannot affect any focal's regions.
	code, mr := postMutate(t, ts, "live", `{"op":"insert","values":[0.01,0.01,0.02]}`)
	if code != http.StatusOK {
		t.Fatalf("mutate status %d", code)
	}
	if mr.CacheMigrated == 0 {
		t.Fatalf("no cache entries migrated: %+v", mr)
	}

	resp, body = postJSON(t, ts.URL+"/v1/kspr", q)
	var after queryResponse
	json.Unmarshal(body, &after)
	if !after.Cached {
		t.Fatal("migrated entry not served as a cache hit")
	}
	if after.Generation != mr.Generation {
		t.Fatalf("migrated entry generation %d, want %d", after.Generation, mr.Generation)
	}
	if len(after.Regions) != len(before.Regions) {
		t.Fatalf("migrated regions %d != original %d", len(after.Regions), len(before.Regions))
	}

	// Cross-check against a cold run on the mutated dataset.
	live, _ := srv.Registry().Live("live")
	cold, err := live.KSPR(after.Focal, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(cold.Regions) != len(after.Regions) {
		t.Fatalf("migrated cache lies: %d regions cached, %d cold", len(after.Regions), len(cold.Regions))
	}
}

// TestMutateDurableStore exercises the full durable path: a store-backed
// server, mutations, then a fresh server over the same directory
// recovering the exact pre-crash generation.
func TestMutateDurableStore(t *testing.T) {
	dir := t.TempDir()
	_, ts := newTestServer(t, Config{StoreDir: dir})
	loadGenerated(t, ts, "live", 80, 3, 5)

	for i := 0; i < 5; i++ {
		if code, _ := postMutate(t, ts, "live", `{"op":"insert","values":[0.3,0.4,0.5]}`); code != http.StatusOK {
			t.Fatalf("mutate %d failed", i)
		}
	}
	code, mr := postMutate(t, ts, "live", `{"op":"delete","id":0}`)
	if code != http.StatusOK {
		t.Fatal("delete failed")
	}
	wantGen, wantRecords := mr.StoreGeneration, mr.Records

	// "Crash": a new server over the same store dir.
	srv2 := NewServer(Config{StoreDir: dir})
	defer srv2.Close()
	snaps, err := srv2.Registry().Recover()
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if len(snaps) != 1 || snaps[0].Name != "live" {
		t.Fatalf("recovered %v", snaps)
	}
	if snaps[0].StoreGeneration != wantGen {
		t.Fatalf("recovered store generation %d, want %d", snaps[0].StoreGeneration, wantGen)
	}
	if snaps[0].DB.Len() != wantRecords {
		t.Fatalf("recovered %d records, want %d", snaps[0].DB.Len(), wantRecords)
	}
	if len(snaps[0].Dataset.Attributes) != 3 {
		t.Fatalf("recovered attributes %v", snaps[0].Dataset.Attributes)
	}
}

// TestRegistryHotReloadRace hammers Load and Mutate while queries run,
// asserting generation monotonicity and that every resolved snapshot is
// internally consistent (never torn). Run under -race in CI.
func TestRegistryHotReloadRace(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	loadGenerated(t, ts, "hot", 120, 3, 1)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, 64)

	// Writer 1: hot reloads with alternating seeds and sizes.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			body := fmt.Sprintf(`{"name":"hot","generate":{"dist":"IND","n":%d,"d":3,"seed":%d}}`, 100+i%40, i)
			resp, err := http.Post(ts.URL+"/v1/datasets", "application/json", strings.NewReader(body))
			if err != nil {
				errs <- err
				return
			}
			resp.Body.Close()
		}
	}()
	// Writer 2: mutation stream.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			live, ok := srv.Registry().Live("hot")
			if !ok {
				continue
			}
			// Races with reloads are expected (ids vanish); only the
			// server must stay consistent, not every mutation succeed.
			_, _ = live.Apply(kspr.Insert(0.5, 0.5, 0.5))
			_ = i
		}
	}()
	// Readers: resolve snapshots, check monotone generations and
	// untorn state.
	var lastGen uint64
	var genMu sync.Mutex
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap, ok := srv.Registry().Get("hot")
				if !ok {
					continue
				}
				genMu.Lock()
				if snap.Generation < lastGen {
					errs <- fmt.Errorf("generation went backwards: %d after %d", snap.Generation, lastGen)
				} else {
					lastGen = snap.Generation
				}
				genMu.Unlock()
				// Torn-snapshot check: the frozen DB must agree with
				// itself — Len matches the index, and a query on it works
				// against the exact pinned records.
				n := snap.DB.Len()
				if n == 0 {
					errs <- fmt.Errorf("empty snapshot installed")
					continue
				}
				if _, err := snap.DB.KSPR(n/2, 2); err != nil {
					errs <- fmt.Errorf("query on snapshot: %v", err)
				}
				if snap.DB.Len() != n {
					errs <- fmt.Errorf("snapshot length changed underneath: %d -> %d", n, snap.DB.Len())
				}
			}
		}()
	}

	for i := 0; i < 40; i++ {
		snap, ok := srv.Registry().Get("hot")
		if !ok {
			continue
		}
		_, _ = snap.DB.KSPR(i%snap.DB.Len(), 2)
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestLabelsFollowStableIDs loads a labeled dataset, mutates it, and
// checks labels stay attached to their options (not their shifting dense
// indexes), including on durable recovery.
func TestLabelsFollowStableIDs(t *testing.T) {
	dir := t.TempDir()
	csv := "label,value,service,ambiance\nentrecote,0.3,0.8,0.8\nbeirut,0.9,0.4,0.4\ncoyote,0.8,0.3,0.4\nbraceria,0.4,0.3,0.6\nkyma,0.5,0.5,0.7\n"
	csvPath := filepath.Join(dir, "r.csv")
	if err := os.WriteFile(csvPath, []byte(csv), 0o644); err != nil {
		t.Fatal(err)
	}
	storeDir := filepath.Join(dir, "stores")
	srv, ts := newTestServer(t, Config{StoreDir: storeDir})
	if !srv.Registry().Durable() {
		t.Fatal("store-backed registry not durable")
	}
	if _, err := srv.Registry().LoadCSV("rest", csvPath); err != nil {
		t.Fatalf("LoadCSV: %v", err)
	}

	// Delete the first record and insert a labeled one.
	code, _ := postMutate(t, ts, "rest",
		`{"mutations":[{"op":"delete","id":0},{"op":"insert","values":[0.6,0.6,0.6],"label":"newcomer"}]}`)
	if code != http.StatusOK {
		t.Fatalf("mutate status %d", code)
	}
	snap, _ := srv.Registry().Get("rest")
	labels := snap.Dataset.Labels
	if len(labels) != 5 {
		t.Fatalf("labels %v", labels)
	}
	if labels[0] != "beirut" || labels[len(labels)-1] != "newcomer" {
		t.Fatalf("labels misaligned after delete+insert: %v", labels)
	}

	// Recovery keeps attributes and labels via the meta sidecar.
	srv2 := NewServer(Config{StoreDir: storeDir})
	defer srv2.Close()
	snaps, err := srv2.Registry().Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 1 {
		t.Fatalf("recovered %d datasets", len(snaps))
	}
	if got := snaps[0].Dataset.Attributes; len(got) != 3 || got[0] != "value" {
		t.Fatalf("recovered attributes %v", got)
	}
	if got := snaps[0].Dataset.Labels; len(got) != 5 || got[0] != "beirut" || got[4] != "newcomer" {
		t.Fatalf("recovered labels %v", got)
	}
}
