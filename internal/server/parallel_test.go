package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"runtime"
	"sync"
	"testing"

	"repro/internal/dataset"
)

// TestParallelismBudgetAccounting exercises the lock-free CPU budget
// directly: grants never exceed the pool, partial grants degrade
// gracefully, and releases restore capacity.
func TestParallelismBudgetAccounting(t *testing.T) {
	b := NewCPUBudget(3)
	if got := b.Acquire(2); got != 2 {
		t.Fatalf("first acquire granted %d, want 2", got)
	}
	if got := b.Acquire(5); got != 1 {
		t.Fatalf("over-ask granted %d, want the remaining 1", got)
	}
	if got := b.Acquire(1); got != 0 {
		t.Fatalf("exhausted budget granted %d, want 0", got)
	}
	if b.InUse() != 3 {
		t.Fatalf("InUse = %d, want 3", b.InUse())
	}
	b.Release(3)
	if b.InUse() != 0 || b.Slots() != 3 {
		t.Fatalf("after release: in use %d, slots %d", b.InUse(), b.Slots())
	}
	// Concurrent acquire/release must conserve slots.
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				n := b.Acquire(2)
				b.Release(n)
			}
		}()
	}
	wg.Wait()
	if b.InUse() != 0 {
		t.Fatalf("slots leaked: in use %d after all releases", b.InUse())
	}
}

// TestParallelQueryMatchesSerialOverHTTP asserts the serving path keeps the
// engine's determinism guarantee: the same query answered serially and with
// a parallelism grant returns identical regions.
func TestParallelQueryMatchesSerialOverHTTP(t *testing.T) {
	// CPUSlots is forced high so the grant is real even on a 1-CPU runner.
	_, ts := newTestServer(t, Config{Workers: 2, MaxParallelism: 8, CPUSlots: 8, CacheCapacity: 1})
	loadGenerated(t, ts, "ind", 400, 4, 11)

	run := func(parallelism int) queryResponse {
		resp, body := postJSON(t, ts.URL+"/v1/kspr", queryRequest{
			Dataset: "ind", Focal: 17, K: 6, Parallelism: parallelism, NoCache: true,
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
		var qr queryResponse
		if err := json.Unmarshal(body, &qr); err != nil {
			t.Fatalf("decode: %v", err)
		}
		return qr
	}
	serial := run(1)
	parallel := run(8)
	if parallel.Stats.Parallelism != 8 {
		t.Fatalf("parallel run reports parallelism %d, want the full grant of 8", parallel.Stats.Parallelism)
	}
	if len(serial.Regions) != len(parallel.Regions) {
		t.Fatalf("region counts differ: %d serial, %d parallel", len(serial.Regions), len(parallel.Regions))
	}
	for i := range serial.Regions {
		s, p := serial.Regions[i], parallel.Regions[i]
		if s.Rank != p.Rank || len(s.Witness) != len(p.Witness) {
			t.Fatalf("region %d differs: %+v vs %+v", i, s, p)
		}
		for j := range s.Witness {
			if s.Witness[j] != p.Witness[j] {
				t.Fatalf("region %d witness differs at %d", i, j)
			}
		}
	}
}

// TestParallelQueriesUnderReload is the race-detector stress for the whole
// serving stack: concurrent parallel queries (engine parallelism > 1)
// against a dataset that is being hot-reloaded under them. Every query must
// finish cleanly on the snapshot it resolved — reloads must never disturb
// in-flight parallel expansion.
func TestParallelQueriesUnderReload(t *testing.T) {
	srv, ts := newTestServer(t, Config{
		Workers: 4, MaxParallelism: 6, CPUSlots: 8, CacheCapacity: 1,
	})
	loadGenerated(t, ts, "hot", 250, 4, 3)

	const queriers = 4
	const queriesEach = 6
	const reloads = 10
	var wg sync.WaitGroup
	errc := make(chan error, queriers*queriesEach+reloads)

	// Everything below runs on spawned goroutines, where t.Fatal is off
	// limits: failures are routed through errc and raised at the end.
	for g := 0; g < queriers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < queriesEach; i++ {
				raw, err := json.Marshal(queryRequest{
					Dataset: "hot", Focal: (g*queriesEach + i) % 250, K: 5,
					Parallelism: 6, NoCache: true, NoGeometry: true,
				})
				if err != nil {
					errc <- err
					return
				}
				resp, err := http.Post(ts.URL+"/v1/kspr", "application/json", bytes.NewReader(raw))
				if err != nil {
					errc <- err
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errc <- &httpError{status: resp.StatusCode, body: string(body)}
					return
				}
			}
		}(g)
	}

	// Reload the dataset continuously while the queries run, alternating
	// sizes so every reload builds a genuinely different snapshot.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < reloads; i++ {
			n := 200 + 50*(i%2)
			ds, err := dataset.Generate(dataset.Independent, n, 4, int64(i))
			if err != nil {
				errc <- err
				return
			}
			if _, err := srv.Registry().Load("hot", ds, "reload"); err != nil {
				errc <- err
				return
			}
		}
	}()

	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	if runtime.NumGoroutine() > 200 {
		t.Fatalf("goroutine leak suspected: %d goroutines live", runtime.NumGoroutine())
	}
}

type httpError struct {
	status int
	body   string
}

func (e *httpError) Error() string { return "unexpected status " + e.body }
