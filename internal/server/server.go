package server

import (
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	kspr "repro"
	"repro/internal/obs"
)

// Config tunes the service. The zero value is usable: NewServer fills in
// the defaults below.
type Config struct {
	// Workers is the worker-pool size (default 4); Queue its backlog
	// (default 64). Together they bound the query concurrency and memory.
	Workers int
	Queue   int
	// CacheShards / CacheCapacity size the result cache (default 8 x 1024
	// total entries). CacheCapacity <= 0 keeps the default; use a
	// one-entry cache to effectively disable caching in tests.
	CacheShards   int
	CacheCapacity int
	// DefaultTimeout bounds queries that do not ask for a deadline;
	// MaxTimeout caps what they may ask for.
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// MaxBatch caps the number of queries a single batch request may carry.
	MaxBatch int
	// MaxParallelism caps the engine parallelism a single request may ask
	// for via its "parallelism" field (default: GOMAXPROCS). Requests
	// never get more than the shared CPU budget has free, so raising this
	// does not unbound total CPU.
	MaxParallelism int
	// CPUSlots sizes the shared budget of extra CPU slots parallel queries
	// draw from; total expansion concurrency stays within Workers +
	// CPUSlots. Default: max(0, GOMAXPROCS - Workers), i.e. parallel
	// queries may use cores the worker pool leaves idle. Set -1 to force a
	// zero budget (every query serial).
	CPUSlots int
	// StoreDir, when non-empty, makes every dataset durable: each name
	// gets a WAL-backed store under StoreDir/<name>, mutations are
	// WAL-appended before they are acknowledged, and startup recovery
	// (Registry.Recover) restores the pre-crash generations. Empty keeps
	// datasets in memory (still mutable, not durable).
	StoreDir string
	// WALSync fsyncs the WAL on every mutation batch (see kspr.WithWALSync);
	// SnapshotEvery sets the store snapshot cadence in batches (0 =
	// library default, negative disables automatic snapshots).
	WALSync       bool
	SnapshotEvery int
	// Logger receives structured request logs (Debug per request) and the
	// slow-query log (Warn). nil disables request logging entirely — the
	// default, and what most tests want.
	Logger *slog.Logger
	// SlowQuery is the slow-query-log threshold: requests at least this
	// slow are logged at Warn with their engine phase breakdown (every
	// request gets a trace when the threshold is set, so the breakdown is
	// available without ?debug=trace). <= 0 disables the slow-query log.
	SlowQuery time.Duration
	// FlightCapacity sizes the flight recorder's wide-event ring (0 =
	// obs.DefaultFlightCapacity; negative disables the recorder entirely).
	// The recorder is otherwise always on: it keeps all errors and 429s,
	// everything at or past the slow-query threshold (or 500ms when no
	// threshold is set), and a per-endpoint sample of normal traffic, all
	// readable at GET /v1/debug:flight.
	FlightCapacity int
	// FlightSampleEvery captures one in this many ordinary (non-error,
	// non-slow) requests per endpoint (0 = obs.DefaultFlightSampleEvery;
	// negative disables normal-traffic sampling, keeping only errors and
	// slow requests).
	FlightSampleEvery int
	// BlackBoxDir, when non-empty, arms the crash black box: a handler
	// panic (and, in ksprd, SIGQUIT) dumps the flight ring, the event
	// journal, and a metrics snapshot to one JSON bundle under this
	// directory before the process dies.
	BlackBoxDir string
	// HistoryInterval is the telemetry sampler cadence (0 =
	// obs.DefaultHistoryInterval, 10s; negative disables the history ring
	// and the SLO engine, turning /v1/debug:history and /v1/debug:health
	// into 404s). HistoryRetention is how far back the ring reaches (0 =
	// obs.DefaultHistoryRetention, 1h).
	HistoryInterval  time.Duration
	HistoryRetention time.Duration
	// SLOAvailability is the availability objective's good-fraction
	// target (0 = 0.999; negative disables the availability SLO). SLOP99
	// bounds per-class p99 latency (0 = 500ms; negative disables the
	// latency SLOs). Burn rates use the standard fast 5m/1h + slow 30m/6h
	// multi-window pairs.
	SLOAvailability float64
	SLOP99          time.Duration
}

// defaultFlightSlow classifies requests as slow for flight capture when no
// slow-query threshold is configured.
const defaultFlightSlow = 500 * time.Millisecond

func (c *Config) normalize() {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.Queue <= 0 {
		c.Queue = 64
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 5 * time.Minute
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 1024
	}
	if c.MaxParallelism <= 0 {
		c.MaxParallelism = runtime.GOMAXPROCS(0)
	}
	switch {
	case c.CPUSlots < 0:
		c.CPUSlots = 0
	case c.CPUSlots == 0:
		if extra := runtime.GOMAXPROCS(0) - c.Workers; extra > 0 {
			c.CPUSlots = extra
		}
	}
}

// Server is the ksprd service: registry + pool + cache + metrics behind an
// http.Handler. Create with NewServer, serve via Handler, stop with Close.
type Server struct {
	cfg      Config
	registry *Registry
	pool     *Pool
	cache    *Cache
	cpu      *CPUBudget
	metrics  *Metrics
	mux      *http.ServeMux
	logger   *slog.Logger
	// flight is the always-on tail-sampling request recorder (nil when
	// Config.FlightCapacity < 0); journal the lifecycle event log both
	// debug endpoints and the black box read.
	flight  *obs.FlightRecorder
	journal *obs.Journal
	// sampler owns the telemetry history ring and the SLO engine (nil
	// when Config.HistoryInterval < 0).
	sampler *sampler
	// rtScrape reads Go runtime telemetry for /metrics scrapes; rtMu
	// serializes it (the sampler goroutine has its own reader).
	rtScrape *obs.RuntimeSampler
	rtMu     sync.Mutex
	// ready flips once startup WAL recovery finishes (or was never
	// needed); /readyz serves 503 until then.
	ready atomic.Bool
}

// NewServer wires the subsystem together.
func NewServer(cfg Config) *Server {
	cfg.normalize()
	registry := NewRegistry()
	if cfg.StoreDir != "" {
		registry = NewRegistryWithStore(cfg.StoreDir, cfg.WALSync, cfg.SnapshotEvery)
	}
	s := &Server{
		cfg:      cfg,
		registry: registry,
		pool:     NewPool(cfg.Workers, cfg.Queue),
		cache:    NewCache(cfg.CacheShards, cfg.CacheCapacity),
		cpu:      NewCPUBudget(cfg.CPUSlots),
		metrics:  NewMetrics(),
		logger:   cfg.Logger,
		journal:  obs.NewJournal(0),
		rtScrape: obs.NewRuntimeSampler(),
	}
	if cfg.FlightCapacity >= 0 {
		slow := cfg.SlowQuery
		if slow <= 0 {
			slow = defaultFlightSlow
		}
		s.flight = obs.NewFlightRecorder(cfg.FlightCapacity, slow, cfg.FlightSampleEvery)
	}
	// Durable stores report their lifecycle (WAL recovery, snapshot
	// writes, index warm/cold) into the journal, tagged per dataset — the
	// hook must be installed before any Load/Recover opens a store.
	registry.SetStoreEventHook(func(name string, ev kspr.StoreEvent) {
		s.journal.Append(obs.JournalEvent{
			Type:            ev.Kind,
			Dataset:         name,
			StoreGeneration: ev.Gen,
			Detail:          map[string]any{"records": ev.Records, "wal_frames": ev.WALFrames},
		})
	})
	// A store-less server has nothing to recover; store-backed servers
	// become ready when RecoverDatasets finishes.
	s.ready.Store(cfg.StoreDir == "")
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.instrument("healthz", s.handleHealthz))
	mux.HandleFunc("GET /readyz", s.instrument("readyz", s.handleReadyz))
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /metrics.prom", s.handleMetricsProm)
	mux.HandleFunc("GET /v1/datasets", s.instrument("datasets.list", s.handleDatasetList))
	mux.HandleFunc("POST /v1/datasets", s.instrument("datasets.load", s.handleDatasetLoad))
	mux.HandleFunc("DELETE /v1/datasets/{name}", s.instrument("datasets.unload", s.handleDatasetUnload))
	// {action} carries the Google-style custom verb ("<name>:mutate"); the
	// handler rejects anything else, keeping the plain POST /v1/datasets
	// collection route unambiguous.
	mux.HandleFunc("POST /v1/datasets/{action}", s.instrument("datasets.mutate", s.handleDatasetMutate))
	mux.HandleFunc("POST /v1/kspr", s.instrument("kspr", s.handleKSPR))
	mux.HandleFunc("GET /v1/kspr", s.instrument("kspr", s.handleKSPRGet))
	mux.HandleFunc("POST /v1/kspr:batch", s.instrument("kspr.batch", s.handleBatch))
	mux.HandleFunc("POST /v1/topk", s.instrument("topk", s.handleTopK))
	mux.HandleFunc("GET /v1/skyline", s.instrument("skyline", s.handleSkyline))
	mux.HandleFunc("POST /v1/impact", s.instrument("impact", s.handleImpact))
	// The what-if layer: competitor attribution, repricing search, and
	// impact–price frontiers (Google-style custom verbs, like :mutate).
	mux.HandleFunc("GET /v1/impact:competitors", s.instrument("impact.competitors", s.handleCompetitors))
	mux.HandleFunc("POST /v1/whatif:price", s.instrument("whatif.price", s.handlePrice))
	mux.HandleFunc("POST /v1/whatif:frontier", s.instrument("whatif.frontier", s.handleFrontier))
	// Post-hoc forensics: the flight recorder's wide events and the
	// lifecycle event journal (same custom-verb style as :mutate).
	mux.HandleFunc("GET /v1/debug:flight", s.instrument("debug.flight", s.handleDebugFlight))
	mux.HandleFunc("GET /v1/debug:events", s.instrument("debug.events", s.handleDebugEvents))
	// The time dimension: the telemetry history ring and the scored SLO
	// health verdict it feeds.
	mux.HandleFunc("GET /v1/debug:history", s.instrument("debug.history", s.handleDebugHistory))
	mux.HandleFunc("GET /v1/debug:health", s.instrument("debug.health", s.handleDebugHealth))
	s.mux = mux
	if cfg.HistoryInterval >= 0 {
		s.sampler = newSampler(s)
		go s.sampler.run()
	}
	return s
}

// Registry exposes the dataset registry (e.g. for preloading at startup).
func (s *Server) Registry() *Registry { return s.registry }

// RecoverDatasets re-registers every dataset found in the store directory
// (snapshot load + WAL replay) and accounts the recoveries in /metrics.
// Call once at startup; it may run concurrently with serving — /readyz
// reports not-ready until it completes successfully, so load balancers
// keep traffic off a node that is still replaying.
func (s *Server) RecoverDatasets() ([]*Snapshot, error) {
	snaps, err := s.registry.Recover()
	s.metrics.AddRecoveries(len(snaps))
	if err == nil {
		s.ready.Store(true)
	}
	return snaps, err
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// errBodyCap bounds how much error-response body the flight recorder
// keeps per request — enough for the {"error": ...} envelope, never a
// payload.
const errBodyCap = 256

// statusRecorder captures the response status for metrics and, on error
// responses, the leading bytes of the body for the flight recorder.
type statusRecorder struct {
	http.ResponseWriter
	status  int
	errBody []byte
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// Write tees the first errBodyCap bytes of error responses into errBody so
// captured wide events carry the error text without any handler changes.
func (r *statusRecorder) Write(p []byte) (int, error) {
	if r.status >= 400 && len(r.errBody) < errBodyCap {
		keep := errBodyCap - len(r.errBody)
		if keep > len(p) {
			keep = len(p)
		}
		r.errBody = append(r.errBody, p[:keep]...)
	}
	return r.ResponseWriter.Write(p)
}

// Flush forwards streaming flushes (the batch endpoint needs this through
// the recorder).
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument wraps a handler with latency/error accounting, the
// per-request correlation id (accepted from, and echoed as, the
// X-Request-Id header), and — when EXPLAIN mode or the slow-query log
// asks for one — the engine trace handlers thread into query options.
func (s *Server) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-Id")
		if id == "" {
			id = obs.NewRequestID()
		}
		w.Header().Set("X-Request-Id", id)
		ri := &reqInfo{id: id, debug: wantTrace(r)}
		// The flight recorder needs a trace on EVERY request: whether one
		// turns out slow (and so capture-worthy) is only known at the end.
		if ri.debug || s.cfg.SlowQuery > 0 || s.flight.Enabled() {
			ri.trace = obs.NewTrace()
		}
		r = r.WithContext(context.WithValue(r.Context(), reqInfoKey{}, ri))
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		if s.cfg.BlackBoxDir != "" {
			defer func() {
				p := recover()
				if p == nil {
					return
				}
				// Capture the panicking request itself, then dump the black
				// box; the re-panic preserves net/http's panic semantics.
				s.flight.Record(obs.WideEvent{
					Time: start, RequestID: id, Endpoint: name,
					Method: r.Method, Path: r.URL.Path,
					Dataset: ri.dataset, Generation: ri.generation,
					Status:    http.StatusInternalServerError,
					LatencyNs: int64(time.Since(start)), Kind: obs.CaptureError,
					Error: fmt.Sprintf("panic: %v", p),
				})
				if _, err := s.WriteBlackBox(fmt.Sprintf("panic in %s: %v", name, p)); err != nil && s.logger != nil {
					s.logger.Error("black box write failed", slog.String("error", err.Error()))
				}
				panic(p)
			}()
		}
		h(rec, r)
		elapsed := time.Since(start)
		s.metrics.Observe(name, elapsed, rec.status)
		s.logRequest(name, r, ri, rec.status, elapsed)
		if kind, ok := s.flight.ShouldCapture(name, rec.status, elapsed); ok {
			ev := obs.WideEvent{
				Time: start, RequestID: id, Endpoint: name,
				Method: r.Method, Path: r.URL.Path,
				Dataset: ri.dataset, Generation: ri.generation,
				Status: rec.status, LatencyNs: int64(elapsed), Kind: kind,
				Cached: ri.cached, Error: string(rec.errBody), Stats: ri.stats,
			}
			if ri.trace != nil {
				ev.Phases = ri.trace.Phases()
			}
			s.flight.Record(ev)
		}
	}
}

// Close drains the worker pool gracefully (queued queries finish, new
// submissions fail with ErrPoolClosed) and releases the registry's store
// handles. Call after the HTTP listener has stopped accepting requests
// (http.Server.Shutdown).
func (s *Server) Close() {
	s.sampler.close()
	s.pool.Close()
	s.registry.Close()
}

// ListenAndServe runs the service on addr until ctx is cancelled, then
// shuts down gracefully: the listener drains in-flight HTTP requests
// (bounded by grace), after which the pool is closed.
func (s *Server) ListenAndServe(ctx context.Context, addr string, grace time.Duration) error {
	httpSrv := &http.Server{Addr: addr, Handler: s.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	select {
	case err := <-errCh:
		s.Close()
		return err
	case <-ctx.Done():
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	err := httpSrv.Shutdown(shutdownCtx)
	s.Close()
	return err
}
