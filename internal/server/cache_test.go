package server

import (
	"fmt"
	"hash/fnv"
	"sync"
	"testing"
)

// TestFNV32aMatchesStdlib pins the inlined shard hash to hash/fnv: shard
// placement must not change across the allocation-free rewrite (a silent
// divergence would still work, but would redistribute live entries).
func TestFNV32aMatchesStdlib(t *testing.T) {
	keys := []string{"", "a", "load0@3|kspr|k=5|a=auto|s=|b=|v=false|vs=0|g=true|e=0|seed=0|f=7"}
	for i := 0; i < 64; i++ {
		keys = append(keys, fmt.Sprintf("ds%d@%d|kspr|k=%d", i%7, i, i%11))
	}
	for _, key := range keys {
		h := fnv.New32a()
		h.Write([]byte(key))
		if got, want := fnv32a(key), h.Sum32(); got != want {
			t.Fatalf("fnv32a(%q) = %d, stdlib fnv = %d", key, got, want)
		}
	}
}

// BenchmarkCacheGetHit measures the cache hot path under parallel load —
// the load harness's dominant cache operation. Before the inlined hash,
// every Get allocated a hash.Hash32 plus a full []byte copy of the key.
func BenchmarkCacheGetHit(b *testing.B) {
	c := NewCache(8, 1024)
	keys := make([]string, 64)
	for i := range keys {
		keys[i] = fmt.Sprintf("load%d@%d|kspr|k=5|a=auto|s=|b=|v=false|vs=0|g=true|e=0|seed=0|f=%d", i%3, i, i)
		c.Put(keys[i], i)
	}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			c.Get(keys[i%len(keys)])
			i++
		}
	})
}

func TestCacheHitMissCounters(t *testing.T) {
	c := NewCache(4, 64)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache hit")
	}
	c.Put("a", 1)
	v, ok := c.Get("a")
	if !ok || v.(int) != 1 {
		t.Fatalf("get a = %v, %v", v, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats %+v", st)
	}
	if st.HitRate != 0.5 {
		t.Fatalf("hit rate %v, want 0.5", st.HitRate)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(1, 3) // single shard, capacity 3
	c.Put("a", 1)
	c.Put("b", 2)
	c.Put("c", 3)
	c.Get("a")    // refresh a
	c.Put("d", 4) // evicts b (least recently used)
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%s missing", k)
		}
	}
	if n := c.Len(); n != 3 {
		t.Fatalf("len %d, want 3", n)
	}
}

func TestCacheUpdateExisting(t *testing.T) {
	c := NewCache(2, 8)
	c.Put("k", 1)
	c.Put("k", 2)
	if v, _ := c.Get("k"); v.(int) != 2 {
		t.Fatalf("got %v, want 2", v)
	}
	if c.Len() != 1 {
		t.Fatalf("len %d", c.Len())
	}
}

func TestCacheConcurrent(t *testing.T) {
	c := NewCache(8, 256)
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", (g*13+i)%97)
				if i%2 == 0 {
					c.Put(key, i)
				} else {
					c.Get(key)
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 97 {
		t.Fatalf("len %d exceeds distinct keys", c.Len())
	}
}
