package server

import (
	"fmt"
	"sync"
	"testing"
)

func TestCacheHitMissCounters(t *testing.T) {
	c := NewCache(4, 64)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache hit")
	}
	c.Put("a", 1)
	v, ok := c.Get("a")
	if !ok || v.(int) != 1 {
		t.Fatalf("get a = %v, %v", v, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats %+v", st)
	}
	if st.HitRate != 0.5 {
		t.Fatalf("hit rate %v, want 0.5", st.HitRate)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(1, 3) // single shard, capacity 3
	c.Put("a", 1)
	c.Put("b", 2)
	c.Put("c", 3)
	c.Get("a")    // refresh a
	c.Put("d", 4) // evicts b (least recently used)
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%s missing", k)
		}
	}
	if n := c.Len(); n != 3 {
		t.Fatalf("len %d, want 3", n)
	}
}

func TestCacheUpdateExisting(t *testing.T) {
	c := NewCache(2, 8)
	c.Put("k", 1)
	c.Put("k", 2)
	if v, _ := c.Get("k"); v.(int) != 2 {
		t.Fatalf("got %v, want 2", v)
	}
	if c.Len() != 1 {
		t.Fatalf("len %d", c.Len())
	}
}

func TestCacheConcurrent(t *testing.T) {
	c := NewCache(8, 256)
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", (g*13+i)%97)
				if i%2 == 0 {
					c.Put(key, i)
				} else {
					c.Get(key)
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 97 {
		t.Fatalf("len %d exceeds distinct keys", c.Len())
	}
}
