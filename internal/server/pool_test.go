package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolRunsTasks(t *testing.T) {
	p := NewPool(4, 16)
	defer p.Close()
	var n atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := p.Submit(context.Background(), func(context.Context) (any, error) {
				n.Add(1)
				return i * 2, nil
			})
			if err != nil {
				t.Errorf("submit: %v", err)
				return
			}
			if v.(int) != i*2 {
				t.Errorf("got %v, want %d", v, i*2)
			}
		}(i)
	}
	wg.Wait()
	if n.Load() != 100 {
		t.Fatalf("ran %d tasks, want 100", n.Load())
	}
	if p.Depth() != 0 {
		t.Fatalf("depth %d after drain", p.Depth())
	}
}

func TestPoolQueuedTaskSkippedOnExpiredContext(t *testing.T) {
	p := NewPool(1, 8)
	defer p.Close()

	// Occupy the single worker.
	block := make(chan struct{})
	started := make(chan struct{})
	go p.Submit(context.Background(), func(context.Context) (any, error) {
		close(started)
		<-block
		return nil, nil
	})
	<-started

	// Enqueue a task whose context dies while it waits.
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Bool
	resCh := make(chan error, 1)
	go func() {
		_, err := p.Submit(ctx, func(context.Context) (any, error) {
			ran.Store(true)
			return nil, nil
		})
		resCh <- err
	}()
	time.Sleep(10 * time.Millisecond) // let it enqueue
	cancel()
	if err := <-resCh; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	close(block) // release the worker; it must skip the dead task
	time.Sleep(20 * time.Millisecond)
	if ran.Load() {
		t.Fatal("worker executed a task whose context had expired in the queue")
	}
}

func TestPoolTimeoutWhileRunning(t *testing.T) {
	p := NewPool(1, 1)
	defer p.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := p.Submit(ctx, func(ctx context.Context) (any, error) {
		<-ctx.Done() // a well-behaved task observes cancellation
		return nil, ctx.Err()
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("submit blocked %v past its deadline", elapsed)
	}
}

func TestPoolCloseDrains(t *testing.T) {
	p := NewPool(2, 32)
	var done atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.Submit(context.Background(), func(context.Context) (any, error) {
				time.Sleep(time.Millisecond)
				done.Add(1)
				return nil, nil
			})
		}()
	}
	wg.Wait() // all submissions returned, so all tasks ran
	p.Close()
	if done.Load() != 16 {
		t.Fatalf("Close lost tasks: %d/16 ran", done.Load())
	}
	if _, err := p.Submit(context.Background(), func(context.Context) (any, error) { return nil, nil }); err != ErrPoolClosed {
		t.Fatalf("submit after close: %v, want ErrPoolClosed", err)
	}
	p.Close() // idempotent
}
