package server

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// slowTickConfig keeps the background sampler goroutine effectively idle
// so tests can drive sampler.tick deterministically by hand. The long
// retention keeps the slot count (retention/interval) roomy.
func slowTickConfig() Config {
	return Config{HistoryInterval: time.Hour, HistoryRetention: 100 * time.Hour}
}

// fetchJSON fetches url and decodes the JSON body into out, asserting the
// expected status.
func fetchJSON(t *testing.T, url string, wantStatus int, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("get %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("get %s: status %d, want %d", url, resp.StatusCode, wantStatus)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
}

func TestHistoryEndpointServesSeries(t *testing.T) {
	srv, ts := newTestServer(t, slowTickConfig())
	loadGenerated(t, ts, "ind", 200, 3, 7)
	for i := 0; i < 20; i++ {
		srv.metrics.Observe("kspr", time.Millisecond, 200)
	}
	// Two deterministic ticks on top of the one NewServer took.
	now := time.Now()
	srv.sampler.tick(now)
	srv.sampler.tick(now.Add(time.Second))

	var hr historyResponse
	fetchJSON(t, ts.URL+"/v1/debug:history", http.StatusOK, &hr)
	if hr.Samples < 3 {
		t.Fatalf("samples = %d, want >= 3", hr.Samples)
	}
	if want := float64(time.Hour) / float64(time.Millisecond); hr.IntervalMs != want {
		t.Fatalf("interval_ms = %v, want %v", hr.IntervalMs, want)
	}
	if len(hr.TimesUnixMs) != hr.Samples {
		t.Fatalf("times len %d != samples %d", len(hr.TimesUnixMs), hr.Samples)
	}
	// The default selection includes the derived qps series; the second
	// manual tick must have a real value for it (two samples in window).
	col, ok := hr.Series["qps"]
	if !ok || len(col) != hr.Samples {
		t.Fatalf("qps column missing or wrong length: %v", col)
	}
	if col[len(col)-1] == nil {
		t.Fatal("latest qps is null, want a derived rate")
	}
	// Raw counter series selectable explicitly.
	fetchJSON(t, ts.URL+"/v1/debug:history?series=requests_total,ep:kspr:requests", http.StatusOK, &hr)
	reqCol := hr.Series["requests_total"]
	if v := reqCol[len(reqCol)-1]; v == nil || *v < 20 {
		t.Fatalf("requests_total latest = %v, want >= 20", v)
	}
	epCol := hr.Series["ep:kspr:requests"]
	if v := epCol[len(epCol)-1]; v == nil || *v != 20 {
		t.Fatalf("ep:kspr:requests latest = %v, want 20", v)
	}
	if len(hr.SeriesNames) == 0 {
		t.Fatal("series catalogue is empty")
	}
	// Step downsampling: all ticks land within seconds of each other, so a
	// ten-minute step collapses them to the last sample of one bucket. The
	// since offset is half a step off a multiple so no bucket boundary can
	// land between the ticks.
	fetchJSON(t, ts.URL+"/v1/debug:history?series=requests_total&since_sec=90300&step_sec=600", http.StatusOK, &hr)
	if hr.Samples != 1 {
		t.Fatalf("step-collapsed samples = %d, want 1", hr.Samples)
	}
}

func TestHistoryEndpointParamErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, q := range []string{
		"since_sec=abc", "since_sec=-5", "since_sec=0",
		"step_sec=xyz", "step_sec=-1",
		"series=a,,b",
	} {
		resp, err := http.Get(ts.URL + "/v1/debug:history?" + q)
		if err != nil {
			t.Fatalf("get ?%s: %v", q, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("?%s: status %d, want 400", q, resp.StatusCode)
		}
	}
	// Unknown series names are served as all-null columns, not errors —
	// callers distinguish "no such series" via series_names.
	var hr historyResponse
	fetchJSON(t, ts.URL+"/v1/debug:history?series=no_such_series", http.StatusOK, &hr)
	for i, v := range hr.Series["no_such_series"] {
		if v != nil {
			t.Fatalf("unknown series has value at index %d", i)
		}
	}
}

func TestHistoryDisabled(t *testing.T) {
	_, ts := newTestServer(t, Config{HistoryInterval: -1})
	fetchJSON(t, ts.URL+"/v1/debug:history", http.StatusNotFound, nil)
	fetchJSON(t, ts.URL+"/v1/debug:health", http.StatusNotFound, nil)
	// /metrics.prom must still render, without the SLO section.
	resp, err := http.Get(ts.URL + "/metrics.prom")
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics.prom status %d", resp.StatusCode)
	}
	if strings.Contains(body, "ksprd_slo_healthy") {
		t.Fatal("disabled sampler still exports ksprd_slo_healthy")
	}
	if !strings.Contains(body, "ksprd_go_goroutines") {
		t.Fatal("runtime gauges must not depend on the sampler")
	}
}

func TestHealthVerdictCleanServer(t *testing.T) {
	srv, ts := newTestServer(t, slowTickConfig())
	loadGenerated(t, ts, "ind", 200, 3, 7)
	for i := 0; i < 50; i++ {
		srv.metrics.Observe("kspr", time.Millisecond, 200)
	}
	now := time.Now()
	srv.sampler.tick(now)
	srv.sampler.tick(now.Add(time.Second))

	var hr healthResponse
	fetchJSON(t, ts.URL+"/v1/debug:health", http.StatusOK, &hr)
	if !hr.Healthy || hr.Score != 1 || hr.Status != "healthy" {
		t.Fatalf("clean server verdict = %+v, want healthy at score 1", hr)
	}
	if !hr.Ready {
		t.Fatal("store-less server must be ready")
	}
	if hr.Datasets != 1 {
		t.Fatalf("datasets = %d, want 1", hr.Datasets)
	}
	if _, ok := hr.IndexWarm["ind"]; !ok {
		t.Fatalf("index_warm missing dataset: %+v", hr.IndexWarm)
	}
	if hr.Generation == 0 {
		t.Fatal("generation = 0, want the loaded dataset's generation")
	}
	if len(hr.SLOs) != 3 {
		t.Fatalf("got %d SLOs, want availability + 2 latency classes", len(hr.SLOs))
	}
	if hr.Build.Go == "" {
		t.Fatal("health verdict missing build info")
	}
	if hr.History.Samples < 3 || hr.History.Series == 0 {
		t.Fatalf("history meta = %+v", hr.History)
	}
	if hr.UptimeSeconds < 0 {
		t.Fatalf("uptime = %v", hr.UptimeSeconds)
	}
}

// burnErrors drives enough 500s through the metrics to torch the
// availability budget, across two manual ticks so every burn window has
// the two samples it needs.
func burnErrors(srv *Server, now time.Time, n int) {
	for i := 0; i < n/2; i++ {
		srv.metrics.Observe("kspr", time.Millisecond, 500)
	}
	srv.sampler.tick(now)
	for i := 0; i < n/2; i++ {
		srv.metrics.Observe("kspr", time.Millisecond, 500)
	}
	srv.sampler.tick(now.Add(time.Second))
}

func TestHealthVerdictFlipsOnErrorBurn(t *testing.T) {
	srv, ts := newTestServer(t, slowTickConfig())
	now := time.Now()
	burnErrors(srv, now, 400)

	var hr healthResponse
	fetchJSON(t, ts.URL+"/v1/debug:health", http.StatusOK, &hr)
	if hr.Healthy || hr.Status != "breaching" {
		t.Fatalf("verdict after error storm: healthy=%v status=%q, want breaching", hr.Healthy, hr.Status)
	}
	if hr.Score != 0 {
		t.Fatalf("score = %v, want 0 under total burn", hr.Score)
	}
	var avail *obs.SLOStatus
	for i := range hr.SLOs {
		if hr.SLOs[i].Name == "availability" {
			avail = &hr.SLOs[i]
		}
	}
	if avail == nil || !avail.Breaching {
		t.Fatalf("availability SLO not breaching: %+v", hr.SLOs)
	}
	// ~100% bad against a 0.1% budget: burn rate ~1000x.
	if avail.Windows[0].BurnShort < 100 {
		t.Fatalf("burn_short = %v, want far above threshold", avail.Windows[0].BurnShort)
	}

	// The breach landed in the journal as slo_burn...
	var er eventsResponse
	fetchJSON(t, ts.URL+"/v1/debug:events", http.StatusOK, &er)
	var burn *obs.JournalEvent
	for i := range er.Events {
		if er.Events[i].Type == obs.EventSLOBurn {
			burn = &er.Events[i]
		}
	}
	if burn == nil {
		t.Fatalf("no slo_burn journal event in %+v", er.Events)
	}
	if burn.Detail["objective"] != "availability" {
		t.Fatalf("slo_burn detail = %+v", burn.Detail)
	}

	// ...and /metrics.prom exports the unhealthy verdict and burn rates.
	resp, err := http.Get(ts.URL + "/metrics.prom")
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	if !strings.Contains(body, "ksprd_slo_healthy 0") {
		t.Fatal("metrics.prom missing ksprd_slo_healthy 0")
	}
	if !strings.Contains(body, `ksprd_slo_burn_rate{slo="availability",window="5m"}`) {
		t.Fatal("metrics.prom missing availability burn rate sample")
	}
	if !strings.Contains(body, "ksprd_build_info{") {
		t.Fatal("metrics.prom missing ksprd_build_info")
	}
	if !strings.Contains(body, "ksprd_go_goroutines") {
		t.Fatal("metrics.prom missing runtime gauges")
	}

	// Recovery: jump past the longest burn window (6h) so every window sees
	// only clean traffic, and the breach resolves.
	later := now.Add(7 * time.Hour)
	for i := 0; i < 500; i++ {
		srv.metrics.Observe("kspr", time.Millisecond, 200)
	}
	srv.sampler.tick(later)
	for i := 0; i < 500; i++ {
		srv.metrics.Observe("kspr", time.Millisecond, 200)
	}
	srv.sampler.tick(later.Add(time.Second))
	fetchJSON(t, ts.URL+"/v1/debug:health", http.StatusOK, &hr)
	if !hr.Healthy {
		t.Fatalf("verdict did not recover: %+v", hr)
	}
	fetchJSON(t, ts.URL+"/v1/debug:events", http.StatusOK, &er)
	found := false
	for _, ev := range er.Events {
		if ev.Type == obs.EventSLOResolve {
			found = true
		}
	}
	if !found {
		t.Fatal("no slo_resolved journal event after recovery")
	}
}

func Test429sDoNotBurnAvailability(t *testing.T) {
	srv, ts := newTestServer(t, slowTickConfig())
	now := time.Now()
	for i := 0; i < 200; i++ {
		srv.metrics.Observe("kspr", time.Millisecond, 429)
	}
	srv.sampler.tick(now)
	for i := 0; i < 200; i++ {
		srv.metrics.Observe("kspr", time.Millisecond, 429)
	}
	srv.sampler.tick(now.Add(time.Second))

	var hr healthResponse
	fetchJSON(t, ts.URL+"/v1/debug:health", http.StatusOK, &hr)
	if !hr.Healthy {
		t.Fatalf("load shedding flipped the verdict: %+v", hr)
	}
	// The 429s still show up as a counter and a derived rate.
	var histResp historyResponse
	fetchJSON(t, ts.URL+"/v1/debug:history?series=responses_429_total,rate_429", http.StatusOK, &histResp)
	col := histResp.Series["responses_429_total"]
	if v := col[len(col)-1]; v == nil || *v != 400 {
		t.Fatalf("responses_429_total = %v, want 400", v)
	}
	rate := histResp.Series["rate_429"]
	if v := rate[len(rate)-1]; v == nil || *v <= 0.9 {
		t.Fatalf("rate_429 = %v, want ~1", v)
	}
}

func TestLatencySLOBurnsOnSlowClass(t *testing.T) {
	cfg := slowTickConfig()
	cfg.SLOP99 = 50 * time.Millisecond
	srv, ts := newTestServer(t, cfg)
	now := time.Now()
	// Every query-class request lands far over the 50ms bound.
	for i := 0; i < 100; i++ {
		srv.metrics.Observe("kspr", 2*time.Second, 200)
	}
	srv.sampler.tick(now)
	for i := 0; i < 100; i++ {
		srv.metrics.Observe("kspr", 2*time.Second, 200)
	}
	srv.sampler.tick(now.Add(time.Second))

	var hr healthResponse
	fetchJSON(t, ts.URL+"/v1/debug:health", http.StatusOK, &hr)
	var q *obs.SLOStatus
	for i := range hr.SLOs {
		if hr.SLOs[i].Name == "latency-p99-query" {
			q = &hr.SLOs[i]
		}
	}
	if q == nil || !q.Breaching {
		t.Fatalf("query latency SLO not breaching: %+v", hr.SLOs)
	}
	if hr.Healthy {
		t.Fatal("verdict still healthy under latency burn")
	}
	// The mutate class saw no traffic: its SLO must be quiet, not guilty.
	for i := range hr.SLOs {
		if hr.SLOs[i].Name == "latency-p99-mutate" && hr.SLOs[i].Breaching {
			t.Fatal("idle mutate class breaching")
		}
	}
	// Derived windowed p99 series reflects the slow traffic.
	var histResp historyResponse
	fetchJSON(t, ts.URL+"/v1/debug:history?series=p99_ms:query", http.StatusOK, &histResp)
	col := histResp.Series["p99_ms:query"]
	if v := col[len(col)-1]; v == nil || *v < 1000 {
		t.Fatalf("p99_ms:query = %v, want >= 1000ms", v)
	}
}

func TestRecordTickZeroAllocs(t *testing.T) {
	srv := NewServer(slowTickConfig())
	defer srv.Close()
	for i := 0; i < 100; i++ {
		srv.metrics.Observe("kspr", time.Millisecond, 200)
		srv.metrics.Observe("topk", time.Millisecond, 500)
	}
	sp := srv.sampler
	now := time.Now()
	sp.tick(now) // registers every series
	i := 0
	allocs := testing.AllocsPerRun(100, func() {
		i++
		sp.recordTick(now.Add(time.Duration(i) * time.Second))
	})
	if allocs != 0 {
		t.Fatalf("recordTick allocates %v/op in steady state, want 0", allocs)
	}
}

func TestSampleIntoZeroAllocs(t *testing.T) {
	m := NewMetrics()
	for i := 0; i < 100; i++ {
		m.Observe("kspr", time.Millisecond, 200)
		m.Observe("topk", 2*time.Millisecond, 500)
	}
	var ms MetricsSample
	m.SampleInto(&ms) // registration pass allocates the endpoint rows
	allocs := testing.AllocsPerRun(100, func() {
		m.SampleInto(&ms)
	})
	if allocs != 0 {
		t.Fatalf("SampleInto allocates %v/op in steady state, want 0", allocs)
	}
	// The sample must agree with Snapshot on the counters.
	snap := m.Snapshot()
	if ms.Requests != snap.Requests || ms.Errors != snap.Errors {
		t.Fatalf("sample %d/%d != snapshot %d/%d", ms.Requests, ms.Errors, snap.Requests, snap.Errors)
	}
	if len(ms.Endpoints) != 2 || ms.Endpoints[0].Name != "kspr" || ms.Endpoints[1].Name != "topk" {
		t.Fatalf("endpoint rows = %+v", ms.Endpoints)
	}
	ep := snap.LatencyByEndpoint["kspr"]
	if ms.Endpoints[0].Count != ep.Requests {
		t.Fatalf("sample count %d != snapshot count %d", ms.Endpoints[0].Count, ep.Requests)
	}
}

func TestMetricsJSONIncludesRuntimeAndBuild(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var snap MetricsSnapshot
	fetchJSON(t, ts.URL+"/metrics", http.StatusOK, &snap)
	if snap.Runtime.Goroutines < 1 {
		t.Fatalf("runtime goroutines = %d", snap.Runtime.Goroutines)
	}
	if snap.Runtime.HeapInuseBytes == 0 {
		t.Fatal("runtime heap_inuse_bytes = 0")
	}
	if snap.Build.Go == "" {
		t.Fatal("/metrics missing build info")
	}
	if snap.SLO == nil || !snap.SLO.Healthy {
		t.Fatalf("/metrics SLO section = %+v, want healthy", snap.SLO)
	}
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return sb.String()
}

func BenchmarkSnapshotSteadyState(b *testing.B) {
	m := NewMetrics()
	for _, ep := range []string{"kspr", "kspr.batch", "topk", "skyline", "impact", "whatif.price"} {
		for i := 0; i < 500; i++ {
			m.Observe(ep, time.Duration(i)*time.Microsecond, 200)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Snapshot()
	}
}

func BenchmarkSampleInto(b *testing.B) {
	m := NewMetrics()
	for _, ep := range []string{"kspr", "kspr.batch", "topk", "skyline", "impact", "whatif.price"} {
		for i := 0; i < 500; i++ {
			m.Observe(ep, time.Duration(i)*time.Microsecond, 200)
		}
	}
	var ms MetricsSample
	m.SampleInto(&ms)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.SampleInto(&ms)
	}
}

func BenchmarkSamplerTick(b *testing.B) {
	srv := NewServer(slowTickConfig())
	defer srv.Close()
	for _, ep := range []string{"kspr", "kspr.batch", "topk", "datasets.mutate"} {
		for i := 0; i < 500; i++ {
			srv.metrics.Observe(ep, time.Duration(i)*time.Microsecond, 200)
		}
	}
	now := time.Now()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		srv.sampler.tick(now.Add(time.Duration(i) * time.Second))
	}
}
