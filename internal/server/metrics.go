package server

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// latWindow is the number of most recent request latencies kept for
// percentile estimation (spread across the stripes).
const latWindow = 2048

// qpsBuckets is the length (seconds) of the sliding QPS window.
const qpsBuckets = 60

// latStripes shards the latency ring and QPS buckets. A single global
// mutex here was the first contention hot spot the load harness exposed:
// every request of every endpoint serialized on it just to record one
// float. Must be a power of two (stripe pick is a mask).
const latStripes = 8

// latStripe is one shard of the recent-latency ring plus its slice of the
// QPS window. Round-robin assignment keeps the union of the stripes equal
// to the most recent latWindow observations, and per-second QPS counts
// sum across stripes to the exact global count.
type latStripe struct {
	mu     sync.Mutex
	lat    [latWindow / latStripes]float64 // ring of latencies in milliseconds
	latIdx int
	latN   int
	qps    [qpsBuckets]qpsBucket
	// pad spaces stripes a cache line apart so neighboring locks do not
	// false-share.
	_ [64]byte
}

// Metrics aggregates the serving counters exposed on /metrics. All methods
// are safe for concurrent use; the hot path is a few atomics plus one
// small striped ring update.
type Metrics struct {
	start    time.Time
	requests atomic.Uint64
	errors   atomic.Uint64
	resp429  atomic.Uint64

	mutationBatches atomic.Uint64
	mutationsTotal  atomic.Uint64
	cacheMigrated   atomic.Uint64
	cacheDropped    atomic.Uint64
	recoveries      atomic.Uint64

	whatifProbes atomic.Uint64
	whatifKept   atomic.Uint64

	stripePick atomic.Uint64
	stripes    [latStripes]latStripe

	byEndpoint sync.Map // string -> *endpointStats
}

// endpointStats is one endpoint's serving record: request/error counters
// plus a fixed-bucket latency histogram (the shared bucket layout of
// obs.DefaultLatencyBuckets). The histogram backs both the per-endpoint
// percentiles of JSON /metrics and the Prometheus exposition.
type endpointStats struct {
	count  atomic.Uint64
	errors atomic.Uint64
	hist   *obs.Histogram
}

// endpoint returns the named endpoint's stats, creating them on first
// use. The common path is a single lock-free map lookup; LoadOrStore only
// runs the first time an endpoint is seen.
func (m *Metrics) endpoint(name string) *endpointStats {
	if v, ok := m.byEndpoint.Load(name); ok {
		return v.(*endpointStats)
	}
	v, _ := m.byEndpoint.LoadOrStore(name, &endpointStats{hist: obs.NewHistogram(nil)})
	return v.(*endpointStats)
}

type qpsBucket struct {
	sec int64
	n   uint64
}

// NewMetrics starts the clock.
func NewMetrics() *Metrics {
	return &Metrics{start: time.Now()}
}

// Observe records one finished request by its response status. Statuses
// >= 400 count as errors; 429s are additionally counted on their own so
// the SLO layer can exclude honest backpressure from availability burn.
func (m *Metrics) Observe(endpoint string, d time.Duration, status int) {
	isErr := status >= 400
	m.requests.Add(1)
	if isErr {
		m.errors.Add(1)
	}
	if status == 429 {
		m.resp429.Add(1)
	}
	es := m.endpoint(endpoint)
	es.count.Add(1)
	if isErr {
		es.errors.Add(1)
	}
	es.hist.Observe(d)

	sec := time.Now().Unix()
	st := &m.stripes[m.stripePick.Add(1)&(latStripes-1)]
	st.mu.Lock()
	st.lat[st.latIdx] = float64(d) / float64(time.Millisecond)
	st.latIdx = (st.latIdx + 1) % len(st.lat)
	if st.latN < len(st.lat) {
		st.latN++
	}
	b := &st.qps[sec%qpsBuckets]
	if b.sec != sec {
		b.sec, b.n = sec, 0
	}
	b.n++
	st.mu.Unlock()
}

// AddErrors bumps the error counter by n without recording requests; used
// for failures that hide inside an otherwise-successful response (e.g.
// per-query errors in a streamed 200 batch).
func (m *Metrics) AddErrors(n uint64) {
	if n > 0 {
		m.errors.Add(n)
	}
}

// AddMutationBatch records one applied mutation batch of n mutations,
// with migrated/dropped counting the cached results carried across the
// generation versus orphaned by it.
func (m *Metrics) AddMutationBatch(n, migrated, dropped int) {
	m.mutationBatches.Add(1)
	m.mutationsTotal.Add(uint64(n))
	m.cacheMigrated.Add(uint64(migrated))
	m.cacheDropped.Add(uint64(dropped))
}

// AddRecoveries records datasets restored by WAL replay at startup.
func (m *Metrics) AddRecoveries(n int) {
	m.recoveries.Add(uint64(n))
}

// AddWhatIf records one what-if call's probe economy: probes evaluated and
// how many of them the incremental keep/classification path absorbed.
func (m *Metrics) AddWhatIf(probes, kept uint64) {
	m.whatifProbes.Add(probes)
	m.whatifKept.Add(kept)
}

// WhatIfMetrics is the /metrics view of the what-if layer.
type WhatIfMetrics struct {
	// Probes counts impact evaluations across all what-if calls; Kept the
	// ones answered without an engine run (Maintainer keep tiers, frontier
	// dominator classification).
	Probes uint64 `json:"probes_total"`
	Kept   uint64 `json:"kept_total"`
}

// MutationStats is the /metrics view of the live-dataset subsystem.
type MutationStats struct {
	// Batches / Mutations count applied mutation batches and the
	// individual mutations inside them.
	Batches   uint64 `json:"batches_total"`
	Mutations uint64 `json:"mutations_total"`
	// CacheMigrated counts cached kSPR results proven unaffected by a
	// mutation batch and carried to the new generation; CacheDropped those
	// orphaned (left to age out of the LRU).
	CacheMigrated uint64 `json:"cache_results_migrated_total"`
	CacheDropped  uint64 `json:"cache_results_dropped_total"`
	// Recoveries counts datasets restored by snapshot load + WAL replay at
	// startup.
	Recoveries uint64 `json:"wal_recoveries_total"`
}

// LatencyStats are percentile estimates over the recent-latency window.
type LatencyStats struct {
	P50Ms float64 `json:"p50_ms"`
	P95Ms float64 `json:"p95_ms"`
	P99Ms float64 `json:"p99_ms"`
}

// EndpointLatency is one endpoint's row in /metrics: counters plus
// percentiles estimated from the endpoint's latency histogram (each
// percentile reports the upper bound of its bucket, so it matches the
// global window percentiles within one bucket width).
type EndpointLatency struct {
	Requests uint64  `json:"requests_total"`
	Errors   uint64  `json:"errors_total"`
	P50Ms    float64 `json:"p50_ms"`
	P95Ms    float64 `json:"p95_ms"`
	P99Ms    float64 `json:"p99_ms"`
}

// MetricsSnapshot is the JSON body of /metrics.
type MetricsSnapshot struct {
	UptimeSeconds float64           `json:"uptime_seconds"`
	Requests      uint64            `json:"requests_total"`
	Errors        uint64            `json:"errors_total"`
	Resp429       uint64            `json:"responses_429_total"`
	QPS           float64           `json:"qps_1m"`
	Latency       LatencyStats      `json:"latency"`
	Cache         CacheStats        `json:"cache"`
	Pool          PoolStats         `json:"pool"`
	CPU           CPUStats          `json:"cpu"`
	Mutations     MutationStats     `json:"mutations"`
	WhatIf        WhatIfMetrics     `json:"whatif"`
	ByEndpoint    map[string]uint64 `json:"requests_by_endpoint"`
	// LatencyByEndpoint breaks latency and errors down per endpoint,
	// derived from the per-endpoint histograms.
	LatencyByEndpoint map[string]EndpointLatency `json:"latency_by_endpoint"`
	Datasets          []DatasetInfo              `json:"datasets"`
	// Runtime and Build report Go runtime telemetry and binary identity;
	// SLO the latest burn-rate evaluation (nil when the SLO engine is
	// off). All three are filled by the server's metricsView.
	Runtime obs.RuntimeStats `json:"runtime"`
	Build   obs.BuildInfo    `json:"build"`
	SLO     *SLOView         `json:"slo,omitempty"`
}

// SLOView is the /metrics (and black-box) rendering of the SLO engine's
// latest evaluation.
type SLOView struct {
	Healthy    bool            `json:"healthy"`
	Score      float64         `json:"score"`
	Objectives []obs.SLOStatus `json:"objectives"`
}

// PoolStats is the /metrics view of the worker pool.
type PoolStats struct {
	Workers int   `json:"workers"`
	Depth   int64 `json:"depth"`
}

// Snapshot computes the current metrics view. Cache/pool/registry sections
// are filled in by the server, which owns those components.
func (m *Metrics) Snapshot() MetricsSnapshot {
	now := time.Now()
	snap := MetricsSnapshot{
		UptimeSeconds: now.Sub(m.start).Seconds(),
		Requests:      m.requests.Load(),
		Errors:        m.errors.Load(),
		Resp429:       m.resp429.Load(),
		ByEndpoint:    map[string]uint64{},
		Mutations: MutationStats{
			Batches:       m.mutationBatches.Load(),
			Mutations:     m.mutationsTotal.Load(),
			CacheMigrated: m.cacheMigrated.Load(),
			CacheDropped:  m.cacheDropped.Load(),
			Recoveries:    m.recoveries.Load(),
		},
		WhatIf: WhatIfMetrics{
			Probes: m.whatifProbes.Load(),
			Kept:   m.whatifKept.Load(),
		},
	}
	snap.LatencyByEndpoint = map[string]EndpointLatency{}
	m.byEndpoint.Range(func(k, v any) bool {
		es := v.(*endpointStats)
		hs := es.hist.Snapshot()
		snap.ByEndpoint[k.(string)] = es.count.Load()
		snap.LatencyByEndpoint[k.(string)] = EndpointLatency{
			Requests: es.count.Load(),
			Errors:   es.errors.Load(),
			P50Ms:    hs.Quantile(0.50) * 1000,
			P95Ms:    hs.Quantile(0.95) * 1000,
			P99Ms:    hs.Quantile(0.99) * 1000,
		}
		return true
	})

	var (
		lats []float64
		hits uint64
	)
	cutoff := now.Unix() - qpsBuckets
	for i := range m.stripes {
		st := &m.stripes[i]
		st.mu.Lock()
		lats = append(lats, st.lat[:st.latN]...)
		for _, b := range st.qps {
			if b.sec > cutoff {
				hits += b.n
			}
		}
		st.mu.Unlock()
	}

	window := snap.UptimeSeconds
	if window > qpsBuckets {
		window = qpsBuckets
	}
	if window > 0 {
		snap.QPS = float64(hits) / window
	}
	if len(lats) > 0 {
		sort.Float64s(lats)
		snap.Latency = LatencyStats{
			P50Ms: percentile(lats, 0.50),
			P95Ms: percentile(lats, 0.95),
			P99Ms: percentile(lats, 0.99),
		}
	}
	return snap
}

// percentile reads the p-quantile from sorted values by rounding the
// fractional rank p*(n-1) to the nearest sample. Unlike the classic
// nearest-rank ceil(p*n) rule this is symmetric at tiny n — the median of
// two samples reports the upper one rather than always the lower — and it
// degrades to the usual estimate as n grows.
func percentile(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	idx := int(math.Round(p * float64(n-1)))
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return sorted[idx]
}

// EndpointSample is one endpoint's row in a MetricsSample: counters,
// per-bucket histogram counts (obs.DefaultLatencyBuckets layout, +Inf
// last), and percentile estimates derived from them.
type EndpointSample struct {
	Name    string
	Count   uint64
	Errors  uint64
	Buckets []uint64
	P50Ms   float64
	P99Ms   float64
}

// MetricsSample is the reusable scratch the telemetry sampler fills every
// tick via SampleInto. Unlike Snapshot it holds no maps: endpoint rows
// live in a sorted slice that is reused across ticks, so steady-state
// sampling (no new endpoints) performs zero allocations. A MetricsSample
// must not be copied after first use (SampleInto caches a closure over
// its address).
type MetricsSample struct {
	UptimeSeconds float64
	Requests      uint64
	Errors        uint64
	Resp429       uint64

	MutationBatches uint64
	MutationsTotal  uint64
	CacheMigrated   uint64
	CacheDropped    uint64
	Recoveries      uint64
	WhatIfProbes    uint64
	WhatIfKept      uint64

	QPS      float64
	LatP50Ms float64
	LatP95Ms float64
	LatP99Ms float64

	// Endpoints is sorted by name and reused across ticks; rows for
	// endpoints that disappeared keep their last counters (endpoints are
	// never unregistered).
	Endpoints []EndpointSample

	lats    []float64           // reused latency scratch for the striped window
	rangeFn func(k, v any) bool // cached Range closure (avoids one alloc/call)
}

// row returns the endpoint's row, inserting it in name order on first
// sight (the only allocating path; the steady state is a binary search).
func (ms *MetricsSample) row(name string) *EndpointSample {
	lo, hi := 0, len(ms.Endpoints)
	for lo < hi {
		mid := (lo + hi) / 2
		if ms.Endpoints[mid].Name < name {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(ms.Endpoints) && ms.Endpoints[lo].Name == name {
		return &ms.Endpoints[lo]
	}
	ms.Endpoints = append(ms.Endpoints, EndpointSample{})
	copy(ms.Endpoints[lo+1:], ms.Endpoints[lo:])
	ms.Endpoints[lo] = EndpointSample{
		Name:    name,
		Buckets: make([]uint64, len(obs.DefaultLatencyBuckets)+1),
	}
	return &ms.Endpoints[lo]
}

// SampleInto fills ms with the current counters, endpoint rows, and
// striped-window percentiles. It is the sampler's allocation-free
// alternative to Snapshot (which builds fresh maps per call for the JSON
// response). ms is reused across calls; pass the same one every tick.
func (m *Metrics) SampleInto(ms *MetricsSample) {
	now := time.Now()
	ms.UptimeSeconds = now.Sub(m.start).Seconds()
	ms.Requests = m.requests.Load()
	ms.Errors = m.errors.Load()
	ms.Resp429 = m.resp429.Load()
	ms.MutationBatches = m.mutationBatches.Load()
	ms.MutationsTotal = m.mutationsTotal.Load()
	ms.CacheMigrated = m.cacheMigrated.Load()
	ms.CacheDropped = m.cacheDropped.Load()
	ms.Recoveries = m.recoveries.Load()
	ms.WhatIfProbes = m.whatifProbes.Load()
	ms.WhatIfKept = m.whatifKept.Load()

	if ms.rangeFn == nil {
		ms.rangeFn = func(k, v any) bool {
			es := v.(*endpointStats)
			row := ms.row(k.(string))
			row.Count = es.count.Load()
			row.Errors = es.errors.Load()
			es.hist.CopyCounts(row.Buckets)
			row.P50Ms = bucketQuantileMs(row.Buckets, 0.50)
			row.P99Ms = bucketQuantileMs(row.Buckets, 0.99)
			return true
		}
	}
	m.byEndpoint.Range(ms.rangeFn)

	ms.lats = ms.lats[:0]
	var hits uint64
	cutoff := now.Unix() - qpsBuckets
	for i := range m.stripes {
		st := &m.stripes[i]
		st.mu.Lock()
		ms.lats = append(ms.lats, st.lat[:st.latN]...)
		for _, b := range st.qps {
			if b.sec > cutoff {
				hits += b.n
			}
		}
		st.mu.Unlock()
	}
	window := ms.UptimeSeconds
	if window > qpsBuckets {
		window = qpsBuckets
	}
	ms.QPS = 0
	if window > 0 {
		ms.QPS = float64(hits) / window
	}
	ms.LatP50Ms, ms.LatP95Ms, ms.LatP99Ms = 0, 0, 0
	if len(ms.lats) > 0 {
		sort.Float64s(ms.lats)
		ms.LatP50Ms = percentile(ms.lats, 0.50)
		ms.LatP95Ms = percentile(ms.lats, 0.95)
		ms.LatP99Ms = percentile(ms.lats, 0.99)
	}
}

// windowLabel renders a burn window compactly for metric labels ("5m",
// "1h") instead of time.Duration's "5m0s"/"1h0m0s".
func windowLabel(d time.Duration) string {
	switch {
	case d >= time.Hour && d%time.Hour == 0:
		return fmt.Sprintf("%dh", d/time.Hour)
	case d >= time.Minute && d%time.Minute == 0:
		return fmt.Sprintf("%dm", d/time.Minute)
	default:
		return d.String()
	}
}

// bucketQuantileMs estimates the p-quantile in milliseconds from
// per-bucket counts in the obs.DefaultLatencyBuckets layout (same
// nearest-rank, report-the-upper-bound rule as obs.HistSnapshot.Quantile).
func bucketQuantileMs(counts []uint64, p float64) float64 {
	bounds := obs.DefaultLatencyBuckets
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(p * float64(total)))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum uint64
	for i, c := range counts {
		cum += c
		if cum >= rank {
			if i >= len(bounds) {
				return bounds[len(bounds)-1] * 1000
			}
			return bounds[i] * 1000
		}
	}
	return bounds[len(bounds)-1] * 1000
}

// WriteProm renders the metrics in Prometheus text exposition format
// (the /metrics.prom body). snap must come from the server's metricsView
// so the cache/pool/CPU/dataset sections are filled in; the per-endpoint
// histograms are read live from m. The first write error is returned.
func (m *Metrics) WriteProm(w io.Writer, snap MetricsSnapshot) error {
	p := obs.NewPromWriter(w)
	p.Gauge("kspr_uptime_seconds", "Seconds since the server started.", snap.UptimeSeconds)
	p.Counter("kspr_requests_total", "HTTP requests served across all endpoints.", float64(snap.Requests))
	p.Counter("kspr_errors_total", "Requests answered with status >= 400, plus per-item failures inside streamed batches.", float64(snap.Errors))
	p.Counter("kspr_responses_429_total", "Requests shed with 429 (CPU budget exhausted or queue full).", float64(snap.Resp429))
	p.Gauge("kspr_qps_1m", "Requests per second over the last minute.", snap.QPS)

	// Per-endpoint counters and histograms, in sorted endpoint order so
	// the exposition is deterministic.
	type epRow struct {
		name string
		es   *endpointStats
	}
	var eps []epRow
	m.byEndpoint.Range(func(k, v any) bool {
		eps = append(eps, epRow{k.(string), v.(*endpointStats)})
		return true
	})
	sort.Slice(eps, func(i, j int) bool { return eps[i].name < eps[j].name })
	if len(eps) > 0 {
		p.Header("kspr_endpoint_requests_total", "Requests per endpoint.", "counter")
		for _, ep := range eps {
			p.Sample("kspr_endpoint_requests_total", []obs.Label{{Name: "endpoint", Value: ep.name}}, float64(ep.es.count.Load()))
		}
		p.Header("kspr_endpoint_errors_total", "Error responses per endpoint.", "counter")
		for _, ep := range eps {
			p.Sample("kspr_endpoint_errors_total", []obs.Label{{Name: "endpoint", Value: ep.name}}, float64(ep.es.errors.Load()))
		}
		p.Header("kspr_request_duration_seconds", "Request latency per endpoint.", "histogram")
		for _, ep := range eps {
			p.HistogramSeries("kspr_request_duration_seconds", []obs.Label{{Name: "endpoint", Value: ep.name}}, ep.es.hist.Snapshot())
		}
	}

	p.Counter("kspr_cache_hits_total", "Result cache hits.", float64(snap.Cache.Hits))
	p.Counter("kspr_cache_misses_total", "Result cache misses.", float64(snap.Cache.Misses))
	p.Gauge("kspr_cache_entries", "Entries currently cached.", float64(snap.Cache.Entries))
	p.Counter("kspr_cache_results_migrated_total", "Cached results carried across dataset generations.", float64(snap.Mutations.CacheMigrated))
	p.Counter("kspr_cache_results_dropped_total", "Cached results orphaned by dataset generations.", float64(snap.Mutations.CacheDropped))
	p.Gauge("kspr_pool_workers", "Worker pool size.", float64(snap.Pool.Workers))
	p.Gauge("kspr_pool_depth", "Queued plus running jobs in the worker pool.", float64(snap.Pool.Depth))
	p.Gauge("kspr_cpu_extra_slots", "Extra CPU slots in the parallelism budget.", float64(snap.CPU.ExtraSlots))
	p.Gauge("kspr_cpu_slots_in_use", "Extra CPU slots currently held by parallel queries.", float64(snap.CPU.InUse))
	p.Counter("kspr_mutation_batches_total", "Applied dataset mutation batches.", float64(snap.Mutations.Batches))
	p.Counter("kspr_mutations_total", "Individual mutations applied.", float64(snap.Mutations.Mutations))
	p.Counter("kspr_wal_recoveries_total", "Datasets restored by WAL replay at startup.", float64(snap.Mutations.Recoveries))
	p.Counter("kspr_whatif_probes_total", "What-if impact probes evaluated.", float64(snap.WhatIf.Probes))
	p.Counter("kspr_whatif_kept_total", "What-if probes absorbed by the incremental keep path.", float64(snap.WhatIf.Kept))
	keepRate := 0.0
	if snap.WhatIf.Probes > 0 {
		keepRate = float64(snap.WhatIf.Kept) / float64(snap.WhatIf.Probes)
	}
	p.Gauge("kspr_whatif_keep_rate", "Fraction of what-if probes answered without an engine run.", keepRate)
	p.Gauge("kspr_datasets", "Datasets currently registered.", float64(len(snap.Datasets)))
	if len(snap.Datasets) > 0 {
		// 1 = the candidate index came from the persisted layout (warm
		// restart), 0 = it was rebuilt cold. Snapshot order is already
		// sorted by name.
		p.Header("ksprd_index_warm", "Whether the dataset's candidate index was restored warm (1) or rebuilt cold (0).", "gauge")
		for _, d := range snap.Datasets {
			v := 0.0
			if d.IndexWarm {
				v = 1.0
			}
			p.Sample("ksprd_index_warm", []obs.Label{{Name: "dataset", Value: d.Name}}, v)
		}
	}

	// Go runtime telemetry and binary identity.
	p.Gauge("ksprd_go_goroutines", "Live goroutines.", float64(snap.Runtime.Goroutines))
	p.Gauge("ksprd_go_heap_inuse_bytes", "Heap bytes in use (live objects plus unused span tails).", float64(snap.Runtime.HeapInuseBytes))
	p.Gauge("ksprd_go_gc_pause_p99_seconds", "p99 GC stop-the-world pause since process start.", snap.Runtime.GCPauseP99Ms/1000)
	p.Header("ksprd_build_info", "Binary identity; the value is always 1, the labels carry the facts.", "gauge")
	p.Sample("ksprd_build_info", []obs.Label{
		{Name: "version", Value: snap.Build.Version},
		{Name: "go", Value: snap.Build.Go},
		{Name: "goamd64", Value: snap.Build.GOAMD64},
	}, 1)

	// SLO burn rates and the rolled-up health verdict (absent when the SLO
	// engine is off).
	if snap.SLO != nil {
		healthy := 1.0
		if !snap.SLO.Healthy {
			healthy = 0
		}
		p.Gauge("ksprd_slo_healthy", "1 when no SLO is actively breaching its burn-rate thresholds.", healthy)
		p.Gauge("ksprd_health_score", "Overall health score in [0,1]: min over per-SLO scores.", snap.SLO.Score)
		if len(snap.SLO.Objectives) > 0 {
			p.Header("ksprd_slo_burn_rate", "Error-budget burn rate per SLO and window.", "gauge")
			for _, st := range snap.SLO.Objectives {
				for _, wb := range st.Windows {
					p.Sample("ksprd_slo_burn_rate", []obs.Label{
						{Name: "slo", Value: st.Name},
						{Name: "window", Value: windowLabel(wb.Short)},
					}, wb.BurnShort)
					p.Sample("ksprd_slo_burn_rate", []obs.Label{
						{Name: "slo", Value: st.Name},
						{Name: "window", Value: windowLabel(wb.Long)},
					}, wb.BurnLong)
				}
			}
		}
	}
	return p.Err()
}
