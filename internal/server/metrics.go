package server

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// latWindow is the number of most recent request latencies kept for
// percentile estimation.
const latWindow = 2048

// qpsBuckets is the length (seconds) of the sliding QPS window.
const qpsBuckets = 60

// Metrics aggregates the serving counters exposed on /metrics. All methods
// are safe for concurrent use; the hot path is two atomics plus one small
// mutexed ring update.
type Metrics struct {
	start    time.Time
	requests atomic.Uint64
	errors   atomic.Uint64

	mutationBatches atomic.Uint64
	mutationsTotal  atomic.Uint64
	cacheMigrated   atomic.Uint64
	cacheDropped    atomic.Uint64
	recoveries      atomic.Uint64

	whatifProbes atomic.Uint64
	whatifKept   atomic.Uint64

	mu     sync.Mutex
	lat    [latWindow]float64 // ring of latencies in milliseconds
	latIdx int
	latN   int
	qps    [qpsBuckets]qpsBucket

	byEndpoint sync.Map // string -> *atomic.Uint64
}

type qpsBucket struct {
	sec int64
	n   uint64
}

// NewMetrics starts the clock.
func NewMetrics() *Metrics {
	return &Metrics{start: time.Now()}
}

// Observe records one finished request.
func (m *Metrics) Observe(endpoint string, d time.Duration, isErr bool) {
	m.requests.Add(1)
	if isErr {
		m.errors.Add(1)
	}
	cnt, ok := m.byEndpoint.Load(endpoint)
	if !ok {
		cnt, _ = m.byEndpoint.LoadOrStore(endpoint, new(atomic.Uint64))
	}
	cnt.(*atomic.Uint64).Add(1)

	sec := time.Now().Unix()
	m.mu.Lock()
	m.lat[m.latIdx] = float64(d) / float64(time.Millisecond)
	m.latIdx = (m.latIdx + 1) % latWindow
	if m.latN < latWindow {
		m.latN++
	}
	b := &m.qps[sec%qpsBuckets]
	if b.sec != sec {
		b.sec, b.n = sec, 0
	}
	b.n++
	m.mu.Unlock()
}

// AddErrors bumps the error counter by n without recording requests; used
// for failures that hide inside an otherwise-successful response (e.g.
// per-query errors in a streamed 200 batch).
func (m *Metrics) AddErrors(n uint64) {
	if n > 0 {
		m.errors.Add(n)
	}
}

// AddMutationBatch records one applied mutation batch of n mutations,
// with migrated/dropped counting the cached results carried across the
// generation versus orphaned by it.
func (m *Metrics) AddMutationBatch(n, migrated, dropped int) {
	m.mutationBatches.Add(1)
	m.mutationsTotal.Add(uint64(n))
	m.cacheMigrated.Add(uint64(migrated))
	m.cacheDropped.Add(uint64(dropped))
}

// AddRecoveries records datasets restored by WAL replay at startup.
func (m *Metrics) AddRecoveries(n int) {
	m.recoveries.Add(uint64(n))
}

// AddWhatIf records one what-if call's probe economy: probes evaluated and
// how many of them the incremental keep/classification path absorbed.
func (m *Metrics) AddWhatIf(probes, kept uint64) {
	m.whatifProbes.Add(probes)
	m.whatifKept.Add(kept)
}

// WhatIfMetrics is the /metrics view of the what-if layer.
type WhatIfMetrics struct {
	// Probes counts impact evaluations across all what-if calls; Kept the
	// ones answered without an engine run (Maintainer keep tiers, frontier
	// dominator classification).
	Probes uint64 `json:"probes_total"`
	Kept   uint64 `json:"kept_total"`
}

// MutationStats is the /metrics view of the live-dataset subsystem.
type MutationStats struct {
	// Batches / Mutations count applied mutation batches and the
	// individual mutations inside them.
	Batches   uint64 `json:"batches_total"`
	Mutations uint64 `json:"mutations_total"`
	// CacheMigrated counts cached kSPR results proven unaffected by a
	// mutation batch and carried to the new generation; CacheDropped those
	// orphaned (left to age out of the LRU).
	CacheMigrated uint64 `json:"cache_results_migrated_total"`
	CacheDropped  uint64 `json:"cache_results_dropped_total"`
	// Recoveries counts datasets restored by snapshot load + WAL replay at
	// startup.
	Recoveries uint64 `json:"wal_recoveries_total"`
}

// LatencyStats are percentile estimates over the recent-latency window.
type LatencyStats struct {
	P50Ms float64 `json:"p50_ms"`
	P95Ms float64 `json:"p95_ms"`
	P99Ms float64 `json:"p99_ms"`
}

// MetricsSnapshot is the JSON body of /metrics.
type MetricsSnapshot struct {
	UptimeSeconds float64           `json:"uptime_seconds"`
	Requests      uint64            `json:"requests_total"`
	Errors        uint64            `json:"errors_total"`
	QPS           float64           `json:"qps_1m"`
	Latency       LatencyStats      `json:"latency"`
	Cache         CacheStats        `json:"cache"`
	Pool          PoolStats         `json:"pool"`
	CPU           CPUStats          `json:"cpu"`
	Mutations     MutationStats     `json:"mutations"`
	WhatIf        WhatIfMetrics     `json:"whatif"`
	ByEndpoint    map[string]uint64 `json:"requests_by_endpoint"`
	Datasets      []DatasetInfo     `json:"datasets"`
}

// PoolStats is the /metrics view of the worker pool.
type PoolStats struct {
	Workers int   `json:"workers"`
	Depth   int64 `json:"depth"`
}

// Snapshot computes the current metrics view. Cache/pool/registry sections
// are filled in by the server, which owns those components.
func (m *Metrics) Snapshot() MetricsSnapshot {
	now := time.Now()
	snap := MetricsSnapshot{
		UptimeSeconds: now.Sub(m.start).Seconds(),
		Requests:      m.requests.Load(),
		Errors:        m.errors.Load(),
		ByEndpoint:    map[string]uint64{},
		Mutations: MutationStats{
			Batches:       m.mutationBatches.Load(),
			Mutations:     m.mutationsTotal.Load(),
			CacheMigrated: m.cacheMigrated.Load(),
			CacheDropped:  m.cacheDropped.Load(),
			Recoveries:    m.recoveries.Load(),
		},
		WhatIf: WhatIfMetrics{
			Probes: m.whatifProbes.Load(),
			Kept:   m.whatifKept.Load(),
		},
	}
	m.byEndpoint.Range(func(k, v any) bool {
		snap.ByEndpoint[k.(string)] = v.(*atomic.Uint64).Load()
		return true
	})

	m.mu.Lock()
	lats := make([]float64, m.latN)
	copy(lats, m.lat[:m.latN])
	var hits uint64
	cutoff := now.Unix() - qpsBuckets
	for _, b := range m.qps {
		if b.sec > cutoff {
			hits += b.n
		}
	}
	m.mu.Unlock()

	window := snap.UptimeSeconds
	if window > qpsBuckets {
		window = qpsBuckets
	}
	if window > 0 {
		snap.QPS = float64(hits) / window
	}
	if len(lats) > 0 {
		sort.Float64s(lats)
		snap.Latency = LatencyStats{
			P50Ms: percentile(lats, 0.50),
			P95Ms: percentile(lats, 0.95),
			P99Ms: percentile(lats, 0.99),
		}
	}
	return snap
}

// percentile reads the p-quantile from sorted values (nearest-rank).
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
