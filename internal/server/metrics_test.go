package server

import (
	"sync"
	"testing"
	"time"
)

// TestMetricsStripedLatencyWindow checks that the striped ring still
// behaves like one latWindow-sized window: all samples are visible below
// capacity, and the union caps at latWindow beyond it.
func TestMetricsStripedLatencyWindow(t *testing.T) {
	m := NewMetrics()
	for i := 0; i < 100; i++ {
		m.Observe("kspr", time.Millisecond, 200)
	}
	snap := m.Snapshot()
	if snap.Requests != 100 {
		t.Fatalf("requests = %d, want 100", snap.Requests)
	}
	if snap.Latency.P50Ms <= 0 {
		t.Fatalf("p50 = %v, want > 0 after 100 observations", snap.Latency.P50Ms)
	}
	for i := 0; i < latWindow*2; i++ {
		m.Observe("kspr", 2*time.Millisecond, 200)
	}
	total := 0
	for i := range m.stripes {
		st := &m.stripes[i]
		st.mu.Lock()
		total += st.latN
		st.mu.Unlock()
	}
	if total != latWindow {
		t.Fatalf("stripes hold %d samples, want exactly latWindow=%d", total, latWindow)
	}
}

// TestMetricsStripedQPSSum checks that per-second request counts sum
// exactly across stripes — striping must not change the QPS a snapshot
// reports.
func TestMetricsStripedQPSSum(t *testing.T) {
	m := NewMetrics()
	const reqs = 512
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < reqs/8; i++ {
				m.Observe("kspr", time.Millisecond, 200)
			}
		}()
	}
	wg.Wait()
	var hits uint64
	cutoff := time.Now().Unix() - qpsBuckets
	for i := range m.stripes {
		st := &m.stripes[i]
		st.mu.Lock()
		for _, b := range st.qps {
			if b.sec > cutoff {
				hits += b.n
			}
		}
		st.mu.Unlock()
	}
	if hits != reqs {
		t.Fatalf("qps buckets hold %d hits, want %d", hits, reqs)
	}
}

// BenchmarkMetricsObserveParallel measures the per-request metrics
// record under parallel load. Every request of every endpoint passes
// through Observe, so this lock was the serving stack's only global
// per-request serialization point before the ring was striped.
func BenchmarkMetricsObserveParallel(b *testing.B) {
	m := NewMetrics()
	d := 3 * time.Millisecond
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			m.Observe("kspr", d, 200)
		}
	})
}
