package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	kspr "repro"
	"repro/internal/dataset"
	"repro/internal/obs"
)

// ---- wire types ----------------------------------------------------------

type errorResponse struct {
	Error string `json:"error"`
}

type loadRequest struct {
	Name string `json:"name"`
	// Exactly one source: a CSV file path, inline CSV text, or a synthetic
	// generator spec.
	Path     string       `json:"path,omitempty"`
	CSV      string       `json:"csv,omitempty"`
	Generate *generateReq `json:"generate,omitempty"`
}

type generateReq struct {
	Dist string `json:"dist"` // IND | COR | ANTI
	N    int    `json:"n"`
	D    int    `json:"d"`
	Seed int64  `json:"seed"`
}

type queryRequest struct {
	Dataset string `json:"dataset"`
	Focal   int    `json:"focal"`
	// FocalVector queries a hypothetical record not in the dataset; when
	// set, Focal is ignored.
	FocalVector []float64 `json:"focal_vector,omitempty"`
	K           int       `json:"k"`
	Algorithm   string    `json:"algorithm,omitempty"` // cta | p-cta | lp-cta | k-skyband | approx
	Space       string    `json:"space,omitempty"`     // transformed | original
	Bounds      string    `json:"bounds,omitempty"`    // fast | group | record
	Epsilon     float64   `json:"epsilon,omitempty"`   // approx accuracy target
	// Volumes measures every region (exact for 2-d preference spaces,
	// Monte-Carlo above); VolumeSamples bounds the Monte-Carlo sample
	// count (0 = library default, 10000). Both are part of the cache key.
	Volumes       bool  `json:"volumes,omitempty"`
	VolumeSamples int   `json:"volume_samples,omitempty"`
	NoGeometry    bool  `json:"no_geometry,omitempty"`
	Seed          int64 `json:"seed,omitempty"`
	TimeoutMs     int   `json:"timeout_ms,omitempty"`
	NoCache       bool  `json:"no_cache,omitempty"`
	// Parallelism asks the engine to expand this query on up to this many
	// goroutines. Absent or 0 means serial: unlike the library default, the
	// server only parallelizes when explicitly asked, so one request cannot
	// grab cores unrequested. The grant is capped by the server's
	// MaxParallelism and by what the shared CPU budget has free at
	// execution time; results are identical at any value, so the field is
	// excluded from the cache key.
	Parallelism int `json:"parallelism,omitempty"`
}

type regionWire struct {
	Rank      int         `json:"rank"`
	RankExact bool        `json:"rank_exact"`
	Witness   []float64   `json:"witness"`
	Vertices  [][]float64 `json:"vertices,omitempty"`
	Volume    float64     `json:"volume,omitempty"`
	// Outscorers are the stable option ids proven to outrank the focal
	// throughout the region (complete when rank_exact). Stable ids stay
	// valid across result-preserving mutations, so migrated cache entries
	// keep reporting the right competitors.
	Outscorers []int64 `json:"outscorers,omitempty"`
}

type statsWire struct {
	ProcessedRecords int     `json:"processed_records"`
	CellTreeNodes    int     `json:"celltree_nodes"`
	Batches          int     `json:"batches"`
	BaseRank         int     `json:"base_rank"`
	LPSolves         int     `json:"lp_solves"`
	EarlyReported    int     `json:"early_reported"`
	EarlyPruned      int     `json:"early_pruned"`
	CellsPruned      int     `json:"cells_pruned"`
	Parallelism      int     `json:"parallelism,omitempty"`
	Regions          int     `json:"regions"`
	ElapsedMs        float64 `json:"elapsed_ms"`
}

type queryResponse struct {
	Dataset         string       `json:"dataset"`
	Generation      uint64       `json:"generation"`
	Focal           int          `json:"focal"`
	K               int          `json:"k"`
	Algorithm       string       `json:"algorithm"`
	Space           string       `json:"space"`
	Regions         []regionWire `json:"regions"`
	UncertainCount  int          `json:"uncertain_regions,omitempty"`
	UncertainVolume float64      `json:"uncertain_volume,omitempty"`
	Converged       *bool        `json:"converged,omitempty"`
	Stats           statsWire    `json:"stats"`
	Cached          bool         `json:"cached"`
	// Trace carries the engine phase breakdown under ?debug=trace.
	Trace *traceWire `json:"trace,omitempty"`
}

type batchQuery struct {
	Focal int `json:"focal"`
	// FocalVector queries a hypothetical record; when set, Focal is
	// ignored.
	FocalVector []float64 `json:"focal_vector,omitempty"`
	// K overrides the envelope's default shortlist size for this item.
	K int `json:"k"`
}

// batchRequest is the envelope of a batch call: the whole JSON body in the
// legacy application/json form (with inline Queries), or the first line of
// an application/x-ndjson body (items then follow one per line).
type batchRequest struct {
	Dataset string       `json:"dataset"`
	Queries []batchQuery `json:"queries,omitempty"`
	// K is the default shortlist size for items that do not set their own.
	K             int     `json:"k,omitempty"`
	Algorithm     string  `json:"algorithm,omitempty"`
	Space         string  `json:"space,omitempty"`
	Bounds        string  `json:"bounds,omitempty"`
	Epsilon       float64 `json:"epsilon,omitempty"`
	Volumes       bool    `json:"volumes,omitempty"`
	VolumeSamples int     `json:"volume_samples,omitempty"`
	NoGeometry    bool    `json:"no_geometry,omitempty"`
	Seed          int64   `json:"seed,omitempty"`
	TimeoutMs     int     `json:"timeout_ms,omitempty"`
	// ItemTimeoutMs bounds each item's processing time individually
	// (measured from when the item starts running, not from request
	// arrival), so one pathological item 504s on its own line instead of
	// consuming the batch deadline.
	ItemTimeoutMs int  `json:"item_timeout_ms,omitempty"`
	NoCache       bool `json:"no_cache,omitempty"`
	// Parallelism is the engine parallelism for the WHOLE batch: the batch
	// runs as one shared-work pass on 1 + granted extra CPU slots. When the
	// budget has slots but all are claimed, the request fails with 429
	// rather than degrading N queries to one core.
	Parallelism int `json:"parallelism,omitempty"`
}

// batchLine is one NDJSON line of the batch stream.
type batchLine struct {
	Index  int            `json:"index"`
	Error  string         `json:"error,omitempty"`
	Status int            `json:"status,omitempty"`
	Result *queryResponse `json:"result,omitempty"`
	// Trace is the batch-wide phase breakdown, emitted once as a trailer
	// line with Index == -1 under ?debug=trace (the engine aggregates all
	// items into one trace, so per-item attribution is not meaningful).
	Trace *traceWire `json:"trace,omitempty"`
}

type topkRequest struct {
	Dataset string    `json:"dataset"`
	Weights []float64 `json:"weights"`
	K       int       `json:"k"`
}

type topkEntry struct {
	ID    int     `json:"id"`
	Score float64 `json:"score"`
	Label string  `json:"label,omitempty"`
}

type topkResponse struct {
	Dataset    string      `json:"dataset"`
	Generation uint64      `json:"generation"`
	K          int         `json:"k"`
	Results    []topkEntry `json:"results"`
}

type skylineResponse struct {
	Dataset    string   `json:"dataset"`
	Generation uint64   `json:"generation"`
	K          int      `json:"k,omitempty"` // >0: k-skyband
	IDs        []int    `json:"ids"`
	Labels     []string `json:"labels,omitempty"`
	Count      int      `json:"count"`
}

type densityReq struct {
	// Name selects the preference density: uniform (default), dirichlet
	// (with Alpha, one concentration per attribute), or gaussian (with
	// Center in the weight simplex and Sigma).
	Name   string    `json:"name"`
	Alpha  []float64 `json:"alpha,omitempty"`
	Center []float64 `json:"center,omitempty"`
	Sigma  float64   `json:"sigma,omitempty"`
}

type impactRequest struct {
	Dataset   string      `json:"dataset"`
	Focal     int         `json:"focal"`
	K         int         `json:"k"`
	Algorithm string      `json:"algorithm,omitempty"`
	Samples   int         `json:"samples,omitempty"`
	Seed      int64       `json:"seed,omitempty"`
	Density   *densityReq `json:"density,omitempty"`
	TimeoutMs int         `json:"timeout_ms,omitempty"`
	NoCache   bool        `json:"no_cache,omitempty"`
}

type impactResponse struct {
	Dataset     string  `json:"dataset"`
	Generation  uint64  `json:"generation"`
	Focal       int     `json:"focal"`
	K           int     `json:"k"`
	Density     string  `json:"density"`
	Samples     int     `json:"samples"`
	Probability float64 `json:"probability"`
	Regions     int     `json:"regions"`
	Cached      bool    `json:"cached"`
}

// ---- helpers -------------------------------------------------------------

// maxImpactSamples bounds the Monte-Carlo sample count any single request
// may demand of a pool worker (impact sampling, volume measurement, and
// the what-if probes all share it).
const maxImpactSamples = 1_000_000

// normalizeVolumeSamples canonicalizes the volume_samples field before it
// enters a cache key: it is meaningless without volumes, non-positive
// means the library default (10000), and the per-request Monte-Carlo cap
// applies — so semantically identical requests share one cache entry.
func normalizeVolumeSamples(volumes bool, samples int) int {
	switch {
	case !volumes:
		return 0
	case samples <= 0:
		return 10000
	case samples > maxImpactSamples:
		return maxImpactSamples
	}
	return samples
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// errStatus maps a query error to an HTTP status: deadline expiry is 504
// (the request-scoped timeout fired mid-query), cancellation 499-style 503,
// pool shutdown 503, everything else 400 (all remaining library errors are
// input validation: bad focal, bad k, ...).
func errStatusCode(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled), errors.Is(err, ErrPoolClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 16<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, "invalid request body: %v", err)
		return false
	}
	return true
}

func parseAlgorithm(s string) (kspr.Algorithm, bool, error) {
	switch strings.ToLower(s) {
	case "", "lp-cta", "lpcta":
		return kspr.LPCTA, false, nil
	case "cta":
		return kspr.CTA, false, nil
	case "p-cta", "pcta":
		return kspr.PCTA, false, nil
	case "k-skyband", "kskyband":
		return kspr.KSkybandCTA, false, nil
	case "approx":
		return kspr.LPCTA, true, nil
	default:
		return 0, false, fmt.Errorf("unknown algorithm %q", s)
	}
}

func parseSpace(s string) (kspr.Space, error) {
	switch strings.ToLower(s) {
	case "", "transformed":
		return kspr.Transformed, nil
	case "original":
		return kspr.Original, nil
	default:
		return 0, fmt.Errorf("unknown space %q", s)
	}
}

func parseBounds(s string) (kspr.BoundsMode, error) {
	switch strings.ToLower(s) {
	case "", "fast", "fast_bounds":
		return kspr.FastBounds, nil
	case "group", "group_bounds":
		return kspr.GroupBounds, nil
	case "record", "record_bounds":
		return kspr.RecordBounds, nil
	default:
		return 0, fmt.Errorf("unknown bounds mode %q", s)
	}
}

// timeout resolves the effective per-request deadline.
func (s *Server) timeout(ms int) time.Duration {
	t := s.cfg.DefaultTimeout
	if ms > 0 {
		t = time.Duration(ms) * time.Millisecond
	}
	if t > s.cfg.MaxTimeout {
		t = s.cfg.MaxTimeout
	}
	return t
}

// ---- dataset admin -------------------------------------------------------

func (s *Server) handleDatasetList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.registry.List())
}

func (s *Server) handleDatasetLoad(w http.ResponseWriter, r *http.Request) {
	var req loadRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Name == "" {
		writeError(w, http.StatusBadRequest, "dataset name is required")
		return
	}
	sources := 0
	for _, set := range []bool{req.Path != "", req.CSV != "", req.Generate != nil} {
		if set {
			sources++
		}
	}
	if sources != 1 {
		writeError(w, http.StatusBadRequest, "exactly one of path, csv, generate is required")
		return
	}
	var (
		snap *Snapshot
		err  error
	)
	switch {
	case req.Path != "":
		snap, err = s.registry.LoadCSV(req.Name, req.Path)
	case req.CSV != "":
		var ds *dataset.Dataset
		ds, err = dataset.ReadCSV(strings.NewReader(req.CSV), req.Name)
		if err == nil {
			snap, err = s.registry.Load(req.Name, ds, "inline")
		}
	default:
		g := req.Generate
		var ds *dataset.Dataset
		ds, err = dataset.Generate(dataset.Distribution(strings.ToUpper(g.Dist)), g.N, g.D, g.Seed)
		if err == nil {
			snap, err = s.registry.Load(req.Name, ds,
				fmt.Sprintf("generated %s n=%d d=%d seed=%d", strings.ToUpper(g.Dist), g.N, g.D, g.Seed))
		}
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	reqInfoFrom(r.Context()).noteDataset(snap)
	s.journal.Append(obs.JournalEvent{
		Type:            obs.EventDatasetLoad,
		Dataset:         snap.Name,
		Generation:      snap.Generation,
		StoreGeneration: snap.StoreGeneration,
		Detail:          map[string]any{"records": snap.DB.Len(), "source": snap.Source},
	})
	writeJSON(w, http.StatusOK, DatasetInfo{
		Name:            snap.Name,
		Generation:      snap.Generation,
		StoreGeneration: snap.StoreGeneration,
		Durable:         snap.Durable,
		Records:         snap.DB.Len(),
		Dims:            snap.DB.Dim(),
		Attributes:      snap.Dataset.Attributes,
		Source:          snap.Source,
		LoadedAt:        snap.LoadedAt,
		IndexWarm:       snap.IndexWarm,
	})
}

func (s *Server) handleDatasetUnload(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !s.registry.Unload(name) {
		writeError(w, http.StatusNotFound, "dataset %q not found", name)
		return
	}
	s.journal.Append(obs.JournalEvent{Type: obs.EventDatasetUnload, Dataset: name})
	writeJSON(w, http.StatusOK, map[string]string{"unloaded": name})
}

// ---- kSPR query ----------------------------------------------------------

// cacheKey canonicalizes a query into the result-cache key: it is built
// from the PARSED algorithm/space/bounds and the effective epsilon, so
// spelling variants of the same query ("lp-cta", "lpcta", "") share one
// entry. The generation prefix makes reloads invalidate implicitly.
func cacheKey(snap *Snapshot, req queryRequest, algo kspr.Algorithm, approx bool,
	space kspr.Space, bounds kspr.BoundsMode, eps float64) string {
	var b strings.Builder
	algoName := algo.String()
	if approx {
		algoName = "approx"
	}
	fmt.Fprintf(&b, "%s@%d|kspr|k=%d|a=%s|s=%s|b=%s|v=%t|vs=%d|g=%t|e=%g|seed=%d",
		snap.Name, snap.Generation, req.K,
		algoName, space.String(), bounds.String(),
		req.Volumes, req.VolumeSamples, !req.NoGeometry, eps, req.Seed)
	if req.FocalVector != nil {
		b.WriteString("|fv=")
		for _, v := range req.FocalVector {
			fmt.Fprintf(&b, "%x,", math.Float64bits(v))
		}
	} else {
		fmt.Fprintf(&b, "|f=%d", req.Focal)
	}
	return b.String()
}

// cachedQuery is what the result cache stores: the canonical request (the
// cache key's input, kept so the mutation path can re-key entries across
// generations), the wire response, and the raw library result (reused by
// /v1/impact for region-membership sampling). All are immutable once
// cached.
type cachedQuery struct {
	req  queryRequest
	resp *queryResponse
	raw  any // *kspr.Result or *kspr.ApproxResult
}

// runKSPR executes (or serves from cache) one kSPR query on the pool. It
// returns the wire response plus the raw library result.
func (s *Server) runKSPR(ctx context.Context, snap *Snapshot, req queryRequest) (*queryResponse, any, error) {
	algo, approx, err := parseAlgorithm(req.Algorithm)
	if err != nil {
		return nil, nil, err
	}
	space, err := parseSpace(req.Space)
	if err != nil {
		return nil, nil, err
	}
	bounds, err := parseBounds(req.Bounds)
	if err != nil {
		return nil, nil, err
	}
	if req.K < 1 {
		return nil, nil, fmt.Errorf("k must be >= 1, got %d", req.K)
	}
	if approx && space == kspr.Original {
		return nil, nil, fmt.Errorf("approx queries support only the transformed space")
	}
	req.VolumeSamples = normalizeVolumeSamples(req.Volumes, req.VolumeSamples)
	eps := req.Epsilon
	if eps <= 0 {
		eps = 0.01
	}

	// EXPLAIN-mode requests bypass the cache entirely: a hit would have no
	// phases to report, and a traced response must not be shared with
	// untraced callers. Slow-query-log traces do not force a miss — a hit
	// is by definition not slow.
	info := reqInfoFrom(ctx)
	useCache := !req.NoCache && !info.Debug()
	key := cacheKey(snap, req, algo, approx, space, bounds, eps)
	if useCache {
		if v, ok := s.cache.Get(key); ok {
			cq := v.(*cachedQuery)
			resp := *cq.resp // shallow copy: regions are shared, immutable
			resp.Cached = true
			return &resp, cq.raw, nil
		}
	}

	// Resolve the parallelism ask now; the actual CPU-slot grant happens on
	// the worker, so slots are held only while the query runs, not while it
	// queues.
	ask := req.Parallelism
	if ask < 1 {
		ask = 1
	}
	if ask > s.cfg.MaxParallelism {
		ask = s.cfg.MaxParallelism
	}

	val, err := s.pool.Submit(ctx, func(ctx context.Context) (any, error) {
		if approx {
			if req.FocalVector != nil {
				return snap.DB.KSPRApproxVectorCtx(ctx, req.FocalVector, req.K, eps)
			}
			return snap.DB.KSPRApproxCtx(ctx, req.Focal, req.K, eps)
		}
		parallelism := 1
		if ask > 1 {
			granted := s.cpu.Acquire(ask - 1)
			defer s.cpu.Release(granted)
			parallelism = 1 + granted
		}
		opts := []kspr.QueryOption{
			kspr.WithContext(ctx),
			kspr.WithAlgorithm(algo),
			kspr.WithSpace(space),
			kspr.WithBoundsMode(bounds),
			kspr.WithSeed(req.Seed),
			kspr.WithParallelism(parallelism),
			kspr.WithTrace(info.Trace()),
		}
		if req.Volumes {
			opts = append(opts, kspr.WithVolumes(req.VolumeSamples))
		}
		if req.NoGeometry {
			opts = append(opts, kspr.WithoutGeometry())
		}
		if req.FocalVector != nil {
			return snap.DB.KSPRVector(req.FocalVector, req.K, opts...)
		}
		return snap.DB.KSPR(req.Focal, req.K, opts...)
	})
	if err != nil {
		return nil, nil, err
	}

	resp := &queryResponse{
		Dataset:    snap.Name,
		Generation: snap.Generation,
		Focal:      req.Focal,
		K:          req.K,
		Space:      space.String(),
	}
	if req.FocalVector != nil {
		resp.Focal = -1
	}
	switch res := val.(type) {
	case *kspr.Result:
		resp.Algorithm = algo.String()
		fillResult(resp, snap, res)
	case *kspr.ApproxResult:
		resp.Algorithm = "approx"
		fillResult(resp, snap, &res.Result)
		resp.UncertainCount = len(res.Uncertain)
		resp.UncertainVolume = res.UncertainVolume
		conv := res.Converged
		resp.Converged = &conv
	}
	if useCache {
		s.cache.Put(key, &cachedQuery{req: req, resp: resp, raw: val})
	}
	return resp, val, nil
}

func fillResult(resp *queryResponse, snap *Snapshot, res *kspr.Result) {
	resp.Regions = make([]regionWire, len(res.Regions))
	for i := range res.Regions {
		reg := &res.Regions[i]
		wire := regionWire{
			Rank:      reg.Rank,
			RankExact: reg.RankExact,
			Witness:   reg.Witness,
			Volume:    reg.Volume,
		}
		if len(reg.Outscorers) > 0 {
			wire.Outscorers = make([]int64, 0, len(reg.Outscorers))
			for _, id := range reg.Outscorers {
				if sid, ok := snap.DB.StableID(id); ok {
					wire.Outscorers = append(wire.Outscorers, sid)
				}
			}
		}
		if len(reg.Vertices) > 0 {
			wire.Vertices = make([][]float64, len(reg.Vertices))
			for j, v := range reg.Vertices {
				wire.Vertices[j] = v
			}
		}
		resp.Regions[i] = wire
	}
	resp.Stats = statsWire{
		ProcessedRecords: res.Stats.ProcessedRecords,
		CellTreeNodes:    res.Stats.CellTreeNodes,
		Batches:          res.Stats.Batches,
		BaseRank:         res.Stats.BaseRank,
		LPSolves:         res.Stats.LPSolves,
		EarlyReported:    res.Stats.EarlyReported,
		EarlyPruned:      res.Stats.EarlyPruned,
		CellsPruned:      res.Stats.CellsPruned,
		Parallelism:      res.Stats.Parallelism,
		Regions:          len(res.Regions),
		ElapsedMs:        float64(res.Stats.Elapsed) / float64(time.Millisecond),
	}
}

func (s *Server) handleKSPR(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if !decodeBody(w, r, &req) {
		return
	}
	s.serveKSPR(w, r, req)
}

// handleKSPRGet is the query-string form of /v1/kspr — the same query
// surface as the POST body (minus focal_vector, which has no natural
// query-string encoding), convenient for curl and EXPLAIN-mode poking:
// GET /v1/kspr?dataset=d&focal=3&k=5&algorithm=lp-cta&debug=trace.
func (s *Server) handleKSPRGet(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	req := queryRequest{
		Dataset:   q.Get("dataset"),
		Algorithm: q.Get("algorithm"),
		Space:     q.Get("space"),
		Bounds:    q.Get("bounds"),
	}
	intFields := map[string]*int{
		"focal": &req.Focal, "k": &req.K,
		"volume_samples": &req.VolumeSamples,
		"timeout_ms":     &req.TimeoutMs,
		"parallelism":    &req.Parallelism,
	}
	for name, dst := range intFields {
		raw := q.Get(name)
		if raw == "" {
			continue
		}
		v, err := strconv.Atoi(raw)
		if err != nil {
			writeError(w, http.StatusBadRequest, "invalid %s=%q: %v", name, raw, err)
			return
		}
		*dst = v
	}
	boolFields := map[string]*bool{
		"volumes": &req.Volumes, "no_geometry": &req.NoGeometry, "no_cache": &req.NoCache,
	}
	for name, dst := range boolFields {
		raw := q.Get(name)
		if raw == "" {
			continue
		}
		v, err := strconv.ParseBool(raw)
		if err != nil {
			writeError(w, http.StatusBadRequest, "invalid %s=%q: %v", name, raw, err)
			return
		}
		*dst = v
	}
	if raw := q.Get("epsilon"); raw != "" {
		v, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "invalid epsilon=%q: %v", raw, err)
			return
		}
		req.Epsilon = v
	}
	if raw := q.Get("seed"); raw != "" {
		v, err := strconv.ParseInt(raw, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "invalid seed=%q: %v", raw, err)
			return
		}
		req.Seed = v
	}
	s.serveKSPR(w, r, req)
}

// serveKSPR is the shared tail of the GET and POST query handlers.
func (s *Server) serveKSPR(w http.ResponseWriter, r *http.Request, req queryRequest) {
	snap, ok := s.registry.Get(req.Dataset)
	if !ok {
		writeError(w, http.StatusNotFound, "dataset %q not found", req.Dataset)
		return
	}
	info := reqInfoFrom(r.Context())
	info.noteDataset(snap)
	ctx, cancel := context.WithTimeout(r.Context(), s.timeout(req.TimeoutMs))
	defer cancel()
	resp, _, err := s.runKSPR(ctx, snap, req)
	if err != nil {
		writeError(w, errStatusCode(err), "%v", err)
		return
	}
	info.noteCached(resp.Cached)
	info.noteStats(resp.Stats)
	if info.Debug() {
		resp.Trace = traceToWire(info)
	}
	writeJSON(w, http.StatusOK, resp)
}

// batchEmitter serializes the batch stream: every item settles exactly
// once (parse error, cache hit, engine outcome, or abort), lines land on a
// buffered channel the handler drains, and finish backfills error lines
// for anything unsettled when the batch stops early. The channel buffer
// holds one line per item, so settles never block.
type batchEmitter struct {
	mu      sync.Mutex
	closed  bool
	settled []bool
	lines   chan batchLine
}

func newBatchEmitter(n int) *batchEmitter {
	return &batchEmitter{settled: make([]bool, n), lines: make(chan batchLine, n)}
}

// settle emits the line for item i unless it already settled or the stream
// is finished.
func (e *batchEmitter) settle(i int, line batchLine) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed || e.settled[i] {
		return
	}
	e.settled[i] = true
	e.lines <- line
}

// finish settles every remaining item with err (or a generic abort) and
// closes the stream.
func (e *batchEmitter) finish(err error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return
	}
	msg, status := "batch aborted", http.StatusServiceUnavailable
	if err != nil {
		msg, status = err.Error(), errStatusCode(err)
	}
	for i, done := range e.settled {
		if !done {
			e.settled[i] = true
			e.lines <- batchLine{Index: i, Error: msg, Status: status}
		}
	}
	e.closed = true
	close(e.lines)
}

// decodeBatchRequest reads a batch call in either wire form: a plain JSON
// envelope with inline queries, or (Content-Type application/x-ndjson) an
// envelope line followed by one item per line. A malformed NDJSON item
// line becomes a per-item parse error at its index — the surrounding batch
// still runs — while envelope-level problems reject the whole request.
func (s *Server) decodeBatchRequest(w http.ResponseWriter, r *http.Request) (batchRequest, []batchQuery, map[int]string, bool) {
	var req batchRequest
	if !strings.Contains(r.Header.Get("Content-Type"), "ndjson") {
		if !decodeBody(w, r, &req) {
			return req, nil, nil, false
		}
		return req, req.Queries, nil, true
	}
	sc := bufio.NewScanner(http.MaxBytesReader(w, r.Body, 16<<20))
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	var items []batchQuery
	parseErrs := make(map[int]string)
	header := false
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		dec := json.NewDecoder(bytes.NewReader(line))
		dec.DisallowUnknownFields()
		if !header {
			header = true
			if err := dec.Decode(&req); err != nil {
				writeError(w, http.StatusBadRequest, "invalid batch header line: %v", err)
				return req, nil, nil, false
			}
			if len(req.Queries) > 0 {
				writeError(w, http.StatusBadRequest,
					"ndjson batch: send items as body lines, not in the header's queries field")
				return req, nil, nil, false
			}
			continue
		}
		var q batchQuery
		if err := dec.Decode(&q); err != nil {
			parseErrs[len(items)] = fmt.Sprintf("invalid batch item: %v", err)
			items = append(items, batchQuery{})
			continue
		}
		items = append(items, q)
	}
	if err := sc.Err(); err != nil {
		writeError(w, http.StatusBadRequest, "reading ndjson body: %v", err)
		return req, nil, nil, false
	}
	if !header {
		writeError(w, http.StatusBadRequest, "empty ndjson body: want a header line, then one item per line")
		return req, nil, nil, false
	}
	return req, items, parseErrs, true
}

// handleBatch answers a panel of kSPR queries as ONE shared-work engine
// pass (kspr.DB.KSPRBatch) on a single pool worker plus whatever extra CPU
// slots the shared budget grants, and streams one NDJSON line per item.
// Ordering: already-decided items (parse errors, invalid k, cache hits)
// stream first in item order; computed items follow in completion order;
// every line carries its input index. Per-item failures are lines, not
// HTTP errors; the HTTP status covers only the envelope (400/404/429).
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	req, items, parseErrs, ok := s.decodeBatchRequest(w, r)
	if !ok {
		return
	}
	snap, ok := s.registry.Get(req.Dataset)
	if !ok {
		writeError(w, http.StatusNotFound, "dataset %q not found", req.Dataset)
		return
	}
	reqInfoFrom(r.Context()).noteDataset(snap)
	if len(items) == 0 {
		writeError(w, http.StatusBadRequest, "batch has no queries")
		return
	}
	if len(items) > s.cfg.MaxBatch {
		writeError(w, http.StatusBadRequest, "batch of %d exceeds limit %d", len(items), s.cfg.MaxBatch)
		return
	}
	algo, approx, err := parseAlgorithm(req.Algorithm)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	space, err := parseSpace(req.Space)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	bounds, err := parseBounds(req.Bounds)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if approx && space == kspr.Original {
		writeError(w, http.StatusBadRequest, "approx queries support only the transformed space")
		return
	}
	req.VolumeSamples = normalizeVolumeSamples(req.Volumes, req.VolumeSamples)
	ctx, cancel := context.WithTimeout(r.Context(), s.timeout(req.TimeoutMs))
	defer cancel()
	// Under ?debug=trace the batch skips the result cache (traced runs must
	// actually run) and appends one trailer line with the batch-wide phase
	// breakdown; see batchLine.Trace.
	info := reqInfoFrom(ctx)

	emitter := newBatchEmitter(len(items))

	// Settle what needs no engine work: malformed items, invalid k, cache
	// hits. queries collects the rest, idx mapping engine order back to
	// item order.
	var queries []kspr.BatchQuery
	var idx []int
	var keys []string
	var reqs []queryRequest
	for i, q := range items {
		if msg, bad := parseErrs[i]; bad {
			emitter.settle(i, batchLine{Index: i, Error: msg, Status: http.StatusBadRequest})
			continue
		}
		k := q.K
		if k == 0 {
			k = req.K
		}
		if k < 1 {
			emitter.settle(i, batchLine{Index: i,
				Error: fmt.Sprintf("k must be >= 1, got %d", k), Status: http.StatusBadRequest})
			continue
		}
		qr := s.batchItemRequest(req, q, k)
		key := cacheKey(snap, qr, algo, approx, space, bounds, 0.01)
		if !req.NoCache && !approx && !info.Debug() {
			if v, cached := s.cache.Get(key); cached {
				cq := v.(*cachedQuery)
				resp := *cq.resp
				resp.Cached = true
				emitter.settle(i, batchLine{Index: i, Result: &resp})
				continue
			}
		}
		bq := kspr.BatchQuery{FocalID: q.Focal, K: k}
		if q.FocalVector != nil {
			bq.FocalID, bq.Focal = -1, q.FocalVector
		}
		queries = append(queries, bq)
		idx = append(idx, i)
		keys = append(keys, key)
		reqs = append(reqs, qr)
	}

	// Grant engine parallelism for the whole batch from the shared CPU
	// budget. An exhausted budget is load: shed it visibly with 429 before
	// any stream output, rather than silently running N queries serially.
	// The approx path never uses engine parallelism, so it acquires
	// nothing.
	parallelism := 1
	ask := req.Parallelism
	if ask > s.cfg.MaxParallelism {
		ask = s.cfg.MaxParallelism
	}
	var granted int
	if len(queries) > 0 && ask > 1 && !approx {
		granted, err = s.cpu.AcquireRequired(ask - 1)
		if err != nil {
			// A shed batch is a store-level incident worth correlating
			// against the slow requests that drained the budget.
			s.journal.Append(obs.JournalEvent{
				Type:       obs.EventCPUBudgetExhausted,
				Dataset:    snap.Name,
				Generation: snap.Generation,
				Detail: map[string]any{
					"asked": ask, "in_use": s.cpu.InUse(), "slots": s.cpu.Slots(),
					"items": len(items),
				},
			})
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, "%v", err)
			return
		}
		parallelism = 1 + granted
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)

	if len(queries) == 0 {
		emitter.finish(nil)
	} else if approx {
		go s.runBatchApprox(ctx, snap, req, queries, idx, emitter)
	} else {
		go func() {
			defer s.cpu.Release(granted)
			_, err := s.pool.Submit(ctx, func(ctx context.Context) (any, error) {
				qopts := []kspr.QueryOption{
					kspr.WithContext(ctx),
					kspr.WithAlgorithm(algo),
					kspr.WithSpace(space),
					kspr.WithBoundsMode(bounds),
					kspr.WithSeed(req.Seed),
					kspr.WithParallelism(parallelism),
					kspr.WithTrace(info.Trace()),
				}
				if req.Volumes {
					qopts = append(qopts, kspr.WithVolumes(req.VolumeSamples))
				}
				if req.NoGeometry {
					qopts = append(qopts, kspr.WithoutGeometry())
				}
				bopts := []kspr.BatchOption{
					kspr.WithBatchOptions(qopts...),
					kspr.WithBatchOnOutcome(func(j int, o kspr.BatchOutcome) {
						i := idx[j]
						if o.Err != nil {
							emitter.settle(i, batchLine{Index: i, Error: o.Err.Error(), Status: errStatusCode(o.Err)})
							return
						}
						resp := s.batchItemResponse(snap, items[i], queries[j], algo, space, o.Result)
						if !req.NoCache && !info.Debug() {
							s.cache.Put(keys[j], &cachedQuery{req: reqs[j], resp: resp, raw: o.Result})
						}
						emitter.settle(i, batchLine{Index: i, Result: resp})
					}),
				}
				if req.ItemTimeoutMs > 0 {
					bopts = append(bopts, kspr.WithBatchItemTimeout(time.Duration(req.ItemTimeoutMs)*time.Millisecond))
				}
				return snap.DB.KSPRBatch(queries, 0, bopts...)
			})
			emitter.finish(err)
		}()
	}

	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	var failed uint64
	for line := range emitter.lines {
		if line.Error != "" {
			failed++
		}
		_ = enc.Encode(line)
		if flusher != nil {
			flusher.Flush()
		}
	}
	// The batch-wide phase breakdown rides as one trailer line: the engine
	// aggregates every item into the shared trace, so per-item attribution
	// would be fiction. Index -1 marks the line as out-of-band.
	if info.Debug() {
		_ = enc.Encode(batchLine{Index: -1, Trace: traceToWire(info)})
		if flusher != nil {
			flusher.Flush()
		}
	}
	// The stream itself is always 200, so surface per-query failures to
	// the error counters explicitly — operators alert on errors_total.
	s.metrics.AddErrors(failed)
	reqInfoFrom(r.Context()).noteStats(map[string]any{
		"items": len(items), "computed": len(queries), "failed": failed,
		"parallelism": parallelism,
	})
}

// batchItemRequest maps one batch item to the equivalent single-query
// request, the canonical input of the result-cache key (so batch and
// single-query traffic share cache entries).
func (s *Server) batchItemRequest(req batchRequest, q batchQuery, k int) queryRequest {
	return queryRequest{
		Dataset:       req.Dataset,
		Focal:         q.Focal,
		FocalVector:   q.FocalVector,
		K:             k,
		Algorithm:     req.Algorithm,
		Space:         req.Space,
		Bounds:        req.Bounds,
		Volumes:       req.Volumes,
		VolumeSamples: req.VolumeSamples,
		NoGeometry:    req.NoGeometry,
		Seed:          req.Seed,
	}
}

// batchItemResponse renders one engine outcome in the single-query wire
// shape.
func (s *Server) batchItemResponse(snap *Snapshot, item batchQuery, bq kspr.BatchQuery,
	algo kspr.Algorithm, space kspr.Space, res *kspr.Result) *queryResponse {
	resp := &queryResponse{
		Dataset:    snap.Name,
		Generation: snap.Generation,
		Focal:      item.Focal,
		K:          bq.K,
		Algorithm:  algo.String(),
		Space:      space.String(),
	}
	if item.FocalVector != nil {
		resp.Focal = -1
	}
	fillResult(resp, snap, res)
	return resp
}

// runBatchApprox serves an approx-algorithm batch: the approximate engine
// has no shared-work pass, so items fan out as individual pool tasks (the
// pre-batch behaviour) and settle on the shared emitter.
func (s *Server) runBatchApprox(ctx context.Context, snap *Snapshot, req batchRequest,
	queries []kspr.BatchQuery, idx []int, emitter *batchEmitter) {
	var wg sync.WaitGroup
	for j := range queries {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			q := queries[j]
			i := idx[j]
			qr := queryRequest{
				Dataset:     req.Dataset,
				Focal:       q.FocalID,
				FocalVector: q.Focal,
				K:           q.K,
				Algorithm:   req.Algorithm,
				Space:       req.Space,
				Bounds:      req.Bounds,
				Epsilon:     req.Epsilon,
				Volumes:     req.Volumes,
				NoGeometry:  req.NoGeometry,
				Seed:        req.Seed,
				NoCache:     req.NoCache,
			}
			resp, _, err := s.runKSPR(ctx, snap, qr)
			if err != nil {
				emitter.settle(i, batchLine{Index: i, Error: err.Error(), Status: errStatusCode(err)})
				return
			}
			emitter.settle(i, batchLine{Index: i, Result: resp})
		}(j)
	}
	wg.Wait()
	emitter.finish(nil)
}

// ---- top-k / skyline / impact -------------------------------------------

func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) {
	var req topkRequest
	if !decodeBody(w, r, &req) {
		return
	}
	snap, ok := s.registry.Get(req.Dataset)
	if !ok {
		writeError(w, http.StatusNotFound, "dataset %q not found", req.Dataset)
		return
	}
	reqInfoFrom(r.Context()).noteDataset(snap)
	if req.K < 1 {
		writeError(w, http.StatusBadRequest, "k must be >= 1, got %d", req.K)
		return
	}
	if len(req.Weights) != snap.DB.Dim() {
		writeError(w, http.StatusBadRequest, "weights have %d entries, dataset has %d attributes",
			len(req.Weights), snap.DB.Dim())
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.timeout(0))
	defer cancel()
	val, err := s.pool.Submit(ctx, func(context.Context) (any, error) {
		return snap.DB.TopK(req.Weights, req.K), nil
	})
	if err != nil {
		writeError(w, errStatusCode(err), "%v", err)
		return
	}
	ids := val.([]int)
	resp := topkResponse{Dataset: snap.Name, Generation: snap.Generation, K: req.K}
	for _, id := range ids {
		e := topkEntry{ID: id, Score: dot(snap.DB.Record(id), req.Weights)}
		if id < len(snap.Dataset.Labels) {
			e.Label = snap.Dataset.Labels[id]
		}
		resp.Results = append(resp.Results, e)
	}
	writeJSON(w, http.StatusOK, resp)
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func (s *Server) handleSkyline(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("dataset")
	snap, ok := s.registry.Get(name)
	if !ok {
		writeError(w, http.StatusNotFound, "dataset %q not found", name)
		return
	}
	reqInfoFrom(r.Context()).noteDataset(snap)
	k := 0
	if ks := r.URL.Query().Get("k"); ks != "" {
		var err error
		k, err = strconv.Atoi(ks)
		if err != nil || k < 1 {
			writeError(w, http.StatusBadRequest, "invalid k %q", ks)
			return
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.timeout(0))
	defer cancel()
	val, err := s.pool.Submit(ctx, func(context.Context) (any, error) {
		if k > 0 {
			return snap.DB.KSkyband(k), nil
		}
		return snap.DB.Skyline(), nil
	})
	if err != nil {
		writeError(w, errStatusCode(err), "%v", err)
		return
	}
	ids := val.([]int)
	resp := skylineResponse{Dataset: snap.Name, Generation: snap.Generation, K: k, IDs: ids, Count: len(ids)}
	if len(snap.Dataset.Labels) > 0 {
		resp.Labels = make([]string, len(ids))
		for i, id := range ids {
			if id < len(snap.Dataset.Labels) {
				resp.Labels[i] = snap.Dataset.Labels[id]
			}
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// buildDensity maps a named preference density to a pdf over original-space
// weight vectors (length d, summing to 1).
func buildDensity(req *densityReq, d int) (func(w []float64) float64, string, error) {
	if req == nil || req.Name == "" || strings.EqualFold(req.Name, "uniform") {
		return nil, "uniform", nil
	}
	switch strings.ToLower(req.Name) {
	case "dirichlet":
		if len(req.Alpha) != d {
			return nil, "", fmt.Errorf("dirichlet density needs %d alpha values, got %d", d, len(req.Alpha))
		}
		for _, a := range req.Alpha {
			if a <= 0 {
				return nil, "", fmt.Errorf("dirichlet alpha values must be positive")
			}
		}
		alpha := append([]float64(nil), req.Alpha...)
		return func(w []float64) float64 {
			p := 1.0
			for i, a := range alpha {
				if w[i] <= 0 {
					if a == 1 {
						continue
					}
					return 0 // clip the boundary: diverging (a<1) or zero (a>1)
				}
				p *= math.Pow(w[i], a-1)
			}
			return p
		}, "dirichlet", nil
	case "gaussian":
		if len(req.Center) != d {
			return nil, "", fmt.Errorf("gaussian density needs a %d-dim center, got %d", d, len(req.Center))
		}
		sigma := req.Sigma
		if sigma <= 0 {
			sigma = 0.1
		}
		center := append([]float64(nil), req.Center...)
		return func(w []float64) float64 {
			var d2 float64
			for i := range w {
				diff := w[i] - center[i]
				d2 += diff * diff
			}
			return math.Exp(-d2 / (2 * sigma * sigma))
		}, "gaussian", nil
	default:
		return nil, "", fmt.Errorf("unknown density %q (want uniform, dirichlet, gaussian)", req.Name)
	}
}

// handleImpact answers §1's market-impact question: the probability mass of
// the focal record's kSPR regions under a named preference density. The
// underlying kSPR result comes from runKSPR, so it is cached and
// deadline-bounded like any other query.
func (s *Server) handleImpact(w http.ResponseWriter, r *http.Request) {
	var req impactRequest
	if !decodeBody(w, r, &req) {
		return
	}
	snap, ok := s.registry.Get(req.Dataset)
	if !ok {
		writeError(w, http.StatusNotFound, "dataset %q not found", req.Dataset)
		return
	}
	reqInfoFrom(r.Context()).noteDataset(snap)
	// Region-membership sampling needs an exact kSPR result; reject approx
	// upfront rather than after burning a worker on the query.
	if _, approx, err := parseAlgorithm(req.Algorithm); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	} else if approx {
		writeError(w, http.StatusBadRequest, "impact needs an exact algorithm (cta, p-cta, lp-cta, k-skyband)")
		return
	}
	pdf, densityName, err := buildDensity(req.Density, snap.DB.Dim())
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if req.Samples <= 0 {
		req.Samples = 20000
	}
	// The sampling loop is not cancellable, so bound the work a single
	// request can demand of a pool worker.
	if req.Samples > maxImpactSamples {
		req.Samples = maxImpactSamples
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.timeout(req.TimeoutMs))
	defer cancel()

	qresp, raw, err := s.runKSPR(ctx, snap, queryRequest{
		Dataset:   req.Dataset,
		Focal:     req.Focal,
		K:         req.K,
		Algorithm: req.Algorithm,
		Seed:      req.Seed,
		NoCache:   req.NoCache,
	})
	if err != nil {
		writeError(w, errStatusCode(err), "%v", err)
		return
	}
	res, ok := raw.(*kspr.Result)
	if !ok {
		writeError(w, http.StatusBadRequest, "impact needs an exact algorithm (cta, p-cta, lp-cta, k-skyband)")
		return
	}
	val, err := s.pool.Submit(ctx, func(context.Context) (any, error) {
		return snap.DB.ImpactProbabilityPDF(res, pdf, req.Samples, req.Seed), nil
	})
	if err != nil {
		writeError(w, errStatusCode(err), "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, impactResponse{
		Dataset:     snap.Name,
		Generation:  snap.Generation,
		Focal:       req.Focal,
		K:           req.K,
		Density:     densityName,
		Samples:     req.Samples,
		Probability: val.(float64),
		Regions:     qresp.Stats.Regions,
		Cached:      qresp.Cached,
	})
}

// ---- health & metrics ----------------------------------------------------

// handleHealthz is the liveness probe: green as soon as the process
// serves HTTP. Readiness (WAL recovery done) lives on /readyz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"datasets": len(s.registry.List()),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.metricsView())
}
