package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"
	"time"

	kspr "repro"
	"repro/internal/dataset"
)

// ---- wire types ----------------------------------------------------------

type errorResponse struct {
	Error string `json:"error"`
}

type loadRequest struct {
	Name string `json:"name"`
	// Exactly one source: a CSV file path, inline CSV text, or a synthetic
	// generator spec.
	Path     string       `json:"path,omitempty"`
	CSV      string       `json:"csv,omitempty"`
	Generate *generateReq `json:"generate,omitempty"`
}

type generateReq struct {
	Dist string `json:"dist"` // IND | COR | ANTI
	N    int    `json:"n"`
	D    int    `json:"d"`
	Seed int64  `json:"seed"`
}

type queryRequest struct {
	Dataset string `json:"dataset"`
	Focal   int    `json:"focal"`
	// FocalVector queries a hypothetical record not in the dataset; when
	// set, Focal is ignored.
	FocalVector []float64 `json:"focal_vector,omitempty"`
	K           int       `json:"k"`
	Algorithm   string    `json:"algorithm,omitempty"` // cta | p-cta | lp-cta | k-skyband | approx
	Space       string    `json:"space,omitempty"`     // transformed | original
	Bounds      string    `json:"bounds,omitempty"`    // fast | group | record
	Epsilon     float64   `json:"epsilon,omitempty"`   // approx accuracy target
	Volumes     bool      `json:"volumes,omitempty"`
	NoGeometry  bool      `json:"no_geometry,omitempty"`
	Seed        int64     `json:"seed,omitempty"`
	TimeoutMs   int       `json:"timeout_ms,omitempty"`
	NoCache     bool      `json:"no_cache,omitempty"`
	// Parallelism asks the engine to expand this query on up to this many
	// goroutines. Absent or 0 means serial: unlike the library default, the
	// server only parallelizes when explicitly asked, so one request cannot
	// grab cores unrequested. The grant is capped by the server's
	// MaxParallelism and by what the shared CPU budget has free at
	// execution time; results are identical at any value, so the field is
	// excluded from the cache key.
	Parallelism int `json:"parallelism,omitempty"`
}

type regionWire struct {
	Rank      int         `json:"rank"`
	RankExact bool        `json:"rank_exact"`
	Witness   []float64   `json:"witness"`
	Vertices  [][]float64 `json:"vertices,omitempty"`
	Volume    float64     `json:"volume,omitempty"`
}

type statsWire struct {
	ProcessedRecords int     `json:"processed_records"`
	CellTreeNodes    int     `json:"celltree_nodes"`
	Batches          int     `json:"batches"`
	BaseRank         int     `json:"base_rank"`
	LPSolves         int     `json:"lp_solves"`
	EarlyReported    int     `json:"early_reported"`
	EarlyPruned      int     `json:"early_pruned"`
	CellsPruned      int     `json:"cells_pruned"`
	Parallelism      int     `json:"parallelism,omitempty"`
	Regions          int     `json:"regions"`
	ElapsedMs        float64 `json:"elapsed_ms"`
}

type queryResponse struct {
	Dataset         string       `json:"dataset"`
	Generation      uint64       `json:"generation"`
	Focal           int          `json:"focal"`
	K               int          `json:"k"`
	Algorithm       string       `json:"algorithm"`
	Space           string       `json:"space"`
	Regions         []regionWire `json:"regions"`
	UncertainCount  int          `json:"uncertain_regions,omitempty"`
	UncertainVolume float64      `json:"uncertain_volume,omitempty"`
	Converged       *bool        `json:"converged,omitempty"`
	Stats           statsWire    `json:"stats"`
	Cached          bool         `json:"cached"`
}

type batchQuery struct {
	Focal int `json:"focal"`
	K     int `json:"k"`
}

type batchRequest struct {
	Dataset   string       `json:"dataset"`
	Queries   []batchQuery `json:"queries"`
	Algorithm string       `json:"algorithm,omitempty"`
	Space     string       `json:"space,omitempty"`
	Bounds    string       `json:"bounds,omitempty"`
	Epsilon   float64      `json:"epsilon,omitempty"`
	Volumes   bool         `json:"volumes,omitempty"`
	Seed      int64        `json:"seed,omitempty"`
	TimeoutMs int          `json:"timeout_ms,omitempty"`
	NoCache   bool         `json:"no_cache,omitempty"`
	// Parallelism applies to each query of the batch; see queryRequest.
	Parallelism int `json:"parallelism,omitempty"`
}

// batchLine is one NDJSON line of the batch stream.
type batchLine struct {
	Index  int            `json:"index"`
	Error  string         `json:"error,omitempty"`
	Status int            `json:"status,omitempty"`
	Result *queryResponse `json:"result,omitempty"`
}

type topkRequest struct {
	Dataset string    `json:"dataset"`
	Weights []float64 `json:"weights"`
	K       int       `json:"k"`
}

type topkEntry struct {
	ID    int     `json:"id"`
	Score float64 `json:"score"`
	Label string  `json:"label,omitempty"`
}

type topkResponse struct {
	Dataset    string      `json:"dataset"`
	Generation uint64      `json:"generation"`
	K          int         `json:"k"`
	Results    []topkEntry `json:"results"`
}

type skylineResponse struct {
	Dataset    string   `json:"dataset"`
	Generation uint64   `json:"generation"`
	K          int      `json:"k,omitempty"` // >0: k-skyband
	IDs        []int    `json:"ids"`
	Labels     []string `json:"labels,omitempty"`
	Count      int      `json:"count"`
}

type densityReq struct {
	// Name selects the preference density: uniform (default), dirichlet
	// (with Alpha, one concentration per attribute), or gaussian (with
	// Center in the weight simplex and Sigma).
	Name   string    `json:"name"`
	Alpha  []float64 `json:"alpha,omitempty"`
	Center []float64 `json:"center,omitempty"`
	Sigma  float64   `json:"sigma,omitempty"`
}

type impactRequest struct {
	Dataset   string      `json:"dataset"`
	Focal     int         `json:"focal"`
	K         int         `json:"k"`
	Algorithm string      `json:"algorithm,omitempty"`
	Samples   int         `json:"samples,omitempty"`
	Seed      int64       `json:"seed,omitempty"`
	Density   *densityReq `json:"density,omitempty"`
	TimeoutMs int         `json:"timeout_ms,omitempty"`
	NoCache   bool        `json:"no_cache,omitempty"`
}

type impactResponse struct {
	Dataset     string  `json:"dataset"`
	Generation  uint64  `json:"generation"`
	Focal       int     `json:"focal"`
	K           int     `json:"k"`
	Density     string  `json:"density"`
	Samples     int     `json:"samples"`
	Probability float64 `json:"probability"`
	Regions     int     `json:"regions"`
	Cached      bool    `json:"cached"`
}

// ---- helpers -------------------------------------------------------------

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// errStatus maps a query error to an HTTP status: deadline expiry is 504
// (the request-scoped timeout fired mid-query), cancellation 499-style 503,
// pool shutdown 503, everything else 400 (all remaining library errors are
// input validation: bad focal, bad k, ...).
func errStatusCode(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled), errors.Is(err, ErrPoolClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 16<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, "invalid request body: %v", err)
		return false
	}
	return true
}

func parseAlgorithm(s string) (kspr.Algorithm, bool, error) {
	switch strings.ToLower(s) {
	case "", "lp-cta", "lpcta":
		return kspr.LPCTA, false, nil
	case "cta":
		return kspr.CTA, false, nil
	case "p-cta", "pcta":
		return kspr.PCTA, false, nil
	case "k-skyband", "kskyband":
		return kspr.KSkybandCTA, false, nil
	case "approx":
		return kspr.LPCTA, true, nil
	default:
		return 0, false, fmt.Errorf("unknown algorithm %q", s)
	}
}

func parseSpace(s string) (kspr.Space, error) {
	switch strings.ToLower(s) {
	case "", "transformed":
		return kspr.Transformed, nil
	case "original":
		return kspr.Original, nil
	default:
		return 0, fmt.Errorf("unknown space %q", s)
	}
}

func parseBounds(s string) (kspr.BoundsMode, error) {
	switch strings.ToLower(s) {
	case "", "fast", "fast_bounds":
		return kspr.FastBounds, nil
	case "group", "group_bounds":
		return kspr.GroupBounds, nil
	case "record", "record_bounds":
		return kspr.RecordBounds, nil
	default:
		return 0, fmt.Errorf("unknown bounds mode %q", s)
	}
}

// timeout resolves the effective per-request deadline.
func (s *Server) timeout(ms int) time.Duration {
	t := s.cfg.DefaultTimeout
	if ms > 0 {
		t = time.Duration(ms) * time.Millisecond
	}
	if t > s.cfg.MaxTimeout {
		t = s.cfg.MaxTimeout
	}
	return t
}

// ---- dataset admin -------------------------------------------------------

func (s *Server) handleDatasetList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.registry.List())
}

func (s *Server) handleDatasetLoad(w http.ResponseWriter, r *http.Request) {
	var req loadRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Name == "" {
		writeError(w, http.StatusBadRequest, "dataset name is required")
		return
	}
	sources := 0
	for _, set := range []bool{req.Path != "", req.CSV != "", req.Generate != nil} {
		if set {
			sources++
		}
	}
	if sources != 1 {
		writeError(w, http.StatusBadRequest, "exactly one of path, csv, generate is required")
		return
	}
	var (
		snap *Snapshot
		err  error
	)
	switch {
	case req.Path != "":
		snap, err = s.registry.LoadCSV(req.Name, req.Path)
	case req.CSV != "":
		var ds *dataset.Dataset
		ds, err = dataset.ReadCSV(strings.NewReader(req.CSV), req.Name)
		if err == nil {
			snap, err = s.registry.Load(req.Name, ds, "inline")
		}
	default:
		g := req.Generate
		var ds *dataset.Dataset
		ds, err = dataset.Generate(dataset.Distribution(strings.ToUpper(g.Dist)), g.N, g.D, g.Seed)
		if err == nil {
			snap, err = s.registry.Load(req.Name, ds,
				fmt.Sprintf("generated %s n=%d d=%d seed=%d", strings.ToUpper(g.Dist), g.N, g.D, g.Seed))
		}
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, DatasetInfo{
		Name:       snap.Name,
		Generation: snap.Generation,
		Records:    snap.DB.Len(),
		Dims:       snap.DB.Dim(),
		Attributes: snap.Dataset.Attributes,
		Source:     snap.Source,
		LoadedAt:   snap.LoadedAt,
	})
}

func (s *Server) handleDatasetUnload(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !s.registry.Unload(name) {
		writeError(w, http.StatusNotFound, "dataset %q not found", name)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"unloaded": name})
}

// ---- kSPR query ----------------------------------------------------------

// cacheKey canonicalizes a query into the result-cache key: it is built
// from the PARSED algorithm/space/bounds and the effective epsilon, so
// spelling variants of the same query ("lp-cta", "lpcta", "") share one
// entry. The generation prefix makes reloads invalidate implicitly.
func cacheKey(snap *Snapshot, req queryRequest, algo kspr.Algorithm, approx bool,
	space kspr.Space, bounds kspr.BoundsMode, eps float64) string {
	var b strings.Builder
	algoName := algo.String()
	if approx {
		algoName = "approx"
	}
	fmt.Fprintf(&b, "%s@%d|kspr|k=%d|a=%s|s=%s|b=%s|v=%t|g=%t|e=%g|seed=%d",
		snap.Name, snap.Generation, req.K,
		algoName, space.String(), bounds.String(),
		req.Volumes, !req.NoGeometry, eps, req.Seed)
	if req.FocalVector != nil {
		b.WriteString("|fv=")
		for _, v := range req.FocalVector {
			fmt.Fprintf(&b, "%x,", math.Float64bits(v))
		}
	} else {
		fmt.Fprintf(&b, "|f=%d", req.Focal)
	}
	return b.String()
}

// cachedQuery is what the result cache stores: the wire response plus the
// raw library result (reused by /v1/impact for region-membership sampling).
// Both are immutable once cached.
type cachedQuery struct {
	resp *queryResponse
	raw  any // *kspr.Result or *kspr.ApproxResult
}

// runKSPR executes (or serves from cache) one kSPR query on the pool. It
// returns the wire response plus the raw library result.
func (s *Server) runKSPR(ctx context.Context, snap *Snapshot, req queryRequest) (*queryResponse, any, error) {
	algo, approx, err := parseAlgorithm(req.Algorithm)
	if err != nil {
		return nil, nil, err
	}
	space, err := parseSpace(req.Space)
	if err != nil {
		return nil, nil, err
	}
	bounds, err := parseBounds(req.Bounds)
	if err != nil {
		return nil, nil, err
	}
	if req.K < 1 {
		return nil, nil, fmt.Errorf("k must be >= 1, got %d", req.K)
	}
	if approx && space == kspr.Original {
		return nil, nil, fmt.Errorf("approx queries support only the transformed space")
	}
	eps := req.Epsilon
	if eps <= 0 {
		eps = 0.01
	}

	key := cacheKey(snap, req, algo, approx, space, bounds, eps)
	if !req.NoCache {
		if v, ok := s.cache.Get(key); ok {
			cq := v.(*cachedQuery)
			resp := *cq.resp // shallow copy: regions are shared, immutable
			resp.Cached = true
			return &resp, cq.raw, nil
		}
	}

	// Resolve the parallelism ask now; the actual CPU-slot grant happens on
	// the worker, so slots are held only while the query runs, not while it
	// queues.
	ask := req.Parallelism
	if ask < 1 {
		ask = 1
	}
	if ask > s.cfg.MaxParallelism {
		ask = s.cfg.MaxParallelism
	}

	val, err := s.pool.Submit(ctx, func(ctx context.Context) (any, error) {
		if approx {
			if req.FocalVector != nil {
				return snap.DB.KSPRApproxVectorCtx(ctx, req.FocalVector, req.K, eps)
			}
			return snap.DB.KSPRApproxCtx(ctx, req.Focal, req.K, eps)
		}
		parallelism := 1
		if ask > 1 {
			granted := s.cpu.Acquire(ask - 1)
			defer s.cpu.Release(granted)
			parallelism = 1 + granted
		}
		opts := []kspr.QueryOption{
			kspr.WithContext(ctx),
			kspr.WithAlgorithm(algo),
			kspr.WithSpace(space),
			kspr.WithBoundsMode(bounds),
			kspr.WithSeed(req.Seed),
			kspr.WithParallelism(parallelism),
		}
		if req.Volumes {
			opts = append(opts, kspr.WithVolumes(0))
		}
		if req.NoGeometry {
			opts = append(opts, kspr.WithoutGeometry())
		}
		if req.FocalVector != nil {
			return snap.DB.KSPRVector(req.FocalVector, req.K, opts...)
		}
		return snap.DB.KSPR(req.Focal, req.K, opts...)
	})
	if err != nil {
		return nil, nil, err
	}

	resp := &queryResponse{
		Dataset:    snap.Name,
		Generation: snap.Generation,
		Focal:      req.Focal,
		K:          req.K,
		Space:      space.String(),
	}
	if req.FocalVector != nil {
		resp.Focal = -1
	}
	switch res := val.(type) {
	case *kspr.Result:
		resp.Algorithm = algo.String()
		fillResult(resp, res)
	case *kspr.ApproxResult:
		resp.Algorithm = "approx"
		fillResult(resp, &res.Result)
		resp.UncertainCount = len(res.Uncertain)
		resp.UncertainVolume = res.UncertainVolume
		conv := res.Converged
		resp.Converged = &conv
	}
	if !req.NoCache {
		s.cache.Put(key, &cachedQuery{resp: resp, raw: val})
	}
	return resp, val, nil
}

func fillResult(resp *queryResponse, res *kspr.Result) {
	resp.Regions = make([]regionWire, len(res.Regions))
	for i := range res.Regions {
		reg := &res.Regions[i]
		wire := regionWire{
			Rank:      reg.Rank,
			RankExact: reg.RankExact,
			Witness:   reg.Witness,
			Volume:    reg.Volume,
		}
		if len(reg.Vertices) > 0 {
			wire.Vertices = make([][]float64, len(reg.Vertices))
			for j, v := range reg.Vertices {
				wire.Vertices[j] = v
			}
		}
		resp.Regions[i] = wire
	}
	resp.Stats = statsWire{
		ProcessedRecords: res.Stats.ProcessedRecords,
		CellTreeNodes:    res.Stats.CellTreeNodes,
		Batches:          res.Stats.Batches,
		BaseRank:         res.Stats.BaseRank,
		LPSolves:         res.Stats.LPSolves,
		EarlyReported:    res.Stats.EarlyReported,
		EarlyPruned:      res.Stats.EarlyPruned,
		CellsPruned:      res.Stats.CellsPruned,
		Parallelism:      res.Stats.Parallelism,
		Regions:          len(res.Regions),
		ElapsedMs:        float64(res.Stats.Elapsed) / float64(time.Millisecond),
	}
}

func (s *Server) handleKSPR(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if !decodeBody(w, r, &req) {
		return
	}
	snap, ok := s.registry.Get(req.Dataset)
	if !ok {
		writeError(w, http.StatusNotFound, "dataset %q not found", req.Dataset)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.timeout(req.TimeoutMs))
	defer cancel()
	resp, _, err := s.runKSPR(ctx, snap, req)
	if err != nil {
		writeError(w, errStatusCode(err), "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleBatch fans the batch's queries across the worker pool and streams
// one NDJSON line per finished query, in completion order (each line
// carries its input index). The whole batch shares one deadline.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if !decodeBody(w, r, &req) {
		return
	}
	snap, ok := s.registry.Get(req.Dataset)
	if !ok {
		writeError(w, http.StatusNotFound, "dataset %q not found", req.Dataset)
		return
	}
	if len(req.Queries) == 0 {
		writeError(w, http.StatusBadRequest, "batch has no queries")
		return
	}
	if len(req.Queries) > s.cfg.MaxBatch {
		writeError(w, http.StatusBadRequest, "batch of %d exceeds limit %d", len(req.Queries), s.cfg.MaxBatch)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.timeout(req.TimeoutMs))
	defer cancel()

	lines := make(chan batchLine, len(req.Queries))
	for i, q := range req.Queries {
		go func(i int, q batchQuery) {
			resp, _, err := s.runKSPR(ctx, snap, queryRequest{
				Dataset:     req.Dataset,
				Focal:       q.Focal,
				K:           q.K,
				Algorithm:   req.Algorithm,
				Space:       req.Space,
				Bounds:      req.Bounds,
				Epsilon:     req.Epsilon,
				Volumes:     req.Volumes,
				Seed:        req.Seed,
				NoCache:     req.NoCache,
				Parallelism: req.Parallelism,
			})
			if err != nil {
				lines <- batchLine{Index: i, Error: err.Error(), Status: errStatusCode(err)}
				return
			}
			lines <- batchLine{Index: i, Result: resp}
		}(i, q)
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	failed := 0
	for range req.Queries {
		line := <-lines
		if line.Error != "" {
			failed++
		}
		_ = enc.Encode(line)
		if flusher != nil {
			flusher.Flush()
		}
	}
	// The stream itself is always 200, so surface per-query failures to
	// the error counters explicitly — operators alert on errors_total.
	s.metrics.AddErrors(uint64(failed))
}

// ---- top-k / skyline / impact -------------------------------------------

func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) {
	var req topkRequest
	if !decodeBody(w, r, &req) {
		return
	}
	snap, ok := s.registry.Get(req.Dataset)
	if !ok {
		writeError(w, http.StatusNotFound, "dataset %q not found", req.Dataset)
		return
	}
	if req.K < 1 {
		writeError(w, http.StatusBadRequest, "k must be >= 1, got %d", req.K)
		return
	}
	if len(req.Weights) != snap.DB.Dim() {
		writeError(w, http.StatusBadRequest, "weights have %d entries, dataset has %d attributes",
			len(req.Weights), snap.DB.Dim())
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.timeout(0))
	defer cancel()
	val, err := s.pool.Submit(ctx, func(context.Context) (any, error) {
		return snap.DB.TopK(req.Weights, req.K), nil
	})
	if err != nil {
		writeError(w, errStatusCode(err), "%v", err)
		return
	}
	ids := val.([]int)
	resp := topkResponse{Dataset: snap.Name, Generation: snap.Generation, K: req.K}
	for _, id := range ids {
		e := topkEntry{ID: id, Score: dot(snap.DB.Record(id), req.Weights)}
		if id < len(snap.Dataset.Labels) {
			e.Label = snap.Dataset.Labels[id]
		}
		resp.Results = append(resp.Results, e)
	}
	writeJSON(w, http.StatusOK, resp)
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func (s *Server) handleSkyline(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("dataset")
	snap, ok := s.registry.Get(name)
	if !ok {
		writeError(w, http.StatusNotFound, "dataset %q not found", name)
		return
	}
	k := 0
	if ks := r.URL.Query().Get("k"); ks != "" {
		var err error
		k, err = strconv.Atoi(ks)
		if err != nil || k < 1 {
			writeError(w, http.StatusBadRequest, "invalid k %q", ks)
			return
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.timeout(0))
	defer cancel()
	val, err := s.pool.Submit(ctx, func(context.Context) (any, error) {
		if k > 0 {
			return snap.DB.KSkyband(k), nil
		}
		return snap.DB.Skyline(), nil
	})
	if err != nil {
		writeError(w, errStatusCode(err), "%v", err)
		return
	}
	ids := val.([]int)
	resp := skylineResponse{Dataset: snap.Name, Generation: snap.Generation, K: k, IDs: ids, Count: len(ids)}
	if len(snap.Dataset.Labels) > 0 {
		resp.Labels = make([]string, len(ids))
		for i, id := range ids {
			if id < len(snap.Dataset.Labels) {
				resp.Labels[i] = snap.Dataset.Labels[id]
			}
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// buildDensity maps a named preference density to a pdf over original-space
// weight vectors (length d, summing to 1).
func buildDensity(req *densityReq, d int) (func(w []float64) float64, string, error) {
	if req == nil || req.Name == "" || strings.EqualFold(req.Name, "uniform") {
		return nil, "uniform", nil
	}
	switch strings.ToLower(req.Name) {
	case "dirichlet":
		if len(req.Alpha) != d {
			return nil, "", fmt.Errorf("dirichlet density needs %d alpha values, got %d", d, len(req.Alpha))
		}
		for _, a := range req.Alpha {
			if a <= 0 {
				return nil, "", fmt.Errorf("dirichlet alpha values must be positive")
			}
		}
		alpha := append([]float64(nil), req.Alpha...)
		return func(w []float64) float64 {
			p := 1.0
			for i, a := range alpha {
				if w[i] <= 0 {
					if a == 1 {
						continue
					}
					return 0 // clip the boundary: diverging (a<1) or zero (a>1)
				}
				p *= math.Pow(w[i], a-1)
			}
			return p
		}, "dirichlet", nil
	case "gaussian":
		if len(req.Center) != d {
			return nil, "", fmt.Errorf("gaussian density needs a %d-dim center, got %d", d, len(req.Center))
		}
		sigma := req.Sigma
		if sigma <= 0 {
			sigma = 0.1
		}
		center := append([]float64(nil), req.Center...)
		return func(w []float64) float64 {
			var d2 float64
			for i := range w {
				diff := w[i] - center[i]
				d2 += diff * diff
			}
			return math.Exp(-d2 / (2 * sigma * sigma))
		}, "gaussian", nil
	default:
		return nil, "", fmt.Errorf("unknown density %q (want uniform, dirichlet, gaussian)", req.Name)
	}
}

// handleImpact answers §1's market-impact question: the probability mass of
// the focal record's kSPR regions under a named preference density. The
// underlying kSPR result comes from runKSPR, so it is cached and
// deadline-bounded like any other query.
func (s *Server) handleImpact(w http.ResponseWriter, r *http.Request) {
	var req impactRequest
	if !decodeBody(w, r, &req) {
		return
	}
	snap, ok := s.registry.Get(req.Dataset)
	if !ok {
		writeError(w, http.StatusNotFound, "dataset %q not found", req.Dataset)
		return
	}
	// Region-membership sampling needs an exact kSPR result; reject approx
	// upfront rather than after burning a worker on the query.
	if _, approx, err := parseAlgorithm(req.Algorithm); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	} else if approx {
		writeError(w, http.StatusBadRequest, "impact needs an exact algorithm (cta, p-cta, lp-cta, k-skyband)")
		return
	}
	pdf, densityName, err := buildDensity(req.Density, snap.DB.Dim())
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if req.Samples <= 0 {
		req.Samples = 20000
	}
	// The sampling loop is not cancellable, so bound the work a single
	// request can demand of a pool worker.
	const maxImpactSamples = 1_000_000
	if req.Samples > maxImpactSamples {
		req.Samples = maxImpactSamples
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.timeout(req.TimeoutMs))
	defer cancel()

	qresp, raw, err := s.runKSPR(ctx, snap, queryRequest{
		Dataset:   req.Dataset,
		Focal:     req.Focal,
		K:         req.K,
		Algorithm: req.Algorithm,
		Seed:      req.Seed,
		NoCache:   req.NoCache,
	})
	if err != nil {
		writeError(w, errStatusCode(err), "%v", err)
		return
	}
	res, ok := raw.(*kspr.Result)
	if !ok {
		writeError(w, http.StatusBadRequest, "impact needs an exact algorithm (cta, p-cta, lp-cta, k-skyband)")
		return
	}
	val, err := s.pool.Submit(ctx, func(context.Context) (any, error) {
		return snap.DB.ImpactProbabilityPDF(res, pdf, req.Samples, req.Seed), nil
	})
	if err != nil {
		writeError(w, errStatusCode(err), "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, impactResponse{
		Dataset:     snap.Name,
		Generation:  snap.Generation,
		Focal:       req.Focal,
		K:           req.K,
		Density:     densityName,
		Samples:     req.Samples,
		Probability: val.(float64),
		Regions:     qresp.Stats.Regions,
		Cached:      qresp.Cached,
	})
}

// ---- health & metrics ----------------------------------------------------

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"datasets": len(s.registry.List()),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.metrics.Snapshot()
	snap.Cache = s.cache.Stats()
	snap.Pool = PoolStats{Workers: s.pool.Workers(), Depth: s.pool.Depth()}
	snap.CPU = CPUStats{ExtraSlots: s.cpu.Slots(), InUse: s.cpu.InUse()}
	snap.Datasets = s.registry.List()
	writeJSON(w, http.StatusOK, snap)
}
