package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
)

// focalWithRegions picks a k-skyband record that actually has top-k
// regions (skyband membership alone does not guarantee any).
func focalWithRegions(t *testing.T, snap *Snapshot, k int) int {
	t.Helper()
	for _, id := range snap.DB.KSkyband(k) {
		res, err := snap.DB.KSPR(id, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Regions) > 0 {
			return id
		}
	}
	t.Fatal("no focal with regions found")
	return -1
}

func getJSON(t *testing.T, url string, out any) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("get %s: %v", url, err)
	}
	defer resp.Body.Close()
	var buf []byte
	buf = make([]byte, 0, 1024)
	tmp := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(tmp)
		buf = append(buf, tmp[:n]...)
		if err != nil {
			break
		}
	}
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(buf, out); err != nil {
			t.Fatalf("decode %s: %v (%s)", url, err, buf)
		}
	}
	return resp, buf
}

// TestCompetitorsEndpoint exercises GET /v1/impact:competitors: shape,
// accounting, generation-keyed caching, and invalidation by mutation.
func TestCompetitorsEndpoint(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	loadGenerated(t, ts, "comp", 120, 3, 3)
	snap, _ := srv.Registry().Get("comp")
	focal := snap.DB.KSkyband(3)[1]

	url := fmt.Sprintf("%s/v1/impact:competitors?dataset=comp&focal=%d&k=3&samples=2000&seed=5", ts.URL, focal)
	var first competitorsResponse
	resp, body := getJSON(t, url, &first)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if first.Cached || first.Focal != focal || first.K != 3 || first.Samples != 2000 {
		t.Fatalf("bad response: %+v", first)
	}
	if first.Impact+first.Miss != 1 {
		t.Fatalf("impact %v + miss %v != 1", first.Impact, first.Miss)
	}
	for _, c := range first.Competitors {
		if c.ID == focal {
			t.Fatal("focal attributed to itself")
		}
		if c.MissShare < 0 || c.MissShare > first.Miss || c.PressureShare < 0 || c.PressureShare > first.Impact {
			t.Fatalf("share out of range: %+v", c)
		}
	}

	var second competitorsResponse
	if _, _ = getJSON(t, url, &second); !second.Cached {
		t.Fatal("repeat attribution not served from cache")
	}

	if code, _ := postMutate(t, ts, "comp", `{"op":"insert","values":[0.01,0.01,0.02]}`); code != http.StatusOK {
		t.Fatalf("mutate status %d", code)
	}
	var after competitorsResponse
	if _, _ = getJSON(t, url, &after); after.Cached {
		t.Fatal("attribution served from a stale generation's cache after mutation")
	}
	if after.Generation == first.Generation {
		t.Fatal("generation did not advance")
	}

	// Error surface: unknown dataset, bad params, approx algorithm.
	if resp, _ := getJSON(t, ts.URL+"/v1/impact:competitors?dataset=nope&focal=0&k=1", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown dataset: status %d", resp.StatusCode)
	}
	if resp, _ := getJSON(t, ts.URL+"/v1/impact:competitors?dataset=comp&focal=x&k=1", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad focal: status %d", resp.StatusCode)
	}
	if resp, _ := getJSON(t, ts.URL+"/v1/impact:competitors?dataset=comp&focal=0&k=0", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad k: status %d", resp.StatusCode)
	}
	if resp, _ := getJSON(t, fmt.Sprintf("%s/v1/impact:competitors?dataset=comp&focal=%d&k=3&algorithm=approx", ts.URL, focal), nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("approx algorithm: status %d", resp.StatusCode)
	}
}

// TestWhatIfPriceEndpoint exercises POST /v1/whatif:price end-to-end:
// a successful search, the cache round-trip, and the 422 unreachable case.
func TestWhatIfPriceEndpoint(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	loadGenerated(t, ts, "price", 100, 3, 11)
	snap, _ := srv.Registry().Get("price")
	focal := snap.DB.KSkyband(3)[0]

	req := priceRequest{Dataset: "price", Focal: focal, K: 3, Attr: 0,
		Target: 0.6, Eps: 1e-3, Samples: 2000, Seed: 5}
	resp, body := postJSON(t, ts.URL+"/v1/whatif:price", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var pr priceResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if !pr.AlreadyMet && pr.Impact < req.Target {
		t.Fatalf("returned impact %v below target %v", pr.Impact, req.Target)
	}
	if pr.Stats.Probes == 0 {
		t.Fatalf("no probes recorded: %+v", pr.Stats)
	}

	resp, body = postJSON(t, ts.URL+"/v1/whatif:price", req)
	var cached priceResponse
	json.Unmarshal(body, &cached)
	if !cached.Cached {
		t.Fatal("repeat search not served from cache")
	}
	if cached.Delta != pr.Delta || cached.Generation != pr.Generation {
		t.Fatalf("cached answer diverged: %+v vs %+v", cached, pr)
	}

	// A target the capped bracket cannot reach is 422 — and the answer is
	// deterministic, so the repeat must be 422 straight from the cache
	// (no second multi-probe search; the counter below pins that).
	bad := req
	bad.Target = 0.99
	bad.MaxDelta = 1e-9
	resp, body = postJSON(t, ts.URL+"/v1/whatif:price", bad)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("unreachable target: status %d: %s", resp.StatusCode, body)
	}
	probesAfterFirst := srv.metrics.Snapshot().WhatIf.Probes
	resp, body = postJSON(t, ts.URL+"/v1/whatif:price", bad)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("repeat unreachable target: status %d: %s", resp.StatusCode, body)
	}
	if got := srv.metrics.Snapshot().WhatIf.Probes; got != probesAfterFirst {
		t.Fatalf("repeat unreachable target re-ran the search: %d -> %d probes", probesAfterFirst, got)
	}

	if resp, _ := postJSON(t, ts.URL+"/v1/whatif:price", priceRequest{Dataset: "price", Focal: focal, K: 0, Target: 0.5}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad k: status %d", resp.StatusCode)
	}
	if resp, _ := postJSON(t, ts.URL+"/v1/whatif:price", priceRequest{Dataset: "nope", Focal: 0, K: 1, Target: 0.5}); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown dataset: status %d", resp.StatusCode)
	}
}

// TestWhatIfFrontierEndpoint exercises POST /v1/whatif:frontier: grid
// shape, monotone impact, stats, caching, and the step cap.
func TestWhatIfFrontierEndpoint(t *testing.T) {
	srv, ts := newTestServer(t, Config{MaxBatch: 32})
	loadGenerated(t, ts, "front", 100, 3, 13)
	snap, _ := srv.Registry().Get("front")
	focal := snap.DB.KSkyband(3)[2]

	req := frontierRequest{Dataset: "front", Focal: focal, K: 3, Attr: 0,
		Min: 0.01, Max: 1.2, Steps: 6, Samples: 1500, Seed: 3}
	resp, body := postJSON(t, ts.URL+"/v1/whatif:frontier", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var fr frontierResponse
	if err := json.Unmarshal(body, &fr); err != nil {
		t.Fatal(err)
	}
	if len(fr.Points) != req.Steps {
		t.Fatalf("got %d points, want %d", len(fr.Points), req.Steps)
	}
	for i := 1; i < len(fr.Points); i++ {
		if fr.Points[i].Impact < fr.Points[i-1].Impact {
			t.Fatalf("frontier not monotone at %d", i)
		}
	}
	if fr.Stats.Probes != req.Steps {
		t.Fatalf("stats probes %d != steps %d", fr.Stats.Probes, req.Steps)
	}

	resp, body = postJSON(t, ts.URL+"/v1/whatif:frontier", req)
	var cached frontierResponse
	json.Unmarshal(body, &cached)
	if !cached.Cached {
		t.Fatal("repeat frontier not served from cache")
	}

	big := req
	big.Steps = 1000
	if resp, _ := postJSON(t, ts.URL+"/v1/whatif:frontier", big); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized frontier: status %d", resp.StatusCode)
	}
}

// TestKSPRVolumesParams covers the volumes= / volume_samples= query
// surface: volumes arrive on the wire, and the sample count is part of the
// cache key (different sample counts are distinct entries).
func TestKSPRVolumesParams(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	loadGenerated(t, ts, "vol", 120, 3, 9)
	snap, _ := srv.Registry().Get("vol")
	focal := focalWithRegions(t, snap, 3)

	q := queryRequest{Dataset: "vol", Focal: focal, K: 3, Volumes: true, VolumeSamples: 5000}
	resp, body := postJSON(t, ts.URL+"/v1/kspr", q)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var qr queryResponse
	json.Unmarshal(body, &qr)
	if len(qr.Regions) == 0 {
		t.Fatal("skyband focal has no regions")
	}
	var total float64
	for _, reg := range qr.Regions {
		if reg.Volume < 0 {
			t.Fatalf("negative region volume: %+v", reg)
		}
		total += reg.Volume
		if reg.RankExact && len(reg.Outscorers) != reg.Rank-1 {
			t.Fatalf("region outscorers %d != rank-1 %d", len(reg.Outscorers), reg.Rank-1)
		}
	}
	if total <= 0 {
		t.Fatal("volumes requested but all zero")
	}

	// Same query, different sample count: must MISS the cache (distinct
	// key), while the identical repeat hits it.
	q2 := q
	q2.VolumeSamples = 7000
	resp, body = postJSON(t, ts.URL+"/v1/kspr", q2)
	var qr2 queryResponse
	json.Unmarshal(body, &qr2)
	if qr2.Cached {
		t.Fatal("different volume_samples shared a cache entry")
	}
	resp, body = postJSON(t, ts.URL+"/v1/kspr", q)
	var qr3 queryResponse
	json.Unmarshal(body, &qr3)
	if !qr3.Cached {
		t.Fatal("identical volumes query not served from cache")
	}

	// Key normalization: an explicit default sample count and an omitted
	// one are the same computation and must share one entry.
	qDefault := q
	qDefault.VolumeSamples = 10000
	postJSON(t, ts.URL+"/v1/kspr", qDefault)
	qOmitted := q
	qOmitted.VolumeSamples = 0
	_, body = postJSON(t, ts.URL+"/v1/kspr", qOmitted)
	var qr4 queryResponse
	json.Unmarshal(body, &qr4)
	if !qr4.Cached {
		t.Fatal("volume_samples 0 and the explicit default fragmented the cache")
	}
}

// TestImpactDensitiesAndBounds covers the sampling/parse branches the
// what-if layer shares with /v1/impact: named densities, their validation
// errors, the sample cap, and the bound/space spellings on /v1/kspr.
func TestImpactDensitiesAndBounds(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	loadGenerated(t, ts, "imp", 100, 3, 7)
	snap, _ := srv.Registry().Get("imp")
	focal := focalWithRegions(t, snap, 3)

	densities := []*densityReq{
		nil,
		{Name: "dirichlet", Alpha: []float64{2, 2, 2}},
		{Name: "gaussian", Center: []float64{0.4, 0.3, 0.3}, Sigma: 0.2},
	}
	for _, d := range densities {
		resp, body := postJSON(t, ts.URL+"/v1/impact", impactRequest{
			Dataset: "imp", Focal: focal, K: 3, Samples: 2000, Density: d})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("density %+v: status %d: %s", d, resp.StatusCode, body)
		}
		var ir impactResponse
		json.Unmarshal(body, &ir)
		if ir.Probability < 0 || ir.Probability > 1 {
			t.Fatalf("density %+v: probability %v out of range", d, ir.Probability)
		}
	}
	// The per-request sample cap clamps instead of erroring.
	resp, body := postJSON(t, ts.URL+"/v1/impact", impactRequest{
		Dataset: "imp", Focal: focal, K: 3, Samples: maxImpactSamples + 1, NoCache: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("oversample: status %d: %s", resp.StatusCode, body)
	}
	var ir impactResponse
	json.Unmarshal(body, &ir)
	if ir.Samples != maxImpactSamples {
		t.Fatalf("samples not clamped: %d", ir.Samples)
	}
	for _, bad := range []*densityReq{
		{Name: "nope"},
		{Name: "dirichlet", Alpha: []float64{2, 2}},
		{Name: "dirichlet", Alpha: []float64{2, -1, 2}},
		{Name: "gaussian", Center: []float64{0.5}},
	} {
		if resp, _ := postJSON(t, ts.URL+"/v1/impact", impactRequest{
			Dataset: "imp", Focal: focal, K: 3, Density: bad}); resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("density %+v accepted", bad)
		}
	}
	if resp, _ := postJSON(t, ts.URL+"/v1/impact", impactRequest{
		Dataset: "imp", Focal: focal, K: 3, Algorithm: "approx"}); resp.StatusCode != http.StatusBadRequest {
		t.Fatal("approx impact accepted")
	}

	// Bound/space spellings on /v1/kspr.
	for _, b := range []string{"group", "record", "fast_bounds"} {
		if resp, body := postJSON(t, ts.URL+"/v1/kspr", queryRequest{
			Dataset: "imp", Focal: focal, K: 3, Bounds: b}); resp.StatusCode != http.StatusOK {
			t.Fatalf("bounds %q: status %d: %s", b, resp.StatusCode, body)
		}
	}
	if resp, _ := postJSON(t, ts.URL+"/v1/kspr", queryRequest{
		Dataset: "imp", Focal: focal, K: 3, Bounds: "diagonal"}); resp.StatusCode != http.StatusBadRequest {
		t.Fatal("unknown bounds accepted")
	}
	if resp, _ := postJSON(t, ts.URL+"/v1/kspr", queryRequest{
		Dataset: "imp", Focal: focal, K: 3, Space: "sideways"}); resp.StatusCode != http.StatusBadRequest {
		t.Fatal("unknown space accepted")
	}
}

// TestMutationDropsRepricedFocalCache is the stale-what-if guard: when a
// reprice makes the cached focal newly dominated, the old cached result
// must NOT migrate to the new generation — the follow-up query recomputes
// and returns the (now empty) truth.
func TestMutationDropsRepricedFocalCache(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	loadGenerated(t, ts, "reprice", 150, 3, 5)
	snap, _ := srv.Registry().Get("reprice")
	focal := focalWithRegions(t, snap, 3)
	stable, _ := snap.DB.StableID(focal)

	q := queryRequest{Dataset: "reprice", Focal: focal, K: 3}
	resp, body := postJSON(t, ts.URL+"/v1/kspr", q)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status %d: %s", resp.StatusCode, body)
	}
	var before queryResponse
	json.Unmarshal(body, &before)
	if len(before.Regions) == 0 {
		t.Fatal("skyband focal should have regions before the reprice")
	}

	// Reprice the focal itself into the dominated interior: its own cached
	// result is value-affected and must be dropped, not migrated.
	code, mr := postMutate(t, ts, "reprice",
		fmt.Sprintf(`{"op":"update","id":%d,"values":[0.01,0.01,0.01]}`, stable))
	if code != http.StatusOK {
		t.Fatalf("mutate status %d", code)
	}
	if mr.CacheDropped == 0 {
		t.Fatalf("repriced focal's cache entry not dropped: %+v", mr)
	}

	resp, body = postJSON(t, ts.URL+"/v1/kspr", q)
	var after queryResponse
	json.Unmarshal(body, &after)
	if after.Cached {
		t.Fatal("repriced focal served a stale migrated result")
	}
	if len(after.Regions) != 0 {
		t.Fatalf("dominated reprice still shows %d regions", len(after.Regions))
	}

	// Cross-check against a cold library run on the live dataset.
	live, _ := srv.Registry().Live("reprice")
	dense, ok := live.DenseIndex(stable)
	if !ok {
		t.Fatal("focal vanished")
	}
	cold, err := live.KSPR(dense, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(cold.Regions) != 0 {
		t.Fatalf("cold run disagrees: %d regions", len(cold.Regions))
	}
}
