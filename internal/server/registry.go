// Package server implements ksprd, the long-lived kSPR query service: a
// dataset registry with hot reload and live mutation, a bounded worker
// pool with per-request deadlines, a sharded LRU result cache with
// cross-generation migration, and HTTP/JSON handlers for the paper's
// query repertoire (kSPR, approximate kSPR, top-k, skyline, market
// impact) plus the dataset mutation API.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	kspr "repro"
	"repro/internal/dataset"
)

// Snapshot is an immutable, queryable view of a registered dataset. Queries
// resolve a snapshot once and keep using it for their whole lifetime, so a
// concurrent reload or mutation (which installs a NEW snapshot under the
// same name) never disturbs in-flight work: the old snapshot stays valid
// until its last query releases it.
type Snapshot struct {
	// Name is the registry key; Generation increases monotonically across
	// the whole registry with every (re)load AND every mutation batch, so
	// (Name, Generation) uniquely identifies one dataset incarnation — the
	// cache keys off it.
	Name       string
	Generation uint64
	// StoreGeneration is the underlying live dataset's own generation (the
	// one WAL recovery restores); Durable reports whether it is WAL-backed.
	StoreGeneration uint64
	Durable         bool
	// DB is the frozen, indexed dataset handle pinned to this generation;
	// it is safe for concurrent readers.
	DB *kspr.DB
	// Dataset retains attribute names and optional record labels (records
	// themselves live in DB).
	Dataset  *dataset.Dataset
	LoadedAt time.Time
	// Source describes where the data came from (path, "generated", ...).
	Source string
	// IndexWarm reports whether this incarnation's candidate index was
	// reassembled from the persisted layout (true) or rebuilt cold.
	IndexWarm bool
}

// DatasetInfo is the registry listing entry exposed over the API.
type DatasetInfo struct {
	Name            string    `json:"name"`
	Generation      uint64    `json:"generation"`
	StoreGeneration uint64    `json:"store_generation"`
	Durable         bool      `json:"durable,omitempty"`
	Records         int       `json:"records"`
	Dims            int       `json:"dims"`
	Attributes      []string  `json:"attributes,omitempty"`
	Source          string    `json:"source,omitempty"`
	LoadedAt        time.Time `json:"loaded_at"`
	// IndexWarm reports whether the dataset's candidate index came from the
	// persisted layout (warm restart) rather than a cold rebuild.
	IndexWarm bool `json:"index_warm"`
}

// liveEntry is the mutable state behind one registered dataset: the live
// (mutable) DB handle plus the metadata that rides along generations.
type liveEntry struct {
	db     *kspr.DB
	attrs  []string
	labels map[int64]string // stable option id -> label
	source string
}

// Registry maps names to dataset snapshots behind an RWMutex. Loads build
// the index outside the lock where possible, so readers are rarely blocked
// on indexing; mutations hold the write lock for the re-index (documented
// trade-off: a mutation briefly blocks snapshot resolution, never
// in-flight queries).
type Registry struct {
	mu    sync.RWMutex
	sets  map[string]*Snapshot
	lives map[string]*liveEntry
	gen   atomic.Uint64

	// storeDir, when non-empty, makes every dataset durable: each name gets
	// a WAL-backed store under storeDir/<name>. walSync and snapshotEvery
	// configure those stores.
	storeDir      string
	walSync       bool
	snapshotEvery int

	// onStoreEvent, when set, receives each durable dataset's store
	// lifecycle events (WAL recovery, snapshot writes, index warm/cold)
	// tagged with the dataset name. Set it before any Load/Recover; the
	// callback may run with store locks held, so keep it fast.
	onStoreEvent func(name string, ev kspr.StoreEvent)
}

// NewRegistry returns an empty, in-memory registry.
func NewRegistry() *Registry {
	return &Registry{sets: make(map[string]*Snapshot), lives: make(map[string]*liveEntry)}
}

// NewRegistryWithStore returns a registry whose datasets are WAL-backed
// under dir (see Registry.storeDir). walSync fsyncs every mutation batch;
// snapshotEvery sets the store snapshot cadence (0 = default).
func NewRegistryWithStore(dir string, walSync bool, snapshotEvery int) *Registry {
	r := NewRegistry()
	r.storeDir = dir
	r.walSync = walSync
	r.snapshotEvery = snapshotEvery
	return r
}

// Durable reports whether the registry's datasets are WAL-backed.
func (r *Registry) Durable() bool { return r.storeDir != "" }

// SetStoreEventHook installs the per-dataset store lifecycle-event hook
// (see Registry.onStoreEvent). Call it before Load or Recover open any
// stores; events from already-open stores are not retrofitted.
func (r *Registry) SetStoreEventHook(fn func(name string, ev kspr.StoreEvent)) {
	r.mu.Lock()
	r.onStoreEvent = fn
	r.mu.Unlock()
}

// ErrDatasetNotFound marks registry operations on unknown dataset names;
// handlers map it to 404.
var ErrDatasetNotFound = errors.New("server: dataset not found")

// validateStoreName restricts durable dataset names to filesystem-safe
// characters (they become directory names).
func validateStoreName(name string) error {
	for _, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return fmt.Errorf("server: durable dataset name %q: only [A-Za-z0-9._-] allowed", name)
		}
	}
	if name == "" || name == "." || name == ".." {
		return fmt.Errorf("server: invalid dataset name %q", name)
	}
	return nil
}

// storeOptions assembles the kspr store options for this registry.
func (r *Registry) storeOptions() []kspr.StoreOption {
	var opts []kspr.StoreOption
	if r.walSync {
		opts = append(opts, kspr.WithWALSync())
	}
	if r.snapshotEvery != 0 {
		opts = append(opts, kspr.WithSnapshotEvery(r.snapshotEvery))
	}
	return opts
}

// Load indexes ds and installs it under name, replacing any previous
// snapshot with that name. With a store directory configured the load is
// durable: it opens (or creates) the dataset's WAL-backed store and
// replaces its contents in one atomic mutation batch, so the reload
// itself survives a crash. It returns the new snapshot.
func (r *Registry) Load(name string, ds *dataset.Dataset, source string) (*Snapshot, error) {
	if name == "" {
		return nil, fmt.Errorf("server: dataset name must not be empty")
	}
	if r.storeDir == "" {
		// In-memory: a reload is simply a fresh live DB.
		db, err := kspr.Open(ds.Float64s())
		if err != nil {
			return nil, fmt.Errorf("server: indexing dataset %q: %w", name, err)
		}
		entry := &liveEntry{db: db, attrs: ds.Attributes, labels: labelMapFromSlice(ds.Labels, db), source: source}
		r.mu.Lock()
		defer r.mu.Unlock()
		r.lives[name] = entry
		return r.installLocked(name, entry), nil
	}

	if err := validateStoreName(name); err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	entry, created, err := r.openEntryLocked(name)
	if err != nil {
		return nil, err
	}
	// Replace the store contents atomically: delete every live option,
	// insert the new records. One batch, one generation.
	var muts []kspr.Mutation
	deletes := entry.db.Len()
	for i := 0; i < deletes; i++ {
		id, _ := entry.db.StableID(i)
		muts = append(muts, kspr.Delete(id))
	}
	for _, rec := range ds.Float64s() {
		muts = append(muts, kspr.Insert(rec...))
	}
	res, err := entry.db.Apply(muts...)
	if err != nil {
		if created {
			// Don't leave a never-loaded orphan (with an open WAL handle)
			// behind; a pre-existing entry stays valid with its old data.
			_ = entry.db.Close()
			delete(r.lives, name)
		}
		return nil, fmt.Errorf("server: loading dataset %q into store: %w", name, err)
	}
	entry.attrs = ds.Attributes
	entry.source = source
	entry.labels = make(map[int64]string)
	for i, label := range ds.Labels {
		if label != "" && i < ds.Len() {
			entry.labels[res.IDs[deletes+i]] = label
		}
	}
	r.persistMetaLocked(name, entry)
	return r.installLocked(name, entry), nil
}

// openEntryLocked resolves (or creates) the live entry for a durable
// dataset; created reports whether this call opened it.
func (r *Registry) openEntryLocked(name string) (*liveEntry, bool, error) {
	if entry, ok := r.lives[name]; ok {
		return entry, false, nil
	}
	opts := r.storeOptions()
	if hook := r.onStoreEvent; hook != nil {
		opts = append(opts, kspr.WithStoreEvents(func(ev kspr.StoreEvent) { hook(name, ev) }))
	}
	db, err := kspr.OpenStore(filepath.Join(r.storeDir, name), opts...)
	if err != nil {
		return nil, false, fmt.Errorf("server: opening store for dataset %q: %w", name, err)
	}
	entry := &liveEntry{db: db, labels: make(map[int64]string)}
	r.lives[name] = entry
	return entry, true, nil
}

// labelMapFromSlice maps dense-index labels to stable ids (which coincide
// at load time).
func labelMapFromSlice(labels []string, db *kspr.DB) map[int64]string {
	m := make(map[int64]string)
	for i, label := range labels {
		if label == "" {
			continue
		}
		if id, ok := db.StableID(i); ok {
			m[id] = label
		}
	}
	return m
}

// installLocked freezes the live entry into a new snapshot and makes it
// current. Callers hold the write lock.
func (r *Registry) installLocked(name string, e *liveEntry) *Snapshot {
	frozen := e.db.Freeze()
	labels := denseLabels(frozen, e.labels)
	snap := &Snapshot{
		Name:            name,
		Generation:      r.gen.Add(1),
		StoreGeneration: frozen.Generation(),
		Durable:         r.storeDir != "",
		DB:              frozen,
		Dataset: &dataset.Dataset{
			Name:       name,
			Attributes: e.attrs,
			Labels:     labels,
		},
		LoadedAt:  time.Now(),
		Source:    e.source,
		IndexWarm: frozen.IndexWarm(),
	}
	r.sets[name] = snap
	return snap
}

// denseLabels materializes the stable-id label map as a dense slice for
// one frozen generation (nil when no labels exist).
func denseLabels(db *kspr.DB, labels map[int64]string) []string {
	if len(labels) == 0 {
		return nil
	}
	out := make([]string, db.Len())
	for i := range out {
		if id, ok := db.StableID(i); ok {
			out[i] = labels[id]
		}
	}
	return out
}

// Mutate applies one atomic mutation batch to the named dataset and
// installs the resulting generation. labels optionally carries a label
// per mutation index (inserts and updates). It returns the snapshots
// before and after the batch plus the applied record-level deltas, which
// the serving layer feeds to the incremental cache migration.
func (r *Registry) Mutate(name string, muts []kspr.Mutation, labels map[int]string) (old, cur *Snapshot, res *kspr.ApplyResult, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	entry, ok := r.lives[name]
	old = r.sets[name]
	if !ok || old == nil {
		return nil, nil, nil, fmt.Errorf("%w: %q", ErrDatasetNotFound, name)
	}
	res, err = entry.db.Apply(muts...)
	if err != nil {
		return nil, nil, nil, err
	}
	for i, m := range muts {
		switch m.Op {
		case kspr.OpInsert, kspr.OpUpdate:
			if label, ok := labels[i]; ok && label != "" {
				if entry.labels == nil {
					entry.labels = make(map[int64]string)
				}
				entry.labels[res.IDs[i]] = label
			}
		case kspr.OpDelete:
			delete(entry.labels, res.IDs[i])
		}
	}
	if r.storeDir != "" {
		r.persistMetaLocked(name, entry)
	}
	cur = r.installLocked(name, entry)
	return old, cur, res, nil
}

// LoadCSV reads a CSV file (see dataset.ReadCSV) and installs it.
func (r *Registry) LoadCSV(name, path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("server: open dataset: %w", err)
	}
	defer f.Close()
	ds, err := dataset.ReadCSV(f, name)
	if err != nil {
		return nil, err
	}
	return r.Load(name, ds, path)
}

// Recover scans the store directory and re-registers every dataset found
// there, restoring each to its last applied generation (snapshot load +
// WAL replay). It returns the recovered snapshots sorted by name.
func (r *Registry) Recover() ([]*Snapshot, error) {
	if r.storeDir == "" {
		return nil, nil
	}
	entries, err := os.ReadDir(r.storeDir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("server: scanning store dir: %w", err)
	}
	var out []*Snapshot
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		if validateStoreName(name) != nil {
			continue
		}
		entry, _, err := r.openEntryLocked(name)
		if err != nil {
			return out, err
		}
		r.loadMetaLocked(name, entry)
		entry.source = fmt.Sprintf("recovered from %s", filepath.Join(r.storeDir, name))
		out = append(out, r.installLocked(name, entry))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// PendingRecovery lists the dataset names present in the store directory
// but not yet registered — what Recover still has to replay. /readyz
// reports these while startup recovery runs.
func (r *Registry) PendingRecovery() []string {
	if r.storeDir == "" {
		return nil
	}
	entries, err := os.ReadDir(r.storeDir)
	if err != nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []string
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		if validateStoreName(name) != nil {
			continue
		}
		if _, ok := r.sets[name]; ok {
			continue
		}
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// storeMeta is the sidecar metadata persisted next to a dataset's WAL:
// what the binary store does not carry (attribute names, record labels).
type storeMeta struct {
	Attributes []string          `json:"attributes,omitempty"`
	Labels     map[string]string `json:"labels,omitempty"`
	Source     string            `json:"source,omitempty"`
}

// persistMetaLocked writes the sidecar metadata best-effort (metadata loss
// never fails a mutation; the worst case is attribute names reverting to
// generated ones after recovery).
func (r *Registry) persistMetaLocked(name string, e *liveEntry) {
	meta := storeMeta{Attributes: e.attrs, Source: e.source}
	if len(e.labels) > 0 {
		meta.Labels = make(map[string]string, len(e.labels))
		for id, label := range e.labels {
			meta.Labels[strconv.FormatInt(id, 10)] = label
		}
	}
	raw, err := json.Marshal(meta)
	if err != nil {
		return
	}
	path := filepath.Join(r.storeDir, name, "meta.json")
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, raw, 0o644); err != nil {
		return
	}
	_ = os.Rename(tmp, path)
}

// loadMetaLocked restores the sidecar metadata, synthesizing attribute
// names when none were persisted.
func (r *Registry) loadMetaLocked(name string, e *liveEntry) {
	raw, err := os.ReadFile(filepath.Join(r.storeDir, name, "meta.json"))
	if err == nil {
		var meta storeMeta
		if json.Unmarshal(raw, &meta) == nil {
			e.attrs = meta.Attributes
			e.source = meta.Source
			if len(meta.Labels) > 0 {
				e.labels = make(map[int64]string, len(meta.Labels))
				for k, v := range meta.Labels {
					if id, err := strconv.ParseInt(k, 10, 64); err == nil {
						e.labels[id] = v
					}
				}
			}
		}
	}
	if len(e.attrs) == 0 && e.db.Dim() > 0 {
		attrs := make([]string, e.db.Dim())
		for j := range attrs {
			attrs[j] = fmt.Sprintf("a%d", j+1)
		}
		e.attrs = attrs
	}
}

// Get resolves the current snapshot for name.
func (r *Registry) Get(name string) (*Snapshot, bool) {
	r.mu.RLock()
	snap, ok := r.sets[name]
	r.mu.RUnlock()
	return snap, ok
}

// Live resolves the live (mutable) DB handle for name; used by tests and
// tooling that bypass the HTTP mutation API.
func (r *Registry) Live(name string) (*kspr.DB, bool) {
	r.mu.RLock()
	e, ok := r.lives[name]
	r.mu.RUnlock()
	if !ok {
		return nil, false
	}
	return e.db, true
}

// Unload removes name from the registry and closes its store (if any).
// In-flight queries holding the snapshot are unaffected; the on-disk
// store directory is kept (Recover or a reload re-registers it).
func (r *Registry) Unload(name string) bool {
	r.mu.Lock()
	_, ok := r.sets[name]
	delete(r.sets, name)
	entry, live := r.lives[name]
	delete(r.lives, name)
	r.mu.Unlock()
	if live {
		_ = entry.db.Close()
	}
	return ok || live
}

// Close releases every live store handle.
func (r *Registry) Close() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, e := range r.lives {
		_ = e.db.Close()
		delete(r.lives, name)
	}
}

// Count returns the number of registered datasets without building the
// List view; the telemetry sampler calls it every tick.
func (r *Registry) Count() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.sets)
}

// MaxGeneration returns the highest dataset generation currently
// registered (0 with no datasets) — the tag slo_burn journal events carry
// so a breach joins against flight-recorder evidence captured under the
// same generation.
func (r *Registry) MaxGeneration() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var g uint64
	for _, s := range r.sets {
		if s.Generation > g {
			g = s.Generation
		}
	}
	return g
}

// List returns the registered datasets sorted by name.
func (r *Registry) List() []DatasetInfo {
	r.mu.RLock()
	infos := make([]DatasetInfo, 0, len(r.sets))
	for _, s := range r.sets {
		infos = append(infos, DatasetInfo{
			Name:            s.Name,
			Generation:      s.Generation,
			StoreGeneration: s.StoreGeneration,
			Durable:         s.Durable,
			Records:         s.DB.Len(),
			Dims:            s.DB.Dim(),
			Attributes:      s.Dataset.Attributes,
			Source:          s.Source,
			LoadedAt:        s.LoadedAt,
			IndexWarm:       s.IndexWarm,
		})
	}
	r.mu.RUnlock()
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	return infos
}
