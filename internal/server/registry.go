// Package server implements ksprd, the long-lived kSPR query service: a
// dataset registry with hot reload, a bounded worker pool with per-request
// deadlines, a sharded LRU result cache, and HTTP/JSON handlers for the
// paper's query repertoire (kSPR, approximate kSPR, top-k, skyline, market
// impact).
package server

import (
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	kspr "repro"
	"repro/internal/dataset"
)

// Snapshot is an immutable, queryable view of a registered dataset. Queries
// resolve a snapshot once and keep using it for their whole lifetime, so a
// concurrent reload (which installs a NEW snapshot under the same name)
// never disturbs in-flight work: the old snapshot stays valid until its
// last query releases it.
type Snapshot struct {
	// Name is the registry key; Generation increases monotonically across
	// the whole registry with every (re)load, so (Name, Generation)
	// uniquely identifies one loaded incarnation — the cache keys off it.
	Name       string
	Generation uint64
	// DB is the indexed dataset; it is safe for concurrent readers.
	DB *kspr.DB
	// Dataset retains attribute names and optional record labels.
	Dataset  *dataset.Dataset
	LoadedAt time.Time
	// Source describes where the data came from (path, "generated", ...).
	Source string
}

// DatasetInfo is the registry listing entry exposed over the API.
type DatasetInfo struct {
	Name       string    `json:"name"`
	Generation uint64    `json:"generation"`
	Records    int       `json:"records"`
	Dims       int       `json:"dims"`
	Attributes []string  `json:"attributes,omitempty"`
	Source     string    `json:"source,omitempty"`
	LoadedAt   time.Time `json:"loaded_at"`
}

// Registry maps names to dataset snapshots behind an RWMutex. Loads build
// the R-tree index outside the lock, so readers are never blocked on
// indexing; the critical section is a map swap.
type Registry struct {
	mu   sync.RWMutex
	sets map[string]*Snapshot
	gen  atomic.Uint64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{sets: make(map[string]*Snapshot)}
}

// Load indexes ds and installs it under name, replacing any previous
// snapshot with that name. It returns the new snapshot.
func (r *Registry) Load(name string, ds *dataset.Dataset, source string) (*Snapshot, error) {
	if name == "" {
		return nil, fmt.Errorf("server: dataset name must not be empty")
	}
	db, err := kspr.Open(ds.Float64s())
	if err != nil {
		return nil, fmt.Errorf("server: indexing dataset %q: %w", name, err)
	}
	snap := &Snapshot{
		Name:       name,
		Generation: r.gen.Add(1),
		DB:         db,
		Dataset:    ds,
		LoadedAt:   time.Now(),
		Source:     source,
	}
	r.mu.Lock()
	r.sets[name] = snap
	r.mu.Unlock()
	return snap, nil
}

// LoadCSV reads a CSV file (see dataset.ReadCSV) and installs it.
func (r *Registry) LoadCSV(name, path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("server: open dataset: %w", err)
	}
	defer f.Close()
	ds, err := dataset.ReadCSV(f, name)
	if err != nil {
		return nil, err
	}
	return r.Load(name, ds, path)
}

// Get resolves the current snapshot for name.
func (r *Registry) Get(name string) (*Snapshot, bool) {
	r.mu.RLock()
	snap, ok := r.sets[name]
	r.mu.RUnlock()
	return snap, ok
}

// Unload removes name from the registry. In-flight queries holding the
// snapshot are unaffected.
func (r *Registry) Unload(name string) bool {
	r.mu.Lock()
	_, ok := r.sets[name]
	delete(r.sets, name)
	r.mu.Unlock()
	return ok
}

// List returns the registered datasets sorted by name.
func (r *Registry) List() []DatasetInfo {
	r.mu.RLock()
	infos := make([]DatasetInfo, 0, len(r.sets))
	for _, s := range r.sets {
		infos = append(infos, DatasetInfo{
			Name:       s.Name,
			Generation: s.Generation,
			Records:    s.DB.Len(),
			Dims:       s.DB.Dim(),
			Attributes: s.Dataset.Attributes,
			Source:     s.Source,
			LoadedAt:   s.LoadedAt,
		})
	}
	r.mu.RUnlock()
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	return infos
}
