package server

import (
	"context"
	"log/slog"
	"net/http"
	"time"

	"repro/internal/obs"
)

// reqInfo is the per-request observability state instrument attaches to
// the request context: the correlation id (echoed as X-Request-Id) and,
// when EXPLAIN mode or the slow-query log wants one, the engine trace the
// handlers thread into the query options.
type reqInfo struct {
	id    string
	debug bool
	trace *obs.Trace
	// Flight-recorder annotations: handlers note the dataset/generation
	// they resolved, whether the result was served from cache, and the
	// per-request decision stats; instrument reads them after the handler
	// returns (same goroutine, no locking needed).
	dataset    string
	generation uint64
	cached     bool
	stats      any
}

// noteDataset records which dataset incarnation the request resolved, for
// the wide event instrument may capture. Nil-safe on both sides.
func (ri *reqInfo) noteDataset(snap *Snapshot) {
	if ri == nil || snap == nil {
		return
	}
	ri.dataset, ri.generation = snap.Name, snap.Generation
}

// noteCached records whether the response came from the result cache.
func (ri *reqInfo) noteCached(cached bool) {
	if ri != nil {
		ri.cached = cached
	}
}

// noteStats attaches the request's decision stats (any JSON-marshalable
// value) to its eventual wide event.
func (ri *reqInfo) noteStats(stats any) {
	if ri != nil {
		ri.stats = stats
	}
}

// Trace returns the request's engine trace; nil (tracing off) on a nil
// info, so handlers can pass it to kspr.WithTrace unconditionally.
func (ri *reqInfo) Trace() *obs.Trace {
	if ri == nil {
		return nil
	}
	return ri.trace
}

// Debug reports whether the request asked for ?debug=trace.
func (ri *reqInfo) Debug() bool { return ri != nil && ri.debug }

// ID returns the request's correlation id ("" outside instrument).
func (ri *reqInfo) ID() string {
	if ri == nil {
		return ""
	}
	return ri.id
}

type reqInfoKey struct{}

// reqInfoFrom reads the request info from a context; nil when the
// request did not pass through instrument (e.g. direct handler tests).
func reqInfoFrom(ctx context.Context) *reqInfo {
	ri, _ := ctx.Value(reqInfoKey{}).(*reqInfo)
	return ri
}

// wantTrace reports whether the request opted into EXPLAIN mode.
func wantTrace(r *http.Request) bool {
	return r.URL.Query().Get("debug") == "trace"
}

// phaseWire is one engine phase in a trace breakdown.
type phaseWire struct {
	Name  string  `json:"name"`
	Ms    float64 `json:"ms"`
	Count int64   `json:"count"`
}

// traceWire is the EXPLAIN payload attached to responses under
// ?debug=trace: the request id, the per-phase breakdown in recording
// order, and the phase-time sum (phases are non-overlapping, so total_ms
// approximates the engine wall time).
type traceWire struct {
	RequestID string      `json:"request_id,omitempty"`
	TotalMs   float64     `json:"total_ms"`
	Phases    []phaseWire `json:"phases"`
}

// traceToWire renders a trace for the response envelope; nil when there
// is nothing to report.
func traceToWire(ri *reqInfo) *traceWire {
	tr := ri.Trace()
	if tr == nil {
		return nil
	}
	phases := tr.Phases()
	tw := &traceWire{
		RequestID: ri.ID(),
		TotalMs:   float64(tr.TotalNs()) / 1e6,
		Phases:    make([]phaseWire, len(phases)),
	}
	for i, p := range phases {
		tw.Phases[i] = phaseWire{Name: p.Name, Ms: float64(p.Ns) / 1e6, Count: p.Count}
	}
	return tw
}

// tracePhaseAttrs renders a trace as slog attrs for the slow-query log.
func tracePhaseAttrs(tr *obs.Trace) []any {
	var args []any
	for _, p := range tr.Phases() {
		args = append(args, slog.Group(p.Name,
			slog.Float64("ms", float64(p.Ns)/1e6),
			slog.Int64("count", p.Count)))
	}
	return args
}

// logRequest emits the structured request log line and, when the request
// ran past the slow-query threshold with a trace attached, the
// slow-query warning carrying the phase breakdown.
func (s *Server) logRequest(endpoint string, r *http.Request, ri *reqInfo, status int, elapsed time.Duration) {
	if s.logger == nil {
		return
	}
	s.logger.Debug("request",
		slog.String("request_id", ri.ID()),
		slog.String("endpoint", endpoint),
		slog.String("method", r.Method),
		slog.String("path", r.URL.Path),
		slog.Int("status", status),
		slog.Float64("elapsed_ms", float64(elapsed)/1e6),
	)
	if s.cfg.SlowQuery > 0 && elapsed >= s.cfg.SlowQuery {
		args := []any{
			slog.String("request_id", ri.ID()),
			slog.String("endpoint", endpoint),
			slog.String("path", r.URL.Path),
			slog.Int("status", status),
			slog.Float64("elapsed_ms", float64(elapsed)/1e6),
			slog.Float64("threshold_ms", float64(s.cfg.SlowQuery)/1e6),
		}
		if tr := ri.Trace(); tr != nil {
			args = append(args, slog.Group("phases", tracePhaseAttrs(tr)...))
		}
		s.logger.Warn("slow query", args...)
	}
}

// ---- readiness -----------------------------------------------------------

// handleReadyz is the readiness probe: 200 once startup WAL recovery has
// finished (or was never needed), 503 with the still-recovering dataset
// names while it runs. Liveness stays on /healthz, which is green from
// the first accepted connection — load balancers should route on /readyz
// so a replaying node takes no traffic.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.ready.Load() {
		// Per-dataset index warm/cold detail: a ready node that rebuilt its
		// candidate indexes cold is serving, but slower than its warm peers —
		// operators draining/rolling nodes want to see which is which.
		infos := s.registry.List()
		warm := make(map[string]bool, len(infos))
		for _, info := range infos {
			warm[info.Name] = info.IndexWarm
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"status":     "ready",
			"datasets":   len(infos),
			"index_warm": warm,
		})
		return
	}
	writeJSON(w, http.StatusServiceUnavailable, map[string]any{
		"status":     "recovering",
		"recovering": s.registry.PendingRecovery(),
	})
}

// handleMetricsProm is the Prometheus text exposition of /metrics.
func (s *Server) handleMetricsProm(w http.ResponseWriter, r *http.Request) {
	snap := s.metricsView()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.metrics.WriteProm(w, snap)
}

// metricsView assembles the full metrics snapshot: the Metrics counters
// plus the sections owned by other server components.
func (s *Server) metricsView() MetricsSnapshot {
	snap := s.metrics.Snapshot()
	snap.Cache = s.cache.Stats()
	snap.Pool = PoolStats{Workers: s.pool.Workers(), Depth: s.pool.Depth()}
	snap.CPU = CPUStats{ExtraSlots: s.cpu.Slots(), InUse: s.cpu.InUse()}
	snap.Datasets = s.registry.List()
	s.rtMu.Lock()
	snap.Runtime = s.rtScrape.Sample()
	s.rtMu.Unlock()
	snap.Build = obs.ReadBuildInfo()
	if s.sampler != nil {
		snap.Build = s.sampler.build
		v := s.sampler.latestVerdict()
		snap.SLO = &SLOView{Healthy: v.Healthy, Score: v.Score, Objectives: v.SLOs}
	}
	return snap
}
